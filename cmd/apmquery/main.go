// Command apmquery demonstrates the APM online-query path (§2): it ingests
// a stream of agent measurements into a chosen store and answers
// sliding-window queries against it.
//
//	apmquery -system hbase -hosts 20 -window 600
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/apm"
	"repro/internal/cluster"
	"repro/internal/harness"
	"repro/internal/sim"
	"repro/internal/store"
)

func main() {
	var (
		system  = flag.String("system", "hbase", "store to ingest into (ordered stores give exact windows; see apm.Window)")
		hosts   = flag.Int("hosts", 20, "monitored hosts")
		metrics = flag.Int("metrics", 100, "metrics per host")
		seconds = flag.Int64("seconds", 300, "virtual seconds of ingest")
		window  = flag.Int64("window", 600, "query window, seconds")
	)
	flag.Parse()

	dep, err := harness.Deploy(11, harness.System(*system), cluster.ClusterM(4), 0.01)
	if err != nil {
		fmt.Fprintln(os.Stderr, "apmquery:", err)
		os.Exit(1)
	}
	if !dep.Store.Caps().Scans {
		fmt.Fprintf(os.Stderr, "apmquery: %s has no scan support; window queries need scans\n", *system)
		os.Exit(1)
	}

	const interval = 10
	agents := make([]*apm.Agent, *hosts)
	for h := range agents {
		agents[h] = apm.NewAgent(fmt.Sprintf("Host%03d", h), *metrics, interval)
		agent := agents[h]
		dep.Engine.Go(agent.Host, func(p *sim.Proc) {
			for ts := int64(interval); ts <= *seconds; ts += interval {
				for p.Now() < sim.Time(ts)*sim.Second {
					p.Sleep(sim.Time(ts)*sim.Second - p.Now())
				}
				for _, m := range agent.Report(ts, p.Rand().Float64) {
					if err := dep.Store.Insert(p, m.Key(), store.Fields(m.Fields())); err != nil {
						fmt.Fprintf(os.Stderr, "insert: %v\n", err)
					}
				}
			}
		})
	}

	dep.Engine.Go("queries", func(p *sim.Proc) {
		p.Sleep(sim.Time(*seconds) * sim.Second)
		for h := 0; h < 3 && h < len(agents); h++ {
			metric := agents[h].Metrics[0]
			qStart := p.Now()
			st, err := apm.Window(p, dep.Store, metric, *seconds-*window, *seconds)
			if err != nil {
				fmt.Fprintf(os.Stderr, "window: %v\n", err)
				continue
			}
			fmt.Printf("window(%s, last %ds): count=%d avg=%.1f max=%.1f  [query latency %v]\n",
				metric, *window, st.Count, st.Avg, st.Max, p.Now()-qStart)
		}
	})

	dep.Engine.Run(0)
	fmt.Printf("ingested %.1f MB across 4 nodes in %v virtual time (%s)\n",
		float64(dep.Store.DiskUsage())/1e6, dep.Engine.Now(), *system)
}
