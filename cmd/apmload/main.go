// Command apmload runs the load phase alone and reports per-node disk
// usage, reproducing the Fig 17 measurement for one system at a time.
//
//	apmload -system cassandra -nodes 12
//	apmload -system all -nodes 4
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/harness"
)

func main() {
	var (
		system = flag.String("system", "all", "system to load (cassandra|hbase|voldemort|mysql|all)")
		nodes  = flag.Int("nodes", 4, "cluster size")
		scale  = flag.Float64("scale", 0.01, "record and hardware scale factor")
	)
	flag.Parse()

	r := harness.NewRunner(harness.Config{Scale: *scale})
	systems := harness.DiskSystems
	if *system != "all" {
		systems = []harness.System{harness.System(*system)}
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "system\tnodes\trecords (paper scale)\tdisk total\tper node\tbytes/record")
	for _, sys := range systems {
		res, err := r.LoadOnly(sys, *nodes)
		if err != nil {
			fmt.Fprintf(os.Stderr, "apmload: %s: %v\n", sys, err)
			os.Exit(1)
		}
		records := float64(r.Cfg.RecordsPerNode) * float64(*nodes)
		fmt.Fprintf(w, "%s\t%d\t%.0fM\t%.2f GB\t%.2f GB\t%.0f\n",
			sys, *nodes, records/1e6,
			res.DiskBytesPaperScale/1e9,
			res.DiskBytesPaperScale/float64(*nodes)/1e9,
			res.DiskBytesPaperScale/records)
	}
	w.Flush()
	fmt.Printf("\nraw data: %.2f GB (%d bytes/record x %.0fM records)\n",
		float64(r.Cfg.RecordsPerNode)*float64(*nodes)*70/1e9, 70,
		float64(r.Cfg.RecordsPerNode)*float64(*nodes)/1e6)
}
