// Command apmbench regenerates the paper's evaluation: every figure
// (Figs 3–20) and Table 1, printed as text tables with the same series the
// paper plots.
//
// Usage:
//
//	apmbench -figure 3              # one figure
//	apmbench -figure all            # everything (takes a while)
//	apmbench -figure table1         # the workload table
//	apmbench -figure ablation-all   # design-choice ablations
//	apmbench -figure apm-dashboard  # analytic query layer (APM read path)
//	apmbench -scenario grid.json    # a user-defined scenario grid
//	apmbench -scale 0.02 -measure 4 # higher fidelity
//	apmbench -parallel 1            # serial cell execution
//	apmbench -figure 3 -cpuprofile cpu.pb.gz -memprofile mem.pb.gz
//	                                # host-side profiling (see README
//	                                # "Profiling": the scale=1 recipe)
//	apmbench -serve :9090 ...       # coordinate: lease cells to workers
//	apmbench -join host:9090        # work: execute leased cells
//	apmbench -cache dir ...         # persistent result cache
//	apmbench -version               # print the model hash and exit
//
// A scenario file declares a grid — systems × workloads (Table 1 presets
// or custom mixes, any record size) × node counts × deployment variants —
// and runs through the same cached, seeded, parallel cell executor as the
// figures; see examples/scenarios/.
//
// The -scale flag multiplies record counts and node RAM/disk together, so
// memory-vs-disk behaviour matches the paper at any scale; see DESIGN.md.
//
// Cells execute on a worker pool (-parallel, default GOMAXPROCS). Each
// cell's seed derives from the seed plus the cell's identity, so output is
// bit-identical at any parallelism and any figure order; each in-flight
// cell holds a full simulated cluster, so lower -parallel if memory is
// tight at large -scale.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro"
	"repro/internal/farm"
	"repro/internal/harness"
	"repro/internal/sim"
)

func main() {
	var (
		figure     = flag.String("figure", "all", "figure id (3..20), 'table1', 'all', or an ablation name (see -list)")
		scale      = flag.Float64("scale", 0.01, "record-count and hardware scale factor")
		measure    = flag.Float64("measure", 2.0, "measurement window, virtual seconds")
		warmup     = flag.Float64("warmup", 0.5, "warmup, virtual seconds")
		seed       = flag.Int64("seed", 42, "simulation seed")
		nodes      = flag.String("nodes", "1,2,4,8,12", "comma-separated node counts")
		list       = flag.Bool("list", false, "list available figures and exit")
		quiet      = flag.Bool("quiet", false, "suppress per-cell progress output")
		format     = flag.String("format", "table", "output format: table or csv")
		explain    = flag.String("explain", "", "diagnose one cell: system:nodes:workload[:D], e.g. cassandra:4:R or hbase:8:W:D")
		quick      = flag.Bool("quick", false, "quick-fidelity preset: scale 0.001, measure 0.3, warmup 0.1, nodes 1,2,4 (explicit flags still win)")
		reps       = flag.Int("reps", 1, "independent executions to average per cell")
		parallel   = flag.Int("parallel", 0, "concurrent cell executions (0 = GOMAXPROCS, 1 = serial)")
		scenario   = flag.String("scenario", "", "run a scenario grid from a JSON file (see examples/scenarios/)")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memprofile = flag.String("memprofile", "", "write a pprof allocation profile to this file at exit")
		memstats   = flag.Bool("memstats", false, "report retained host memory (heap in use + store slab bytes) to stderr after each cell's load phase")
		serve      = flag.String("serve", "", "coordinate a cell farm: listen on this address (e.g. :9090) and lease cells to joined workers instead of executing locally")
		join       = flag.String("join", "", "join a cell farm as a worker: connect to this coordinator address, execute leased cells, exit when drained (reconnects on connection loss)")
		cacheDir   = flag.String("cache", "", "persistent result cache directory: serve hits instead of executing, keyed by config + cell + model version")
		leaseTO    = flag.Duration("lease-timeout", 0, "with -serve: requeue a leased cell unanswered for this long and dock the worker's capacity (0 = auto-scale to cell fidelity)")
		speculate  = flag.Bool("speculate", true, "with -serve: re-lease the slowest outstanding cells to idle workers when the queue is empty; duplicate results are byte-compared")
		cacheMax   = flag.Int64("cache-max-bytes", 0, "with -cache: evict least-recently-used entries to keep the directory under this many bytes (0 = unbounded)")
		version    = flag.Bool("version", false, "print the model version (content hash of the model sources) and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println(repro.ModelVersion())
		return
	}

	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })

	if *join != "" {
		runWorker(*join, *parallel, *cacheDir, *cacheMax)
		return
	}

	if *quick {
		// The CI determinism gate and the verify recipe share this preset;
		// flags the user set explicitly keep their values.
		if !set["scale"] {
			*scale = 0.001
		}
		if !set["measure"] {
			*measure = 0.3
		}
		if !set["warmup"] {
			*warmup = 0.1
		}
		if !set["nodes"] {
			*nodes = "1,2,4"
		}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "apmbench: %v\n", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "apmbench: %v\n", err)
			os.Exit(2)
		}
		// Flushed on the normal exit path below; error paths os.Exit and
		// deliberately drop the partial profile.
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "apmbench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // report live objects, not transient garbage
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "apmbench: %v\n", err)
			}
		}()
	}

	cfg := harness.Config{
		Scale:       *scale,
		Measure:     sim.Time(*measure * float64(sim.Second)),
		Warmup:      sim.Time(*warmup * float64(sim.Second)),
		Seed:        *seed,
		NodeCounts:  parseNodes(*nodes),
		Repetitions: *reps,
	}
	outputFormat = *format
	r := harness.NewRunner(cfg)
	r.Workers = *parallel
	if !*quiet {
		r.Progress = func(line string) { fmt.Fprintln(os.Stderr, line) }
	}
	if *cacheDir != "" {
		fc, err := farm.NewFileCache(*cacheDir, repro.ModelVersion())
		if err != nil {
			fmt.Fprintf(os.Stderr, "apmbench: %v\n", err)
			os.Exit(2)
		}
		fc.MaxBytes = *cacheMax
		fc.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
		r.Cache = fc
		// The warm-cache CI gate greps this line: a second identical run
		// must show executed=0. Printed only when -cache is given, so
		// cacheless runs keep byte-identical stderr; the put-errors field
		// appears only when a write actually failed, so healthy runs keep
		// the exact historical format.
		defer func() {
			line := fmt.Sprintf("cache: hits=%d executed=%d", r.CacheHits(), r.Executed())
			if n := fc.PutErrors(); n > 0 {
				line += fmt.Sprintf(" put-errors=%d", n)
			}
			fmt.Fprintln(os.Stderr, line)
		}()
	}
	if *serve != "" {
		co := farm.NewCoordinator(cfg, repro.ModelVersion())
		co.LeaseTimeout = *leaseTO
		co.Speculate = *speculate
		if _, err := co.Listen(*serve); err != nil {
			fmt.Fprintf(os.Stderr, "apmbench: %v\n", err)
			os.Exit(2)
		}
		r.Executor = co
		// Dispatch width: RunAll's pool drives how many cells are leased
		// out at once, and the coordinator itself does no cell work, so an
		// unset -parallel widens to cover several multi-slot workers
		// rather than this host's core count.
		if !set["parallel"] {
			r.Workers = 64
		}
		// Drain on the way out so workers exit cleanly. A non-nil Close
		// error is a cross-worker divergence the farm detected: the output
		// cannot be trusted, so fail loudly instead of exiting 0.
		defer func() {
			if err := co.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "apmbench: %v\n", err)
				os.Exit(1)
			}
		}()
	}
	if *memstats {
		// Diagnostics only: heap numbers vary with GC timing and
		// -parallel width, so they go to stderr and the determinism
		// gate runs without the flag. Figure output on stdout is
		// unaffected.
		r.MemStats = func(line string) { fmt.Fprintln(os.Stderr, line) }
	}

	if *list {
		fmt.Println("figures: table1", strings.Join(harness.FigureOrder, " "))
		fmt.Println("ablations:", strings.Join(ablationNames(r), " "))
		fmt.Println("extras: apm-dashboard")
		return
	}

	if *explain != "" {
		runExplain(r, *explain)
		return
	}

	if *scenario != "" {
		runScenario(r, *scenario)
		return
	}

	switch *figure {
	case "table1":
		fmt.Print(harness.Table1())
	case "all":
		fmt.Print(harness.Table1())
		fmt.Println()
		// Plan every figure's cells and execute them as one batch: cells
		// shared between figures (e.g. Figs 3/4/5) run once, and the
		// worker pool sees the widest possible schedule. Figure
		// generation below then reads from the warm cache.
		if err := r.Prewarm(harness.FigureOrder...); err != nil {
			fmt.Fprintf(os.Stderr, "apmbench: %v\n", err)
			os.Exit(1)
		}
		for _, id := range harness.FigureOrder {
			runFigure(r, id)
			fmt.Println()
		}
	case "ablation-all":
		// Plan every ablation's cells as one batch: cells shared between
		// ablations (and with any already-cached figure cells) run once,
		// and the worker pool sees the widest possible schedule.
		if err := r.Prewarm(harness.AblationOrder...); err != nil {
			fmt.Fprintf(os.Stderr, "apmbench: %v\n", err)
			os.Exit(1)
		}
		for _, name := range harness.AblationOrder {
			runAblation(r, name)
			fmt.Println()
		}
	default:
		if *figure == "apm-dashboard" {
			// The analytic-read extra: a built-in query scenario, kept out
			// of FigureOrder so `-figure all` output stays byte-stable.
			fig, err := r.RunScenario(harness.APMDashboard(r.Cfg.NodeCounts))
			if err != nil {
				fmt.Fprintf(os.Stderr, "apmbench: %s: %v\n", *figure, err)
				os.Exit(1)
			}
			emit(fig)
			return
		}
		if strings.HasPrefix(*figure, "ablation-") {
			runAblation(r, *figure)
			return
		}
		var ids []string
		for _, id := range strings.Split(*figure, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
		// Batch-execute the requested figures' combined cell set so shared
		// cells run once and the pool stays full — even for one figure,
		// whose generator would otherwise run cells with less parallelism
		// than the pool (and, under -serve, starve the farm's workers).
		// Errors are deliberately dropped: runFigure below re-resolves
		// each figure and reports unknown ids and cell failures with
		// their usual messages.
		_ = r.Prewarm(ids...)
		for _, id := range ids {
			runFigure(r, id)
			fmt.Println()
		}
	}
}

// runWorker joins a cell farm and executes leased cells until the
// coordinator drains the farm, reconnecting with backoff if the
// connection drops. The experiment config comes from the coordinator's
// handshake; local fidelity flags are ignored.
func runWorker(addr string, parallel int, cacheDir string, cacheMax int64) {
	capacity := parallel
	if capacity <= 0 {
		capacity = runtime.GOMAXPROCS(0)
	}
	var cache harness.ResultCache
	if cacheDir != "" {
		fc, err := farm.NewFileCache(cacheDir, repro.ModelVersion())
		if err != nil {
			fmt.Fprintf(os.Stderr, "apmbench: %v\n", err)
			os.Exit(2)
		}
		fc.MaxBytes = cacheMax
		fc.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
		cache = fc
	}
	err := farm.Join(addr, farm.WorkerOptions{
		Version:  repro.ModelVersion(),
		Capacity: capacity,
		Cache:    cache,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "apmbench: %v\n", err)
		os.Exit(1)
	}
}

func parseNodes(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		var n int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &n); err == nil && n > 0 {
			out = append(out, n)
		}
	}
	return out
}

func runFigure(r *harness.Runner, id string) {
	gen, ok := r.Figures()[id]
	if !ok {
		fmt.Fprintf(os.Stderr, "apmbench: unknown figure %q (try -list)\n", id)
		os.Exit(2)
	}
	fig, err := gen()
	if err != nil {
		fmt.Fprintf(os.Stderr, "apmbench: figure %s: %v\n", id, err)
		os.Exit(1)
	}
	emit(fig)
}

func ablationNames(r *harness.Runner) []string { return harness.AblationOrder }

func runAblation(r *harness.Runner, name string) {
	gen, ok := r.Ablations()[name]
	if !ok {
		fmt.Fprintf(os.Stderr, "apmbench: unknown ablation %q (try -list)\n", name)
		os.Exit(2)
	}
	fig, err := gen()
	if err != nil {
		fmt.Fprintf(os.Stderr, "apmbench: %s: %v\n", name, err)
		os.Exit(1)
	}
	emit(fig)
}

// outputFormat is set from -format in main.
var outputFormat = "table"

func emit(fig harness.Figure) {
	if outputFormat == "csv" {
		fmt.Print(fig.RenderCSV())
		return
	}
	fmt.Print(fig.Render())
}

// runScenario loads a scenario grid from path, executes it and emits the
// resulting figure.
func runScenario(r *harness.Runner, path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "apmbench: %v\n", err)
		os.Exit(2)
	}
	sc, err := harness.ParseScenario(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "apmbench: %v\n", err)
		os.Exit(2)
	}
	fig, err := r.RunScenario(sc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "apmbench: %v\n", err)
		os.Exit(1)
	}
	emit(fig)
}

// runExplain parses system:nodes:workload[:D] and prints the utilization
// report for that cell.
func runExplain(r *harness.Runner, spec string) {
	parts := strings.Split(spec, ":")
	if len(parts) < 3 {
		fmt.Fprintln(os.Stderr, "apmbench: -explain wants system:nodes:workload[:D]")
		os.Exit(2)
	}
	var nodes int
	if _, err := fmt.Sscanf(parts[1], "%d", &nodes); err != nil || nodes < 1 {
		fmt.Fprintf(os.Stderr, "apmbench: bad node count %q\n", parts[1])
		os.Exit(2)
	}
	cell := harness.Cell{
		System:   harness.System(parts[0]),
		Nodes:    nodes,
		Workload: parts[2],
		ClusterD: len(parts) > 3 && strings.EqualFold(parts[3], "D"),
	}
	ex, err := r.Explain(cell)
	if err != nil {
		fmt.Fprintf(os.Stderr, "apmbench: explain: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(ex.Render())
}
