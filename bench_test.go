// Benchmarks that regenerate every table and figure of the paper's
// evaluation (one testing.B benchmark per exhibit), plus ablation benches
// for the design choices DESIGN.md calls out.
//
// Each benchmark executes its figure end to end — deploy, load, warm up,
// measure — on the quick configuration (scale 1/1000, 1/2/4 nodes), and
// reports the figure's headline value as a custom metric so -benchmem runs
// double as a coarse regression check. For paper-scale output use
// cmd/apmbench.
package repro

import (
	"fmt"
	"testing"
	"unsafe"

	"repro/internal/btree"
	"repro/internal/cluster"
	"repro/internal/harness"
	"repro/internal/lsm"
	"repro/internal/sim"
	"repro/internal/sstable"
	"repro/internal/store"
)

func clusterM4() cluster.Spec       { return cluster.ClusterM(4) }
func keyOf(i int64) string          { return store.Key(i) }
func fieldsOf(i int64) store.Fields { return store.MakeFields(i) }

// benchCfg is the shared quick-fidelity configuration. A single cached
// runner is shared across benchmarks so figures over the same cells (e.g.
// Fig 3/4/5) measure each cell once.
var benchRunner = harness.NewRunner(harness.Config{
	Scale:          0.001,
	Warmup:         200 * sim.Millisecond,
	Measure:        600 * sim.Millisecond,
	NodeCounts:     []int{1, 2, 4},
	RecordsPerNode: 10_000_000,
})

// runFigureBench executes the figure generator b.N times and reports the
// mean of the last series' final Y value.
func runFigureBench(b *testing.B, gen func() (harness.Figure, error), metricName string) {
	b.Helper()
	var last float64
	for i := 0; i < b.N; i++ {
		fig, err := gen()
		if err != nil {
			b.Fatal(err)
		}
		if len(fig.Series) > 0 && len(fig.Series[0].Y) > 0 {
			s := fig.Series[0]
			last = s.Y[len(s.Y)-1]
		}
	}
	b.ReportMetric(last, metricName)
}

func BenchmarkTable1Workloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if harness.Table1() == "" {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFig03ThroughputR(b *testing.B) {
	runFigureBench(b, benchRunner.Fig3, "cassandra_ops/s")
}

func BenchmarkFig04ReadLatencyR(b *testing.B) {
	runFigureBench(b, benchRunner.Fig4, "cassandra_read_ms")
}

func BenchmarkFig05WriteLatencyR(b *testing.B) {
	runFigureBench(b, benchRunner.Fig5, "cassandra_write_ms")
}

func BenchmarkFig06ThroughputRW(b *testing.B) {
	runFigureBench(b, benchRunner.Fig6, "cassandra_ops/s")
}

func BenchmarkFig07ReadLatencyRW(b *testing.B) {
	runFigureBench(b, benchRunner.Fig7, "cassandra_read_ms")
}

func BenchmarkFig08WriteLatencyRW(b *testing.B) {
	runFigureBench(b, benchRunner.Fig8, "cassandra_write_ms")
}

func BenchmarkFig09ThroughputW(b *testing.B) {
	runFigureBench(b, benchRunner.Fig9, "cassandra_ops/s")
}

func BenchmarkFig10ReadLatencyW(b *testing.B) {
	runFigureBench(b, benchRunner.Fig10, "cassandra_read_ms")
}

func BenchmarkFig11WriteLatencyW(b *testing.B) {
	runFigureBench(b, benchRunner.Fig11, "cassandra_write_ms")
}

func BenchmarkFig12ThroughputRS(b *testing.B) {
	runFigureBench(b, benchRunner.Fig12, "cassandra_ops/s")
}

func BenchmarkFig13ScanLatencyRS(b *testing.B) {
	runFigureBench(b, benchRunner.Fig13, "cassandra_scan_ms")
}

func BenchmarkFig14ThroughputRSW(b *testing.B) {
	runFigureBench(b, benchRunner.Fig14, "cassandra_ops/s")
}

func BenchmarkFig15BoundedReadLatency(b *testing.B) {
	runFigureBench(b, benchRunner.Fig15, "cassandra_norm")
}

func BenchmarkFig16BoundedWriteLatency(b *testing.B) {
	runFigureBench(b, benchRunner.Fig16, "cassandra_norm")
}

func BenchmarkFig17DiskUsage(b *testing.B) {
	runFigureBench(b, benchRunner.Fig17, "cassandra_gb")
}

func BenchmarkFig18ClusterDThroughput(b *testing.B) {
	runFigureBench(b, benchRunner.Fig18, "cassandra_ops/s")
}

func BenchmarkFig19ClusterDReadLatency(b *testing.B) {
	runFigureBench(b, benchRunner.Fig19, "cassandra_read_ms")
}

func BenchmarkFig20ClusterDWriteLatency(b *testing.B) {
	runFigureBench(b, benchRunner.Fig20, "cassandra_write_ms")
}

func BenchmarkAblationCassandraTokens(b *testing.B) {
	runFigureBench(b, benchRunner.Ablations()["ablation-cassandra-tokens"], "optimal_ops/s")
}

func BenchmarkAblationRedisSharding(b *testing.B) {
	runFigureBench(b, benchRunner.Ablations()["ablation-redis-sharding"], "jedis_ops/s")
}

func BenchmarkAblationMySQLBinlog(b *testing.B) {
	runFigureBench(b, benchRunner.Ablations()["ablation-mysql-binlog"], "binlog_gb")
}

func BenchmarkAblationHBaseAutoflush(b *testing.B) {
	runFigureBench(b, benchRunner.Ablations()["ablation-hbase-autoflush"], "buffered_ops/s")
}

func BenchmarkAblationVoltDBAsync(b *testing.B) {
	runFigureBench(b, benchRunner.Ablations()["ablation-voltdb-async"], "sync_ops/s")
}

func BenchmarkAblationCassandraCommitlog(b *testing.B) {
	runFigureBench(b, benchRunner.Ablations()["ablation-cassandra-commitlog"], "write_ms")
}

// BenchmarkSingleOps measures the per-operation simulation cost for each
// store (how fast the simulator itself runs, not the simulated latency).
func BenchmarkSingleOps(b *testing.B) {
	for _, sys := range harness.AllSystems {
		b.Run(string(sys), func(b *testing.B) {
			dep, err := harness.Deploy(1, sys, clusterM4(), 0.001)
			if err != nil {
				b.Fatal(err)
			}
			for i := int64(0); i < 1000; i++ {
				dep.Store.Load(keyOf(i), fieldsOf(i))
			}
			b.ResetTimer()
			dep.Engine.Go("bench", func(p *sim.Proc) {
				for i := 0; i < b.N; i++ {
					dep.Store.Read(p, keyOf(int64(i%1000)))
				}
			})
			dep.Engine.Run(0)
		})
	}
}

// BenchmarkEngineSchedule measures the scheduler hot path: scheduling and
// draining one reused timer event. This is the per-event floor every
// simulated operation pays many times over.
func BenchmarkEngineSchedule(b *testing.B) {
	e := sim.NewEngine(1)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(sim.Microsecond, fn)
		e.Run(0)
	}
}

// benchTree builds a memory-bound LSM tree with 50k records spread over
// several SSTable generations, plus the precomputed key set.
func benchTree(e *sim.Engine) (*lsm.Tree, []string) {
	n := cluster.New(e, cluster.ClusterM(1)).Nodes[0]
	tr := lsm.New(lsm.Config{
		Node:       n,
		Seed:       1,
		FlushBytes: 1 << 17,
		Overhead:   sstable.Overhead{PerEntry: 10, PerCell: 20},
		CacheBytes: 1 << 30, // fully cached: isolate CPU cost from simulated I/O
	})
	keys := make([]string, 50000)
	for i := range keys {
		keys[i] = fmt.Sprintf("key%09d", i)
		tr.LoadDirect(keys[i], [][]byte{[]byte("0123456789")})
	}
	return tr, keys
}

// BenchmarkLSMGet measures the point-read path across memtable and tables.
func BenchmarkLSMGet(b *testing.B) {
	e := sim.NewEngine(1)
	tr, keys := benchTree(e)
	b.ReportAllocs()
	b.ResetTimer()
	e.Go("r", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			if _, ok := tr.Get(p, keys[i%len(keys)]); !ok {
				// Errorf, not Fatal: Fatal must not run off the bench
				// goroutine and would deadlock the engine.
				b.Errorf("missing key %s", keys[i%len(keys)])
				return
			}
		}
	})
	e.Run(0)
}

// BenchmarkLSMInsert measures the full per-operation write path the
// benchmark's load and insert loops pay against copy-on-ingest stores:
// key build and field-set build into reused per-client buffers (the YCSB
// runner's steady-state path — zero allocations per op), WAL append
// (async) and memtable insert. The flush threshold is set beyond the
// bench's reach so the numbers isolate the per-op cost from flush churn
// (which the figure benches cover end to end).
func BenchmarkLSMInsert(b *testing.B) {
	e := sim.NewEngine(1)
	n := cluster.New(e, cluster.ClusterM(1)).Nodes[0]
	tr := lsm.New(lsm.Config{
		Node:       n,
		Seed:       1,
		FlushBytes: 1 << 40,
		Overhead:   sstable.Overhead{PerEntry: 10, PerCell: 20},
		CacheBytes: 1 << 30,
	})
	var buf store.Fields
	var kb []byte
	b.ReportAllocs()
	b.ResetTimer()
	e.Go("w", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			id := int64(i)
			buf = store.FillFields(buf, id, store.FieldBytes)
			kb = store.AppendKey(kb[:0], id)
			// Zero-copy string view of the key buffer: sound because the
			// memtable copies key bytes into its arena before returning,
			// the same contract the runner's reuse path relies on.
			tr.Put(p, unsafe.String(unsafe.SliceData(kb), len(kb)), buf)
		}
	})
	e.Run(0)
}

// BenchmarkLSMInsertNoReuse is BenchmarkLSMInsert on the allocating path
// the runner takes against stores that retain caller slices: a fresh key
// string and field set per operation. The gap against BenchmarkLSMInsert
// is the per-op win of the buffer-reuse fast path.
func BenchmarkLSMInsertNoReuse(b *testing.B) {
	e := sim.NewEngine(1)
	n := cluster.New(e, cluster.ClusterM(1)).Nodes[0]
	tr := lsm.New(lsm.Config{
		Node:       n,
		Seed:       1,
		FlushBytes: 1 << 40,
		Overhead:   sstable.Overhead{PerEntry: 10, PerCell: 20},
		CacheBytes: 1 << 30,
	})
	b.ReportAllocs()
	b.ResetTimer()
	e.Go("w", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			id := int64(i)
			tr.Put(p, store.Key(id), store.MakeFields(id))
		}
	})
	e.Run(0)
}

// benchBTreeConfig mirrors the MySQL deployment's InnoDB shape (94-row
// leaves, 512-way internals, default 1024-page pool — evictions included,
// since the load phase pays them too on small pools).
func benchBTreeConfig() btree.Config {
	return btree.Config{LeafCap: 94, InternalCap: 512}
}

// benchBTreeData precomputes benchmark-shaped keys and field sets so the
// B-tree benches measure tree cost, not key formatting.
func benchBTreeData(n int) ([]string, [][][]byte) {
	keys := make([]string, n)
	vals := make([][][]byte, n)
	for i := range keys {
		keys[i] = store.Key(int64(i))
		vals[i] = store.MakeFields(int64(i))
	}
	return keys, vals
}

// BenchmarkBTreeInsert measures the per-record insert path (workload-phase
// inserts, and the load phase when btree-bulk=off): prefix-compared
// descent, leaf insert, splits, intrusive buffer-pool touches.
func BenchmarkBTreeInsert(b *testing.B) {
	keys, vals := benchBTreeData(b.N)
	tr := btree.New(benchBTreeConfig())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Put(keys[i], vals[i])
	}
}

// BenchmarkBTreeBulkLoad measures the deferred bulk build the load phase
// uses by default: buffer the batch, then one construction pass with no
// per-touch buffer-pool work and a stamp-rebuilt pool.
func BenchmarkBTreeBulkLoad(b *testing.B) {
	keys, vals := benchBTreeData(b.N)
	tr := btree.New(benchBTreeConfig())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Load(keys[i], vals[i])
	}
	_ = tr.Len() // Len seals: the deferred build runs inside the timer
}

// BenchmarkBTreeUpdate measures the read-modify-write path MySQL/Voldemort
// updates charge: a clean descent plus an in-place leaf rewrite.
func BenchmarkBTreeUpdate(b *testing.B) {
	const n = 100_000
	keys, vals := benchBTreeData(n)
	tr := btree.New(benchBTreeConfig())
	for i := 0; i < n; i++ {
		tr.Load(keys[i], vals[i])
	}
	tr.Len() // seal outside the timer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ok, _ := tr.Update(keys[i%n], vals[i%n]); !ok {
			b.Fatal("update missed a loaded key")
		}
	}
}

// BenchmarkLSMScan measures the 50-row merged range-scan path.
func BenchmarkLSMScan(b *testing.B) {
	e := sim.NewEngine(1)
	tr, keys := benchTree(e)
	b.ReportAllocs()
	b.ResetTimer()
	e.Go("r", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			if got := tr.Scan(p, keys[i%len(keys)], 50); len(got) == 0 {
				b.Errorf("empty scan from %s", keys[i%len(keys)])
				return
			}
		}
	})
	e.Run(0)
}

func BenchmarkAblationCassandraReplication(b *testing.B) {
	runFigureBench(b, benchRunner.Ablations()["ablation-cassandra-replication"], "rf1_ops/s")
}

func BenchmarkAblationCassandraCompression(b *testing.B) {
	runFigureBench(b, benchRunner.Ablations()["ablation-cassandra-compression"], "tput_off_ops/s")
}

// benchRunAllFig3 measures end-to-end cell execution for Fig 3's plan (18
// cells at quick fidelity) on a fresh, cold runner per iteration, at the
// given worker-pool width. Serial-vs-parallel pairs quantify the cell-level
// parallelism the plan/execute runner buys on multi-core.
func benchRunAllFig3(b *testing.B, workers int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r := harness.NewRunner(harness.Config{
			Scale:          0.001,
			Warmup:         200 * sim.Millisecond,
			Measure:        600 * sim.Millisecond,
			NodeCounts:     []int{1, 2, 4},
			RecordsPerNode: 10_000_000,
		})
		r.Workers = workers
		if err := r.RunAll(r.CellsFor("3")); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunAllFig3Serial(b *testing.B)   { benchRunAllFig3(b, 1) }
func BenchmarkRunAllFig3Parallel(b *testing.B) { benchRunAllFig3(b, 0) } // 0 = GOMAXPROCS
