package repro

import (
	"regexp"
	"strings"
	"testing"
)

// TestModelVersionShape pins the identity's contract: a stable 64-hex
// SHA-256 that covers the simulator/store/harness sources but not their
// tests (a test edit must not invalidate a fleet's warm cache).
func TestModelVersionShape(t *testing.T) {
	v := ModelVersion()
	if !regexp.MustCompile(`^[0-9a-f]{64}$`).MatchString(v) {
		t.Fatalf("ModelVersion() = %q, want 64 hex chars", v)
	}
	if v2 := ModelVersion(); v2 != v {
		t.Fatalf("ModelVersion not stable: %q then %q", v, v2)
	}
}

// TestModelVersionCoversModelSources walks the embedded FS the same way the
// hash does and asserts the packages the cache key must depend on are in
// the covered set, and that no test file is.
func TestModelVersionCoversModelSources(t *testing.T) {
	var covered []string
	for _, p := range hashedPaths(t) {
		covered = append(covered, p)
		if strings.HasSuffix(p, "_test.go") {
			t.Errorf("test file %s included in the model hash", p)
		}
	}
	joined := strings.Join(covered, "\n")
	for _, must := range []string{
		"internal/sim/sim.go",
		"internal/lsm/lsm.go",
		"internal/btree/btree.go",
		"internal/memtable/memtable.go",
		"internal/sstable/",
		"internal/wal/wal.go",
		"internal/fault/fault.go",
		"internal/ycsb/runner.go",
		"internal/stores/cassandra/cassandra.go",
		"internal/harness/runner.go",
	} {
		if !strings.Contains(joined, must) {
			t.Errorf("model hash does not cover %s", must)
		}
	}
}

// hashedPaths re-derives the file set ModelVersion hashes.
func hashedPaths(t *testing.T) []string {
	t.Helper()
	entries, err := modelFS.ReadDir("internal")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("embedded internal/ is empty")
	}
	var out []string
	var walk func(dir string)
	walk = func(dir string) {
		es, err := modelFS.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range es {
			p := dir + "/" + e.Name()
			if e.IsDir() {
				walk(p)
				continue
			}
			if strings.HasSuffix(p, ".go") && !strings.HasSuffix(p, "_test.go") {
				out = append(out, p)
			}
		}
	}
	walk("internal")
	return out
}
