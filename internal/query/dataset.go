package query

import (
	"fmt"
	"sort"

	"repro/internal/apm"
	"repro/internal/store"
)

// Dataset is the deterministic APM measurement grid query cells run
// against: Hosts monitored hosts, each reporting MetricsPerHost metric
// series (apm.Agent's naming scheme) every IntervalSec seconds for
// Intervals reporting intervals starting at BaseTs.
//
// Unlike the YCSB keyspace — hash-permuted so key ranges are uniformly
// loaded — the grid is loaded in global key order (a historical backfill:
// metric-major, timestamps ascending). Each node's hash-routed subset of an
// ordered stream is itself ordered, so node-local sstables come out
// key-striped and per-metric range scans actually prune tables by key
// range, which permuted YCSB keys never let Figure-driving cells observe.
type Dataset struct {
	Hosts          int
	MetricsPerHost int
	Intervals      int64
	IntervalSec    int64
	BaseTs         int64
}

// datasetBaseTs keeps timestamps epoch-like and fixed-width under the
// 12-digit key encoding.
const datasetBaseTs = 1_600_000_000

// SizeDataset shapes a grid holding about records measurements: the host
// and per-host series counts are fixed (8 hosts x 20 series — 4 components
// x 5 metric kinds), and history depth absorbs the dataset size, exactly
// how an APM store grows (§3: retention, not cardinality, dominates).
func SizeDataset(records int64) Dataset {
	d := Dataset{Hosts: 8, MetricsPerHost: 20, IntervalSec: 15, BaseTs: datasetBaseTs}
	d.Intervals = records / int64(d.Hosts*d.MetricsPerHost)
	if d.Intervals < 1 {
		d.Intervals = 1
	}
	return d
}

// Records is the number of measurements the grid holds.
func (d Dataset) Records() int64 {
	return int64(d.Hosts*d.MetricsPerHost) * d.Intervals
}

// LastTs is the newest timestamp in the grid — the "now" dashboards anchor
// their windows to.
func (d Dataset) LastTs() int64 {
	return d.BaseTs + (d.Intervals-1)*d.IntervalSec
}

// HostName names host h.
func (d Dataset) HostName(h int) string { return fmt.Sprintf("Host%03d", h) }

// HostMetrics returns host h's metric names in key order.
func (d Dataset) HostMetrics(h int) []string {
	kinds := []string{"AverageResponseTime", "ConnectionCount", "CPUUtilization", "ErrorRate", "HeapUsage"}
	host := d.HostName(h)
	out := make([]string, 0, d.MetricsPerHost)
	for i := 0; i < d.MetricsPerHost; i++ {
		out = append(out, fmt.Sprintf("%s/Agent/Component%03d/%s", host, i/len(kinds), kinds[i%len(kinds)]))
	}
	sort.Strings(out)
	return out
}

// HostRanges builds the per-metric scan ranges for a host dashboard panel
// over [from, to]: one range per metric series, each a separate seek —
// which is what lets the LSM scan path prune sstables per series.
func (d Dataset) HostRanges(h int, from, to int64) []Range {
	metrics := d.HostMetrics(h)
	out := make([]Range, len(metrics))
	for i, m := range metrics {
		out[i] = Range{Metric: m, From: from, To: to}
	}
	return out
}

// Window clamps a trailing window of win seconds ending at LastTs to the
// grid's extent.
func (d Dataset) Window(win int64) (from, to int64) {
	to = d.LastTs()
	from = to - win + 1
	if from < d.BaseTs {
		from = d.BaseTs
	}
	return from, to
}

// Load populates the store with the whole grid in global key order. Values
// are a deterministic hash of (metric, timestamp) — integer-derived, so
// every platform computes bit-identical floats.
func (d Dataset) Load(s store.Store) error {
	metrics := make([]string, 0, d.Hosts*d.MetricsPerHost)
	for h := 0; h < d.Hosts; h++ {
		metrics = append(metrics, d.HostMetrics(h)...)
	}
	sort.Strings(metrics)
	for _, metric := range metrics {
		for k := int64(0); k < d.Intervals; k++ {
			m := d.synth(metric, k)
			if err := s.Load(m.Key(), m.Fields()); err != nil {
				return fmt.Errorf("query: load %s: %w", m.Key(), err)
			}
		}
	}
	return nil
}

// synth builds interval k's measurement for metric: value in [0, 100] from
// a mixed integer hash, min/max the fixed envelope agents report.
func (d Dataset) synth(metric string, k int64) apm.Measurement {
	ts := d.BaseTs + k*d.IntervalSec
	h := fnv64a(metric) ^ uint64(ts)
	// MurmurHash3 64-bit finalizer: decorrelates consecutive timestamps.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	v := float64(h%1001) / 10
	return apm.Measurement{
		Metric:    metric,
		Value:     v,
		Min:       v * 0.8,
		Max:       v * 1.25,
		Timestamp: ts,
		Duration:  d.IntervalSec,
	}
}

func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
