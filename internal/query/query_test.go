package query

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"testing"

	"repro/internal/apm"
	"repro/internal/sim"
	"repro/internal/store"
)

// memStore is a minimal sorted in-memory Store for operator tests: every
// scan charges a fixed small virtual cost (so closed-loop runs advance
// simulated time) and serves records in key order like any real store.
type memStore struct {
	keys []string
	recs map[string]store.Fields
}

func newMemStore() *memStore { return &memStore{recs: map[string]store.Fields{}} }

func (m *memStore) Name() string { return "mem" }

func (m *memStore) Load(key string, f store.Fields) error {
	if _, ok := m.recs[key]; !ok {
		i := sort.SearchStrings(m.keys, key)
		m.keys = append(m.keys, "")
		copy(m.keys[i+1:], m.keys[i:])
		m.keys[i] = key
	}
	m.recs[key] = f
	return nil
}

func (m *memStore) Insert(p *sim.Proc, key string, f store.Fields) error {
	return m.Load(key, f)
}

func (m *memStore) Update(p *sim.Proc, key string, f store.Fields) error {
	return m.Load(key, f)
}

func (m *memStore) Read(p *sim.Proc, key string) (store.FieldsView, error) {
	f, ok := m.recs[key]
	if !ok {
		return store.FieldsView{}, store.ErrNotFound
	}
	return store.ViewFields(f), nil
}

func (m *memStore) Scan(p *sim.Proc, start string, count int) (store.Cursor, error) {
	p.Sleep(10 * sim.Microsecond)
	i := sort.SearchStrings(m.keys, start)
	out := make([]store.Record, 0, count)
	for ; i < len(m.keys) && len(out) < count; i++ {
		out = append(out, store.Record{Key: m.keys[i], Fields: store.ViewFields(m.recs[m.keys[i]])})
	}
	return store.NewSliceCursor(out), nil
}

func (m *memStore) Caps() store.Caps { return store.Caps{Scans: true, Queries: true} }
func (m *memStore) DiskUsage() int64 { return 0 }

// inProc runs fn inside one simulated process and drains the engine.
func inProc(t testing.TB, fn func(p *sim.Proc)) {
	t.Helper()
	e := sim.NewEngine(1)
	e.Go("test", fn)
	e.Run(0)
}

func TestSpecNormalizeDefaults(t *testing.T) {
	s := Spec{Name: "q"}
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	want := Spec{Name: "q", Weight: 1, WindowSec: 600, GroupBy: "metric",
		Column: "value", Aggs: []string{"avg"}, OrderBy: "group"}
	if fmt.Sprint(s) != fmt.Sprint(want) {
		t.Fatalf("defaults = %+v, want %+v", s, want)
	}
}

func TestSpecNormalizeRejects(t *testing.T) {
	bad := []Spec{
		{},
		{Name: "a b"},
		{Name: "q", Weight: -1},
		{Name: "q", GroupBy: "host"},
		{Name: "q", Column: "median"},
		{Name: "q", Aggs: []string{"sum"}},
		{Name: "q", Aggs: []string{"avg", "avg"}},
		{Name: "q", Filter: "value=50"},
		{Name: "q", Filter: "rate>50"},
		{Name: "q", OrderBy: "p99"},
		{Name: "q", Limit: -1},
	}
	for i, s := range bad {
		if err := s.Normalize(); err == nil {
			t.Errorf("spec %d (%+v) unexpectedly valid", i, s)
		}
	}
}

func TestMixCanonicalRoundTrip(t *testing.T) {
	m := Mix{
		{Name: "overview", Weight: 4, WindowSec: 600, Aggs: []string{"avg", "max"}},
		{Name: "hot", Weight: 2, WindowSec: 1800, Filter: "value>80",
			Aggs: []string{"count", "avg"}, OrderBy: "count", Desc: true, Limit: 5},
		{Name: "tails", WindowSec: 3600, GroupBy: "kind", Column: "max",
			Aggs: []string{"p50", "p99"}},
	}
	if err := m.Normalize(); err != nil {
		t.Fatal(err)
	}
	enc := m.String()
	back, err := ParseMix(enc)
	if err != nil {
		t.Fatalf("ParseMix(%q): %v", enc, err)
	}
	if got := back.String(); got != enc {
		t.Fatalf("round trip changed the encoding:\n in: %s\nout: %s", enc, got)
	}
	if fmt.Sprint(back) != fmt.Sprint(m) {
		t.Fatalf("round trip changed the mix:\n in: %+v\nout: %+v", m, back)
	}
}

func TestParseMixRejectsMalformed(t *testing.T) {
	for _, enc := range []string{
		"",
		"noparens",
		"q(w=1",
		"q(wat=1,win=600,group=metric,col=value,aggs=avg,filter=,order=group,limit=0)",
		"q(w=x,win=600,group=metric,col=value,aggs=avg,filter=,order=group,limit=0)",
		// duplicate names across the mix
		"a(w=1,win=600,group=metric,col=value,aggs=avg,filter=,order=group,limit=0)+a(w=1,win=600,group=metric,col=value,aggs=avg,filter=,order=group,limit=0)",
	} {
		if _, err := ParseMix(enc); err == nil {
			t.Errorf("ParseMix(%q) unexpectedly valid", enc)
		}
	}
}

func TestDatasetDeterministicAndOrdered(t *testing.T) {
	ds := SizeDataset(16000)
	if ds.Records() != int64(ds.Hosts*ds.MetricsPerHost)*ds.Intervals {
		t.Fatalf("Records() inconsistent")
	}
	a, b := newMemStore(), newMemStore()
	if err := ds.Load(a); err != nil {
		t.Fatal(err)
	}
	if err := ds.Load(b); err != nil {
		t.Fatal(err)
	}
	if len(a.keys) != int(ds.Records()) {
		t.Fatalf("loaded %d keys, want %d", len(a.keys), ds.Records())
	}
	for i, k := range a.keys {
		if b.keys[i] != k {
			t.Fatalf("load not deterministic at %d: %q vs %q", i, k, b.keys[i])
		}
		av, bv := a.recs[k], b.recs[k]
		for j := range av {
			if string(av[j]) != string(bv[j]) {
				t.Fatalf("field %d of %q differs across loads", j, k)
			}
		}
	}
	// Values are integer-derived and must land exactly on tenths.
	m := ds.synth(ds.HostMetrics(0)[0], 3)
	if m.Value < 0 || m.Value > 100.1 || m.Value*10 != math.Trunc(m.Value*10) {
		t.Fatalf("synth value %v outside the deterministic grid", m.Value)
	}
}

// expectedRows computes a query's grouped output directly from the dataset
// definition (no store, no operators) for golden comparison.
func expectedRows(ds Dataset, host int, s Spec) []ResultRow {
	from, to := ds.Window(s.WindowSec)
	var pred func(apm.Measurement) bool
	if s.Filter != "" {
		pred, _ = filterPred(s.Filter)
	}
	col := column(s.Column)
	groups := map[string][]float64{}
	for _, metric := range ds.HostMetrics(host) {
		for k := int64(0); k < ds.Intervals; k++ {
			m := ds.synth(metric, k)
			if m.Timestamp < from || m.Timestamp > to {
				continue
			}
			if pred != nil && !pred(m) {
				continue
			}
			g := m.Metric
			switch s.GroupBy {
			case "kind":
				if i := lastSlash(g); i >= 0 {
					g = g[i+1:]
				}
			case "none":
				g = "all"
			}
			groups[g] = append(groups[g], col(m))
		}
	}
	var rows []ResultRow
	for _, g := range sortedGroups(groups) {
		vals := groups[g]
		row := ResultRow{Group: g, Aggs: make([]float64, len(s.Aggs))}
		for i, a := range s.Aggs {
			switch a {
			case "count":
				row.Aggs[i] = float64(len(vals))
			case "avg":
				var sum float64
				for _, v := range vals {
					sum += v
				}
				row.Aggs[i] = sum / float64(len(vals))
			case "min":
				mn := vals[0]
				for _, v := range vals {
					if v < mn {
						mn = v
					}
				}
				row.Aggs[i] = mn
			case "max":
				mx := vals[0]
				for _, v := range vals {
					if v > mx {
						mx = v
					}
				}
				row.Aggs[i] = mx
			case "p50":
				row.Aggs[i] = percentile(append([]float64(nil), vals...), 0.50)
			case "p99":
				row.Aggs[i] = percentile(append([]float64(nil), vals...), 0.99)
			}
		}
		rows = append(rows, row)
	}
	return OrderLimit(rows, s.OrderBy, s.Aggs, s.Desc, s.Limit)
}

func TestExecuteMatchesDirectComputation(t *testing.T) {
	ds := SizeDataset(8000)
	st := newMemStore()
	if err := ds.Load(st); err != nil {
		t.Fatal(err)
	}
	specs := []Spec{
		{Name: "plain", WindowSec: 600, Aggs: []string{"avg", "max", "count"}},
		{Name: "filtered", WindowSec: 1800, Filter: "value>50", Aggs: []string{"count", "avg"}},
		{Name: "kinds", WindowSec: 3600, GroupBy: "kind", Aggs: []string{"p50", "p99", "min"}},
		{Name: "global", WindowSec: 900, GroupBy: "none", Column: "max", Aggs: []string{"avg"}},
		{Name: "top3", WindowSec: 1800, Aggs: []string{"avg"}, OrderBy: "avg", Desc: true, Limit: 3},
	}
	for _, s := range specs {
		t.Run(s.Name, func(t *testing.T) {
			q, err := Plan(s)
			if err != nil {
				t.Fatal(err)
			}
			for host := 0; host < 2; host++ {
				from, to := ds.Window(q.Spec.WindowSec)
				var got []ResultRow
				inProc(t, func(p *sim.Proc) {
					var err error
					got, err = q.Execute(p, st, ds.HostRanges(host, from, to))
					if err != nil {
						t.Errorf("Execute: %v", err)
					}
				})
				want := expectedRows(ds, host, q.Spec)
				if len(got) == 0 {
					t.Fatalf("host %d: no rows", host)
				}
				if fmt.Sprint(got) != fmt.Sprint(want) {
					t.Fatalf("host %d rows diverge:\n got %v\nwant %v", host, got, want)
				}
			}
		})
	}
}

func TestScanOpPaginatesWithoutLoss(t *testing.T) {
	// Window depth greater than the page size forces multi-page ranges:
	// every in-window row must come out exactly once, in key order.
	ds := Dataset{Hosts: 1, MetricsPerHost: 4, Intervals: 150, IntervalSec: 15, BaseTs: datasetBaseTs}
	st := newMemStore()
	if err := ds.Load(st); err != nil {
		t.Fatal(err)
	}
	from, to := ds.Window(150 * 15)
	var rows []apm.Measurement
	inProc(t, func(p *sim.Proc) {
		scan := NewScan(p, st, ds.HostRanges(0, from, to), DefaultPageSize)
		for {
			m, ok := scan.Next()
			if !ok {
				break
			}
			rows = append(rows, m)
		}
		if err := scan.Err(); err != nil {
			t.Errorf("scan: %v", err)
		}
	})
	if len(rows) != int(ds.Records()) {
		t.Fatalf("streamed %d rows, want %d", len(rows), ds.Records())
	}
	for i := 1; i < len(rows); i++ {
		if rows[i-1].Metric == rows[i].Metric && rows[i-1].Timestamp >= rows[i].Timestamp {
			t.Fatalf("rows out of order at %d: %v then %v", i, rows[i-1], rows[i])
		}
	}
}

func TestPercentileNearestRank(t *testing.T) {
	vals := []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	if p := percentile(append([]float64(nil), vals...), 0.50); p != 50 {
		t.Fatalf("p50 = %v, want 50", p)
	}
	if p := percentile(append([]float64(nil), vals...), 0.99); p != 100 {
		t.Fatalf("p99 = %v, want 100", p)
	}
	if p := percentile([]float64{7}, 0.99); p != 7 {
		t.Fatalf("p99 of singleton = %v, want 7", p)
	}
	if p := percentile(nil, 0.5); p != 0 {
		t.Fatalf("p50 of empty = %v, want 0", p)
	}
}

func TestRunCollectsQueryLatencies(t *testing.T) {
	ds := SizeDataset(4000)
	st := newMemStore()
	if err := ds.Load(st); err != nil {
		t.Fatal(err)
	}
	mix := Mix{{Name: "overview", WindowSec: 600}, {Name: "deep", Weight: 0.5, WindowSec: 3600}}
	e := sim.NewEngine(7)
	res, err := Run(e, RunConfig{
		Store:   st,
		Dataset: ds,
		Mix:     mix,
		Clients: 4,
		Warmup:  10 * sim.Millisecond,
		Measure: 50 * sim.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops() == 0 {
		t.Fatal("no queries completed in the measured window")
	}
	if res.Errors() != 0 {
		t.Fatalf("%d errors", res.Errors())
	}
	if res.Throughput() <= 0 {
		t.Fatalf("throughput = %v", res.Throughput())
	}
}

func TestRunRejectsQuerylessStores(t *testing.T) {
	ds := SizeDataset(1000)
	e := sim.NewEngine(1)
	_, err := Run(e, RunConfig{
		Store:   noQueryStore{newMemStore()},
		Dataset: ds,
		Mix:     Mix{{Name: "q"}},
		Clients: 1,
		Measure: sim.Millisecond,
	})
	if err == nil || !strings.Contains(err.Error(), "scan") {
		t.Fatalf("err = %v, want scans-unsupported", err)
	}
}

type noQueryStore struct{ *memStore }

func (noQueryStore) Caps() store.Caps { return store.Caps{} }

func BenchmarkQueryFilterAgg(b *testing.B) {
	ds := SizeDataset(4000)
	st := newMemStore()
	if err := ds.Load(st); err != nil {
		b.Fatal(err)
	}
	q, err := Plan(Spec{Name: "bench", WindowSec: 3600, Filter: "value>50",
		Aggs: []string{"count", "avg", "p99"}})
	if err != nil {
		b.Fatal(err)
	}
	from, to := ds.Window(q.Spec.WindowSec)
	ranges := ds.HostRanges(0, from, to)
	e := sim.NewEngine(1)
	b.ReportAllocs()
	b.ResetTimer()
	e.Go("bench", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			if _, err := q.Execute(p, st, ranges); err != nil {
				b.Error(err)
				return
			}
		}
	})
	e.Run(0)
}
