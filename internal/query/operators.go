package query

import (
	"fmt"
	"sort"

	"repro/internal/apm"
	"repro/internal/sim"
	"repro/internal/store"
)

// Iter is the volcano-style pull interface between row-streaming operators:
// Next returns the next measurement until the stream is exhausted, after
// which Err reports the first upstream failure (a store scan error, a
// malformed record).
type Iter interface {
	Next() (apm.Measurement, bool)
	Err() error
}

// Range is one per-metric scan range: the [From, To] time window of a
// single metric series — the unit the dashboard's multi-series panel seeks
// per displayed metric.
type Range struct {
	Metric   string
	From, To int64
}

// DefaultPageSize is the scan operator's page length: each page is one
// store scan RPC, the same pagination apm.Window uses.
const DefaultPageSize = 60

// ScanOp streams measurements from the store, one page-sized cursor at a
// time, across a list of per-metric ranges. Each page open charges the
// store's full scan cost in virtual time (positioning, per-row CPU, wire
// transfer); pulling rows from the open cursor is host-side only. A range
// ends when a row leaves the metric or the window, or a short page proves
// the series is exhausted.
type ScanOp struct {
	p        *sim.Proc
	st       store.Store
	ranges   []Range
	pageSize int

	ri       int // current range
	cur      store.Cursor
	got      int    // rows pulled from the current page
	lastKey  string // continuation point for the next page
	seekNext bool   // current range needs a fresh page
	err      error
}

// NewScan opens a streaming scan over ranges. No I/O happens until the
// first Next.
func NewScan(p *sim.Proc, st store.Store, ranges []Range, pageSize int) *ScanOp {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	return &ScanOp{p: p, st: st, ranges: ranges, pageSize: pageSize, seekNext: true}
}

// Next implements Iter.
func (s *ScanOp) Next() (apm.Measurement, bool) {
	for s.err == nil && s.ri < len(s.ranges) {
		r := s.ranges[s.ri]
		if s.seekNext {
			start := apm.Measurement{Metric: r.Metric, Timestamp: r.From}.Key()
			if s.lastKey != "" {
				start = s.lastKey + "\x00"
			}
			cur, err := s.st.Scan(s.p, start, s.pageSize)
			if err != nil {
				s.err = err
				return apm.Measurement{}, false
			}
			s.cur, s.got, s.seekNext = cur, 0, false
		}
		if !s.cur.Next() {
			// Cursor exhausted: a full page continues the range from its
			// last key, a short page means the key space itself ran out.
			short := s.got < s.pageSize
			s.closeCur()
			if short {
				s.nextRange()
			} else {
				s.seekNext = true
			}
			continue
		}
		s.got++
		key := s.cur.Key()
		m, err := apm.Decode(key, s.cur.Fields())
		if err != nil {
			s.err = err
			s.closeCur()
			return apm.Measurement{}, false
		}
		if m.Metric != r.Metric || m.Timestamp > r.To {
			// Left the series or the window: this range is done. The rest
			// of the page was already paid for (scan charges are count-
			// based at open), exactly like the materialized reader that
			// over-fetched its last page.
			s.closeCur()
			s.nextRange()
			continue
		}
		s.lastKey = key
		return m, true
	}
	s.closeCur()
	return apm.Measurement{}, false
}

func (s *ScanOp) closeCur() {
	if s.cur != nil {
		s.cur.Close()
		s.cur = nil
	}
}

func (s *ScanOp) nextRange() {
	s.ri++
	s.lastKey = ""
	s.seekNext = true
}

// Err implements Iter.
func (s *ScanOp) Err() error { return s.err }

// FilterOp drops rows failing a predicate.
type FilterOp struct {
	in   Iter
	pred func(apm.Measurement) bool
}

// NewFilter wraps in with a row predicate.
func NewFilter(in Iter, pred func(apm.Measurement) bool) *FilterOp {
	return &FilterOp{in: in, pred: pred}
}

// Next implements Iter.
func (f *FilterOp) Next() (apm.Measurement, bool) {
	for {
		m, ok := f.in.Next()
		if !ok {
			return apm.Measurement{}, false
		}
		if f.pred(m) {
			return m, true
		}
	}
}

// Err implements Iter.
func (f *FilterOp) Err() error { return f.in.Err() }

// filterPred compiles a validated filter expression.
func filterPred(expr string) (func(apm.Measurement) bool, error) {
	col, op, val, err := parseFilter(expr)
	if err != nil {
		return nil, err
	}
	colFn := column(col)
	switch op {
	case "<":
		return func(m apm.Measurement) bool { return colFn(m) < val }, nil
	case "<=":
		return func(m apm.Measurement) bool { return colFn(m) <= val }, nil
	case ">":
		return func(m apm.Measurement) bool { return colFn(m) > val }, nil
	default:
		return func(m apm.Measurement) bool { return colFn(m) >= val }, nil
	}
}

// column returns the projection for a validated column name.
func column(col string) func(apm.Measurement) float64 {
	switch col {
	case "min":
		return func(m apm.Measurement) float64 { return m.Min }
	case "max":
		return func(m apm.Measurement) float64 { return m.Max }
	default:
		return func(m apm.Measurement) float64 { return m.Value }
	}
}

// Projected is a row after projection: its group key and the single value
// column the aggregates consume.
type Projected struct {
	Group string
	Val   float64
}

// ProjIter is the pull interface between projection and aggregation.
type ProjIter interface {
	Next() (Projected, bool)
	Err() error
}

// ProjectOp maps measurements to (group, value) pairs.
type ProjectOp struct {
	in      Iter
	groupBy string
	col     func(apm.Measurement) float64
}

// NewProject projects rows onto a validated groupBy and column.
func NewProject(in Iter, groupBy, col string) *ProjectOp {
	return &ProjectOp{in: in, groupBy: groupBy, col: column(col)}
}

// Next implements ProjIter.
func (o *ProjectOp) Next() (Projected, bool) {
	m, ok := o.in.Next()
	if !ok {
		return Projected{}, false
	}
	return Projected{Group: o.group(m), Val: o.col(m)}, true
}

func (o *ProjectOp) group(m apm.Measurement) string {
	switch o.groupBy {
	case "metric":
		return m.Metric
	case "kind":
		if i := lastSlash(m.Metric); i >= 0 {
			return m.Metric[i+1:]
		}
		return m.Metric
	default:
		return "all"
	}
}

func lastSlash(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' {
			return i
		}
	}
	return -1
}

// Err implements ProjIter.
func (o *ProjectOp) Err() error { return o.in.Err() }

// aggState is one group's running aggregate state. Percentile aggregates
// keep the projected values; the cheap aggregates are O(1) counters.
type aggState struct {
	n        int64
	sum      float64
	min, max float64
	vals     []float64 // only when a percentile was requested
}

// ResultRow is one grouped output row: the group key and the requested
// aggregates, positionally matching the spec's Aggs.
type ResultRow struct {
	Group string
	Aggs  []float64
}

// Aggregate drains the projected stream into per-group aggregate state and
// emits one row per group, sorted by group key. It is the pipeline's
// barrier: group-by cannot emit before its input is exhausted.
func Aggregate(in ProjIter, aggs []string) ([]ResultRow, error) {
	keepVals := aggIndex(aggs, "p50") >= 0 || aggIndex(aggs, "p99") >= 0
	groups := map[string]*aggState{}
	for {
		r, ok := in.Next()
		if !ok {
			break
		}
		st := groups[r.Group]
		if st == nil {
			st = &aggState{min: r.Val, max: r.Val}
			groups[r.Group] = st
		}
		st.n++
		st.sum += r.Val
		if r.Val < st.min {
			st.min = r.Val
		}
		if r.Val > st.max {
			st.max = r.Val
		}
		if keepVals {
			st.vals = append(st.vals, r.Val)
		}
	}
	if err := in.Err(); err != nil {
		return nil, err
	}
	out := make([]ResultRow, 0, len(groups))
	for _, g := range sortedGroups(groups) {
		st := groups[g]
		row := ResultRow{Group: g, Aggs: make([]float64, len(aggs))}
		for i, a := range aggs {
			switch a {
			case "count":
				row.Aggs[i] = float64(st.n)
			case "avg":
				row.Aggs[i] = st.sum / float64(st.n)
			case "min":
				row.Aggs[i] = st.min
			case "max":
				row.Aggs[i] = st.max
			case "p50":
				row.Aggs[i] = percentile(st.vals, 0.50)
			case "p99":
				row.Aggs[i] = percentile(st.vals, 0.99)
			}
		}
		out = append(out, row)
	}
	return out, nil
}

// percentile is the nearest-rank percentile of vals (sorted in place).
func percentile(vals []float64, q float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sort.Float64s(vals)
	rank := int(q*float64(len(vals)) + 0.9999999999)
	if rank < 1 {
		rank = 1
	}
	if rank > len(vals) {
		rank = len(vals)
	}
	return vals[rank-1]
}

// OrderLimit sorts the grouped rows by "group" or a named aggregate
// (ties break on group key, so the order is total and deterministic) and
// truncates to limit when limit > 0.
func OrderLimit(rows []ResultRow, orderBy string, aggs []string, desc bool, limit int) []ResultRow {
	if orderBy != "group" {
		ai := aggIndex(aggs, orderBy)
		sort.SliceStable(rows, func(i, j int) bool {
			if rows[i].Aggs[ai] != rows[j].Aggs[ai] {
				return rows[i].Aggs[ai] < rows[j].Aggs[ai]
			}
			return rows[i].Group < rows[j].Group
		})
	}
	if desc {
		for i, j := 0, len(rows)-1; i < j; i, j = i+1, j-1 {
			rows[i], rows[j] = rows[j], rows[i]
		}
	}
	if limit > 0 && len(rows) > limit {
		rows = rows[:limit]
	}
	return rows
}

// Query is a planned pipeline for one spec.
type Query struct {
	Spec Spec
	pred func(apm.Measurement) bool // nil when unfiltered
}

// Plan validates and normalizes the spec and compiles its pipeline.
func Plan(s Spec) (*Query, error) {
	if err := s.Normalize(); err != nil {
		return nil, err
	}
	q := &Query{Spec: s}
	if s.Filter != "" {
		pred, err := filterPred(s.Filter)
		if err != nil {
			return nil, fmt.Errorf("query: %s: %w", s.Name, err)
		}
		q.pred = pred
	}
	return q, nil
}

// Execute runs the pipeline over the given per-metric ranges:
// scan → [filter] → project → aggregate → order/limit.
func (q *Query) Execute(p *sim.Proc, st store.Store, ranges []Range) ([]ResultRow, error) {
	var rows Iter = NewScan(p, st, ranges, DefaultPageSize)
	if q.pred != nil {
		rows = NewFilter(rows, q.pred)
	}
	grouped, err := Aggregate(NewProject(rows, q.Spec.GroupBy, q.Spec.Column), q.Spec.Aggs)
	if err != nil {
		return nil, err
	}
	return OrderLimit(grouped, q.Spec.OrderBy, q.Spec.Aggs, q.Spec.Desc, q.Spec.Limit), nil
}
