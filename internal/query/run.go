package query

import (
	"errors"
	"fmt"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/store"
)

// RunConfig drives a closed-loop query workload: Clients dashboard
// sessions, each issuing one query at a time drawn from the weighted Mix,
// against a store pre-loaded with Dataset.
type RunConfig struct {
	Store   store.Store
	Dataset Dataset
	Mix     Mix // normalized
	Clients int
	Warmup  sim.Time
	Measure sim.Time
	// UnavailableBackoff paces retries against down nodes (default 1ms).
	UnavailableBackoff sim.Time
}

// Result carries the collector; query latencies are recorded as scan
// operations (a query is a scan pipeline; the harness reports them under
// the scan-latency metric).
type Result struct {
	*stats.Collector
	Config RunConfig
}

// Run executes the query workload and returns collected statistics,
// mirroring ycsb.Run's closed-loop shape: warmup, then a measured window,
// then in-flight queries drain.
func Run(e *sim.Engine, cfg RunConfig) (*Result, error) {
	if err := cfg.Mix.Normalize(); err != nil {
		return nil, err
	}
	if cfg.Clients <= 0 {
		return nil, fmt.Errorf("query: need at least one client")
	}
	if cfg.Measure <= 0 {
		return nil, fmt.Errorf("query: measurement window must be positive")
	}
	if cfg.Dataset.Hosts <= 0 {
		return nil, fmt.Errorf("query: dataset has no hosts")
	}
	if !cfg.Store.Caps().Queries {
		return nil, store.ErrScansUnsupported
	}
	backoff := cfg.UnavailableBackoff
	if backoff <= 0 {
		backoff = sim.Millisecond
	}
	col := stats.NewCollector()
	stopAt := e.Now() + cfg.Warmup + cfg.Measure
	e.Schedule(cfg.Warmup, func() { col.Begin(e.Now()) })
	e.Schedule(cfg.Warmup+cfg.Measure, func() { col.Finish(e.Now()) })

	// Plan each spec once; Execute is reentrant across clients.
	plans := make([]*Query, len(cfg.Mix))
	for i, s := range cfg.Mix {
		q, err := Plan(s)
		if err != nil {
			return nil, err
		}
		plans[i] = q
	}

	for i := 0; i < cfg.Clients; i++ {
		e.Go(fmt.Sprintf("query-client-%d", i), func(p *sim.Proc) {
			rng := p.Rand()
			for p.Now() < stopAt {
				q := plans[cfg.Mix.pick(rng.Float64())]
				host := rng.Intn(cfg.Dataset.Hosts)
				from, to := cfg.Dataset.Window(q.Spec.WindowSec)
				ranges := cfg.Dataset.HostRanges(host, from, to)
				opStart := p.Now()
				_, err := q.Execute(p, cfg.Store, ranges)
				if err != nil {
					col.RecordError()
					if errors.Is(err, store.ErrUnavailable) {
						p.Sleep(backoff)
					}
					continue
				}
				col.Record(stats.OpScan, p.Now()-opStart)
			}
		})
	}
	e.Run(0)
	if col.Window() == 0 {
		col.Finish(e.Now())
	}
	return &Result{Collector: col, Config: cfg}, nil
}
