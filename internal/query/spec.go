// Package query is a small volcano-style analytic layer over the store
// cursor API, modeling the APM read side the paper motivates (§2): a
// dashboard issues per-metric time-range scans and pipes them through
// filter → project → group-by aggregation (including percentiles), then
// orders and limits the grouped output. Operators pull rows one at a time
// from the streaming scan; no stage materializes the raw measurement set.
//
// Queries are declared as a Spec (JSON-friendly, used by the scenario
// vocabulary), normalized to a canonical string that the harness embeds in
// cell cache keys, and planned into an operator pipeline with Plan.
package query

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Spec declares one analytic query shape. Zero values take documented
// defaults in Normalize; the canonical form (String) spells every field
// out so cache keys never shift when defaults change.
type Spec struct {
	// Name labels the query in mixes, progress lines and figures.
	Name string `json:"name"`
	// Weight is the query's share of the mix (default 1).
	Weight float64 `json:"weight,omitempty"`
	// WindowSec is the scanned time range per metric, ending at the
	// dataset's newest timestamp (default 600: the paper's "last 10
	// minutes" window class).
	WindowSec int64 `json:"windowSec,omitempty"`
	// GroupBy buckets rows: "metric" (default), "kind" (the metric
	// name's last path component) or "none" (one global group).
	GroupBy string `json:"groupBy,omitempty"`
	// Column is the projected value column: "value" (default), "min" or
	// "max".
	Column string `json:"column,omitempty"`
	// Aggs are the aggregates computed per group, from count, avg, min,
	// max, p50, p99 (default avg).
	Aggs []string `json:"aggs,omitempty"`
	// Filter is an optional row predicate "column op constant" applied
	// before grouping, e.g. "value>50"; ops are < <= > >=.
	Filter string `json:"filter,omitempty"`
	// OrderBy sorts the grouped output by "group" (default) or by one of
	// the Aggs.
	OrderBy string `json:"orderBy,omitempty"`
	// Desc reverses the order.
	Desc bool `json:"desc,omitempty"`
	// Limit truncates the grouped output (0 = unlimited).
	Limit int `json:"limit,omitempty"`
}

// groupKinds and columns enumerate the operator vocabulary.
var (
	groupKinds = map[string]bool{"none": true, "metric": true, "kind": true}
	columns    = map[string]bool{"value": true, "min": true, "max": true}
	aggKinds   = map[string]bool{"count": true, "avg": true, "min": true, "max": true, "p50": true, "p99": true}
	filterOps  = []string{"<=", ">=", "<", ">"} // two-char ops first
)

// Normalize applies defaults and validates the spec in place.
func (s *Spec) Normalize() error {
	if s.Name == "" {
		return fmt.Errorf("query: spec needs a name")
	}
	for _, r := range s.Name {
		if r != '-' && r != '_' && !('a' <= r && r <= 'z') && !('A' <= r && r <= 'Z') && !('0' <= r && r <= '9') {
			return fmt.Errorf("query: name %q: use letters, digits, - and _", s.Name)
		}
	}
	if s.Weight == 0 {
		s.Weight = 1
	}
	if s.Weight < 0 {
		return fmt.Errorf("query: %s: negative weight", s.Name)
	}
	if s.WindowSec == 0 {
		s.WindowSec = 600
	}
	if s.WindowSec < 0 {
		return fmt.Errorf("query: %s: negative window", s.Name)
	}
	if s.GroupBy == "" {
		s.GroupBy = "metric"
	}
	if !groupKinds[s.GroupBy] {
		return fmt.Errorf("query: %s: unknown groupBy %q (none, metric, kind)", s.Name, s.GroupBy)
	}
	if s.Column == "" {
		s.Column = "value"
	}
	if !columns[s.Column] {
		return fmt.Errorf("query: %s: unknown column %q (value, min, max)", s.Name, s.Column)
	}
	if len(s.Aggs) == 0 {
		s.Aggs = []string{"avg"}
	}
	seen := map[string]bool{}
	for _, a := range s.Aggs {
		if !aggKinds[a] {
			return fmt.Errorf("query: %s: unknown aggregate %q (count, avg, min, max, p50, p99)", s.Name, a)
		}
		if seen[a] {
			return fmt.Errorf("query: %s: duplicate aggregate %q", s.Name, a)
		}
		seen[a] = true
	}
	if s.Filter != "" {
		if _, _, _, err := parseFilter(s.Filter); err != nil {
			return fmt.Errorf("query: %s: %w", s.Name, err)
		}
	}
	if s.OrderBy == "" {
		s.OrderBy = "group"
	}
	if s.OrderBy != "group" && !seen[s.OrderBy] {
		return fmt.Errorf("query: %s: orderBy %q is not \"group\" or a listed aggregate", s.Name, s.OrderBy)
	}
	if s.Limit < 0 {
		return fmt.Errorf("query: %s: negative limit", s.Name)
	}
	return nil
}

// parseFilter splits "column op constant" into its parts.
func parseFilter(f string) (col, op string, val float64, err error) {
	for _, o := range filterOps {
		if i := strings.Index(f, o); i > 0 {
			col, op = f[:i], o
			v, perr := strconv.ParseFloat(f[i+len(o):], 64)
			if perr != nil {
				return "", "", 0, fmt.Errorf("filter %q: bad constant", f)
			}
			if !columns[col] {
				return "", "", 0, fmt.Errorf("filter %q: unknown column %q", f, col)
			}
			return col, op, v, nil
		}
	}
	return "", "", 0, fmt.Errorf("filter %q: want column<op>constant with op in < <= > >=", f)
}

// String renders the normalized spec's canonical form, the encoding cell
// cache keys embed: every field explicit, fixed order, so two specs are
// equivalent iff their canonical strings match.
func (s Spec) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s(w=%g,win=%d,group=%s,col=%s,aggs=%s,filter=%s,order=%s",
		s.Name, s.Weight, s.WindowSec, s.GroupBy, s.Column,
		strings.Join(s.Aggs, "|"), s.Filter, s.OrderBy)
	if s.Desc {
		b.WriteString(" desc")
	}
	fmt.Fprintf(&b, ",limit=%d)", s.Limit)
	return b.String()
}

// Mix is a weighted set of query specs.
type Mix []Spec

// Normalize normalizes every spec and rejects duplicates and empty mixes.
func (m Mix) Normalize() error {
	if len(m) == 0 {
		return fmt.Errorf("query: empty mix")
	}
	names := map[string]bool{}
	for i := range m {
		if err := m[i].Normalize(); err != nil {
			return err
		}
		if names[m[i].Name] {
			return fmt.Errorf("query: duplicate query name %q", m[i].Name)
		}
		names[m[i].Name] = true
	}
	return nil
}

// String joins the canonical specs with "+".
func (m Mix) String() string {
	parts := make([]string, len(m))
	for i, s := range m {
		parts[i] = s.String()
	}
	return strings.Join(parts, "+")
}

// ParseMix parses the canonical encoding back into a normalized mix; it
// round-trips String exactly, which is what lets a cell carry only the
// canonical string (cache keys, the farm wire format) and still rebuild
// its query plan.
func ParseMix(enc string) (Mix, error) {
	if enc == "" {
		return nil, fmt.Errorf("query: empty mix")
	}
	var m Mix
	for _, part := range strings.Split(enc, "+") {
		s, err := parseSpec(part)
		if err != nil {
			return nil, err
		}
		m = append(m, s)
	}
	if err := m.Normalize(); err != nil {
		return nil, err
	}
	return m, nil
}

func parseSpec(enc string) (Spec, error) {
	open := strings.IndexByte(enc, '(')
	if open < 1 || !strings.HasSuffix(enc, ")") {
		return Spec{}, fmt.Errorf("query: malformed spec %q", enc)
	}
	s := Spec{Name: enc[:open]}
	for _, kv := range strings.Split(enc[open+1:len(enc)-1], ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return Spec{}, fmt.Errorf("query: malformed parameter %q in %q", kv, enc)
		}
		var err error
		switch k {
		case "w":
			s.Weight, err = strconv.ParseFloat(v, 64)
		case "win":
			s.WindowSec, err = strconv.ParseInt(v, 10, 64)
		case "group":
			s.GroupBy = v
		case "col":
			s.Column = v
		case "aggs":
			if v != "" {
				s.Aggs = strings.Split(v, "|")
			}
		case "filter":
			s.Filter = v
		case "order":
			if o, ok := strings.CutSuffix(v, " desc"); ok {
				s.OrderBy, s.Desc = o, true
			} else {
				s.OrderBy = v
			}
		case "limit":
			s.Limit, err = strconv.Atoi(v)
		default:
			return Spec{}, fmt.Errorf("query: unknown parameter %q in %q", k, enc)
		}
		if err != nil {
			return Spec{}, fmt.Errorf("query: bad %s in %q: %w", k, enc, err)
		}
	}
	return s, nil
}

// pick chooses a spec index by weight from a uniform [0,1) draw.
func (m Mix) pick(u float64) int {
	var total float64
	for _, s := range m {
		total += s.Weight
	}
	x := u * total
	for i, s := range m {
		if x < s.Weight {
			return i
		}
		x -= s.Weight
	}
	return len(m) - 1
}

// sortAggsIndex returns the index of agg in aggs (OrderBy resolution).
func aggIndex(aggs []string, agg string) int {
	for i, a := range aggs {
		if a == agg {
			return i
		}
	}
	return -1
}

// sortedGroups returns the map's keys in lexicographic order (grouped
// output must be deterministic regardless of map iteration).
func sortedGroups[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
