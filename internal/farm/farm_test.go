package farm

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/sim"
	"repro/internal/stats"
)

const testVersion = "test-model-version"

// resultsEqual compares two CellResults field-for-field, including the
// windowed recovery curve (pointer equality is useless across a codec).
func resultsEqual(a, b harness.CellResult) bool {
	aw, bw := a.Windows, b.Windows
	a.Windows, b.Windows = nil, nil
	if a != b {
		return false
	}
	switch {
	case aw == nil && bw == nil:
		return true
	case aw == nil || bw == nil:
		return false
	}
	return aw.Equal(bw)
}

// TestCellResultWireRoundTrip pins the farm's payload codec: a CellResult
// with every field set — including the windowed latency a fault cell
// carries into the scenario appendix — survives the message envelope
// exactly.
func TestCellResultWireRoundTrip(t *testing.T) {
	w := stats.NewWindowedLatency(100*sim.Millisecond, 50*sim.Millisecond)
	w.Record(120*sim.Millisecond, 3*sim.Millisecond)
	w.Record(180*sim.Millisecond, 9*sim.Millisecond)
	w.RecordFailure(230 * sim.Millisecond)
	res := harness.CellResult{
		Cell: harness.Cell{
			System: harness.Cassandra, Nodes: 4, Workload: "R",
			Variants: "replication=2", Faults: "kill-node@1[0.45:0.7]",
		},
		Throughput: 123456.789,
		ReadLat:    3 * sim.Millisecond,
		WriteLat:   5 * sim.Millisecond,
		ScanLat:    7 * sim.Millisecond,
		UpdateLat:  2 * sim.Millisecond,
		Ops:        100000, Errors: 7, Timeouts: 3,
		DiskBytesPaperScale: 9.5e9,
		Windows:             w,
	}

	// Round-trip through the same conn framing the farm uses, over TCP
	// loopback — exactly the path a worker's answer takes.
	_, client, server := loopback(t)
	go func() {
		client.send(message{Type: msgResult, ID: 42, Result: &res})
	}()
	m, err := server.recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != msgResult || m.ID != 42 || m.Result == nil {
		t.Fatalf("decoded message %+v", m)
	}
	if !resultsEqual(res, *m.Result) {
		t.Fatalf("result differs after wire round trip:\n%+v\n%+v", res, *m.Result)
	}
	if m.Result.Windows.Quantile(0, 0.99) != w.Quantile(0, 0.99) ||
		m.Result.Windows.Availability(2) != w.Availability(2) {
		t.Fatal("recovery-curve values differ after wire round trip")
	}
}

// TestFarmMatchesSerial is the core equivalence property: a plan executed
// through a coordinator and two workers produces, cell for cell, results
// identical to a serial in-process runner — including a fault cell's
// recovery windows.
func TestFarmMatchesSerial(t *testing.T) {
	cells := []harness.Cell{
		{System: harness.Redis, Nodes: 1, Workload: "R"},
		{System: harness.Redis, Nodes: 2, Workload: "RW"},
		{System: harness.Cassandra, Nodes: 2, Workload: "W"},
		{System: harness.Cassandra, Nodes: 2, Workload: "R", Faults: "kill-node@1[0.45:0.7]"},
		{System: harness.MySQL, Nodes: 1, Workload: "RW"},
	}

	serial := harness.NewRunner(harness.Quick())
	want := make([]harness.CellResult, len(cells))
	for i, c := range cells {
		res, err := serial.Run(c)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}

	co := NewCoordinator(harness.Quick(), testVersion)
	addr, err := co.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	workerErrs := make([]error, 2)
	for i := range workerErrs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			workerErrs[i] = Join(addr.String(), WorkerOptions{Version: testVersion, Capacity: 2})
		}(i)
	}

	farm := harness.NewRunner(harness.Quick())
	farm.Executor = co
	farm.Workers = 4
	if err := farm.RunAll(cells); err != nil {
		t.Fatal(err)
	}
	for i, c := range cells {
		got, err := farm.Run(c) // in-memory cache after RunAll
		if err != nil {
			t.Fatal(err)
		}
		if !resultsEqual(got, want[i]) {
			t.Errorf("cell %d (%s/%d/%s): farm result differs from serial:\n%+v\n%+v",
				i, c.System, c.Nodes, c.Workload, got, want[i])
		}
	}
	co.Close()
	wg.Wait()
	for i, err := range workerErrs {
		if err != nil {
			t.Errorf("worker %d: %v", i, err)
		}
	}
}

// TestWorkerVersionMismatchRejected pins the hello handshake: a worker
// whose model hash differs is turned away with a reason, and the
// coordinator keeps serving correct-version workers.
func TestWorkerVersionMismatchRejected(t *testing.T) {
	co := NewCoordinator(harness.Quick(), testVersion)
	addr, err := co.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	err = Join(addr.String(), WorkerOptions{Version: "some-other-model", Capacity: 1})
	if err == nil || !strings.Contains(err.Error(), "version mismatch") {
		t.Fatalf("mismatched worker joined: err=%v", err)
	}
	if n := co.Workers(); n != 0 {
		t.Fatalf("rejected worker counted as joined: %d", n)
	}
}

// TestWorkerDeathRequeuesLeases pins fault tolerance: a worker that takes
// a lease and dies mid-cell loses nothing — the lease returns to the queue
// and a healthy worker completes it.
func TestWorkerDeathRequeuesLeases(t *testing.T) {
	co := NewCoordinator(harness.Quick(), testVersion)
	addr, err := co.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	// A hand-rolled worker that handshakes, grabs one lease, and dies.
	leased := make(chan struct{})
	go func() {
		d, err := net.Dial("tcp", addr.String())
		if err != nil {
			t.Error(err)
			close(leased)
			return
		}
		c := newConn(d)
		c.send(message{Type: msgHello, Version: testVersion, Capacity: 1})
		if m, err := c.recv(); err != nil || m.Type != msgHelloAck {
			t.Errorf("fake worker handshake: %+v %v", m, err)
			c.close()
			close(leased)
			return
		}
		if m, err := c.recv(); err != nil || m.Type != msgLease {
			t.Errorf("fake worker lease: %+v %v", m, err)
		}
		c.close() // die without answering
		close(leased)
	}()

	cell := harness.Cell{System: harness.Redis, Nodes: 1, Workload: "W"}
	resCh := make(chan harness.CellResult, 1)
	errCh := make(chan error, 1)
	go func() {
		res, err := co.ExecuteCell(cell)
		resCh <- res
		errCh <- err
	}()

	<-leased // the doomed worker had the cell
	// Now a real worker joins and should inherit the requeued lease.
	var wg sync.WaitGroup
	wg.Add(1)
	var joinErr error
	go func() {
		defer wg.Done()
		joinErr = Join(addr.String(), WorkerOptions{Version: testVersion, Capacity: 1})
	}()

	select {
	case res := <-resCh:
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
		want, err := harness.NewRunner(harness.Quick()).Run(cell)
		if err != nil {
			t.Fatal(err)
		}
		if !resultsEqual(res, want) {
			t.Fatalf("requeued cell result differs from serial:\n%+v\n%+v", res, want)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("requeued lease never completed")
	}
	co.Close()
	wg.Wait()
	if joinErr != nil {
		t.Fatalf("surviving worker: %v", joinErr)
	}
}

// loopback builds a connected conn pair over TCP loopback.
func loopback(t *testing.T) (net.Listener, *conn, *conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	type accepted struct {
		c   net.Conn
		err error
	}
	ch := make(chan accepted, 1)
	go func() {
		c, err := ln.Accept()
		ch <- accepted{c, err}
	}()
	cl, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	a := <-ch
	if a.err != nil {
		t.Fatal(a.err)
	}
	t.Cleanup(func() { cl.Close(); a.c.Close() })
	return ln, newConn(cl), newConn(a.c)
}
