package farm

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/sim"
	"repro/internal/stats"
)

const testVersion = "test-model-version"

// recvSkipHB receives the next non-heartbeat message: the coordinator
// interleaves keepalives with everything else, and hand-rolled fake
// workers only care about the substantive frames.
func recvSkipHB(c *conn) (message, error) {
	for {
		m, err := c.recv()
		if err != nil || m.Type != msgHeartbeat {
			return m, err
		}
	}
}

// TestCellResultWireRoundTrip pins the farm's payload codec: a CellResult
// with every field set — including the windowed latency a fault cell
// carries into the scenario appendix — survives the message envelope
// exactly.
func TestCellResultWireRoundTrip(t *testing.T) {
	w := stats.NewWindowedLatency(100*sim.Millisecond, 50*sim.Millisecond)
	w.Record(120*sim.Millisecond, 3*sim.Millisecond)
	w.Record(180*sim.Millisecond, 9*sim.Millisecond)
	w.RecordFailure(230 * sim.Millisecond)
	res := harness.CellResult{
		Cell: harness.Cell{
			System: harness.Cassandra, Nodes: 4, Workload: "R",
			Variants: "replication=2", Faults: "kill-node@1[0.45:0.7]",
		},
		Throughput: 123456.789,
		ReadLat:    3 * sim.Millisecond,
		WriteLat:   5 * sim.Millisecond,
		ScanLat:    7 * sim.Millisecond,
		UpdateLat:  2 * sim.Millisecond,
		Ops:        100000, Errors: 7, Timeouts: 3,
		DiskBytesPaperScale: 9.5e9,
		Windows:             w,
	}

	// Round-trip through the same conn framing the farm uses, over TCP
	// loopback — exactly the path a worker's answer takes.
	_, client, server := loopback(t)
	go func() {
		client.send(message{Type: msgResult, ID: 42, Result: &res})
	}()
	m, err := server.recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != msgResult || m.ID != 42 || m.Result == nil {
		t.Fatalf("decoded message %+v", m)
	}
	if !resultsEqual(res, *m.Result) {
		t.Fatalf("result differs after wire round trip:\n%+v\n%+v", res, *m.Result)
	}
	if m.Result.Windows.Quantile(0, 0.99) != w.Quantile(0, 0.99) ||
		m.Result.Windows.Availability(2) != w.Availability(2) {
		t.Fatal("recovery-curve values differ after wire round trip")
	}
}

// TestFarmMatchesSerial is the core equivalence property: a plan executed
// through a coordinator and two workers produces, cell for cell, results
// identical to a serial in-process runner — including a fault cell's
// recovery windows.
func TestFarmMatchesSerial(t *testing.T) {
	cells := []harness.Cell{
		{System: harness.Redis, Nodes: 1, Workload: "R"},
		{System: harness.Redis, Nodes: 2, Workload: "RW"},
		{System: harness.Cassandra, Nodes: 2, Workload: "W"},
		{System: harness.Cassandra, Nodes: 2, Workload: "R", Faults: "kill-node@1[0.45:0.7]"},
		{System: harness.MySQL, Nodes: 1, Workload: "RW"},
	}

	serial := harness.NewRunner(harness.Quick())
	want := make([]harness.CellResult, len(cells))
	for i, c := range cells {
		res, err := serial.Run(c)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}

	co := NewCoordinator(harness.Quick(), testVersion)
	addr, err := co.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	workerErrs := make([]error, 2)
	for i := range workerErrs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			workerErrs[i] = Join(addr.String(), WorkerOptions{Version: testVersion, Capacity: 2})
		}(i)
	}

	farm := harness.NewRunner(harness.Quick())
	farm.Executor = co
	farm.Workers = 4
	if err := farm.RunAll(cells); err != nil {
		t.Fatal(err)
	}
	for i, c := range cells {
		got, err := farm.Run(c) // in-memory cache after RunAll
		if err != nil {
			t.Fatal(err)
		}
		if !resultsEqual(got, want[i]) {
			t.Errorf("cell %d (%s/%d/%s): farm result differs from serial:\n%+v\n%+v",
				i, c.System, c.Nodes, c.Workload, got, want[i])
		}
	}
	co.Close()
	wg.Wait()
	for i, err := range workerErrs {
		if err != nil {
			t.Errorf("worker %d: %v", i, err)
		}
	}
}

// TestWorkerVersionMismatchRejected pins the hello handshake: a worker
// whose model hash differs is turned away with a reason, and the
// coordinator keeps serving correct-version workers.
func TestWorkerVersionMismatchRejected(t *testing.T) {
	co := NewCoordinator(harness.Quick(), testVersion)
	addr, err := co.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	err = Join(addr.String(), WorkerOptions{Version: "some-other-model", Capacity: 1})
	if err == nil || !strings.Contains(err.Error(), "version mismatch") {
		t.Fatalf("mismatched worker joined: err=%v", err)
	}
	if n := co.Workers(); n != 0 {
		t.Fatalf("rejected worker counted as joined: %d", n)
	}
}

// TestWorkerDeathRequeuesLeases pins fault tolerance: a worker that takes
// a lease and dies mid-cell loses nothing — the lease returns to the queue
// and a healthy worker completes it.
func TestWorkerDeathRequeuesLeases(t *testing.T) {
	co := NewCoordinator(harness.Quick(), testVersion)
	addr, err := co.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	// A hand-rolled worker that handshakes, grabs one lease, and dies.
	leased := make(chan struct{})
	go func() {
		d, err := net.Dial("tcp", addr.String())
		if err != nil {
			t.Error(err)
			close(leased)
			return
		}
		c := newConn(d)
		c.send(message{Type: msgHello, Version: testVersion, Capacity: 1})
		if m, err := recvSkipHB(c); err != nil || m.Type != msgHelloAck {
			t.Errorf("fake worker handshake: %+v %v", m, err)
			c.close()
			close(leased)
			return
		}
		if m, err := recvSkipHB(c); err != nil || m.Type != msgLease {
			t.Errorf("fake worker lease: %+v %v", m, err)
		}
		c.close() // die without answering
		close(leased)
	}()

	cell := harness.Cell{System: harness.Redis, Nodes: 1, Workload: "W"}
	resCh := make(chan harness.CellResult, 1)
	errCh := make(chan error, 1)
	go func() {
		res, err := co.ExecuteCell(cell)
		resCh <- res
		errCh <- err
	}()

	<-leased // the doomed worker had the cell
	// Now a real worker joins and should inherit the requeued lease.
	var wg sync.WaitGroup
	wg.Add(1)
	var joinErr error
	go func() {
		defer wg.Done()
		joinErr = Join(addr.String(), WorkerOptions{Version: testVersion, Capacity: 1})
	}()

	select {
	case res := <-resCh:
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
		want, err := harness.NewRunner(harness.Quick()).Run(cell)
		if err != nil {
			t.Fatal(err)
		}
		if !resultsEqual(res, want) {
			t.Fatalf("requeued cell result differs from serial:\n%+v\n%+v", res, want)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("requeued lease never completed")
	}
	co.Close()
	wg.Wait()
	if joinErr != nil {
		t.Fatalf("surviving worker: %v", joinErr)
	}
}

// ---------------------------------------------------------------------------
// Chaos harness: a line-framed TCP proxy between workers and the
// coordinator that can cut connections, and corrupt, duplicate, or delay
// result frames on the worker→coordinator path. Triggers are counted in
// frames, not wall-clock, so every chaos schedule is deterministic.

type chaosProxy struct {
	ln       net.Listener
	upstream string

	mu          sync.Mutex
	conns       []net.Conn
	seenResults int
	corruptLeft int           // corrupt the next N result frames
	dupLeft     int           // duplicate the next N result frames
	cutAfter    int           // cut every connection after N result frames
	resultDelay time.Duration // hold every result frame this long
}

func newChaosProxy(t *testing.T, upstream string) *chaosProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &chaosProxy{ln: ln, upstream: upstream}
	go p.accept()
	t.Cleanup(func() { ln.Close(); p.cutAll() })
	return p
}

func (p *chaosProxy) addr() string { return p.ln.Addr().String() }

func (p *chaosProxy) accept() {
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		u, err := net.Dial("tcp", p.upstream)
		if err != nil {
			c.Close()
			continue
		}
		p.mu.Lock()
		p.conns = append(p.conns, c, u)
		p.mu.Unlock()
		go p.pump(c, u, true)  // worker → coordinator: chaos applies
		go p.pump(u, c, false) // coordinator → worker: passthrough
	}
}

func (p *chaosProxy) cutAll() {
	p.mu.Lock()
	conns := p.conns
	p.conns = nil
	p.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

func (p *chaosProxy) pump(src, dst net.Conn, chaos bool) {
	r := bufio.NewReader(src)
	for {
		line, err := r.ReadBytes('\n')
		if len(line) > 0 {
			var delay time.Duration
			cut := false
			if chaos && bytes.Contains(line, []byte(`"type":"result"`)) {
				p.mu.Lock()
				p.seenResults++
				delay = p.resultDelay
				switch {
				case p.corruptLeft > 0:
					p.corruptLeft--
					line = []byte("@@not-json{{{\n")
				case p.dupLeft > 0:
					p.dupLeft--
					line = append(line, line...)
				}
				if p.cutAfter > 0 && p.seenResults >= p.cutAfter {
					p.cutAfter = 0
					cut = true
				}
				p.mu.Unlock()
			}
			if delay > 0 {
				time.Sleep(delay)
			}
			if _, werr := dst.Write(line); werr != nil {
				src.Close()
				return
			}
			if cut {
				p.cutAll()
			}
		}
		if err != nil {
			dst.Close()
			return
		}
	}
}

// fakeWorker is a scriptable protocol peer: it handshakes, heartbeats,
// surfaces leases on a channel without answering them (the tests decide
// what, if anything, to reply), and leaves on drain.
type fakeWorker struct {
	c      *conn
	leases chan message
	done   chan struct{}
}

func startFakeWorker(t *testing.T, addr string, hb time.Duration) *fakeWorker {
	t.Helper()
	d, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	c := newConn(d)
	t.Cleanup(func() { c.close() })
	if err := c.send(message{Type: msgHello, Version: testVersion, Capacity: 1}); err != nil {
		t.Fatal(err)
	}
	if m, err := recvSkipHB(c); err != nil || m.Type != msgHelloAck {
		t.Fatalf("fake worker handshake: %+v %v", m, err)
	}
	w := &fakeWorker{c: c, leases: make(chan message, 4), done: make(chan struct{})}
	stopHB := make(chan struct{})
	go func() {
		tk := time.NewTicker(hb)
		defer tk.Stop()
		for {
			select {
			case <-stopHB:
				return
			case <-tk.C:
				if c.send(message{Type: msgHeartbeat}) != nil {
					return
				}
			}
		}
	}()
	go func() {
		defer close(w.done)
		defer close(stopHB)
		for {
			m, err := c.recv()
			if err != nil {
				return
			}
			switch m.Type {
			case msgLease:
				w.leases <- m
			case msgDrain:
				c.close()
				return
			}
		}
	}()
	return w
}

// joinAsync runs a real worker in the background; the returned func waits
// for it and reports its Join error.
func joinAsync(t *testing.T, addr string, opts WorkerOptions) func() error {
	t.Helper()
	if opts.Version == "" {
		opts.Version = testVersion
	}
	errCh := make(chan error, 1)
	go func() { errCh <- Join(addr, opts) }()
	return func() error { return <-errCh }
}

// TestChaosFarmMatchesSerial is the tentpole equivalence property under
// failure injection: with the worker↔coordinator link cut mid-run,
// result frames corrupted, duplicated, or delayed, the farm's results
// are still byte-identical to a serial in-process run — failure handling
// may cost time, never numbers.
func TestChaosFarmMatchesSerial(t *testing.T) {
	cells := []harness.Cell{
		{System: harness.Redis, Nodes: 1, Workload: "R"},
		{System: harness.Redis, Nodes: 2, Workload: "RW"},
		{System: harness.Cassandra, Nodes: 2, Workload: "W"},
		{System: harness.Cassandra, Nodes: 2, Workload: "R", Faults: "kill-node@1[0.45:0.7]"},
		{System: harness.MySQL, Nodes: 1, Workload: "RW"},
	}
	serial := harness.NewRunner(harness.Quick())
	want := make([]harness.CellResult, len(cells))
	for i, c := range cells {
		res, err := serial.Run(c)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}

	modes := []struct {
		name     string
		arm      func(p *chaosProxy)
		minJoins int64
		wantDups int64
	}{
		// Cut every connection after the second result: the worker must
		// reconnect, re-hello, and pick its leases back up.
		{"cut-connection", func(p *chaosProxy) { p.cutAfter = 2 }, 2, 0},
		// Corrupt the first result frame: the coordinator must drop the
		// connection (a half-parsed stream is unusable), requeue, and
		// serve the re-joined worker the cell again.
		{"corrupt-frame", func(p *chaosProxy) { p.corruptLeft = 1 }, 2, 0},
		// Duplicate the first result frame: the coordinator must accept
		// one copy and byte-audit the other, not double-complete.
		{"duplicate-frame", func(p *chaosProxy) { p.dupLeft = 1 }, 1, 1},
		// Delay every result frame: pure latency, nothing else.
		{"delay-frames", func(p *chaosProxy) { p.resultDelay = 100 * time.Millisecond }, 1, 0},
	}
	for _, mode := range modes {
		t.Run(mode.name, func(t *testing.T) {
			co := NewCoordinator(harness.Quick(), testVersion)
			addr, err := co.Listen("127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			p := newChaosProxy(t, addr.String())
			p.mu.Lock()
			mode.arm(p)
			p.mu.Unlock()

			wait := joinAsync(t, p.addr(), WorkerOptions{Capacity: 2})
			farmed := harness.NewRunner(harness.Quick())
			farmed.Executor = co
			farmed.Workers = 4
			if err := farmed.RunAll(cells); err != nil {
				t.Fatal(err)
			}
			for i, c := range cells {
				got, err := farmed.Run(c) // in-memory cache after RunAll
				if err != nil {
					t.Fatal(err)
				}
				if !resultsEqual(got, want[i]) {
					t.Errorf("%s: cell %s: farm result differs from serial:\n%+v\n%+v",
						mode.name, cellLabel(c), got, want[i])
				}
			}
			if err := co.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}
			if err := wait(); err != nil {
				t.Errorf("worker: %v", err)
			}
			st := co.Stats()
			if st.Joins < mode.minJoins {
				t.Errorf("%s: joins=%d, want >= %d", mode.name, st.Joins, mode.minJoins)
			}
			if st.DuplicateResults < mode.wantDups {
				t.Errorf("%s: duplicate results audited=%d, want >= %d", mode.name, st.DuplicateResults, mode.wantDups)
			}
		})
	}
}

// TestHungWorkerLeaseExpires pins liveness piece one: a worker that
// heartbeats (alive) but never answers (hung) trips the lease deadline —
// the cell is requeued at the queue front, the worker's capacity is
// docked, and a healthy worker completes the cell with serial-identical
// bytes.
func TestHungWorkerLeaseExpires(t *testing.T) {
	var logMu sync.Mutex
	var logs strings.Builder
	co := NewCoordinator(harness.Quick(), testVersion)
	co.LeaseTimeout = time.Second
	co.HeartbeatInterval = 50 * time.Millisecond
	co.Speculate = false // isolate the expiry path from speculation
	co.Logf = func(format string, args ...any) {
		logMu.Lock()
		fmt.Fprintf(&logs, format+"\n", args...)
		logMu.Unlock()
	}
	addr, err := co.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hung := startFakeWorker(t, addr.String(), 50*time.Millisecond)

	cell := harness.Cell{System: harness.Redis, Nodes: 1, Workload: "W"}
	resCh := make(chan harness.CellResult, 1)
	errCh := make(chan error, 1)
	go func() {
		res, err := co.ExecuteCell(cell)
		resCh <- res
		errCh <- err
	}()
	<-hung.leases // the hung worker holds the cell; it will never answer

	wait := joinAsync(t, addr.String(), WorkerOptions{})
	select {
	case res := <-resCh:
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
		want, err := harness.NewRunner(harness.Quick()).Run(cell)
		if err != nil {
			t.Fatal(err)
		}
		if !resultsEqual(res, want) {
			t.Fatalf("expired-lease result differs from serial:\n%+v\n%+v", res, want)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("expired lease never completed")
	}
	// On a loaded host the healthy worker's own lease can expire too (its
	// late answer still completes the task), so assert at-least, not
	// exactly-one.
	if st := co.Stats(); st.Expired < 1 || st.Requeued < 1 {
		t.Fatalf("stats after expiry: %+v, want Expired>=1 Requeued>=1", st)
	}
	if err := co.Close(); err != nil {
		t.Fatal(err)
	}
	if err := wait(); err != nil {
		t.Errorf("healthy worker: %v", err)
	}
	logMu.Lock()
	defer logMu.Unlock()
	got := logs.String()
	if !strings.Contains(got, "missed the") || !strings.Contains(got, "capacity 1→0") {
		t.Errorf("expiry log missing deadline/capacity-dock line:\n%s", got)
	}
}

// TestSilentWorkerConnReaped pins the heartbeat's purpose: a worker that
// goes completely silent (no close, no FIN — the TCP connection just
// stops) is declared dead after the stale window and its lease requeued,
// where a close-based design would wait forever.
func TestSilentWorkerConnReaped(t *testing.T) {
	co := NewCoordinator(harness.Quick(), testVersion)
	co.HeartbeatInterval = 50 * time.Millisecond
	co.Speculate = false
	addr, err := co.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	// Hand-rolled silent worker: handshake, take the lease, then nothing —
	// no heartbeats, no reads, no close.
	d, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	silent := newConn(d)
	t.Cleanup(func() { silent.close() })
	if err := silent.send(message{Type: msgHello, Version: testVersion, Capacity: 1}); err != nil {
		t.Fatal(err)
	}
	if m, err := recvSkipHB(silent); err != nil || m.Type != msgHelloAck {
		t.Fatalf("silent worker handshake: %+v %v", m, err)
	}

	cell := harness.Cell{System: harness.Redis, Nodes: 1, Workload: "R"}
	resCh := make(chan harness.CellResult, 1)
	errCh := make(chan error, 1)
	go func() {
		res, err := co.ExecuteCell(cell)
		resCh <- res
		errCh <- err
	}()
	if m, err := recvSkipHB(silent); err != nil || m.Type != msgLease {
		t.Fatalf("silent worker lease: %+v %v", m, err)
	}
	// From here the silent worker reads nothing and says nothing.

	wait := joinAsync(t, addr.String(), WorkerOptions{})
	select {
	case res := <-resCh:
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
		want, err := harness.NewRunner(harness.Quick()).Run(cell)
		if err != nil {
			t.Fatal(err)
		}
		if !resultsEqual(res, want) {
			t.Fatalf("reaped-lease result differs from serial:\n%+v\n%+v", res, want)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("silent worker's lease never completed")
	}
	if st := co.Stats(); st.Requeued < 1 {
		t.Fatalf("stats after silent reap: %+v, want Requeued>=1", st)
	}
	if err := co.Close(); err != nil {
		t.Fatal(err)
	}
	if err := wait(); err != nil {
		t.Errorf("healthy worker: %v", err)
	}
}

// TestSpeculationRacesStragglers pins tentpole piece two: with an empty
// queue and a lease stuck on a straggler, an idle worker speculatively
// re-runs the cell and its (identical, by seeding) result completes the
// task without waiting out the lease deadline.
func TestSpeculationRacesStragglers(t *testing.T) {
	co := NewCoordinator(harness.Quick(), testVersion)
	addr, err := co.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	straggler := startFakeWorker(t, addr.String(), 200*time.Millisecond)

	cell := harness.Cell{System: harness.Redis, Nodes: 2, Workload: "R"}
	resCh := make(chan harness.CellResult, 1)
	errCh := make(chan error, 1)
	go func() {
		res, err := co.ExecuteCell(cell)
		resCh <- res
		errCh <- err
	}()
	<-straggler.leases // straggler holds the only cell; queue is now empty

	wait := joinAsync(t, addr.String(), WorkerOptions{})
	select {
	case res := <-resCh:
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
		want, err := harness.NewRunner(harness.Quick()).Run(cell)
		if err != nil {
			t.Fatal(err)
		}
		if !resultsEqual(res, want) {
			t.Fatalf("speculated result differs from serial:\n%+v\n%+v", res, want)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("speculation never completed the stuck cell")
	}
	if st := co.Stats(); st.Speculated != 1 {
		t.Fatalf("stats after speculation: %+v, want Speculated=1", st)
	}
	if err := co.Close(); err != nil {
		t.Fatal(err)
	}
	if err := wait(); err != nil {
		t.Errorf("idle worker: %v", err)
	}
}

// TestSpeculationMismatchFailsRun pins the divergence tripwire: when a
// duplicate answer for a cell does not byte-match the accepted one, the
// farm refuses to pick a side — the run fails loudly through Err, new
// ExecuteCell calls, and Close.
func TestSpeculationMismatchFailsRun(t *testing.T) {
	co := NewCoordinator(harness.Quick(), testVersion)
	addr, err := co.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	liar := startFakeWorker(t, addr.String(), 200*time.Millisecond)

	cell := harness.Cell{System: harness.Redis, Nodes: 1, Workload: "RW"}
	resCh := make(chan harness.CellResult, 1)
	errCh := make(chan error, 1)
	go func() {
		res, err := co.ExecuteCell(cell)
		resCh <- res
		errCh <- err
	}()
	leaseMsg := <-liar.leases

	wait := joinAsync(t, addr.String(), WorkerOptions{})
	res := <-resCh // honest speculative answer accepted
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}

	// Now the straggler answers its old lease with doctored numbers.
	doctored := res
	doctored.Throughput += 1234.5
	if err := liar.c.send(message{Type: msgResult, ID: leaseMsg.ID, Result: &doctored}); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(10 * time.Second)
	for co.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("divergent duplicate never failed the run")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := co.Err(); !strings.Contains(got.Error(), "cross-worker divergence") {
		t.Fatalf("fatal error %q, want a cross-worker divergence", got)
	}
	if _, err := co.ExecuteCell(harness.Cell{System: harness.Redis, Nodes: 2, Workload: "R"}); err == nil ||
		!strings.Contains(err.Error(), "cross-worker divergence") {
		t.Fatalf("ExecuteCell after divergence: err=%v, want the fatal error", err)
	}
	if err := co.Close(); err == nil || !strings.Contains(err.Error(), "cross-worker divergence") {
		t.Fatalf("Close after divergence: err=%v, want the fatal error", err)
	}
	wait() // drained or dropped either way; the run's verdict is what matters
}

// TestZeroWorkersFallsBackLocal pins graceful degradation: a coordinator
// nobody joins executes queued cells itself through the CellExecutor seam
// after FallbackAfter, producing serial-identical bytes.
func TestZeroWorkersFallsBackLocal(t *testing.T) {
	co := NewCoordinator(harness.Quick(), testVersion)
	co.FallbackAfter = 50 * time.Millisecond
	if _, err := co.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	cell := harness.Cell{System: harness.Redis, Nodes: 1, Workload: "R"}
	res, err := co.ExecuteCell(cell)
	if err != nil {
		t.Fatal(err)
	}
	want, err := harness.NewRunner(harness.Quick()).Run(cell)
	if err != nil {
		t.Fatal(err)
	}
	if !resultsEqual(res, want) {
		t.Fatalf("local-fallback result differs from serial:\n%+v\n%+v", res, want)
	}
	if st := co.Stats(); st.LocalRuns != 1 {
		t.Fatalf("stats after fallback: %+v, want LocalRuns=1", st)
	}
	if err := co.Close(); err != nil {
		t.Fatal(err)
	}
}

// loopback builds a connected conn pair over TCP loopback.
func loopback(t *testing.T) (net.Listener, *conn, *conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	type accepted struct {
		c   net.Conn
		err error
	}
	ch := make(chan accepted, 1)
	go func() {
		c, err := ln.Accept()
		ch <- accepted{c, err}
	}()
	cl, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	a := <-ch
	if a.err != nil {
		t.Fatal(a.err)
	}
	t.Cleanup(func() { cl.Close(); a.c.Close() })
	return ln, newConn(cl), newConn(a.c)
}
