package farm

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/harness"
)

// FileCache is a content-addressed persistent cell-result cache
// (apmbench -cache dir). Each entry is one self-verifying JSON file:
//
//	{"version": <model hash>, "key": <full cache key>,
//	 "sha256": <hex digest of result bytes>, "result": {...}}
//
// The filename is derived from the key alone — NOT from the model
// version — so a binary built from changed model sources lands on the
// same file, sees the version mismatch, and recomputes over it. A hit
// requires all three proofs: the stored key matches (no hash-prefix
// collision), the stored version matches this binary, and the result
// bytes hash to the stored digest (no torn write, truncation or bit rot).
// Anything less is a miss — stale or corrupt entries are recomputed,
// never trusted. Writes are atomic (temp file + rename), so a crashed
// run can at worst leave an entry that fails verification.
//
// With MaxBytes set the cache is a bounded LRU: Get touches an entry's
// mtime, and Put evicts least-recently-used entries until the directory
// fits the budget — a long-lived farm's cache stops growing without
// operator attention. Put failures (full disk, permissions) never fail
// the run — the result was still returned to the figures — but they are
// counted (PutErrors) and reported once per run through Logf, so a dead
// disk does not masquerade as a cold cache.
type FileCache struct {
	dir     string
	version string

	// MaxBytes, when positive, bounds the total size of cache entries;
	// Put evicts oldest-mtime entries to fit. 0 means unbounded.
	MaxBytes int64
	// Logf, when set, receives the once-per-run put-failure warning (and
	// nothing else). apmbench points it at stderr — never stdout, which
	// is reserved for byte-diffable figure output.
	Logf func(format string, args ...any)

	mu        sync.Mutex
	putErrors int64
	warned    bool
}

// cacheRecord is the on-disk entry format. Result stays a RawMessage so
// the checksum covers the exact bytes written and re-read, not a
// re-serialization.
type cacheRecord struct {
	Version string          `json:"version"`
	Key     string          `json:"key"`
	SHA256  string          `json:"sha256"`
	Result  json.RawMessage `json:"result"`
}

// NewFileCache opens (creating if needed) a cache directory for a binary
// with the given model version.
func NewFileCache(dir, version string) (*FileCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("farm: creating cache dir: %w", err)
	}
	return &FileCache{dir: dir, version: version}, nil
}

// path maps a cache key to its file: a hex prefix of the key's SHA-256.
// 32 hex chars (128 bits) makes accidental collision negligible, and the
// stored Key field catches even a deliberate one.
func (fc *FileCache) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(fc.dir, hex.EncodeToString(sum[:16])+".json")
}

// Get implements harness.ResultCache. Any verification failure — missing
// file, malformed JSON, key or version mismatch, checksum mismatch,
// undecodable result — is reported as a miss so the caller recomputes.
// A hit refreshes the entry's mtime, making it recently-used for the
// MaxBytes eviction order.
func (fc *FileCache) Get(key string) (harness.CellResult, bool) {
	p := fc.path(key)
	data, err := os.ReadFile(p)
	if err != nil {
		return harness.CellResult{}, false
	}
	var rec cacheRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return harness.CellResult{}, false
	}
	if rec.Key != key || rec.Version != fc.version {
		return harness.CellResult{}, false
	}
	sum := sha256.Sum256(rec.Result)
	if hex.EncodeToString(sum[:]) != rec.SHA256 {
		return harness.CellResult{}, false
	}
	var res harness.CellResult
	if err := json.Unmarshal(rec.Result, &res); err != nil {
		return harness.CellResult{}, false
	}
	// Best-effort LRU touch; a read-only cache dir still serves hits.
	now := time.Now()
	os.Chtimes(p, now, now)
	return res, true
}

// Put implements harness.ResultCache, overwriting any existing entry for
// the key (in particular a stale-version or corrupt one). A failure never
// fails the run, but is counted and warned about once (see FileCache).
func (fc *FileCache) Put(key string, res harness.CellResult) {
	raw, err := json.Marshal(res)
	if err != nil {
		fc.putFailed(err)
		return
	}
	sum := sha256.Sum256(raw)
	rec := cacheRecord{
		Version: fc.version,
		Key:     key,
		SHA256:  hex.EncodeToString(sum[:]),
		Result:  raw,
	}
	// Plain Marshal: an already-compact RawMessage is embedded byte-for-
	// byte, so the file holds exactly the bytes the checksum covers.
	data, err := json.Marshal(rec)
	if err != nil {
		fc.putFailed(err)
		return
	}
	final := fc.path(key)
	tmp, err := os.CreateTemp(fc.dir, ".put-*")
	if err != nil {
		fc.putFailed(err)
		return
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		fc.putFailed(err)
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		fc.putFailed(err)
		return
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		os.Remove(tmp.Name())
		fc.putFailed(err)
		return
	}
	if fc.MaxBytes > 0 {
		fc.evict()
	}
}

// PutErrors reports how many cache writes failed so far (full disk,
// permissions, serialization). The cache stayed correct throughout —
// failed writes just mean future runs recompute those cells.
func (fc *FileCache) PutErrors() int64 {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	return fc.putErrors
}

func (fc *FileCache) putFailed(err error) {
	fc.mu.Lock()
	fc.putErrors++
	warn := !fc.warned && fc.Logf != nil
	fc.warned = true
	fc.mu.Unlock()
	if warn {
		fc.Logf("farm: cache put failed: %v (results are unaffected; further put failures counted, not logged)", err)
	}
}

// evict removes oldest-mtime entries until the cache fits MaxBytes.
// Serialized so concurrent Puts don't race over the same victims; all
// removals are best-effort (a vanished victim was evicted by someone
// else, which is fine).
func (fc *FileCache) evict() {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	ents, err := os.ReadDir(fc.dir)
	if err != nil {
		return
	}
	type entry struct {
		path  string
		size  int64
		mtime time.Time
	}
	var files []entry
	var total int64
	for _, e := range ents {
		// Only committed entries: in-flight ".put-*" temp files belong to
		// concurrent writers and are not ours to reap.
		if e.IsDir() || filepath.Ext(e.Name()) != ".json" {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		files = append(files, entry{filepath.Join(fc.dir, e.Name()), info.Size(), info.ModTime()})
		total += info.Size()
	}
	if total <= fc.MaxBytes {
		return
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mtime.Before(files[j].mtime) })
	for _, f := range files {
		if total <= fc.MaxBytes {
			break
		}
		if os.Remove(f.path) == nil {
			total -= f.size
		}
	}
}
