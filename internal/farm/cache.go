package farm

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/harness"
)

// FileCache is a content-addressed persistent cell-result cache
// (apmbench -cache dir). Each entry is one self-verifying JSON file:
//
//	{"version": <model hash>, "key": <full cache key>,
//	 "sha256": <hex digest of result bytes>, "result": {...}}
//
// The filename is derived from the key alone — NOT from the model
// version — so a binary built from changed model sources lands on the
// same file, sees the version mismatch, and recomputes over it. A hit
// requires all three proofs: the stored key matches (no hash-prefix
// collision), the stored version matches this binary, and the result
// bytes hash to the stored digest (no torn write, truncation or bit rot).
// Anything less is a miss — stale or corrupt entries are recomputed,
// never trusted. Writes are atomic (temp file + rename), so a crashed
// run can at worst leave an entry that fails verification.
type FileCache struct {
	dir     string
	version string
}

// cacheRecord is the on-disk entry format. Result stays a RawMessage so
// the checksum covers the exact bytes written and re-read, not a
// re-serialization.
type cacheRecord struct {
	Version string          `json:"version"`
	Key     string          `json:"key"`
	SHA256  string          `json:"sha256"`
	Result  json.RawMessage `json:"result"`
}

// NewFileCache opens (creating if needed) a cache directory for a binary
// with the given model version.
func NewFileCache(dir, version string) (*FileCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("farm: creating cache dir: %w", err)
	}
	return &FileCache{dir: dir, version: version}, nil
}

// path maps a cache key to its file: a hex prefix of the key's SHA-256.
// 32 hex chars (128 bits) makes accidental collision negligible, and the
// stored Key field catches even a deliberate one.
func (fc *FileCache) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(fc.dir, hex.EncodeToString(sum[:16])+".json")
}

// Get implements harness.ResultCache. Any verification failure — missing
// file, malformed JSON, key or version mismatch, checksum mismatch,
// undecodable result — is reported as a miss so the caller recomputes.
func (fc *FileCache) Get(key string) (harness.CellResult, bool) {
	data, err := os.ReadFile(fc.path(key))
	if err != nil {
		return harness.CellResult{}, false
	}
	var rec cacheRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return harness.CellResult{}, false
	}
	if rec.Key != key || rec.Version != fc.version {
		return harness.CellResult{}, false
	}
	sum := sha256.Sum256(rec.Result)
	if hex.EncodeToString(sum[:]) != rec.SHA256 {
		return harness.CellResult{}, false
	}
	var res harness.CellResult
	if err := json.Unmarshal(rec.Result, &res); err != nil {
		return harness.CellResult{}, false
	}
	return res, true
}

// Put implements harness.ResultCache, overwriting any existing entry for
// the key (in particular a stale-version or corrupt one). Failures are
// silent: the cache is an accelerator, and a result that could not be
// persisted was still returned to the figures.
func (fc *FileCache) Put(key string, res harness.CellResult) {
	raw, err := json.Marshal(res)
	if err != nil {
		return
	}
	sum := sha256.Sum256(raw)
	rec := cacheRecord{
		Version: fc.version,
		Key:     key,
		SHA256:  hex.EncodeToString(sum[:]),
		Result:  raw,
	}
	// Plain Marshal: an already-compact RawMessage is embedded byte-for-
	// byte, so the file holds exactly the bytes the checksum covers.
	data, err := json.Marshal(rec)
	if err != nil {
		return
	}
	final := fc.path(key)
	tmp, err := os.CreateTemp(fc.dir, ".put-*")
	if err != nil {
		return
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		os.Remove(tmp.Name())
	}
}
