// Package farm distributes harness cells across processes: a coordinator
// (apmbench -serve) plans figures exactly as a single process would, but
// leases each cell to joined workers (apmbench -join) and merges their
// results through the runner's ordinary singleflight path. Because a
// cell's seed is a pure function of (config, cell identity, repetition),
// a worker's answer is bit-identical to a local measurement, and the
// merged figures render byte-for-byte the same as a serial run.
//
// The wire protocol is JSON lines over TCP, one message per line:
//
//	worker → hello{version,capacity}
//	coordinator → helloAck{config,workerId,heartbeatMillis}
//	                                 (or reject{reason}, then close)
//	coordinator → lease{id,cell}     (at most `capacity` outstanding)
//	worker → result{id,result}       (or error{id,reason})
//	both → heartbeat                 (periodic; proves the peer is alive)
//	coordinator → drain              (no more leases; finish and leave)
//
// The hello version is the binary's model hash (repro.ModelVersion): a
// worker built from different model sources is rejected at the door, not
// allowed to contribute silently different numbers.
//
// Failure semantics: both sides heartbeat every heartbeatMillis and treat
// a connection silent for staleAfter() as dead; frames are capped at
// maxLineBytes so a garbage peer cannot balloon either side's memory; and
// every lease carries a coordinator-side deadline (see Coordinator). None
// of this machinery can move a modeled number — a requeued or duplicated
// cell re-derives the same seed and therefore the same bytes.
package farm

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/harness"
)

// Message types.
const (
	msgHello     = "hello"
	msgHelloAck  = "helloAck"
	msgReject    = "reject"
	msgLease     = "lease"
	msgResult    = "result"
	msgError     = "error"
	msgDrain     = "drain"
	msgHeartbeat = "heartbeat"
)

// Protocol hardening bounds. A frame larger than maxLineBytes is a
// protocol violation (a real CellResult with recovery windows is a few
// hundred KB at most), and a handshake that stalls past handshakeTimeout
// is abandoned so a silent dialer cannot pin a serveWorker goroutine.
const (
	maxLineBytes     = 8 << 20
	handshakeTimeout = 10 * time.Second
	sendTimeout      = 30 * time.Second
	// idleMultiplier × heartbeat interval of silence marks a peer dead.
	idleMultiplier = 5
)

// errLineTooLong reports a frame exceeding maxLineBytes; the connection
// is unusable afterwards (the rest of the oversized frame would be read
// as garbage), so both sides treat it as fatal to the session.
var errLineTooLong = errors.New("farm: protocol frame exceeds size bound")

// message is the single wire envelope; Type selects which fields are set.
// One flat struct keeps the codec trivial and the protocol greppable.
type message struct {
	Type string `json:"type"`
	// hello
	Version  string `json:"version,omitempty"`
	Capacity int    `json:"capacity,omitempty"`
	// helloAck
	Config *harness.Config `json:"config,omitempty"`
	// WorkerID is the coordinator-assigned stable identity echoed in its
	// logs, so a worker can correlate its own stderr with the
	// coordinator's requeue/speculation lines.
	WorkerID int64 `json:"workerId,omitempty"`
	// HeartbeatMillis is the coordinator's heartbeat cadence; the worker
	// adopts it so both sides agree on what "silent too long" means.
	HeartbeatMillis int64 `json:"heartbeatMillis,omitempty"`
	// reject / error
	Reason string `json:"reason,omitempty"`
	// lease / result / error
	ID     int64               `json:"id,omitempty"`
	Cell   *harness.Cell       `json:"cell,omitempty"`
	Result *harness.CellResult `json:"result,omitempty"`
}

// conn frames messages as JSON lines over a net.Conn. Writes are
// serialized (lease pushes and result reads race otherwise); reads are
// single-reader by construction. readTimeout, when set, bounds how long
// recv waits for the next frame — with both sides heartbeating, a healthy
// peer always produces a frame well inside the window, so a timeout means
// the peer (or the path to it) is gone.
type conn struct {
	c           net.Conn
	r           *bufio.Reader
	wmu         sync.Mutex
	readTimeout time.Duration
	maxLine     int
}

func newConn(c net.Conn) *conn {
	return &conn{c: c, r: bufio.NewReader(c), maxLine: maxLineBytes}
}

func (c *conn) send(m message) error {
	data, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("farm: encoding %s message: %w", m.Type, err)
	}
	data = append(data, '\n')
	c.wmu.Lock()
	defer c.wmu.Unlock()
	// A peer that stopped draining its socket must not wedge the sender
	// forever: a blocked write past the deadline reads as a dead peer.
	c.c.SetWriteDeadline(time.Now().Add(sendTimeout))
	if _, err := c.c.Write(data); err != nil {
		return fmt.Errorf("farm: sending %s message: %w", m.Type, err)
	}
	return nil
}

// readLine reads one newline-terminated frame, refusing to buffer more
// than maxLine bytes — an unframed or hostile peer cannot OOM this side.
func (c *conn) readLine() ([]byte, error) {
	var line []byte
	for {
		frag, err := c.r.ReadSlice('\n')
		line = append(line, frag...)
		if len(line) > c.maxLine {
			return nil, errLineTooLong
		}
		if err == nil {
			return line, nil
		}
		if err != bufio.ErrBufferFull {
			return nil, err
		}
	}
}

func (c *conn) recv() (message, error) {
	if c.readTimeout > 0 {
		c.c.SetReadDeadline(time.Now().Add(c.readTimeout))
	}
	line, err := c.readLine()
	if err != nil {
		return message{}, err
	}
	var m message
	if err := json.Unmarshal(line, &m); err != nil {
		return message{}, fmt.Errorf("farm: decoding message: %w", err)
	}
	return m, nil
}

func (c *conn) close() error { return c.c.Close() }

// staleAfter converts a heartbeat interval into the silence window that
// marks a peer dead.
func staleAfter(heartbeat time.Duration) time.Duration {
	return idleMultiplier * heartbeat
}

// resultsEqual compares two CellResults field-for-field, including the
// windowed recovery curve through its Equal codec (pointer equality is
// useless across a wire round trip). The farm uses it to byte-check
// speculative duplicates against the accepted result — a free
// cross-worker determinism audit, since cell seeds make honest answers
// identical by construction.
func resultsEqual(a, b harness.CellResult) bool {
	aw, bw := a.Windows, b.Windows
	a.Windows, b.Windows = nil, nil
	if a != b {
		return false
	}
	switch {
	case aw == nil && bw == nil:
		return true
	case aw == nil || bw == nil:
		return false
	}
	return aw.Equal(bw)
}

// cellLabel is a compact human label for log lines and errors (cache keys
// are runner-internal; this is only for humans).
func cellLabel(c harness.Cell) string {
	name := c.Workload
	if c.Mix.Name != "" {
		name = c.Mix.Name
	}
	l := fmt.Sprintf("%s/%d/%s", c.System, c.Nodes, name)
	if c.LoadOnly {
		l += "/load"
	}
	if c.ClusterD {
		l += "/D"
	}
	if c.Variants != "" {
		l += "/" + c.Variants
	}
	if c.Faults != "" {
		l += "{" + c.Faults + "}"
	}
	return l
}
