// Package farm distributes harness cells across processes: a coordinator
// (apmbench -serve) plans figures exactly as a single process would, but
// leases each cell to joined workers (apmbench -join) and merges their
// results through the runner's ordinary singleflight path. Because a
// cell's seed is a pure function of (config, cell identity, repetition),
// a worker's answer is bit-identical to a local measurement, and the
// merged figures render byte-for-byte the same as a serial run.
//
// The wire protocol is JSON lines over TCP, one message per line:
//
//	worker → hello{version,capacity}
//	coordinator → helloAck{config}   (or reject{reason}, then close)
//	coordinator → lease{id,cell}     (at most `capacity` outstanding)
//	worker → result{id,result}       (or error{id,reason})
//	coordinator → drain              (no more leases; finish and leave)
//
// The hello version is the binary's model hash (repro.ModelVersion): a
// worker built from different model sources is rejected at the door, not
// allowed to contribute silently different numbers.
package farm

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"

	"repro/internal/harness"
)

// Message types.
const (
	msgHello    = "hello"
	msgHelloAck = "helloAck"
	msgReject   = "reject"
	msgLease    = "lease"
	msgResult   = "result"
	msgError    = "error"
	msgDrain    = "drain"
)

// message is the single wire envelope; Type selects which fields are set.
// One flat struct keeps the codec trivial and the protocol greppable.
type message struct {
	Type string `json:"type"`
	// hello
	Version  string `json:"version,omitempty"`
	Capacity int    `json:"capacity,omitempty"`
	// helloAck
	Config *harness.Config `json:"config,omitempty"`
	// reject / error
	Reason string `json:"reason,omitempty"`
	// lease / result / error
	ID     int64               `json:"id,omitempty"`
	Cell   *harness.Cell       `json:"cell,omitempty"`
	Result *harness.CellResult `json:"result,omitempty"`
}

// conn frames messages as JSON lines over a net.Conn. Writes are
// serialized (lease pushes and result reads race otherwise); reads are
// single-reader by construction.
type conn struct {
	c   net.Conn
	r   *bufio.Reader
	wmu sync.Mutex
}

func newConn(c net.Conn) *conn {
	return &conn{c: c, r: bufio.NewReader(c)}
}

func (c *conn) send(m message) error {
	data, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("farm: encoding %s message: %w", m.Type, err)
	}
	data = append(data, '\n')
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if _, err := c.c.Write(data); err != nil {
		return fmt.Errorf("farm: sending %s message: %w", m.Type, err)
	}
	return nil
}

func (c *conn) recv() (message, error) {
	line, err := c.r.ReadBytes('\n')
	if err != nil {
		return message{}, err
	}
	var m message
	if err := json.Unmarshal(line, &m); err != nil {
		return message{}, fmt.Errorf("farm: decoding message: %w", err)
	}
	return m, nil
}

func (c *conn) close() error { return c.c.Close() }
