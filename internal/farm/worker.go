package farm

import (
	"fmt"
	"net"
	"sync"

	"repro/internal/harness"
)

// WorkerOptions configures Join.
type WorkerOptions struct {
	// Version is the binary's model identity, sent in hello; the
	// coordinator rejects a version it does not share.
	Version string
	// Capacity bounds concurrently executing cells on this worker (the
	// coordinator never leases more than this many at once). 0 means 1.
	Capacity int
	// Cache, when set, serves and stores this worker's cell results (a
	// warm worker answers leases without re-measuring).
	Cache harness.ResultCache
	// Logf, when set, receives one line per worker event.
	Logf func(format string, args ...any)
}

// Join connects to a coordinator, executes leased cells with a local
// runner built from the coordinator's config, and returns when the
// coordinator drains the farm (or the connection drops). The error is nil
// on a clean drain.
func Join(addr string, opts WorkerOptions) error {
	capacity := opts.Capacity
	if capacity < 1 {
		capacity = 1
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("farm: joining %s: %w", addr, err)
	}
	c := newConn(nc)
	defer c.close()

	if err := c.send(message{Type: msgHello, Version: opts.Version, Capacity: capacity}); err != nil {
		return err
	}
	ack, err := c.recv()
	if err != nil {
		return fmt.Errorf("farm: handshake with %s: %w", addr, err)
	}
	switch ack.Type {
	case msgReject:
		return fmt.Errorf("farm: coordinator %s rejected this worker: %s", addr, ack.Reason)
	case msgHelloAck:
		if ack.Config == nil {
			return fmt.Errorf("farm: coordinator %s sent helloAck without a config", addr)
		}
	default:
		return fmt.Errorf("farm: unexpected handshake message %q from %s", ack.Type, addr)
	}

	// The worker's runner mirrors the coordinator's experiment exactly:
	// same config, so the same cell keys and the same seeds. Leases run
	// concurrently up to capacity; the runner's own caches mean repeated
	// leases of one cell (possible after a requeue) measure once.
	runner := harness.NewRunner(*ack.Config)
	runner.Workers = capacity
	runner.Cache = opts.Cache
	logf("farm: joined %s (capacity %d, config %s)", addr, capacity, ack.Config.Fingerprint())

	var wg sync.WaitGroup
	sem := make(chan struct{}, capacity)
	for {
		m, err := c.recv()
		if err != nil {
			// Connection gone: the coordinator died or dropped us. Finish
			// what's running (results have nowhere to go, but the runner
			// cache keeps them for a future lease) and report the cut.
			wg.Wait()
			return fmt.Errorf("farm: connection to %s lost: %w", addr, err)
		}
		switch m.Type {
		case msgDrain:
			wg.Wait()
			logf("farm: drained by %s", addr)
			return nil
		case msgLease:
			if m.Cell == nil {
				return fmt.Errorf("farm: lease %d from %s has no cell", m.ID, addr)
			}
			id, cell := m.ID, *m.Cell
			sem <- struct{}{}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				res, err := runner.Run(cell)
				if err != nil {
					c.send(message{Type: msgError, ID: id, Reason: err.Error()})
					return
				}
				c.send(message{Type: msgResult, ID: id, Result: &res})
			}()
		default:
			return fmt.Errorf("farm: unexpected message %q from %s", m.Type, addr)
		}
	}
}
