package farm

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/harness"
)

// Reconnect policy: a worker that loses its coordinator retries with
// exponential backoff + jitter. The budget counts consecutive failed
// attempts and resets on every successful handshake, so a flaky network
// gets unlimited patience as long as it occasionally works.
const (
	backoffInitial    = 500 * time.Millisecond
	backoffCap        = 15 * time.Second
	defaultMaxRetries = 6
)

// errRejected marks a coordinator's deliberate refusal (version mismatch);
// retrying cannot help, so the worker exits instead of hammering the door.
var errRejected = errors.New("farm: coordinator rejected this worker")

// WorkerOptions configures Join.
type WorkerOptions struct {
	// Version is the binary's model identity, sent in hello; the
	// coordinator rejects a version it does not share.
	Version string
	// Capacity bounds concurrently executing cells on this worker (the
	// coordinator never leases more than this many at once). 0 means 1.
	Capacity int
	// Cache, when set, serves and stores this worker's cell results (a
	// warm worker answers leases without re-measuring).
	Cache harness.ResultCache
	// Logf, when set, receives one line per worker event.
	Logf func(format string, args ...any)
	// MaxRetries bounds consecutive failed reconnect attempts after a
	// connection loss before Join gives up (the count resets on every
	// successful handshake). 0 means 6; negative disables reconnecting.
	MaxRetries int
}

// Join connects to a coordinator, executes leased cells with a local
// runner built from the coordinator's config, and returns when the
// coordinator drains the farm. The error is nil on a clean drain.
//
// A lost connection is not fatal: Join redials with exponential backoff
// and jitter, re-hellos, and resumes leasing. The runner (and its caches)
// persists across sessions, so a cell that was mid-execution when the
// link dropped and is re-leased afterwards joins the still-running
// measurement through the singleflight layer instead of starting over.
// Only the initial dial fails immediately — a worker that never reached
// its coordinator is misconfigured, not unlucky.
func Join(addr string, opts WorkerOptions) error {
	capacity := opts.Capacity
	if capacity < 1 {
		capacity = 1
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	maxRetries := opts.MaxRetries
	if maxRetries == 0 {
		maxRetries = defaultMaxRetries
	}

	w := &worker{
		version:  opts.Version,
		capacity: capacity,
		cache:    opts.Cache,
		logf:     logf,
		sem:      make(chan struct{}, capacity),
	}

	first := true
	failures := 0
	backoff := backoffInitial
	for {
		outcome, err := w.session(addr)
		switch outcome {
		case sessionDrained:
			return nil
		case sessionPermanent:
			return err
		case sessionLost:
			// We were in: reset the budget and start the backoff ladder
			// from the bottom.
			failures, backoff = 0, backoffInitial
			logf("farm: connection to %s lost (%v); reconnecting", addr, err)
		case sessionFailed:
			if first {
				return err
			}
			failures++
			if failures > maxRetries {
				return fmt.Errorf("farm: giving up on %s after %d consecutive failed reconnects: %w",
					addr, failures-1, err)
			}
			logf("farm: reconnect to %s failed (attempt %d/%d): %v", addr, failures, maxRetries, err)
		}
		first = false
		// Jittered sleep in [backoff/2, backoff): workers cut by the same
		// network event must not redial in lockstep.
		d := backoff/2 + time.Duration(rand.Int63n(int64(backoff/2)))
		time.Sleep(d)
		if backoff *= 2; backoff > backoffCap {
			backoff = backoffCap
		}
	}
}

type sessionOutcome int

const (
	sessionDrained   sessionOutcome = iota // clean drain: Join returns nil
	sessionPermanent                       // rejected: retrying cannot help
	sessionLost                            // joined, then lost: reconnect, fresh budget
	sessionFailed                          // dial or handshake failed: counts against the budget
)

// worker is the state that survives reconnects: the runner (with its
// singleflight and caches), the capacity semaphore, and the in-flight
// waitgroup. In-flight cells keep running across a connection loss; their
// sends to the dead conn fail silently, and a re-lease of the same cell
// on the next session joins the running measurement via singleflight.
type worker struct {
	version  string
	capacity int
	cache    harness.ResultCache
	logf     func(format string, args ...any)

	runner      *harness.Runner
	fingerprint string
	sem         chan struct{}
	wg          sync.WaitGroup
}

// session runs one connection lifetime: dial, hello, lease/execute until
// drain or loss.
func (w *worker) session(addr string) (sessionOutcome, error) {
	nc, err := net.DialTimeout("tcp", addr, handshakeTimeout)
	if err != nil {
		return sessionFailed, fmt.Errorf("farm: joining %s: %w", addr, err)
	}
	c := newConn(nc)
	defer c.close()

	c.readTimeout = handshakeTimeout
	if err := c.send(message{Type: msgHello, Version: w.version, Capacity: w.capacity}); err != nil {
		return sessionFailed, err
	}
	ack, err := c.recv()
	if err != nil {
		return sessionFailed, fmt.Errorf("farm: handshake with %s: %w", addr, err)
	}
	switch ack.Type {
	case msgReject:
		return sessionPermanent, fmt.Errorf("%w (%s): %s", errRejected, addr, ack.Reason)
	case msgHelloAck:
		if ack.Config == nil {
			return sessionFailed, fmt.Errorf("farm: coordinator %s sent helloAck without a config", addr)
		}
	default:
		return sessionFailed, fmt.Errorf("farm: unexpected handshake message %q from %s", ack.Type, addr)
	}

	hb := time.Duration(ack.HeartbeatMillis) * time.Millisecond
	if hb <= 0 {
		hb = time.Second
	}
	c.readTimeout = staleAfter(hb)

	// The worker's runner mirrors the coordinator's experiment exactly:
	// same config, so the same cell keys and the same seeds. It is
	// rebuilt only when the config actually changes, so reconnecting to
	// the same experiment keeps every cached and in-flight measurement.
	if fp := ack.Config.Fingerprint(); w.runner == nil || fp != w.fingerprint {
		w.runner = harness.NewRunner(*ack.Config)
		w.runner.Workers = w.capacity
		w.runner.Cache = w.cache
		w.fingerprint = fp
	}
	w.logf("farm: joined %s as w%d (capacity %d, config %s)", addr, ack.WorkerID, w.capacity, w.fingerprint)

	stopHB := make(chan struct{})
	defer close(stopHB)
	go func() {
		t := time.NewTicker(hb)
		defer t.Stop()
		for {
			select {
			case <-stopHB:
				return
			case <-t.C:
				if c.send(message{Type: msgHeartbeat}) != nil {
					return
				}
			}
		}
	}()

	for {
		m, err := c.recv()
		if err != nil {
			// Connection gone. Do NOT wait for in-flight cells: reconnect
			// immediately so the coordinator sees this worker again before
			// it expires the leases; re-leased cells join the running
			// measurements through singleflight.
			return sessionLost, err
		}
		switch m.Type {
		case msgHeartbeat:
			// recv refreshed the read deadline; nothing else to do.
		case msgDrain:
			w.wg.Wait()
			w.logf("farm: drained by %s", addr)
			return sessionDrained, nil
		case msgReject:
			return sessionPermanent, fmt.Errorf("%w (%s) mid-session: %s", errRejected, addr, m.Reason)
		case msgLease:
			if m.Cell == nil {
				return sessionLost, fmt.Errorf("farm: lease %d from %s has no cell", m.ID, addr)
			}
			id, cell := m.ID, *m.Cell
			runner := w.runner
			w.sem <- struct{}{}
			w.wg.Add(1)
			go func() {
				defer w.wg.Done()
				defer func() { <-w.sem }()
				res, err := runner.Run(cell)
				// c is this session's conn: a result finishing after a
				// reconnect sends into the dead socket and is dropped —
				// the coordinator re-leases and singleflight re-serves it.
				if err != nil {
					c.send(message{Type: msgError, ID: id, Reason: err.Error()})
					return
				}
				c.send(message{Type: msgResult, ID: id, Result: &res})
			}()
		default:
			return sessionLost, fmt.Errorf("farm: unexpected message %q from %s", m.Type, addr)
		}
	}
}
