package farm

import (
	"bytes"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/harness"
)

// TestCoordinatorSurvivesProtocolAbuse throws hostile byte streams at a
// live coordinator: malformed JSON, an oversized frame, an unknown
// message type, and a second hello mid-session. Each must get the abuser
// disconnected — never a panic, never a wedged coordinator — and a
// healthy worker must still be able to handshake afterwards.
func TestCoordinatorSurvivesProtocolAbuse(t *testing.T) {
	abuses := []struct {
		name string
		run  func(t *testing.T, addr string)
	}{
		{"malformed-json-hello", func(t *testing.T, addr string) {
			rawAbuse(t, addr, []byte("@@@ not json at all\n"))
		}},
		{"oversized-line", func(t *testing.T, addr string) {
			// One 9 MiB "frame" with no newline until the end: past the
			// 8 MiB bound the coordinator must give up, not buffer on.
			frame := bytes.Repeat([]byte{'a'}, 9<<20)
			frame[len(frame)-1] = '\n'
			rawAbuse(t, addr, frame)
		}},
		{"unknown-hello-type", func(t *testing.T, addr string) {
			rawAbuse(t, addr, []byte(`{"type":"bogus"}`+"\n"))
		}},
		{"hello-mid-session", func(t *testing.T, addr string) {
			// A correct handshake followed by a second hello (wrong
			// version, even): not a legal mid-session message, so the
			// coordinator must drop the connection.
			d, err := net.Dial("tcp", addr)
			if err != nil {
				t.Fatal(err)
			}
			c := newConn(d)
			defer c.close()
			c.send(message{Type: msgHello, Version: testVersion, Capacity: 1})
			if m, err := recvSkipHB(c); err != nil || m.Type != msgHelloAck {
				t.Fatalf("handshake: %+v %v", m, err)
			}
			c.send(message{Type: msgHello, Version: "some-other-model", Capacity: 1})
			expectDisconnect(t, c)
		}},
	}
	for _, tc := range abuses {
		t.Run(tc.name, func(t *testing.T) {
			co := NewCoordinator(harness.Quick(), testVersion)
			co.HeartbeatInterval = 50 * time.Millisecond
			addr, err := co.Listen("127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer co.Close()

			tc.run(t, addr.String())

			// The coordinator must still serve well-behaved workers.
			d, err := net.Dial("tcp", addr.String())
			if err != nil {
				t.Fatal(err)
			}
			c := newConn(d)
			defer c.close()
			if err := c.send(message{Type: msgHello, Version: testVersion, Capacity: 1}); err != nil {
				t.Fatal(err)
			}
			if m, err := recvSkipHB(c); err != nil || m.Type != msgHelloAck {
				t.Fatalf("healthy handshake after %s: %+v %v", tc.name, m, err)
			}
		})
	}
}

// rawAbuse writes a hostile byte stream and asserts the peer disconnects.
func rawAbuse(t *testing.T, addr string, payload []byte) {
	t.Helper()
	d, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	c := newConn(d)
	defer c.close()
	// The write itself may fail mid-stream (the peer is allowed to cut us
	// off as soon as it smells garbage); only the disconnect matters.
	d.Write(payload)
	expectDisconnect(t, c)
}

// expectDisconnect asserts the peer closes the connection within a bound
// (skipping any frames it sent before giving up on us).
func expectDisconnect(t *testing.T, c *conn) {
	t.Helper()
	c.readTimeout = 15 * time.Second
	for {
		if _, err := c.recv(); err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				t.Fatal("peer kept the connection open after protocol abuse")
			}
			return
		}
	}
}

// TestWorkerSurvivesProtocolAbuse points a real worker at scripted
// hostile coordinators: garbage frames, oversized frames, a helloAck
// with no config, an unknown handshake type, and a mid-session reject.
// Join must return an error in bounded time — never panic, never hang.
func TestWorkerSurvivesProtocolAbuse(t *testing.T) {
	cfg := harness.Quick()
	ack := message{Type: msgHelloAck, Config: &cfg, WorkerID: 1, HeartbeatMillis: 50}
	abuses := []struct {
		name    string
		script  func(t *testing.T, c *conn)
		wantErr string // substring of Join's error; "" = any error
	}{
		{"garbage-after-ack", func(t *testing.T, c *conn) {
			c.send(ack)
			c.c.Write([]byte("@@@ not json\n"))
		}, ""},
		{"oversized-frame", func(t *testing.T, c *conn) {
			c.send(ack)
			frame := bytes.Repeat([]byte{'b'}, 9<<20)
			frame[len(frame)-1] = '\n'
			c.c.Write(frame)
		}, ""},
		{"ack-without-config", func(t *testing.T, c *conn) {
			c.send(message{Type: msgHelloAck, WorkerID: 1})
		}, "without a config"},
		{"unknown-handshake-type", func(t *testing.T, c *conn) {
			c.send(message{Type: "bogus"})
		}, "unexpected handshake message"},
		{"reject-mid-session", func(t *testing.T, c *conn) {
			c.send(ack)
			c.send(message{Type: msgReject, Reason: "scripted mid-session reject"})
		}, "rejected this worker"},
	}
	for _, tc := range abuses {
		t.Run(tc.name, func(t *testing.T) {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			go func() {
				nc, err := ln.Accept()
				// Serve exactly one session, then disappear: the worker's
				// reconnect attempts must hit a dead address and exhaust
				// the retry budget instead of looping forever.
				ln.Close()
				if err != nil {
					return
				}
				c := newConn(nc)
				if m, err := c.recv(); err != nil || m.Type != msgHello {
					nc.Close()
					return
				}
				tc.script(t, c)
				// Leave the conn open; the worker decides to hang up.
			}()

			done := make(chan error, 1)
			go func() {
				done <- Join(ln.Addr().String(), WorkerOptions{
					Version:    testVersion,
					Capacity:   1,
					MaxRetries: -1, // fail on the first failed reconnect
				})
			}()
			select {
			case err := <-done:
				if err == nil {
					t.Fatalf("%s: Join returned nil, want an error", tc.name)
				}
				if tc.wantErr != "" && !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("%s: Join error %q, want substring %q", tc.name, err, tc.wantErr)
				}
				if tc.name == "reject-mid-session" && !errors.Is(err, errRejected) {
					t.Fatalf("reject error %q not marked permanent", err)
				}
			case <-time.After(60 * time.Second):
				t.Fatalf("%s: Join hung", tc.name)
			}
		})
	}
}
