package farm

import (
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"time"

	"repro/internal/harness"
	"repro/internal/sim"
)

// ErrClosed is returned for cells still pending when the coordinator shuts
// down with no way to finish them.
var ErrClosed = errors.New("farm: coordinator closed")

// task is one unit of work: a cell plus the channel its requester blocks
// on. Tasks move queue → one or more leases (a requeue or a speculative
// duplicate can put the same task on several workers) → done. The first
// valid answer completes the task; later duplicates are byte-compared
// against it and any mismatch is a fatal cross-worker divergence.
type task struct {
	id   int64
	cell harness.Cell
	done chan struct{}
	res  harness.CellResult
	err  error
	// completed guards done: set exactly once, under the coordinator lock.
	completed bool
	// copies counts live leases (worker or local) for this task.
	copies int
	// enqueued is when the task first entered the queue; the local
	// fallback triggers off the age of the queue head.
	enqueued time.Time
}

// lease is one grant of a task to a worker (or the local fallback):
// start orders straggler speculation (oldest lease = slowest cell), and
// deadline bounds how long the coordinator waits before requeueing.
type lease struct {
	t        *task
	start    time.Time
	deadline time.Time
}

// workerState is the coordinator's view of one joined worker. All fields
// after the immutable header are guarded by the coordinator mutex.
type workerState struct {
	id     int64
	addr   string
	c      *conn
	deadCh chan struct{} // closed when the result reader exits

	capacity    int // dockable: each missed lease deadline costs one slot
	outstanding map[int64]*lease
	dead        bool
	reaped      bool
}

func (w *workerState) String() string {
	return fmt.Sprintf("worker w%d (%s)", w.id, w.addr)
}

// Stats is a point-in-time snapshot of the farm's health counters.
type Stats struct {
	// LiveWorkers counts currently joined (unreaped) workers.
	LiveWorkers int
	// Joins counts hellos accepted over the coordinator's lifetime.
	Joins int64
	// Expired counts leases that missed their deadline and were requeued.
	Expired int64
	// Speculated counts duplicate leases handed to idle workers.
	Speculated int64
	// LocalRuns counts cells the coordinator executed itself because no
	// live worker was available.
	LocalRuns int64
	// Requeued counts leases returned to the queue (death or expiry).
	Requeued int64
	// DuplicateResults counts redundant answers byte-checked against the
	// accepted result (each is one passed cross-worker determinism audit).
	DuplicateResults int64
}

// Coordinator accepts workers and leases cells to them. It implements
// harness.CellExecutor: plug it into Runner.Executor and RunAll's pool
// becomes the dispatch width, with each ExecuteCell call blocking until
// some worker returns the cell's result. Safe for concurrent use.
//
// Fault tolerance (all of it invisible in the output, because cell seeds
// make re-executions byte-identical): a worker that dies has its leases
// requeued at the queue front; a worker that goes silent past the
// heartbeat window is treated as dead; a lease that misses LeaseTimeout
// is requeued and the worker's capacity docked by one, so a hung worker
// degrades the farm instead of wedging it; when the queue is empty but
// leases are outstanding, idle workers re-run the slowest cells
// (Speculate) and the first valid answer wins; and when no live worker
// exists at all, the coordinator falls back to executing cells locally
// after FallbackAfter. Duplicate answers from any of these paths are
// byte-compared — a mismatch fails the whole run via Err/Close.
type Coordinator struct {
	cfg     harness.Config
	version string
	// Logf, when set, receives one line per farm event (worker joined,
	// rejected, died, leases requeued, speculation, local fallback).
	// Never required for correctness. Workers are identified by the
	// stable id assigned at hello ("worker w3"), so requeue, death and
	// speculation lines for one worker correlate across the run.
	Logf func(format string, args ...any)

	// LeaseTimeout bounds how long a leased cell may stay unanswered
	// before it is requeued and the holder's capacity docked. 0 means
	// DefaultLeaseTimeout(cfg): scaled to cell fidelity, generous enough
	// that only a genuinely hung worker trips it. Set before Listen.
	LeaseTimeout time.Duration
	// HeartbeatInterval is the keepalive cadence both directions
	// (announced to workers at hello); 5× of silence marks a peer dead.
	// 0 means 1s. Set before Listen.
	HeartbeatInterval time.Duration
	// Speculate re-leases the slowest outstanding cells to idle workers
	// when the queue is empty (bounded by MaxCopies; first valid result
	// wins, duplicates are byte-compared). NewCoordinator enables it.
	Speculate bool
	// MaxCopies bounds concurrent leases per task under speculation.
	// 0 means 2 (the original plus one speculative copy).
	MaxCopies int
	// FallbackAfter is how long queued work may wait with zero live
	// workers before the coordinator executes it locally. 0 means 10s.
	// Set before Listen.
	FallbackAfter time.Duration
	// Local, when set, executes fallback cells; nil lazily builds a
	// plain in-process harness.Runner over the coordinator's config.
	Local harness.CellExecutor

	mu        sync.Mutex
	cond      *sync.Cond
	queue     []*task
	tasks     map[int64]*task // every task ever enqueued, for late-duplicate audit
	workers   map[int64]*workerState
	localRuns map[int64]*lease
	nextID    int64
	nextWID   int64
	closed    bool
	fatal     error

	joins      int64
	expired    int64
	speculated int64
	localRan   int64
	requeued   int64
	dupResults int64

	local harness.CellExecutor // resolved Local

	ln net.Listener
	wg sync.WaitGroup
}

// NewCoordinator creates a coordinator for the given experiment config.
// version is the binary's model identity (repro.ModelVersion()); workers
// whose hello carries a different version are rejected. Speculation is on
// by default; timing knobs resolve their defaults at Listen.
func NewCoordinator(cfg harness.Config, version string) *Coordinator {
	co := &Coordinator{
		cfg:       cfg.Defaults(),
		version:   version,
		Speculate: true,
		tasks:     map[int64]*task{},
		workers:   map[int64]*workerState{},
		localRuns: map[int64]*lease{},
	}
	co.cond = sync.NewCond(&co.mu)
	return co
}

// DefaultLeaseTimeout scales the lease deadline to cell fidelity: a rough
// wall-clock estimate per cell (virtual seconds × scale × repetitions,
// calibrated against the reference core) with a 20× safety margin,
// clamped to [30s, 30m]. Only a hung worker should ever trip it — a
// false expiry costs one redundant (byte-identical) re-execution, never
// a wrong number.
func DefaultLeaseTimeout(cfg harness.Config) time.Duration {
	cfg = cfg.Defaults()
	virtSecs := float64(cfg.Warmup+cfg.Measure) / float64(sim.Second)
	est := time.Duration(virtSecs * cfg.Scale * 400 * float64(cfg.Repetitions) * float64(time.Second))
	d := 20 * est
	if d < 30*time.Second {
		d = 30 * time.Second
	}
	if d > 30*time.Minute {
		d = 30 * time.Minute
	}
	return d
}

// Listen binds addr, resolves the timing knobs' defaults, and starts
// accepting workers plus the lease-deadline and local-fallback monitors
// in the background. Returns the bound address (useful with ":0").
func (co *Coordinator) Listen(addr string) (net.Addr, error) {
	if co.LeaseTimeout <= 0 {
		co.LeaseTimeout = DefaultLeaseTimeout(co.cfg)
	}
	if co.HeartbeatInterval <= 0 {
		co.HeartbeatInterval = time.Second
	}
	if co.MaxCopies <= 0 {
		co.MaxCopies = 2
	}
	if co.FallbackAfter <= 0 {
		co.FallbackAfter = 10 * time.Second
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	co.mu.Lock()
	co.ln = ln
	co.mu.Unlock()
	co.wg.Add(3)
	go co.acceptLoop(ln)
	go co.expiryLoop()
	go co.fallbackLoop()
	return ln.Addr(), nil
}

func (co *Coordinator) acceptLoop(ln net.Listener) {
	defer co.wg.Done()
	for {
		c, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		co.wg.Add(1)
		go func() {
			defer co.wg.Done()
			co.serveWorker(newConn(c))
		}()
	}
}

func (co *Coordinator) logf(format string, args ...any) {
	if co.Logf != nil {
		co.Logf(format, args...)
	}
}

// serveWorker runs one worker connection: handshake, then a lease pump
// with a concurrent result reader until the worker leaves, goes silent,
// or the coordinator drains it.
func (co *Coordinator) serveWorker(c *conn) {
	defer c.close()
	// Bound the handshake: a dialer that never sends a hello must not pin
	// this goroutine (or hold Close hostage) forever.
	c.readTimeout = handshakeTimeout
	hello, err := c.recv()
	if err != nil || hello.Type != msgHello {
		return
	}
	if hello.Version != co.version {
		co.logf("farm: rejected worker %s: model version %.12s != %.12s",
			c.c.RemoteAddr(), hello.Version, co.version)
		c.send(message{Type: msgReject, Reason: fmt.Sprintf(
			"model version mismatch: worker %s, coordinator %s", hello.Version, co.version)})
		return
	}
	capacity := hello.Capacity
	if capacity < 1 {
		capacity = 1
	}

	co.mu.Lock()
	if co.closed {
		co.mu.Unlock()
		c.send(message{Type: msgDrain})
		return
	}
	co.nextWID++
	co.joins++
	w := &workerState{
		id:          co.nextWID,
		addr:        c.c.RemoteAddr().String(),
		c:           c,
		deadCh:      make(chan struct{}),
		capacity:    capacity,
		outstanding: map[int64]*lease{},
	}
	co.workers[w.id] = w
	co.cond.Broadcast()
	co.mu.Unlock()

	cfg := co.cfg
	if err := c.send(message{
		Type:            msgHelloAck,
		Config:          &cfg,
		WorkerID:        w.id,
		HeartbeatMillis: co.HeartbeatInterval.Milliseconds(),
	}); err != nil {
		co.reapWorker(w)
		return
	}
	co.logf("farm: %s joined (capacity %d)", w, capacity)

	// After the handshake the worker heartbeats every HeartbeatInterval,
	// so a read that stalls past the stale window means the worker is
	// gone (hung process, dead host, cut network) even if TCP never
	// notices. Symmetrically, heartbeat back so an idle worker can tell
	// a quiet farm from a dead coordinator.
	c.readTimeout = staleAfter(co.HeartbeatInterval)
	stopHB := make(chan struct{})
	defer close(stopHB)
	co.wg.Add(1)
	go func() {
		defer co.wg.Done()
		t := time.NewTicker(co.HeartbeatInterval)
		defer t.Stop()
		for {
			select {
			case <-stopHB:
				return
			case <-t.C:
				if c.send(message{Type: msgHeartbeat}) != nil {
					return
				}
			}
		}
	}()

	go co.readWorker(w)
	co.pumpWorker(w)
}

// readWorker consumes one worker's messages: results and errors complete
// (or audit) tasks, heartbeats refresh the read deadline as a side
// effect, anything else is a protocol violation and drops the worker. On
// exit the worker is marked dead and the pump woken.
func (co *Coordinator) readWorker(w *workerState) {
	defer func() {
		co.mu.Lock()
		w.dead = true
		co.cond.Broadcast()
		co.mu.Unlock()
		close(w.deadCh)
	}()
	for {
		m, err := w.c.recv()
		if err != nil {
			return
		}
		switch m.Type {
		case msgHeartbeat:
			continue
		case msgResult, msgError:
			co.mu.Lock()
			if l, ok := w.outstanding[m.ID]; ok {
				delete(w.outstanding, m.ID)
				l.t.copies--
			}
			t := co.tasks[m.ID]
			co.cond.Broadcast() // a slot freed; the pump may proceed
			co.mu.Unlock()
			if t == nil {
				co.logf("farm: %s answered unknown lease %d; ignoring", w, m.ID)
				continue
			}
			switch {
			case m.Type == msgError:
				co.deliver(t, harness.CellResult{}, fmt.Errorf("farm: %s: %s", w, m.Reason), w.String())
			case m.Result == nil:
				co.deliver(t, harness.CellResult{}, fmt.Errorf("farm: %s sent result %d with no payload", w, m.ID), w.String())
			default:
				co.deliver(t, *m.Result, nil, w.String())
			}
		default:
			co.logf("farm: %s sent unexpected %q mid-session; disconnecting", w, m.Type)
			return
		}
	}
}

// pumpWorker hands the worker a cell whenever it has a free slot: queued
// work first, then — with an empty queue — a speculative duplicate of the
// slowest outstanding cell elsewhere in the farm.
func (co *Coordinator) pumpWorker(w *workerState) {
	for {
		co.mu.Lock()
		var t *task
		speculative := false
		for {
			if co.closed || co.fatal != nil || w.dead {
				break
			}
			// Drop queue heads completed by a late duplicate answer while
			// they waited: leasing them again would be pure waste.
			for len(co.queue) > 0 && co.queue[0].completed {
				co.queue = co.queue[1:]
			}
			if len(w.outstanding) < w.capacity {
				if len(co.queue) > 0 {
					t = co.queue[0]
					co.queue = co.queue[1:]
					break
				}
				if co.Speculate {
					if cand := co.speculationCandidateLocked(w); cand != nil {
						t, speculative = cand, true
						break
					}
				}
			}
			co.cond.Wait()
		}
		if w.dead {
			co.mu.Unlock()
			co.reapWorker(w)
			return
		}
		if co.closed || co.fatal != nil {
			// Drain: let the worker finish in-flight cells, but bound the
			// wait by the latest outstanding deadline so a hung worker
			// cannot hold Close hostage.
			wait := staleAfter(co.HeartbeatInterval)
			now := time.Now()
			for _, l := range w.outstanding {
				if d := l.deadline.Add(staleAfter(co.HeartbeatInterval)).Sub(now); d > wait {
					wait = d
				}
			}
			co.mu.Unlock()
			w.c.send(message{Type: msgDrain})
			select {
			case <-w.deadCh:
			case <-time.After(wait):
				co.logf("farm: %s ignored drain for %v; dropping", w, wait)
				w.c.close()
				<-w.deadCh
			}
			co.reapWorker(w)
			return
		}
		now := time.Now()
		l := &lease{t: t, start: now, deadline: now.Add(co.LeaseTimeout)}
		w.outstanding[t.id] = l
		t.copies++
		if speculative {
			co.speculated++
			co.logf("farm: speculating cell %s (lease %d) on idle %s", cellLabel(t.cell), t.id, w)
		}
		co.mu.Unlock()
		cell := t.cell
		if err := w.c.send(message{Type: msgLease, ID: t.id, Cell: &cell}); err != nil {
			co.reapWorker(w)
			return
		}
	}
}

// speculationCandidateLocked picks the slowest (earliest-leased) cell
// outstanding anywhere in the farm that worker w could duplicate: not
// completed, under the copy bound, and not already leased to w. Returns
// nil when there is nothing worth racing. Caller holds co.mu.
func (co *Coordinator) speculationCandidateLocked(w *workerState) *task {
	var best *task
	var bestStart time.Time
	consider := func(l *lease) {
		t := l.t
		if t.completed || t.copies >= co.MaxCopies {
			return
		}
		if _, held := w.outstanding[t.id]; held {
			return
		}
		if best == nil || l.start.Before(bestStart) {
			best, bestStart = t, l.start
		}
	}
	for _, ow := range co.workers {
		if ow == w {
			continue
		}
		for _, l := range ow.outstanding {
			consider(l)
		}
	}
	for _, l := range co.localRuns {
		consider(l)
	}
	return best
}

// reapWorker removes a dead (or drained) worker, returning its live
// leases to the queue front so surviving workers pick them up first.
// Idempotent: the pump and the reader can both conclude a worker is gone.
func (co *Coordinator) reapWorker(w *workerState) {
	co.mu.Lock()
	if w.reaped {
		co.mu.Unlock()
		return
	}
	w.reaped = true
	delete(co.workers, w.id)
	var orphans []*task
	for id, l := range w.outstanding {
		delete(w.outstanding, id)
		l.t.copies--
		if !l.t.completed && l.t.copies == 0 {
			orphans = append(orphans, l.t)
		}
	}
	closed := co.closed || co.fatal != nil
	if closed {
		// The farm is draining; no worker will ever take these.
		for _, t := range orphans {
			t.completed = true
			t.err = ErrClosed
			close(t.done)
		}
	} else if len(orphans) > 0 {
		co.queue = append(orphans, co.queue...)
		co.requeued += int64(len(orphans))
	}
	co.cond.Broadcast()
	co.mu.Unlock()
	if !closed && len(orphans) > 0 {
		co.logf("farm: %s left; requeued %d cells at the queue front", w, len(orphans))
	} else if !closed {
		co.logf("farm: %s left", w)
	}
}

// expiryLoop requeues leases that miss their deadline and docks the
// holder's capacity, so a hung-but-heartbeating worker hands its work
// back and stops being leased new cells once fully docked.
func (co *Coordinator) expiryLoop() {
	defer co.wg.Done()
	tick := co.LeaseTimeout / 4
	if tick > 500*time.Millisecond {
		tick = 500 * time.Millisecond
	}
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for range t.C {
		co.mu.Lock()
		if co.closed {
			co.mu.Unlock()
			return
		}
		now := time.Now()
		type expiry struct {
			w    *workerState
			t    *task
			from int
		}
		var hits []expiry
		for _, w := range co.workers {
			for id, l := range w.outstanding {
				if now.Before(l.deadline) {
					continue
				}
				delete(w.outstanding, id)
				l.t.copies--
				from := w.capacity
				if w.capacity > 0 {
					w.capacity--
				}
				co.expired++
				if !l.t.completed && l.t.copies == 0 {
					co.queue = append([]*task{l.t}, co.queue...)
					co.requeued++
				}
				hits = append(hits, expiry{w, l.t, from})
			}
		}
		if len(hits) > 0 {
			co.cond.Broadcast()
		}
		co.mu.Unlock()
		for _, h := range hits {
			co.logf("farm: %s missed the %v lease deadline on cell %s (lease %d); requeued at front, capacity %d→%d",
				h.w, co.LeaseTimeout, cellLabel(h.t.cell), h.t.id, h.from, h.w.capacity)
		}
	}
}

// fallbackLoop executes queued cells locally when no live worker exists:
// a farm run with zero (or only fully docked) workers degrades to a
// plain in-process run instead of hanging. Local executions are bounded
// by GOMAXPROCS and produce byte-identical results by construction.
func (co *Coordinator) fallbackLoop() {
	defer co.wg.Done()
	tick := co.FallbackAfter / 4
	if tick > 250*time.Millisecond {
		tick = 250 * time.Millisecond
	}
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	maxLocal := runtime.GOMAXPROCS(0)
	t := time.NewTicker(tick)
	defer t.Stop()
	for range t.C {
		co.mu.Lock()
		if co.closed {
			co.mu.Unlock()
			return
		}
		now := time.Now()
		for co.fatal == nil && len(co.localRuns) < maxLocal {
			for len(co.queue) > 0 && co.queue[0].completed {
				co.queue = co.queue[1:]
			}
			if len(co.queue) == 0 || co.liveCapacityLocked() > 0 ||
				now.Sub(co.queue[0].enqueued) < co.FallbackAfter {
				break
			}
			tk := co.queue[0]
			co.queue = co.queue[1:]
			tk.copies++
			co.localRuns[tk.id] = &lease{t: tk, start: now}
			co.localRan++
			co.wg.Add(1)
			go co.runLocal(tk)
			co.logf("farm: no live workers for %v; executing cell %s locally", co.FallbackAfter, cellLabel(tk.cell))
		}
		co.mu.Unlock()
	}
}

func (co *Coordinator) liveCapacityLocked() int {
	n := 0
	for _, w := range co.workers {
		if !w.dead {
			n += w.capacity
		}
	}
	return n
}

func (co *Coordinator) runLocal(t *task) {
	defer co.wg.Done()
	co.mu.Lock()
	if co.local == nil {
		if co.Local != nil {
			co.local = co.Local
		} else {
			co.local = harness.NewRunner(co.cfg)
		}
	}
	local := co.local
	co.mu.Unlock()
	res, err := local.ExecuteCell(t.cell)
	co.mu.Lock()
	delete(co.localRuns, t.id)
	t.copies--
	co.cond.Broadcast()
	co.mu.Unlock()
	co.deliver(t, res, err, "local fallback")
}

// deliver completes a task with its first answer, or audits a duplicate
// answer against the accepted one. Duplicates arise from requeues racing
// late answers and from speculation; honest duplicates are byte-identical
// by the seeding contract, so any mismatch is a model divergence between
// executors and fails the whole run.
func (co *Coordinator) deliver(t *task, res harness.CellResult, err error, from string) {
	co.mu.Lock()
	if !t.completed {
		t.completed = true
		t.res, t.err = res, err
		close(t.done)
		co.cond.Broadcast()
		co.mu.Unlock()
		return
	}
	prev, prevErr := t.res, t.err
	co.mu.Unlock()
	if err != nil || prevErr != nil {
		// An error answer is not a number to audit; log and move on (the
		// task already has its authoritative outcome).
		co.logf("farm: late duplicate answer for cell %s from %s dropped (first err=%v, dup err=%v)",
			cellLabel(t.cell), from, prevErr, err)
		return
	}
	if !resultsEqual(prev, res) {
		co.fail(fmt.Errorf("farm: cross-worker divergence on cell %s: duplicate result from %s does not match the accepted one (throughput %v vs %v, ops %d vs %d) — executors disagree on a deterministic cell, refusing to pick one",
			cellLabel(t.cell), from, res.Throughput, prev.Throughput, res.Ops, prev.Ops))
		return
	}
	co.mu.Lock()
	co.dupResults++
	co.mu.Unlock()
	co.logf("farm: duplicate result for cell %s from %s byte-matches the accepted one (cross-worker determinism check passed)",
		cellLabel(t.cell), from)
}

// fail poisons the farm: the error becomes Err()'s and Close()'s result,
// every incomplete task completes with it, and no new work is accepted.
func (co *Coordinator) fail(err error) {
	co.mu.Lock()
	if co.fatal != nil {
		co.mu.Unlock()
		return
	}
	co.fatal = err
	for _, t := range co.tasks {
		if !t.completed {
			t.completed = true
			t.err = err
			close(t.done)
		}
	}
	co.queue = nil
	co.cond.Broadcast()
	co.mu.Unlock()
	co.logf("farm: FATAL: %v", err)
}

// ExecuteCell implements harness.CellExecutor: enqueue the cell and block
// until an executor (worker, speculative duplicate, or local fallback)
// returns its result. The runner's singleflight layer guarantees each
// distinct cell reaches here at most once per process.
func (co *Coordinator) ExecuteCell(cell harness.Cell) (harness.CellResult, error) {
	co.mu.Lock()
	if err := co.fatal; err != nil {
		co.mu.Unlock()
		return harness.CellResult{}, err
	}
	if co.closed {
		co.mu.Unlock()
		return harness.CellResult{}, ErrClosed
	}
	co.nextID++
	t := &task{id: co.nextID, cell: cell, done: make(chan struct{}), enqueued: time.Now()}
	co.tasks[t.id] = t
	co.queue = append(co.queue, t)
	co.cond.Broadcast()
	co.mu.Unlock()
	<-t.done
	return t.res, t.err
}

// Workers reports how many workers are currently joined.
func (co *Coordinator) Workers() int {
	co.mu.Lock()
	defer co.mu.Unlock()
	return len(co.workers)
}

// Stats snapshots the farm's health counters.
func (co *Coordinator) Stats() Stats {
	co.mu.Lock()
	defer co.mu.Unlock()
	return Stats{
		LiveWorkers:      len(co.workers),
		Joins:            co.joins,
		Expired:          co.expired,
		Speculated:       co.speculated,
		LocalRuns:        co.localRan,
		Requeued:         co.requeued,
		DuplicateResults: co.dupResults,
	}
}

// Err reports the farm's fatal error, if any — in particular a
// cross-worker divergence detected on a duplicate result after every
// pending cell already completed. Nil while healthy.
func (co *Coordinator) Err() error {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.fatal
}

// Close drains the farm: workers finish in-flight cells, receive drain
// and disconnect; cells still queued fail with ErrClosed. Idempotent.
// Returns the farm's fatal error (cross-worker divergence) if one was
// recorded — a caller that ignores it would silently trust a run the
// farm itself flagged as inconsistent.
func (co *Coordinator) Close() error {
	co.mu.Lock()
	if co.closed {
		err := co.fatal
		co.mu.Unlock()
		return err
	}
	co.closed = true
	var pending []*task
	for _, t := range co.queue {
		if !t.completed {
			pending = append(pending, t)
		}
	}
	co.queue = nil
	ln := co.ln
	co.cond.Broadcast()
	for _, t := range pending {
		t.completed = true
		t.err = ErrClosed
		close(t.done)
	}
	co.mu.Unlock()

	if ln != nil {
		ln.Close()
	}
	co.wg.Wait()
	return co.Err()
}
