package farm

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"repro/internal/harness"
)

// ErrClosed is returned for cells still pending when the coordinator shuts
// down with no way to finish them.
var ErrClosed = errors.New("farm: coordinator closed")

// task is one leased unit of work: a cell plus the channel its requester
// blocks on. Tasks move queue → a worker's outstanding set → done; a
// worker dying moves its outstanding tasks back to the queue.
type task struct {
	id   int64
	cell harness.Cell
	done chan struct{}
	res  harness.CellResult
	err  error
}

// Coordinator accepts workers and leases cells to them. It implements
// harness.CellExecutor: plug it into Runner.Executor and RunAll's pool
// becomes the dispatch width, with each ExecuteCell call blocking until
// some worker returns the cell's result. Safe for concurrent use.
type Coordinator struct {
	cfg     harness.Config
	version string
	// Logf, when set, receives one line per farm event (worker joined,
	// rejected, died, leases requeued). Never required for correctness.
	Logf func(format string, args ...any)

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []*task
	nextID  int64
	closed  bool
	workers int

	ln net.Listener
	wg sync.WaitGroup
}

// NewCoordinator creates a coordinator for the given experiment config.
// version is the binary's model identity (repro.ModelVersion()); workers
// whose hello carries a different version are rejected.
func NewCoordinator(cfg harness.Config, version string) *Coordinator {
	co := &Coordinator{cfg: cfg.Defaults(), version: version}
	co.cond = sync.NewCond(&co.mu)
	return co
}

// Listen binds addr and starts accepting workers in the background.
// Returns the bound address (useful with ":0" in tests).
func (co *Coordinator) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	co.mu.Lock()
	co.ln = ln
	co.mu.Unlock()
	co.wg.Add(1)
	go co.acceptLoop(ln)
	return ln.Addr(), nil
}

func (co *Coordinator) acceptLoop(ln net.Listener) {
	defer co.wg.Done()
	for {
		c, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		co.wg.Add(1)
		go func() {
			defer co.wg.Done()
			co.serveWorker(newConn(c))
		}()
	}
}

func (co *Coordinator) logf(format string, args ...any) {
	if co.Logf != nil {
		co.Logf(format, args...)
	}
}

// serveWorker runs one worker connection: handshake, then a lease pump and
// a result reader until the worker leaves or the coordinator drains it.
func (co *Coordinator) serveWorker(c *conn) {
	defer c.close()
	hello, err := c.recv()
	if err != nil || hello.Type != msgHello {
		return
	}
	if hello.Version != co.version {
		co.logf("farm: rejected worker %s: model version %.12s != %.12s",
			c.c.RemoteAddr(), hello.Version, co.version)
		c.send(message{Type: msgReject, Reason: fmt.Sprintf(
			"model version mismatch: worker %s, coordinator %s", hello.Version, co.version)})
		return
	}
	capacity := hello.Capacity
	if capacity < 1 {
		capacity = 1
	}
	cfg := co.cfg
	if err := c.send(message{Type: msgHelloAck, Config: &cfg}); err != nil {
		return
	}

	co.mu.Lock()
	if co.closed {
		co.mu.Unlock()
		c.send(message{Type: msgDrain})
		return
	}
	co.workers++
	co.mu.Unlock()
	co.logf("farm: worker %s joined (capacity %d)", c.c.RemoteAddr(), capacity)

	outstanding := map[int64]*task{}
	var omu sync.Mutex
	dead := make(chan struct{})

	// Result reader: completes tasks as the worker answers. On exit (EOF,
	// i.e. worker death or post-drain disconnect) it wakes the lease pump
	// so the pump notices `dead` rather than waiting forever.
	go func() {
		defer func() {
			close(dead)
			co.mu.Lock()
			co.cond.Broadcast()
			co.mu.Unlock()
		}()
		for {
			m, err := c.recv()
			if err != nil {
				return
			}
			switch m.Type {
			case msgResult, msgError:
				omu.Lock()
				t := outstanding[m.ID]
				delete(outstanding, m.ID)
				omu.Unlock()
				if t == nil {
					continue
				}
				if m.Type == msgError {
					t.err = fmt.Errorf("farm: worker %s: %s", c.c.RemoteAddr(), m.Reason)
				} else if m.Result == nil {
					t.err = fmt.Errorf("farm: worker %s sent result %d with no payload", c.c.RemoteAddr(), m.ID)
				} else {
					t.res = *m.Result
				}
				close(t.done)
				co.mu.Lock()
				co.cond.Broadcast() // a slot freed; the lease pump may proceed
				co.mu.Unlock()
			}
		}
	}()

	// Lease pump: hand the worker a queued cell whenever it has a free slot.
	for {
		co.mu.Lock()
		for {
			if co.closed {
				break
			}
			omu.Lock()
			free := len(outstanding) < capacity
			omu.Unlock()
			if free && len(co.queue) > 0 {
				break
			}
			select {
			case <-dead:
			default:
				co.cond.Wait()
				continue
			}
			break
		}
		select {
		case <-dead:
			co.mu.Unlock()
			co.workerDied(c, outstanding, &omu)
			return
		default:
		}
		if co.closed {
			co.mu.Unlock()
			c.send(message{Type: msgDrain})
			// Wait for in-flight answers; the reader closes dead on EOF.
			<-dead
			co.workerDied(c, outstanding, &omu)
			return
		}
		t := co.queue[0]
		co.queue = co.queue[1:]
		co.mu.Unlock()

		omu.Lock()
		outstanding[t.id] = t
		omu.Unlock()
		cell := t.cell
		if err := c.send(message{Type: msgLease, ID: t.id, Cell: &cell}); err != nil {
			co.workerDied(c, outstanding, &omu)
			return
		}
	}
}

// workerDied returns a dead worker's outstanding leases to the queue so
// surviving workers pick them up, and drops the worker from the count.
func (co *Coordinator) workerDied(c *conn, outstanding map[int64]*task, omu *sync.Mutex) {
	omu.Lock()
	var orphans []*task
	for id, t := range outstanding {
		orphans = append(orphans, t)
		delete(outstanding, id)
	}
	omu.Unlock()
	co.mu.Lock()
	closed := co.closed
	if !closed {
		co.queue = append(orphans, co.queue...)
	}
	co.workers--
	co.cond.Broadcast()
	co.mu.Unlock()
	if closed {
		// The farm is draining; no worker will ever take these.
		for _, t := range orphans {
			t.err = ErrClosed
			close(t.done)
		}
	} else if len(orphans) > 0 {
		co.logf("farm: worker %s left; requeued %d cells", c.c.RemoteAddr(), len(orphans))
	}
}

// ExecuteCell implements harness.CellExecutor: enqueue the cell and block
// until a worker returns its result (workers may join at any time; the
// call waits for them). The runner's singleflight layer guarantees each
// distinct cell reaches here at most once per process.
func (co *Coordinator) ExecuteCell(cell harness.Cell) (harness.CellResult, error) {
	co.mu.Lock()
	if co.closed {
		co.mu.Unlock()
		return harness.CellResult{}, ErrClosed
	}
	co.nextID++
	t := &task{id: co.nextID, cell: cell, done: make(chan struct{})}
	co.queue = append(co.queue, t)
	co.cond.Broadcast()
	co.mu.Unlock()
	<-t.done
	return t.res, t.err
}

// Workers reports how many workers are currently joined.
func (co *Coordinator) Workers() int {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.workers
}

// Close drains the farm: workers finish in-flight cells, receive drain and
// disconnect; cells still queued fail with ErrClosed. Idempotent.
func (co *Coordinator) Close() error {
	co.mu.Lock()
	if co.closed {
		co.mu.Unlock()
		return nil
	}
	co.closed = true
	pending := co.queue
	co.queue = nil
	ln := co.ln
	co.cond.Broadcast()
	co.mu.Unlock()

	for _, t := range pending {
		t.err = ErrClosed
		close(t.done)
	}
	if ln != nil {
		ln.Close()
	}
	co.wg.Wait()
	return nil
}
