package farm

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/sim"
	"repro/internal/stats"
)

func sampleResult() harness.CellResult {
	w := stats.NewWindowedLatency(0, 100*sim.Millisecond)
	w.Record(50*sim.Millisecond, 2*sim.Millisecond)
	w.RecordFailure(150 * sim.Millisecond)
	return harness.CellResult{
		Cell:       harness.Cell{System: harness.Redis, Nodes: 2, Workload: "R", Faults: "kill-node@1[0.3:0.6]"},
		Throughput: 98765.4321,
		ReadLat:    4 * sim.Millisecond,
		Ops:        54321,
		Windows:    w,
	}
}

// cacheFile finds the single entry file in a cache dir.
func cacheFile(t *testing.T, dir string) string {
	t.Helper()
	entries, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("cache dir entries: %v (err %v), want exactly 1", entries, err)
	}
	return entries[0]
}

// TestFileCacheRoundTrip pins the disk codec: a Put entry Gets back
// exactly, including the recovery-curve windows a fault cell carries.
func TestFileCacheRoundTrip(t *testing.T) {
	fc, err := NewFileCache(t.TempDir(), testVersion)
	if err != nil {
		t.Fatal(err)
	}
	want := sampleResult()
	fc.Put("cfg|cell", want)
	got, ok := fc.Get("cfg|cell")
	if !ok {
		t.Fatal("fresh entry missed")
	}
	if !resultsEqual(want, got) {
		t.Fatalf("cached result differs:\n%+v\n%+v", want, got)
	}
	if _, ok := fc.Get("cfg|other-cell"); ok {
		t.Fatal("unrelated key hit")
	}
}

// TestFileCacheStaleVersionMiss pins the model-identity gate: an entry
// written by a binary with a different model hash is a miss (recomputed),
// and recomputing overwrites it in place — same file, new version.
func TestFileCacheStaleVersionMiss(t *testing.T) {
	dir := t.TempDir()
	old, err := NewFileCache(dir, "old-model-version")
	if err != nil {
		t.Fatal(err)
	}
	old.Put("cfg|cell", sampleResult())
	stale := cacheFile(t, dir)

	cur, err := NewFileCache(dir, testVersion)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cur.Get("cfg|cell"); ok {
		t.Fatal("stale-version entry trusted")
	}
	// The recompute lands on the same file (version is not in the name),
	// replacing the stale entry for good.
	cur.Put("cfg|cell", sampleResult())
	if f := cacheFile(t, dir); f != stale {
		t.Fatalf("recompute wrote %s, want overwrite of %s", f, stale)
	}
	if _, ok := cur.Get("cfg|cell"); !ok {
		t.Fatal("recomputed entry missed")
	}
	if _, ok := old.Get("cfg|cell"); ok {
		t.Fatal("old binary trusted the new binary's entry")
	}
}

// TestFileCacheCorruptionMiss pins self-verification: flipped result
// bytes, truncation, non-JSON garbage and a key mismatch are all detected
// and reported as misses, never decoded into figures.
func TestFileCacheCorruptionMiss(t *testing.T) {
	corruptions := []struct {
		name string
		mut  func(t *testing.T, path string)
	}{
		{"flipped-result-byte", func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			// Corrupt inside the result payload without breaking JSON:
			// the stored checksum must catch it.
			s := strings.Replace(string(data), `"Ops":54321`, `"Ops":54320`, 1)
			if s == string(data) {
				t.Fatal("corruption target not found in record")
			}
			os.WriteFile(path, []byte(s), 0o644)
		}},
		{"truncated", func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			os.WriteFile(path, data[:len(data)/2], 0o644)
		}},
		{"garbage", func(t *testing.T, path string) {
			os.WriteFile(path, []byte("not json at all\n"), 0o644)
		}},
		{"key-mismatch", func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			var rec map[string]json.RawMessage
			if err := json.Unmarshal(data, &rec); err != nil {
				t.Fatal(err)
			}
			rec["key"] = json.RawMessage(`"cfg|some-other-cell"`)
			out, err := json.Marshal(rec)
			if err != nil {
				t.Fatal(err)
			}
			os.WriteFile(path, out, 0o644)
		}},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			fc, err := NewFileCache(dir, testVersion)
			if err != nil {
				t.Fatal(err)
			}
			fc.Put("cfg|cell", sampleResult())
			tc.mut(t, cacheFile(t, dir))
			if _, ok := fc.Get("cfg|cell"); ok {
				t.Fatal("corrupted entry trusted")
			}
			// Recompute path: Put over the damage restores service.
			fc.Put("cfg|cell", sampleResult())
			if got, ok := fc.Get("cfg|cell"); !ok || !resultsEqual(got, sampleResult()) {
				t.Fatal("recompute over corrupted entry failed")
			}
		})
	}
}

// TestFileCacheEndToEndRecompute drives the full stack: a runner over a
// stale-version cache re-executes (never trusts), a runner over the
// matching cache executes nothing.
func TestFileCacheEndToEndRecompute(t *testing.T) {
	dir := t.TempDir()
	cell := harness.Cell{System: harness.Redis, Nodes: 1, Workload: "R"}

	// Cold run with the old model version fills the cache.
	oldCache, err := NewFileCache(dir, "old-model-version")
	if err != nil {
		t.Fatal(err)
	}
	r1 := harness.NewRunner(harness.Quick())
	r1.Cache = oldCache
	if _, err := r1.Run(cell); err != nil {
		t.Fatal(err)
	}
	if r1.Executed() != 1 {
		t.Fatalf("cold run executed %d cells, want 1", r1.Executed())
	}

	// A new model version must re-execute, not trust the stale entry.
	newCache, err := NewFileCache(dir, testVersion)
	if err != nil {
		t.Fatal(err)
	}
	r2 := harness.NewRunner(harness.Quick())
	r2.Cache = newCache
	want, err := r2.Run(cell)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Executed() != 1 || r2.CacheHits() != 0 {
		t.Fatalf("stale-version run: executed=%d hits=%d, want 1/0", r2.Executed(), r2.CacheHits())
	}

	// Same version again: pure cache, zero executions, identical result.
	r3 := harness.NewRunner(harness.Quick())
	r3.Cache = newCache
	got, err := r3.Run(cell)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Executed() != 0 || r3.CacheHits() != 1 {
		t.Fatalf("warm run: executed=%d hits=%d, want 0/1", r3.Executed(), r3.CacheHits())
	}
	if !resultsEqual(got, want) {
		t.Fatalf("warm result differs from recomputed:\n%+v\n%+v", got, want)
	}
}

// TestFileCacheEviction pins the MaxBytes LRU: Put evicts the
// least-recently-used entries (by mtime) to fit the budget, and a Get
// counts as use — a hit entry survives eviction over a colder one.
func TestFileCacheEviction(t *testing.T) {
	dir := t.TempDir()
	fc, err := NewFileCache(dir, testVersion)
	if err != nil {
		t.Fatal(err)
	}
	// Same-length keys give byte-identical entry sizes, so the budget
	// arithmetic below is exact.
	keys := []string{"cfg|cell1", "cfg|cell2", "cfg|cell3", "cfg|cell4"}
	for _, k := range keys[:3] {
		fc.Put(k, sampleResult())
	}
	info, err := os.Stat(fc.path(keys[0]))
	if err != nil {
		t.Fatal(err)
	}
	size := info.Size()
	fc.MaxBytes = 3 * size // room for exactly three entries

	// Age the entries: cell1 oldest, then cell2, then cell3.
	now := time.Now()
	for i, k := range keys[:3] {
		age := time.Duration(3-i) * time.Hour
		if err := os.Chtimes(fc.path(k), now.Add(-age), now.Add(-age)); err != nil {
			t.Fatal(err)
		}
	}
	// A hit on cell1 makes it recently used: cell2 is now the LRU victim.
	if _, ok := fc.Get(keys[0]); !ok {
		t.Fatal("cell1 missed before eviction")
	}
	fc.Put(keys[3], sampleResult()) // 4 entries > budget: evict one

	wantPresent := map[string]bool{keys[0]: true, keys[1]: false, keys[2]: true, keys[3]: true}
	for k, want := range wantPresent {
		if _, ok := fc.Get(k); ok != want {
			t.Errorf("after eviction: Get(%s)=%v, want %v", k, ok, want)
		}
	}
}

// TestFileCachePutErrorsCountedAndLoggedOnce pins the failure accounting:
// a cache that cannot write stays a correct (if useless) cache, counts
// every failed Put, and warns exactly once.
func TestFileCachePutErrorsCountedAndLoggedOnce(t *testing.T) {
	dir := t.TempDir()
	fc, err := NewFileCache(filepath.Join(dir, "cache"), testVersion)
	if err != nil {
		t.Fatal(err)
	}
	var warnings []string
	fc.Logf = func(format string, args ...any) {
		warnings = append(warnings, format)
	}
	// Sabotage the directory: replace it with a plain file so every
	// CreateTemp fails (permission tricks don't work when tests run as
	// root; a non-directory fails for anyone).
	if err := os.RemoveAll(filepath.Join(dir, "cache")); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "cache"), []byte("not a dir"), 0o644); err != nil {
		t.Fatal(err)
	}

	fc.Put("cfg|cell1", sampleResult())
	fc.Put("cfg|cell2", sampleResult())
	if n := fc.PutErrors(); n != 2 {
		t.Fatalf("PutErrors=%d, want 2", n)
	}
	if len(warnings) != 1 {
		t.Fatalf("put failure warned %d times, want exactly once: %v", len(warnings), warnings)
	}
	if _, ok := fc.Get("cfg|cell1"); ok {
		t.Fatal("unwritable cache somehow served a hit")
	}
}
