package stats

import (
	"fmt"

	"repro/internal/sim"
)

// WindowedLatency slices a run's operation outcomes into fixed-width time
// windows, each with its own latency histogram and ok/failed counts. It is
// what turns a node-kill run from one flat mean into an availability dip
// and a recovery curve: per-window p99/p999 and availability can be read
// off directly.
//
// An observation at exactly a window boundary t = start + k*interval lands
// in window k (half-open windows [start+k*i, start+(k+1)*i)). Observations
// before start are dropped; windows grow lazily as later observations
// arrive, and never-touched windows report zero ops and full availability.
type WindowedLatency struct {
	start    sim.Time
	interval sim.Time
	wins     []latWindow
}

type latWindow struct {
	hist *Histogram // lazily allocated: empty windows cost one struct
	ok   int64
	fail int64
}

// NewWindowedLatency creates a windowed recorder starting at start with the
// given window width.
func NewWindowedLatency(start, interval sim.Time) *WindowedLatency {
	if interval <= 0 {
		panic("stats: window interval must be positive")
	}
	return &WindowedLatency{start: start, interval: interval}
}

// idx returns the window index for now, growing the window list; -1 means
// the observation predates the recorder.
func (w *WindowedLatency) idx(now sim.Time) int {
	if now < w.start {
		return -1
	}
	i := int((now - w.start) / w.interval)
	for len(w.wins) <= i {
		w.wins = append(w.wins, latWindow{})
	}
	return i
}

// Record adds a successful operation completing at now with the given
// latency.
func (w *WindowedLatency) Record(now, latency sim.Time) {
	i := w.idx(now)
	if i < 0 {
		return
	}
	if w.wins[i].hist == nil {
		w.wins[i].hist = NewHistogram()
	}
	w.wins[i].hist.Record(latency)
	w.wins[i].ok++
}

// RecordFailure adds a failed (errored or timed-out) operation at now.
func (w *WindowedLatency) RecordFailure(now sim.Time) {
	i := w.idx(now)
	if i < 0 {
		return
	}
	w.wins[i].fail++
}

// Start returns the recorder's origin.
func (w *WindowedLatency) Start() sim.Time { return w.start }

// Interval returns the window width.
func (w *WindowedLatency) Interval() sim.Time { return w.interval }

// Windows returns the number of windows touched so far.
func (w *WindowedLatency) Windows() int { return len(w.wins) }

// WindowStart returns the start time of window i.
func (w *WindowedLatency) WindowStart(i int) sim.Time {
	return w.start + sim.Time(i)*w.interval
}

// Ok returns the successful-operation count in window i.
func (w *WindowedLatency) Ok(i int) int64 { return w.wins[i].ok }

// Failed returns the failed-operation count in window i.
func (w *WindowedLatency) Failed(i int) int64 { return w.wins[i].fail }

// Quantile returns the q-quantile of successful-op latency in window i
// (0 for an empty window).
func (w *WindowedLatency) Quantile(i int, q float64) sim.Time {
	if w.wins[i].hist == nil {
		return 0
	}
	return w.wins[i].hist.Quantile(q)
}

// Availability returns ok/(ok+failed) for window i. A window with no
// operations at all reports 1: nothing was asked, nothing was refused.
func (w *WindowedLatency) Availability(i int) float64 {
	total := w.wins[i].ok + w.wins[i].fail
	if total == 0 {
		return 1
	}
	return float64(w.wins[i].ok) / float64(total)
}

// Throughput returns successful ops/sec in window i.
func (w *WindowedLatency) Throughput(i int) float64 {
	return float64(w.wins[i].ok) / w.interval.Seconds()
}

// Merge adds other's windows into w. Both recorders must share the same
// origin and interval (repetitions of the same cell do).
func (w *WindowedLatency) Merge(other *WindowedLatency) error {
	if other.start != w.start || other.interval != w.interval {
		return fmt.Errorf("stats: merging misaligned windows (start %v/%v, interval %v/%v)",
			w.start, other.start, w.interval, other.interval)
	}
	for len(w.wins) < len(other.wins) {
		w.wins = append(w.wins, latWindow{})
	}
	for i := range other.wins {
		o := &other.wins[i]
		w.wins[i].ok += o.ok
		w.wins[i].fail += o.fail
		if o.hist != nil {
			if w.wins[i].hist == nil {
				w.wins[i].hist = NewHistogram()
			}
			w.wins[i].hist.Merge(o.hist)
		}
	}
	return nil
}
