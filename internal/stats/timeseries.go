package stats

import "repro/internal/sim"

// ThroughputSeries buckets completed operations into fixed virtual-time
// intervals, giving a throughput-over-time curve. The harness uses it to
// verify that a measurement window has reached steady state (the paper ran
// 600 s precisely to average out such transients).
type ThroughputSeries struct {
	interval sim.Time
	start    sim.Time
	counts   []int64
}

// NewThroughputSeries creates a series with the given bucket width.
func NewThroughputSeries(start sim.Time, interval sim.Time) *ThroughputSeries {
	if interval <= 0 {
		interval = 100 * sim.Millisecond
	}
	return &ThroughputSeries{interval: interval, start: start}
}

// Record adds one completed operation at virtual time now.
func (s *ThroughputSeries) Record(now sim.Time) {
	if now < s.start {
		return
	}
	idx := int((now - s.start) / s.interval)
	for len(s.counts) <= idx {
		s.counts = append(s.counts, 0)
	}
	s.counts[idx]++
}

// Buckets returns the per-interval throughput in operations per second.
func (s *ThroughputSeries) Buckets() []float64 {
	out := make([]float64, len(s.counts))
	sec := s.interval.Seconds()
	for i, c := range s.counts {
		out[i] = float64(c) / sec
	}
	return out
}

// Interval returns the bucket width.
func (s *ThroughputSeries) Interval() sim.Time { return s.interval }

// Stability returns the ratio of the last bucket's throughput to the mean
// of all complete buckets: ~1.0 indicates steady state, <1 a slowdown over
// the window (e.g. Redis swapping as inserts accumulate), >1 still ramping.
// It returns 1 when there is not enough data to judge.
func (s *ThroughputSeries) Stability() float64 {
	if len(s.counts) < 3 {
		return 1
	}
	complete := s.counts[:len(s.counts)-1] // last bucket may be partial
	var sum int64
	for _, c := range complete {
		sum += c
	}
	mean := float64(sum) / float64(len(complete))
	if mean == 0 {
		return 1
	}
	return float64(complete[len(complete)-1]) / mean
}
