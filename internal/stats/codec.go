package stats

import (
	"encoding/json"
	"fmt"

	"repro/internal/sim"
)

// JSON codecs for the statistics types a CellResult carries across process
// boundaries: the cell farm ships results over the wire and the persistent
// result cache stores them on disk, and in both cases the decoded value
// must be EXACT — every count, bound and quantile identical — so a figure
// assembled from remote or cached results renders byte-for-byte the same
// as one assembled in process. All fields are integers (sim.Time is an
// int64), so encoding/json round-trips them losslessly.

// histogramJSON is the wire form of a Histogram. Counts are a sparse,
// index-sorted list of [bucket, count] pairs: most of the 432 log buckets
// of a typical window are empty, and the sorted order keeps the encoding
// deterministic for content addressing.
type histogramJSON struct {
	N      int64      `json:"n"`
	Sum    sim.Time   `json:"sum"`
	Min    sim.Time   `json:"min"`
	Max    sim.Time   `json:"max"`
	Counts [][2]int64 `json:"counts,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (h *Histogram) MarshalJSON() ([]byte, error) {
	out := histogramJSON{N: h.n, Sum: h.sum, Min: h.min, Max: h.max}
	for i, c := range h.counts {
		if c != 0 {
			out.Counts = append(out.Counts, [2]int64{int64(i), c})
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler, rebuilding the exact bucket
// state. Out-of-range bucket indexes are rejected: a decoded histogram
// either reproduces the original exactly or errors, never silently skews.
func (h *Histogram) UnmarshalJSON(data []byte) error {
	var in histogramJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	fresh := NewHistogram()
	*h = *fresh
	h.n, h.sum, h.min, h.max = in.N, in.Sum, in.Min, in.Max
	for _, pair := range in.Counts {
		i, c := pair[0], pair[1]
		if i < 0 || i >= int64(len(h.counts)) {
			return fmt.Errorf("stats: histogram bucket %d out of range [0,%d)", i, len(h.counts))
		}
		h.counts[i] = c
	}
	return nil
}

// windowJSON is the wire form of one latency window.
type windowJSON struct {
	Ok   int64      `json:"ok"`
	Fail int64      `json:"fail,omitempty"`
	Hist *Histogram `json:"hist,omitempty"`
}

// windowedLatencyJSON is the wire form of a WindowedLatency.
type windowedLatencyJSON struct {
	Start    sim.Time     `json:"start"`
	Interval sim.Time     `json:"interval"`
	Windows  []windowJSON `json:"windows"`
}

// MarshalJSON implements json.Marshaler.
func (w *WindowedLatency) MarshalJSON() ([]byte, error) {
	out := windowedLatencyJSON{Start: w.start, Interval: w.interval}
	for _, win := range w.wins {
		out.Windows = append(out.Windows, windowJSON{Ok: win.ok, Fail: win.fail, Hist: win.hist})
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler. The decoded recorder is
// indistinguishable from the original: same origin, same window count,
// same per-window histograms, so a recovery-curve appendix rendered from
// it is byte-identical.
func (w *WindowedLatency) UnmarshalJSON(data []byte) error {
	var in windowedLatencyJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	if in.Interval <= 0 {
		return fmt.Errorf("stats: decoded window interval %d is not positive", in.Interval)
	}
	w.start = in.Start
	w.interval = in.Interval
	w.wins = nil
	for _, win := range in.Windows {
		w.wins = append(w.wins, latWindow{hist: win.Hist, ok: win.Ok, fail: win.Fail})
	}
	return nil
}

// Equal reports whether two recorders hold identical state (codec tests).
func (w *WindowedLatency) Equal(other *WindowedLatency) bool {
	if w.start != other.start || w.interval != other.interval || len(w.wins) != len(other.wins) {
		return false
	}
	for i := range w.wins {
		a, b := &w.wins[i], &other.wins[i]
		if a.ok != b.ok || a.fail != b.fail {
			return false
		}
		switch {
		case a.hist == nil && b.hist == nil:
		case a.hist == nil || b.hist == nil:
			return false
		case !a.hist.Equal(b.hist):
			return false
		}
	}
	return true
}

// Equal reports whether two histograms hold identical state.
func (h *Histogram) Equal(other *Histogram) bool {
	if h.n != other.n || h.sum != other.sum || h.min != other.min || h.max != other.max {
		return false
	}
	if len(h.counts) != len(other.counts) {
		return false
	}
	for i := range h.counts {
		if h.counts[i] != other.counts[i] {
			return false
		}
	}
	return true
}
