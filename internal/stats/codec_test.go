package stats

import (
	"encoding/json"
	"math/rand"
	"testing"

	"repro/internal/sim"
)

// TestHistogramJSONRoundTrip fills a histogram with a latency spread
// covering several decades and asserts the decoded copy is exactly equal —
// same counts, bounds, mean and quantiles.
func TestHistogramJSONRoundTrip(t *testing.T) {
	h := NewHistogram()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		h.Record(sim.Time(rng.Int63n(int64(2 * sim.Second))))
	}
	data, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var got Histogram
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if !h.Equal(&got) {
		t.Fatal("decoded histogram differs from original")
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		if a, b := h.Quantile(q), got.Quantile(q); a != b {
			t.Fatalf("quantile %g differs after round trip: %v vs %v", q, a, b)
		}
	}
	if h.Mean() != got.Mean() || h.Min() != got.Min() || h.Max() != got.Max() {
		t.Fatal("summary stats differ after round trip")
	}
}

// TestHistogramJSONRoundTripEmpty pins the empty histogram (min sentinel at
// MaxInt64) surviving the codec, so merging into a decoded histogram keeps
// working.
func TestHistogramJSONRoundTripEmpty(t *testing.T) {
	h := NewHistogram()
	data, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var got Histogram
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if !h.Equal(&got) {
		t.Fatal("decoded empty histogram differs")
	}
	got.Record(5 * sim.Millisecond)
	if got.Min() != 5*sim.Millisecond {
		t.Fatalf("min sentinel lost in round trip: Min()=%v", got.Min())
	}
}

// TestHistogramJSONRejectsBadBucket pins the self-verification: a record
// with a corrupted bucket index errors instead of skewing quantiles.
func TestHistogramJSONRejectsBadBucket(t *testing.T) {
	var got Histogram
	if err := json.Unmarshal([]byte(`{"n":1,"sum":5,"min":5,"max":5,"counts":[[100000,1]]}`), &got); err == nil {
		t.Fatal("out-of-range bucket index accepted")
	}
}

// TestWindowedLatencyJSONRoundTrip builds the kind of recorder a fault cell
// produces — some windows full, one failure-only, trailing windows empty —
// and asserts exact equality plus identical derived recovery-curve values
// after a round trip, including through a Merge (the repetition-averaging
// path runs Merge on decoded values).
func TestWindowedLatencyJSONRoundTrip(t *testing.T) {
	w := NewWindowedLatency(100*sim.Millisecond, 50*sim.Millisecond)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		at := 100*sim.Millisecond + sim.Time(rng.Int63n(int64(400*sim.Millisecond)))
		w.Record(at, sim.Time(rng.Int63n(int64(80*sim.Millisecond))))
	}
	// A fully failed window (the kill) and an untouched trailing window.
	w.RecordFailure(520 * sim.Millisecond)
	w.RecordFailure(530 * sim.Millisecond)
	w.idx(620 * sim.Millisecond)

	data, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	var got WindowedLatency
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if !w.Equal(&got) {
		t.Fatal("decoded windowed latency differs from original")
	}
	if got.Windows() != w.Windows() {
		t.Fatalf("window count %d vs %d", got.Windows(), w.Windows())
	}
	for i := 0; i < w.Windows(); i++ {
		if w.Ok(i) != got.Ok(i) || w.Failed(i) != got.Failed(i) ||
			w.Availability(i) != got.Availability(i) ||
			w.Throughput(i) != got.Throughput(i) ||
			w.Quantile(i, 0.99) != got.Quantile(i, 0.99) ||
			w.Quantile(i, 0.999) != got.Quantile(i, 0.999) {
			t.Fatalf("window %d derived values differ after round trip", i)
		}
	}

	// Merging a second decoded repetition must behave exactly like merging
	// the live original.
	var gotCopy WindowedLatency
	if err := json.Unmarshal(data, &gotCopy); err != nil {
		t.Fatal(err)
	}
	if err := got.Merge(&gotCopy); err != nil {
		t.Fatal(err)
	}
	if got.Ok(0) != 2*w.Ok(0) {
		t.Fatalf("merge after decode: ok=%d want %d", got.Ok(0), 2*w.Ok(0))
	}
}

// TestWindowedLatencyJSONRejectsBadInterval pins validation of the one
// field every index computation divides by.
func TestWindowedLatencyJSONRejectsBadInterval(t *testing.T) {
	var got WindowedLatency
	if err := json.Unmarshal([]byte(`{"start":0,"interval":0,"windows":[]}`), &got); err == nil {
		t.Fatal("zero interval accepted")
	}
}
