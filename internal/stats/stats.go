// Package stats provides the latency/throughput accounting used by the
// benchmark framework: log-bucketed histograms (HdrHistogram-style) and
// per-operation-type summaries.
package stats

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/sim"
)

// bucketsPerDecade controls histogram resolution: values within a decade
// are split geometrically into this many buckets (~5% relative error).
const bucketsPerDecade = 48

// Histogram records durations in logarithmic buckets from 1µs to ~1000s.
type Histogram struct {
	counts []int64
	n      int64
	sum    sim.Time
	min    sim.Time
	max    sim.Time
}

const histBuckets = 9 * bucketsPerDecade // 1e3 ns .. 1e12 ns

// NewHistogram creates an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make([]int64, histBuckets), min: math.MaxInt64}
}

func bucketOf(d sim.Time) int {
	if d < sim.Microsecond {
		return 0
	}
	// log10(d/1µs) * bucketsPerDecade
	b := int(math.Log10(float64(d)/float64(sim.Microsecond)) * bucketsPerDecade)
	if b < 0 {
		b = 0
	}
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// bucketValue returns a representative duration for bucket i (geometric
// midpoint).
func bucketValue(i int) sim.Time {
	exp := (float64(i) + 0.5) / bucketsPerDecade
	return sim.Time(float64(sim.Microsecond) * math.Pow(10, exp))
}

// Record adds one observation.
func (h *Histogram) Record(d sim.Time) {
	h.counts[bucketOf(d)]++
	h.n++
	h.sum += d
	if d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

// N returns the observation count.
func (h *Histogram) N() int64 { return h.n }

// Mean returns the exact arithmetic mean.
func (h *Histogram) Mean() sim.Time {
	if h.n == 0 {
		return 0
	}
	return h.sum / sim.Time(h.n)
}

// Min returns the smallest observation (0 if empty).
func (h *Histogram) Min() sim.Time {
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation.
func (h *Histogram) Max() sim.Time { return h.max }

// Quantile returns the approximate q-quantile (0 < q <= 1).
func (h *Histogram) Quantile(q float64) sim.Time {
	if h.n == 0 {
		return 0
	}
	target := int64(q * float64(h.n))
	if target >= h.n {
		target = h.n - 1
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum > target {
			v := bucketValue(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Merge adds other's observations into h.
func (h *Histogram) Merge(other *Histogram) {
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.n += other.n
	h.sum += other.sum
	if other.n > 0 {
		if other.min < h.min {
			h.min = other.min
		}
		if other.max > h.max {
			h.max = other.max
		}
	}
}

// OpKind labels the operation types of the benchmark.
type OpKind int

// Operation kinds.
const (
	OpRead OpKind = iota
	OpInsert
	OpUpdate
	OpScan
	numOps
)

// String returns the kind's name.
func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "READ"
	case OpInsert:
		return "INSERT"
	case OpUpdate:
		return "UPDATE"
	case OpScan:
		return "SCAN"
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// Collector aggregates per-kind latencies and overall throughput over a
// measurement window.
type Collector struct {
	hists    [numOps]*Histogram
	errors   int64
	timeouts int64
	start    sim.Time
	end      sim.Time
	started  bool
	totalOps int64
}

// NewCollector creates an empty collector.
func NewCollector() *Collector {
	c := &Collector{}
	for i := range c.hists {
		c.hists[i] = NewHistogram()
	}
	return c
}

// Begin marks the start of the measurement window.
func (c *Collector) Begin(now sim.Time) { c.start = now; c.started = true }

// Finish marks the end of the measurement window.
func (c *Collector) Finish(now sim.Time) { c.end = now }

// Active reports whether the window is open.
func (c *Collector) Active() bool { return c.started && c.end == 0 }

// Record adds a completed operation.
func (c *Collector) Record(kind OpKind, latency sim.Time) {
	if !c.Active() {
		return
	}
	c.hists[kind].Record(latency)
	c.totalOps++
}

// RecordError counts a failed operation.
func (c *Collector) RecordError() {
	if !c.Active() {
		return
	}
	c.errors++
}

// RecordTimeout counts an operation that completed but blew its SLO
// deadline; it is excluded from the success histograms and throughput.
func (c *Collector) RecordTimeout() {
	if !c.Active() {
		return
	}
	c.timeouts++
}

// Ops returns the number of successful operations recorded.
func (c *Collector) Ops() int64 { return c.totalOps }

// Errors returns the number of failed operations.
func (c *Collector) Errors() int64 { return c.errors }

// Timeouts returns the number of SLO-violating operations.
func (c *Collector) Timeouts() int64 { return c.timeouts }

// Window returns the measurement duration.
func (c *Collector) Window() sim.Time {
	if c.end > c.start {
		return c.end - c.start
	}
	return 0
}

// Throughput returns successful operations per second over the window.
func (c *Collector) Throughput() float64 {
	w := c.Window()
	if w == 0 {
		return 0
	}
	return float64(c.totalOps) / w.Seconds()
}

// Hist returns the histogram for one operation kind.
func (c *Collector) Hist(kind OpKind) *Histogram { return c.hists[kind] }

// MeanLatency returns the mean latency for one kind (0 if none recorded).
func (c *Collector) MeanLatency(kind OpKind) sim.Time { return c.hists[kind].Mean() }

// Summary is a printable digest of a run.
type Summary struct {
	Throughput float64
	Ops        int64
	Errors     int64
	Timeouts   int64
	Read       LatencySummary
	Insert     LatencySummary
	Update     LatencySummary
	Scan       LatencySummary
}

// LatencySummary digests one operation kind.
type LatencySummary struct {
	N    int64
	Mean sim.Time
	P50  sim.Time
	P95  sim.Time
	P99  sim.Time
	Max  sim.Time
}

func summarize(h *Histogram) LatencySummary {
	return LatencySummary{
		N:    h.N(),
		Mean: h.Mean(),
		P50:  h.Quantile(0.50),
		P95:  h.Quantile(0.95),
		P99:  h.Quantile(0.99),
		Max:  h.Max(),
	}
}

// Summarize digests the collector.
func (c *Collector) Summarize() Summary {
	return Summary{
		Throughput: c.Throughput(),
		Ops:        c.totalOps,
		Errors:     c.errors,
		Timeouts:   c.timeouts,
		Read:       summarize(c.hists[OpRead]),
		Insert:     summarize(c.hists[OpInsert]),
		Update:     summarize(c.hists[OpUpdate]),
		Scan:       summarize(c.hists[OpScan]),
	}
}

// Mean computes the arithmetic mean of a float slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Median computes the median of a float slice.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	m := len(c) / 2
	if len(c)%2 == 1 {
		return c[m]
	}
	return (c[m-1] + c[m]) / 2
}
