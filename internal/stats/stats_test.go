package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestHistogramMeanExact(t *testing.T) {
	h := NewHistogram()
	h.Record(1 * sim.Millisecond)
	h.Record(3 * sim.Millisecond)
	if got := h.Mean(); got != 2*sim.Millisecond {
		t.Fatalf("Mean = %v, want 2ms", got)
	}
	if h.N() != 2 {
		t.Fatalf("N = %d, want 2", h.N())
	}
}

func TestHistogramMinMax(t *testing.T) {
	h := NewHistogram()
	h.Record(5 * sim.Microsecond)
	h.Record(7 * sim.Second)
	if h.Min() != 5*sim.Microsecond || h.Max() != 7*sim.Second {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
}

func TestQuantileApproximation(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 1000; i++ {
		h.Record(sim.Time(i) * sim.Millisecond)
	}
	p50 := h.Quantile(0.50)
	// True median is 500ms; allow the histogram's ~5% relative error.
	if p50 < 450*sim.Millisecond || p50 > 550*sim.Millisecond {
		t.Fatalf("P50 = %v, want ~500ms", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 900*sim.Millisecond || p99 > 1100*sim.Millisecond {
		t.Fatalf("P99 = %v, want ~990ms", p99)
	}
}

func TestQuantileEmptyAndSingle(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty quantile should be 0")
	}
	h.Record(10 * sim.Millisecond)
	got := h.Quantile(0.5)
	if got != 10*sim.Millisecond {
		t.Fatalf("single-value P50 = %v, want clamped to 10ms", got)
	}
}

func TestMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	a.Record(1 * sim.Millisecond)
	b.Record(3 * sim.Millisecond)
	a.Merge(b)
	if a.N() != 2 || a.Mean() != 2*sim.Millisecond {
		t.Fatalf("after merge N=%d mean=%v", a.N(), a.Mean())
	}
	if a.Max() != 3*sim.Millisecond {
		t.Fatalf("merged max = %v", a.Max())
	}
}

func TestCollectorWindowGating(t *testing.T) {
	c := NewCollector()
	c.Record(OpRead, sim.Millisecond) // before Begin: dropped
	c.Begin(10 * sim.Second)
	c.Record(OpRead, sim.Millisecond)
	c.Record(OpInsert, 2*sim.Millisecond)
	c.RecordError()
	c.Finish(12 * sim.Second)
	c.Record(OpRead, sim.Millisecond) // after Finish: dropped
	if c.Ops() != 2 {
		t.Fatalf("Ops = %d, want 2", c.Ops())
	}
	if c.Errors() != 1 {
		t.Fatalf("Errors = %d, want 1", c.Errors())
	}
	if got := c.Throughput(); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("Throughput = %f, want 1 op/s over 2s window", got)
	}
}

func TestCollectorSummarize(t *testing.T) {
	c := NewCollector()
	c.Begin(0)
	for i := 0; i < 100; i++ {
		c.Record(OpRead, 5*sim.Millisecond)
		c.Record(OpScan, 20*sim.Millisecond)
	}
	c.Finish(1 * sim.Second)
	s := c.Summarize()
	if s.Read.N != 100 || s.Scan.N != 100 {
		t.Fatalf("summary counts: %+v", s)
	}
	if s.Read.Mean != 5*sim.Millisecond {
		t.Fatalf("read mean = %v", s.Read.Mean)
	}
	if s.Throughput != 200 {
		t.Fatalf("throughput = %f, want 200", s.Throughput)
	}
}

func TestOpKindString(t *testing.T) {
	if OpRead.String() != "READ" || OpScan.String() != "SCAN" {
		t.Fatal("OpKind names wrong")
	}
}

func TestMeanMedianHelpers(t *testing.T) {
	if Mean(nil) != 0 || Median(nil) != 0 {
		t.Fatal("empty helpers should be 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean = %f", got)
	}
	if got := Median([]float64{5, 1, 3}); got != 3 {
		t.Fatalf("Median odd = %f", got)
	}
	if got := Median([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Fatalf("Median even = %f", got)
	}
}

// Property: quantiles are monotonic in q and bounded by min/max.
func TestPropertyQuantileMonotonic(t *testing.T) {
	f := func(vals []uint32) bool {
		if len(vals) == 0 {
			return true
		}
		h := NewHistogram()
		for _, v := range vals {
			h.Record(sim.Time(v%1e9) + sim.Microsecond)
		}
		prev := sim.Time(0)
		for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0} {
			cur := h.Quantile(q)
			if cur < prev || cur < h.Min() || cur > h.Max() {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: histogram quantile is within ~6% of the true quantile for
// uniform data.
func TestPropertyQuantileAccuracy(t *testing.T) {
	h := NewHistogram()
	const n = 10000
	for i := 1; i <= n; i++ {
		h.Record(sim.Time(i) * sim.Microsecond)
	}
	for _, q := range []float64{0.1, 0.5, 0.9} {
		truth := float64(q) * n
		got := float64(h.Quantile(q)) / float64(sim.Microsecond)
		if math.Abs(got-truth)/truth > 0.06 {
			t.Fatalf("q=%f: got %f, truth %f", q, got, truth)
		}
	}
}

func TestThroughputSeriesBuckets(t *testing.T) {
	s := NewThroughputSeries(0, 100*sim.Millisecond)
	for i := 0; i < 10; i++ {
		s.Record(sim.Time(i) * 30 * sim.Millisecond) // 0..270ms
	}
	b := s.Buckets()
	if len(b) != 3 {
		t.Fatalf("buckets = %d, want 3", len(b))
	}
	// 4 ops in [0,100), 3 in [100,200), 3 in [200,300) at 100ms buckets.
	if b[0] != 40 || b[1] != 30 || b[2] != 30 {
		t.Fatalf("bucket rates = %v, want [40 30 30]", b)
	}
}

func TestThroughputSeriesIgnoresBeforeStart(t *testing.T) {
	s := NewThroughputSeries(sim.Second, 100*sim.Millisecond)
	s.Record(500 * sim.Millisecond) // before window
	s.Record(sim.Second + 50*sim.Millisecond)
	if got := s.Buckets(); len(got) != 1 || got[0] != 10 {
		t.Fatalf("buckets = %v, want one bucket of 10/s", got)
	}
}

func TestStabilitySteadyState(t *testing.T) {
	s := NewThroughputSeries(0, 100*sim.Millisecond)
	for ms := 0; ms < 1000; ms += 10 { // perfectly uniform
		s.Record(sim.Time(ms) * sim.Millisecond)
	}
	if st := s.Stability(); st < 0.9 || st > 1.1 {
		t.Fatalf("stability = %f for uniform load, want ~1", st)
	}
}

func TestStabilityDetectsCollapse(t *testing.T) {
	s := NewThroughputSeries(0, 100*sim.Millisecond)
	for ms := 0; ms < 500; ms += 2 { // fast first half
		s.Record(sim.Time(ms) * sim.Millisecond)
	}
	for ms := 500; ms < 1000; ms += 50 { // collapsing second half
		s.Record(sim.Time(ms) * sim.Millisecond)
	}
	if st := s.Stability(); st > 0.5 {
		t.Fatalf("stability = %f for collapsing load, want well below 1", st)
	}
}

func TestStabilityShortSeries(t *testing.T) {
	s := NewThroughputSeries(0, 100*sim.Millisecond)
	s.Record(10 * sim.Millisecond)
	if s.Stability() != 1 {
		t.Fatal("short series should report neutral stability")
	}
}

func BenchmarkHistogramRecord(b *testing.B) {
	h := NewHistogram()
	for i := 0; i < b.N; i++ {
		h.Record(sim.Time(i%1000000) * sim.Microsecond)
	}
}

func BenchmarkHistogramQuantile(b *testing.B) {
	h := NewHistogram()
	for i := 0; i < 100000; i++ {
		h.Record(sim.Time(i) * sim.Microsecond)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Quantile(0.99)
	}
}
