package stats

import (
	"testing"

	"repro/internal/sim"
)

func TestWindowedExactBoundaries(t *testing.T) {
	w := NewWindowedLatency(100, 10)
	// Windows are half-open: [100,110) is window 0, [110,120) window 1.
	w.Record(100, sim.Millisecond) // first instant of window 0
	w.Record(109, sim.Millisecond) // last instant of window 0
	w.Record(110, sim.Millisecond) // first instant of window 1
	w.Record(119, sim.Millisecond)
	w.Record(120, sim.Millisecond) // window 2
	if got := w.Windows(); got != 3 {
		t.Fatalf("Windows() = %d, want 3", got)
	}
	for i, want := range []int64{2, 2, 1} {
		if got := w.Ok(i); got != want {
			t.Errorf("Ok(%d) = %d, want %d", i, got, want)
		}
	}
	if got := w.WindowStart(2); got != 120 {
		t.Errorf("WindowStart(2) = %d, want 120", got)
	}
}

func TestWindowedDropsPreStartObservations(t *testing.T) {
	w := NewWindowedLatency(100, 10)
	w.Record(99, sim.Millisecond)
	w.RecordFailure(50)
	if got := w.Windows(); got != 0 {
		t.Fatalf("pre-start observations created %d windows, want 0", got)
	}
}

func TestWindowedEmptyWindows(t *testing.T) {
	w := NewWindowedLatency(0, 10)
	w.Record(5, 2*sim.Millisecond)
	w.Record(35, 4*sim.Millisecond) // windows 1 and 2 stay empty
	if got := w.Windows(); got != 4 {
		t.Fatalf("Windows() = %d, want 4", got)
	}
	for _, i := range []int{1, 2} {
		if got := w.Ok(i); got != 0 {
			t.Errorf("Ok(%d) = %d, want 0", i, got)
		}
		if got := w.Quantile(i, 0.99); got != 0 {
			t.Errorf("Quantile(%d) = %v, want 0 for empty window", i, got)
		}
		if got := w.Availability(i); got != 1 {
			t.Errorf("Availability(%d) = %g, want 1 for empty window", i, got)
		}
	}
}

func TestWindowedAvailability(t *testing.T) {
	w := NewWindowedLatency(0, 10)
	w.Record(1, sim.Millisecond)
	w.Record(2, sim.Millisecond)
	w.Record(3, sim.Millisecond)
	w.RecordFailure(4)
	if got, want := w.Availability(0), 0.75; got != want {
		t.Errorf("Availability = %g, want %g", got, want)
	}
	w.RecordFailure(11)
	if got := w.Availability(1); got != 0 {
		t.Errorf("all-failed window availability = %g, want 0", got)
	}
}

func TestWindowedQuantiles(t *testing.T) {
	w := NewWindowedLatency(0, 1000)
	for i := 0; i < 99; i++ {
		w.Record(sim.Time(i), sim.Millisecond)
	}
	w.Record(99, 100*sim.Millisecond)
	p50 := w.Quantile(0, 0.50)
	p999 := w.Quantile(0, 0.999)
	if p50 > 2*sim.Millisecond {
		t.Errorf("p50 = %v, want ~1ms", p50)
	}
	if p999 < 90*sim.Millisecond {
		t.Errorf("p999 = %v, want ~100ms (the outlier)", p999)
	}
}

func TestWindowedMerge(t *testing.T) {
	a := NewWindowedLatency(0, 10)
	b := NewWindowedLatency(0, 10)
	a.Record(5, sim.Millisecond)
	a.RecordFailure(15)
	b.Record(5, 3*sim.Millisecond)
	b.Record(25, sim.Millisecond) // b has a third window a lacks
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if got := a.Windows(); got != 3 {
		t.Fatalf("merged Windows() = %d, want 3", got)
	}
	if got := a.Ok(0); got != 2 {
		t.Errorf("merged Ok(0) = %d, want 2", got)
	}
	if got := a.Failed(1); got != 1 {
		t.Errorf("merged Failed(1) = %d, want 1", got)
	}
	if got := a.Ok(2); got != 1 {
		t.Errorf("merged Ok(2) = %d, want 1", got)
	}
	if got := a.Quantile(2, 0.5); got == 0 {
		t.Error("merged window 2 lost its histogram")
	}
}

func TestWindowedMergeMisaligned(t *testing.T) {
	a := NewWindowedLatency(0, 10)
	b := NewWindowedLatency(5, 10)
	if err := a.Merge(b); err == nil {
		t.Fatal("merge of misaligned windows succeeded, want error")
	}
	c := NewWindowedLatency(0, 20)
	if err := a.Merge(c); err == nil {
		t.Fatal("merge of different intervals succeeded, want error")
	}
}

func TestCollectorTimeouts(t *testing.T) {
	c := NewCollector()
	c.RecordTimeout() // before Begin: dropped
	c.Begin(0)
	c.Record(OpRead, sim.Millisecond)
	c.RecordTimeout()
	c.RecordTimeout()
	c.Finish(sim.Second)
	c.RecordTimeout() // after Finish: dropped
	if got := c.Timeouts(); got != 2 {
		t.Fatalf("Timeouts() = %d, want 2", got)
	}
	if got := c.Summarize().Timeouts; got != 2 {
		t.Fatalf("Summary.Timeouts = %d, want 2", got)
	}
	if got := c.Ops(); got != 1 {
		t.Fatalf("Ops() = %d, want 1 (timeouts excluded)", got)
	}
}
