package sim

import "testing"

// TestKillParkedProc kills a process idling in Park (the WAL-flusher shape)
// and checks it unwinds promptly without deadlocking the engine.
func TestKillParkedProc(t *testing.T) {
	e := NewEngine(1)
	p := e.Go("bg", func(p *Proc) {
		p.Park()
		t.Error("parked proc ran past its park after kill")
	})
	e.Schedule(10, func() { p.Kill() })
	e.Run(0)
	if !p.Done() {
		t.Fatal("killed proc not done")
	}
	if got := e.Procs(); got != 0 {
		t.Fatalf("Procs() = %d, want 0", got)
	}
	if e.Now() != 10 {
		t.Fatalf("unwind at t=%d, want 10", e.Now())
	}
}

// TestKillSleepingProc kills a process mid-Sleep: the already-scheduled
// timer must double as the unwind resume (no second wake, no deadlock).
func TestKillSleepingProc(t *testing.T) {
	e := NewEngine(1)
	var reached bool
	p := e.Go("sleeper", func(p *Proc) {
		p.Sleep(100)
		reached = true
	})
	e.Schedule(40, func() { p.Kill() })
	e.Run(0)
	if reached {
		t.Error("sleeper ran past its sleep after kill")
	}
	if !p.Done() {
		t.Fatal("killed sleeper not done")
	}
	// The unwind rides the sleep timer.
	if e.Now() != 100 {
		t.Fatalf("unwind at t=%d, want 100", e.Now())
	}
}

// TestWakeThenKillSameInstant schedules a Wake and a Kill for the same
// parked process in the same event batch: exactly one resume must be
// delivered and the process must unwind cleanly.
func TestWakeThenKillSameInstant(t *testing.T) {
	e := NewEngine(1)
	var woke bool
	p := e.Go("bg", func(p *Proc) {
		p.Park()
		woke = true
		p.Park()
		t.Error("proc survived kill")
	})
	e.Schedule(10, func() { p.Wake() })
	e.Schedule(10, func() { p.Kill() })
	e.Run(0)
	if woke {
		t.Error("proc observed the wake despite a same-instant kill")
	}
	if !p.Done() {
		t.Fatal("proc not done")
	}
}

// TestKillThenLateWake kills a parked process and then delivers a wake that
// was scheduled before the kill landed: the stale wake must be dropped, not
// sent to a dead goroutine.
func TestKillThenLateWake(t *testing.T) {
	e := NewEngine(1)
	p := e.Go("bg", func(p *Proc) { p.Park() })
	e.Schedule(5, func() { p.Kill() })
	e.Schedule(20, func() { p.Wake() }) // stale owner wake after death
	e.Run(0)
	if !p.Done() {
		t.Fatal("proc not done")
	}
	if e.Now() != 20 {
		t.Fatalf("run ended at t=%d, want 20 (stale wake consumed)", e.Now())
	}
}

// TestKillReleasesHeldResource kills a process mid-Use: the deferred
// release must return the unit so later acquirers are not starved.
func TestKillReleasesHeldResource(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "disk", 1)
	victim := e.Go("holder", func(p *Proc) {
		p.Use(r, 1000)
		t.Error("holder survived kill")
	})
	e.Schedule(10, func() { victim.Kill() })
	var acquiredAt Time
	e.GoAt(20, "successor", func(p *Proc) {
		r.Acquire(p)
		acquiredAt = p.Now()
		r.Release()
	})
	e.Run(0)
	if r.InUse() != 0 {
		t.Fatalf("resource leaked: inUse=%d", r.InUse())
	}
	// The unwind rides the Use sleep timer (t=1000); the successor gets the
	// unit then, not at t=20.
	if acquiredAt != 1000 {
		t.Fatalf("successor acquired at t=%d, want 1000", acquiredAt)
	}
}

// TestKilledQueuedWaiterCompletesAcquisition kills a process while it waits
// in a resource queue: it must still be granted the unit (the grant is
// pre-accounted), then unwind at its next cancellation point, releasing the
// unit via Use's defer — no leak, no double-resume.
func TestKilledQueuedWaiterCompletesAcquisition(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "disk", 1)
	e.Go("holder", func(p *Proc) { p.Use(r, 100) })
	var waiter *Proc
	waiter = e.GoAt(1, "waiter", func(p *Proc) {
		p.Use(r, 100)
		t.Error("waiter survived kill")
	})
	e.Schedule(50, func() { waiter.Kill() })
	e.Run(0)
	if !waiter.Done() {
		t.Fatal("waiter not done")
	}
	if r.InUse() != 0 {
		t.Fatalf("resource leaked: inUse=%d", r.InUse())
	}
	if r.QueueLen() != 0 {
		t.Fatalf("queue not drained: len=%d", r.QueueLen())
	}
}

// TestKillBeforeStart kills a process that has not begun executing: the
// body must never run.
func TestKillBeforeStart(t *testing.T) {
	e := NewEngine(1)
	var ran bool
	p := e.GoAt(100, "late", func(p *Proc) { ran = true })
	e.Schedule(10, func() { p.Kill() })
	e.Run(0)
	if ran {
		t.Error("killed-before-start proc ran")
	}
	if !p.Done() {
		t.Fatal("proc not accounted as done")
	}
	if e.Procs() != 0 {
		t.Fatalf("Procs() = %d, want 0", e.Procs())
	}
}

// TestKillIdempotent double-kills and kills a finished proc; both must be
// no-ops.
func TestKillIdempotent(t *testing.T) {
	e := NewEngine(1)
	p := e.Go("bg", func(p *Proc) { p.Park() })
	e.Schedule(5, func() { p.Kill(); p.Kill() })
	e.Run(0)
	p.Kill() // on a finished proc
	if e.Procs() != 0 {
		t.Fatalf("Procs() = %d, want 0", e.Procs())
	}
}

// TestKilledVisibleToCooperativeLoop checks Killed() so process loops can
// exit between cancellation points.
func TestKilledVisibleToCooperativeLoop(t *testing.T) {
	e := NewEngine(1)
	var sawKill bool
	p := e.Go("loop", func(p *Proc) {
		for !p.Killed() {
			p.Sleep(10)
		}
		sawKill = true // unreachable: Sleep unwinds first
	})
	e.Schedule(35, func() { p.Kill() })
	e.Run(0)
	if sawKill {
		t.Error("loop observed kill without unwinding (Sleep should unwind)")
	}
	if !p.Done() {
		t.Fatal("loop proc not done")
	}
}
