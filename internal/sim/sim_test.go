package sim

import (
	"testing"
	"testing/quick"
)

func TestClockAdvancesToEvent(t *testing.T) {
	e := NewEngine(1)
	var fired Time
	e.Schedule(5*Millisecond, func() { fired = e.Now() })
	e.Run(0)
	if fired != 5*Millisecond {
		t.Fatalf("event fired at %v, want 5ms", fired)
	}
	if e.Now() != 5*Millisecond {
		t.Fatalf("clock at %v, want 5ms", e.Now())
	}
}

func TestEventOrdering(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.Schedule(3*Millisecond, func() { order = append(order, 3) })
	e.Schedule(1*Millisecond, func() { order = append(order, 1) })
	e.Schedule(2*Millisecond, func() { order = append(order, 2) })
	e.Run(0)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events ran in order %v, want [1 2 3]", order)
	}
}

func TestSameTimeEventsFIFOBySchedulingOrder(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(1*Millisecond, func() { order = append(order, i) })
	}
	e.Run(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want %d (ties must run in scheduling order)", i, v, i)
		}
	}
}

func TestRunUntilStopsClock(t *testing.T) {
	e := NewEngine(1)
	ran := false
	e.Schedule(10*Second, func() { ran = true })
	end := e.Run(1 * Second)
	if ran {
		t.Fatal("event beyond horizon ran")
	}
	if end != 1*Second {
		t.Fatalf("Run returned %v, want 1s", end)
	}
	// Resuming runs the deferred event.
	e.Run(0)
	if !ran {
		t.Fatal("event did not run after resume")
	}
}

func TestProcSleepSequence(t *testing.T) {
	e := NewEngine(1)
	var marks []Time
	e.Go("sleeper", func(p *Proc) {
		p.Sleep(2 * Millisecond)
		marks = append(marks, p.Now())
		p.Sleep(3 * Millisecond)
		marks = append(marks, p.Now())
	})
	e.Run(0)
	if len(marks) != 2 || marks[0] != 2*Millisecond || marks[1] != 5*Millisecond {
		t.Fatalf("marks = %v, want [2ms 5ms]", marks)
	}
	if e.Procs() != 0 {
		t.Fatalf("%d live procs after run, want 0", e.Procs())
	}
}

func TestProcsInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		e := NewEngine(7)
		var log []string
		for _, name := range []string{"a", "b", "c"} {
			name := name
			e.Go(name, func(p *Proc) {
				for i := 0; i < 3; i++ {
					p.Sleep(Time(1+len(name)) * Millisecond) // same for all; ties by start order
					log = append(log, name)
				}
			})
		}
		e.Run(0)
		return log
	}
	first := run()
	second := run()
	if len(first) != 9 {
		t.Fatalf("got %d log entries, want 9", len(first))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("runs diverged at %d: %v vs %v", i, first, second)
		}
	}
}

func TestParkWake(t *testing.T) {
	e := NewEngine(1)
	var woke Time
	var waiter *Proc
	waiter = e.Go("waiter", func(p *Proc) {
		p.Park()
		woke = p.Now()
	})
	e.Go("waker", func(p *Proc) {
		p.Sleep(4 * Millisecond)
		waiter.Wake()
	})
	e.Run(0)
	if woke != 4*Millisecond {
		t.Fatalf("waiter woke at %v, want 4ms", woke)
	}
}

func TestResourceSerializesWork(t *testing.T) {
	e := NewEngine(1)
	disk := NewResource(e, "disk", 1)
	var done []Time
	for i := 0; i < 3; i++ {
		e.Go("w", func(p *Proc) {
			p.Use(disk, 10*Millisecond)
			done = append(done, p.Now())
		})
	}
	e.Run(0)
	want := []Time{10 * Millisecond, 20 * Millisecond, 30 * Millisecond}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("done = %v, want %v", done, want)
		}
	}
}

func TestResourceParallelismMatchesCapacity(t *testing.T) {
	e := NewEngine(1)
	cpu := NewResource(e, "cpu", 4)
	var last Time
	for i := 0; i < 8; i++ {
		e.Go("w", func(p *Proc) {
			p.Use(cpu, 10*Millisecond)
			last = p.Now()
		})
	}
	e.Run(0)
	if last != 20*Millisecond {
		t.Fatalf("8 jobs on 4 cores finished at %v, want 20ms", last)
	}
	if u := cpu.Utilization(); u < 0.99 || u > 1.01 {
		t.Fatalf("utilization = %f, want ~1.0", u)
	}
}

func TestResourceFIFO(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "r", 1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.GoAt(Time(i)*Microsecond, "w", func(p *Proc) {
			r.Acquire(p)
			p.Sleep(1 * Millisecond)
			r.Release()
			order = append(order, i)
		})
	}
	e.Run(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("completion order %v, want FIFO", order)
		}
	}
}

func TestTryAcquire(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "r", 1)
	if !r.TryAcquire() {
		t.Fatal("TryAcquire on idle resource failed")
	}
	if r.TryAcquire() {
		t.Fatal("TryAcquire on busy resource succeeded")
	}
	r.Release()
	if !r.TryAcquire() {
		t.Fatal("TryAcquire after release failed")
	}
}

func TestUtilizationHalfBusy(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "r", 1)
	e.Go("w", func(p *Proc) {
		p.Use(r, 5*Millisecond)
		p.Sleep(5 * Millisecond)
	})
	e.Run(0)
	if u := r.Utilization(); u < 0.49 || u > 0.51 {
		t.Fatalf("utilization = %f, want 0.5", u)
	}
}

func TestAvgWaitAccounting(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "r", 1)
	for i := 0; i < 2; i++ {
		e.Go("w", func(p *Proc) { p.Use(r, 10*Millisecond) })
	}
	e.Run(0)
	// Second proc waits 10ms; average over one waiter is 10ms.
	if w := r.AvgWait(); w != 10*Millisecond {
		t.Fatalf("AvgWait = %v, want 10ms", w)
	}
	if r.MaxQueueLen() != 1 {
		t.Fatalf("MaxQueueLen = %d, want 1", r.MaxQueueLen())
	}
}

func TestDeterministicRand(t *testing.T) {
	a, b := NewEngine(42), NewEngine(42)
	for i := 0; i < 100; i++ {
		if a.Rand().Int63() != b.Rand().Int63() {
			t.Fatal("same-seed engines produced different random streams")
		}
	}
}

func TestTimeString(t *testing.T) {
	cases := map[Time]string{
		500 * Nanosecond:       "500ns",
		250 * Microsecond:      "250.00µs",
		5*Millisecond + 500000: "5.50ms",
		2 * Second:             "2.000s",
	}
	for in, want := range cases {
		if got := in.String(); got != want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(in), got, want)
		}
	}
}

// Property: for any set of delays, events fire in nondecreasing time order
// and the clock ends at the maximum delay.
func TestPropertyEventOrder(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		e := NewEngine(1)
		var prev Time = -1
		ok := true
		var max Time
		for _, d := range delays {
			d := Time(d) * Microsecond
			if d > max {
				max = d
			}
			e.Schedule(d, func() {
				if e.Now() < prev {
					ok = false
				}
				prev = e.Now()
			})
		}
		end := e.Run(0)
		return ok && end == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: N jobs of service time s on a capacity-c resource complete in
// ceil(N/c)*s (deterministic batch schedule).
func TestPropertyResourceMakespan(t *testing.T) {
	f := func(n8, c8 uint8) bool {
		n := int(n8%32) + 1
		c := int(c8%8) + 1
		e := NewEngine(1)
		r := NewResource(e, "r", c)
		var last Time
		for i := 0; i < n; i++ {
			e.Go("w", func(p *Proc) {
				p.Use(r, Millisecond)
				if p.Now() > last {
					last = p.Now()
				}
			})
		}
		e.Run(0)
		batches := (n + c - 1) / c
		return last == Time(batches)*Millisecond
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Events scheduled from inside a running event at the current timestamp
// must run after already-queued same-time events, in scheduling order —
// the seq tie-break must survive heap restructuring.
func TestNestedSameTimeSchedulingFIFO(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.Schedule(Millisecond, func() {
		order = append(order, 0)
		e.Schedule(0, func() { order = append(order, 3) })
		e.Schedule(0, func() { order = append(order, 4) })
	})
	e.Schedule(Millisecond, func() { order = append(order, 1) })
	e.Schedule(Millisecond, func() { order = append(order, 2) })
	e.Run(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want [0 1 2 3 4]", order)
		}
	}
}

func BenchmarkProcSleepSwitch(b *testing.B) {
	e := NewEngine(1)
	e.Go("w", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(Microsecond)
		}
	})
	b.ResetTimer()
	e.Run(0)
}

func BenchmarkResourceUse(b *testing.B) {
	e := NewEngine(1)
	r := NewResource(e, "r", 2)
	e.Go("w", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Use(r, Microsecond)
		}
	})
	b.ResetTimer()
	e.Run(0)
}

func TestStopHaltsRun(t *testing.T) {
	e := NewEngine(1)
	ran := 0
	e.Schedule(1*Millisecond, func() { ran++; e.Stop() })
	e.Schedule(2*Millisecond, func() { ran++ })
	e.Run(0)
	if ran != 1 {
		t.Fatalf("ran %d events after Stop, want 1", ran)
	}
	// Resuming continues with the remaining event.
	e.Run(0)
	if ran != 2 {
		t.Fatalf("ran %d events after resume, want 2", ran)
	}
}

func TestGoAtDelaysStart(t *testing.T) {
	e := NewEngine(1)
	var started Time
	e.GoAt(7*Millisecond, "late", func(p *Proc) { started = p.Now() })
	e.Run(0)
	if started != 7*Millisecond {
		t.Fatalf("proc started at %v, want 7ms", started)
	}
}

func TestWakeAfterDelay(t *testing.T) {
	e := NewEngine(1)
	var woke Time
	var waiter *Proc
	waiter = e.Go("w", func(p *Proc) {
		p.Park()
		woke = p.Now()
	})
	e.Go("waker", func(p *Proc) {
		waiter.WakeAfter(9 * Millisecond)
	})
	e.Run(0)
	if woke != 9*Millisecond {
		t.Fatalf("woke at %v, want 9ms", woke)
	}
}

func TestPendingAndProcsCounters(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(Millisecond, func() {})
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	e.Go("p", func(p *Proc) { p.Sleep(Millisecond) })
	if e.Procs() != 1 {
		t.Fatalf("procs = %d, want 1", e.Procs())
	}
	e.Run(0)
	if e.Procs() != 0 || e.Pending() != 0 {
		t.Fatalf("procs/pending = %d/%d after drain", e.Procs(), e.Pending())
	}
}

func TestNegativeSleepIsZero(t *testing.T) {
	e := NewEngine(1)
	var after Time
	e.Go("w", func(p *Proc) {
		p.Sleep(-5)
		after = p.Now()
	})
	e.Run(0)
	if after != 0 {
		t.Fatalf("negative sleep advanced clock to %v", after)
	}
}

func TestProcName(t *testing.T) {
	e := NewEngine(1)
	p := e.Go("alpha", func(p *Proc) {})
	if p.Name() != "alpha" {
		t.Fatalf("name = %q", p.Name())
	}
	e.Run(0)
}

// Property: resource utilization never exceeds 1 and the queue always
// drains when all holders release.
func TestPropertyResourceUtilizationBounded(t *testing.T) {
	f := func(jobs []uint8, cap8 uint8) bool {
		c := int(cap8%6) + 1
		e := NewEngine(9)
		r := NewResource(e, "r", c)
		for _, j := range jobs {
			d := Time(j%50+1) * Microsecond
			e.Go("w", func(p *Proc) { p.Use(r, d) })
		}
		e.Run(0)
		return r.Utilization() <= 1.0001 && r.InUse() == 0 && r.QueueLen() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRunReleasesDrainedEventArray(t *testing.T) {
	e := NewEngine(1)
	for i := 0; i < 10_000; i++ {
		e.Schedule(Time(i), func() {})
	}
	if cap(e.events) < 10_000 {
		t.Fatalf("heap backing array cap = %d, want >= 10000", cap(e.events))
	}
	e.Run(0)
	if cap(e.events) != 0 {
		t.Errorf("drained heap still pins %d slots, want released backing array", cap(e.events))
	}
	// The engine stays usable after the release.
	fired := false
	e.Schedule(1, func() { fired = true })
	e.Run(0)
	if !fired {
		t.Fatal("engine unusable after heap release")
	}
}

func TestRunKeepsPendingEventsAcrossHorizons(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	e.Schedule(5, func() { fired++ })
	e.Schedule(50, func() { fired++ })
	e.Run(10) // stops mid-queue: the later event must survive
	if fired != 1 || e.Pending() != 1 {
		t.Fatalf("after first horizon: fired=%d pending=%d, want 1/1", fired, e.Pending())
	}
	e.Run(100)
	if fired != 2 {
		t.Fatalf("second horizon dropped the queued event: fired=%d", fired)
	}
}
