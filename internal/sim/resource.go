package sim

// Resource is a counted server pool with a FIFO wait queue: a CPU with k
// cores, a disk with one head, a NIC, a thread pool, a semaphore. Processes
// Acquire a unit, hold it while doing timed work, and Release it.
//
// Resources also keep utilization accounting (busy unit-time) so experiments
// can report how saturated a component was.
type Resource struct {
	eng      *Engine
	name     string
	capacity int
	inUse    int
	queue    []*Proc

	// accounting
	busyUnits   Time // sum over units of time held
	lastChange  Time
	totalWaits  int64
	totalWaitNs Time
	maxQueueLen int
}

// NewResource creates a resource with the given number of units.
func NewResource(e *Engine, name string, capacity int) *Resource {
	if capacity < 1 {
		panic("sim: resource capacity must be >= 1")
	}
	return &Resource{eng: e, name: name, capacity: capacity}
}

// Name returns the resource name.
func (r *Resource) Name() string { return r.name }

// Capacity returns the number of units.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of processes waiting.
func (r *Resource) QueueLen() int { return len(r.queue) }

func (r *Resource) account() {
	now := r.eng.now
	r.busyUnits += Time(r.inUse) * (now - r.lastChange)
	r.lastChange = now
}

// Acquire obtains one unit, waiting in FIFO order if none is free.
func (r *Resource) Acquire(p *Proc) {
	if r.inUse < r.capacity && len(r.queue) == 0 {
		r.account()
		r.inUse++
		return
	}
	start := r.eng.now
	r.queue = append(r.queue, p)
	if len(r.queue) > r.maxQueueLen {
		r.maxQueueLen = len(r.queue)
	}
	p.park()
	r.totalWaits++
	r.totalWaitNs += r.eng.now - start
}

// TryAcquire obtains a unit without waiting. It reports whether it succeeded.
func (r *Resource) TryAcquire() bool {
	if r.inUse < r.capacity && len(r.queue) == 0 {
		r.account()
		r.inUse++
		return true
	}
	return false
}

// Release returns one unit and hands it to the first live waiter, if any.
// Waiters whose process already finished (a kill-unwind can race with the
// grant) are dropped rather than granted, so no unit leaks.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: Release of idle resource " + r.name)
	}
	r.account()
	r.inUse--
	for len(r.queue) > 0 {
		next := r.queue[0]
		r.queue = r.queue[1:]
		if next.dead {
			continue
		}
		r.account()
		r.inUse++
		next.Wake()
		return
	}
}

// Use acquires a unit, holds it for d, and releases it: the common pattern
// for "spend d of service time on this component". The release runs in a
// defer so a process killed mid-hold returns the unit as it unwinds.
func (p *Proc) Use(r *Resource, d Time) {
	r.Acquire(p)
	defer r.Release()
	p.Sleep(d)
}

// Utilization returns the average fraction of capacity that was busy between
// the start of the simulation and now.
func (r *Resource) Utilization() float64 {
	r.account()
	total := Time(r.capacity) * r.eng.now
	if total == 0 {
		return 0
	}
	return float64(r.busyUnits) / float64(total)
}

// AvgWait returns the mean time processes spent queued (zero if nothing
// ever waited).
func (r *Resource) AvgWait() Time {
	if r.totalWaits == 0 {
		return 0
	}
	return r.totalWaitNs / Time(r.totalWaits)
}

// MaxQueueLen returns the high-water mark of the wait queue.
func (r *Resource) MaxQueueLen() int { return r.maxQueueLen }
