package sim_test

import (
	"fmt"

	"repro/internal/sim"
)

// A tiny client/server simulation: three clients share a single-threaded
// server; each request costs 10ms of service time, so the third request
// completes at 30ms of virtual time.
func Example() {
	e := sim.NewEngine(1)
	server := sim.NewResource(e, "server", 1)
	for i := 1; i <= 3; i++ {
		i := i
		e.Go(fmt.Sprintf("client-%d", i), func(p *sim.Proc) {
			p.Use(server, 10*sim.Millisecond)
			fmt.Printf("request %d done at %v\n", i, p.Now())
		})
	}
	e.Run(0)
	// Output:
	// request 1 done at 10.00ms
	// request 2 done at 20.00ms
	// request 3 done at 30.00ms
}

// Processes can sleep in virtual time and wake each other.
func ExampleProc_Park() {
	e := sim.NewEngine(1)
	var waiter *sim.Proc
	waiter = e.Go("waiter", func(p *sim.Proc) {
		p.Park()
		fmt.Printf("woken at %v\n", p.Now())
	})
	e.Go("waker", func(p *sim.Proc) {
		p.Sleep(5 * sim.Millisecond)
		waiter.Wake()
	})
	e.Run(0)
	// Output:
	// woken at 5.00ms
}
