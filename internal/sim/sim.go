// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine advances a virtual clock from event to event. Simulated
// activities are written as ordinary Go functions running in "processes"
// (goroutines that are resumed one at a time by the engine, so process code
// never races with other process code). Processes sleep in virtual time,
// queue on counted resources, and park/wake explicitly, which is enough to
// express clients, servers, disks, NICs and background daemons.
//
// All randomness used by a simulation should come from Engine.Rand so that a
// run is fully determined by its seed.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation.
type Time int64

// Common durations, mirroring time.Duration's constants but in virtual time.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

func (t Time) String() string {
	switch {
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.2fµs", float64(t)/float64(Microsecond))
	case t < Second:
		return fmt.Sprintf("%.2fms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	}
}

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// event is a scheduled callback. seq breaks ties so that events scheduled
// earlier run earlier, keeping runs deterministic.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event scheduler with a virtual clock.
type Engine struct {
	now    Time
	events eventHeap
	seq    uint64
	rng    *rand.Rand

	// yield is signaled by the currently running process when it parks or
	// terminates, handing control back to the engine loop. Exactly one
	// process runs at any instant.
	yield chan struct{}

	procs   int // live processes (started and not yet finished)
	stopped bool
}

// NewEngine returns an engine whose random source is seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{
		rng:   rand.New(rand.NewSource(seed)),
		yield: make(chan struct{}),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source. It must only be
// used from process code or event callbacks (never concurrently).
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Schedule runs fn at now+delay. A negative delay is treated as zero.
func (e *Engine) Schedule(delay Time, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.seq++
	heap.Push(&e.events, event{at: e.now + delay, seq: e.seq, fn: fn})
}

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until no events remain, until the clock passes until
// (when until > 0), or until Stop is called. It returns the virtual time at
// which it stopped.
func (e *Engine) Run(until Time) Time {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		ev := heap.Pop(&e.events).(event)
		if until > 0 && ev.at > until {
			// Push back so a later Run can resume exactly here.
			heap.Push(&e.events, ev)
			e.now = until
			return e.now
		}
		e.now = ev.at
		ev.fn()
	}
	if until > 0 && e.now < until && !e.stopped {
		e.now = until
	}
	return e.now
}

// Pending reports the number of scheduled events.
func (e *Engine) Pending() int { return len(e.events) }

// Procs reports the number of live processes.
func (e *Engine) Procs() int { return e.procs }

// Proc is a simulated process: a goroutine that runs in lockstep with the
// engine. Process code calls Sleep/Park/Acquire to advance virtual time.
type Proc struct {
	eng    *Engine
	name   string
	resume chan struct{}
	dead   bool
}

// Go starts fn as a new process at the current virtual time. The process
// begins executing when the engine reaches the start event.
func (e *Engine) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{eng: e, name: name, resume: make(chan struct{})}
	e.procs++
	e.Schedule(0, func() {
		go func() {
			fn(p)
			p.dead = true
			e.procs--
			e.yield <- struct{}{}
		}()
		<-e.yield
	})
	return p
}

// GoAt starts fn as a new process after delay.
func (e *Engine) GoAt(delay Time, name string, fn func(p *Proc)) *Proc {
	p := &Proc{eng: e, name: name, resume: make(chan struct{})}
	e.procs++
	e.Schedule(delay, func() {
		go func() {
			fn(p)
			p.dead = true
			e.procs--
			e.yield <- struct{}{}
		}()
		<-e.yield
	})
	return p
}

// Engine returns the engine that owns p.
func (p *Proc) Engine() *Engine { return p.eng }

// Name returns the process name (for diagnostics).
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

// Rand returns the engine's deterministic random source.
func (p *Proc) Rand() *rand.Rand { return p.eng.rng }

// park hands control back to the engine and blocks until woken.
func (p *Proc) park() {
	p.eng.yield <- struct{}{}
	<-p.resume
}

// wake schedules p to resume at now+delay.
func (e *Engine) wake(p *Proc, delay Time) {
	e.Schedule(delay, func() {
		p.resume <- struct{}{}
		<-e.yield
	})
}

// Sleep advances the process by d of virtual time.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		d = 0
	}
	p.eng.wake(p, d)
	p.park()
}

// Park blocks the process until another process or event calls Wake.
func (p *Proc) Park() { p.park() }

// Wake resumes a process parked with Park at the current virtual time.
// Calling Wake on a process that is not parked is a programming error and
// will deadlock the simulation; the engine cannot detect it cheaply.
func (p *Proc) Wake() { p.eng.wake(p, 0) }

// WakeAfter resumes a parked process after delay.
func (p *Proc) WakeAfter(delay Time) { p.eng.wake(p, delay) }
