// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine advances a virtual clock from event to event. Simulated
// activities are written as ordinary Go functions running in "processes"
// (goroutines that are resumed one at a time by the engine, so process code
// never races with other process code). Processes sleep in virtual time,
// queue on counted resources, and park/wake explicitly, which is enough to
// express clients, servers, disks, NICs and background daemons.
//
// All randomness used by a simulation should come from Engine.Rand so that a
// run is fully determined by its seed.
package sim

import (
	"fmt"
	"math/rand"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation.
type Time int64

// Common durations, mirroring time.Duration's constants but in virtual time.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

func (t Time) String() string {
	switch {
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.2fµs", float64(t)/float64(Microsecond))
	case t < Second:
		return fmt.Sprintf("%.2fms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	}
}

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// event is a scheduled callback. seq breaks ties so that events scheduled
// earlier run earlier, keeping runs deterministic.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

// eventHeap is a 4-ary min-heap of events ordered by (at, seq). Events are
// stored by value and moved with plain assignments, so Push/Pop never box
// through interface{} the way container/heap does; on the hot path a
// scheduled event costs zero heap allocations. The 4-ary layout halves the
// tree depth versus a binary heap, which favours the push-heavy access
// pattern of a discrete-event loop.
type eventHeap []event

func (h eventHeap) before(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !s.before(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = event{} // drop the fn reference so the closure can be collected
	s = s[:n]
	*h = s
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if s.before(c, min) {
				min = c
			}
		}
		if !s.before(min, i) {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	return top
}

// Engine is a discrete-event scheduler with a virtual clock.
type Engine struct {
	now    Time
	events eventHeap
	seq    uint64
	rng    *rand.Rand

	// yield is signaled by the currently running process when it parks or
	// terminates, handing control back to the engine loop. Exactly one
	// process runs at any instant.
	yield chan struct{}

	procs   int // live processes (started and not yet finished)
	stopped bool
}

// NewEngine returns an engine whose random source is seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{
		rng:   rand.New(rand.NewSource(seed)),
		yield: make(chan struct{}),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source. It must only be
// used from process code or event callbacks (never concurrently).
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Schedule runs fn at now+delay. A negative delay is treated as zero.
func (e *Engine) Schedule(delay Time, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.seq++
	e.events.push(event{at: e.now + delay, seq: e.seq, fn: fn})
}

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until no events remain, until the clock passes until
// (when until > 0), or until Stop is called. It returns the virtual time at
// which it stopped.
func (e *Engine) Run(until Time) Time {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		if until > 0 && e.events[0].at > until {
			// Leave the event queued so a later Run can resume exactly here.
			e.now = until
			return e.now
		}
		ev := e.events.pop()
		e.now = ev.at
		ev.fn()
	}
	if until > 0 && e.now < until && !e.stopped {
		e.now = until
	}
	// A drained queue releases the heap's backing array: load and measure
	// phases can grow it to hundreds of thousands of slots, and a long-lived
	// multi-figure process would otherwise pin that peak for every engine
	// still reachable between Run horizons.
	if len(e.events) == 0 && cap(e.events) > 64 {
		e.events = nil
	}
	return e.now
}

// Pending reports the number of scheduled events.
func (e *Engine) Pending() int { return len(e.events) }

// Procs reports the number of live processes.
func (e *Engine) Procs() int { return e.procs }

// Proc is a simulated process: a goroutine that runs in lockstep with the
// engine. Process code calls Sleep/Park/Acquire to advance virtual time.
type Proc struct {
	eng    *Engine
	name   string
	resume chan struct{}
	dead   bool
	// killed marks a process cancelled by Kill. The process unwinds the
	// next time it reaches a cancellation point (Sleep or Park).
	killed bool
	// killable is true while the process is blocked at a cancellation
	// point, i.e. Kill may resume it immediately. Resource waits are not
	// cancellation points: a queued process must complete its acquisition
	// (the grant is already accounted) and unwinds at its next Sleep/Park.
	killable bool
	// pendingWakes counts scheduled-but-undelivered wake events, so Kill
	// never double-schedules a resume (two sends on an unbuffered resume
	// channel with one receiver would deadlock the simulation).
	pendingWakes int
	// wakeFn is the event callback that resumes this process. It is built
	// once at process creation and rescheduled for every Sleep/Wake, so the
	// scheduler's hottest operation (context switch) allocates nothing.
	wakeFn func()
}

// procKilled is the panic value used to unwind a killed process's stack.
// It is recovered by the process wrapper and treated as a normal exit.
type procKilled struct{}

// Go starts fn as a new process at the current virtual time. The process
// begins executing when the engine reaches the start event.
func (e *Engine) Go(name string, fn func(p *Proc)) *Proc {
	return e.GoAt(0, name, fn)
}

// GoAt starts fn as a new process after delay.
func (e *Engine) GoAt(delay Time, name string, fn func(p *Proc)) *Proc {
	p := &Proc{eng: e, name: name, resume: make(chan struct{})}
	p.wakeFn = func() {
		p.pendingWakes--
		if p.dead {
			// The wake raced with the process's death (e.g. a timer fired
			// after a kill-unwind); there is no goroutine left to resume.
			return
		}
		p.resume <- struct{}{}
		<-e.yield
	}
	e.procs++
	e.Schedule(delay, func() {
		go func() {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(procKilled); !ok {
						panic(r)
					}
				}
				p.dead = true
				e.procs--
				e.yield <- struct{}{}
			}()
			if !p.killed {
				fn(p)
			}
		}()
		<-e.yield
	})
	return p
}

// Engine returns the engine that owns p.
func (p *Proc) Engine() *Engine { return p.eng }

// Name returns the process name (for diagnostics).
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

// Rand returns the engine's deterministic random source.
func (p *Proc) Rand() *rand.Rand { return p.eng.rng }

// park hands control back to the engine and blocks until woken.
func (p *Proc) park() {
	p.eng.yield <- struct{}{}
	<-p.resume
}

// wake schedules p to resume at now+delay, reusing the process's
// pre-allocated wake callback.
func (e *Engine) wake(p *Proc, delay Time) {
	p.pendingWakes++
	e.Schedule(delay, p.wakeFn)
}

// checkKilled unwinds the process if it has been cancelled.
func (p *Proc) checkKilled() {
	if p.killed {
		panic(procKilled{})
	}
}

// Sleep advances the process by d of virtual time.
func (p *Proc) Sleep(d Time) {
	p.checkKilled()
	if d < 0 {
		d = 0
	}
	p.eng.wake(p, d)
	p.killable = true
	p.park()
	p.killable = false
	p.checkKilled()
}

// Park blocks the process until another process or event calls Wake.
func (p *Proc) Park() {
	p.checkKilled()
	p.killable = true
	p.park()
	p.killable = false
	p.checkKilled()
}

// Wake resumes a process parked with Park at the current virtual time.
// Calling Wake on a process that is not parked is a programming error and
// will deadlock the simulation; the engine cannot detect it cheaply. The
// exception is a process that already finished or was killed: such wakes
// are dropped, so owners of long-lived background processes need not
// synchronize Wake against teardown.
func (p *Proc) Wake() { p.eng.wake(p, 0) }

// Kill cancels the process. The cancellation is cooperative: the process
// unwinds at its next cancellation point (Sleep or Park), releasing any
// resources held through Use on the way out. A process blocked in Sleep or
// Park when Kill is called is resumed immediately (a sleeping process's
// already-scheduled timer doubles as the resume, so the unwind happens at
// the timer). A process waiting in a Resource queue completes its
// acquisition first — the grant accounting must stay balanced — and
// unwinds at the next point after that. Kill is idempotent and a no-op on
// a finished process.
func (p *Proc) Kill() {
	if p.dead || p.killed {
		return
	}
	p.killed = true
	if p.killable && p.pendingWakes == 0 {
		p.eng.wake(p, 0)
	}
}

// Killed reports whether Kill has been called; long-running process loops
// may poll it to exit early between cancellation points.
func (p *Proc) Killed() bool { return p.killed }

// Done reports whether the process has finished (returned or unwound).
func (p *Proc) Done() bool { return p.dead }

// WakeAfter resumes a parked process after delay.
func (p *Proc) WakeAfter(delay Time) { p.eng.wake(p, delay) }
