// Package core is the library's front door: it ties the simulated clusters,
// the six store models, the YCSB-style workload framework and the APM data
// model together behind a small API, mirroring what the paper's evaluation
// pipeline did end to end — deploy a store on a cluster, load records, run a
// Table 1 workload at maximum or bounded throughput, and collect statistics.
//
// A minimal session:
//
//	b, err := core.NewBenchmark(core.Config{
//	    System:  "cassandra",
//	    Nodes:   4,
//	    Records: 100_000,
//	})
//	res, err := b.Run("W")
//	fmt.Println(res.Throughput, res.Insert.Mean)
//
// For regenerating whole figures use internal/harness (or cmd/apmbench);
// for driving stores directly with custom processes use the store packages.
package core

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/harness"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/store"
	"repro/internal/ycsb"
)

// Config describes one benchmark deployment.
type Config struct {
	// System is one of cassandra, hbase, voldemort, redis, voltdb, mysql.
	System string
	// Nodes is the cluster size (paper: 1-12 on Cluster M).
	Nodes int
	// Records to load before running.
	Records int64
	// DiskBound selects the Cluster D hardware profile instead of M.
	DiskBound bool
	// Scale multiplies node RAM/disk (use the same factor you scaled
	// Records by; default 0.01).
	Scale float64
	// Clients overrides the connection count (0 = the paper's policy).
	Clients int
	// Seed fixes the simulation's randomness (0 = 42).
	Seed int64
	// Warmup and Measure bound the run (defaults 0.5s / 2s virtual).
	Warmup  sim.Time
	Measure sim.Time
}

// Result is the outcome of one workload run.
type Result struct {
	Throughput float64
	Ops        int64
	Errors     int64
	Read       stats.LatencySummary
	Insert     stats.LatencySummary
	Update     stats.LatencySummary
	Scan       stats.LatencySummary
	DiskUsage  int64
}

// Benchmark is a deployed, loaded store ready to run workloads.
type Benchmark struct {
	cfg    Config
	dep    *harness.Deployment
	loaded int64
}

// NewBenchmark deploys the system and loads the records.
func NewBenchmark(cfg Config) (*Benchmark, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("core: need at least one node")
	}
	if cfg.Scale == 0 {
		cfg.Scale = 0.01
	}
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	if cfg.Warmup == 0 {
		cfg.Warmup = 500 * sim.Millisecond
	}
	if cfg.Measure == 0 {
		cfg.Measure = 2 * sim.Second
	}
	spec := cluster.ClusterM(cfg.Nodes)
	if cfg.DiskBound {
		spec = cluster.ClusterD(cfg.Nodes)
	}
	dep, err := harness.Deploy(cfg.Seed, harness.System(cfg.System), spec, cfg.Scale)
	if err != nil {
		return nil, err
	}
	if err := ycsb.Load(dep.Store, cfg.Records); err != nil {
		return nil, err
	}
	return &Benchmark{cfg: cfg, dep: dep, loaded: cfg.Records}, nil
}

// Store exposes the deployed store for direct operations.
func (b *Benchmark) Store() store.Store { return b.dep.Store }

// Engine exposes the simulation engine (e.g. for spawning agent processes).
func (b *Benchmark) Engine() *sim.Engine { return b.dep.Engine }

// Run executes one Table 1 workload (R, RW, W, RS, RSW) at maximum
// throughput and returns its statistics. Run may be called repeatedly; each
// call continues on the same deployment with the data accumulated so far.
func (b *Benchmark) Run(workload string) (*Result, error) {
	return b.RunAtRate(workload, 0)
}

// RunAtRate executes a workload throttled to targetOpsPerSec (0 = maximum
// throughput), the mode behind the paper's bounded-throughput experiment.
func (b *Benchmark) RunAtRate(workload string, targetOpsPerSec float64) (*Result, error) {
	wl, err := ycsb.WorkloadByName(workload)
	if err != nil {
		return nil, err
	}
	if wl.HasScans() && !b.dep.Store.Caps().Scans {
		return nil, store.ErrScansUnsupported
	}
	clients := b.cfg.Clients
	if clients == 0 {
		clients = harness.Conns(harness.System(b.cfg.System), b.cfg.Nodes, b.cfg.DiskBound)
	}
	res, err := ycsb.Run(b.dep.Engine, ycsb.RunConfig{
		Store:           b.dep.Store,
		Workload:        wl,
		Clients:         clients,
		TargetOpsPerSec: targetOpsPerSec,
		InitialRecords:  b.loaded,
		Warmup:          b.cfg.Warmup,
		Measure:         b.cfg.Measure,
	})
	if err != nil {
		return nil, err
	}
	s := res.Summarize()
	return &Result{
		Throughput: s.Throughput,
		Ops:        s.Ops,
		Errors:     s.Errors,
		Read:       s.Read,
		Insert:     s.Insert,
		Update:     s.Update,
		Scan:       s.Scan,
		DiskUsage:  b.dep.Store.DiskUsage(),
	}, nil
}

// Systems lists the supported system names.
func Systems() []string {
	out := make([]string, len(harness.AllSystems))
	for i, s := range harness.AllSystems {
		out[i] = string(s)
	}
	return out
}

// Workloads lists the Table 1 workload names.
func Workloads() []string {
	out := make([]string, len(ycsb.Workloads))
	for i, w := range ycsb.Workloads {
		out[i] = w.Name
	}
	return out
}
