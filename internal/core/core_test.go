package core

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/store"
)

// soak shrinks a config's virtual measurement windows under -short: the
// end-to-end benchmark runs here are the slowest tests in the tree, and
// the shape assertions hold at a fraction of the default 2s window.
func soak(cfg Config) Config {
	if testing.Short() {
		cfg.Warmup = 100 * sim.Millisecond
		cfg.Measure = 300 * sim.Millisecond
	}
	return cfg
}

func TestNewBenchmarkAndRun(t *testing.T) {
	b, err := NewBenchmark(soak(Config{System: "redis", Nodes: 2, Records: 2000, Scale: 0.001}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.Run("RW")
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput <= 0 || res.Ops <= 0 {
		t.Fatalf("empty result: %+v", res)
	}
	if res.Read.N == 0 || res.Insert.N == 0 {
		t.Fatalf("missing op kinds: read=%d insert=%d", res.Read.N, res.Insert.N)
	}
}

func TestRunAtRateThrottles(t *testing.T) {
	b, err := NewBenchmark(Config{System: "voldemort", Nodes: 1, Records: 1000, Scale: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.RunAtRate("R", 2000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput < 1500 || res.Throughput > 2500 {
		t.Fatalf("throttled throughput = %f, want ~2000", res.Throughput)
	}
}

func TestRunRejectsScanOnVoldemort(t *testing.T) {
	b, err := NewBenchmark(Config{System: "voldemort", Nodes: 1, Records: 100, Scale: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Run("RS"); err != store.ErrScansUnsupported {
		t.Fatalf("err = %v, want ErrScansUnsupported", err)
	}
}

func TestNewBenchmarkValidation(t *testing.T) {
	if _, err := NewBenchmark(Config{System: "cassandra", Nodes: 0}); err == nil {
		t.Fatal("accepted zero nodes")
	}
	if _, err := NewBenchmark(Config{System: "not-a-system", Nodes: 1}); err == nil {
		t.Fatal("accepted unknown system")
	}
}

func TestDirectStoreAccess(t *testing.T) {
	b, err := NewBenchmark(Config{System: "hbase", Nodes: 2, Records: 500, Scale: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	if b.Engine() == nil {
		t.Fatal("engine not exposed")
	}
	if b.Store().Name() != "hbase" {
		t.Fatalf("store name = %s", b.Store().Name())
	}
	if b.Store().DiskUsage() <= 0 {
		t.Fatal("no disk usage after load")
	}
}

func TestSystemsAndWorkloadsLists(t *testing.T) {
	if len(Systems()) != 6 {
		t.Fatalf("systems = %v, want 6", Systems())
	}
	if len(Workloads()) != 5 {
		t.Fatalf("workloads = %v, want 5 (Table 1)", Workloads())
	}
}

func TestDiskBoundProfile(t *testing.T) {
	b, err := NewBenchmark(soak(Config{System: "cassandra", Nodes: 2, Records: 20000, Scale: 0.001, DiskBound: true}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.Run("R")
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput <= 0 {
		t.Fatal("no throughput on Cluster D")
	}
}
