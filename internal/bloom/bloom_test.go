package bloom

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestNoFalseNegatives(t *testing.T) {
	f := New(1000, 0.01)
	for i := 0; i < 1000; i++ {
		f.Add(fmt.Sprintf("key%06d", i))
	}
	for i := 0; i < 1000; i++ {
		if !f.MayContain(fmt.Sprintf("key%06d", i)) {
			t.Fatalf("false negative for key%06d", i)
		}
	}
}

func TestFalsePositiveRateNearTarget(t *testing.T) {
	f := New(10000, 0.01)
	for i := 0; i < 10000; i++ {
		f.Add(fmt.Sprintf("present%08d", i))
	}
	fp := 0
	const probes = 20000
	for i := 0; i < probes; i++ {
		if f.MayContain(fmt.Sprintf("absent%08d", i)) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 0.03 {
		t.Fatalf("false positive rate %f, want <= 0.03 for 0.01 target", rate)
	}
}

func TestEmptyFilterContainsNothing(t *testing.T) {
	f := New(100, 0.01)
	for i := 0; i < 100; i++ {
		if f.MayContain(fmt.Sprintf("k%d", i)) {
			t.Fatalf("empty filter claims to contain k%d", i)
		}
	}
}

func TestDegenerateParams(t *testing.T) {
	f := New(0, -1) // must not panic; falls back to sane defaults
	f.Add("x")
	if !f.MayContain("x") {
		t.Fatal("added key not found")
	}
}

func TestSizeGrowsWithN(t *testing.T) {
	small := New(100, 0.01)
	big := New(100000, 0.01)
	if big.SizeBytes() <= small.SizeBytes() {
		t.Fatalf("size(100k)=%d should exceed size(100)=%d", big.SizeBytes(), small.SizeBytes())
	}
}

func TestEstimatedFPPIncreasesWithFill(t *testing.T) {
	f := New(1000, 0.01)
	if f.EstimatedFPP() != 0 {
		t.Fatal("empty filter should estimate 0 fpp")
	}
	for i := 0; i < 500; i++ {
		f.Add(fmt.Sprintf("a%d", i))
	}
	half := f.EstimatedFPP()
	for i := 0; i < 1500; i++ {
		f.Add(fmt.Sprintf("b%d", i))
	}
	if over := f.EstimatedFPP(); over <= half {
		t.Fatalf("fpp should rise with fill: half=%f over=%f", half, over)
	}
}

// Property: anything added is always found.
func TestPropertyMembership(t *testing.T) {
	f := func(keys []string) bool {
		bf := New(len(keys)+1, 0.01)
		for _, k := range keys {
			bf.Add(k)
		}
		for _, k := range keys {
			if !bf.MayContain(k) {
				return false
			}
		}
		return bf.N() == len(keys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAdd(b *testing.B) {
	f := New(b.N+1, 0.01)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Add("some-benchmark-key-000001")
	}
}

func BenchmarkMayContain(b *testing.B) {
	f := New(100000, 0.01)
	for i := 0; i < 100000; i++ {
		f.Add(fmt.Sprintf("key%08d", i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.MayContain("key00050000")
	}
}
