// Package bloom implements a Bloom filter with double hashing, as used by
// the SSTable/HFile read paths of Cassandra and HBase to skip files that
// cannot contain a key.
package bloom

import (
	"hash/fnv"
	"math"
)

// Filter is a standard Bloom filter. It is not safe for concurrent use.
type Filter struct {
	bits  []uint64
	nbits uint64
	k     int
	n     int // elements added
}

// New creates a filter sized for expectedN elements at the given target
// false-positive probability (e.g. 0.01).
func New(expectedN int, fpp float64) *Filter {
	if expectedN < 1 {
		expectedN = 1
	}
	if fpp <= 0 || fpp >= 1 {
		fpp = 0.01
	}
	// Optimal sizing: m = -n ln p / (ln 2)^2, k = m/n ln 2.
	m := math.Ceil(-float64(expectedN) * math.Log(fpp) / (math.Ln2 * math.Ln2))
	k := int(math.Round(m / float64(expectedN) * math.Ln2))
	if k < 1 {
		k = 1
	}
	nbits := uint64(m)
	if nbits < 64 {
		nbits = 64
	}
	return &Filter{
		bits:  make([]uint64, (nbits+63)/64),
		nbits: nbits,
		k:     k,
	}
}

// hash2 derives two independent 64-bit hashes from key using FNV-1a over the
// key and over the key with a salt byte appended.
func hash2(key string) (uint64, uint64) {
	h1 := fnv.New64a()
	h1.Write([]byte(key))
	a := h1.Sum64()
	h1.Write([]byte{0xA5})
	b := h1.Sum64()
	return a, b
}

// Add inserts key into the filter.
func (f *Filter) Add(key string) {
	a, b := hash2(key)
	for i := 0; i < f.k; i++ {
		idx := (a + uint64(i)*b) % f.nbits
		f.bits[idx/64] |= 1 << (idx % 64)
	}
	f.n++
}

// MayContain reports whether key might have been added. False positives are
// possible; false negatives are not.
func (f *Filter) MayContain(key string) bool {
	a, b := hash2(key)
	for i := 0; i < f.k; i++ {
		idx := (a + uint64(i)*b) % f.nbits
		if f.bits[idx/64]&(1<<(idx%64)) == 0 {
			return false
		}
	}
	return true
}

// N returns the number of elements added.
func (f *Filter) N() int { return f.n }

// SizeBytes returns the in-memory size of the bit array.
func (f *Filter) SizeBytes() int64 { return int64(len(f.bits) * 8) }

// EstimatedFPP returns the theoretical false-positive probability given the
// current fill.
func (f *Filter) EstimatedFPP() float64 {
	if f.n == 0 {
		return 0
	}
	exp := -float64(f.k) * float64(f.n) / float64(f.nbits)
	return math.Pow(1-math.Exp(exp), float64(f.k))
}
