// Package wal models a write-ahead/commit log with group commit, as used by
// Cassandra (CommitLog, periodic sync mode), HBase (HLog) and InnoDB (redo
// log + binary log). Appends accumulate in an in-memory segment; a
// background flusher writes the batch sequentially every sync window.
// Callers choose whether an append must wait for durability (sync) or may
// return as soon as the bytes are buffered (periodic mode, Cassandra's
// default and the mode the paper's setups ran in).
package wal

import (
	"repro/internal/cluster"
	"repro/internal/sim"
)

// Log is a simulated append-only commit log on one node.
type Log struct {
	node   *cluster.Node
	window sim.Time

	pendingBytes int64
	waiters      []*sim.Proc
	flusherUp    bool

	totalBytes int64 // durable bytes ever written (disk usage accounting)
	flushes    int64
}

// New creates a log on node with the given group-commit window.
func New(node *cluster.Node, window sim.Time) *Log {
	if window <= 0 {
		window = 10 * sim.Millisecond
	}
	return &Log{node: node, window: window}
}

// Append buffers n bytes. If sync is true the call blocks until the group
// commit that includes these bytes has reached disk; otherwise it returns
// immediately (periodic durability).
func (l *Log) Append(p *sim.Proc, n int64, sync bool) {
	l.pendingBytes += n
	l.ensureFlusher(p.Engine())
	if sync {
		l.waiters = append(l.waiters, p)
		p.Park()
	}
}

// ensureFlusher starts the background group-commit process if idle.
func (l *Log) ensureFlusher(e *sim.Engine) {
	if l.flusherUp {
		return
	}
	l.flusherUp = true
	e.Go("wal-flusher", func(p *sim.Proc) {
		for l.pendingBytes > 0 {
			p.Sleep(l.window)
			batch := l.pendingBytes
			waiters := l.waiters
			l.pendingBytes = 0
			l.waiters = nil
			l.node.DiskWrite(p, batch, false) // sequential append
			l.node.AddDiskUsage(batch)
			l.totalBytes += batch
			l.flushes++
			for _, w := range waiters {
				w.Wake()
			}
		}
		l.flusherUp = false
	})
}

// AppendDirect accounts n durable bytes without simulation timing; used by
// bulk loaders.
func (l *Log) AppendDirect(n int64) {
	l.totalBytes += n
	l.node.AddDiskUsage(n)
}

// DurableBytes returns all bytes ever flushed.
func (l *Log) DurableBytes() int64 { return l.totalBytes }

// Flushes returns the number of group commits performed.
func (l *Log) Flushes() int64 { return l.flushes }

// Truncate models log segment recycling after a memtable flush: the space
// is reclaimed from the node's disk usage accounting (the data now lives in
// an SSTable), but total write volume is unchanged.
func (l *Log) Truncate(bytes int64) {
	l.node.AddDiskUsage(-bytes)
}
