// Package wal models a write-ahead/commit log with group commit, as used by
// Cassandra (CommitLog, periodic sync mode), HBase (HLog) and InnoDB (redo
// log + binary log). Appends accumulate in an in-memory segment; a
// background flusher writes the batch sequentially every sync window.
// Callers choose whether an append must wait for durability (sync) or may
// return as soon as the bytes are buffered (periodic mode, Cassandra's
// default and the mode the paper's setups ran in).
package wal

import (
	"repro/internal/cluster"
	"repro/internal/sim"
)

// Log is a simulated append-only commit log on one node.
type Log struct {
	node   *cluster.Node
	window sim.Time

	pendingBytes int64
	// waiters collects sync appenders for the next group commit; spare is
	// the previous commit's backing array, recycled so the busy-path
	// append never grows a fresh slice. The two arrays alternate roles.
	waiters []*sim.Proc
	spare   []*sim.Proc
	// flusher is the log's single group-commit process. It is spawned on
	// the first append and then persists for the log's lifetime, parking
	// between busy periods instead of exiting: an idle→busy transition is
	// one Wake (an event-heap push) rather than a fresh closure, Proc and
	// goroutine per transition. The parked goroutine is the price — one
	// per log that ever flushed, held until the engine is dropped.
	flusher     *sim.Proc
	flusherBusy bool
	// closed marks the log torn down by a node kill: appends no longer
	// start the flusher and the buffered tail has been dropped (crash
	// semantics). Reopen clears it on restart.
	closed bool

	totalBytes int64 // durable bytes ever written (disk usage accounting)
	flushes    int64
}

// New creates a log on node with the given group-commit window.
func New(node *cluster.Node, window sim.Time) *Log {
	if window <= 0 {
		window = 10 * sim.Millisecond
	}
	return &Log{node: node, window: window}
}

// Append buffers n bytes. If sync is true the call blocks until the group
// commit that includes these bytes has reached disk; otherwise it returns
// immediately (periodic durability). The async path is allocation-free in
// steady state.
func (l *Log) Append(p *sim.Proc, n int64, sync bool) {
	l.pendingBytes += n
	l.kickFlusher(p.Engine())
	if sync {
		l.waiters = append(l.waiters, p)
		p.Park()
	}
}

// kickFlusher wakes (or first starts) the background group-commit process.
func (l *Log) kickFlusher(e *sim.Engine) {
	if l.closed || l.flusherBusy {
		return
	}
	l.flusherBusy = true
	if l.flusher == nil || l.flusher.Done() {
		l.flusher = e.Go("wal-flusher", l.flushLoop)
		return
	}
	l.flusher.Wake()
}

// flushLoop is the persistent group-commit process: sleep one sync window,
// write the accumulated batch sequentially, wake the batch's sync waiters,
// repeat while bytes keep arriving; park when the log drains. Processes
// run one at a time, so the busy flag and the waiter swap below cannot
// race with Append — control only transfers at Sleep/Park/DiskWrite.
func (l *Log) flushLoop(p *sim.Proc) {
	for {
		for l.pendingBytes > 0 {
			p.Sleep(l.window)
			batch := l.pendingBytes
			waiters := l.waiters
			l.pendingBytes = 0
			l.waiters = l.spare[:0]
			l.node.DiskWrite(p, batch, false) // sequential append
			l.node.AddDiskUsage(batch)
			l.totalBytes += batch
			l.flushes++
			for _, w := range waiters {
				w.Wake()
			}
			// Wake only schedules; no appender ran since the take above,
			// so nothing aliases the old array — recycle it.
			l.spare = waiters[:0]
		}
		l.flusherBusy = false
		if l.closed {
			// The log was torn down while a flush was in flight; the batch
			// above completed (in-flight I/O finishes) but the process must
			// not park as the log's flusher — a restarted log spawns a
			// fresh one.
			return
		}
		p.Park()
	}
}

// AppendDirect accounts n durable bytes without simulation timing; used by
// bulk loaders.
func (l *Log) AppendDirect(n int64) {
	l.totalBytes += n
	l.node.AddDiskUsage(n)
}

// DurableBytes returns all bytes ever flushed.
func (l *Log) DurableBytes() int64 { return l.totalBytes }

// Flushes returns the number of group commits performed.
func (l *Log) Flushes() int64 { return l.flushes }

// Truncate models log segment recycling after a memtable flush: the space
// is reclaimed from the node's disk usage accounting (the data now lives in
// an SSTable), but total write volume is unchanged.
func (l *Log) Truncate(bytes int64) {
	l.node.AddDiskUsage(-bytes)
}

// Close tears the log down on a node kill: the buffered (not yet flushed)
// tail is lost, sync appenders parked for the next group commit are
// released (their process sees the op complete; durability was lost, which
// is exactly a crash's semantics), and the idle flusher process is killed.
// A flusher mid-flush finishes its in-flight batch and then exits on its
// own. Close is idempotent.
func (l *Log) Close() {
	if l.closed {
		return
	}
	l.closed = true
	l.pendingBytes = 0
	for _, w := range l.waiters {
		w.Wake()
	}
	l.waiters = l.waiters[:0]
	if l.flusher != nil && !l.flusherBusy {
		l.flusher.Kill()
		l.flusher = nil
	}
}

// Reopen restores a closed log on node restart; the next append spawns a
// fresh flusher.
func (l *Log) Reopen() { l.closed = false }

// Closed reports whether the log is torn down.
func (l *Log) Closed() bool { return l.closed }
