package wal

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
)

func newNode(e *sim.Engine) *cluster.Node {
	return cluster.New(e, cluster.ClusterM(1)).Nodes[0]
}

func TestPeriodicAppendReturnsImmediately(t *testing.T) {
	e := sim.NewEngine(1)
	n := newNode(e)
	l := New(n, 10*sim.Millisecond)
	var appendDone sim.Time
	e.Go("w", func(p *sim.Proc) {
		l.Append(p, 100, false)
		appendDone = p.Now()
	})
	e.Run(0)
	if appendDone != 0 {
		t.Fatalf("periodic append blocked until %v, want 0", appendDone)
	}
	if l.DurableBytes() != 100 {
		t.Fatalf("durable bytes = %d, want 100 after background flush", l.DurableBytes())
	}
}

func TestSyncAppendWaitsForGroupCommit(t *testing.T) {
	e := sim.NewEngine(1)
	n := newNode(e)
	l := New(n, 10*sim.Millisecond)
	var done sim.Time
	e.Go("w", func(p *sim.Proc) {
		l.Append(p, 100, true)
		done = p.Now()
	})
	e.Run(0)
	if done < 10*sim.Millisecond {
		t.Fatalf("sync append returned at %v, want >= 10ms window", done)
	}
}

func TestGroupCommitBatchesAppends(t *testing.T) {
	e := sim.NewEngine(1)
	n := newNode(e)
	l := New(n, 10*sim.Millisecond)
	for i := 0; i < 50; i++ {
		e.Go("w", func(p *sim.Proc) { l.Append(p, 100, true) })
	}
	e.Run(0)
	if l.Flushes() != 1 {
		t.Fatalf("flushes = %d, want 1 (all appends in one group commit)", l.Flushes())
	}
	if l.DurableBytes() != 5000 {
		t.Fatalf("durable = %d, want 5000", l.DurableBytes())
	}
}

func TestSeparateWindowsSeparateFlushes(t *testing.T) {
	e := sim.NewEngine(1)
	n := newNode(e)
	l := New(n, 10*sim.Millisecond)
	e.Go("w1", func(p *sim.Proc) { l.Append(p, 100, true) })
	e.GoAt(25*sim.Millisecond, "w2", func(p *sim.Proc) { l.Append(p, 100, true) })
	e.Run(0)
	if l.Flushes() != 2 {
		t.Fatalf("flushes = %d, want 2", l.Flushes())
	}
}

func TestTruncateReclaimsDiskUsage(t *testing.T) {
	e := sim.NewEngine(1)
	n := newNode(e)
	l := New(n, 10*sim.Millisecond)
	l.AppendDirect(1000)
	if n.DiskUsed() != 1000 {
		t.Fatalf("disk used = %d, want 1000", n.DiskUsed())
	}
	l.Truncate(600)
	if n.DiskUsed() != 400 {
		t.Fatalf("disk used after truncate = %d, want 400", n.DiskUsed())
	}
	if l.DurableBytes() != 1000 {
		t.Fatal("truncate must not change total write volume")
	}
}

func TestAppendDirectBypassesTiming(t *testing.T) {
	e := sim.NewEngine(1)
	n := newNode(e)
	l := New(n, 10*sim.Millisecond)
	l.AppendDirect(500)
	if e.Now() != 0 {
		t.Fatal("AppendDirect advanced virtual time")
	}
	if l.DurableBytes() != 500 {
		t.Fatalf("durable = %d, want 500", l.DurableBytes())
	}
}

func TestFlusherRestartsAfterIdle(t *testing.T) {
	e := sim.NewEngine(1)
	n := newNode(e)
	l := New(n, 5*sim.Millisecond)
	e.Go("w1", func(p *sim.Proc) { l.Append(p, 10, true) })
	e.Run(0) // flusher exits when queue drains
	e.GoAt(0, "w2", func(p *sim.Proc) { l.Append(p, 20, true) })
	e.Run(0)
	if l.DurableBytes() != 30 {
		t.Fatalf("durable = %d, want 30 (flusher must restart)", l.DurableBytes())
	}
}

// TestAppendAsyncAllocBudget pins that the periodic (async) append path
// is allocation-free once the flusher process exists: the busy-path
// append is a counter increment plus a flag check.
func TestAppendAsyncAllocBudget(t *testing.T) {
	e := sim.NewEngine(1)
	l := New(newNode(e), 10*sim.Millisecond)
	var avg float64
	e.Go("w", func(p *sim.Proc) {
		// AllocsPerRun's warm-up call spawns the persistent flusher; the
		// measured calls must then be pure appends.
		avg = testing.AllocsPerRun(1000, func() {
			l.Append(p, 75, false)
		})
	})
	e.Run(0)
	if avg != 0 {
		t.Fatalf("async Append allocates %.3f allocs/op, want 0", avg)
	}
}

// TestSyncWaitersRecycled pins the waiter-array recycling: after the
// first two group commits grow the two alternating backing arrays, a
// steady stream of sync appenders causes no further waiter growth
// (observed as stable flushed byte totals and flush counts — the
// behavioral contract — plus alloc-free appends from a warm writer).
func TestSyncWaitersRecycled(t *testing.T) {
	e := sim.NewEngine(1)
	l := New(newNode(e), 5*sim.Millisecond)
	const writers = 16
	const rounds = 8
	for w := 0; w < writers; w++ {
		e.Go("w", func(p *sim.Proc) {
			for r := 0; r < rounds; r++ {
				l.Append(p, 10, true)
			}
		})
	}
	e.Run(0)
	if l.DurableBytes() != writers*rounds*10 {
		t.Fatalf("durable = %d, want %d", l.DurableBytes(), writers*rounds*10)
	}
	if got := cap(l.waiters) + cap(l.spare); got > 2*writers {
		t.Fatalf("waiter arrays grew to %d slots for %d concurrent waiters", got, writers)
	}
}

// TestFlusherPersistsAcrossIdle pins that idle→busy transitions reuse one
// flusher process instead of spawning a new one (the PR-1 era flusher
// exited on drain; the persistent one parks).
func TestFlusherPersistsAcrossIdle(t *testing.T) {
	e := sim.NewEngine(1)
	l := New(newNode(e), 5*sim.Millisecond)
	e.Go("w1", func(p *sim.Proc) { l.Append(p, 10, true) })
	e.Run(0)
	first := l.flusher
	if first == nil {
		t.Fatal("no flusher after first append")
	}
	e.GoAt(0, "w2", func(p *sim.Proc) { l.Append(p, 20, true) })
	e.Run(0)
	if l.flusher != first {
		t.Fatal("idle→busy transition spawned a new flusher process")
	}
	if l.DurableBytes() != 30 || l.Flushes() != 2 {
		t.Fatalf("durable=%d flushes=%d, want 30/2", l.DurableBytes(), l.Flushes())
	}
}

func BenchmarkAppendPeriodic(b *testing.B) {
	e := sim.NewEngine(1)
	l := New(newNode(e), 10*sim.Millisecond)
	e.Go("w", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			l.Append(p, 75, false)
		}
	})
	b.ResetTimer()
	e.Run(0)
}
