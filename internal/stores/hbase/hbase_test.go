package hbase

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/store"
)

func deploy(nodes int, opts Options) (*sim.Engine, *Store) {
	e := sim.NewEngine(1)
	c := cluster.New(e, cluster.ClusterM(nodes).Scale(0.01))
	if opts.MemstoreFlushBytes == 0 {
		opts.MemstoreFlushBytes = 64 << 10
	}
	return e, New(c, opts)
}

func TestDefaultsFilled(t *testing.T) {
	var o Options
	o.defaults()
	if o.ReadCPU == 0 || o.BatchRecords == 0 || o.Handlers == 0 {
		t.Fatalf("defaults not filled: %+v", o)
	}
	if o.Overhead.PerCell != 120 {
		t.Fatalf("overhead PerCell = %d, want the Fig 17 calibration (120)", o.Overhead.PerCell)
	}
}

func TestRegionSplitsCoverKeySpace(t *testing.T) {
	_, s := deploy(4, Options{})
	if len(s.splits) != 3 {
		t.Fatalf("splits = %d, want nodes-1", len(s.splits))
	}
	counts := make([]int, 4)
	for i := int64(0); i < 40000; i++ {
		counts[s.regionIndex(store.Key(i))]++
	}
	for r, c := range counts {
		frac := float64(c) / 40000
		if frac < 0.15 || frac > 0.35 {
			t.Fatalf("region %d holds %.2f of hashed keys, want ~0.25", r, frac)
		}
	}
}

func TestRegionIndexBoundaries(t *testing.T) {
	_, s := deploy(3, Options{})
	// A key strictly below the first split belongs to region 0.
	if got := s.regionIndex("user" + "000000000000000000000"); got != 0 {
		t.Fatalf("lowest key in region %d, want 0", got)
	}
	// The split key itself starts the next region (region i holds < split).
	if got := s.regionIndex(s.splits[0]); got != 1 {
		t.Fatalf("split key routed to region %d, want 1", got)
	}
	// A key above every split lands in the last region.
	if got := s.regionIndex("user999999999999999999999"); got != 2 {
		t.Fatalf("highest key in region %d, want 2", got)
	}
}

func TestScanCrossesRegionBoundary(t *testing.T) {
	e, s := deploy(4, Options{})
	for i := int64(0); i < 4000; i++ {
		s.Load(store.Key(i), store.MakeFields(i))
	}
	// Start the scan just below a split so it must continue into the next
	// region to fill the count.
	start := s.splits[0][:len(s.splits[0])-1] // strictly below split, very close
	e.Go("r", func(p *sim.Proc) {
		recs, err := store.ScanAll(p, s, start, 40)
		if err != nil {
			t.Errorf("scan: %v", err)
			return
		}
		if len(recs) != 40 {
			t.Errorf("scan returned %d records, want 40 (should cross regions)", len(recs))
		}
		for i := 1; i < len(recs); i++ {
			if recs[i].Key <= recs[i-1].Key {
				t.Errorf("scan unordered at %d", i)
			}
		}
	})
	e.Run(0)
}

func TestWriteBufferBatchesRPCs(t *testing.T) {
	e, s := deploy(1, Options{BatchRecords: 10})
	var latencies []sim.Time
	e.Go("w", func(p *sim.Proc) {
		for i := int64(0); i < 30; i++ {
			start := p.Now()
			s.Insert(p, store.Key(i), store.MakeFields(i))
			latencies = append(latencies, p.Now()-start)
		}
	})
	e.Run(0)
	// Most writes are cheap; every 10th pays the flush RPC.
	expensive := 0
	for _, l := range latencies {
		if l > 100*sim.Microsecond {
			expensive++
		}
	}
	if expensive < 2 || expensive > 4 {
		t.Fatalf("%d expensive writes out of 30 with batch=10, want ~3", expensive)
	}
}

func TestDeferredWritesStillReadable(t *testing.T) {
	e, s := deploy(2, Options{})
	e.Go("w", func(p *sim.Proc) {
		for i := int64(0); i < 100; i++ {
			s.Insert(p, store.Key(i), store.MakeFields(i))
		}
		for i := int64(0); i < 100; i += 9 {
			if _, err := s.Read(p, store.Key(i)); err != nil {
				t.Errorf("read %d after buffered write: %v", i, err)
			}
		}
	})
	e.Run(0)
}

func TestAutoFlushDisablesBuffering(t *testing.T) {
	e, s := deploy(1, Options{AutoFlush: true})
	var lat sim.Time
	e.Go("w", func(p *sim.Proc) {
		start := p.Now()
		s.Insert(p, store.Key(1), store.MakeFields(1))
		lat = p.Now() - start
	})
	e.Run(0)
	if lat < 100*sim.Microsecond {
		t.Fatalf("autoflush write %v, want a full RPC every time", lat)
	}
}

func TestDiskUsagePerRecordMatchesFig17(t *testing.T) {
	_, s := deploy(1, Options{MemstoreFlushBytes: 4 << 10})
	const n = 5000
	for i := int64(0); i < n; i++ {
		s.Load(store.Key(i), store.MakeFields(i))
	}
	per := float64(s.DiskUsage()) / n
	if per < 700 || per > 800 {
		t.Fatalf("bytes/record = %.0f, want ~750 (Fig 17)", per)
	}
}
