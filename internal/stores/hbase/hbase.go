// Package hbase models Apache HBase 0.90 on Hadoop as benchmarked in the
// paper (§4.1): a master plus region servers colocated with HDFS DataNodes,
// ordered region partitioning of the (hashed) key space, and per-region
// LSM storage (HLog + MemStore + HFiles) whose blocks live in the simulated
// DFS.
//
// The asymmetry that dominates the paper's results is reproduced
// structurally:
//
//   - writes go through the client-side write buffer (autoFlush off in the
//     YCSB client), so an individual put costs microseconds and only every
//     Nth put pays the batched RPC — HBase's write latency is the lowest of
//     all systems (Fig 5/8/11), and throughput rises steeply with the write
//     ratio (Fig 9, Fig 18);
//   - reads traverse the 0.90-era RegionServer/DFSClient read path, which is
//     expensive per operation, so read throughput is the lowest and read
//     latency at saturation the highest (50–90 ms for Workload R, up to ~1 s
//     for Workload W where reads queue behind write batches, flushes and
//     compactions).
package hbase

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/dfs"
	"repro/internal/lsm"
	"repro/internal/sim"
	"repro/internal/sstable"
	"repro/internal/store"
	"repro/internal/stores/base"
)

// Options tunes the model.
type Options struct {
	ReadCPU sim.Time // RegionServer get() path cost per read
	// WriteClientCPU is the client-side cost of buffering one put.
	WriteClientCPU sim.Time
	// BatchRecords is the client write-buffer size in records; every
	// BatchRecords-th put pays the flush RPC.
	BatchRecords int
	// BatchRecordCPU is the server-side cost per record in a batched put.
	BatchRecordCPU sim.Time
	ScanCPU        sim.Time // scanner setup cost
	ScanRowCPU     sim.Time // per-returned-row cost
	// Overhead is HFile KeyValue format overhead: the full row key, column
	// family, qualifier, timestamp and lengths are stored with every cell,
	// which is why HBase used ~7.5 GB/node for 0.7 GB of raw data (Fig 17).
	Overhead           sstable.Overhead
	MemstoreFlushBytes int64
	CacheBytes         int64 // block cache + OS cache per node (0 = RAM/2)
	// CompactMin is the compaction threshold: HFiles per tier before a
	// minor compaction merges them (hbase.hstore.compactionThreshold;
	// 0 = the default 4).
	CompactMin int
	// AutoFlush disables the client write buffer (ablation: every put pays
	// a full RPC, as with autoFlush=true).
	AutoFlush bool
	Handlers  int // RPC handler threads per region server
}

func (o *Options) defaults() {
	if o.ReadCPU == 0 {
		o.ReadCPU = 3100 * sim.Microsecond
	}
	if o.WriteClientCPU == 0 {
		o.WriteClientCPU = 25 * sim.Microsecond
	}
	if o.BatchRecords == 0 {
		o.BatchRecords = 128
	}
	if o.BatchRecordCPU == 0 {
		// HBase 0.90's server-side put path is nearly as heavy as its read
		// path; the write buffer saves round trips and latency, not server
		// CPU. Calibrated so Workload W saturates a node around 14K ops/s
		// with high amortized write latency under load (Figs 9/11).
		o.BatchRecordCPU = 550 * sim.Microsecond
	}
	if o.ScanCPU == 0 {
		o.ScanCPU = 2800 * sim.Microsecond
	}
	if o.ScanRowCPU == 0 {
		o.ScanRowCPU = 15 * sim.Microsecond
	}
	if o.Overhead == (sstable.Overhead{}) {
		// 25-byte key + 75 row overhead + 5 cells x (10 + 120) = 750
		// bytes/record -> 7.5 GB per 10M records.
		o.Overhead = sstable.Overhead{PerEntry: 75, PerCell: 120}
	}
	if o.MemstoreFlushBytes == 0 {
		o.MemstoreFlushBytes = 16 << 20
	}
	if o.Handlers == 0 {
		o.Handlers = 30
	}
}

// Store is an HBase deployment.
type Store struct {
	opts    Options
	clust   *cluster.Cluster
	fs      *dfs.FS
	regions []*region
	splits  []string // region split keys: region i holds keys < splits[i]
	// down marks killed region servers (fault injection). HBase 0.90 has
	// no read replicas: a dead region server means its key range is simply
	// unavailable until restart + HLog replay.
	down      []bool
	downCount int
}

// region is one region hosted by the server on the same-index node.
type region struct {
	machine  *cluster.Node
	handlers *sim.Resource
	tree     *lsm.Tree
	buffered int // client write-buffer fill (records since last flush RPC)
}

// hbaseIO routes LSM block traffic through the DFS (RegionServer is
// colocated with its DataNode). Data blocks stay local, but every access
// pays the DataNode protocol cost.
type hbaseIO struct {
	fs      *dfs.FS
	file    *dfs.File
	node    int
	machine *cluster.Node
}

func (io hbaseIO) ReadBlock(p *sim.Proc, bytes int64, random bool) {
	if err := io.fs.ReadAt(p, io.file, 0, bytes, io.node, random); err != nil {
		// Empty file (no flush yet): pay the local read directly.
		io.machine.Compute(p, 150*sim.Microsecond)
		io.machine.DiskRead(p, bytes, random)
	}
}

func (io hbaseIO) WriteRun(p *sim.Proc, bytes int64) {
	// HFile runs are written through the colocated DataNode. Space is
	// accounted by the LSM layer, so back it out of the DFS's accounting
	// to avoid double counting.
	io.fs.Append(p, io.file, bytes, io.node)
	io.machine.AddDiskUsage(-bytes)
}

// New deploys HBase: one region (server) per node, regions pre-split evenly
// across the hashed key space (the YCSB key order is hashed, so ranges are
// uniformly loaded).
func New(c *cluster.Cluster, opts Options) *Store {
	opts.defaults()
	s := &Store{opts: opts, clust: c, fs: dfs.New(c, dfs.Config{})}
	n := len(c.Nodes)
	// Pre-split regions evenly across the numeric key space; fixed-width
	// keys make these valid lexicographic split points.
	step := ^uint64(0) / uint64(n)
	for i := 0; i < n-1; i++ {
		s.splits = append(s.splits, fmt.Sprintf("user%021d", uint64(i+1)*step))
	}
	for i, m := range c.Nodes {
		cache := opts.CacheBytes
		if cache == 0 {
			cache = m.Spec.RAMBytes / 2
		}
		file := &dfs.File{Name: fmt.Sprintf("/hbase/region%d", i)}
		s.regions = append(s.regions, &region{
			machine:  m,
			handlers: sim.NewResource(c.Eng, "hbase-handlers", opts.Handlers),
			tree: lsm.New(lsm.Config{
				Node:       m,
				Seed:       int64(i) + 23,
				FlushBytes: opts.MemstoreFlushBytes,
				Overhead:   opts.Overhead,
				WALWindow:  10 * sim.Millisecond,
				WALSync:    false, // deferred log flush
				CacheBytes: cache,
				CompactMin: opts.CompactMin,
				IO:         hbaseIO{fs: s.fs, file: file, node: i, machine: m},
			}),
		})
	}
	s.down = make([]bool, n)
	return s
}

// Name implements store.Store.
func (s *Store) Name() string { return "hbase" }

// CopiesOnIngest implements store.IngestCopier: puts (buffered or not)
// are applied to the region's arena-backed MemStore immediately, which
// copies field bytes, so callers may reuse a fields buffer across writes.
func (s *Store) CopiesOnIngest() bool { return true }

// SlabBytes implements store.SlabReporter: the retained footprint of every
// region's LSM tree (memstore arenas plus HFile slabs).
func (s *Store) SlabBytes() int64 {
	var total int64
	for _, r := range s.regions {
		total += r.tree.SlabBytes()
	}
	return total
}

// Caps implements store.Store: region scans return globally key-ordered
// rows (regions partition the key space by range), so the query layer can
// plan against them.
func (s *Store) Caps() store.Caps { return store.Caps{Scans: true, Queries: true} }

// ScanStats implements store.ScanStatsReporter: scan-path positioning and
// pruning counters summed across every region's LSM tree.
func (s *Store) ScanStats() (positioned, pruned int64) {
	for _, r := range s.regions {
		pos, pr := r.tree.ScanStats()
		positioned += pos
		pruned += pr
	}
	return positioned, pruned
}

// regionIndex routes a key to its region by lexicographic range.
func (s *Store) regionIndex(key string) int {
	return sort.SearchStrings(s.splits, key+"\x00") // first split > key
}

func (s *Store) regionFor(key string) *region {
	return s.regions[s.regionIndex(key)]
}

// Read implements store.Store.
func (s *Store) Read(p *sim.Proc, key string) (store.FieldsView, error) {
	ri := s.regionIndex(key)
	if s.down[ri] {
		return store.FieldsView{}, store.ErrUnavailable
	}
	r := s.regions[ri]
	var out store.FieldsView
	var ok bool
	base.Roundtrip(p, r.machine, base.ReqHeader, base.RecordWire, func() {
		r.handlers.Acquire(p)
		r.machine.Compute(p, s.opts.ReadCPU)
		out, ok = r.tree.Get(p, key)
		r.handlers.Release()
	})
	if !ok {
		return store.FieldsView{}, store.ErrNotFound
	}
	return out, nil
}

func (s *Store) write(p *sim.Proc, key string, f store.Fields) error {
	ri := s.regionIndex(key)
	if s.down[ri] {
		return store.ErrUnavailable
	}
	r := s.regions[ri]
	if s.opts.AutoFlush {
		base.Roundtrip(p, r.machine, base.ReqHeader+base.RecordWire, base.AckWire, func() {
			r.handlers.Acquire(p)
			r.machine.Compute(p, s.opts.BatchRecordCPU*4) // per-op RPC path
			r.tree.Put(p, key, f)
			r.handlers.Release()
		})
		return nil
	}
	// Client write buffer: the put lands in the client buffer and the data
	// reaches the region's memstore when the buffer flushes. The model
	// applies the record immediately (deferred timing) and charges the
	// batched RPC to every BatchRecords-th writer.
	p.Sleep(s.opts.WriteClientCPU)
	r.tree.PutDeferred(p.Engine(), key, f)
	r.buffered++
	if r.buffered >= s.opts.BatchRecords {
		batch := r.buffered
		r.buffered = 0
		base.Roundtrip(p, r.machine, int64(batch)*base.RecordWire, base.AckWire, func() {
			r.handlers.Acquire(p)
			r.machine.Compute(p, sim.Time(batch)*s.opts.BatchRecordCPU)
			r.handlers.Release()
		})
	}
	return nil
}

// Insert implements store.Store.
func (s *Store) Insert(p *sim.Proc, key string, f store.Fields) error {
	return s.write(p, key, f)
}

// Update implements store.Store.
func (s *Store) Update(p *sim.Proc, key string, f store.Fields) error {
	return s.write(p, key, f)
}

// Scan implements store.Store. Regions store rows in key order, so a scan
// touches the region owning the start key and continues into successor
// regions only when the first cannot satisfy the count; HBase scans
// therefore cost about the same as reads (§5.4).
//
// The region walk charges every RPC before returning; the cursor wraps the
// gathered rows, so consumption is host-side only — the same virtual-time
// sequence the historical materialized Scan charged.
func (s *Store) Scan(p *sim.Proc, start string, count int) (store.Cursor, error) {
	var out []store.Record
	next := start
	for ri := s.regionIndex(start); ri < len(s.regions) && len(out) < count; ri++ {
		if s.down[ri] {
			// The scanner hits an unavailable region mid-range; without
			// region reassignment the scan cannot proceed.
			return nil, store.ErrUnavailable
		}
		r := s.regions[ri]
		want := count - len(out)
		base.Roundtrip(p, r.machine, base.ReqHeader, int64(want)*base.RecordWire, func() {
			r.handlers.Acquire(p)
			r.machine.Compute(p, s.opts.ScanCPU)
			rows := r.tree.Scan(p, next, want)
			r.machine.Compute(p, sim.Time(len(rows))*s.opts.ScanRowCPU)
			for _, e := range rows {
				out = append(out, store.Record{Key: e.Key, Fields: e.Fields})
			}
			r.handlers.Release()
		})
		if ri < len(s.splits) {
			next = s.splits[ri]
		}
	}
	return store.NewSliceCursor(out), nil
}

// Load implements store.Store.
func (s *Store) Load(key string, f store.Fields) error {
	s.regionFor(key).tree.LoadDirect(key, f)
	return nil
}

// DiskUsage implements store.Store.
func (s *Store) DiskUsage() int64 {
	var total int64
	for _, r := range s.regions {
		total += r.tree.DiskBytes()
	}
	return total
}

// Tree exposes a region's LSM engine for tests.
func (s *Store) Tree(i int) *lsm.Tree { return s.regions[i].tree }

// replayCPUPerByte is the CPU cost of reapplying one HLog byte on restart.
const replayCPUPerByte = 10 * sim.Nanosecond

// KillNode implements fault.Target: the region server dies; its HLog tail
// is dropped and its client write buffer is lost. The key range it serves
// errors until restart.
func (s *Store) KillNode(i int) {
	if s.down[i] {
		return
	}
	s.down[i] = true
	s.downCount++
	r := s.regions[i]
	r.buffered = 0 // the client-side buffer for a dead region is discarded
	r.tree.Log().Close()
}

// RestartNode implements fault.Target: HLog replay — re-read the un-flushed
// MemStore tail through the colocated DataNode and reapply it — before the
// region serves again.
func (s *Store) RestartNode(p *sim.Proc, i int) {
	if !s.down[i] {
		return
	}
	r := s.regions[i]
	if replay := r.tree.MemBytes(); replay > 0 {
		r.machine.DiskRead(p, replay, false)
		r.machine.Compute(p, sim.Time(replay)*replayCPUPerByte)
	}
	r.tree.Log().Reopen()
	s.down[i] = false
	s.downCount--
}

// NodeDown reports whether region server i is down (diagnostics/tests).
func (s *Store) NodeDown(i int) bool { return s.down[i] }

var _ store.Store = (*Store)(nil)
