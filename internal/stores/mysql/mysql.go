// Package mysql models the paper's MySQL setup (§4.6): independent
// single-node MySQL servers with InnoDB, sharded on the client side by the
// YCSB RDBMS client's hash ("which connects to the databases using JDBC and
// shards the data using a consistent hashing algorithm" — well balanced,
// unlike Jedis). Each server runs a B+tree with a buffer pool sized to the
// node's memory and writes a binary log, which the paper found doubles the
// disk footprint (§5.7).
//
// Scans reproduce the paper's pathology (§5.4–§5.5): the sharded client
// translates a scan into per-shard "SELECT ... WHERE key >= ?" queries
// issued sequentially, and InnoDB's MVCC makes range reads degrade when
// concurrent inserts pile up unpurged row versions. With 6% inserts
// (Workload RS) scans stay usable on small clusters; with 50% inserts
// (Workload RSW) version-chain traversal collapses throughput to a few
// operations per second, and fan-out over more shards multiplies the cost.
package mysql

import (
	"sort"

	"repro/internal/btree"
	"repro/internal/cluster"
	"repro/internal/hashring"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/stores/base"
	"repro/internal/wal"
)

// Options tunes the model.
type Options struct {
	ReadCPU  sim.Time // server-side point SELECT cost (parse, plan, btree)
	WriteCPU sim.Time // INSERT cost before log/btree I/O
	// UpdateCPU is the server-side cost of an in-place UPDATE ... WHERE
	// key = ?: one statement that locates the row and rewrites it, so it
	// lands between ReadCPU (it skips result serialization) and
	// ReadCPU+WriteCPU (parse/plan and the index descent are paid once,
	// not twice).
	UpdateCPU sim.Time
	// ScanRowCPU is the per-visited-row cost of a range SELECT.
	ScanRowCPU sim.Time
	// TailRowCPU is the per-row cost of the sharded client's unbounded
	// "key >= start" scan, which materializes the table tail until the
	// client abandons the cursor (§5.4: "in the case of MySQL this is
	// inefficient").
	TailRowCPU sim.Time
	// VersionRowCPU is the extra cost per unpurged row version traversed
	// by a range read (MVCC read view checks).
	VersionRowCPU sim.Time
	// PurgeInterval is how often the background purge runs.
	PurgeInterval sim.Time
	// PurgeCapPerSec bounds how many row versions the purge thread clears
	// per second. Insert rates above it grow an unbounded history backlog
	// that range reads must traverse — the runaway that collapses Workload
	// RSW (50% inserts) while leaving Workload RS (6% inserts) healthy.
	PurgeCapPerSec int64
	// ScaleComp converts scaled structure sizes back to paper-equivalent
	// row counts for the tail-scan cost (the harness passes 1/scale), so
	// scan costs are invariant under dataset scaling.
	ScaleComp float64
	// BinLog enables the binary log (paper default on; ablation off).
	BinLog bool
	// BufferPoolFraction of node RAM given to InnoDB.
	BufferPoolFraction float64
	// LeafCap encodes rows per 16K page (~94 for 75-byte rows with InnoDB
	// row overhead and a ~70% fill factor -> 2.5 GB of table for 10M rows;
	// the binlog doubles it to the ~5 GB/node of Fig 17).
	LeafCap int
	// LegacyLoad disables the B-tree's deferred bulk build and loads via
	// per-record tree inserts instead (the pre-bulk path, exposed as the
	// btree-bulk=off variant for A/B profiling). Both paths produce
	// bit-identical trees and charges; legacy is just slower host-side.
	LegacyLoad bool
	// ClientThreads is the total number of YCSB threads. Every client
	// thread holds a JDBC connection to every server (§6), so each server
	// pays per-operation thread/connection management overhead that grows
	// with the whole cluster's client count — one reason MySQL's scaling
	// flattens near 8-12 nodes.
	ClientThreads int
	// PerThreadCPU is that per-operation overhead per client thread.
	PerThreadCPU sim.Time
}

func (o *Options) defaults() {
	if o.ReadCPU == 0 {
		o.ReadCPU = 290 * sim.Microsecond
	}
	if o.WriteCPU == 0 {
		o.WriteCPU = 330 * sim.Microsecond
	}
	if o.UpdateCPU == 0 {
		o.UpdateCPU = 370 * sim.Microsecond
	}
	if o.ScanRowCPU == 0 {
		o.ScanRowCPU = 900 * sim.Nanosecond
	}
	if o.TailRowCPU == 0 {
		o.TailRowCPU = 40 * sim.Nanosecond
	}
	if o.VersionRowCPU == 0 {
		o.VersionRowCPU = 1 * sim.Microsecond
	}
	if o.PurgeInterval == 0 {
		o.PurgeInterval = sim.Second
	}
	if o.PurgeCapPerSec == 0 {
		o.PurgeCapPerSec = 5000
	}
	if o.ScaleComp == 0 {
		o.ScaleComp = 1
	}
	if o.BufferPoolFraction == 0 {
		o.BufferPoolFraction = 0.8
	}
	if o.LeafCap == 0 {
		o.LeafCap = 94
	}
	if o.PerThreadCPU == 0 {
		o.PerThreadCPU = 500 * sim.Nanosecond
	}
}

// connOverhead is the per-op server cost of managing all client connections.
func (o *Options) connOverhead() sim.Time {
	return sim.Time(o.ClientThreads) * o.PerThreadCPU
}

// Store is the sharded MySQL deployment.
type Store struct {
	opts   Options
	clust  *cluster.Cluster
	ring   *hashring.Mod
	shards []*shard
	// down marks killed servers (fault injection). Client-side sharding
	// has no failover: a dead shard's keys are unavailable until restart.
	down      []bool
	downCount int
}

type shard struct {
	node     *cluster.Node
	db       *btree.Tree
	redo     *wal.Log
	binlog   *wal.Log
	binBytes int64
	// unpurged counts row versions created since the last purge pass.
	unpurged int64
	purgerUp bool
	// replayMark is the redo-log watermark of the last checkpoint
	// (restart); crash recovery replays the bytes appended since.
	replayMark int64
}

// binlogBytesPerRecord is the statement-based binary log cost of one
// insert (full SQL text plus event headers); it makes the binary log
// roughly double MySQL's disk footprint, as the paper reports (§5.7).
const binlogBytesPerRecord = 250

// New deploys one MySQL server per node.
func New(c *cluster.Cluster, opts Options) *Store {
	opts.defaults()
	s := &Store{opts: opts, clust: c, ring: hashring.NewMod(len(c.Nodes))}
	for _, n := range c.Nodes {
		pageSize := int64(16 << 10)
		poolBytes := int64(float64(n.Spec.RAMBytes) * opts.BufferPoolFraction)
		s.shards = append(s.shards, &shard{
			node: n,
			db: btree.New(btree.Config{
				PageSize:    pageSize,
				BufferPages: int(poolBytes / pageSize),
				LeafCap:     opts.LeafCap,
				InternalCap: 512,
			}),
			redo:   wal.New(n, 5*sim.Millisecond),
			binlog: wal.New(n, 5*sim.Millisecond),
		})
	}
	s.down = make([]bool, len(c.Nodes))
	return s
}

// Default returns the paper's configuration: binary log enabled.
func Default(c *cluster.Cluster) *Store {
	return New(c, Options{BinLog: true})
}

// Name implements store.Store.
func (s *Store) Name() string { return "mysql" }

// CopiesOnIngest implements store.IngestCopier: every write path lands in
// the slab-backed B-tree, which copies key and field bytes into its own
// arenas, so callers may reuse a fields buffer across writes.
func (s *Store) CopiesOnIngest() bool { return true }

// SlabBytes implements store.SlabReporter: the retained footprint of every
// shard's B-tree slabs.
func (s *Store) SlabBytes() int64 {
	var total int64
	for _, sh := range s.shards {
		total += sh.db.SlabBytes()
	}
	return total
}

// Caps implements store.Store: range queries over the clustered index
// return key-ordered rows (shard results are merge-sorted client-side), so
// the query layer can plan against them.
func (s *Store) Caps() store.Caps { return store.Caps{Scans: true, Queries: true} }

func (s *Store) shard(key string) *shard { return s.shards[s.ring.Owner(key)] }

func (s *Store) shardIndex(key string) int { return s.ring.Owner(key) }

func chargeIO(p *sim.Proc, n *cluster.Node, io btree.IOStats, pageSize int64) {
	for i := 0; i < io.Misses; i++ {
		n.DiskRead(p, pageSize, true)
	}
	for i := 0; i < io.DirtyWritebacks; i++ {
		n.DiskWrite(p, pageSize, true)
	}
}

// Read implements store.Store.
func (s *Store) Read(p *sim.Proc, key string) (store.FieldsView, error) {
	si := s.shardIndex(key)
	if s.down[si] {
		return store.FieldsView{}, store.ErrUnavailable
	}
	sh := s.shards[si]
	var out store.FieldsView
	var ok bool
	base.Roundtrip(p, sh.node, base.ReqHeader, base.RecordWire, func() {
		sh.node.Compute(p, s.opts.ReadCPU+s.opts.connOverhead())
		var io btree.IOStats
		out, ok, io = sh.db.Get(key)
		chargeIO(p, sh.node, io, 16<<10)
	})
	if !ok {
		return store.FieldsView{}, store.ErrNotFound
	}
	return out, nil
}

// ensurePurger runs the background MVCC purge loop for a shard. Its
// clearing rate is capped, so sustained insert rates above PurgeCapPerSec
// grow the version backlog without bound.
func (s *Store) ensurePurger(e *sim.Engine, sh *shard) {
	if sh.purgerUp {
		return
	}
	sh.purgerUp = true
	e.Go("mysql-purge", func(p *sim.Proc) {
		for sh.unpurged > 0 {
			p.Sleep(s.opts.PurgeInterval)
			batch := int64(float64(s.opts.PurgeCapPerSec) * s.opts.PurgeInterval.Seconds())
			if batch > sh.unpurged {
				batch = sh.unpurged
			}
			sh.node.Compute(p, sim.Time(batch)*200*sim.Nanosecond)
			sh.unpurged -= batch
		}
		sh.purgerUp = false
	})
}

func (s *Store) write(p *sim.Proc, key string, f store.Fields) error {
	si := s.shardIndex(key)
	if s.down[si] {
		return store.ErrUnavailable
	}
	sh := s.shards[si]
	base.Roundtrip(p, sh.node, base.ReqHeader+base.RecordWire, base.AckWire, func() {
		sh.node.Compute(p, s.opts.WriteCPU+s.opts.connOverhead())
		sh.redo.Append(p, int64(store.RawRecordBytes), false)
		if s.opts.BinLog {
			sh.binlog.Append(p, binlogBytesPerRecord, false)
			sh.binBytes += binlogBytesPerRecord
		}
		io := sh.db.Put(key, f)
		chargeIO(p, sh.node, io, 16<<10)
		sh.unpurged++
		s.ensurePurger(p.Engine(), sh)
	})
	return nil
}

// Insert implements store.Store.
func (s *Store) Insert(p *sim.Proc, key string, f store.Fields) error {
	return s.write(p, key, f)
}

// Update implements store.Store: a read-modify-write UPDATE ... WHERE
// key = ?. Unlike Insert, the row is rewritten in place — the index descent
// pays page-read charges, only the leaf holding the row is dirtied, and no
// page is allocated — while the redo log and (statement-based) binary log
// still append, and the old row version joins the MVCC purge backlog as an
// undo record. Updating an absent key pays the full descent and returns
// store.ErrNotFound.
func (s *Store) Update(p *sim.Proc, key string, f store.Fields) error {
	si := s.shardIndex(key)
	if s.down[si] {
		return store.ErrUnavailable
	}
	sh := s.shards[si]
	var found bool
	base.Roundtrip(p, sh.node, base.ReqHeader+base.RecordWire, base.AckWire, func() {
		sh.node.Compute(p, s.opts.UpdateCPU+s.opts.connOverhead())
		var io btree.IOStats
		found, io = sh.db.Update(key, f)
		chargeIO(p, sh.node, io, 16<<10)
		if !found {
			return
		}
		sh.redo.Append(p, int64(store.RawRecordBytes), false)
		if s.opts.BinLog {
			// Statement-based logging: an UPDATE statement costs about
			// what the INSERT that created the row did.
			sh.binlog.Append(p, binlogBytesPerRecord, false)
			sh.binBytes += binlogBytesPerRecord
		}
		sh.unpurged++ // the overwritten version joins the undo history
		s.ensurePurger(p.Engine(), sh)
	})
	if !found {
		return store.ErrNotFound
	}
	return nil
}

// Scan implements store.Store.
//
// Single-node deployments use the plain (unsharded) JDBC client: the range
// query honors the row limit and costs a short B-tree range read plus the
// traversal of any unpurged row versions. Sharded deployments (§5.4) issue
// the per-shard "key >= start" query sequentially to every shard and merge
// client-side; each shard materializes its table tail until the client
// abandons the cursor, which is why scan throughput collapses for two or
// more nodes (Figs 12-14).
//
// The JDBC result set is fully fetched (and, sharded, merge-sorted) before
// the client sees a row, so the cursor wraps the materialized result: all
// virtual time is charged here, matching the historical materialized Scan.
func (s *Store) Scan(p *sim.Proc, start string, count int) (store.Cursor, error) {
	// The client-side merge needs every shard's answer; any dead shard
	// fails the whole scan.
	if s.downCount > 0 {
		return nil, store.ErrUnavailable
	}
	if len(s.shards) == 1 {
		sh := s.shards[0]
		var rows []btree.Entry
		base.Roundtrip(p, sh.node, base.ReqHeader, int64(count)*base.RecordWire, func() {
			s.scanShardLimit(p, sh, start, count, &rows)
		})
		return store.NewSliceCursor(toRecords(rows, count)), nil
	}
	var all []btree.Entry
	for _, sh := range s.shards {
		sh := sh
		var rows []btree.Entry
		base.Roundtrip(p, sh.node, base.ReqHeader, int64(count)*base.RecordWire, func() {
			s.scanShardTail(p, sh, start, count, &rows)
		})
		all = append(all, rows...)
	}
	return store.NewSliceCursor(toRecords(mergeSorted(all), count)), nil
}

// versionPenalty is the MVCC read-view cost of traversing unpurged history.
func (s *Store) versionPenalty(sh *shard) sim.Time {
	return sim.Time(float64(sh.unpurged) * float64(s.opts.VersionRowCPU))
}

// scanShardLimit is the limit-respecting single-server range read.
func (s *Store) scanShardLimit(p *sim.Proc, sh *shard, start string, count int, rows *[]btree.Entry) {
	sh.node.Compute(p, s.opts.ReadCPU)
	got, io := sh.db.Scan(start, count)
	chargeIO(p, sh.node, io, 16<<10)
	sh.node.Compute(p, sim.Time(len(got))*s.opts.ScanRowCPU+s.versionPenalty(sh))
	*rows = got
}

// scanShardTail is the sharded client's unbounded tail query. The row count
// is rescaled to paper-equivalent size so the cost does not depend on the
// simulation's dataset scale.
func (s *Store) scanShardTail(p *sim.Proc, sh *shard, start string, count int, rows *[]btree.Entry) {
	sh.node.Compute(p, s.opts.ReadCPU)
	got, io := sh.db.Scan(start, count)
	chargeIO(p, sh.node, io, 16<<10)
	tail, tailIO := sh.db.ScanAllFrom(start)
	chargeIO(p, sh.node, btree.IOStats{Misses: tailIO.Misses / 8}, 16<<10)
	equivRows := float64(tail) * s.opts.ScaleComp
	sh.node.Compute(p, sim.Time(equivRows*float64(s.opts.TailRowCPU))+s.versionPenalty(sh))
	*rows = got
}

func mergeSorted(es []btree.Entry) []btree.Entry {
	out := append([]btree.Entry(nil), es...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

func toRecords(es []btree.Entry, count int) []store.Record {
	if len(es) > count {
		es = es[:count]
	}
	out := make([]store.Record, len(es))
	for i, e := range es {
		out[i] = store.Record{Key: e.Key, Fields: e.Fields}
	}
	return out
}

// Load implements store.Store. The default path buffers into the B-tree's
// deferred bulk build (one batched construction pass when the workload
// starts); LegacyLoad forces the per-record insert path, which produces a
// bit-identical tree at higher host cost.
func (s *Store) Load(key string, f store.Fields) error {
	sh := s.shard(key)
	if s.opts.LegacyLoad {
		sh.db.Put(key, f)
	} else {
		sh.db.Load(key, f)
	}
	if s.opts.BinLog {
		sh.binBytes += binlogBytesPerRecord
		sh.node.AddDiskUsage(binlogBytesPerRecord)
	}
	return nil
}

// DiskUsage implements store.Store: table space plus binary log.
func (s *Store) DiskUsage() int64 {
	var total int64
	for _, sh := range s.shards {
		total += sh.db.DiskBytes() + sh.binBytes
	}
	return total
}

// InnoDB crash-recovery cost model: redo replay since the last checkpoint,
// bounded by the log file size, at ~100 MB/s of CPU.
const (
	replayCPUPerByte     = 10 * sim.Nanosecond
	recoverySegmentBytes = 64 << 20
)

// KillNode implements fault.Target: mysqld dies; the buffered redo/binlog
// tails are lost and the shard's keys error until restart.
func (s *Store) KillNode(i int) {
	if s.down[i] {
		return
	}
	s.down[i] = true
	s.downCount++
	s.shards[i].redo.Close()
	s.shards[i].binlog.Close()
}

// RestartNode implements fault.Target: InnoDB replays the redo log written
// since the last checkpoint before the server accepts connections.
func (s *Store) RestartNode(p *sim.Proc, i int) {
	if !s.down[i] {
		return
	}
	sh := s.shards[i]
	replay := sh.redo.DurableBytes() - sh.replayMark
	if replay > recoverySegmentBytes {
		replay = recoverySegmentBytes
	}
	if replay > 0 {
		sh.node.DiskRead(p, replay, false)
		sh.node.Compute(p, sim.Time(replay)*replayCPUPerByte)
	}
	sh.replayMark = sh.redo.DurableBytes()
	sh.redo.Reopen()
	sh.binlog.Reopen()
	s.down[i] = false
	s.downCount--
}

// NodeDown reports whether shard i is down (diagnostics/tests).
func (s *Store) NodeDown(i int) bool { return s.down[i] }

var _ store.Store = (*Store)(nil)
