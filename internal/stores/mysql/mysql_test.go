package mysql

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/store"
)

func deploy(nodes int, opts Options) (*sim.Engine, *Store) {
	e := sim.NewEngine(1)
	c := cluster.New(e, cluster.ClusterM(nodes).Scale(0.01))
	return e, New(c, opts)
}

func TestDefaultsFilled(t *testing.T) {
	var o Options
	o.defaults()
	if o.ReadCPU == 0 || o.TailRowCPU == 0 || o.PurgeCapPerSec == 0 || o.ScaleComp != 1 {
		t.Fatalf("defaults not filled: %+v", o)
	}
}

func TestConnOverheadGrowsWithThreads(t *testing.T) {
	few := Options{ClientThreads: 128}
	many := Options{ClientThreads: 1536}
	few.defaults()
	many.defaults()
	if many.connOverhead() <= few.connOverhead() {
		t.Fatal("per-op connection overhead must grow with total client threads (§6)")
	}
}

func TestShardingBalanced(t *testing.T) {
	_, s := deploy(4, Options{})
	for i := int64(0); i < 40000; i++ {
		s.Load(store.Key(i), store.MakeFields(i))
	}
	for i, sh := range s.shards {
		frac := float64(sh.db.Len()) / 40000
		if frac < 0.2 || frac > 0.3 {
			t.Fatalf("shard %d holds %.2f, want ~0.25 (hash-mod shards well)", i, frac)
		}
	}
}

func TestSingleNodeScanHonorsLimit(t *testing.T) {
	e, s := deploy(1, Options{})
	for i := int64(0); i < 10000; i++ {
		s.Load(store.Key(i), store.MakeFields(i))
	}
	var lat sim.Time
	e.Go("r", func(p *sim.Proc) {
		start := p.Now()
		recs, err := store.ScanAll(p, s, store.Key(0), 50)
		lat = p.Now() - start
		if err != nil || len(recs) != 50 {
			t.Errorf("scan: %d recs, %v", len(recs), err)
		}
	})
	e.Run(0)
	if lat > 5*sim.Millisecond {
		t.Fatalf("1-node scan took %v, want fast LIMIT path", lat)
	}
}

func TestShardedScanPaysTailCost(t *testing.T) {
	e, s := deploy(2, Options{ScaleComp: 100})
	for i := int64(0); i < 20000; i++ {
		s.Load(store.Key(i), store.MakeFields(i))
	}
	var lat sim.Time
	e.Go("r", func(p *sim.Proc) {
		start := p.Now()
		recs, err := store.ScanAll(p, s, store.Key(0), 50)
		lat = p.Now() - start
		if err != nil || len(recs) != 50 {
			t.Errorf("scan: %d recs, %v", len(recs), err)
		}
	})
	e.Run(0)
	// ~10k rows/shard tail x comp 100 x 40ns = ~40ms/shard x 2 shards.
	if lat < 50*sim.Millisecond {
		t.Fatalf("sharded scan took %v, want expensive tail query (§5.4)", lat)
	}
}

func TestPurgeBacklogGrowsUnderHeavyInserts(t *testing.T) {
	e, s := deploy(1, Options{PurgeCapPerSec: 100})
	// Sustained inserts above the purge cap leave a growing backlog.
	e.Go("w", func(p *sim.Proc) {
		for i := int64(0); i < 3000; i++ {
			s.Insert(p, store.Key(i), store.MakeFields(i))
		}
	})
	e.Run(3 * sim.Second)
	if s.shards[0].unpurged < 1000 {
		t.Fatalf("backlog = %d after insert burst with cap 100/s, want growth", s.shards[0].unpurged)
	}
	// Let the purger drain with no more writes arriving.
	drainFor := sim.Time(s.shards[0].unpurged/100+5) * sim.Second
	e.Run(e.Now() + drainFor)
	if s.shards[0].unpurged != 0 {
		t.Fatalf("backlog = %d after drain window, want 0", s.shards[0].unpurged)
	}
}

func TestVersionPenaltySlowsScan(t *testing.T) {
	e, s := deploy(1, Options{})
	for i := int64(0); i < 5000; i++ {
		s.Load(store.Key(i), store.MakeFields(i))
	}
	s.shards[0].unpurged = 50000 // simulate purge lag
	var lat sim.Time
	e.Go("r", func(p *sim.Proc) {
		start := p.Now()
		s.Scan(p, store.Key(0), 50)
		lat = p.Now() - start
	})
	e.Run(0)
	if lat < 40*sim.Millisecond {
		t.Fatalf("scan with 50k unpurged versions took %v, want MVCC penalty", lat)
	}
}

func TestBinlogAccounting(t *testing.T) {
	_, with := deploy(1, Options{BinLog: true})
	_, without := deploy(1, Options{BinLog: false})
	for i := int64(0); i < 1000; i++ {
		with.Load(store.Key(i), store.MakeFields(i))
		without.Load(store.Key(i), store.MakeFields(i))
	}
	diff := with.DiskUsage() - without.DiskUsage()
	if diff != 1000*binlogBytesPerRecord {
		t.Fatalf("binlog bytes = %d, want %d", diff, 1000*binlogBytesPerRecord)
	}
}

func TestDefaultConstructor(t *testing.T) {
	e := sim.NewEngine(1)
	c := cluster.New(e, cluster.ClusterM(1).Scale(0.01))
	s := Default(c)
	if !s.opts.BinLog {
		t.Fatal("Default must enable the binary log (paper configuration)")
	}
}

func TestUpdateRewritesInPlace(t *testing.T) {
	e, s := deploy(1, Options{BinLog: true})
	for i := int64(0); i < 5000; i++ {
		s.Load(store.Key(i), store.MakeFields(i))
	}
	tableBytes := s.shards[0].db.DiskBytes()
	binBefore := s.shards[0].binBytes
	var err error
	var backlogPeak int64
	e.Go("u", func(p *sim.Proc) {
		for i := int64(0); i < 500; i++ {
			if uerr := s.Update(p, store.Key(i), store.MakeFields(i)); uerr != nil {
				err = uerr
			}
		}
		// Observed before the background purge thread drains it.
		backlogPeak = s.shards[0].unpurged
	})
	e.Run(0)
	if err != nil {
		t.Fatalf("update: %v", err)
	}
	if got := s.shards[0].db.DiskBytes(); got != tableBytes {
		t.Fatalf("updates grew the table %d -> %d bytes; must rewrite in place", tableBytes, got)
	}
	if s.shards[0].binBytes <= binBefore {
		t.Fatal("updates must append to the statement-based binary log")
	}
	if backlogPeak == 0 {
		t.Fatal("updates must grow the MVCC undo backlog")
	}
}

func TestUpdateMissingKeyErrors(t *testing.T) {
	e, s := deploy(1, Options{})
	s.Load(store.Key(1), store.MakeFields(1))
	e.Go("u", func(p *sim.Proc) {
		if err := s.Update(p, store.Key(99999), store.MakeFields(99999)); err != store.ErrNotFound {
			t.Errorf("update of absent key: err = %v, want ErrNotFound", err)
		}
	})
	e.Run(0)
}

// TestLegacyLoadEquivalent pins the btree-bulk=off contract at the store
// level: the legacy per-record load produces the same footprint and the
// same simulated read cost as the deferred bulk build.
func TestLegacyLoadEquivalent(t *testing.T) {
	eBulk, bulk := deploy(2, Options{BinLog: true})
	eLegacy, legacy := deploy(2, Options{BinLog: true, LegacyLoad: true})
	for i := int64(0); i < 20000; i++ {
		bulk.Load(store.Key(i), store.MakeFields(i))
		legacy.Load(store.Key(i), store.MakeFields(i))
	}
	if bulk.DiskUsage() != legacy.DiskUsage() {
		t.Fatalf("disk usage diverged: bulk %d vs legacy %d", bulk.DiskUsage(), legacy.DiskUsage())
	}
	var latBulk, latLegacy sim.Time
	eBulk.Go("r", func(p *sim.Proc) {
		start := p.Now()
		s := bulk
		for i := int64(0); i < 100; i++ {
			s.Read(p, store.Key(i*97))
		}
		latBulk = p.Now() - start
	})
	eLegacy.Go("r", func(p *sim.Proc) {
		start := p.Now()
		s := legacy
		for i := int64(0); i < 100; i++ {
			s.Read(p, store.Key(i*97))
		}
		latLegacy = p.Now() - start
	})
	eBulk.Run(0)
	eLegacy.Run(0)
	if latBulk != latLegacy {
		t.Fatalf("read cost diverged: bulk %v vs legacy %v", latBulk, latLegacy)
	}
}
