// Package voltdb models VoltDB 2.1 as benchmarked in the paper (§4.5): a
// shared-nothing, in-memory, partitioned relational engine with six
// single-threaded execution sites per host. Reads, writes and inserts are
// single-partition stored procedures; scans are multi-partition
// transactions.
//
// The paper's central VoltDB observation — excellent single-node throughput
// but *negative* scaling beyond one node with the synchronous YCSB client
// (§5.1, §6, footnote on Hugg's asynchronous benchmark) — is reproduced via
// the global transaction ordering path: with more than one host, every
// transaction passes through cluster-wide initiation whose per-transaction
// cost grows with the number of hosts, and a synchronous client cannot
// amortize that coordination across batched transactions the way VoltDB's
// asynchronous API does. Multi-partition transactions additionally fan out
// to one site on every host and block each of them.
package voltdb

import (
	"sort"

	"repro/internal/cluster"
	"repro/internal/hashring"
	"repro/internal/memtable"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/stores/base"
)

// Options tunes the model.
type Options struct {
	SitesPerHost int      // single-threaded partitions per host (paper: 6)
	ExecCPU      sim.Time // stored procedure execution cost on a site
	// OrderPerHost is the per-transaction global-ordering cost per host in
	// the cluster (zero cost on single-host deployments).
	OrderPerHost sim.Time
	// MPFanoutCPU is the per-site cost of a multi-partition transaction.
	MPFanoutCPU sim.Time
	ScanRowCPU  sim.Time
	// Async models VoltDB's asynchronous client (ablation): transaction
	// ordering is pipelined, so the ordering cost is not serialized through
	// a single global sequencer.
	Async bool
}

func (o *Options) defaults() {
	if o.SitesPerHost == 0 {
		o.SitesPerHost = 6
	}
	if o.ExecCPU == 0 {
		o.ExecCPU = 110 * sim.Microsecond
	}
	if o.OrderPerHost == 0 {
		o.OrderPerHost = 25 * sim.Microsecond
	}
	if o.MPFanoutCPU == 0 {
		o.MPFanoutCPU = 180 * sim.Microsecond
	}
	if o.ScanRowCPU == 0 {
		o.ScanRowCPU = 4 * sim.Microsecond
	}
}

// Store is a VoltDB deployment.
type Store struct {
	opts  Options
	clust *cluster.Cluster
	ring  *hashring.Mod // partition router over hosts*sites partitions
	hosts []*host
	// sequencer is the cluster-wide transaction initiation/ordering path.
	sequencer *sim.Resource
	// down marks killed hosts (fault injection). The paper ran without
	// k-safety, so a dead host's partitions are unavailable until restart.
	down      []bool
	downCount int
}

// host is one VoltDB server process.
type host struct {
	machine *cluster.Node
	sites   []*site
}

// site is a single-threaded partition executor with its partition's data.
type site struct {
	exec *sim.Resource // capacity 1: the site thread
	data *memtable.Memtable
}

// New deploys VoltDB across the cluster.
func New(c *cluster.Cluster, opts Options) *Store {
	opts.defaults()
	s := &Store{opts: opts, clust: c}
	s.ring = hashring.NewMod(len(c.Nodes) * opts.SitesPerHost)
	s.sequencer = sim.NewResource(c.Eng, "voltdb-sequencer", 1)
	for i, m := range c.Nodes {
		h := &host{machine: m}
		for j := 0; j < opts.SitesPerHost; j++ {
			h.sites = append(h.sites, &site{
				exec: sim.NewResource(c.Eng, "voltdb-site", 1),
				data: memtable.New(int64(i*opts.SitesPerHost+j) + 31),
			})
		}
		s.hosts = append(s.hosts, h)
	}
	s.down = make([]bool, len(c.Nodes))
	return s
}

// Name implements store.Store.
func (s *Store) Name() string { return "voltdb" }

// CopiesOnIngest implements store.IngestCopier: each site's partition
// data is an arena-backed memtable that copies field bytes, so callers
// may reuse a fields buffer across writes.
func (s *Store) CopiesOnIngest() bool { return true }

// SlabBytes implements store.SlabReporter: the retained footprint of every
// site's memtable arenas.
func (s *Store) SlabBytes() int64 {
	var total int64
	for _, h := range s.hosts {
		for _, st := range h.sites {
			total += st.data.SlabBytes()
		}
	}
	return total
}

// Caps implements store.Store: the multi-partition scan gathers and sorts
// every site's rows, so results are key-ordered and the query layer can
// plan against them.
func (s *Store) Caps() store.Caps { return store.Caps{Scans: true, Queries: true} }

// route returns the host and site owning key.
func (s *Store) route(key string) (*host, *site) {
	part := s.ring.Owner(key)
	h := s.hosts[part/s.opts.SitesPerHost]
	return h, h.sites[part%s.opts.SitesPerHost]
}

// order pays the global transaction initiation cost. On one host this is
// local and free; on multiple hosts each transaction costs OrderPerHost x
// hosts, serialized through the cluster-wide sequencer for synchronous
// clients.
func (s *Store) order(p *sim.Proc, multiPartition bool) {
	n := len(s.hosts)
	if n <= 1 {
		return
	}
	cost := sim.Time(n) * s.opts.OrderPerHost
	if multiPartition {
		cost *= 3
	}
	if s.opts.Async {
		// Pipelined initiation: ordering overlaps with execution.
		p.Sleep(cost / 4)
		return
	}
	p.Use(s.sequencer, cost)
}

// singlePartition runs fn on the owning site as a single-partition txn.
// With a host down the transaction fails if either the owner or the
// arrival host is dead: no k-safety means the partition has no replica,
// and a dead arrival host drops the client's connection.
func (s *Store) singlePartition(p *sim.Proc, key string, reqBytes, respBytes int64, fn func(*host, *site)) error {
	part := s.ring.Owner(key)
	hi := part / s.opts.SitesPerHost
	h := s.hosts[hi]
	st := h.sites[part%s.opts.SitesPerHost]
	// The synchronous client connects to all hosts; the arrival host
	// forwards to the owner when necessary (round-trip within the cluster).
	ai := p.Rand().Intn(len(s.hosts))
	if s.downCount > 0 && (s.down[hi] || s.down[ai]) {
		return store.ErrUnavailable
	}
	arrival := s.hosts[ai]
	serve := func() {
		s.order(p, false)
		st.exec.Acquire(p)
		h.machine.Compute(p, s.opts.ExecCPU)
		fn(h, st)
		st.exec.Release()
	}
	base.Roundtrip(p, arrival.machine, reqBytes, respBytes, func() {
		if arrival == h {
			serve()
			return
		}
		base.Forward(p, arrival.machine, h.machine, reqBytes, respBytes, serve)
	})
	return nil
}

// Read implements store.Store.
func (s *Store) Read(p *sim.Proc, key string) (store.FieldsView, error) {
	var out store.FieldsView
	var ok bool
	err := s.singlePartition(p, key, base.ReqHeader, base.RecordWire, func(h *host, st *site) {
		out, ok = st.data.Get(key)
	})
	if err != nil {
		return store.FieldsView{}, err
	}
	if !ok {
		return store.FieldsView{}, store.ErrNotFound
	}
	return out, nil
}

func (s *Store) write(p *sim.Proc, key string, f store.Fields) error {
	return s.singlePartition(p, key, base.ReqHeader+base.RecordWire, base.AckWire, func(h *host, st *site) {
		st.data.Put(key, f)
	})
}

// Insert implements store.Store.
func (s *Store) Insert(p *sim.Proc, key string, f store.Fields) error {
	return s.write(p, key, f)
}

// Update implements store.Store.
func (s *Store) Update(p *sim.Proc, key string, f store.Fields) error {
	return s.write(p, key, f)
}

// Scan implements store.Store: a multi-partition transaction that blocks
// one site on every host while the fragment runs. The transaction commits
// — every fragment charged, rows gathered and sorted — before the cursor
// is returned, matching the historical materialized Scan's charges.
func (s *Store) Scan(p *sim.Proc, start string, count int) (store.Cursor, error) {
	ai := p.Rand().Intn(len(s.hosts))
	// A multi-partition transaction needs a fragment from every host.
	if s.downCount > 0 {
		return nil, store.ErrUnavailable
	}
	arrival := s.hosts[ai]
	var all []store.Record
	base.Roundtrip(p, arrival.machine, base.ReqHeader, int64(count)*base.RecordWire, func() {
		s.order(p, true)
		for _, h := range s.hosts {
			h := h
			frag := func() {
				for _, st := range h.sites {
					st.exec.Acquire(p)
					h.machine.Compute(p, s.opts.MPFanoutCPU/sim.Time(s.opts.SitesPerHost))
					rows := st.data.Scan(start, count)
					h.machine.Compute(p, sim.Time(len(rows))*s.opts.ScanRowCPU)
					for _, e := range rows {
						all = append(all, store.Record{Key: e.Key, Fields: e.Fields})
					}
					st.exec.Release()
				}
			}
			if h == arrival {
				frag()
				continue
			}
			base.Forward(p, arrival.machine, h.machine, base.ReqHeader, int64(count)*base.RecordWire, frag)
		}
	})
	sort.Slice(all, func(i, j int) bool { return all[i].Key < all[j].Key })
	if len(all) > count {
		all = all[:count]
	}
	return store.NewSliceCursor(all), nil
}

// Load implements store.Store.
func (s *Store) Load(key string, f store.Fields) error {
	_, st := s.route(key)
	st.data.Put(key, f)
	return nil
}

// DiskUsage implements store.Store: VoltDB keeps data in memory (excluded
// from the paper's disk experiment).
func (s *Store) DiskUsage() int64 { return 0 }

// snapshotCPUPerByte is the CPU cost of rebuilding partition tables from a
// command-log/snapshot image on rejoin (~100 MB/s).
const snapshotCPUPerByte = 10 * sim.Nanosecond

// KillNode implements fault.Target: the host process dies; without
// k-safety its partitions are gone until restart.
func (s *Store) KillNode(i int) {
	if s.down[i] {
		return
	}
	s.down[i] = true
	s.downCount++
}

// RestartNode implements fault.Target: the rejoining host reloads its
// partitions from the snapshot before serving again.
func (s *Store) RestartNode(p *sim.Proc, i int) {
	if !s.down[i] {
		return
	}
	h := s.hosts[i]
	var bytes int64
	for _, st := range h.sites {
		bytes += st.data.Bytes()
	}
	if bytes > 0 {
		h.machine.DiskRead(p, bytes, false)
		h.machine.Compute(p, sim.Time(bytes)*snapshotCPUPerByte)
	}
	s.down[i] = false
	s.downCount--
}

// NodeDown reports whether host i is down (diagnostics/tests).
func (s *Store) NodeDown(i int) bool { return s.down[i] }

var _ store.Store = (*Store)(nil)
