package voltdb

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/store"
)

func deploy(nodes int, opts Options) (*sim.Engine, *Store) {
	e := sim.NewEngine(1)
	c := cluster.New(e, cluster.ClusterM(nodes).Scale(0.01))
	return e, New(c, opts)
}

func TestDefaultsFilled(t *testing.T) {
	var o Options
	o.defaults()
	if o.SitesPerHost != 6 {
		t.Fatalf("sites per host = %d, want the paper's 6", o.SitesPerHost)
	}
	if o.ExecCPU == 0 || o.OrderPerHost == 0 {
		t.Fatalf("defaults not filled: %+v", o)
	}
}

func TestRouteCoversAllSites(t *testing.T) {
	_, s := deploy(2, Options{})
	seen := map[*site]bool{}
	for i := int64(0); i < 20000; i++ {
		_, st := s.route(store.Key(i))
		seen[st] = true
	}
	if len(seen) != 12 {
		t.Fatalf("keys hit %d sites, want all 12 (2 hosts x 6)", len(seen))
	}
}

func TestSingleHostSkipsOrdering(t *testing.T) {
	e1, s1 := deploy(1, Options{})
	s1.Load(store.Key(1), store.MakeFields(1))
	var one sim.Time
	e1.Go("r", func(p *sim.Proc) {
		start := p.Now()
		s1.Read(p, store.Key(1))
		one = p.Now() - start
	})
	e1.Run(0)

	e4, s4 := deploy(4, Options{})
	s4.Load(store.Key(1), store.MakeFields(1))
	var four sim.Time
	e4.Go("r", func(p *sim.Proc) {
		start := p.Now()
		s4.Read(p, store.Key(1))
		four = p.Now() - start
	})
	e4.Run(0)
	if four <= one {
		t.Fatalf("4-host read %v should exceed 1-host %v (global ordering + forwarding)", four, one)
	}
}

func TestSequencerSerializesSyncClients(t *testing.T) {
	e, s := deploy(4, Options{})
	for i := int64(0); i < 100; i++ {
		s.Load(store.Key(i), store.MakeFields(i))
	}
	var last sim.Time
	const clients = 32
	for i := 0; i < clients; i++ {
		i := i
		e.Go("c", func(p *sim.Proc) {
			s.Read(p, store.Key(int64(i%100)))
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	e.Run(0)
	var o Options
	o.defaults()
	minSerial := sim.Time(clients) * 4 * o.OrderPerHost // 32 txns through the sequencer
	if last < minSerial {
		t.Fatalf("32 sync txns finished at %v, faster than sequencer allows (%v)", last, minSerial)
	}
}

func TestAsyncClientBypassesSequencer(t *testing.T) {
	run := func(async bool) sim.Time {
		e, s := deploy(4, Options{Async: async})
		for i := int64(0); i < 100; i++ {
			s.Load(store.Key(i), store.MakeFields(i))
		}
		var last sim.Time
		for i := 0; i < 32; i++ {
			i := i
			e.Go("c", func(p *sim.Proc) {
				s.Read(p, store.Key(int64(i%100)))
				if p.Now() > last {
					last = p.Now()
				}
			})
		}
		e.Run(0)
		return last
	}
	if a, s := run(true), run(false); a >= s {
		t.Fatalf("async makespan %v should beat sync %v", a, s)
	}
}

func TestMultiPartitionScanBlocksAllSites(t *testing.T) {
	e, s := deploy(2, Options{})
	for i := int64(0); i < 1000; i++ {
		s.Load(store.Key(i), store.MakeFields(i))
	}
	e.Go("r", func(p *sim.Proc) {
		recs, err := store.ScanAll(p, s, store.Key(0), 20)
		if err != nil {
			t.Errorf("scan: %v", err)
			return
		}
		if len(recs) != 20 {
			t.Errorf("scan returned %d", len(recs))
		}
		for i := 1; i < len(recs); i++ {
			if recs[i].Key <= recs[i-1].Key {
				t.Errorf("scan unordered")
			}
		}
	})
	e.Run(0)
}

func TestInMemoryNoDiskUsage(t *testing.T) {
	_, s := deploy(1, Options{})
	for i := int64(0); i < 1000; i++ {
		s.Load(store.Key(i), store.MakeFields(i))
	}
	if s.DiskUsage() != 0 {
		t.Fatal("VoltDB is in-memory; paper excludes it from Fig 17")
	}
}
