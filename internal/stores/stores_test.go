// Package stores_test runs the cross-cutting contract tests every store
// model must satisfy: CRUD correctness through the simulation, scan
// semantics, and load accounting.
package stores_test

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/stores/cassandra"
	"repro/internal/stores/hbase"
	"repro/internal/stores/mysql"
	"repro/internal/stores/redis"
	"repro/internal/stores/voldemort"
	"repro/internal/stores/voltdb"
)

// deployAll builds every store on a fresh small cluster.
func deployAll(t *testing.T, nodes int) map[string]func() (*sim.Engine, store.Store) {
	t.Helper()
	mk := func(build func(c *cluster.Cluster) store.Store) func() (*sim.Engine, store.Store) {
		return func() (*sim.Engine, store.Store) {
			e := sim.NewEngine(1)
			c := cluster.New(e, cluster.ClusterM(nodes).Scale(0.01))
			return e, build(c)
		}
	}
	return map[string]func() (*sim.Engine, store.Store){
		"cassandra": mk(func(c *cluster.Cluster) store.Store {
			return cassandra.New(c, cassandra.Options{MemtableFlushBytes: 64 << 10})
		}),
		"hbase": mk(func(c *cluster.Cluster) store.Store {
			return hbase.New(c, hbase.Options{MemstoreFlushBytes: 64 << 10})
		}),
		"voldemort": mk(func(c *cluster.Cluster) store.Store {
			return voldemort.New(c, voldemort.Options{})
		}),
		"redis": mk(func(c *cluster.Cluster) store.Store {
			return redis.New(c, redis.Options{})
		}),
		"voltdb": mk(func(c *cluster.Cluster) store.Store {
			return voltdb.New(c, voltdb.Options{})
		}),
		"mysql": mk(func(c *cluster.Cluster) store.Store {
			return mysql.New(c, mysql.Options{BinLog: true})
		}),
	}
}

func TestContractInsertThenRead(t *testing.T) {
	for name, deploy := range deployAll(t, 3) {
		t.Run(name, func(t *testing.T) {
			e, s := deploy()
			e.Go("w", func(p *sim.Proc) {
				for i := int64(0); i < 200; i++ {
					if err := s.Insert(p, store.Key(i), store.MakeFields(i)); err != nil {
						t.Errorf("insert %d: %v", i, err)
						return
					}
				}
				for i := int64(0); i < 200; i += 17 {
					got, err := s.Read(p, store.Key(i))
					if err != nil {
						t.Errorf("read %d: %v", i, err)
						return
					}
					want := store.MakeFields(i)
					if got.Len() != len(want) || string(got.Field(0)) != string(want[0]) {
						t.Errorf("read %d: got %q want %q", i, got.Field(0), want[0])
					}
				}
			})
			e.Run(0)
		})
	}
}

func TestContractReadMissing(t *testing.T) {
	for name, deploy := range deployAll(t, 2) {
		t.Run(name, func(t *testing.T) {
			e, s := deploy()
			e.Go("r", func(p *sim.Proc) {
				if _, err := s.Read(p, "user000000000000000000000"); err != store.ErrNotFound {
					t.Errorf("read of missing key: err = %v, want ErrNotFound", err)
				}
			})
			e.Run(0)
		})
	}
}

func TestContractLoadThenRead(t *testing.T) {
	for name, deploy := range deployAll(t, 4) {
		t.Run(name, func(t *testing.T) {
			e, s := deploy()
			for i := int64(0); i < 500; i++ {
				if err := s.Load(store.Key(i), store.MakeFields(i)); err != nil {
					t.Fatalf("load: %v", err)
				}
			}
			if e.Now() != 0 {
				t.Fatal("Load consumed virtual time")
			}
			e.Go("r", func(p *sim.Proc) {
				for i := int64(0); i < 500; i += 31 {
					if _, err := s.Read(p, store.Key(i)); err != nil {
						t.Errorf("read %d after load: %v", i, err)
					}
				}
			})
			e.Run(0)
		})
	}
}

func TestContractScanOrderAndBound(t *testing.T) {
	for name, deploy := range deployAll(t, 3) {
		if name == "voldemort" {
			continue
		}
		t.Run(name, func(t *testing.T) {
			e, s := deploy()
			if !s.Caps().Scans {
				t.Fatalf("%s should support scans", name)
			}
			for i := int64(0); i < 300; i++ {
				s.Load(store.Key(i), store.MakeFields(i))
			}
			e.Go("r", func(p *sim.Proc) {
				recs, err := store.ScanAll(p, s, store.Key(0), 20)
				if err != nil {
					t.Errorf("scan: %v", err)
					return
				}
				if len(recs) != 20 {
					t.Errorf("scan returned %d records, want 20", len(recs))
					return
				}
				for i := 1; i < len(recs); i++ {
					if recs[i].Key <= recs[i-1].Key {
						t.Errorf("scan out of order at %d: %s <= %s", i, recs[i].Key, recs[i-1].Key)
					}
				}
				if recs[0].Key < store.Key(0) {
					t.Errorf("scan returned key %s below start %s", recs[0].Key, store.Key(0))
				}
			})
			e.Run(0)
		})
	}
}

func TestContractUpdateOverwrites(t *testing.T) {
	for name, deploy := range deployAll(t, 2) {
		t.Run(name, func(t *testing.T) {
			e, s := deploy()
			key := store.Key(5)
			newFields := store.MakeFields(999)
			e.Go("w", func(p *sim.Proc) {
				if err := s.Insert(p, key, store.MakeFields(5)); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
				if err := s.Update(p, key, newFields); err != nil {
					t.Errorf("update: %v", err)
					return
				}
				got, err := s.Read(p, key)
				if err != nil {
					t.Errorf("read: %v", err)
					return
				}
				if string(got.Field(0)) != string(newFields[0]) {
					t.Errorf("after update got %q, want %q", got.Field(0), newFields[0])
				}
			})
			e.Run(0)
		})
	}
}

func TestVoldemortScansUnsupported(t *testing.T) {
	e := sim.NewEngine(1)
	c := cluster.New(e, cluster.ClusterM(2).Scale(0.01))
	s := voldemort.New(c, voldemort.Options{})
	if s.Caps().Scans {
		t.Fatal("voldemort should not support scans (paper §5.4)")
	}
	e.Go("r", func(p *sim.Proc) {
		if _, err := s.Scan(p, "a", 10); err != store.ErrScansUnsupported {
			t.Errorf("scan err = %v, want ErrScansUnsupported", err)
		}
	})
	e.Run(0)
}

func TestStoreNames(t *testing.T) {
	want := map[string]bool{"cassandra": true, "hbase": true, "voldemort": true,
		"redis": true, "voltdb": true, "mysql": true}
	for name, deploy := range deployAll(t, 1) {
		_, s := deploy()
		if s.Name() != name || !want[s.Name()] {
			t.Errorf("store name %q under key %q", s.Name(), name)
		}
	}
}

func TestKeysFixedWidthAndUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := int64(0); i < 10000; i++ {
		k := store.Key(i)
		if len(k) != store.KeyBytes {
			t.Fatalf("key %q has length %d, want %d", k, len(k), store.KeyBytes)
		}
		if seen[k] {
			t.Fatalf("duplicate key %q for record %d", k, i)
		}
		seen[k] = true
	}
}

func TestMakeFieldsShape(t *testing.T) {
	f := store.MakeFields(123)
	if len(f) != store.NumFields {
		t.Fatalf("fields = %d, want %d", len(f), store.NumFields)
	}
	for i, v := range f {
		if len(v) != store.FieldBytes {
			t.Fatalf("field %d has %d bytes, want %d", i, len(v), store.FieldBytes)
		}
	}
	if fmt.Sprintf("%s", f[0]) == fmt.Sprintf("%s", f[1]) {
		t.Fatal("fields should differ")
	}
}

// TestContractCursorChargesAtOpen pins the streaming-read contract every
// store must satisfy: all virtual time a scan costs is charged when the
// cursor opens, so draining it fully, pulling one row, or abandoning it
// unread all end at the same simulated instant — and a drained cursor
// yields exactly what ScanAll materializes.
func TestContractCursorChargesAtOpen(t *testing.T) {
	for name, deploy := range deployAll(t, 3) {
		if name == "voldemort" {
			continue
		}
		t.Run(name, func(t *testing.T) {
			var times []sim.Time
			var drained, materialized []string
			for mode := 0; mode < 4; mode++ {
				e, s := deploy()
				for i := int64(0); i < 300; i++ {
					s.Load(store.Key(i), store.MakeFields(i))
				}
				e.Go("r", func(p *sim.Proc) {
					switch mode {
					case 0: // full drain through the cursor
						cur, err := s.Scan(p, store.Key(0), 20)
						if err != nil {
							t.Errorf("scan: %v", err)
							return
						}
						for cur.Next() {
							drained = append(drained, cur.Key())
						}
						cur.Close()
					case 1: // single row
						cur, err := s.Scan(p, store.Key(0), 20)
						if err != nil {
							t.Errorf("scan: %v", err)
							return
						}
						cur.Next()
						cur.Close()
					case 2: // abandoned unread
						cur, err := s.Scan(p, store.Key(0), 20)
						if err != nil {
							t.Errorf("scan: %v", err)
							return
						}
						cur.Close()
					case 3: // materialized shim
						recs, err := store.ScanAll(p, s, store.Key(0), 20)
						if err != nil {
							t.Errorf("scan: %v", err)
							return
						}
						for _, r := range recs {
							materialized = append(materialized, r.Key)
						}
					}
					times = append(times, p.Now())
				})
				e.Run(0)
			}
			for i := 1; i < len(times); i++ {
				if times[i] != times[0] {
					t.Fatalf("consumption pattern %d cost %v, pattern 0 cost %v: scans must charge at open", i, times[i], times[0])
				}
			}
			if fmt.Sprint(drained) != fmt.Sprint(materialized) {
				t.Fatalf("cursor drain and ScanAll diverge:\n cursor: %v\nscanall: %v", drained, materialized)
			}
		})
	}
}
