package stores_test

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/stores/cassandra"
	"repro/internal/stores/hbase"
	"repro/internal/stores/mysql"
	"repro/internal/stores/redis"
	"repro/internal/stores/voldemort"
	"repro/internal/stores/voltdb"
)

// measureOp runs fn in a fresh process and returns elapsed virtual time.
func measureOp(e *sim.Engine, fn func(p *sim.Proc)) sim.Time {
	var elapsed sim.Time
	e.Go("op", func(p *sim.Proc) {
		start := p.Now()
		fn(p)
		elapsed = p.Now() - start
	})
	e.Run(0)
	return elapsed
}

func TestHBaseWriteCheaperThanRead(t *testing.T) {
	e := sim.NewEngine(1)
	c := cluster.New(e, cluster.ClusterM(2).Scale(0.01))
	s := hbase.New(c, hbase.Options{})
	for i := int64(0); i < 1000; i++ {
		s.Load(store.Key(i), store.MakeFields(i))
	}
	write := measureOp(e, func(p *sim.Proc) { s.Insert(p, store.Key(2000), store.MakeFields(2000)) })
	read := measureOp(e, func(p *sim.Proc) { s.Read(p, store.Key(1)) })
	if write*10 > read {
		t.Fatalf("HBase buffered write %v should be >10x cheaper than read %v (Fig 4 vs 5)", write, read)
	}
}

func TestHBaseAutoFlushMakesWritesExpensive(t *testing.T) {
	e := sim.NewEngine(1)
	c := cluster.New(e, cluster.ClusterM(1).Scale(0.01))
	buffered := hbase.New(c, hbase.Options{})
	auto := hbase.New(c, hbase.Options{AutoFlush: true})
	wBuf := measureOp(e, func(p *sim.Proc) { buffered.Insert(p, store.Key(1), store.MakeFields(1)) })
	wAuto := measureOp(e, func(p *sim.Proc) { auto.Insert(p, store.Key(1), store.MakeFields(1)) })
	if wAuto <= wBuf {
		t.Fatalf("autoflush write %v should exceed buffered write %v", wAuto, wBuf)
	}
}

func TestCassandraWriteWaitsForGroupCommit(t *testing.T) {
	e := sim.NewEngine(1)
	c := cluster.New(e, cluster.ClusterM(1).Scale(0.01))
	s := cassandra.New(c, cassandra.Options{CommitLogWindow: 18 * sim.Millisecond})
	w := measureOp(e, func(p *sim.Proc) { s.Insert(p, store.Key(1), store.MakeFields(1)) })
	if w < 15*sim.Millisecond {
		t.Fatalf("Cassandra write %v should include the ~18ms group-commit wait", w)
	}
}

func TestCassandraDiskOverheadPerRecord(t *testing.T) {
	e := sim.NewEngine(1)
	c := cluster.New(e, cluster.ClusterM(1).Scale(0.01))
	s := cassandra.New(c, cassandra.Options{MemtableFlushBytes: 4 << 10})
	const n = 10000
	for i := int64(0); i < n; i++ {
		s.Load(store.Key(i), store.MakeFields(i))
	}
	perRecord := float64(s.DiskUsage()) / n
	// Paper Fig 17: 2.5 GB / 10M records = 250 bytes per record.
	if perRecord < 230 || perRecord > 270 {
		t.Fatalf("Cassandra disk/record = %.1f bytes, want ~250 (Fig 17)", perRecord)
	}
}

func TestHBaseDiskOverheadLargest(t *testing.T) {
	e := sim.NewEngine(1)
	c := cluster.New(e, cluster.ClusterM(1).Scale(0.01))
	hb := hbase.New(c, hbase.Options{MemstoreFlushBytes: 4 << 10})
	ca := cassandra.New(c, cassandra.Options{MemtableFlushBytes: 4 << 10})
	const n = 10000
	for i := int64(0); i < n; i++ {
		hb.Load(store.Key(i), store.MakeFields(i))
		ca.Load(store.Key(i), store.MakeFields(i))
	}
	hbPer := float64(hb.DiskUsage()) / n
	if hbPer < 700 || hbPer > 800 {
		t.Fatalf("HBase disk/record = %.1f bytes, want ~750 (Fig 17: 7.5 GB/10M)", hbPer)
	}
	if hb.DiskUsage() <= ca.DiskUsage()*2 {
		t.Fatalf("HBase usage %d should dwarf Cassandra's %d (Fig 17)", hb.DiskUsage(), ca.DiskUsage())
	}
}

func TestMySQLBinlogDoublesDiskUsage(t *testing.T) {
	e := sim.NewEngine(1)
	c := cluster.New(e, cluster.ClusterM(1).Scale(0.01))
	with := mysql.New(c, mysql.Options{BinLog: true})
	without := mysql.New(c, mysql.Options{BinLog: false})
	for i := int64(0); i < 20000; i++ {
		with.Load(store.Key(i), store.MakeFields(i))
		without.Load(store.Key(i), store.MakeFields(i))
	}
	ratio := float64(with.DiskUsage()) / float64(without.DiskUsage())
	if ratio < 1.5 || ratio > 2.5 {
		t.Fatalf("binlog usage ratio = %.2f, want ~2 (paper §5.7)", ratio)
	}
}

func TestMySQLScanCheapOnOneNodeCostlyOnMany(t *testing.T) {
	if testing.Short() {
		t.Skip("loads 180k records; covered by the full run")
	}
	mk := func(nodes int) (*sim.Engine, *mysql.Store) {
		e := sim.NewEngine(1)
		c := cluster.New(e, cluster.ClusterM(nodes).Scale(0.01))
		s := mysql.New(c, mysql.Options{BinLog: true})
		for i := int64(0); i < int64(nodes)*20000; i++ {
			s.Load(store.Key(i), store.MakeFields(i))
		}
		return e, s
	}
	e1, s1 := mk(1)
	one := measureOp(e1, func(p *sim.Proc) { s1.Scan(p, store.Key(10), 50) })
	e8, s8 := mk(8)
	eight := measureOp(e8, func(p *sim.Proc) { s8.Scan(p, store.Key(10), 50) })
	if eight < 4*one {
		t.Fatalf("8-shard scan %v should cost several times a 1-node scan %v (Fig 12/13)", eight, one)
	}
}

func TestVoltDBSingleNodeFastMultiNodeSlow(t *testing.T) {
	mk := func(nodes int) (*sim.Engine, *voltdb.Store) {
		e := sim.NewEngine(1)
		c := cluster.New(e, cluster.ClusterM(nodes).Scale(0.01))
		return e, voltdb.New(c, voltdb.Options{})
	}
	e1, s1 := mk(1)
	s1.Load(store.Key(1), store.MakeFields(1))
	one := measureOp(e1, func(p *sim.Proc) { s1.Read(p, store.Key(1)) })
	e8, s8 := mk(8)
	s8.Load(store.Key(1), store.MakeFields(1))
	eight := measureOp(e8, func(p *sim.Proc) { s8.Read(p, store.Key(1)) })
	if eight <= one {
		t.Fatalf("8-node VoltDB read %v should exceed 1-node %v (global ordering)", eight, one)
	}
}

func TestVoltDBAsyncCheaperOrdering(t *testing.T) {
	e := sim.NewEngine(1)
	c := cluster.New(e, cluster.ClusterM(8).Scale(0.01))
	syncS := voltdb.New(c, voltdb.Options{})
	asyncS := voltdb.New(c, voltdb.Options{Async: true})
	syncS.Load(store.Key(1), store.MakeFields(1))
	asyncS.Load(store.Key(1), store.MakeFields(1))
	// Run many concurrent reads; async should finish sooner in aggregate.
	run := func(s store.Store) sim.Time {
		eng := sim.NewEngine(2)
		cl := cluster.New(eng, cluster.ClusterM(8).Scale(0.01))
		var st store.Store
		if s == syncS {
			st = voltdb.New(cl, voltdb.Options{})
		} else {
			st = voltdb.New(cl, voltdb.Options{Async: true})
		}
		for i := int64(0); i < 100; i++ {
			st.Load(store.Key(i), store.MakeFields(i))
		}
		for i := 0; i < 64; i++ {
			eng.Go("c", func(p *sim.Proc) {
				for j := int64(0); j < 20; j++ {
					st.Read(p, store.Key(j%100))
				}
			})
		}
		return eng.Run(0)
	}
	if async, syncT := run(asyncS), run(syncS); async >= syncT {
		t.Fatalf("async makespan %v should beat sync %v on 8 nodes", async, syncT)
	}
}

func TestRedisImbalanceAndOOM(t *testing.T) {
	if testing.Short() {
		t.Skip("loads 180k records; covered by the full run")
	}
	e := sim.NewEngine(1)
	// Tiny RAM so the hot shard overflows quickly at 12 nodes.
	spec := cluster.ClusterM(12).Scale(0.0015)
	c := cluster.New(e, spec)
	s := redis.New(c, redis.Options{})
	perNode := int64(float64(10_000_000) * 0.0015)
	for i := int64(0); i < perNode*12; i++ {
		s.Load(store.Key(i), store.MakeFields(i))
	}
	if lf := s.HottestLoadFactor(); lf < 1.1 {
		t.Fatalf("hottest load factor = %.2f, want > 1.1 (Jedis imbalance)", lf)
	}
	if s.SwappingNodes() == 0 {
		t.Fatal("no Redis node exceeded RAM at 12 nodes (paper: one node consistently ran out of memory)")
	}
	if s.SwappingNodes() > 4 {
		t.Fatalf("%d nodes swapping; expected only the hottest shard(s)", s.SwappingNodes())
	}
}

func TestRedisBalancedShardingEvens(t *testing.T) {
	e := sim.NewEngine(1)
	c := cluster.New(e, cluster.ClusterM(12).Scale(0.01))
	s := redis.New(c, redis.Options{Balanced: true})
	for i := int64(0); i < 120000; i++ {
		s.Load(store.Key(i), store.MakeFields(i))
	}
	if lf := s.HottestLoadFactor(); lf > 1.05 {
		t.Fatalf("balanced sharding load factor = %.2f, want <= 1.05", lf)
	}
}

func TestVoldemortLatencyFlat(t *testing.T) {
	e := sim.NewEngine(1)
	c := cluster.New(e, cluster.ClusterM(4).Scale(0.01))
	s := voldemort.New(c, voldemort.Options{BDBCacheFraction: 0.75})
	for i := int64(0); i < 50000; i++ {
		s.Load(store.Key(i), store.MakeFields(i))
	}
	read := measureOp(e, func(p *sim.Proc) { s.Read(p, store.Key(7)) })
	write := measureOp(e, func(p *sim.Proc) { s.Insert(p, store.Key(60000), store.MakeFields(60000)) })
	// Paper: both ~230-260µs and similar to each other.
	if read > sim.Millisecond || write > sim.Millisecond {
		t.Fatalf("voldemort read %v / write %v, want sub-ms", read, write)
	}
	ratio := float64(write) / float64(read)
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("voldemort write/read ratio %.2f, want ~1 (paper: similar latencies)", ratio)
	}
}

func TestCassandraScanCostsMultipleReads(t *testing.T) {
	e := sim.NewEngine(1)
	c := cluster.New(e, cluster.ClusterM(4).Scale(0.01))
	s := cassandra.New(c, cassandra.Options{MemtableFlushBytes: 64 << 10})
	for i := int64(0); i < 40000; i++ {
		s.Load(store.Key(i), store.MakeFields(i))
	}
	read := measureOp(e, func(p *sim.Proc) { s.Read(p, store.Key(3)) })
	scan := measureOp(e, func(p *sim.Proc) { s.Scan(p, store.Key(3), 50) })
	if scan < 2*read {
		t.Fatalf("Cassandra scan %v should cost several reads %v (Fig 13: ~4x)", scan, read)
	}
}
