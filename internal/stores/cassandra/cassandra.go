// Package cassandra models Apache Cassandra 1.0 as benchmarked in the
// paper (§4.2): a symmetric ring using the RandomPartitioner with manually
// assigned optimal tokens (§6), per-node LSM storage (commit log, memtable,
// SSTables with Bloom filters, size-tiered compaction), and coordinator
// forwarding — the YCSB client connects to a random node, which forwards the
// operation to the token owner when it is not local.
//
// Calibration notes (EXPERIMENTS.md): service times are set so that a
// Cluster M node saturates near 25K ops/s for Workload R with 128
// connections, which by Little's law reproduces the paper's ~5 ms read
// latency at maximum throughput. Writes additionally wait for the commit
// log group commit, reproducing the paper's consistently high-but-stable
// write latency (Fig 5: Cassandra has the highest stable write latency
// despite its write-oriented design).
package cassandra

import (
	"sort"
	"strings"

	"repro/internal/cluster"
	"repro/internal/hashring"
	"repro/internal/lsm"
	"repro/internal/sim"
	"repro/internal/sstable"
	"repro/internal/store"
	"repro/internal/stores/base"
)

// Options tunes the model.
type Options struct {
	ReadCPU  sim.Time // read stage service time per op
	WriteCPU sim.Time // mutation stage service time per op
	CoordCPU sim.Time // coordinator path cost (thrift parsing, routing)
	// ForwardCPU is extra coordinator CPU per proxied operation
	// (serialize, enqueue, deserialize the owner's response); it is why
	// per-node throughput drops when the cluster grows beyond one node
	// (Fig 3: the slope from 2..12 nodes is ~60% of 1-node throughput).
	ForwardCPU   sim.Time
	ScanNodeCPU  sim.Time // per-contacted-node cost of get_range_slices
	ScanRowCPU   sim.Time // per-returned-row cost
	StageThreads int      // read/mutation stage concurrency per node
	// CommitLogWindow is the group-commit window writers wait for
	// (batch mode; see package comment).
	CommitLogWindow sim.Time
	// CommitLogPeriodic switches the commit log to periodic mode:
	// writers acknowledge before the group commit syncs (Cassandra's
	// commitlog_sync: periodic), trading the batch window's write
	// latency for a durability window. Log bytes are still accounted.
	CommitLogPeriodic bool
	// RandomTokens uses Cassandra's default random token selection instead
	// of the optimal assignment (§6 ablation).
	RandomTokens bool
	// Overhead is the SSTable format overhead; default reproduces Fig 17's
	// 2.5 GB/node for 10M 75-byte records.
	Overhead sstable.Overhead
	// MemtableFlushBytes triggers memtable flushes.
	MemtableFlushBytes int64
	// CompactMin is the size-tiered compaction threshold: sstables per
	// tier before a compaction merges them (Cassandra's
	// min_compaction_threshold; 0 = the default 4).
	CompactMin int
	// CacheBytes per node for the SSTable page cache; <0 means "derive
	// from node RAM" (all of it beyond heap on Cluster M; scarce on D).
	CacheBytes int64
	// ReplicationFactor is the SimpleStrategy replica count (the paper ran
	// unreplicated; replication is its stated future work, §8).
	ReplicationFactor int
	// WriteConsistency is how many replica acknowledgements a write waits
	// for (1 = ONE; ReplicationFactor = ALL; anything between = QUORUM
	// style). Remaining replicas apply the mutation asynchronously.
	WriteConsistency int
	// Compression halves the SSTable footprint at extra CPU per access
	// (the paper declined it to protect throughput, §5.7; also future
	// work, §8).
	Compression bool
	// CompressionCPU is the per-operation (de)compression cost.
	CompressionCPU sim.Time
	// CompressionRatio scales SSTable bytes when Compression is on.
	CompressionRatio float64
}

func (o *Options) defaults() {
	if o.ReadCPU == 0 {
		o.ReadCPU = 300 * sim.Microsecond
	}
	if o.WriteCPU == 0 {
		o.WriteCPU = 260 * sim.Microsecond
	}
	if o.CoordCPU == 0 {
		o.CoordCPU = 40 * sim.Microsecond
	}
	if o.ForwardCPU == 0 {
		o.ForwardCPU = 170 * sim.Microsecond
	}
	if o.ScanNodeCPU == 0 {
		o.ScanNodeCPU = 350 * sim.Microsecond
	}
	if o.ScanRowCPU == 0 {
		o.ScanRowCPU = 22 * sim.Microsecond
	}
	if o.StageThreads == 0 {
		o.StageThreads = 32
	}
	if o.CommitLogWindow == 0 {
		o.CommitLogWindow = 6 * sim.Millisecond
	}
	if o.Overhead == (sstable.Overhead{}) {
		// 25-byte key + 25 row overhead + 5 cells x (10 payload + 30
		// name/timestamp/length) = 250 bytes/record -> 2.5 GB per 10M.
		o.Overhead = sstable.Overhead{PerEntry: 25, PerCell: 30}
	}
	if o.MemtableFlushBytes == 0 {
		o.MemtableFlushBytes = 16 << 20
	}
	if o.ReplicationFactor == 0 {
		o.ReplicationFactor = 1
	}
	if o.WriteConsistency == 0 {
		o.WriteConsistency = 1
	}
	if o.WriteConsistency > o.ReplicationFactor {
		o.WriteConsistency = o.ReplicationFactor
	}
	if o.CompressionCPU == 0 {
		o.CompressionCPU = 60 * sim.Microsecond
	}
	if o.CompressionRatio == 0 {
		o.CompressionRatio = 0.5
	}
}

// Store is a Cassandra cluster.
type Store struct {
	opts  Options
	clust *cluster.Cluster
	ring  *hashring.TokenRing
	nodes []*node
	// down marks killed nodes (fault injection); downCount caches the
	// population so healthy-cluster paths take zero extra branches beyond
	// one counter check.
	down      []bool
	downCount int
	// lag is extra per-node async-replica application delay (replica-lag
	// fault).
	lag []sim.Time
}

// node is one Cassandra process: SEDA stages plus an LSM engine.
type node struct {
	id        int
	machine   *cluster.Node
	readStage *sim.Resource
	mutStage  *sim.Resource
	tree      *lsm.Tree
}

// New deploys Cassandra on the cluster.
func New(c *cluster.Cluster, opts Options) *Store {
	opts.defaults()
	if opts.Compression {
		// Block compression shrinks both payload and per-cell overhead;
		// modeled by scaling the format overhead (payload bytes are scaled
		// in the LSM's accounting via the same table build).
		opts.Overhead.PerEntry = int64(float64(opts.Overhead.PerEntry) * opts.CompressionRatio)
		opts.Overhead.PerCell = int64(float64(opts.Overhead.PerCell) * opts.CompressionRatio)
	}
	s := &Store{opts: opts, clust: c}
	if opts.RandomTokens {
		s.ring = hashring.NewTokenRingRandom(len(c.Nodes), c.Eng.Rand().Uint64)
	} else {
		s.ring = hashring.NewTokenRingOptimal(len(c.Nodes))
	}
	for i, m := range c.Nodes {
		cache := opts.CacheBytes
		if cache == 0 {
			// Everything not used by the JVM heap serves as page cache.
			cache = m.Spec.RAMBytes / 2
		}
		s.nodes = append(s.nodes, &node{
			id:        i,
			machine:   m,
			readStage: sim.NewResource(c.Eng, "cassandra-read-stage", opts.StageThreads),
			mutStage:  sim.NewResource(c.Eng, "cassandra-mutation-stage", opts.StageThreads),
			tree: lsm.New(lsm.Config{
				Node:       m,
				Seed:       int64(i) + 11,
				FlushBytes: opts.MemtableFlushBytes,
				Overhead:   opts.Overhead,
				WALWindow:  opts.CommitLogWindow,
				WALSync:    !opts.CommitLogPeriodic, // batch mode: writers wait for the group commit
				CacheBytes: cache,
				CompactMin: opts.CompactMin,
			}),
		})
	}
	s.down = make([]bool, len(c.Nodes))
	s.lag = make([]sim.Time, len(c.Nodes))
	return s
}

// Name implements store.Store.
func (s *Store) Name() string { return "cassandra" }

// CopiesOnIngest implements store.IngestCopier: every write path lands in
// an arena-backed memtable that copies field bytes (async replicas clone
// before scheduling), so callers may reuse a fields buffer across writes.
func (s *Store) CopiesOnIngest() bool { return true }

// SlabBytes implements store.SlabReporter: the retained footprint of every
// node's LSM tree (memtable arenas plus sstable slabs).
func (s *Store) SlabBytes() int64 {
	var total int64
	for _, n := range s.nodes {
		total += n.tree.SlabBytes()
	}
	return total
}

// Caps implements store.Store: range slices are supported and return
// key-ordered rows, so the query layer can plan against them.
func (s *Store) Caps() store.Caps { return store.Caps{Scans: true, Queries: true} }

// ScanStats implements store.ScanStatsReporter: scan-path positioning and
// pruning counters summed across every node's LSM tree.
func (s *Store) ScanStats() (positioned, pruned int64) {
	for _, n := range s.nodes {
		pos, pr := n.tree.ScanStats()
		positioned += pos
		pruned += pr
	}
	return positioned, pruned
}

// coordinator picks the node the client is connected to for this op. With
// nodes down, the client's connection pool skips them: the single random
// draw is kept (determinism: the no-fault RNG stream is untouched) and
// probed forward to the next live node. Nil means the whole cluster is
// down.
func (s *Store) coordinator(p *sim.Proc) *node {
	i := p.Rand().Intn(len(s.nodes))
	if s.downCount == 0 {
		return s.nodes[i]
	}
	for off := 0; off < len(s.nodes); off++ {
		if n := s.nodes[(i+off)%len(s.nodes)]; !s.down[n.id] {
			return n
		}
	}
	return nil
}

func (s *Store) owner(key string) *node {
	return s.nodes[s.ring.Owner(key)]
}

// readTarget returns the node that serves a read of key: the token owner,
// or — when the owner is down — the first live ring replica (read repair
// semantics at CL.ONE). Nil means no replica of key is alive.
func (s *Store) readTarget(key string) *node {
	if s.downCount == 0 {
		return s.owner(key)
	}
	for _, idx := range s.ring.Replicas(key, s.opts.ReplicationFactor) {
		if !s.down[idx] {
			return s.nodes[idx]
		}
	}
	return nil
}

// replicas returns the nodes holding key under SimpleStrategy.
func (s *Store) replicas(key string) []*node {
	idxs := s.ring.Replicas(key, s.opts.ReplicationFactor)
	out := make([]*node, len(idxs))
	for i, idx := range idxs {
		out[i] = s.nodes[idx]
	}
	return out
}

// Read implements store.Store.
func (s *Store) Read(p *sim.Proc, key string) (store.FieldsView, error) {
	coord := s.coordinator(p)
	own := s.readTarget(key)
	if coord == nil || own == nil {
		return store.FieldsView{}, store.ErrUnavailable
	}
	var out store.FieldsView
	var ok bool
	serve := func() {
		own.readStage.Acquire(p)
		cpu := s.opts.ReadCPU
		if s.opts.Compression {
			cpu += s.opts.CompressionCPU
		}
		own.machine.Compute(p, cpu)
		out, ok = own.tree.Get(p, key)
		own.readStage.Release()
	}
	base.Roundtrip(p, coord.machine, base.ReqHeader, base.RecordWire, func() {
		coord.machine.Compute(p, s.opts.CoordCPU)
		if coord == own {
			serve()
			return
		}
		coord.machine.Compute(p, s.opts.ForwardCPU)
		base.Forward(p, coord.machine, own.machine, base.ReqHeader, base.RecordWire, serve)
	})
	if !ok {
		return store.FieldsView{}, store.ErrNotFound
	}
	return out, nil
}

// applyMutation runs the mutation-stage work on one replica. SEDA: the
// stage thread applies the write and is released before the commit-log
// group commit completes; only the waiter blocks on the acknowledgement.
func (s *Store) applyMutation(p *sim.Proc, n *node, key string, f store.Fields) {
	n.mutStage.Acquire(p)
	cpu := s.opts.WriteCPU
	if s.opts.Compression {
		cpu += s.opts.CompressionCPU
	}
	n.machine.Compute(p, cpu)
	n.mutStage.Release()
	n.tree.Put(p, key, f) // waits for the commit-log group commit
}

func (s *Store) write(p *sim.Proc, key string, f store.Fields) error {
	coord := s.coordinator(p)
	if coord == nil {
		return store.ErrUnavailable
	}
	reps := s.replicas(key)
	if s.downCount > 0 {
		// Down replicas take no writes (hinted handoff is not modeled:
		// the mutation is simply lost on them, as the paper's unreplicated
		// setups would lose it). Consistency degrades to the live count.
		live := reps[:0]
		for _, rep := range reps {
			if !s.down[rep.id] {
				live = append(live, rep)
			}
		}
		reps = live
		if len(reps) == 0 {
			return store.ErrUnavailable
		}
	}
	sync := s.opts.WriteConsistency
	if sync > len(reps) {
		sync = len(reps)
	}
	base.Roundtrip(p, coord.machine, base.ReqHeader+base.RecordWire, base.AckWire, func() {
		coord.machine.Compute(p, s.opts.CoordCPU)
		// Async replicas apply the mutation after the client is
		// acknowledged, so they must not retain the caller's (possibly
		// reused) fields buffer — or its key, which may be a view of a
		// reused key buffer. One deep copy of each is shared by all of
		// them: applyMutation never mutates either and the memtable
		// copies on ingest.
		var async store.Fields
		var asyncKey string
		cloned := false
		// The coordinator waits for sync acknowledgements; the remaining
		// replicas apply the mutation in the background.
		for i, rep := range reps {
			rep := rep
			if i < sync {
				if rep == coord {
					s.applyMutation(p, rep, key, f)
					continue
				}
				coord.machine.Compute(p, s.opts.ForwardCPU)
				base.Forward(p, coord.machine, rep.machine, base.ReqHeader+base.RecordWire, base.AckWire, func() {
					s.applyMutation(p, rep, key, f)
				})
				continue
			}
			if !cloned {
				async = f.Clone()
				asyncKey = strings.Clone(key)
				cloned = true
			}
			fc, kc := async, asyncKey
			p.Engine().Go("cassandra-async-replica", func(bp *sim.Proc) {
				bp.Sleep(coord.machine.NetDelay(base.ReqHeader+base.RecordWire) + s.lag[rep.id])
				if s.down[rep.id] {
					return // replica died before the mutation arrived
				}
				s.applyMutation(bp, rep, kc, fc)
			})
		}
	})
	return nil
}

// Insert implements store.Store.
func (s *Store) Insert(p *sim.Proc, key string, f store.Fields) error {
	return s.write(p, key, f)
}

// Update implements store.Store.
func (s *Store) Update(p *sim.Proc, key string, f store.Fields) error {
	return s.write(p, key, f)
}

// Scan implements store.Store. With the RandomPartitioner,
// get_range_slices walks the ring from the start key's token, so a
// 50-record scan is answered by the token owner (continuing to ring
// successors only when that node cannot fill the count). The rows are a
// node-local sample of keys >= start rather than the globally smallest
// ones — exactly the semantics a RandomPartitioner range slice has — which
// is why Cassandra scans cost only ~4x a read and scale linearly
// (Figs 12/13).
//
// The distributed gather must complete (and sort) before the first row can
// be returned, so the cursor wraps the materialized result: all virtual
// time is charged here, none during cursor consumption — the same sequence
// the historical materialized Scan charged.
func (s *Store) Scan(p *sim.Proc, start string, count int) (store.Cursor, error) {
	coord := s.coordinator(p)
	if coord == nil {
		return nil, store.ErrUnavailable
	}
	var all []store.Record
	base.Roundtrip(p, coord.machine, base.ReqHeader, int64(count)*base.RecordWire, func() {
		coord.machine.Compute(p, s.opts.CoordCPU)
		first := s.ring.Owner(start)
		for i := 0; i < len(s.nodes) && len(all) < count; i++ {
			n := s.nodes[(first+i)%len(s.nodes)]
			if s.down[n.id] {
				continue // dead ring member: the range slice skips it
			}
			want := count - len(all)
			serve := func() {
				n.readStage.Acquire(p)
				n.machine.Compute(p, s.opts.ScanNodeCPU)
				rows := n.tree.Scan(p, start, want)
				n.machine.Compute(p, sim.Time(len(rows))*s.opts.ScanRowCPU)
				for _, r := range rows {
					all = append(all, store.Record{Key: r.Key, Fields: r.Fields})
				}
				n.readStage.Release()
			}
			if n == coord {
				serve()
				continue
			}
			base.Forward(p, coord.machine, n.machine, base.ReqHeader, int64(want)*base.RecordWire, serve)
		}
	})
	sortRecords(all)
	if len(all) > count {
		all = all[:count]
	}
	return store.NewSliceCursor(all), nil
}

func sortRecords(rs []store.Record) {
	sort.Slice(rs, func(i, j int) bool { return rs[i].Key < rs[j].Key })
}

// Load implements store.Store.
func (s *Store) Load(key string, f store.Fields) error {
	for _, rep := range s.replicas(key) {
		rep.tree.LoadDirect(key, f)
	}
	return nil
}

// DiskUsage implements store.Store.
func (s *Store) DiskUsage() int64 {
	var total int64
	for _, n := range s.nodes {
		total += n.tree.DiskBytes()
	}
	return total
}

// Tree exposes a node's LSM engine for tests and diagnostics.
func (s *Store) Tree(i int) *lsm.Tree { return s.nodes[i].tree }

// replayCPUPerByte is the CPU cost of reapplying one commitlog byte on
// restart (~100 MB/s of single-threaded mutation replay).
const replayCPUPerByte = 10 * sim.Nanosecond

// KillNode implements fault.Target: the node stops serving, its commit log
// is torn down (the buffered tail is lost, parked group-commit waiters are
// released) and later writes skip it. In-flight operations complete.
func (s *Store) KillNode(i int) {
	if s.down[i] {
		return
	}
	s.down[i] = true
	s.downCount++
	s.nodes[i].tree.Log().Close()
}

// RestartNode implements fault.Target: commitlog replay — re-read the
// un-flushed tail from disk and reapply it through the mutation path —
// is paid in virtual time before the node is marked up.
func (s *Store) RestartNode(p *sim.Proc, i int) {
	if !s.down[i] {
		return
	}
	n := s.nodes[i]
	if replay := n.tree.MemBytes(); replay > 0 {
		n.machine.DiskRead(p, replay, false)
		n.machine.Compute(p, sim.Time(replay)*replayCPUPerByte)
	}
	n.tree.Log().Reopen()
	s.down[i] = false
	s.downCount--
}

// SetReplicaLag implements fault.ReplicaLagger: extra delay before async
// replica application lands on node i.
func (s *Store) SetReplicaLag(i int, extra sim.Time) { s.lag[i] = extra }

// NodeDown reports whether node i is currently down (diagnostics/tests).
func (s *Store) NodeDown(i int) bool { return s.down[i] }

var _ store.Store = (*Store)(nil)
