package cassandra

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/sstable"
	"repro/internal/store"
)

func deploy(nodes int, opts Options) (*sim.Engine, *Store) {
	e := sim.NewEngine(1)
	c := cluster.New(e, cluster.ClusterM(nodes).Scale(0.01))
	if opts.MemtableFlushBytes == 0 {
		opts.MemtableFlushBytes = 64 << 10
	}
	return e, New(c, opts)
}

func TestDefaultsFilled(t *testing.T) {
	var o Options
	o.defaults()
	if o.ReadCPU == 0 || o.WriteCPU == 0 || o.StageThreads == 0 || o.CommitLogWindow == 0 {
		t.Fatalf("defaults not filled: %+v", o)
	}
	if o.Overhead.PerCell == 0 {
		t.Fatal("overhead default missing")
	}
}

func TestOwnerConsistentWithRing(t *testing.T) {
	_, s := deploy(4, Options{})
	for i := int64(0); i < 100; i++ {
		k := store.Key(i)
		if s.owner(k) != s.nodes[s.ring.Owner(k)] {
			t.Fatalf("owner mismatch for %s", k)
		}
	}
}

func TestLoadBalancedAcrossNodes(t *testing.T) {
	_, s := deploy(4, Options{})
	for i := int64(0); i < 40000; i++ {
		s.Load(store.Key(i), store.MakeFields(i))
	}
	for i, n := range s.nodes {
		if frac := float64(n.tree.DiskBytes()+n.tree.MemBytes()) / float64(s.DiskUsage()+1); frac < 0.15 || frac > 0.35 {
			t.Fatalf("node %d holds %.2f of the data, want ~0.25 (optimal tokens)", i, frac)
		}
	}
}

func TestRandomTokensSkewData(t *testing.T) {
	// Over several seeds, random tokens should produce a worse max node
	// share than optimal tokens at least once (usually always).
	worst := 0.0
	for seed := int64(1); seed <= 3; seed++ {
		e := sim.NewEngine(seed)
		c := cluster.New(e, cluster.ClusterM(8).Scale(0.01))
		s := New(c, Options{RandomTokens: true, MemtableFlushBytes: 64 << 10})
		counts := make([]int, 8)
		for i := int64(0); i < 16000; i++ {
			counts[s.ring.Owner(store.Key(i))]++
		}
		for _, cnt := range counts {
			if f := float64(cnt) / (16000.0 / 8); f > worst {
				worst = f
			}
		}
	}
	if worst < 1.4 {
		t.Fatalf("random tokens max share factor %.2f, expected visible imbalance", worst)
	}
}

func TestScanReturnsGlobalOrderAcrossNodes(t *testing.T) {
	e, s := deploy(3, Options{})
	for i := int64(0); i < 3000; i++ {
		s.Load(store.Key(i), store.MakeFields(i))
	}
	e.Go("r", func(p *sim.Proc) {
		recs, err := store.ScanAll(p, s, store.Key(0), 30)
		if err != nil {
			t.Errorf("scan: %v", err)
			return
		}
		if len(recs) != 30 {
			t.Errorf("scan returned %d", len(recs))
			return
		}
		for i := 1; i < len(recs); i++ {
			if recs[i].Key <= recs[i-1].Key {
				t.Errorf("scan unordered at %d", i)
			}
		}
	})
	e.Run(0)
}

func TestForwardingCostsMoreThanLocal(t *testing.T) {
	// With one node every op is local; with many nodes most ops forward.
	measure := func(nodes int) sim.Time {
		e, s := deploy(nodes, Options{})
		s.Load(store.Key(1), store.MakeFields(1))
		var total sim.Time
		e.Go("r", func(p *sim.Proc) {
			start := p.Now()
			for i := 0; i < 50; i++ {
				s.Read(p, store.Key(1))
			}
			total = p.Now() - start
		})
		e.Run(0)
		return total
	}
	if local, remote := measure(1), measure(6); remote <= local {
		t.Fatalf("6-node reads (%v) should cost more than 1-node (%v) due to forwarding", remote, local)
	}
}

func TestTreeAccessor(t *testing.T) {
	_, s := deploy(2, Options{})
	if s.Tree(0) == nil || s.Tree(1) == nil {
		t.Fatal("Tree accessor returned nil")
	}
}

func TestDiskUsageSumsNodes(t *testing.T) {
	_, s := deploy(2, Options{})
	for i := int64(0); i < 5000; i++ {
		s.Load(store.Key(i), store.MakeFields(i))
	}
	var sum int64
	for i := range s.nodes {
		sum += s.Tree(i).DiskBytes()
	}
	if s.DiskUsage() != sum {
		t.Fatalf("DiskUsage %d != sum of trees %d", s.DiskUsage(), sum)
	}
}

func TestUpdateVisibleAfterFlushCycles(t *testing.T) {
	e, s := deploy(2, Options{})
	e.Go("w", func(p *sim.Proc) {
		key := store.Key(42)
		s.Insert(p, key, store.MakeFields(1))
		for i := int64(100); i < 400; i++ { // push several flushes
			s.Insert(p, store.Key(i), store.MakeFields(i))
		}
		s.Update(p, key, store.MakeFields(2))
		got, err := s.Read(p, key)
		if err != nil {
			t.Errorf("read: %v", err)
			return
		}
		want := store.MakeFields(2)
		if string(got.Field(0)) != string(want[0]) {
			t.Errorf("got %q want %q", got.Field(0), want[0])
		}
	})
	e.Run(0)
}

func TestReplicationMultipliesDiskUsage(t *testing.T) {
	_, r1 := deploy(4, Options{MemtableFlushBytes: 4 << 10})
	_, r3 := deploy(4, Options{MemtableFlushBytes: 4 << 10, ReplicationFactor: 3})
	for i := int64(0); i < 5000; i++ {
		r1.Load(store.Key(i), store.MakeFields(i))
		r3.Load(store.Key(i), store.MakeFields(i))
	}
	ratio := float64(r3.DiskUsage()) / float64(r1.DiskUsage())
	if ratio < 2.8 || ratio > 3.2 {
		t.Fatalf("RF=3 disk ratio = %.2f, want ~3", ratio)
	}
}

func TestReplicatedReadsServeFromAnyReplicaAfterLoad(t *testing.T) {
	e, s := deploy(4, Options{ReplicationFactor: 3})
	for i := int64(0); i < 1000; i++ {
		s.Load(store.Key(i), store.MakeFields(i))
	}
	e.Go("r", func(p *sim.Proc) {
		for i := int64(0); i < 100; i++ {
			if _, err := s.Read(p, store.Key(i)); err != nil {
				t.Errorf("read %d: %v", i, err)
			}
		}
	})
	e.Run(0)
}

func TestWriteConsistencyAllWaitsForAllReplicas(t *testing.T) {
	measure := func(cl int) sim.Time {
		e, s := deploy(4, Options{ReplicationFactor: 3, WriteConsistency: cl})
		var lat sim.Time
		e.Go("w", func(p *sim.Proc) {
			start := p.Now()
			s.Insert(p, store.Key(1), store.MakeFields(1))
			lat = p.Now() - start
		})
		e.Run(0)
		return lat
	}
	one, all := measure(1), measure(3)
	if all <= one {
		t.Fatalf("CL=ALL write %v should exceed CL=ONE %v", all, one)
	}
}

func TestAsyncReplicasEventuallyApplied(t *testing.T) {
	e, s := deploy(3, Options{ReplicationFactor: 3, WriteConsistency: 1})
	e.Go("w", func(p *sim.Proc) {
		s.Insert(p, store.Key(7), store.MakeFields(7))
	})
	e.Run(0) // drains background replica writes
	// All three replicas must hold the record (check trees directly).
	holders := 0
	for i := range s.nodes {
		eng := sim.NewEngine(99)
		_ = eng
		e.Go("check", func(p *sim.Proc) {
			if _, ok := s.nodes[i].tree.Get(p, store.Key(7)); ok {
				holders++
			}
		})
		e.Run(0)
	}
	if holders != 3 {
		t.Fatalf("record on %d replicas after drain, want 3", holders)
	}
}

func TestCompressionShrinksDiskAndCostsCPU(t *testing.T) {
	_, plain := deploy(1, Options{MemtableFlushBytes: 4 << 10})
	_, comp := deploy(1, Options{MemtableFlushBytes: 4 << 10, Compression: true})
	for i := int64(0); i < 5000; i++ {
		plain.Load(store.Key(i), store.MakeFields(i))
		comp.Load(store.Key(i), store.MakeFields(i))
	}
	if comp.DiskUsage() >= plain.DiskUsage() {
		t.Fatalf("compressed usage %d >= plain %d", comp.DiskUsage(), plain.DiskUsage())
	}
	// Reads must cost more CPU with compression on.
	measure := func(s *Store) sim.Time {
		e := sim.NewEngine(5)
		c := cluster.New(e, cluster.ClusterM(1).Scale(0.01))
		opts := s.opts
		opts.Overhead = sstable.Overhead{} // re-derive defaults
		ns := New(c, opts)
		ns.Load(store.Key(1), store.MakeFields(1))
		var lat sim.Time
		e.Go("r", func(p *sim.Proc) {
			start := p.Now()
			ns.Read(p, store.Key(1))
			lat = p.Now() - start
		})
		e.Run(0)
		return lat
	}
	if lp, lc := measure(plain), measure(comp); lc <= lp {
		t.Fatalf("compressed read %v should exceed plain %v", lc, lp)
	}
}
