// Package voldemort models Project Voldemort as benchmarked in the paper:
// a consistent-hash DHT with two partitions per node (§4.3), an embedded
// BerkeleyDB B-tree per node for persistence, and a smart client that routes
// directly to the owning node.
//
// The paper's §6 notes that the Voldemort client's thread/connection pool
// had to be tuned carefully — the default of 10 threads and 50 connections
// was both the throughput limiter and the reason Voldemort's reported
// latencies are so low (≈230–260 µs) while per-node throughput sits near
// 12K ops/s: effective server-side concurrency per node was tiny, so
// requests hardly queued. The model reproduces this with a per-node
// client-pool semaphore; time spent waiting for a pool slot is charged to
// the operation only after the slot is held (matching how the YCSB client
// measured inside the store client).
//
// The YCSB Voldemort binding does not support scans (§5.4), so Scan returns
// store.ErrScansUnsupported and the harness omits Voldemort from the
// scan workloads, as the paper did.
package voldemort

import (
	"repro/internal/btree"
	"repro/internal/cluster"
	"repro/internal/hashring"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/stores/base"
	"repro/internal/wal"
)

// Options tunes the model.
type Options struct {
	// ClientPoolPerNode is the number of in-flight requests the client
	// library allows per server node (the tuned-down pool of §6).
	ClientPoolPerNode int
	// ReadCPU/WriteCPU are server-side service times (BDB get/put through
	// the JVM and socket stack).
	ReadCPU  sim.Time
	WriteCPU sim.Time
	// UpdateCPU is the server-side cost of replacing an existing record: a
	// versioned put that locates the row (the vector-clock check BDB's
	// read-modify-write performs) and rewrites the leaf in place, so it
	// lands between ReadCPU and ReadCPU+WriteCPU.
	UpdateCPU sim.Time
	// LegacyLoad disables the B-tree's deferred bulk build and loads via
	// per-record tree inserts (the btree-bulk=off variant). Both paths
	// produce bit-identical trees and charges.
	LegacyLoad bool
	// PartitionsPerNode is the Voldemort partition count per node (§4.3).
	PartitionsPerNode int
	// BDBCacheFraction is the share of node RAM given to the BerkeleyDB
	// cache (the paper used 25% for BDB, 75% for Voldemort itself).
	BDBCacheFraction float64
	// LeafCap encodes BDB's on-disk record density per 4K page.
	LeafCap int
}

func (o *Options) defaults() {
	if o.ClientPoolPerNode == 0 {
		o.ClientPoolPerNode = 3
	}
	if o.ReadCPU == 0 {
		o.ReadCPU = 110 * sim.Microsecond
	}
	if o.WriteCPU == 0 {
		o.WriteCPU = 120 * sim.Microsecond
	}
	if o.UpdateCPU == 0 {
		o.UpdateCPU = 160 * sim.Microsecond
	}
	if o.PartitionsPerNode == 0 {
		o.PartitionsPerNode = 2
	}
	if o.BDBCacheFraction == 0 {
		o.BDBCacheFraction = 0.25
	}
	if o.LeafCap == 0 {
		// 4K BDB pages; 75-byte records with BDB per-record overhead and a
		// ~70% fill factor land ~11 records/page -> ~5.5 GB for 10M
		// records, matching Fig 17.
		o.LeafCap = 11
	}
}

// Store is the Voldemort deployment.
type Store struct {
	opts  Options
	clust *cluster.Cluster
	ring  *hashring.TokenRing
	nodes []*server
	// down marks killed servers (fault injection). The paper ran
	// unreplicated (required-reads = required-writes = 1), so a dead
	// node's partitions are unavailable until restart.
	down      []bool
	downCount int
}

type server struct {
	node *cluster.Node
	pool *sim.Resource // client-side per-node in-flight limit
	db   *btree.Tree
	log  *wal.Log
	// replayMark is the durable-log watermark of the last checkpoint
	// (restart); recovery replays the bytes appended since.
	replayMark int64
}

// New deploys Voldemort across the cluster.
func New(c *cluster.Cluster, opts Options) *Store {
	opts.defaults()
	s := &Store{opts: opts, clust: c}
	// partitions spread evenly: equivalent to an optimal token ring with
	// PartitionsPerNode tokens per node; ownership by node suffices here.
	s.ring = hashring.NewTokenRingOptimal(len(c.Nodes) * opts.PartitionsPerNode)
	for _, n := range c.Nodes {
		pageSize := int64(4 << 10)
		cacheBytes := int64(float64(n.Spec.RAMBytes) * opts.BDBCacheFraction)
		s.nodes = append(s.nodes, &server{
			node: n,
			pool: sim.NewResource(c.Eng, "voldemort-pool", opts.ClientPoolPerNode),
			db: btree.New(btree.Config{
				PageSize:    pageSize,
				BufferPages: int(cacheBytes / pageSize),
				LeafCap:     opts.LeafCap,
				InternalCap: 128,
			}),
			log: wal.New(n, 15*sim.Millisecond),
		})
	}
	s.down = make([]bool, len(c.Nodes))
	return s
}

// Name implements store.Store.
func (s *Store) Name() string { return "voldemort" }

// CopiesOnIngest implements store.IngestCopier: the embedded B-tree copies
// key and field bytes into its own slabs, so callers may reuse a fields
// buffer across writes.
func (s *Store) CopiesOnIngest() bool { return true }

// SlabBytes implements store.SlabReporter: the retained footprint of every
// server's B-tree slabs.
func (s *Store) SlabBytes() int64 {
	var total int64
	for _, sv := range s.nodes {
		total += sv.db.SlabBytes()
	}
	return total
}

// Caps implements store.Store: no scans (as in the paper's YCSB client),
// hence no query-layer support either.
func (s *Store) Caps() store.Caps { return store.Caps{} }

func (s *Store) serverIndex(key string) int {
	return s.ring.Owner(key) % len(s.nodes)
}

func (s *Store) server(key string) *server {
	return s.nodes[s.serverIndex(key)]
}

// chargeIO converts B-tree page statistics into disk time on the server.
func chargeIO(p *sim.Proc, n *cluster.Node, io btree.IOStats) {
	for i := 0; i < io.Misses; i++ {
		n.DiskRead(p, 4<<10, true)
	}
	for i := 0; i < io.DirtyWritebacks; i++ {
		n.DiskWrite(p, 4<<10, true)
	}
}

// Read implements store.Store.
func (s *Store) Read(p *sim.Proc, key string) (store.FieldsView, error) {
	si := s.serverIndex(key)
	if s.down[si] {
		return store.FieldsView{}, store.ErrUnavailable
	}
	sv := s.nodes[si]
	sv.pool.Acquire(p)
	var out store.FieldsView
	var ok bool
	base.Roundtrip(p, sv.node, base.ReqHeader, base.RecordWire, func() {
		sv.node.Compute(p, s.opts.ReadCPU)
		var io btree.IOStats
		out, ok, io = sv.db.Get(key)
		chargeIO(p, sv.node, io)
	})
	sv.pool.Release()
	if !ok {
		return store.FieldsView{}, store.ErrNotFound
	}
	return out, nil
}

func (s *Store) write(p *sim.Proc, key string, f store.Fields) error {
	si := s.serverIndex(key)
	if s.down[si] {
		return store.ErrUnavailable
	}
	sv := s.nodes[si]
	sv.pool.Acquire(p)
	base.Roundtrip(p, sv.node, base.ReqHeader+base.RecordWire, base.AckWire, func() {
		sv.node.Compute(p, s.opts.WriteCPU)
		sv.log.Append(p, int64(store.RawRecordBytes), false)
		io := sv.db.Put(key, f)
		chargeIO(p, sv.node, io)
	})
	sv.pool.Release()
	return nil
}

// Insert implements store.Store.
func (s *Store) Insert(p *sim.Proc, key string, f store.Fields) error {
	return s.write(p, key, f)
}

// Update implements store.Store: a read-modify-write versioned put. The
// BDB descent pays page-read charges, only the leaf holding the record is
// dirtied (no page allocated or split), and the write-ahead log appends
// the replacing record. Updating an absent key pays the full descent and
// returns store.ErrNotFound.
func (s *Store) Update(p *sim.Proc, key string, f store.Fields) error {
	si := s.serverIndex(key)
	if s.down[si] {
		return store.ErrUnavailable
	}
	sv := s.nodes[si]
	sv.pool.Acquire(p)
	var found bool
	base.Roundtrip(p, sv.node, base.ReqHeader+base.RecordWire, base.AckWire, func() {
		sv.node.Compute(p, s.opts.UpdateCPU)
		var io btree.IOStats
		found, io = sv.db.Update(key, f)
		chargeIO(p, sv.node, io)
		if found {
			sv.log.Append(p, int64(store.RawRecordBytes), false)
		}
	})
	sv.pool.Release()
	if !found {
		return store.ErrNotFound
	}
	return nil
}

// Scan implements store.Store: unsupported, as in the paper's YCSB client.
func (s *Store) Scan(p *sim.Proc, start string, count int) (store.Cursor, error) {
	return nil, store.ErrScansUnsupported
}

// Load implements store.Store: buffered into the B-tree's deferred bulk
// build unless LegacyLoad forces per-record inserts.
func (s *Store) Load(key string, f store.Fields) error {
	sv := s.server(key)
	if s.opts.LegacyLoad {
		sv.db.Put(key, f)
	} else {
		sv.db.Load(key, f)
	}
	return nil
}

// DiskUsage implements store.Store: the BDB files plus unrecycled log.
func (s *Store) DiskUsage() int64 {
	var total int64
	for _, sv := range s.nodes {
		total += sv.db.DiskBytes()
	}
	return total
}

// Recovery replay cost model: BDB replays the log tail written since the
// last checkpoint, bounded by the segment size, at ~100 MB/s of CPU.
const (
	replayCPUPerByte     = 10 * sim.Nanosecond
	recoverySegmentBytes = 64 << 20
)

// KillNode implements fault.Target: the server process dies; the buffered
// log tail is lost and its partitions error until restart.
func (s *Store) KillNode(i int) {
	if s.down[i] {
		return
	}
	s.down[i] = true
	s.downCount++
	s.nodes[i].log.Close()
}

// RestartNode implements fault.Target: BDB log replay since the last
// checkpoint is paid in virtual time before the node serves again.
func (s *Store) RestartNode(p *sim.Proc, i int) {
	if !s.down[i] {
		return
	}
	sv := s.nodes[i]
	replay := sv.log.DurableBytes() - sv.replayMark
	if replay > recoverySegmentBytes {
		replay = recoverySegmentBytes
	}
	if replay > 0 {
		sv.node.DiskRead(p, replay, false)
		sv.node.Compute(p, sim.Time(replay)*replayCPUPerByte)
	}
	sv.replayMark = sv.log.DurableBytes()
	sv.log.Reopen()
	s.down[i] = false
	s.downCount--
}

// NodeDown reports whether server i is down (diagnostics/tests).
func (s *Store) NodeDown(i int) bool { return s.down[i] }

var _ store.Store = (*Store)(nil)
