package voldemort

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/store"
)

func deploy(nodes int, opts Options) (*sim.Engine, *Store) {
	e := sim.NewEngine(1)
	c := cluster.New(e, cluster.ClusterM(nodes).Scale(0.01))
	return e, New(c, opts)
}

func TestDefaultsFilled(t *testing.T) {
	var o Options
	o.defaults()
	if o.ClientPoolPerNode == 0 || o.ReadCPU == 0 || o.PartitionsPerNode != 2 {
		t.Fatalf("defaults not filled: %+v", o)
	}
}

func TestPartitionRoutingStable(t *testing.T) {
	_, s := deploy(4, Options{})
	for i := int64(0); i < 100; i++ {
		k := store.Key(i)
		if s.server(k) != s.server(k) {
			t.Fatal("routing not stable")
		}
	}
}

func TestDataSpreadAcrossNodes(t *testing.T) {
	_, s := deploy(4, Options{})
	for i := int64(0); i < 40000; i++ {
		s.Load(store.Key(i), store.MakeFields(i))
	}
	for i, sv := range s.nodes {
		frac := float64(sv.db.Len()) / 40000
		if frac < 0.1 || frac > 0.4 {
			t.Fatalf("node %d holds %.2f of records, want roughly even", i, frac)
		}
	}
}

func TestClientPoolLimitsConcurrency(t *testing.T) {
	e, s := deploy(1, Options{ClientPoolPerNode: 2})
	s.Load(store.Key(1), store.MakeFields(1))
	var last sim.Time
	for i := 0; i < 8; i++ {
		e.Go("c", func(p *sim.Proc) {
			s.Read(p, store.Key(1))
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	e.Run(0)
	// 8 reads through a pool of 2 take at least 4 service times.
	var o Options
	o.defaults()
	if last < 4*o.ReadCPU {
		t.Fatalf("8 reads via pool=2 finished at %v, too parallel", last)
	}
}

func TestReadWriteLatencySymmetric(t *testing.T) {
	e, s := deploy(2, Options{})
	for i := int64(0); i < 20000; i++ {
		s.Load(store.Key(i), store.MakeFields(i))
	}
	var read, write sim.Time
	e.Go("o", func(p *sim.Proc) {
		start := p.Now()
		s.Read(p, store.Key(100))
		read = p.Now() - start
		start = p.Now()
		s.Insert(p, store.Key(90000), store.MakeFields(90000))
		write = p.Now() - start
	})
	e.Run(0)
	ratio := float64(write) / float64(read)
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("write/read = %.2f (%v vs %v), want ~1 (paper: similar latencies)", ratio, write, read)
	}
}

func TestDiskBoundReadsPaySeeks(t *testing.T) {
	e := sim.NewEngine(1)
	c := cluster.New(e, cluster.ClusterD(1).Scale(0.002))
	s := New(c, Options{BDBCacheFraction: 0.25})
	for i := int64(0); i < 40000; i++ { // far exceeds the tiny BDB cache
		s.Load(store.Key(i), store.MakeFields(i))
	}
	var elapsed sim.Time
	e.Go("r", func(p *sim.Proc) {
		start := p.Now()
		for i := int64(0); i < 20; i++ {
			s.Read(p, store.Key(i*1997))
		}
		elapsed = p.Now() - start
	})
	e.Run(0)
	if elapsed < 20*sim.Millisecond {
		t.Fatalf("20 cold reads took %v, want disk-bound latencies (Fig 19)", elapsed)
	}
}

func TestScansRejected(t *testing.T) {
	e, s := deploy(1, Options{})
	e.Go("r", func(p *sim.Proc) {
		if _, err := s.Scan(p, "x", 5); err != store.ErrScansUnsupported {
			t.Errorf("scan err = %v", err)
		}
	})
	e.Run(0)
	if s.Caps().Scans {
		t.Fatal("Caps().Scans must be false")
	}
}

func TestDiskUsageGrowsWithLoad(t *testing.T) {
	_, s := deploy(1, Options{})
	before := s.DiskUsage()
	for i := int64(0); i < 10000; i++ {
		s.Load(store.Key(i), store.MakeFields(i))
	}
	after := s.DiskUsage()
	if after <= before {
		t.Fatal("disk usage did not grow")
	}
	per := float64(after) / 10000
	if per < 450 || per > 650 {
		t.Fatalf("bytes/record = %.0f, want ~550 (Fig 17: 5.5 GB / 10M)", per)
	}
}

func TestUpdateRewritesInPlace(t *testing.T) {
	e, s := deploy(1, Options{})
	for i := int64(0); i < 5000; i++ {
		s.Load(store.Key(i), store.MakeFields(i))
	}
	diskBefore := s.DiskUsage()
	var err error
	e.Go("u", func(p *sim.Proc) {
		for i := int64(0); i < 500; i++ {
			if uerr := s.Update(p, store.Key(i), store.MakeFields(i)); uerr != nil {
				err = uerr
			}
		}
	})
	e.Run(0)
	if err != nil {
		t.Fatalf("update: %v", err)
	}
	if got := s.DiskUsage(); got != diskBefore {
		t.Fatalf("updates grew BDB %d -> %d bytes; must rewrite the leaf in place", diskBefore, got)
	}
}

func TestUpdateLatencyBetweenReadAndReadPlusWrite(t *testing.T) {
	e, s := deploy(1, Options{})
	for i := int64(0); i < 5000; i++ {
		s.Load(store.Key(i), store.MakeFields(i))
	}
	var read, update sim.Time
	e.Go("o", func(p *sim.Proc) {
		start := p.Now()
		s.Read(p, store.Key(100))
		read = p.Now() - start
		start = p.Now()
		if err := s.Update(p, store.Key(100), store.MakeFields(100)); err != nil {
			t.Errorf("update: %v", err)
		}
		update = p.Now() - start
	})
	e.Run(0)
	var o Options
	o.defaults()
	if update <= read {
		t.Fatalf("update %v should exceed a bare read %v (RMW pays the leaf rewrite)", update, read)
	}
	if update >= read+sim.Time(float64(o.WriteCPU)*2) {
		t.Fatalf("update %v should stay well under read+2x write (%v + %v)", update, read, o.WriteCPU)
	}
}

func TestUpdateMissingKeyErrors(t *testing.T) {
	e, s := deploy(1, Options{})
	s.Load(store.Key(1), store.MakeFields(1))
	e.Go("u", func(p *sim.Proc) {
		if err := s.Update(p, store.Key(99999), store.MakeFields(99999)); err != store.ErrNotFound {
			t.Errorf("update of absent key: err = %v, want ErrNotFound", err)
		}
	})
	e.Run(0)
}
