// Package redis models the paper's Redis deployment: independent
// single-node in-memory instances sharded on the client side with a
// Jedis-style MurmurHash ring (§4.4, §6). Each instance runs a
// single-threaded event loop; the YCSB client stores each record in a hash
// and additionally indexes the key in a sorted set so scans are possible.
//
// The two behaviours that shaped the paper's results are reproduced:
//
//   - the Jedis ring distributes keys unevenly, so the hottest instance
//     saturates first and caps aggregate throughput (§5.1);
//   - per-record memory overhead (dict entry, robj headers, sorted-set skip
//     list node, allocator slack) is far larger than the 75-byte payload, so
//     the hottest node exhausts its RAM at 12 nodes and begins swapping —
//     "this actually caused one Redis node to consistently run out of
//     memory in the 12 node configuration".
package redis

import (
	"repro/internal/cluster"
	"repro/internal/hashring"
	"repro/internal/memtable"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/stores/base"
)

// Options tunes the model.
type Options struct {
	// PerRecordOverhead is resident bytes per record beyond the payload.
	// Calibrated so that ~13M records approach a 16 GB node (EXPERIMENTS.md).
	PerRecordOverhead int64
	// ReadCPU/WriteCPU are event-loop service times per operation.
	ReadCPU  sim.Time
	WriteCPU sim.Time
	// ScanPerRecordCPU is the per-returned-record cost of ZRANGEBYLEX+HGETALL.
	ScanPerRecordCPU sim.Time
	// Balanced replaces the Jedis ring with uniform hash-mod sharding
	// (ablation: what Redis scaling would look like with good sharding).
	Balanced bool
	// MemScale scales the memory reserved by runtime inserts. In a scaled
	// simulation node RAM is multiplied by the scale factor while insert
	// *rates* are not, so unscaled runtime growth would hit the RAM
	// ceiling 1/scale times too fast; the harness passes its scale factor
	// so the pressure trajectory over a measured window matches the
	// paper's. Loaded data is always accounted in full.
	MemScale float64
}

func (o *Options) defaults() {
	if o.PerRecordOverhead == 0 {
		o.PerRecordOverhead = 1200
	}
	if o.ReadCPU == 0 {
		o.ReadCPU = 18 * sim.Microsecond
	}
	if o.WriteCPU == 0 {
		o.WriteCPU = 22 * sim.Microsecond
	}
	if o.ScanPerRecordCPU == 0 {
		o.ScanPerRecordCPU = 3 * sim.Microsecond
	}
	if o.MemScale == 0 {
		o.MemScale = 1
	}
}

type sharder interface {
	Owner(key string) int
}

// Store is the sharded Redis deployment.
type Store struct {
	opts  Options
	clust *cluster.Cluster
	ring  sharder
	insts []*instance
	// down marks killed instances (fault injection). Client-side sharding
	// has no failover: a dead shard's keys are unavailable until restart.
	down      []bool
	downCount int
}

// instance is one single-threaded Redis process.
type instance struct {
	node *cluster.Node
	loop *sim.Resource // the single event-loop thread
	// hash + sorted-set index: one ordered structure serves both.
	data      *memtable.Memtable
	resident  int64 // bytes of RAM in use
	swapping  bool
	swapBlock int64
}

// New deploys one instance per cluster node.
func New(c *cluster.Cluster, opts Options) *Store {
	opts.defaults()
	s := &Store{opts: opts, clust: c}
	if opts.Balanced {
		s.ring = hashring.NewMod(len(c.Nodes))
	} else {
		s.ring = hashring.NewJedisRing(len(c.Nodes))
	}
	for i, n := range c.Nodes {
		s.insts = append(s.insts, &instance{
			node: n,
			loop: sim.NewResource(c.Eng, "redis-loop", 1),
			data: memtable.New(int64(i) + 7),
		})
	}
	s.down = make([]bool, len(c.Nodes))
	return s
}

// Name implements store.Store.
func (s *Store) Name() string { return "redis" }

// CopiesOnIngest implements store.IngestCopier: the instance's ordered
// structure is an arena-backed memtable that copies field bytes, so
// callers may reuse a fields buffer across writes.
func (s *Store) CopiesOnIngest() bool { return true }

// SlabBytes implements store.SlabReporter: the retained footprint of every
// instance's memtable arenas.
func (s *Store) SlabBytes() int64 {
	var total int64
	for _, in := range s.insts {
		total += in.data.SlabBytes()
	}
	return total
}

// Caps implements store.Store: the sharded client merges every instance's
// sorted slice, so results are key-ordered and the query layer can plan
// against them.
func (s *Store) Caps() store.Caps { return store.Caps{Scans: true, Queries: true} }

func (s *Store) inst(key string) *instance { return s.insts[s.ring.Owner(key)] }

func (s *Store) instIndex(key string) int { return s.ring.Owner(key) }

func recordBytes(key string, f store.Fields) int64 {
	b := int64(len(key))
	for _, v := range f {
		b += int64(len(v))
	}
	return b
}

// swapPenalty charges anonymous-page swap I/O when the instance has
// exceeded physical memory; the further past RAM it is, the more likely an
// access touches a swapped page.
func (in *instance) swapPenalty(p *sim.Proc) {
	if !in.swapping {
		return
	}
	// The fraction of the instance's pages that cannot be resident is the
	// probability a uniformly chosen record touches a swapped page.
	prob := 1 - float64(in.node.Spec.RAMBytes)/float64(in.resident)
	if prob <= 0 {
		return
	}
	if p.Rand().Float64() < prob {
		in.node.DiskRead(p, 4096, true)
	}
}

func (in *instance) reserve(key string, f store.Fields, overhead int64, memScale float64) {
	delta := int64(float64(recordBytes(key, f)+overhead) * memScale)
	in.resident += delta
	in.node.ReserveRAM(delta)
	if in.resident > in.node.Spec.RAMBytes {
		in.swapping = true
	}
}

// Insert implements store.Store.
func (s *Store) Insert(p *sim.Proc, key string, f store.Fields) error {
	si := s.instIndex(key)
	if s.down[si] {
		return store.ErrUnavailable
	}
	in := s.insts[si]
	base.Roundtrip(p, in.node, base.ReqHeader+base.RecordWire, base.AckWire, func() {
		in.loop.Acquire(p)
		in.swapPenalty(p)
		in.node.Compute(p, s.opts.WriteCPU)
		in.data.Put(key, f)
		in.reserve(key, f, s.opts.PerRecordOverhead, s.opts.MemScale)
		in.loop.Release()
	})
	return nil
}

// Update implements store.Store. Redis HSET of an existing key costs the
// same as an insert without new memory.
func (s *Store) Update(p *sim.Proc, key string, f store.Fields) error {
	si := s.instIndex(key)
	if s.down[si] {
		return store.ErrUnavailable
	}
	in := s.insts[si]
	base.Roundtrip(p, in.node, base.ReqHeader+base.RecordWire, base.AckWire, func() {
		in.loop.Acquire(p)
		in.swapPenalty(p)
		in.node.Compute(p, s.opts.WriteCPU)
		in.data.Put(key, f)
		in.loop.Release()
	})
	return nil
}

// Read implements store.Store.
func (s *Store) Read(p *sim.Proc, key string) (store.FieldsView, error) {
	si := s.instIndex(key)
	if s.down[si] {
		return store.FieldsView{}, store.ErrUnavailable
	}
	in := s.insts[si]
	var out store.FieldsView
	var ok bool
	base.Roundtrip(p, in.node, base.ReqHeader, base.RecordWire, func() {
		in.loop.Acquire(p)
		in.swapPenalty(p)
		in.node.Compute(p, s.opts.ReadCPU)
		out, ok = in.data.Get(key)
		in.loop.Release()
	})
	if !ok {
		return store.FieldsView{}, store.ErrNotFound
	}
	return out, nil
}

// Scan implements store.Store. The sharded client must consult every
// instance (hash sharding destroys key order) and merge, so all virtual
// time is charged before the cursor over the merged result is returned —
// the same sequence the historical materialized Scan charged.
func (s *Store) Scan(p *sim.Proc, start string, count int) (store.Cursor, error) {
	// The merge needs an answer from every shard; any dead shard fails
	// the whole scan.
	if s.downCount > 0 {
		return nil, store.ErrUnavailable
	}
	var all []memtable.Entry
	for _, in := range s.insts {
		in := in
		base.Roundtrip(p, in.node, base.ReqHeader, int64(count)*base.RecordWire, func() {
			in.loop.Acquire(p)
			in.swapPenalty(p)
			in.node.Compute(p, s.opts.ReadCPU+sim.Time(count)*s.opts.ScanPerRecordCPU)
			all = append(all, in.data.Scan(start, count)...)
			in.loop.Release()
		})
	}
	return store.NewSliceCursor(mergeEntries(all, count)), nil
}

func mergeEntries(es []memtable.Entry, count int) []store.Record {
	// Small k-way merge by selection: entries per shard are sorted; total
	// size is at most shards*count, so a simple sort is fine.
	out := make([]store.Record, 0, count)
	used := make([]bool, len(es))
	for len(out) < count {
		best := -1
		for i, e := range es {
			if used[i] {
				continue
			}
			if best == -1 || e.Key < es[best].Key {
				best = i
			}
		}
		if best == -1 {
			break
		}
		used[best] = true
		out = append(out, store.Record{Key: es[best].Key, Fields: es[best].Fields})
	}
	return out
}

// Load implements store.Store.
func (s *Store) Load(key string, f store.Fields) error {
	in := s.inst(key)
	in.data.Put(key, f)
	in.reserve(key, f, s.opts.PerRecordOverhead, 1) // full accounting
	return nil
}

// DiskUsage implements store.Store: Redis keeps data in memory (the paper
// excludes it from the disk-usage experiment).
func (s *Store) DiskUsage() int64 { return 0 }

// HottestLoadFactor reports max instance records / mean, quantifying the
// sharding imbalance.
func (s *Store) HottestLoadFactor() float64 {
	maxN, total := 0, 0
	for _, in := range s.insts {
		n := in.data.Len()
		total += n
		if n > maxN {
			maxN = n
		}
	}
	if total == 0 {
		return 0
	}
	return float64(maxN) / (float64(total) / float64(len(s.insts)))
}

// replayCPUPerByte is the CPU cost of rebuilding in-memory structures from
// an RDB/AOF image on restart (~100 MB/s).
const replayCPUPerByte = 10 * sim.Nanosecond

// KillNode implements fault.Target: the instance process dies. Data is not
// lost to the model (the paper ran with persistence configured), but clients
// of that shard fail until restart.
func (s *Store) KillNode(i int) {
	if s.down[i] {
		return
	}
	s.down[i] = true
	s.downCount++
}

// RestartNode implements fault.Target: the instance reloads its dataset
// from the persistence image before serving again.
func (s *Store) RestartNode(p *sim.Proc, i int) {
	if !s.down[i] {
		return
	}
	in := s.insts[i]
	if in.resident > 0 {
		in.node.DiskRead(p, in.resident, false)
		in.node.Compute(p, sim.Time(in.resident)*replayCPUPerByte)
	}
	s.down[i] = false
	s.downCount--
}

// NodeDown reports whether instance i is down (diagnostics/tests).
func (s *Store) NodeDown(i int) bool { return s.down[i] }

// SwappingNodes reports how many instances have exceeded physical RAM.
func (s *Store) SwappingNodes() int {
	n := 0
	for _, in := range s.insts {
		if in.swapping {
			n++
		}
	}
	return n
}

var _ store.Store = (*Store)(nil)
