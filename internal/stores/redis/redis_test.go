package redis

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/memtable"
	"repro/internal/sim"
	"repro/internal/store"
)

func deploy(nodes int, opts Options) (*sim.Engine, *Store) {
	e := sim.NewEngine(1)
	c := cluster.New(e, cluster.ClusterM(nodes).Scale(0.01))
	return e, New(c, opts)
}

func TestDefaultsFilled(t *testing.T) {
	var o Options
	o.defaults()
	if o.ReadCPU == 0 || o.WriteCPU == 0 || o.PerRecordOverhead == 0 {
		t.Fatalf("defaults not filled: %+v", o)
	}
}

func TestShardingRoutesConsistently(t *testing.T) {
	_, s := deploy(4, Options{})
	for i := int64(0); i < 50; i++ {
		k := store.Key(i)
		if s.inst(k) != s.inst(k) {
			t.Fatal("same key routed differently")
		}
	}
}

func TestMergeEntriesOrdersAndBounds(t *testing.T) {
	es := []memtable.Entry{
		{Key: "c"}, {Key: "a"}, {Key: "e"}, {Key: "b"}, {Key: "d"},
	}
	out := mergeEntries(es, 3)
	if len(out) != 3 || out[0].Key != "a" || out[1].Key != "b" || out[2].Key != "c" {
		t.Fatalf("merge = %v", out)
	}
	if got := mergeEntries(nil, 5); len(got) != 0 {
		t.Fatalf("merge of nothing = %v", got)
	}
	if got := mergeEntries(es, 100); len(got) != 5 {
		t.Fatalf("merge larger than input = %d entries", len(got))
	}
}

func TestSingleThreadedLoopSerializes(t *testing.T) {
	e, s := deploy(1, Options{})
	s.Load(store.Key(1), store.MakeFields(1))
	var last sim.Time
	const clients = 16
	for i := 0; i < clients; i++ {
		e.Go("c", func(p *sim.Proc) {
			s.Read(p, store.Key(1))
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	e.Run(0)
	// 16 concurrent reads through one event loop cannot finish in one
	// service time; they serialize.
	var o Options
	o.defaults()
	if last < sim.Time(clients/2)*o.ReadCPU {
		t.Fatalf("16 reads finished at %v, too parallel for a single event loop", last)
	}
}

func TestMemoryAccountingAndSwap(t *testing.T) {
	e := sim.NewEngine(1)
	spec := cluster.ClusterM(1)
	spec.Node.RAMBytes = 1 << 20 // 1 MiB node: overflow fast
	c := cluster.New(e, spec)
	s := New(c, Options{})
	for i := int64(0); i < 2000; i++ { // 2000 x ~1.3KB > 1MiB
		s.Load(store.Key(i), store.MakeFields(i))
	}
	if s.SwappingNodes() != 1 {
		t.Fatalf("swapping nodes = %d, want 1", s.SwappingNodes())
	}
	// Reads on the swapping instance should sometimes pay disk time.
	var elapsed sim.Time
	e.Go("r", func(p *sim.Proc) {
		start := p.Now()
		for i := int64(0); i < 50; i++ {
			s.Read(p, store.Key(i*13))
		}
		elapsed = p.Now() - start
	})
	e.Run(0)
	if elapsed < 10*sim.Millisecond {
		t.Fatalf("reads on swapping node took %v, expected swap-in seeks", elapsed)
	}
}

func TestBalancedOptionUsesModSharding(t *testing.T) {
	_, s := deploy(8, Options{Balanced: true})
	for i := int64(0); i < 80000; i++ {
		s.Load(store.Key(i), store.MakeFields(i))
	}
	if lf := s.HottestLoadFactor(); lf > 1.05 {
		t.Fatalf("balanced load factor %.3f, want <= 1.05", lf)
	}
}

func TestJedisDefaultImbalanced(t *testing.T) {
	_, s := deploy(12, Options{})
	for i := int64(0); i < 120000; i++ {
		s.Load(store.Key(i), store.MakeFields(i))
	}
	if lf := s.HottestLoadFactor(); lf < 1.1 {
		t.Fatalf("jedis load factor %.3f, want visible imbalance (>1.1)", lf)
	}
}

func TestScanConsultsAllShards(t *testing.T) {
	e, s := deploy(3, Options{})
	for i := int64(0); i < 300; i++ {
		s.Load(store.Key(i), store.MakeFields(i))
	}
	e.Go("r", func(p *sim.Proc) {
		recs, err := store.ScanAll(p, s, store.Key(0), 25)
		if err != nil || len(recs) != 25 {
			t.Errorf("scan = %d records, err %v", len(recs), err)
			return
		}
		for i := 1; i < len(recs); i++ {
			if recs[i].Key <= recs[i-1].Key {
				t.Errorf("scan unordered at %d: %s <= %s", i, recs[i].Key, recs[i-1].Key)
			}
		}
	})
	e.Run(0)
}

func TestHottestLoadFactorEmpty(t *testing.T) {
	_, s := deploy(2, Options{})
	if s.HottestLoadFactor() != 0 {
		t.Fatal("empty store should report 0 load factor")
	}
}

func TestUpdateDoesNotGrowMemory(t *testing.T) {
	_, s := deploy(1, Options{})
	e := sim.NewEngine(2)
	c := cluster.New(e, cluster.ClusterM(1).Scale(0.01))
	s = New(c, Options{})
	e.Go("w", func(p *sim.Proc) {
		s.Insert(p, "k", store.MakeFields(1))
		before := s.insts[0].resident
		for i := 0; i < 10; i++ {
			s.Update(p, "k", store.MakeFields(int64(i)))
		}
		if s.insts[0].resident != before {
			t.Errorf("updates grew resident memory %d -> %d", before, s.insts[0].resident)
		}
	})
	e.Run(0)
}
