package base

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
)

func TestRoundtripOrdersPhases(t *testing.T) {
	e := sim.NewEngine(1)
	c := cluster.New(e, cluster.ClusterM(2))
	var handlerAt, doneAt sim.Time
	e.Go("c", func(p *sim.Proc) {
		Roundtrip(p, c.Nodes[0], ReqHeader, RecordWire, func() {
			handlerAt = p.Now()
			p.Sleep(sim.Millisecond)
		})
		doneAt = p.Now()
	})
	e.Run(0)
	if handlerAt == 0 {
		t.Fatal("handler ran before request propagation")
	}
	if doneAt <= handlerAt+sim.Millisecond {
		t.Fatal("response did not cost network time")
	}
}

func TestRoundtripNilHandler(t *testing.T) {
	e := sim.NewEngine(1)
	c := cluster.New(e, cluster.ClusterM(1))
	e.Go("c", func(p *sim.Proc) {
		Roundtrip(p, c.Nodes[0], 10, 10, nil) // must not panic
	})
	e.Run(0)
}

func TestForwardUsesBothNICs(t *testing.T) {
	e := sim.NewEngine(1)
	c := cluster.New(e, cluster.ClusterM(2))
	var elapsed sim.Time
	e.Go("c", func(p *sim.Proc) {
		start := p.Now()
		Forward(p, c.Nodes[0], c.Nodes[1], 1<<20, 1<<20, nil)
		elapsed = p.Now() - start
	})
	e.Run(0)
	// Two 1 MiB transfers at ~117 MB/s is ~17 ms.
	if elapsed < 15*sim.Millisecond {
		t.Fatalf("forward of 2x1MiB took %v, want >= ~17ms", elapsed)
	}
}
