// Package base holds helpers shared by the store models: the client-to-
// server round-trip pattern (YCSB clients ran on separate machines wired to
// the same gigabit switch) and message-size constants.
package base

import (
	"repro/internal/cluster"
	"repro/internal/sim"
)

// Message size approximations (bytes) for request/response framing.
const (
	ReqHeader  = 64  // op header + key
	RecordWire = 140 // one record serialized with field names
	AckWire    = 32  // small acknowledgement
)

// Roundtrip models one synchronous client request against node n: request
// propagation to the server, the server-side handler, then the response
// through the server's NIC back to the client. The handler runs in the
// calling process and should charge CPU/disk work to the server's resources.
func Roundtrip(p *sim.Proc, n *cluster.Node, reqBytes, respBytes int64, handler func()) {
	p.Sleep(n.NetDelay(reqBytes))
	if handler != nil {
		handler()
	}
	n.Send(p, n, respBytes)
}

// Forward models a server-to-server hop (coordinator to replica owner):
// request over the source NIC, handler on the destination, response back.
func Forward(p *sim.Proc, from, to *cluster.Node, reqBytes, respBytes int64, handler func()) {
	from.RPC(p, to, reqBytes, respBytes, handler)
}
