package btree

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func small() Config {
	return Config{PageSize: 4096, BufferPages: 1 << 20, LeafCap: 8, InternalCap: 8}
}

func fields(v string) [][]byte { return [][]byte{[]byte(v)} }

func TestPutGetRoundTrip(t *testing.T) {
	tr := New(small())
	for i := 0; i < 1000; i++ {
		tr.Put(fmt.Sprintf("k%06d", i), fields(fmt.Sprintf("v%d", i)))
	}
	if tr.Len() != 1000 {
		t.Fatalf("Len = %d, want 1000", tr.Len())
	}
	for i := 0; i < 1000; i++ {
		v, ok, _ := tr.Get(fmt.Sprintf("k%06d", i))
		if !ok || string(v.Field(0)) != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get(k%06d) = %v, %v", i, v, ok)
		}
	}
	if _, ok, _ := tr.Get("zzz"); ok {
		t.Fatal("found absent key")
	}
}

func TestPutReplaceKeepsLen(t *testing.T) {
	tr := New(small())
	tr.Put("k", fields("a"))
	tr.Put("k", fields("b"))
	if tr.Len() != 1 {
		t.Fatalf("Len = %d after replace, want 1", tr.Len())
	}
	v, _, _ := tr.Get("k")
	if string(v.Field(0)) != "b" {
		t.Fatalf("value %s, want b", v.Field(0))
	}
}

func TestRandomOrderInsertionSorted(t *testing.T) {
	tr := New(small())
	rng := rand.New(rand.NewSource(7))
	perm := rng.Perm(2000)
	for _, i := range perm {
		tr.Put(fmt.Sprintf("k%06d", i), fields("v"))
	}
	got, _ := tr.Scan("", 2000)
	if len(got) != 2000 {
		t.Fatalf("scan returned %d, want 2000", len(got))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i].Key < got[j].Key }) {
		t.Fatal("scan output not sorted")
	}
}

func TestHeightGrowsLogarithmically(t *testing.T) {
	tr := New(small()) // caps of 8
	for i := 0; i < 10000; i++ {
		tr.Put(fmt.Sprintf("k%07d", i), fields("v"))
	}
	if h := tr.Height(); h < 4 || h > 7 {
		t.Fatalf("height = %d for 10k entries with fanout 8, want 4..7", h)
	}
}

func TestScanFromMiddle(t *testing.T) {
	tr := New(small())
	for i := 0; i < 100; i++ {
		tr.Put(fmt.Sprintf("k%04d", i), fields("v"))
	}
	got, _ := tr.Scan("k0050", 10)
	if len(got) != 10 || got[0].Key != "k0050" || got[9].Key != "k0059" {
		t.Fatalf("scan = %v", got)
	}
}

func TestScanAllFromCountsTail(t *testing.T) {
	tr := New(small())
	for i := 0; i < 100; i++ {
		tr.Put(fmt.Sprintf("k%04d", i), fields("v"))
	}
	n, io := tr.ScanAllFrom("k0040")
	if n != 60 {
		t.Fatalf("ScanAllFrom counted %d entries, want 60", n)
	}
	if io.PagesTouched < 60/8 {
		t.Fatalf("pages touched %d, want at least %d leaves", io.PagesTouched, 60/8)
	}
}

func TestBufferPoolMissesWhenSmall(t *testing.T) {
	cfg := small()
	cfg.BufferPages = 4 // tiny pool
	tr := New(cfg)
	var loadIO IOStats
	for i := 0; i < 5000; i++ {
		loadIO.Add(tr.Put(fmt.Sprintf("k%07d", i), fields("v")))
	}
	if loadIO.Misses == 0 {
		t.Fatal("no buffer pool misses with a 4-page pool")
	}
	if loadIO.DirtyWritebacks == 0 {
		t.Fatal("no dirty writebacks despite eviction pressure")
	}
	// Random reads should also miss.
	_, _, io := tr.Get("k0002500")
	if io.Misses == 0 {
		t.Fatal("read of cold page did not miss")
	}
}

func TestBufferPoolHitsWhenLarge(t *testing.T) {
	tr := New(small()) // pool holds 1M pages: everything fits
	for i := 0; i < 5000; i++ {
		tr.Put(fmt.Sprintf("k%07d", i), fields("v"))
	}
	_, _, io := tr.Get("k0002500")
	if io.Misses != 0 {
		t.Fatalf("read with all-in-pool had %d misses", io.Misses)
	}
}

func TestRepeatedReadsOfSamePageHitAfterFirstMiss(t *testing.T) {
	cfg := small()
	cfg.BufferPages = 8
	tr := New(cfg)
	for i := 0; i < 1000; i++ {
		tr.Put(fmt.Sprintf("k%07d", i), fields("v"))
	}
	tr.Get("k0000500")
	_, _, io := tr.Get("k0000500") // same path now resident
	if io.Misses != 0 && io.Misses >= io.PagesTouched {
		t.Fatalf("second read missed all %d pages", io.PagesTouched)
	}
}

func TestDiskBytesGrowsWithPages(t *testing.T) {
	tr := New(small())
	before := tr.DiskBytes()
	for i := 0; i < 1000; i++ {
		tr.Put(fmt.Sprintf("k%07d", i), fields("v"))
	}
	if tr.DiskBytes() <= before {
		t.Fatal("disk bytes did not grow with inserts")
	}
	if tr.DiskBytes() != int64(tr.Pages())*4096 {
		t.Fatalf("DiskBytes %d != pages %d * 4096", tr.DiskBytes(), tr.Pages())
	}
}

// Property: the tree agrees with a reference map after arbitrary puts.
func TestPropertyAgainstMap(t *testing.T) {
	f := func(ops []struct {
		K uint16
		V string
	}) bool {
		tr := New(small())
		ref := map[string]string{}
		for _, op := range ops {
			k := fmt.Sprintf("k%05d", op.K)
			tr.Put(k, fields(op.V))
			ref[k] = op.V
		}
		if tr.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			got, ok, _ := tr.Get(k)
			if !ok || string(got.Field(0)) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: scan output equals the sorted reference filtered to >= start.
func TestPropertyScanMatchesRef(t *testing.T) {
	f := func(keys []uint16, start uint16, n8 uint8) bool {
		limit := int(n8%32) + 1
		tr := New(small())
		ref := map[string]bool{}
		for _, k := range keys {
			key := fmt.Sprintf("k%05d", k)
			tr.Put(key, fields("v"))
			ref[key] = true
		}
		startKey := fmt.Sprintf("k%05d", start)
		var want []string
		for k := range ref {
			if k >= startKey {
				want = append(want, k)
			}
		}
		sort.Strings(want)
		if len(want) > limit {
			want = want[:limit]
		}
		got, _ := tr.Scan(startKey, limit)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i].Key != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// --- Deferred bulk build ---

func TestBulkLoadEmptyBatch(t *testing.T) {
	tr := New(small())
	// No Load calls at all: every accessor works on the empty tree.
	if tr.Len() != 0 || tr.Height() != 1 || tr.Pages() != 1 {
		t.Fatalf("empty tree shape: len=%d h=%d pages=%d", tr.Len(), tr.Height(), tr.Pages())
	}
	if _, ok, _ := tr.Get("x"); ok {
		t.Fatal("empty tree found a key")
	}
	// A Put after the (trivial) seal still works.
	tr.Put("a", fields("v"))
	if tr.Len() != 1 {
		t.Fatalf("Len = %d after post-seal Put", tr.Len())
	}
}

func TestBulkLoadSingleKey(t *testing.T) {
	tr := New(small())
	tr.Load("k", fields("v"))
	v, ok, _ := tr.Get("k")
	if !ok || string(v.Field(0)) != "v" {
		t.Fatalf("Get after single-key bulk load = %v, %v", v, ok)
	}
	if tr.Len() != 1 || tr.Height() != 1 {
		t.Fatalf("single-key tree shape: len=%d h=%d", tr.Len(), tr.Height())
	}
}

func TestBulkLoadDuplicateLastWins(t *testing.T) {
	tr := New(small())
	for i := 0; i < 100; i++ {
		tr.Load(fmt.Sprintf("k%03d", i), fields("first"))
	}
	tr.Load("k042", fields("second"))
	tr.Load("k042", fields("third"))
	if tr.Len() != 100 {
		t.Fatalf("Len = %d with in-batch duplicates, want 100", tr.Len())
	}
	v, ok, _ := tr.Get("k042")
	if !ok || string(v.Field(0)) != "third" {
		t.Fatalf("duplicate key resolved to %q, want last write", v.Field(0))
	}
}

func TestBulkLoadAcrossMultipleBatches(t *testing.T) {
	tr := New(small())
	for i := 0; i < 500; i++ {
		tr.Load(fmt.Sprintf("k%04d", i), fields("a"))
	}
	if tr.Len() != 500 { // seals batch one
		t.Fatalf("Len = %d", tr.Len())
	}
	for i := 500; i < 1000; i++ {
		tr.Load(fmt.Sprintf("k%04d", i), fields("b"))
	}
	got, _ := tr.Scan("", 1000)
	if len(got) != 1000 {
		t.Fatalf("scan after second batch returned %d, want 1000", len(got))
	}
}

// TestBulkBuildEquivalence pins the bulk path's contract: a bulk-loaded
// tree is bit-equivalent to a per-record-built one — same shape, same page
// count, same Get/Scan results, and (the strong half) identical I/O
// charges on every subsequent operation, including buffer-pool misses and
// dirty write-backs under an eviction-heavy pool, which requires the
// rebuilt pool's contents, recency order and dirty flags to match the
// per-touch-maintained pool exactly.
func TestBulkBuildEquivalence(t *testing.T) {
	cfg := small()
	cfg.BufferPages = 7 // tiny: constant eviction, so pool state divergence shows up immediately
	perRecord := New(cfg)
	bulk := New(cfg)
	rng := rand.New(rand.NewSource(11))
	perm := rng.Perm(3000)
	for _, i := range perm { // hash-permuted arrival, like the benchmark's load
		k := fmt.Sprintf("k%06d", i)
		perRecord.Put(k, fields(fmt.Sprintf("v%d", i)))
		bulk.Load(k, fields(fmt.Sprintf("v%d", i)))
	}
	if bulk.Len() != perRecord.Len() || bulk.Height() != perRecord.Height() || bulk.Pages() != perRecord.Pages() {
		t.Fatalf("shape diverged: bulk len=%d h=%d pages=%d, per-record len=%d h=%d pages=%d",
			bulk.Len(), bulk.Height(), bulk.Pages(), perRecord.Len(), perRecord.Height(), perRecord.Pages())
	}
	if bulk.DiskBytes() != perRecord.DiskBytes() {
		t.Fatalf("disk bytes diverged: %d vs %d", bulk.DiskBytes(), perRecord.DiskBytes())
	}
	// Identical op sequence, compared op by op: values AND charges.
	opRng := rand.New(rand.NewSource(12))
	for op := 0; op < 4000; op++ {
		switch opRng.Intn(4) {
		case 0:
			k := fmt.Sprintf("k%06d", opRng.Intn(3500)) // some misses
			va, oka, ioa := perRecord.Get(k)
			vb, okb, iob := bulk.Get(k)
			if oka != okb || ioa != iob {
				t.Fatalf("op %d: Get(%s) diverged: (%v,%+v) vs (%v,%+v)", op, k, oka, ioa, okb, iob)
			}
			if oka && string(va.Field(0)) != string(vb.Field(0)) {
				t.Fatalf("op %d: Get(%s) values diverged", op, k)
			}
		case 1:
			k := fmt.Sprintf("k%06d", 3000+opRng.Intn(500))
			ioa := perRecord.Put(k, fields("new"))
			iob := bulk.Put(k, fields("new"))
			if ioa != iob {
				t.Fatalf("op %d: Put(%s) charges diverged: %+v vs %+v", op, k, ioa, iob)
			}
		case 2:
			k := fmt.Sprintf("k%06d", opRng.Intn(3000))
			founda, ioa := perRecord.Update(k, fields("upd"))
			foundb, iob := bulk.Update(k, fields("upd"))
			if founda != foundb || ioa != iob {
				t.Fatalf("op %d: Update(%s) diverged: (%v,%+v) vs (%v,%+v)", op, k, founda, ioa, foundb, iob)
			}
		case 3:
			k := fmt.Sprintf("k%06d", opRng.Intn(3000))
			ra, ioa := perRecord.Scan(k, 20)
			rb, iob := bulk.Scan(k, 20)
			if len(ra) != len(rb) || ioa != iob {
				t.Fatalf("op %d: Scan(%s) diverged: (%d,%+v) vs (%d,%+v)", op, k, len(ra), ioa, len(rb), iob)
			}
		}
	}
}

// --- In-place updates ---

func TestUpdateRewritesInPlace(t *testing.T) {
	tr := New(small())
	for i := 0; i < 1000; i++ {
		tr.Put(fmt.Sprintf("k%05d", i), fields("old"))
	}
	pages, height, n := tr.Pages(), tr.Height(), tr.Len()
	found, io := tr.Update("k00500", fields("new"))
	if !found {
		t.Fatal("update of existing key reported missing")
	}
	if io.PagesTouched == 0 {
		t.Fatal("update touched no pages")
	}
	if tr.Pages() != pages || tr.Height() != height || tr.Len() != n {
		t.Fatalf("in-place update changed shape: pages %d->%d height %d->%d len %d->%d",
			pages, tr.Pages(), height, tr.Height(), n, tr.Len())
	}
	v, _, _ := tr.Get("k00500")
	if string(v.Field(0)) != "new" {
		t.Fatalf("updated value = %q", v.Field(0))
	}
}

func TestUpdateMissingKeyPaysDescent(t *testing.T) {
	tr := New(small())
	for i := 0; i < 1000; i++ {
		tr.Put(fmt.Sprintf("k%05d", i), fields("v"))
	}
	found, io := tr.Update("zzz", fields("x"))
	if found {
		t.Fatal("update found an absent key")
	}
	if io.PagesTouched < tr.Height() {
		t.Fatalf("missed update touched %d pages, want a full descent (height %d)", io.PagesTouched, tr.Height())
	}
	if tr.Len() != 1000 {
		t.Fatalf("missed update changed Len to %d", tr.Len())
	}
}

func TestUpdateDirtiesOnlyLeaf(t *testing.T) {
	cfg := small()
	cfg.BufferPages = 4
	tr := New(cfg)
	for i := 0; i < 5000; i++ {
		tr.Put(fmt.Sprintf("k%07d", i), fields("v"))
	}
	// Drain dirty pages out of the tiny pool with clean reads, then watch
	// an update: its descent reads internals clean, so later evictions of
	// those internals must not charge write-backs for them.
	for i := 0; i < 5000; i += 7 {
		tr.Get(fmt.Sprintf("k%07d", i))
	}
	_, io := tr.Update("k0002500", fields("w"))
	if io.PagesTouched < 2 {
		t.Fatalf("update touched %d pages, want a descent", io.PagesTouched)
	}
	// Updates never allocate: repeated updates keep the page count fixed.
	pages := tr.Pages()
	for i := 0; i < 2000; i++ {
		tr.Update(fmt.Sprintf("k%07d", i), fields("w2"))
	}
	if tr.Pages() != pages {
		t.Fatalf("2000 updates grew pages %d -> %d", pages, tr.Pages())
	}
}

// Property: bulk and per-record construction agree with a reference map
// under arbitrary interleavings of batches and point ops.
func TestPropertyBulkAgainstMap(t *testing.T) {
	f := func(batch []uint16, extra []uint16) bool {
		tr := New(small())
		ref := map[string]bool{}
		for _, k := range batch {
			key := fmt.Sprintf("k%05d", k)
			tr.Load(key, fields("v"))
			ref[key] = true
		}
		for _, k := range extra {
			key := fmt.Sprintf("x%05d", k)
			tr.Put(key, fields("v"))
			ref[key] = true
		}
		if tr.Len() != len(ref) {
			return false
		}
		for k := range ref {
			if _, ok, _ := tr.Get(k); !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPut(b *testing.B) {
	tr := New(Config{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Put(fmt.Sprintf("key%09d", i), fields("0123456789"))
	}
}

func BenchmarkGet(b *testing.B) {
	tr := New(Config{})
	for i := 0; i < 100000; i++ {
		tr.Put(fmt.Sprintf("key%09d", i), fields("0123456789"))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(fmt.Sprintf("key%09d", i%100000))
	}
}

func TestCursorMatchesScanEntriesAndIO(t *testing.T) {
	build := func() *Tree {
		tr := New(small())
		for i := 0; i < 100; i++ {
			tr.Put(fmt.Sprintf("k%04d", i), fields("v"))
		}
		return tr
	}
	a, b := build(), build()
	got, scanIO := a.Scan("k0030", 25)
	c := b.NewCursor("k0030")
	var keys []string
	for len(keys) < 25 && c.Next() {
		keys = append(keys, c.Key())
	}
	if len(got) != 25 || len(keys) != 25 {
		t.Fatalf("scan %d entries, cursor %d entries, want 25", len(got), len(keys))
	}
	for i := range got {
		if got[i].Key != keys[i] {
			t.Fatalf("entry %d: scan %s, cursor %s", i, got[i].Key, keys[i])
		}
	}
	if scanIO != c.IO() {
		t.Fatalf("IO diverges: scan %+v, cursor %+v", scanIO, c.IO())
	}
}

func TestCursorZeroAndTailEdges(t *testing.T) {
	tr := New(small())
	for i := 0; i < 20; i++ {
		tr.Put(fmt.Sprintf("k%04d", i), fields("v"))
	}
	// Zero-count scan touches only the descent: an unread cursor matches.
	_, zeroIO := tr.Scan("k0005", 0)
	if unread := tr.NewCursor("k0005").IO(); zeroIO != unread {
		t.Fatalf("count=0 scan IO %+v != unread cursor IO %+v", zeroIO, unread)
	}
	// A cursor past the last key ends cleanly.
	c := tr.NewCursor("zzz")
	if c.Next() {
		t.Fatalf("cursor past the tail yielded %s", c.Key())
	}
}
