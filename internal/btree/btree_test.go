package btree

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func small() Config {
	return Config{PageSize: 4096, BufferPages: 1 << 20, LeafCap: 8, InternalCap: 8}
}

func fields(v string) [][]byte { return [][]byte{[]byte(v)} }

func TestPutGetRoundTrip(t *testing.T) {
	tr := New(small())
	for i := 0; i < 1000; i++ {
		tr.Put(fmt.Sprintf("k%06d", i), fields(fmt.Sprintf("v%d", i)))
	}
	if tr.Len() != 1000 {
		t.Fatalf("Len = %d, want 1000", tr.Len())
	}
	for i := 0; i < 1000; i++ {
		v, ok, _ := tr.Get(fmt.Sprintf("k%06d", i))
		if !ok || string(v[0]) != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get(k%06d) = %v, %v", i, v, ok)
		}
	}
	if _, ok, _ := tr.Get("zzz"); ok {
		t.Fatal("found absent key")
	}
}

func TestPutReplaceKeepsLen(t *testing.T) {
	tr := New(small())
	tr.Put("k", fields("a"))
	tr.Put("k", fields("b"))
	if tr.Len() != 1 {
		t.Fatalf("Len = %d after replace, want 1", tr.Len())
	}
	v, _, _ := tr.Get("k")
	if string(v[0]) != "b" {
		t.Fatalf("value %s, want b", v[0])
	}
}

func TestRandomOrderInsertionSorted(t *testing.T) {
	tr := New(small())
	rng := rand.New(rand.NewSource(7))
	perm := rng.Perm(2000)
	for _, i := range perm {
		tr.Put(fmt.Sprintf("k%06d", i), fields("v"))
	}
	got, _ := tr.Scan("", 2000)
	if len(got) != 2000 {
		t.Fatalf("scan returned %d, want 2000", len(got))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i].Key < got[j].Key }) {
		t.Fatal("scan output not sorted")
	}
}

func TestHeightGrowsLogarithmically(t *testing.T) {
	tr := New(small()) // caps of 8
	for i := 0; i < 10000; i++ {
		tr.Put(fmt.Sprintf("k%07d", i), fields("v"))
	}
	if h := tr.Height(); h < 4 || h > 7 {
		t.Fatalf("height = %d for 10k entries with fanout 8, want 4..7", h)
	}
}

func TestScanFromMiddle(t *testing.T) {
	tr := New(small())
	for i := 0; i < 100; i++ {
		tr.Put(fmt.Sprintf("k%04d", i), fields("v"))
	}
	got, _ := tr.Scan("k0050", 10)
	if len(got) != 10 || got[0].Key != "k0050" || got[9].Key != "k0059" {
		t.Fatalf("scan = %v", got)
	}
}

func TestScanAllFromCountsTail(t *testing.T) {
	tr := New(small())
	for i := 0; i < 100; i++ {
		tr.Put(fmt.Sprintf("k%04d", i), fields("v"))
	}
	n, io := tr.ScanAllFrom("k0040")
	if n != 60 {
		t.Fatalf("ScanAllFrom counted %d entries, want 60", n)
	}
	if io.PagesTouched < 60/8 {
		t.Fatalf("pages touched %d, want at least %d leaves", io.PagesTouched, 60/8)
	}
}

func TestBufferPoolMissesWhenSmall(t *testing.T) {
	cfg := small()
	cfg.BufferPages = 4 // tiny pool
	tr := New(cfg)
	var loadIO IOStats
	for i := 0; i < 5000; i++ {
		loadIO.Add(tr.Put(fmt.Sprintf("k%07d", i), fields("v")))
	}
	if loadIO.Misses == 0 {
		t.Fatal("no buffer pool misses with a 4-page pool")
	}
	if loadIO.DirtyWritebacks == 0 {
		t.Fatal("no dirty writebacks despite eviction pressure")
	}
	// Random reads should also miss.
	_, _, io := tr.Get("k0002500")
	if io.Misses == 0 {
		t.Fatal("read of cold page did not miss")
	}
}

func TestBufferPoolHitsWhenLarge(t *testing.T) {
	tr := New(small()) // pool holds 1M pages: everything fits
	for i := 0; i < 5000; i++ {
		tr.Put(fmt.Sprintf("k%07d", i), fields("v"))
	}
	_, _, io := tr.Get("k0002500")
	if io.Misses != 0 {
		t.Fatalf("read with all-in-pool had %d misses", io.Misses)
	}
}

func TestRepeatedReadsOfSamePageHitAfterFirstMiss(t *testing.T) {
	cfg := small()
	cfg.BufferPages = 8
	tr := New(cfg)
	for i := 0; i < 1000; i++ {
		tr.Put(fmt.Sprintf("k%07d", i), fields("v"))
	}
	tr.Get("k0000500")
	_, _, io := tr.Get("k0000500") // same path now resident
	if io.Misses != 0 && io.Misses >= io.PagesTouched {
		t.Fatalf("second read missed all %d pages", io.PagesTouched)
	}
}

func TestDiskBytesGrowsWithPages(t *testing.T) {
	tr := New(small())
	before := tr.DiskBytes()
	for i := 0; i < 1000; i++ {
		tr.Put(fmt.Sprintf("k%07d", i), fields("v"))
	}
	if tr.DiskBytes() <= before {
		t.Fatal("disk bytes did not grow with inserts")
	}
	if tr.DiskBytes() != int64(tr.Pages())*4096 {
		t.Fatalf("DiskBytes %d != pages %d * 4096", tr.DiskBytes(), tr.Pages())
	}
}

// Property: the tree agrees with a reference map after arbitrary puts.
func TestPropertyAgainstMap(t *testing.T) {
	f := func(ops []struct {
		K uint16
		V string
	}) bool {
		tr := New(small())
		ref := map[string]string{}
		for _, op := range ops {
			k := fmt.Sprintf("k%05d", op.K)
			tr.Put(k, fields(op.V))
			ref[k] = op.V
		}
		if tr.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			got, ok, _ := tr.Get(k)
			if !ok || string(got[0]) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: scan output equals the sorted reference filtered to >= start.
func TestPropertyScanMatchesRef(t *testing.T) {
	f := func(keys []uint16, start uint16, n8 uint8) bool {
		limit := int(n8%32) + 1
		tr := New(small())
		ref := map[string]bool{}
		for _, k := range keys {
			key := fmt.Sprintf("k%05d", k)
			tr.Put(key, fields("v"))
			ref[key] = true
		}
		startKey := fmt.Sprintf("k%05d", start)
		var want []string
		for k := range ref {
			if k >= startKey {
				want = append(want, k)
			}
		}
		sort.Strings(want)
		if len(want) > limit {
			want = want[:limit]
		}
		got, _ := tr.Scan(startKey, limit)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i].Key != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPut(b *testing.B) {
	tr := New(Config{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Put(fmt.Sprintf("key%09d", i), fields("0123456789"))
	}
}

func BenchmarkGet(b *testing.B) {
	tr := New(Config{})
	for i := 0; i < 100000; i++ {
		tr.Put(fmt.Sprintf("key%09d", i), fields("0123456789"))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(fmt.Sprintf("key%09d", i%100000))
	}
}
