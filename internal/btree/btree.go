// Package btree implements a page-oriented B+tree with an LRU buffer pool,
// modeling InnoDB (the paper's MySQL storage engine) and BerkeleyDB (the
// storage engine the paper's Voldemort configuration embedded). Operations
// return I/O statistics — pages touched, buffer-pool misses, dirty
// write-backs — which the store models convert into simulated disk time.
//
// Retained state is pointer-free: key bytes and field payloads live in two
// append-only slabs owned by the tree, and nodes hold packed scalar refs
// ([]kref / []vref) instead of strings and [][]byte values, so a
// multi-million-row table is a handful of large buffers plus small scalar
// slices to the garbage collector. Field layouts are interned in a shared
// shape table; a same-shape update overwrites payload bytes in place.
//
// Two host-side fast paths keep the model cheap to execute without changing
// anything it simulates:
//
//   - Every key carries its first 16 bytes as two big-endian words, and all
//     searches order keys by register compare, falling back to a byte-wise
//     compare only on a double tie (the same treatment the memtable's skip
//     list got). Sound because zero-padded big-endian prefix order is a
//     coarsening of lexicographic order.
//   - The load phase is batched: Load buffers entries and the tree is built
//     lazily on first use (see Load). The deferred build replays the batch
//     in arrival order — hash-permuted keys produce an insertion-order-
//     dependent page layout, and that layout is part of the model (it sets
//     the disk footprint and the buffer-pool miss sequence) — but skips all
//     per-touch buffer-pool work and reconstructs the pool's exact final
//     state afterwards from last-touch stamps. A bulk-loaded tree is
//     bit-equivalent to a per-record-loaded one: same pages, same pool
//     contents and recency order, same charges on every later operation.
package btree

import (
	"sort"

	"repro/internal/slab"
)

// Entry is a key with a view of its field values.
type Entry struct {
	Key    string
	Fields slab.FieldsView
}

// Config parameterizes the tree.
type Config struct {
	PageSize    int64 // bytes per page (InnoDB: 16 KiB)
	BufferPages int   // pages the buffer pool can hold
	LeafCap     int   // entries per leaf page (encodes per-row overhead + fill factor)
	InternalCap int   // children per internal page
}

func (c *Config) defaults() {
	if c.PageSize == 0 {
		c.PageSize = 16 << 10
	}
	if c.BufferPages == 0 {
		c.BufferPages = 1024
	}
	if c.LeafCap == 0 {
		c.LeafCap = 64
	}
	if c.InternalCap == 0 {
		c.InternalCap = 256
	}
}

// IOStats reports the page traffic of one operation.
type IOStats struct {
	PagesTouched    int // buffer pool lookups
	Misses          int // pages that had to come from disk
	DirtyWritebacks int // dirty pages evicted to make room
}

// Add accumulates other into s.
func (s *IOStats) Add(other IOStats) {
	s.PagesTouched += other.PagesTouched
	s.Misses += other.Misses
	s.DirtyWritebacks += other.DirtyWritebacks
}

// pfx is a key's first 16 bytes as two big-endian words, zero padded.
// pfx order is a coarsening of key order: if two prefixes differ they
// decide the comparison; equal prefixes decide nothing either way.
type pfx struct{ hi, lo uint64 }

// prefixOf packs the first 16 bytes of k.
func prefixOf(k string) pfx {
	return pfx{hi: slab.KeyPrefix(k, 0), lo: slab.KeyPrefix(k, 8)}
}

// kref locates a key in the tree's key slab: length in the low 16 bits,
// chunk offset in the next 32, chunk index in the top 16. Key regions are
// never overwritten, so zero-copy string views of them are sound.
type kref uint64

func makeKref(r slab.Ref, n int) kref {
	if n > 0xffff {
		panic("btree: key too long")
	}
	return kref(uint64(n) | uint64(uint32(r))<<16 | (uint64(r)>>32)<<48)
}

func (k kref) ref() slab.Ref { return slab.Ref(uint64(k)>>48<<32 | uint64(k)>>16&0xffffffff) }
func (k kref) len() int      { return int(k & 0xffff) }

// vref locates a row's field payload in the tree's value slab:
// fieldsLen(32) | shape(32) packed alongside the region ref.
type vref struct {
	ref  slab.Ref
	meta uint64
}

type node struct {
	id       int
	leaf     bool
	keys     []kref // internal: separators (len == len(children)-1); leaf: entry keys
	pfxs     []pfx  // keys[i]'s 16-byte prefix, kept parallel to keys
	children []*node
	vals     []vref
	next     *node // leaf chain

	// Intrusive buffer-pool bookkeeping: the pool is a doubly linked list
	// threaded through the nodes themselves, so a page touch costs pointer
	// writes, not a map probe.
	inPool           bool
	dirty            bool
	lruPrev, lruNext *node
	// stamp is the page's last-touch sequence number; the deferred bulk
	// build reconstructs the pool's exact LRU state from it (the pool's
	// contents after any access sequence are the cap most-recently-touched
	// pages, in recency order).
	stamp int64
}

// Tree is a B+tree with buffer-pool accounting.
type Tree struct {
	cfg    Config
	root   *node
	height int
	nextID int
	n      int
	pages  int

	keySlab slab.Slab
	valSlab slab.Slab
	shapes  slab.ShapeTable

	pool pool

	// pending is the buffered load batch; the tree is built from it on
	// first use (see Load and seal). Keys and payloads are already in the
	// slabs, so the batch itself is pointer-free.
	pending []pentry
	// loading marks the deferred build's replay: page touches record
	// last-touch stamps instead of driving the buffer pool.
	loading bool
	stampC  int64
}

// pentry is one buffered load record: its key ref, the key's prefix, and
// its ingested payload.
type pentry struct {
	kr kref
	kp pfx
	v  vref
}

// New creates an empty tree.
func New(cfg Config) *Tree {
	cfg.defaults()
	t := &Tree{cfg: cfg}
	t.pool.init(cfg.BufferPages)
	t.root = t.newNode(true)
	t.height = 1
	return t
}

func (t *Tree) newNode(leaf bool) *node {
	t.nextID++
	t.pages++
	return &node{id: t.nextID, leaf: leaf}
}

// keyStr returns the key bytes for kr as a zero-copy string view.
func (t *Tree) keyStr(kr kref) string { return t.keySlab.String(kr.ref(), kr.len()) }

// ingestKey copies key into the key slab.
func (t *Tree) ingestKey(key string) kref {
	return makeKref(t.keySlab.AppendString(key), len(key))
}

// ingestFields interns the layout and copies the payload into the value
// slab.
func (t *Tree) ingestFields(fields [][]byte) vref {
	shape, n := t.shapes.Intern(fields)
	ref, buf := t.valSlab.Alloc(n)
	p := 0
	for _, f := range fields {
		p += copy(buf[p:], f)
	}
	return vref{ref: ref, meta: uint64(uint32(n)) | uint64(shape)<<32}
}

// replace overwrites an existing row's payload. Same shape — the steady
// state, since update workloads rewrite like-sized fields — writes the
// bytes in place; a layout change carves a new region and abandons the
// old one (arena semantics, reclaimed only when the tree is dropped).
func (t *Tree) replace(v *vref, fields [][]byte) {
	shape, n := t.shapes.Intern(fields)
	if uint32(v.meta>>32) == shape {
		buf := t.valSlab.View(v.ref, n)
		p := 0
		for _, f := range fields {
			p += copy(buf[p:], f)
		}
		return
	}
	*v = t.ingestFields(fields)
}

// view returns the field view for a row.
func (t *Tree) view(v vref) slab.FieldsView {
	return slab.SlabView(
		t.valSlab.View(v.ref, int(uint32(v.meta))),
		t.shapes.Ends(uint32(v.meta>>32)),
	)
}

// keyLess reports keys[i] < k, resolving by prefix words when they differ.
func (t *Tree) keyLess(n *node, i int, k string, kp pfx) bool {
	p := n.pfxs[i]
	if p.hi != kp.hi {
		return p.hi < kp.hi
	}
	if p.lo != kp.lo {
		return p.lo < kp.lo
	}
	return t.keyStr(n.keys[i]) < k
}

// keyGreater reports keys[i] > k.
func (t *Tree) keyGreater(n *node, i int, k string, kp pfx) bool {
	p := n.pfxs[i]
	if p.hi != kp.hi {
		return p.hi > kp.hi
	}
	if p.lo != kp.lo {
		return p.lo > kp.lo
	}
	return t.keyStr(n.keys[i]) > k
}

// searchGE returns the first index with keys[i] >= k
// (sort.SearchStrings equivalent, prefix-accelerated).
func (t *Tree) searchGE(n *node, k string, kp pfx) int {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if t.keyLess(n, mid, k, kp) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// searchGT returns the first index with keys[i] > k: the child index for a
// descent (children[i] covers keys < keys[i]).
func (t *Tree) searchGT(n *node, k string, kp pfx) int {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if t.keyGreater(n, mid, k, kp) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// touch records a buffer pool access to page n; dirty marks it modified.
// During a deferred bulk build it only stamps the page (every load-phase
// touch is a write, so survivors come out dirty when the pool is rebuilt).
func (t *Tree) touch(io *IOStats, n *node, dirty bool) {
	t.stampC++
	n.stamp = t.stampC
	if t.loading {
		n.dirty = true
		return
	}
	io.PagesTouched++
	miss, wb := t.pool.access(n, dirty)
	if miss {
		io.Misses++
	}
	if wb {
		io.DirtyWritebacks++
	}
}

// admit registers a freshly allocated page in the pool: it is dirty but was
// never on disk, so no read miss is charged (evicting a victim may still
// cost a write-back).
func (t *Tree) admit(io *IOStats, n *node) {
	t.stampC++
	n.stamp = t.stampC
	if t.loading {
		n.dirty = true
		return
	}
	io.PagesTouched++
	_, wb := t.pool.access(n, true)
	if wb {
		io.DirtyWritebacks++
	}
}

// Load buffers an entry for the deferred bulk build, charging nothing: the
// benchmark's load phase runs outside measured time. Key and payload bytes
// are copied into the tree's slabs immediately (the caller's slices are not
// retained). The tree is built on first use (any read, write, scan or size
// accessor), replaying the batch in arrival order — duplicate keys resolve
// last-write-wins, exactly as per-record insertion would — and then
// reconstructing the buffer pool's final state. The caller keeps no
// obligations: a bulk-loaded tree is indistinguishable (pages, pool state,
// every later charge) from one built by calling Put per record.
func (t *Tree) Load(key string, fields [][]byte) {
	t.pending = append(t.pending, pentry{
		kr: t.ingestKey(key),
		kp: prefixOf(key),
		v:  t.ingestFields(fields),
	})
}

// seal builds the tree from the buffered load batch, if any.
func (t *Tree) seal() {
	if t.pending == nil {
		return
	}
	batch := t.pending
	t.pending = nil
	if len(batch) == 0 {
		return
	}
	t.loading = true
	var io IOStats // load-phase page traffic is not charged
	for i := range batch {
		t.put(t.keyStr(batch[i].kr), batch[i].kp, batch[i].kr, batch[i].v, &io)
	}
	t.loading = false
	t.rebuildPool()
}

// rebuildPool reconstructs the buffer pool after a deferred build: the LRU
// contents after any access sequence are exactly the cap most-recently-
// touched distinct pages in recency order, so the stamps carry enough
// information to rebuild the state per-touch maintenance would have left.
func (t *Tree) rebuildPool() {
	nodes := make([]*node, 0, t.pages)
	collect(t.root, &nodes)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].stamp > nodes[j].stamp })
	t.pool.reset()
	keep := t.pool.cap
	if keep > len(nodes) {
		keep = len(nodes)
	}
	// Push least-recent first so the most recently stamped page ends up at
	// the head. Dirty flags were maintained by the stamping touches.
	for i := keep - 1; i >= 0; i-- {
		t.pool.pushFront(nodes[i])
		nodes[i].inPool = true
	}
	t.pool.len = keep
}

func collect(n *node, out *[]*node) {
	*out = append(*out, n)
	if !n.leaf {
		for _, c := range n.children {
			collect(c, out)
		}
	}
}

// Get returns a view of the fields for key.
func (t *Tree) Get(key string) (slab.FieldsView, bool, IOStats) {
	t.seal()
	var io IOStats
	kp := prefixOf(key)
	n := t.root
	for {
		t.touch(&io, n, false)
		if n.leaf {
			i := t.searchGE(n, key, kp)
			if i < len(n.keys) && t.keyStr(n.keys[i]) == key {
				return t.view(n.vals[i]), true, io
			}
			return slab.FieldsView{}, false, io
		}
		n = n.children[t.searchGT(n, key, kp)]
	}
}

// Put inserts or replaces key.
func (t *Tree) Put(key string, fields [][]byte) IOStats {
	t.seal()
	var io IOStats
	t.put(key, prefixOf(key), t.ingestKey(key), t.ingestFields(fields), &io)
	return io
}

// put inserts a pre-ingested entry. A duplicate key abandons the fresh key
// region and repoints the row at the fresh payload (last write wins).
func (t *Tree) put(key string, kp pfx, kr kref, v vref, io *IOStats) {
	sep, sepPfx, right := t.insert(t.root, key, kp, kr, v, io)
	if right != nil {
		newRoot := t.newNode(false)
		newRoot.keys = []kref{sep}
		newRoot.pfxs = []pfx{sepPfx}
		newRoot.children = []*node{t.root, right}
		t.root = newRoot
		t.height++
		t.admit(io, newRoot)
	}
}

// Update overwrites the fields of an existing key in place: an index
// descent with clean touches, dirtying only the leaf that holds the row.
// No page is allocated, split, or added — the read-modify-write that
// in-place UPDATE statements and BDB replacing puts perform. Returns
// whether the key existed (a miss still pays the descent).
func (t *Tree) Update(key string, fields [][]byte) (bool, IOStats) {
	t.seal()
	var io IOStats
	kp := prefixOf(key)
	n := t.root
	for !n.leaf {
		t.touch(&io, n, false)
		n = n.children[t.searchGT(n, key, kp)]
	}
	i := t.searchGE(n, key, kp)
	found := i < len(n.keys) && t.keyStr(n.keys[i]) == key
	t.touch(&io, n, found)
	if found {
		t.replace(&n.vals[i], fields)
	}
	return found, io
}

// insert descends to the leaf; returns a separator (with its prefix) and
// new right node if this subtree split.
func (t *Tree) insert(n *node, key string, kp pfx, kr kref, v vref, io *IOStats) (kref, pfx, *node) {
	t.touch(io, n, true)
	if n.leaf {
		i := t.searchGE(n, key, kp)
		if i < len(n.keys) && t.keyStr(n.keys[i]) == key {
			n.vals[i] = v
			return 0, pfx{}, nil
		}
		n.keys = append(n.keys, 0)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = kr
		n.pfxs = append(n.pfxs, pfx{})
		copy(n.pfxs[i+1:], n.pfxs[i:])
		n.pfxs[i] = kp
		n.vals = append(n.vals, vref{})
		copy(n.vals[i+1:], n.vals[i:])
		n.vals[i] = v
		t.n++
		if len(n.keys) <= t.cfg.LeafCap {
			return 0, pfx{}, nil
		}
		return t.splitLeaf(n, io)
	}
	ci := t.searchGT(n, key, kp)
	sep, sepPfx, right := t.insert(n.children[ci], key, kp, kr, v, io)
	if right == nil {
		return 0, pfx{}, nil
	}
	n.keys = append(n.keys, 0)
	copy(n.keys[ci+1:], n.keys[ci:])
	n.keys[ci] = sep
	n.pfxs = append(n.pfxs, pfx{})
	copy(n.pfxs[ci+1:], n.pfxs[ci:])
	n.pfxs[ci] = sepPfx
	n.children = append(n.children, nil)
	copy(n.children[ci+2:], n.children[ci+1:])
	n.children[ci+1] = right
	if len(n.children) <= t.cfg.InternalCap {
		return 0, pfx{}, nil
	}
	return t.splitInternal(n, io)
}

func (t *Tree) splitLeaf(n *node, io *IOStats) (kref, pfx, *node) {
	mid := len(n.keys) / 2
	right := t.newNode(true)
	right.keys = append(right.keys, n.keys[mid:]...)
	right.pfxs = append(right.pfxs, n.pfxs[mid:]...)
	right.vals = append(right.vals, n.vals[mid:]...)
	n.keys = n.keys[:mid:mid]
	n.pfxs = n.pfxs[:mid:mid]
	n.vals = n.vals[:mid:mid]
	right.next = n.next
	n.next = right
	t.admit(io, right)
	// The separator shares the leaf key's slab region (key bytes are never
	// overwritten, so the shared view stays sound).
	return right.keys[0], right.pfxs[0], right
}

func (t *Tree) splitInternal(n *node, io *IOStats) (kref, pfx, *node) {
	midKey := len(n.keys) / 2
	sep, sepPfx := n.keys[midKey], n.pfxs[midKey]
	right := t.newNode(false)
	right.keys = append(right.keys, n.keys[midKey+1:]...)
	right.pfxs = append(right.pfxs, n.pfxs[midKey+1:]...)
	right.children = append(right.children, n.children[midKey+1:]...)
	n.keys = n.keys[:midKey:midKey]
	n.pfxs = n.pfxs[:midKey:midKey]
	n.children = n.children[: midKey+1 : midKey+1]
	t.admit(io, right)
	return sep, sepPfx, right
}

// Cursor streams entries with keys >= start in key order, walking the leaf
// chain. The root-to-leaf descent is paid when the cursor is opened; each
// leaf pays its page touch when the walk first reads from it, so a cursor
// abandoned early touches exactly the pages a count-bounded Scan would
// have. IO reports the traffic accrued so far.
type Cursor struct {
	t       *Tree
	n       *node
	i       int
	start   string
	kp      pfx
	started bool
	io      IOStats
}

// NewCursor opens a cursor positioned before the first entry with key >=
// start, charging the index descent.
func (t *Tree) NewCursor(start string) *Cursor {
	t.seal()
	c := &Cursor{t: t, start: start, kp: prefixOf(start)}
	n := t.root
	for !n.leaf {
		t.touch(&c.io, n, false)
		n = n.children[t.searchGT(n, start, c.kp)]
	}
	c.n = n
	return c
}

// Next advances to the next entry and reports whether one exists.
func (c *Cursor) Next() bool {
	if !c.started {
		c.started = true
		c.t.touch(&c.io, c.n, false)
		c.i = c.t.searchGE(c.n, c.start, c.kp)
	} else {
		c.i++
	}
	for c.i >= len(c.n.keys) {
		if c.n.next == nil {
			return false
		}
		c.n = c.n.next
		c.t.touch(&c.io, c.n, false)
		c.i = 0
	}
	return true
}

// Key returns the current entry's key; valid after Next reports true.
func (c *Cursor) Key() string { return c.t.keyStr(c.n.keys[c.i]) }

// Fields returns the current entry's field view; valid after Next reports
// true.
func (c *Cursor) Fields() slab.FieldsView { return c.t.view(c.n.vals[c.i]) }

// IO returns the page traffic the cursor has accrued so far.
func (c *Cursor) IO() IOStats { return c.io }

// Scan returns up to count entries with keys >= start, walking the leaf
// chain (one page touch per leaf visited): a drained Cursor, kept for
// callers that want the materialized form.
func (t *Tree) Scan(start string, count int) ([]Entry, IOStats) {
	c := t.NewCursor(start)
	var out []Entry
	for len(out) < count && c.Next() {
		out = append(out, Entry{Key: c.Key(), Fields: c.Fields()})
	}
	return out, c.IO()
}

// ScanAllFrom visits every entry with key >= start without materializing
// them, returning how many entries and pages were touched. It models the
// paper's observation that the YCSB RDBMS client's scan "retrieves all
// records with a key equal or greater than the start key" (§5.4).
func (t *Tree) ScanAllFrom(start string) (entries int, io IOStats) {
	t.seal()
	kp := prefixOf(start)
	n := t.root
	for !n.leaf {
		t.touch(&io, n, false)
		n = n.children[t.searchGT(n, start, kp)]
	}
	first := true
	for n != nil {
		t.touch(&io, n, false)
		i := 0
		if first {
			i = t.searchGE(n, start, kp)
			first = false
		}
		entries += len(n.keys) - i
		n = n.next
	}
	return entries, io
}

// Len returns the number of entries.
func (t *Tree) Len() int { t.seal(); return t.n }

// Height returns the tree height (1 = root is a leaf).
func (t *Tree) Height() int { t.seal(); return t.height }

// Pages returns the number of allocated pages.
func (t *Tree) Pages() int { t.seal(); return t.pages }

// DiskBytes returns the on-disk footprint (pages x page size).
func (t *Tree) DiskBytes() int64 { t.seal(); return int64(t.pages) * t.cfg.PageSize }

// SlabBytes returns the heap footprint of the tree's key and payload
// slabs (apmbench -memstats).
func (t *Tree) SlabBytes() int64 { return t.keySlab.Allocated() + t.valSlab.Allocated() }

// pool is a fixed-capacity page cache with dirty tracking, threaded
// intrusively through the nodes it caches.
type pool struct {
	cap        int
	len        int
	head, tail *node // head = most recent
}

func (l *pool) init(capacity int) {
	if capacity < 1 {
		capacity = 1
	}
	l.cap = capacity
}

// reset empties the pool, clearing membership flags on cached nodes.
func (l *pool) reset() {
	for n := l.head; n != nil; {
		next := n.lruNext
		n.inPool = false
		n.lruPrev, n.lruNext = nil, nil
		n = next
	}
	l.head, l.tail, l.len = nil, nil, 0
}

func (l *pool) unlink(n *node) {
	if n.lruPrev != nil {
		n.lruPrev.lruNext = n.lruNext
	} else {
		l.head = n.lruNext
	}
	if n.lruNext != nil {
		n.lruNext.lruPrev = n.lruPrev
	} else {
		l.tail = n.lruPrev
	}
	n.lruPrev, n.lruNext = nil, nil
}

func (l *pool) pushFront(n *node) {
	n.lruNext = l.head
	if l.head != nil {
		l.head.lruPrev = n
	}
	l.head = n
	if l.tail == nil {
		l.tail = n
	}
}

// access touches page n; returns (miss, dirtyWriteback).
func (l *pool) access(n *node, dirty bool) (bool, bool) {
	if n.inPool {
		n.dirty = n.dirty || dirty
		l.unlink(n)
		l.pushFront(n)
		return false, false
	}
	wb := false
	if l.len >= l.cap {
		victim := l.tail
		l.unlink(victim)
		victim.inPool = false
		wb = victim.dirty
		l.len--
	}
	n.inPool = true
	n.dirty = dirty
	l.pushFront(n)
	l.len++
	return true, wb
}
