// Package btree implements a page-oriented B+tree with an LRU buffer pool,
// modeling InnoDB (the paper's MySQL storage engine) and BerkeleyDB (the
// storage engine the paper's Voldemort configuration embedded). Operations
// return I/O statistics — pages touched, buffer-pool misses, dirty
// write-backs — which the store models convert into simulated disk time.
package btree

import "sort"

// Entry is a key with its field values.
type Entry struct {
	Key    string
	Fields [][]byte
}

// Config parameterizes the tree.
type Config struct {
	PageSize    int64 // bytes per page (InnoDB: 16 KiB)
	BufferPages int   // pages the buffer pool can hold
	LeafCap     int   // entries per leaf page (encodes per-row overhead + fill factor)
	InternalCap int   // children per internal page
}

func (c *Config) defaults() {
	if c.PageSize == 0 {
		c.PageSize = 16 << 10
	}
	if c.BufferPages == 0 {
		c.BufferPages = 1024
	}
	if c.LeafCap == 0 {
		c.LeafCap = 64
	}
	if c.InternalCap == 0 {
		c.InternalCap = 256
	}
}

// IOStats reports the page traffic of one operation.
type IOStats struct {
	PagesTouched    int // buffer pool lookups
	Misses          int // pages that had to come from disk
	DirtyWritebacks int // dirty pages evicted to make room
}

// Add accumulates other into s.
func (s *IOStats) Add(other IOStats) {
	s.PagesTouched += other.PagesTouched
	s.Misses += other.Misses
	s.DirtyWritebacks += other.DirtyWritebacks
}

type node struct {
	id       int
	leaf     bool
	keys     []string // internal: separators (len == len(children)-1); leaf: entry keys
	children []*node  // internal only
	vals     [][][]byte
	next     *node // leaf chain
}

// Tree is a B+tree with buffer-pool accounting.
type Tree struct {
	cfg    Config
	root   *node
	height int
	nextID int
	n      int
	pages  int

	pool *lru
}

// New creates an empty tree.
func New(cfg Config) *Tree {
	cfg.defaults()
	t := &Tree{cfg: cfg, pool: newLRU(cfg.BufferPages)}
	t.root = t.newNode(true)
	t.height = 1
	return t
}

func (t *Tree) newNode(leaf bool) *node {
	t.nextID++
	t.pages++
	n := &node{id: t.nextID, leaf: leaf}
	return n
}

// touch records a buffer pool access to page id; dirty marks it modified.
func (t *Tree) touch(io *IOStats, id int, dirty bool) {
	io.PagesTouched++
	miss, wb := t.pool.access(id, dirty)
	if miss {
		io.Misses++
	}
	if wb {
		io.DirtyWritebacks++
	}
}

// admit registers a freshly allocated page in the pool: it is dirty but was
// never on disk, so no read miss is charged (evicting a victim may still
// cost a write-back).
func (t *Tree) admit(io *IOStats, id int) {
	io.PagesTouched++
	_, wb := t.pool.access(id, true)
	if wb {
		io.DirtyWritebacks++
	}
}

// Get returns the fields for key.
func (t *Tree) Get(key string) ([][]byte, bool, IOStats) {
	var io IOStats
	n := t.root
	for {
		t.touch(&io, n.id, false)
		if n.leaf {
			i := sort.SearchStrings(n.keys, key)
			if i < len(n.keys) && n.keys[i] == key {
				return n.vals[i], true, io
			}
			return nil, false, io
		}
		n = n.children[childIndex(n.keys, key)]
	}
}

// childIndex picks the subtree for key: children[i] covers keys < keys[i].
func childIndex(seps []string, key string) int {
	return sort.Search(len(seps), func(i int) bool { return key < seps[i] })
}

// Put inserts or replaces key.
func (t *Tree) Put(key string, fields [][]byte) IOStats {
	var io IOStats
	sep, right := t.insert(t.root, key, fields, &io)
	if right != nil {
		newRoot := t.newNode(false)
		newRoot.keys = []string{sep}
		newRoot.children = []*node{t.root, right}
		t.root = newRoot
		t.height++
		t.admit(&io, newRoot.id)
	}
	return io
}

// insert descends to the leaf; returns a separator and new right node if
// this subtree split.
func (t *Tree) insert(n *node, key string, fields [][]byte, io *IOStats) (string, *node) {
	t.touch(io, n.id, true)
	if n.leaf {
		i := sort.SearchStrings(n.keys, key)
		if i < len(n.keys) && n.keys[i] == key {
			n.vals[i] = fields
			return "", nil
		}
		n.keys = append(n.keys, "")
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = key
		n.vals = append(n.vals, nil)
		copy(n.vals[i+1:], n.vals[i:])
		n.vals[i] = fields
		t.n++
		if len(n.keys) <= t.cfg.LeafCap {
			return "", nil
		}
		return t.splitLeaf(n, io)
	}
	ci := childIndex(n.keys, key)
	sep, right := t.insert(n.children[ci], key, fields, io)
	if right == nil {
		return "", nil
	}
	n.keys = append(n.keys, "")
	copy(n.keys[ci+1:], n.keys[ci:])
	n.keys[ci] = sep
	n.children = append(n.children, nil)
	copy(n.children[ci+2:], n.children[ci+1:])
	n.children[ci+1] = right
	if len(n.children) <= t.cfg.InternalCap {
		return "", nil
	}
	return t.splitInternal(n, io)
}

func (t *Tree) splitLeaf(n *node, io *IOStats) (string, *node) {
	mid := len(n.keys) / 2
	right := t.newNode(true)
	right.keys = append(right.keys, n.keys[mid:]...)
	right.vals = append(right.vals, n.vals[mid:]...)
	n.keys = n.keys[:mid:mid]
	n.vals = n.vals[:mid:mid]
	right.next = n.next
	n.next = right
	t.admit(io, right.id)
	return right.keys[0], right
}

func (t *Tree) splitInternal(n *node, io *IOStats) (string, *node) {
	midKey := len(n.keys) / 2
	sep := n.keys[midKey]
	right := t.newNode(false)
	right.keys = append(right.keys, n.keys[midKey+1:]...)
	right.children = append(right.children, n.children[midKey+1:]...)
	n.keys = n.keys[:midKey:midKey]
	n.children = n.children[: midKey+1 : midKey+1]
	t.admit(io, right.id)
	return sep, right
}

// Scan returns up to count entries with keys >= start, walking the leaf
// chain (one page touch per leaf visited).
func (t *Tree) Scan(start string, count int) ([]Entry, IOStats) {
	var io IOStats
	n := t.root
	for !n.leaf {
		t.touch(&io, n.id, false)
		n = n.children[childIndex(n.keys, start)]
	}
	var out []Entry
	for n != nil && len(out) < count {
		t.touch(&io, n.id, false)
		i := sort.SearchStrings(n.keys, start)
		for ; i < len(n.keys) && len(out) < count; i++ {
			out = append(out, Entry{Key: n.keys[i], Fields: n.vals[i]})
		}
		n = n.next
	}
	return out, io
}

// ScanAllFrom visits every entry with key >= start without materializing
// them, returning how many entries and pages were touched. It models the
// paper's observation that the YCSB RDBMS client's scan "retrieves all
// records with a key equal or greater than the start key" (§5.4).
func (t *Tree) ScanAllFrom(start string) (entries int, io IOStats) {
	n := t.root
	for !n.leaf {
		t.touch(&io, n.id, false)
		n = n.children[childIndex(n.keys, start)]
	}
	first := true
	for n != nil {
		t.touch(&io, n.id, false)
		i := 0
		if first {
			i = sort.SearchStrings(n.keys, start)
			first = false
		}
		entries += len(n.keys) - i
		n = n.next
	}
	return entries, io
}

// Len returns the number of entries.
func (t *Tree) Len() int { return t.n }

// Height returns the tree height (1 = root is a leaf).
func (t *Tree) Height() int { return t.height }

// Pages returns the number of allocated pages.
func (t *Tree) Pages() int { return t.pages }

// DiskBytes returns the on-disk footprint (pages x page size).
func (t *Tree) DiskBytes() int64 { return int64(t.pages) * t.cfg.PageSize }

// lru is a fixed-capacity page cache with dirty tracking.
type lru struct {
	cap   int
	items map[int]*lruNode
	head  *lruNode // most recent
	tail  *lruNode // least recent
}

type lruNode struct {
	id         int
	dirty      bool
	prev, next *lruNode
}

func newLRU(capacity int) *lru {
	if capacity < 1 {
		capacity = 1
	}
	return &lru{cap: capacity, items: make(map[int]*lruNode)}
}

func (l *lru) unlink(n *lruNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		l.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		l.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (l *lru) pushFront(n *lruNode) {
	n.next = l.head
	if l.head != nil {
		l.head.prev = n
	}
	l.head = n
	if l.tail == nil {
		l.tail = n
	}
}

// access touches page id; returns (miss, dirtyWriteback).
func (l *lru) access(id int, dirty bool) (bool, bool) {
	if n, ok := l.items[id]; ok {
		n.dirty = n.dirty || dirty
		l.unlink(n)
		l.pushFront(n)
		return false, false
	}
	wb := false
	if len(l.items) >= l.cap {
		victim := l.tail
		l.unlink(victim)
		delete(l.items, victim.id)
		wb = victim.dirty
	}
	n := &lruNode{id: id, dirty: dirty}
	l.items[id] = n
	l.pushFront(n)
	return true, wb
}
