package cluster

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestClusterMSpec(t *testing.T) {
	s := ClusterM(12)
	if s.Nodes != 12 {
		t.Fatalf("nodes = %d, want 12", s.Nodes)
	}
	if s.Node.Cores != 8 {
		t.Fatalf("cores = %d, want 8 (2x quad core)", s.Node.Cores)
	}
	if s.Node.RAMBytes != 16<<30 {
		t.Fatalf("RAM = %d, want 16GiB", s.Node.RAMBytes)
	}
	if s.Node.Disks != 2 {
		t.Fatalf("disks = %d, want 2 (RAID0)", s.Node.Disks)
	}
}

func TestClusterDSpec(t *testing.T) {
	s := ClusterD(8)
	if s.Node.Cores != 4 || s.Node.RAMBytes != 4<<30 || s.Node.Disks != 1 {
		t.Fatalf("ClusterD node spec wrong: %+v", s.Node)
	}
}

func TestScalePreservesRatios(t *testing.T) {
	s := ClusterM(1)
	half := s.Scale(0.5)
	if half.Node.RAMBytes != s.Node.RAMBytes/2 {
		t.Fatalf("scaled RAM = %d, want %d", half.Node.RAMBytes, s.Node.RAMBytes/2)
	}
	if half.Node.DiskBytes != s.Node.DiskBytes/2 {
		t.Fatalf("scaled disk = %d, want %d", half.Node.DiskBytes, s.Node.DiskBytes/2)
	}
	if half.Net != s.Net {
		t.Fatal("scaling must not change network latencies")
	}
}

func TestNewBuildsNodes(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e, ClusterM(4))
	if len(c.Nodes) != 4 {
		t.Fatalf("built %d nodes, want 4", len(c.Nodes))
	}
	n := c.Nodes[0]
	if n.CPU.Capacity() != 8 {
		t.Fatalf("CPU capacity = %d, want 8", n.CPU.Capacity())
	}
	if len(n.DiskRes) != 2 {
		t.Fatalf("disks = %d, want 2", len(n.DiskRes))
	}
}

func TestComputeQueuesOnCores(t *testing.T) {
	e := sim.NewEngine(1)
	spec := ClusterM(1)
	spec.Node.Cores = 2
	c := New(e, spec)
	var last sim.Time
	for i := 0; i < 4; i++ {
		e.Go("w", func(p *sim.Proc) {
			c.Nodes[0].Compute(p, sim.Millisecond)
			last = p.Now()
		})
	}
	e.Run(0)
	if last != 2*sim.Millisecond {
		t.Fatalf("4 jobs on 2 cores finished at %v, want 2ms", last)
	}
}

func TestDiskRandomVsSequential(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e, ClusterD(1))
	var tRand, tSeq sim.Time
	e.Go("r", func(p *sim.Proc) {
		start := p.Now()
		c.Nodes[0].DiskRead(p, 4096, true)
		tRand = p.Now() - start
		start = p.Now()
		c.Nodes[0].DiskRead(p, 4096, false)
		tSeq = p.Now() - start
	})
	e.Run(0)
	if tRand <= tSeq {
		t.Fatalf("random read %v should exceed sequential %v", tRand, tSeq)
	}
	if tRand < 4*sim.Millisecond {
		t.Fatalf("random read %v should include a seek", tRand)
	}
}

func TestDiskRoundRobinAcrossSpindles(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e, ClusterM(1)) // 2 disks
	var last sim.Time
	for i := 0; i < 2; i++ {
		e.Go("w", func(p *sim.Proc) {
			c.Nodes[0].DiskRead(p, 0, true) // pure seek, 4ms
			last = p.Now()
		})
	}
	e.Run(0)
	if last != 4*sim.Millisecond {
		t.Fatalf("2 seeks on 2 spindles finished at %v, want parallel 4ms", last)
	}
}

func TestRAMAccounting(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e, ClusterM(1))
	n := c.Nodes[0]
	n.ReserveRAM(8 << 30)
	if n.RAMOvercommitted() {
		t.Fatal("8GiB of 16GiB should not be overcommitted")
	}
	n.ReserveRAM(9 << 30)
	if !n.RAMOvercommitted() {
		t.Fatal("17GiB of 16GiB must be overcommitted")
	}
	if p := n.RAMPressure(); p < 1.0 {
		t.Fatalf("pressure = %f, want > 1", p)
	}
}

func TestSendDelayIncludesLatencyAndTransfer(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e, ClusterM(2))
	var elapsed sim.Time
	e.Go("s", func(p *sim.Proc) {
		start := p.Now()
		c.Nodes[0].Send(p, c.Nodes[1], 1<<20) // 1 MiB over ~117MB/s ≈ 9ms
		elapsed = p.Now() - start
	})
	e.Run(0)
	if elapsed < 8*sim.Millisecond || elapsed > 11*sim.Millisecond {
		t.Fatalf("1MiB send took %v, want ~9ms", elapsed)
	}
}

func TestRPCRoundTrip(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e, ClusterM(2))
	var handlerAt, doneAt sim.Time
	e.Go("c", func(p *sim.Proc) {
		c.Nodes[0].RPC(p, c.Nodes[1], 100, 100, func() {
			handlerAt = p.Now()
			p.Sleep(sim.Millisecond)
		})
		doneAt = p.Now()
	})
	e.Run(0)
	if handlerAt <= 0 {
		t.Fatal("handler never ran")
	}
	if doneAt < handlerAt+sim.Millisecond+c.Spec.Net.BaseLatency {
		t.Fatalf("RPC completed at %v, too early (handler at %v)", doneAt, handlerAt)
	}
}

func TestNICSerializesLargeTransfers(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e, ClusterM(2))
	var last sim.Time
	for i := 0; i < 2; i++ {
		e.Go("s", func(p *sim.Proc) {
			c.Nodes[0].Send(p, c.Nodes[1], 1<<20)
			last = p.Now()
		})
	}
	e.Run(0)
	// Two 1MiB sends through one NIC must take ~2x one send.
	if last < 17*sim.Millisecond {
		t.Fatalf("two 1MiB sends finished at %v, want >= ~17ms (serialized)", last)
	}
}

func TestDiskUsageAccounting(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e, ClusterM(1))
	c.Nodes[0].AddDiskUsage(123)
	c.Nodes[0].AddDiskUsage(77)
	if got := c.Nodes[0].DiskUsed(); got != 200 {
		t.Fatalf("disk used = %d, want 200", got)
	}
}

// Property: transfer time is monotonic in message size.
func TestPropertySendMonotonic(t *testing.T) {
	f := func(a, b uint32) bool {
		small, big := int64(a%1<<20), int64(b%1<<20)
		if small > big {
			small, big = big, small
		}
		e := sim.NewEngine(1)
		c := New(e, ClusterM(2))
		var tSmall, tBig sim.Time
		e.Go("s", func(p *sim.Proc) {
			s := p.Now()
			c.Nodes[0].Send(p, c.Nodes[1], small)
			tSmall = p.Now() - s
			s = p.Now()
			c.Nodes[0].Send(p, c.Nodes[1], big)
			tBig = p.Now() - s
		})
		e.Run(0)
		return tSmall <= tBig
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestNetDelayGrowsWithSize(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e, ClusterM(1))
	small := c.Nodes[0].NetDelay(100)
	big := c.Nodes[0].NetDelay(1 << 20)
	if big <= small {
		t.Fatalf("NetDelay(1MiB)=%v should exceed NetDelay(100B)=%v", big, small)
	}
	if small < 50*sim.Microsecond {
		t.Fatalf("NetDelay must include base latency, got %v", small)
	}
}

func TestRPCNilHandler(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e, ClusterM(2))
	e.Go("c", func(p *sim.Proc) {
		c.Nodes[0].RPC(p, c.Nodes[1], 64, 64, nil) // must not panic
	})
	e.Run(0)
}

func TestZeroByteTransfers(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e, ClusterM(1))
	e.Go("w", func(p *sim.Proc) {
		c.Nodes[0].DiskRead(p, 0, false) // free
		if p.Now() != 0 {
			t.Errorf("zero-byte sequential read took %v", p.Now())
		}
	})
	e.Run(0)
}
