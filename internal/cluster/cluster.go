// Package cluster models the two compute clusters of the paper (§3) as
// simulated hardware: nodes with CPU cores, RAM, disks and a NIC, joined by
// a single-switch gigabit network. Stores express their work as CPU time,
// disk I/O and messages against this model; latency and saturation behaviour
// then emerge from queueing at the shared resources.
package cluster

import (
	"fmt"

	"repro/internal/sim"
)

// NodeSpec describes one server machine.
type NodeSpec struct {
	Cores     int      // hardware threads usable for request processing
	RAMBytes  int64    // main memory
	Disks     int      // independent spindles (RAID0 counts each disk)
	DiskSeek  sim.Time // average positioning time for a random I/O
	DiskMBps  float64  // sequential throughput per disk, MB/s
	DiskBytes int64    // capacity per node
}

// NetSpec describes the interconnect.
type NetSpec struct {
	BaseLatency sim.Time // one-way propagation + switching delay
	MBps        float64  // per-link bandwidth, MB/s
}

// Spec is a full cluster description.
type Spec struct {
	Name  string
	Node  NodeSpec
	Net   NetSpec
	Nodes int
}

// ClusterM returns the memory-bound cluster of the paper: 16 Linux nodes,
// 2x quad-core Xeon, 16 GB RAM, 2x74 GB disks in RAID 0, gigabit ethernet
// over a single switch.
func ClusterM(nodes int) Spec {
	return Spec{
		Name:  "ClusterM",
		Nodes: nodes,
		Node: NodeSpec{
			Cores:     8,
			RAMBytes:  16 << 30,
			Disks:     2,
			DiskSeek:  4 * sim.Millisecond, // 10k rpm SAS class
			DiskMBps:  90,
			DiskBytes: 148 << 30,
		},
		Net: NetSpec{BaseLatency: 50 * sim.Microsecond, MBps: 117},
	}
}

// ClusterD returns the disk-bound cluster: 24 nodes, 2x dual-core Xeon,
// 4 GB RAM, one 74 GB disk, gigabit ethernet.
func ClusterD(nodes int) Spec {
	return Spec{
		Name:  "ClusterD",
		Nodes: nodes,
		Node: NodeSpec{
			Cores:     4,
			RAMBytes:  4 << 30,
			Disks:     1,
			DiskSeek:  4500 * sim.Microsecond,
			DiskMBps:  70,
			DiskBytes: 74 << 30,
		},
		Net: NetSpec{BaseLatency: 60 * sim.Microsecond, MBps: 117},
	}
}

// Scale multiplies per-node RAM and disk capacity by f, keeping latencies
// and bandwidths unchanged. Experiments scale record counts and hardware
// capacities together so that dataset-to-memory ratios — which decide
// whether a run is memory- or disk-bound — match the paper's.
func (s Spec) Scale(f float64) Spec {
	s.Node.RAMBytes = int64(float64(s.Node.RAMBytes) * f)
	s.Node.DiskBytes = int64(float64(s.Node.DiskBytes) * f)
	return s
}

// Cluster is an instantiated set of simulated nodes.
type Cluster struct {
	Eng   *sim.Engine
	Spec  Spec
	Nodes []*Node
}

// Node is one simulated machine.
type Node struct {
	ID      int
	Spec    NodeSpec
	CPU     *sim.Resource
	DiskRes []*sim.Resource
	NIC     *sim.Resource

	ramUsed  int64
	diskUsed int64
	nextDisk int
	net      NetSpec
	// slowFactor inflates CPU and disk service times when > 1 (the
	// slow-node fault: a degraded machine — failing disk, thermal
	// throttling, a noisy neighbour). Zero means normal speed.
	slowFactor float64
}

// New builds a cluster on the given engine.
func New(e *sim.Engine, spec Spec) *Cluster {
	c := &Cluster{Eng: e, Spec: spec}
	for i := 0; i < spec.Nodes; i++ {
		n := &Node{ID: i, Spec: spec.Node, net: spec.Net}
		n.CPU = sim.NewResource(e, fmt.Sprintf("node%d.cpu", i), spec.Node.Cores)
		for d := 0; d < spec.Node.Disks; d++ {
			n.DiskRes = append(n.DiskRes, sim.NewResource(e, fmt.Sprintf("node%d.disk%d", i, d), 1))
		}
		n.NIC = sim.NewResource(e, fmt.Sprintf("node%d.nic", i), 1)
		c.Nodes = append(c.Nodes, n)
	}
	return c
}

// SetSlowFactor degrades (f > 1) or restores (f <= 1) the node's CPU and
// disk service rates. Used by slow-node fault injection; network paths are
// unaffected (the NIC is not what fails in the modeled scenario).
func (n *Node) SetSlowFactor(f float64) {
	if f <= 1 {
		f = 0
	}
	n.slowFactor = f
}

// slowed inflates a service time by the node's slow factor, if set.
func (n *Node) slowed(d sim.Time) sim.Time {
	if n.slowFactor > 1 {
		return sim.Time(float64(d) * n.slowFactor)
	}
	return d
}

// Compute spends d of CPU time on one of the node's cores (queueing if all
// cores are busy).
func (n *Node) Compute(p *sim.Proc, d sim.Time) {
	p.Use(n.CPU, n.slowed(d))
}

// transferTime converts a byte count and MB/s rate to virtual time.
func transferTime(bytes int64, mbps float64) sim.Time {
	if bytes <= 0 || mbps <= 0 {
		return 0
	}
	sec := float64(bytes) / (mbps * 1e6)
	return sim.Time(sec * float64(sim.Second))
}

// disk picks a spindle round-robin (RAID0 striping approximation).
func (n *Node) disk() *sim.Resource {
	d := n.DiskRes[n.nextDisk]
	n.nextDisk = (n.nextDisk + 1) % len(n.DiskRes)
	return d
}

// DiskRead performs a disk read of the given size. Random reads pay a seek;
// sequential reads pay only transfer time (positioning is amortized).
func (n *Node) DiskRead(p *sim.Proc, bytes int64, random bool) {
	d := transferTime(bytes, n.Spec.DiskMBps)
	if random {
		d += n.Spec.DiskSeek
	}
	p.Use(n.disk(), n.slowed(d))
}

// DiskWrite performs a disk write.
func (n *Node) DiskWrite(p *sim.Proc, bytes int64, random bool) {
	d := transferTime(bytes, n.Spec.DiskMBps)
	if random {
		d += n.Spec.DiskSeek
	}
	p.Use(n.disk(), n.slowed(d))
}

// DiskBusy reports average utilization across the node's disks.
func (n *Node) DiskBusy() float64 {
	var u float64
	for _, d := range n.DiskRes {
		u += d.Utilization()
	}
	return u / float64(len(n.DiskRes))
}

// ReserveRAM accounts bytes of memory use on the node. It never blocks;
// callers decide what exceeding RAM means (swapping, OOM, cache eviction).
func (n *Node) ReserveRAM(bytes int64) { n.ramUsed += bytes }

// RAMUsed returns accounted memory use.
func (n *Node) RAMUsed() int64 { return n.ramUsed }

// RAMOvercommitted reports whether accounted memory exceeds physical RAM.
func (n *Node) RAMOvercommitted() bool { return n.ramUsed > n.Spec.RAMBytes }

// RAMPressure returns ramUsed/RAM (may exceed 1).
func (n *Node) RAMPressure() float64 {
	if n.Spec.RAMBytes == 0 {
		return 0
	}
	return float64(n.ramUsed) / float64(n.Spec.RAMBytes)
}

// AddDiskUsage accounts bytes written durably to this node's disks.
func (n *Node) AddDiskUsage(bytes int64) { n.diskUsed += bytes }

// DiskUsed returns accounted durable bytes.
func (n *Node) DiskUsed() int64 { return n.diskUsed }

// Send models a one-way message of size bytes from n to dst: serialization
// on the sender NIC, propagation, then delivery. It advances the calling
// process by the full one-way delay.
func (n *Node) Send(p *sim.Proc, dst *Node, bytes int64) {
	tx := transferTime(bytes, n.net.MBps)
	p.Use(n.NIC, tx)
	p.Sleep(n.net.BaseLatency)
}

// RPC models a synchronous request/response pair between client code running
// on n and a handler on dst. The handler runs in the calling process (the
// simulation is single-threaded per op) between the request and response
// transfers.
func (n *Node) RPC(p *sim.Proc, dst *Node, reqBytes, respBytes int64, handler func()) {
	n.Send(p, dst, reqBytes)
	if handler != nil {
		handler()
	}
	dst.Send(p, n, respBytes)
}

// NetDelay returns the one-way delay for a message of the given size without
// modeling NIC contention; used for fire-and-forget background traffic.
func (n *Node) NetDelay(bytes int64) sim.Time {
	return n.net.BaseLatency + transferTime(bytes, n.net.MBps)
}
