// Package memtable implements a skip-list ordered in-memory table, the
// write buffer of an LSM tree (Cassandra's Memtable, HBase's MemStore).
//
// The skip list is arena-backed: nodes, their variable-height towers, the
// field-header slices and the field payload bytes are all carved from
// chunked arenas owned by the memtable, so a steady-state Put performs no
// per-operation heap allocation (a fresh chunk is allocated every few
// hundred entries). Field bytes are COPIED on insert — the memtable owns
// its payload memory — which is what lets callers reuse one fields buffer
// across operations (see store.CopiesOnIngest). Keys are strings and
// therefore immutable; they are retained, not copied.
//
// Ownership note: Get/Scan/iterators return views of the memtable's arena.
// A later Put that replaces a key with same-sized fields overwrites those
// bytes in place, so a value read before a simulated park may observe the
// newer write after it — the same "state as of the last positioning I/O"
// semantics the LSM scan path documents. Entries handed to a flush
// (All/Iter) are frozen: flushing swaps the whole memtable out, and a
// frozen memtable's arena is never written again.
package memtable

import "math/rand"

const maxHeight = 12

// Entry is one key/value pair. Fields holds the record's column values.
type Entry struct {
	Key    string
	Fields [][]byte
}

// node is one skip-list element. The tower holds the node's forward
// pointers (length = the node's height) and is a sub-slice of an arena
// block, so a node costs exactly its height — not maxHeight — pointers.
type node struct {
	entry Entry
	// keyPfx/keyPfx2 are the key's first 16 bytes as two big-endian
	// integers (zero padded), so the search hot loop orders nodes with
	// one or two register compares and falls back to a byte-wise compare
	// only on a double tie. Sound because zero-padded big-endian prefix
	// order is a coarsening of lexicographic order: pfx(a) < pfx(b)
	// implies a < b, and equal prefixes decide nothing either way. The
	// benchmark's 25-byte keys ("user" + 21 hashed digits) resolve almost
	// every comparison inside the first two words.
	keyPfx  uint64
	keyPfx2 uint64
	payload int64 // key + field bytes, tracked for replace accounting
	tower   []*node
}

// keyPrefix packs bytes [off, off+8) of k big-endian, zero padded.
func keyPrefix(k string, off int) uint64 {
	var p uint64
	for i := 0; i < 8 && off+i < len(k); i++ {
		p |= uint64(k[off+i]) << (56 - 8*i)
	}
	return p
}

// Arena chunk sizing. Nodes and towers are pointer-dense and fixed-count;
// byte chunks hold copied field payloads.
const (
	nodeChunk  = 256
	towerChunk = 1024 // avg tower height is 4/3, so this outlives nodeChunk
	byteChunk  = 16 << 10
	fieldChunk = 1280 // [] byte headers; 5 per entry for the benchmark schema
)

// Memtable is an ordered map from string keys to field lists, implemented
// as an arena-backed skip list. It is not safe for concurrent use
// (simulated processes run one at a time).
type Memtable struct {
	head   *node
	height int
	n      int
	bytes  int64
	rng    *rand.Rand

	// randBits buffers 2-bit tower-height draws so most Puts consume no
	// fresh value from rng at all.
	randBits uint64
	randN    int

	// arena chunks. Exhausted chunks are abandoned to the GC reference
	// held by the nodes carved from them; only the active chunk is
	// retained here.
	nodes  []node
	towers []*node
	bytesA []byte
	fields [][]byte
}

// New creates an empty memtable with a deterministic tower-height source.
func New(seed int64) *Memtable {
	m := &Memtable{
		height: 1,
		rng:    rand.New(rand.NewSource(seed)),
	}
	m.head = m.newNode(maxHeight)
	return m
}

// newNode carves a node with an h-pointer tower from the arenas.
func (m *Memtable) newNode(h int) *node {
	if len(m.nodes) == cap(m.nodes) {
		m.nodes = make([]node, 0, nodeChunk)
	}
	m.nodes = m.nodes[:len(m.nodes)+1]
	nd := &m.nodes[len(m.nodes)-1]
	if cap(m.towers)-len(m.towers) < h {
		m.towers = make([]*node, 0, towerChunk)
	}
	m.towers = m.towers[:len(m.towers)+h]
	nd.tower = m.towers[len(m.towers)-h : len(m.towers) : len(m.towers)]
	return nd
}

// copyBytes copies b into the byte arena and returns the owned copy.
func (m *Memtable) copyBytes(b []byte) []byte {
	if cap(m.bytesA)-len(m.bytesA) < len(b) {
		size := byteChunk
		if len(b) > size {
			size = len(b)
		}
		m.bytesA = make([]byte, 0, size)
	}
	m.bytesA = m.bytesA[:len(m.bytesA)+len(b)]
	dst := m.bytesA[len(m.bytesA)-len(b) : len(m.bytesA) : len(m.bytesA)]
	copy(dst, b)
	return dst
}

// copyFields copies the field set into the arenas (headers and payload)
// and returns the owned copy plus its payload byte count.
func (m *Memtable) copyFields(fields [][]byte) ([][]byte, int64) {
	n := len(fields)
	if cap(m.fields)-len(m.fields) < n {
		size := fieldChunk
		if n > size {
			size = n
		}
		m.fields = make([][]byte, 0, size)
	}
	m.fields = m.fields[:len(m.fields)+n]
	dst := m.fields[len(m.fields)-n : len(m.fields) : len(m.fields)]
	var b int64
	for i, f := range fields {
		dst[i] = m.copyBytes(f)
		b += int64(len(f))
	}
	return dst, b
}

// randomHeight draws a geometric(1/4) tower height from buffered random
// bits: two bits per level, one rng word per 32 level tests.
func (m *Memtable) randomHeight() int {
	h := 1
	for h < maxHeight {
		if m.randN == 0 {
			m.randBits = m.rng.Uint64()
			m.randN = 32
		}
		bits := m.randBits & 3
		m.randBits >>= 2
		m.randN--
		if bits != 0 {
			break
		}
		h++
	}
	return h
}

// findGreaterOrEqual returns the first node with key >= k and fills prev
// with the rightmost node before it on each level. The paper-scale figure
// runs spend a third of their host CPU here, so the loop orders nodes by
// integer key prefix and only falls back to a byte-wise compare on ties.
func (m *Memtable) findGreaterOrEqual(k string, prev *[maxHeight]*node) *node {
	pfx, pfx2 := keyPrefix(k, 0), keyPrefix(k, 8)
	x := m.head
	for lvl := m.height - 1; lvl >= 0; lvl-- {
		for nxt := x.tower[lvl]; nxt != nil; nxt = x.tower[lvl] {
			if nxt.keyPfx != pfx {
				if nxt.keyPfx > pfx {
					break
				}
			} else if nxt.keyPfx2 != pfx2 {
				if nxt.keyPfx2 > pfx2 {
					break
				}
			} else if nxt.entry.Key >= k {
				break
			}
			x = nxt
		}
		if prev != nil {
			prev[lvl] = x
		}
	}
	return x.tower[0]
}

// Put inserts or replaces the value for key, copying the field bytes into
// the memtable's arena. The caller keeps ownership of fields and may
// reuse it immediately.
func (m *Memtable) Put(key string, fields [][]byte) {
	var prev [maxHeight]*node
	x := m.findGreaterOrEqual(key, &prev)
	if x != nil && x.entry.Key == key {
		m.replace(x, fields)
		return
	}
	h := m.randomHeight()
	if h > m.height {
		for lvl := m.height; lvl < h; lvl++ {
			prev[lvl] = m.head
		}
		m.height = h
	}
	nd := m.newNode(h)
	owned, fieldBytes := m.copyFields(fields)
	nd.entry = Entry{Key: key, Fields: owned}
	nd.keyPfx, nd.keyPfx2 = keyPrefix(key, 0), keyPrefix(key, 8)
	nd.payload = int64(len(key)) + fieldBytes
	for lvl := 0; lvl < h; lvl++ {
		nd.tower[lvl] = prev[lvl].tower[lvl]
		prev[lvl].tower[lvl] = nd
	}
	m.n++
	m.bytes += nd.payload
}

// replace overwrites an existing node's fields. When the new field set has
// the same shape (count and per-field length) the bytes are copied in
// place; otherwise fresh arena space is carved and the old space is left
// to the arena (reclaimed when the memtable is dropped after flush).
func (m *Memtable) replace(x *node, fields [][]byte) {
	sameShape := len(fields) == len(x.entry.Fields)
	if sameShape {
		for i, f := range fields {
			if len(f) != len(x.entry.Fields[i]) {
				sameShape = false
				break
			}
		}
	}
	var fieldBytes int64
	if sameShape {
		for i, f := range fields {
			copy(x.entry.Fields[i], f)
			fieldBytes += int64(len(f))
		}
	} else {
		x.entry.Fields, fieldBytes = m.copyFields(fields)
	}
	newPayload := int64(len(x.entry.Key)) + fieldBytes
	m.bytes += newPayload - x.payload
	x.payload = newPayload
}

// Get returns the fields for key and whether it was present.
func (m *Memtable) Get(key string) ([][]byte, bool) {
	x := m.findGreaterOrEqual(key, nil)
	if x != nil && x.entry.Key == key {
		return x.entry.Fields, true
	}
	return nil, false
}

// Scan returns up to count entries with keys >= start, in key order.
func (m *Memtable) Scan(start string, count int) []Entry {
	var out []Entry
	x := m.findGreaterOrEqual(start, nil)
	for x != nil && len(out) < count {
		out = append(out, x.entry)
		x = x.tower[0]
	}
	return out
}

// Len returns the number of entries.
func (m *Memtable) Len() int { return m.n }

// Bytes returns the payload size of all entries (keys + field bytes).
func (m *Memtable) Bytes() int64 { return m.bytes }

// All returns every entry in key order (used when flushing to an SSTable).
func (m *Memtable) All() []Entry {
	out := make([]Entry, 0, m.n)
	for x := m.head.tower[0]; x != nil; x = x.tower[0] {
		out = append(out, x.entry)
	}
	return out
}

// Iter calls fn for each entry in key order until fn returns false.
func (m *Memtable) Iter(fn func(Entry) bool) {
	for x := m.head.tower[0]; x != nil; x = x.tower[0] {
		if !fn(x.entry) {
			return
		}
	}
}

// Iterator is a forward cursor over the skip list's bottom level. It is a
// small value type so callers can hold and advance one without allocating;
// the LSM scan path merges these against SSTable iterators.
type Iterator struct {
	x *node
}

// SeekIter returns an iterator positioned at the first entry with key >=
// start. Mutating the memtable invalidates outstanding iterators.
func (m *Memtable) SeekIter(start string) Iterator {
	return Iterator{x: m.findGreaterOrEqual(start, nil)}
}

// Valid reports whether the iterator points at an entry.
func (it Iterator) Valid() bool { return it.x != nil }

// Entry returns the current entry. It must not be called on an invalid
// iterator.
func (it Iterator) Entry() Entry { return it.x.entry }

// Next advances to the following entry in key order.
func (it *Iterator) Next() { it.x = it.x.tower[0] }
