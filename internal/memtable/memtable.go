// Package memtable implements a skip-list ordered in-memory table, the
// write buffer of an LSM tree (Cassandra's Memtable, HBase's MemStore).
package memtable

import "math/rand"

const maxHeight = 12

// Entry is one key/value pair. Fields holds the record's column values.
type Entry struct {
	Key    string
	Fields [][]byte
}

type node struct {
	entry Entry
	next  [maxHeight]*node
}

// Memtable is an ordered map from string keys to field lists, implemented
// as a skip list. It is not safe for concurrent use (simulated processes
// run one at a time).
type Memtable struct {
	head   *node
	height int
	n      int
	bytes  int64
	rng    *rand.Rand
}

// New creates an empty memtable with a deterministic tower-height source.
func New(seed int64) *Memtable {
	return &Memtable{
		head:   &node{},
		height: 1,
		rng:    rand.New(rand.NewSource(seed)),
	}
}

func entryBytes(key string, fields [][]byte) int64 {
	b := int64(len(key))
	for _, f := range fields {
		b += int64(len(f))
	}
	return b
}

func (m *Memtable) randomHeight() int {
	h := 1
	for h < maxHeight && m.rng.Intn(4) == 0 {
		h++
	}
	return h
}

// findGreaterOrEqual returns the first node with key >= k and fills prev
// with the rightmost node before it on each level.
func (m *Memtable) findGreaterOrEqual(k string, prev *[maxHeight]*node) *node {
	x := m.head
	for lvl := m.height - 1; lvl >= 0; lvl-- {
		for x.next[lvl] != nil && x.next[lvl].entry.Key < k {
			x = x.next[lvl]
		}
		if prev != nil {
			prev[lvl] = x
		}
	}
	return x.next[0]
}

// Put inserts or replaces the value for key.
func (m *Memtable) Put(key string, fields [][]byte) {
	var prev [maxHeight]*node
	x := m.findGreaterOrEqual(key, &prev)
	if x != nil && x.entry.Key == key {
		m.bytes += entryBytes(key, fields) - entryBytes(x.entry.Key, x.entry.Fields)
		x.entry.Fields = fields
		return
	}
	h := m.randomHeight()
	if h > m.height {
		for lvl := m.height; lvl < h; lvl++ {
			prev[lvl] = m.head
		}
		m.height = h
	}
	nd := &node{entry: Entry{Key: key, Fields: fields}}
	for lvl := 0; lvl < h; lvl++ {
		nd.next[lvl] = prev[lvl].next[lvl]
		prev[lvl].next[lvl] = nd
	}
	m.n++
	m.bytes += entryBytes(key, fields)
}

// Get returns the fields for key and whether it was present.
func (m *Memtable) Get(key string) ([][]byte, bool) {
	x := m.findGreaterOrEqual(key, nil)
	if x != nil && x.entry.Key == key {
		return x.entry.Fields, true
	}
	return nil, false
}

// Scan returns up to count entries with keys >= start, in key order.
func (m *Memtable) Scan(start string, count int) []Entry {
	var out []Entry
	x := m.findGreaterOrEqual(start, nil)
	for x != nil && len(out) < count {
		out = append(out, x.entry)
		x = x.next[0]
	}
	return out
}

// Len returns the number of entries.
func (m *Memtable) Len() int { return m.n }

// Bytes returns the payload size of all entries (keys + field bytes).
func (m *Memtable) Bytes() int64 { return m.bytes }

// All returns every entry in key order (used when flushing to an SSTable).
func (m *Memtable) All() []Entry {
	out := make([]Entry, 0, m.n)
	for x := m.head.next[0]; x != nil; x = x.next[0] {
		out = append(out, x.entry)
	}
	return out
}

// Iter calls fn for each entry in key order until fn returns false.
func (m *Memtable) Iter(fn func(Entry) bool) {
	for x := m.head.next[0]; x != nil; x = x.next[0] {
		if !fn(x.entry) {
			return
		}
	}
}

// Iterator is a forward cursor over the skip list's bottom level. It is a
// small value type so callers can hold and advance one without allocating;
// the LSM scan path merges these against SSTable iterators.
type Iterator struct {
	x *node
}

// SeekIter returns an iterator positioned at the first entry with key >=
// start. Mutating the memtable invalidates outstanding iterators.
func (m *Memtable) SeekIter(start string) Iterator {
	return Iterator{x: m.findGreaterOrEqual(start, nil)}
}

// Valid reports whether the iterator points at an entry.
func (it Iterator) Valid() bool { return it.x != nil }

// Entry returns the current entry. It must not be called on an invalid
// iterator.
func (it Iterator) Entry() Entry { return it.x.entry }

// Next advances to the following entry in key order.
func (it *Iterator) Next() { it.x = it.x.next[0] }
