// Package memtable implements a skip-list ordered in-memory table, the
// write buffer of an LSM tree (Cassandra's Memtable, HBase's MemStore).
//
// The skip list is cache-conscious and pointer-free: every node is a
// small run of uint64 words — key prefix pair, payload ref, packed
// lengths, then the tower's next-links inline — carved from chunked word
// arenas and addressed by word offsets instead of pointers. The search
// hot loop therefore walks contiguous memory (a node's compare words and
// its tower share one or two cache lines) and the garbage collector sees
// a handful of large scalar buffers instead of millions of linked nodes.
// Keys and field payloads live contiguously in a slab.Slab; field
// layouts are interned in a slab.ShapeTable so uniform-schema records
// pay no per-record header storage.
//
// Field bytes are COPIED on insert — the memtable owns its payload
// memory — which is what lets callers reuse one fields buffer across
// operations (see store.CopiesOnIngest).
//
// Ownership note: Get/Scan/iterators return views of the memtable's
// slabs. A later Put that replaces a key with same-shaped fields
// overwrites those bytes in place, so a value read before a simulated
// park may observe the newer write after it — the same "state as of the
// last positioning I/O" semantics the LSM scan path documents. Entries
// handed to a flush are frozen: flushing swaps the whole memtable out,
// Freeze hands the payload slab to the sstable without copying, and a
// frozen memtable's slabs are never written again.
package memtable

import (
	"math/rand"

	"repro/internal/slab"
)

const maxHeight = 12

// maxKeyLen bounds keys to the 16 bits reserved in the node meta word.
const maxKeyLen = 1<<16 - 1

// Entry is one key/value pair. Fields views the record's column values.
type Entry struct {
	Key    string
	Fields slab.FieldsView
}

// Node layout, in words relative to the node's arena offset. keyPfx and
// keyPfx2 are the key's first 16 bytes as two big-endian integers (zero
// padded), so the search hot loop orders nodes with one or two register
// compares and falls back to a byte-wise compare only on a double tie —
// sound because zero-padded big-endian prefix order is a coarsening of
// lexicographic order. dataRef locates the record's payload in the slab:
// key bytes first, field bytes contiguously after. meta packs
// keyLen(16) | fieldsLen(32) | height(8). The tower's next-links (one
// word per level, value = target node offset, 0 = nil) follow the header
// inline, so one cache line usually covers both the compare and the next
// hop.
const (
	nodeKeyPfx  = 0
	nodeKeyPfx2 = 1
	nodeDataRef = 2
	nodeMeta    = 3
	nodeShape   = 4
	nodeTower   = 5
)

// Word-arena chunk sizing: 32K words = 256 KiB per chunk. Offsets pack
// (chunk, word) so a chunk append never invalidates existing offsets,
// and a node is always contiguous within one chunk (max node size is
// nodeTower+maxHeight = 17 words).
const (
	arenaShift = 15
	arenaWords = 1 << arenaShift
	arenaMask  = arenaWords - 1
)

// wordArena is a chunked append-only uint64 arena addressed by packed
// (chunk<<15 | word) offsets.
type wordArena struct {
	chunks    [][]uint64
	allocated int64
}

// alloc carves words zeroed words, padding past a chunk tail rather than
// splitting a node across chunks.
func (a *wordArena) alloc(words int) uint64 {
	ci := len(a.chunks) - 1
	var c []uint64
	if ci >= 0 {
		c = a.chunks[ci]
	}
	if ci < 0 || cap(c)-len(c) < words {
		c = make([]uint64, 0, arenaWords)
		a.chunks = append(a.chunks, c)
		a.allocated += arenaWords * 8
		ci++
	}
	off := len(c)
	a.chunks[ci] = c[: off+words : cap(c)]
	return uint64(ci)<<arenaShift | uint64(off)
}

// keyPrefix is the shared big-endian prefix packing (see slab.KeyPrefix).
func keyPrefix(k string, off int) uint64 { return slab.KeyPrefix(k, off) }

// Memtable is an ordered map from string keys to field lists, implemented
// as a flat-arena skip list. It is not safe for concurrent use
// (simulated processes run one at a time).
type Memtable struct {
	arena  wordArena
	data   slab.Slab
	shapes slab.ShapeTable

	height int
	n      int
	bytes  int64
	frozen bool
	rng    *rand.Rand

	// randBits buffers 2-bit tower-height draws so most Puts consume no
	// fresh value from rng at all.
	randBits uint64
	randN    int
}

// New creates an empty memtable with a deterministic tower-height source.
func New(seed int64) *Memtable {
	m := &Memtable{
		height: 1,
		rng:    rand.New(rand.NewSource(seed)),
	}
	// The head node occupies offset 0 with a full-height zeroed tower;
	// offset 0 doubles as the nil link because no tower ever points back
	// at the head.
	m.arena.alloc(nodeTower + maxHeight)
	return m
}

// nodeKey returns the key bytes of the node at off as a zero-copy string
// view (key bytes are never overwritten, so the view is stable).
func (m *Memtable) nodeKey(off uint64) string {
	c := m.arena.chunks[off>>arenaShift]
	b := off & arenaMask
	return m.data.String(slab.Ref(c[b+nodeDataRef]), int(c[b+nodeMeta]&0xffff))
}

// nodeEntry materializes the Entry view for the node at off.
func (m *Memtable) nodeEntry(off uint64) Entry {
	c := m.arena.chunks[off>>arenaShift]
	b := off & arenaMask
	meta := c[b+nodeMeta]
	keyLen := int(meta & 0xffff)
	fieldsLen := int(meta >> 16 & 0xffffffff)
	ref := slab.Ref(c[b+nodeDataRef])
	return Entry{
		Key: m.data.String(ref, keyLen),
		// Payload regions are contiguous within one chunk, so the field
		// bytes sit at ref+keyLen.
		Fields: slab.SlabView(
			m.data.View(ref+slab.Ref(keyLen), fieldsLen),
			m.shapes.Ends(uint32(c[b+nodeShape])),
		),
	}
}

// randomHeight draws a geometric(1/4) tower height from buffered random
// bits: two bits per level, one rng word per 32 level tests.
func (m *Memtable) randomHeight() int {
	h := 1
	for h < maxHeight {
		if m.randN == 0 {
			m.randBits = m.rng.Uint64()
			m.randN = 32
		}
		bits := m.randBits & 3
		m.randBits >>= 2
		m.randN--
		if bits != 0 {
			break
		}
		h++
	}
	return h
}

// findGreaterOrEqual returns the offset of the first node with key >= k
// (0 if none) and fills prev with the rightmost node before it on each
// level. The paper-scale figure runs spend a third of their host CPU
// here, so the loop orders nodes by integer key prefix, falls back to a
// byte-wise compare only on a double tie, and reads successive hops from
// flat word chunks instead of chasing heap pointers.
func (m *Memtable) findGreaterOrEqual(k string, prev *[maxHeight]uint64) uint64 {
	pfx, pfx2 := keyPrefix(k, 0), keyPrefix(k, 8)
	chunks := m.arena.chunks
	x := uint64(0) // head
	xc := chunks[0]
	xb := uint64(0)
	for lvl := uint64(m.height - 1); ; lvl-- {
		for {
			nxt := xc[xb+nodeTower+lvl]
			if nxt == 0 {
				break
			}
			c := chunks[nxt>>arenaShift]
			b := nxt & arenaMask
			if npfx := c[b+nodeKeyPfx]; npfx != pfx {
				if npfx > pfx {
					break
				}
			} else if npfx2 := c[b+nodeKeyPfx2]; npfx2 != pfx2 {
				if npfx2 > pfx2 {
					break
				}
			} else if m.data.String(slab.Ref(c[b+nodeDataRef]), int(c[b+nodeMeta]&0xffff)) >= k {
				break
			}
			x, xc, xb = nxt, c, b
		}
		if prev != nil {
			prev[lvl] = x
		}
		if lvl == 0 {
			break
		}
	}
	return xc[xb+nodeTower]
}

// Put inserts or replaces the value for key, copying the field bytes into
// the memtable's slab. The caller keeps ownership of fields and may
// reuse it immediately.
func (m *Memtable) Put(key string, fields [][]byte) {
	if m.frozen {
		panic("memtable: Put on a frozen (flushed) memtable")
	}
	if len(key) > maxKeyLen {
		panic("memtable: key longer than 64 KiB")
	}
	var prev [maxHeight]uint64
	x := m.findGreaterOrEqual(key, &prev)
	if x != 0 && m.nodeKey(x) == key {
		m.replace(x, fields)
		return
	}
	h := m.randomHeight()
	if h > m.height {
		for lvl := m.height; lvl < h; lvl++ {
			prev[lvl] = 0 // head
		}
		m.height = h
	}
	shape, fieldsLen := m.shapes.Intern(fields)
	ref, buf := m.data.Alloc(len(key) + fieldsLen)
	p := copy(buf, key)
	for _, f := range fields {
		p += copy(buf[p:], f)
	}
	off := m.arena.alloc(nodeTower + h)
	chunks := m.arena.chunks // re-read: alloc may have appended a chunk
	c := chunks[off>>arenaShift]
	b := off & arenaMask
	c[b+nodeKeyPfx] = keyPrefix(key, 0)
	c[b+nodeKeyPfx2] = keyPrefix(key, 8)
	c[b+nodeDataRef] = uint64(ref)
	c[b+nodeMeta] = uint64(len(key)) | uint64(fieldsLen)<<16 | uint64(h)<<48
	c[b+nodeShape] = uint64(shape)
	for lvl := uint64(0); lvl < uint64(h); lvl++ {
		pc := chunks[prev[lvl]>>arenaShift]
		pb := prev[lvl]&arenaMask + nodeTower + lvl
		c[b+nodeTower+lvl] = pc[pb]
		pc[pb] = off
	}
	m.n++
	m.bytes += int64(len(key) + fieldsLen)
}

// replace overwrites an existing node's fields. When the new field set
// has the same shape (count and per-field length) the bytes are copied
// in place; otherwise a fresh slab region is carved — including a new
// copy of the key, so key+fields stay contiguous — and the old region is
// left to the slab (reclaimed when the memtable is dropped after flush).
func (m *Memtable) replace(x uint64, fields [][]byte) {
	c := m.arena.chunks[x>>arenaShift]
	b := x & arenaMask
	shape, fieldsLen := m.shapes.Intern(fields)
	meta := c[b+nodeMeta]
	keyLen := int(meta & 0xffff)
	oldFieldsLen := int(meta >> 16 & 0xffffffff)
	if uint64(shape) == c[b+nodeShape] {
		buf := m.data.View(slab.Ref(c[b+nodeDataRef])+slab.Ref(keyLen), fieldsLen)
		p := 0
		for _, f := range fields {
			p += copy(buf[p:], f)
		}
	} else {
		oldKey := m.data.View(slab.Ref(c[b+nodeDataRef]), keyLen)
		ref, buf := m.data.Alloc(keyLen + fieldsLen)
		p := copy(buf, oldKey)
		for _, f := range fields {
			p += copy(buf[p:], f)
		}
		c[b+nodeDataRef] = uint64(ref)
		c[b+nodeShape] = uint64(shape)
		c[b+nodeMeta] = meta&^uint64(0xffffffff<<16) | uint64(fieldsLen)<<16
	}
	m.bytes += int64(fieldsLen) - int64(oldFieldsLen)
}

// Get returns a view of the fields for key and whether it was present.
func (m *Memtable) Get(key string) (slab.FieldsView, bool) {
	x := m.findGreaterOrEqual(key, nil)
	if x != 0 && m.nodeKey(x) == key {
		c := m.arena.chunks[x>>arenaShift]
		b := x & arenaMask
		meta := c[b+nodeMeta]
		keyLen := slab.Ref(meta & 0xffff)
		fieldsLen := int(meta >> 16 & 0xffffffff)
		return slab.SlabView(
			m.data.View(slab.Ref(c[b+nodeDataRef])+keyLen, fieldsLen),
			m.shapes.Ends(uint32(c[b+nodeShape])),
		), true
	}
	return slab.FieldsView{}, false
}

// Scan returns up to count entries with keys >= start, in key order.
func (m *Memtable) Scan(start string, count int) []Entry {
	var out []Entry
	for x := m.findGreaterOrEqual(start, nil); x != 0 && len(out) < count; x = m.next(x) {
		out = append(out, m.nodeEntry(x))
	}
	return out
}

// next returns the offset of the node after x on the bottom level.
func (m *Memtable) next(x uint64) uint64 {
	return m.arena.chunks[x>>arenaShift][x&arenaMask+nodeTower]
}

// Len returns the number of entries.
func (m *Memtable) Len() int { return m.n }

// Bytes returns the payload size of all entries (keys + field bytes).
func (m *Memtable) Bytes() int64 { return m.bytes }

// SlabBytes returns the heap footprint of the memtable's arenas: node
// words plus payload slab capacity (apmbench -memstats).
func (m *Memtable) SlabBytes() int64 {
	return m.arena.allocated + m.data.Allocated()
}

// All returns every entry in key order (used by tests; the flush path
// uses Freeze for a zero-copy handoff).
func (m *Memtable) All() []Entry {
	out := make([]Entry, 0, m.n)
	for x := m.next(0); x != 0; x = m.next(x) {
		out = append(out, m.nodeEntry(x))
	}
	return out
}

// Iter calls fn for each entry in key order until fn returns false.
func (m *Memtable) Iter(fn func(Entry) bool) {
	for x := m.next(0); x != 0; x = m.next(x) {
		if !fn(m.nodeEntry(x)) {
			return
		}
	}
}

// FlushEntry locates one record inside the slabs handed over by Freeze:
// payload at Ref (key bytes, then field bytes), layout as a shape index
// into the transferred ShapeTable.
type FlushEntry struct {
	KeyPfx, KeyPfx2 uint64
	Ref             slab.Ref
	KeyLen          int
	FieldsLen       int
	Shape           uint32
}

// Freeze marks the memtable immutable, streams every entry in key order
// to fn, and returns the payload slab and shape table for zero-copy
// reuse by the flushed sstable. The slabs are shared, not moved:
// outstanding scan iterators keep reading the frozen skip list, whose
// bytes are never written again; the word arena is freed with the
// memtable while the payload chunks live on inside the table.
func (m *Memtable) Freeze(fn func(FlushEntry)) (slab.Slab, slab.ShapeTable) {
	m.frozen = true
	for x := m.next(0); x != 0; x = m.next(x) {
		c := m.arena.chunks[x>>arenaShift]
		b := x & arenaMask
		meta := c[b+nodeMeta]
		fn(FlushEntry{
			KeyPfx:    c[b+nodeKeyPfx],
			KeyPfx2:   c[b+nodeKeyPfx2],
			Ref:       slab.Ref(c[b+nodeDataRef]),
			KeyLen:    int(meta & 0xffff),
			FieldsLen: int(meta >> 16 & 0xffffffff),
			Shape:     uint32(c[b+nodeShape]),
		})
	}
	return m.data, m.shapes
}

// Iterator is a forward cursor over the skip list's bottom level. It is a
// small value type so callers can hold and advance one without
// allocating; the LSM scan path merges these against SSTable iterators.
type Iterator struct {
	m *Memtable
	x uint64
}

// SeekIter returns an iterator positioned at the first entry with key >=
// start. Mutating the memtable invalidates outstanding iterators.
func (m *Memtable) SeekIter(start string) Iterator {
	return Iterator{m: m, x: m.findGreaterOrEqual(start, nil)}
}

// Valid reports whether the iterator points at an entry.
func (it Iterator) Valid() bool { return it.x != 0 }

// Entry returns the current entry. It must not be called on an invalid
// iterator.
func (it Iterator) Entry() Entry { return it.m.nodeEntry(it.x) }

// Next advances to the following entry in key order.
func (it *Iterator) Next() { it.x = it.m.next(it.x) }
