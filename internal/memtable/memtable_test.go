package memtable

import (
	"fmt"
	"sort"
	"testing"
	"testing/quick"
)

func f1(s string) [][]byte { return [][]byte{[]byte(s)} }

func TestPutGet(t *testing.T) {
	m := New(1)
	m.Put("b", f1("vb"))
	m.Put("a", f1("va"))
	m.Put("c", f1("vc"))
	for _, k := range []string{"a", "b", "c"} {
		v, ok := m.Get(k)
		if !ok || string(v[0]) != "v"+k {
			t.Fatalf("Get(%q) = %v, %v", k, v, ok)
		}
	}
	if _, ok := m.Get("d"); ok {
		t.Fatal("Get of absent key succeeded")
	}
}

func TestPutReplaces(t *testing.T) {
	m := New(1)
	m.Put("k", f1("v1"))
	m.Put("k", f1("v2"))
	if m.Len() != 1 {
		t.Fatalf("Len = %d after replace, want 1", m.Len())
	}
	v, _ := m.Get("k")
	if string(v[0]) != "v2" {
		t.Fatalf("value = %s, want v2", v[0])
	}
}

func TestScanOrderedFromStart(t *testing.T) {
	m := New(1)
	for i := 9; i >= 0; i-- {
		m.Put(fmt.Sprintf("k%02d", i), f1("v"))
	}
	got := m.Scan("k03", 4)
	if len(got) != 4 {
		t.Fatalf("scan returned %d entries, want 4", len(got))
	}
	want := []string{"k03", "k04", "k05", "k06"}
	for i, e := range got {
		if e.Key != want[i] {
			t.Fatalf("scan[%d] = %q, want %q", i, e.Key, want[i])
		}
	}
}

func TestScanStartBetweenKeys(t *testing.T) {
	m := New(1)
	m.Put("a", f1("v"))
	m.Put("c", f1("v"))
	got := m.Scan("b", 10)
	if len(got) != 1 || got[0].Key != "c" {
		t.Fatalf("scan from between keys = %v, want [c]", got)
	}
}

func TestScanPastEnd(t *testing.T) {
	m := New(1)
	m.Put("a", f1("v"))
	if got := m.Scan("z", 5); len(got) != 0 {
		t.Fatalf("scan past end returned %v", got)
	}
}

func TestBytesAccounting(t *testing.T) {
	m := New(1)
	m.Put("key", [][]byte{[]byte("12345"), []byte("67890")}) // 3+5+5 = 13
	if m.Bytes() != 13 {
		t.Fatalf("Bytes = %d, want 13", m.Bytes())
	}
	m.Put("key", [][]byte{[]byte("1")}) // 3+1 = 4
	if m.Bytes() != 4 {
		t.Fatalf("Bytes after replace = %d, want 4", m.Bytes())
	}
}

func TestAllReturnsSorted(t *testing.T) {
	m := New(42)
	keys := []string{"q", "a", "z", "m", "b"}
	for _, k := range keys {
		m.Put(k, f1("v"))
	}
	all := m.All()
	if len(all) != len(keys) {
		t.Fatalf("All returned %d entries, want %d", len(all), len(keys))
	}
	if !sort.SliceIsSorted(all, func(i, j int) bool { return all[i].Key < all[j].Key }) {
		t.Fatalf("All not sorted: %v", all)
	}
}

func TestIterEarlyStop(t *testing.T) {
	m := New(1)
	for i := 0; i < 10; i++ {
		m.Put(fmt.Sprintf("k%d", i), f1("v"))
	}
	n := 0
	m.Iter(func(Entry) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("iter visited %d entries, want 3", n)
	}
}

// Property: the memtable agrees with a reference map and All() is sorted.
func TestPropertyAgainstMap(t *testing.T) {
	f := func(ops []struct {
		K string
		V string
	}) bool {
		m := New(99)
		ref := map[string]string{}
		for _, op := range ops {
			m.Put(op.K, f1(op.V))
			ref[op.K] = op.V
		}
		if m.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			got, ok := m.Get(k)
			if !ok || string(got[0]) != v {
				return false
			}
		}
		all := m.All()
		return sort.SliceIsSorted(all, func(i, j int) bool { return all[i].Key < all[j].Key })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Scan(start, n) equals the reference-sorted slice filtered to
// keys >= start, truncated to n.
func TestPropertyScanMatchesSortedRef(t *testing.T) {
	f := func(keys []string, start string, n8 uint8) bool {
		n := int(n8%16) + 1
		m := New(7)
		ref := map[string]bool{}
		for _, k := range keys {
			m.Put(k, f1("v"))
			ref[k] = true
		}
		var want []string
		for k := range ref {
			if k >= start {
				want = append(want, k)
			}
		}
		sort.Strings(want)
		if len(want) > n {
			want = want[:n]
		}
		got := m.Scan(start, n)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i].Key != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestPutAllocBudget pins the arena contract: a steady-state insert
// performs no per-operation heap allocation — only the amortized chunk
// allocations, well under 0.1 allocs/op.
func TestPutAllocBudget(t *testing.T) {
	const n = 4096
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("key%013d", i)
	}
	fields := [][]byte{
		[]byte("0123456780"), []byte("0123456781"), []byte("0123456782"),
		[]byte("0123456783"), []byte("0123456784"),
	}
	m := New(1)
	i := 0
	avg := testing.AllocsPerRun(n-1, func() {
		m.Put(keys[i], fields)
		i++
	})
	if avg > 0.1 {
		t.Fatalf("Put allocates %.3f allocs/op in steady state, want amortized ~0", avg)
	}
}

// TestReplaceAllocBudget pins that a same-shape replace copies in place:
// zero allocations, not even amortized arena growth.
func TestReplaceAllocBudget(t *testing.T) {
	m := New(1)
	m.Put("key0000000000001", [][]byte{[]byte("0123456789")})
	repl := [][]byte{[]byte("9876543210")}
	avg := testing.AllocsPerRun(1000, func() {
		m.Put("key0000000000001", repl)
	})
	if avg != 0 {
		t.Fatalf("same-shape replace allocates %.3f allocs/op, want 0", avg)
	}
	if m.Len() != 1 || m.Bytes() != 26 {
		t.Fatalf("after replaces: Len=%d Bytes=%d, want 1/26", m.Len(), m.Bytes())
	}
}

// TestPutCopiesFields pins the copy-on-ingest contract: the memtable owns
// its payload bytes, so mutating (or reusing) the caller's buffer after
// Put must not change stored values.
func TestPutCopiesFields(t *testing.T) {
	m := New(1)
	buf := [][]byte{[]byte("aaaa"), []byte("bbbb")}
	m.Put("k1", buf)
	copy(buf[0], "XXXX")
	copy(buf[1], "YYYY")
	m.Put("k2", buf)
	v1, _ := m.Get("k1")
	v2, _ := m.Get("k2")
	if string(v1[0]) != "aaaa" || string(v1[1]) != "bbbb" {
		t.Fatalf("k1 = %q/%q: stored value aliased the caller's buffer", v1[0], v1[1])
	}
	if string(v2[0]) != "XXXX" || string(v2[1]) != "YYYY" {
		t.Fatalf("k2 = %q/%q, want the mutated buffer's contents", v2[0], v2[1])
	}
}

// TestReplaceDifferentShape covers the arena-recarve branch: replacing
// with a different field count or size must not corrupt earlier values.
func TestReplaceDifferentShape(t *testing.T) {
	m := New(1)
	m.Put("a", [][]byte{[]byte("0123456789")})
	m.Put("b", [][]byte{[]byte("0123456789")})
	m.Put("a", [][]byte{[]byte("xy"), []byte("longer-than-before")})
	va, _ := m.Get("a")
	vb, _ := m.Get("b")
	if len(va) != 2 || string(va[0]) != "xy" || string(va[1]) != "longer-than-before" {
		t.Fatalf("a = %q", va)
	}
	if len(vb) != 1 || string(vb[0]) != "0123456789" {
		t.Fatalf("b = %q: neighbor corrupted by reshaped replace", vb)
	}
	if m.Bytes() != 1+20+1+10 {
		t.Fatalf("Bytes = %d, want 32", m.Bytes())
	}
}

// BenchmarkMemtablePut measures the steady-state insert path with keys
// built outside the timed loop, so the reported allocs/op are the
// memtable's own (tower nodes, field copies), not the caller's key
// construction.
func BenchmarkMemtablePut(b *testing.B) {
	const pool = 1 << 20
	keys := make([]string, pool)
	for i := range keys {
		keys[i] = fmt.Sprintf("key%013d", i)
	}
	fields := [][]byte{
		[]byte("0123456780"), []byte("0123456781"), []byte("0123456782"),
		[]byte("0123456783"), []byte("0123456784"),
	}
	m := New(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Put(keys[i%pool], fields)
	}
}

func BenchmarkGet(b *testing.B) {
	m := New(1)
	for i := 0; i < 100000; i++ {
		m.Put(fmt.Sprintf("key%09d", i), f1("0123456789"))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Get(fmt.Sprintf("key%09d", i%100000))
	}
}

func TestSeekIterMatchesScan(t *testing.T) {
	m := New(1)
	for i := 0; i < 200; i += 2 {
		m.Put(fmt.Sprintf("k%03d", i), f1(fmt.Sprintf("v%d", i)))
	}
	for _, start := range []string{"", "k050", "k051", "k198", "k199", "z"} {
		want := m.Scan(start, 1<<30)
		var got []Entry
		for it := m.SeekIter(start); it.Valid(); it.Next() {
			got = append(got, it.Entry())
		}
		if len(got) != len(want) {
			t.Fatalf("SeekIter(%q) yielded %d entries, Scan %d", start, len(got), len(want))
		}
		for i := range got {
			if got[i].Key != want[i].Key || string(got[i].Fields[0]) != string(want[i].Fields[0]) {
				t.Fatalf("SeekIter(%q)[%d] = %v, want %v", start, i, got[i], want[i])
			}
		}
	}
}

func TestSeekIterEmptyTable(t *testing.T) {
	m := New(1)
	if it := m.SeekIter(""); it.Valid() {
		t.Fatal("iterator over empty memtable is valid")
	}
}
