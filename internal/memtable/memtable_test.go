package memtable

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func f1(s string) [][]byte { return [][]byte{[]byte(s)} }

func field0(e Entry) string { return string(e.Fields.Field(0)) }

func TestPutGet(t *testing.T) {
	m := New(1)
	m.Put("b", f1("vb"))
	m.Put("a", f1("va"))
	m.Put("c", f1("vc"))
	for _, k := range []string{"a", "b", "c"} {
		v, ok := m.Get(k)
		if !ok || string(v.Field(0)) != "v"+k {
			t.Fatalf("Get(%q) = %v, %v", k, v, ok)
		}
	}
	if _, ok := m.Get("d"); ok {
		t.Fatal("Get of absent key succeeded")
	}
}

func TestPutReplaces(t *testing.T) {
	m := New(1)
	m.Put("k", f1("v1"))
	m.Put("k", f1("v2"))
	if m.Len() != 1 {
		t.Fatalf("Len = %d after replace, want 1", m.Len())
	}
	v, _ := m.Get("k")
	if string(v.Field(0)) != "v2" {
		t.Fatalf("value = %s, want v2", v.Field(0))
	}
}

func TestScanOrderedFromStart(t *testing.T) {
	m := New(1)
	for i := 9; i >= 0; i-- {
		m.Put(fmt.Sprintf("k%02d", i), f1("v"))
	}
	got := m.Scan("k03", 4)
	if len(got) != 4 {
		t.Fatalf("scan returned %d entries, want 4", len(got))
	}
	want := []string{"k03", "k04", "k05", "k06"}
	for i, e := range got {
		if e.Key != want[i] {
			t.Fatalf("scan[%d] = %q, want %q", i, e.Key, want[i])
		}
	}
}

func TestScanStartBetweenKeys(t *testing.T) {
	m := New(1)
	m.Put("a", f1("v"))
	m.Put("c", f1("v"))
	got := m.Scan("b", 10)
	if len(got) != 1 || got[0].Key != "c" {
		t.Fatalf("scan from between keys = %v, want [c]", got)
	}
}

func TestScanPastEnd(t *testing.T) {
	m := New(1)
	m.Put("a", f1("v"))
	if got := m.Scan("z", 5); len(got) != 0 {
		t.Fatalf("scan past end returned %v", got)
	}
}

func TestBytesAccounting(t *testing.T) {
	m := New(1)
	m.Put("key", [][]byte{[]byte("12345"), []byte("67890")}) // 3+5+5 = 13
	if m.Bytes() != 13 {
		t.Fatalf("Bytes = %d, want 13", m.Bytes())
	}
	m.Put("key", [][]byte{[]byte("1")}) // 3+1 = 4
	if m.Bytes() != 4 {
		t.Fatalf("Bytes after replace = %d, want 4", m.Bytes())
	}
}

func TestAllReturnsSorted(t *testing.T) {
	m := New(42)
	keys := []string{"q", "a", "z", "m", "b"}
	for _, k := range keys {
		m.Put(k, f1("v"))
	}
	all := m.All()
	if len(all) != len(keys) {
		t.Fatalf("All returned %d entries, want %d", len(all), len(keys))
	}
	if !sort.SliceIsSorted(all, func(i, j int) bool { return all[i].Key < all[j].Key }) {
		t.Fatalf("All not sorted: %v", all)
	}
}

func TestIterEarlyStop(t *testing.T) {
	m := New(1)
	for i := 0; i < 10; i++ {
		m.Put(fmt.Sprintf("k%d", i), f1("v"))
	}
	n := 0
	m.Iter(func(Entry) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("iter visited %d entries, want 3", n)
	}
}

// Property: the memtable agrees with a reference map and All() is sorted.
func TestPropertyAgainstMap(t *testing.T) {
	f := func(ops []struct {
		K string
		V string
	}) bool {
		m := New(99)
		ref := map[string]string{}
		for _, op := range ops {
			m.Put(op.K, f1(op.V))
			ref[op.K] = op.V
		}
		if m.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			got, ok := m.Get(k)
			if !ok || string(got.Field(0)) != v {
				return false
			}
		}
		all := m.All()
		return sort.SliceIsSorted(all, func(i, j int) bool { return all[i].Key < all[j].Key })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Scan(start, n) equals the reference-sorted slice filtered to
// keys >= start, truncated to n.
func TestPropertyScanMatchesSortedRef(t *testing.T) {
	f := func(keys []string, start string, n8 uint8) bool {
		n := int(n8%16) + 1
		m := New(7)
		ref := map[string]bool{}
		for _, k := range keys {
			m.Put(k, f1("v"))
			ref[k] = true
		}
		var want []string
		for k := range ref {
			if k >= start {
				want = append(want, k)
			}
		}
		sort.Strings(want)
		if len(want) > n {
			want = want[:n]
		}
		got := m.Scan(start, n)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i].Key != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestPutAllocBudget pins the arena contract: a steady-state insert
// performs no per-operation heap allocation — only the amortized chunk
// allocations, well under 0.1 allocs/op.
func TestPutAllocBudget(t *testing.T) {
	const n = 4096
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("key%013d", i)
	}
	fields := [][]byte{
		[]byte("0123456780"), []byte("0123456781"), []byte("0123456782"),
		[]byte("0123456783"), []byte("0123456784"),
	}
	m := New(1)
	i := 0
	avg := testing.AllocsPerRun(n-1, func() {
		m.Put(keys[i], fields)
		i++
	})
	if avg > 0.1 {
		t.Fatalf("Put allocates %.3f allocs/op in steady state, want amortized ~0", avg)
	}
}

// TestReplaceAllocBudget pins that a same-shape replace copies in place:
// zero allocations, not even amortized arena growth.
func TestReplaceAllocBudget(t *testing.T) {
	m := New(1)
	m.Put("key0000000000001", [][]byte{[]byte("0123456789")})
	repl := [][]byte{[]byte("9876543210")}
	avg := testing.AllocsPerRun(1000, func() {
		m.Put("key0000000000001", repl)
	})
	if avg != 0 {
		t.Fatalf("same-shape replace allocates %.3f allocs/op, want 0", avg)
	}
	if m.Len() != 1 || m.Bytes() != 26 {
		t.Fatalf("after replaces: Len=%d Bytes=%d, want 1/26", m.Len(), m.Bytes())
	}
}

// TestPutCopiesFields pins the copy-on-ingest contract: the memtable owns
// its payload bytes, so mutating (or reusing) the caller's buffer after
// Put must not change stored values.
func TestPutCopiesFields(t *testing.T) {
	m := New(1)
	buf := [][]byte{[]byte("aaaa"), []byte("bbbb")}
	m.Put("k1", buf)
	copy(buf[0], "XXXX")
	copy(buf[1], "YYYY")
	m.Put("k2", buf)
	v1, _ := m.Get("k1")
	v2, _ := m.Get("k2")
	if string(v1.Field(0)) != "aaaa" || string(v1.Field(1)) != "bbbb" {
		t.Fatalf("k1 = %q/%q: stored value aliased the caller's buffer", v1.Field(0), v1.Field(1))
	}
	if string(v2.Field(0)) != "XXXX" || string(v2.Field(1)) != "YYYY" {
		t.Fatalf("k2 = %q/%q, want the mutated buffer's contents", v2.Field(0), v2.Field(1))
	}
}

// TestReplaceDifferentShape covers the slab-recarve branch: replacing
// with a different field count or size must not corrupt earlier values.
func TestReplaceDifferentShape(t *testing.T) {
	m := New(1)
	m.Put("a", [][]byte{[]byte("0123456789")})
	m.Put("b", [][]byte{[]byte("0123456789")})
	m.Put("a", [][]byte{[]byte("xy"), []byte("longer-than-before")})
	va, _ := m.Get("a")
	vb, _ := m.Get("b")
	if va.Len() != 2 || string(va.Field(0)) != "xy" || string(va.Field(1)) != "longer-than-before" {
		t.Fatalf("a = %q/%q", va.Field(0), va.Field(1))
	}
	if vb.Len() != 1 || string(vb.Field(0)) != "0123456789" {
		t.Fatalf("b = %q: neighbor corrupted by reshaped replace", vb.Field(0))
	}
	if m.Bytes() != 1+20+1+10 {
		t.Fatalf("Bytes = %d, want 32", m.Bytes())
	}
}

// refTable is the op-for-op reference model for TestSlabLayoutEquivalence:
// a map plus payload accounting with the PR-4 memtable's exact semantics.
type refTable struct {
	vals  map[string][]string
	bytes int64
}

func (r *refTable) put(key string, fields [][]byte) {
	var n int64
	fs := make([]string, len(fields))
	for i, f := range fields {
		fs[i] = string(f)
		n += int64(len(f))
	}
	if old, ok := r.vals[key]; ok {
		for _, f := range old {
			r.bytes -= int64(len(f))
		}
	} else {
		r.bytes += int64(len(key))
	}
	r.vals[key] = fs
	r.bytes += n
}

func (r *refTable) sortedKeys() []string {
	ks := make([]string, 0, len(r.vals))
	for k := range r.vals {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// TestSlabLayoutEquivalence pins the slab-backed memtable against the
// PR-4 layout's observable behavior op-for-op: after every operation of
// a seeded random workload (inserts, same-shape replaces, reshaping
// replaces, point gets, scans), Len/Bytes/Get/Scan/All/SeekIter must
// agree exactly with a reference model implementing the documented PR-4
// semantics. This is the contract that makes the layout swap host-side
// only: Bytes() drives flush timing, All() order drives sstable
// contents, and both must be bit-for-bit what the pointer-based
// implementation produced.
func TestSlabLayoutEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	m := New(5)
	ref := &refTable{vals: map[string][]string{}}
	randFields := func() [][]byte {
		n := 1 + rng.Intn(4)
		fs := make([][]byte, n)
		for i := range fs {
			b := make([]byte, rng.Intn(20))
			for j := range b {
				b[j] = byte('a' + rng.Intn(26))
			}
			fs[i] = b
		}
		return fs
	}
	checkEntry := func(op int, e Entry, key string) {
		want := ref.vals[key]
		if e.Fields.Len() != len(want) {
			t.Fatalf("op %d: entry %q has %d fields, want %d", op, key, e.Fields.Len(), len(want))
		}
		for i, w := range want {
			if string(e.Fields.Field(i)) != w {
				t.Fatalf("op %d: entry %q field %d = %q, want %q", op, key, i, e.Fields.Field(i), w)
			}
		}
	}
	for op := 0; op < 3000; op++ {
		key := fmt.Sprintf("user%09d", rng.Intn(400))
		switch rng.Intn(4) {
		case 0, 1: // insert or replace
			f := randFields()
			m.Put(key, f)
			ref.put(key, f)
		case 2: // point get
			v, ok := m.Get(key)
			_, wok := ref.vals[key]
			if ok != wok {
				t.Fatalf("op %d: Get(%q) present=%v, want %v", op, key, ok, wok)
			}
			if ok {
				checkEntry(op, Entry{Key: key, Fields: v}, key)
			}
		case 3: // scan from a random start
			count := 1 + rng.Intn(8)
			got := m.Scan(key, count)
			var want []string
			for _, k := range ref.sortedKeys() {
				if k >= key && len(want) < count {
					want = append(want, k)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("op %d: Scan(%q,%d) len %d, want %d", op, key, count, len(got), len(want))
			}
			for i, e := range got {
				if e.Key != want[i] {
					t.Fatalf("op %d: Scan[%d] = %q, want %q", op, i, e.Key, want[i])
				}
				checkEntry(op, e, e.Key)
			}
		}
		if m.Len() != len(ref.vals) {
			t.Fatalf("op %d: Len = %d, want %d", op, m.Len(), len(ref.vals))
		}
		if m.Bytes() != ref.bytes {
			t.Fatalf("op %d: Bytes = %d, want %d", op, m.Bytes(), ref.bytes)
		}
	}
	// Full-table sweep: All and SeekIter("") agree with the model.
	keys := ref.sortedKeys()
	all := m.All()
	if len(all) != len(keys) {
		t.Fatalf("All len = %d, want %d", len(all), len(keys))
	}
	it := m.SeekIter("")
	for i, k := range keys {
		if all[i].Key != k {
			t.Fatalf("All[%d] = %q, want %q", i, all[i].Key, k)
		}
		checkEntry(-1, all[i], k)
		if !it.Valid() || it.Entry().Key != k {
			t.Fatalf("iterator at %d: valid=%v, want key %q", i, it.Valid(), k)
		}
		it.Next()
	}
	if it.Valid() {
		t.Fatal("iterator valid past the last key")
	}
}

func TestFreezeHandsOffEntries(t *testing.T) {
	m := New(3)
	for i := 0; i < 100; i++ {
		m.Put(fmt.Sprintf("k%03d", i), f1(fmt.Sprintf("v%d", i)))
	}
	var keys []string
	data, shapes := m.Freeze(func(e FlushEntry) {
		keys = append(keys, data0(m, e))
	})
	if len(keys) != 100 || !sort.StringsAreSorted(keys) {
		t.Fatalf("Freeze yielded %d keys (sorted=%v)", len(keys), sort.StringsAreSorted(keys))
	}
	// The handed-off slab resolves the same payload the memtable held.
	v, _ := m.Get("k042")
	got := data.View(0, 1) // probe: slab is alive and indexable
	_ = got
	if string(v.Field(0)) != "v42" {
		t.Fatalf("frozen memtable Get = %q", v.Field(0))
	}
	if shapes.Len() == 0 {
		t.Fatal("shape table handed off empty")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Put after Freeze did not panic")
		}
	}()
	m.Put("new", f1("v"))
}

// data0 resolves a FlushEntry's key through the memtable's own slab.
func data0(m *Memtable, e FlushEntry) string {
	return m.data.String(e.Ref, e.KeyLen)
}

// BenchmarkMemtablePut measures the steady-state insert path with keys
// built outside the timed loop, so the reported allocs/op are the
// memtable's own (arena nodes, field copies), not the caller's key
// construction.
func BenchmarkMemtablePut(b *testing.B) {
	const pool = 1 << 20
	keys := make([]string, pool)
	for i := range keys {
		keys[i] = fmt.Sprintf("key%013d", i)
	}
	fields := [][]byte{
		[]byte("0123456780"), []byte("0123456781"), []byte("0123456782"),
		[]byte("0123456783"), []byte("0123456784"),
	}
	m := New(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Put(keys[i%pool], fields)
	}
}

// BenchmarkMemtableGet measures the point-read path — the skip-list
// search that dominates figure-run host CPU — over a loaded table with
// keys prebuilt outside the loop.
func BenchmarkMemtableGet(b *testing.B) {
	const n = 100000
	keys := make([]string, n)
	m := New(1)
	fields := [][]byte{
		[]byte("0123456780"), []byte("0123456781"), []byte("0123456782"),
		[]byte("0123456783"), []byte("0123456784"),
	}
	for i := range keys {
		keys[i] = fmt.Sprintf("key%09d", i*7919%n)
		m.Put(keys[i], fields)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Get(keys[i%n])
	}
}

// BenchmarkMemtableScan measures the iterator walk over the bottom
// level: one seek plus a fixed-length cursor advance per iteration, the
// shape of the LSM scan path's memtable source.
func BenchmarkMemtableScan(b *testing.B) {
	const n = 100000
	keys := make([]string, n)
	m := New(1)
	for i := range keys {
		keys[i] = fmt.Sprintf("key%09d", i*7919%n)
		m.Put(keys[i], [][]byte{[]byte("0123456789")})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := m.SeekIter(keys[i%n])
		for j := 0; j < 100 && it.Valid(); j++ {
			e := it.Entry()
			_ = e.Fields
			it.Next()
		}
	}
}
