package fault

import (
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
)

func TestScheduleStringRoundTrip(t *testing.T) {
	in := Schedule{
		{Kind: KillNode, Node: 1, Start: 0.3, End: 0.6},
		{Kind: SlowNode, Node: 0, Start: 0.2, End: 0.8, Factor: 4},
		{Kind: KillNode, Node: 2, Start: 0.5}, // never restarts
		{Kind: CompactionStorm, Node: 0, Start: 0.1, End: 0.9, Factor: 3},
	}
	s := in.String()
	if want := "kill-node@1[0.3:0.6];slow-node@0[0.2:0.8]x4;kill-node@2[0.5];compaction-storm@0[0.1:0.9]x3"; s != want {
		t.Fatalf("String() = %q, want %q", s, want)
	}
	back, err := ParseSchedule(s)
	if err != nil {
		t.Fatal(err)
	}
	if back.String() != s {
		t.Fatalf("round trip changed: %q -> %q", s, back.String())
	}
}

func TestParseScheduleRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"", "kill-node", "kill-node@x[0.5]", "kill-node@1", "kill-node@1[half]",
		"kill-node@1[0.5]y2", "kill-node@1[0.2:bad]",
	} {
		if _, err := ParseSchedule(bad); err == nil {
			t.Errorf("ParseSchedule(%q) succeeded, want error", bad)
		}
	}
}

func TestValidateRejectsBadEvents(t *testing.T) {
	cases := []struct {
		sched Schedule
		want  string
	}{
		{Schedule{{Kind: "explode-node", Node: 0, Start: 0.5}}, "unknown kind"},
		{Schedule{{Kind: KillNode, Node: -1, Start: 0.5}}, "negative node"},
		{Schedule{{Kind: KillNode, Node: 0, Start: 1.5}}, "outside [0,1]"},
		{Schedule{{Kind: SlowNode, Node: 0, Start: 0.1, Factor: -2}}, "negative factor"},
		{Schedule{}, "empty"},
	}
	for _, c := range cases {
		err := c.sched.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Validate(%v) = %v, want error containing %q", c.sched, err, c.want)
		}
	}
}

// fakeTarget records kill/restart transitions with their virtual times.
type fakeTarget struct {
	events []string
	eng    *sim.Engine
}

func (f *fakeTarget) KillNode(i int) {
	f.events = append(f.events, f.stamp("kill", i))
}

func (f *fakeTarget) RestartNode(p *sim.Proc, i int) {
	p.Sleep(5 * sim.Millisecond) // modeled replay
	f.events = append(f.events, f.stamp("up", i))
}

func (f *fakeTarget) stamp(what string, i int) string {
	return what + "-" + f.eng.Now().String()
}

func TestInjectSchedulesTransitionsAtFractions(t *testing.T) {
	e := sim.NewEngine(1)
	c := cluster.New(e, cluster.ClusterM(2))
	ft := &fakeTarget{eng: e}
	sched := Schedule{{Kind: KillNode, Node: 1, Start: 0.25, End: 0.75}}
	total := 400 * sim.Millisecond
	if err := Inject(e, c.Nodes, ft, sched, total); err != nil {
		t.Fatal(err)
	}
	e.Run(0)
	want := []string{"kill-" + (100 * sim.Millisecond).String(), "up-" + (305 * sim.Millisecond).String()}
	if len(ft.events) != 2 || ft.events[0] != want[0] || ft.events[1] != want[1] {
		t.Fatalf("events = %v, want %v", ft.events, want)
	}
}

func TestInjectRejectsOutOfRangeNode(t *testing.T) {
	e := sim.NewEngine(1)
	c := cluster.New(e, cluster.ClusterM(2))
	ft := &fakeTarget{eng: e}
	err := Inject(e, c.Nodes, ft, Schedule{{Kind: KillNode, Node: 5, Start: 0.5}}, sim.Second)
	if err == nil || !strings.Contains(err.Error(), "node 5") {
		t.Fatalf("err = %v, want out-of-range node error", err)
	}
}

func TestInjectRequiresTargetForKill(t *testing.T) {
	e := sim.NewEngine(1)
	c := cluster.New(e, cluster.ClusterM(1))
	err := Inject(e, c.Nodes, struct{}{}, Schedule{{Kind: KillNode, Node: 0, Start: 0.5}}, sim.Second)
	if err == nil || !strings.Contains(err.Error(), "kill/restart") {
		t.Fatalf("err = %v, want unsupported-target error", err)
	}
	err = Inject(e, c.Nodes, struct{}{}, Schedule{{Kind: ReplicaLag, Node: 0, Start: 0.5}}, sim.Second)
	if err == nil || !strings.Contains(err.Error(), "replication") {
		t.Fatalf("err = %v, want no-replication error", err)
	}
}

func TestSlowNodeWindowRestoresSpeed(t *testing.T) {
	e := sim.NewEngine(1)
	c := cluster.New(e, cluster.ClusterM(1))
	sched := Schedule{{Kind: SlowNode, Node: 0, Start: 0.25, End: 0.5, Factor: 10}}
	if err := Inject(e, c.Nodes, struct{}{}, sched, 400*sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	// Probe compute cost inside and outside the slow window.
	var inWindow, after sim.Time
	e.GoAt(150*sim.Millisecond, "probe1", func(p *sim.Proc) {
		t0 := p.Now()
		c.Nodes[0].Compute(p, sim.Millisecond)
		inWindow = p.Now() - t0
	})
	e.GoAt(300*sim.Millisecond, "probe2", func(p *sim.Proc) {
		t0 := p.Now()
		c.Nodes[0].Compute(p, sim.Millisecond)
		after = p.Now() - t0
	})
	e.Run(0)
	if inWindow != 10*sim.Millisecond {
		t.Errorf("compute inside slow window took %v, want 10ms", inWindow)
	}
	if after != sim.Millisecond {
		t.Errorf("compute after slow window took %v, want 1ms", after)
	}
}

func TestCompactionStormContendsDiskThenStops(t *testing.T) {
	e := sim.NewEngine(1)
	c := cluster.New(e, cluster.ClusterM(1))
	sched := Schedule{{Kind: CompactionStorm, Node: 0, Start: 0, End: 0.5, Factor: 1}}
	if err := Inject(e, c.Nodes, struct{}{}, sched, 200*sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	e.Run(sim.Second)
	busy := c.Nodes[0].DiskBusy()
	if busy <= 0 {
		t.Fatalf("storm generated no disk load (busy=%g)", busy)
	}
	// The storm must stop at the window end: utilization over 1s with a
	// 100ms storm window is well under half.
	if busy > 0.5 {
		t.Fatalf("storm did not stop at window end (busy=%g)", busy)
	}
}
