// Package fault injects failures into a running simulation as part of the
// deterministic event stream. A fault schedule is a list of events — node
// kills and restarts, slowdowns, replica lag, compaction storms — each with
// a virtual-time window expressed as a fraction of the run, so the same
// schedule stresses a run at paper fidelity and at CI quick fidelity alike.
//
// Injection is driven by simulation processes scheduled up front on the
// cell's own engine, so a faulted run is exactly as deterministic as a
// clean one: same seed, same schedule, same bytes out.
package fault

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/cluster"
	"repro/internal/sim"
)

// Kind names a fault shape.
type Kind string

// Fault kinds.
const (
	// KillNode takes a node down at Start. If End > Start the node is
	// restarted at End (paying recovery replay); otherwise it stays dead.
	KillNode Kind = "kill-node"
	// RestartNode restarts an already-dead node at Start (for schedules
	// that pair a bare kill with a later independent restart).
	RestartNode Kind = "restart-node"
	// SlowNode multiplies the node's CPU and disk service times by Factor
	// (default 4) over [Start, End).
	SlowNode Kind = "slow-node"
	// ReplicaLag delays asynchronous replica application targeting the
	// node by Factor milliseconds (default 50) over [Start, End). Only
	// stores with async replication honor it.
	ReplicaLag Kind = "replica-lag"
	// CompactionStorm runs Factor (default 2) background streams of bulk
	// disk I/O on the node over [Start, End), contending with foreground
	// requests for the spindles.
	CompactionStorm Kind = "compaction-storm"
)

// Event is one scheduled fault against one node. Start and End are
// fractions of the whole run (warmup + measure) in [0, 1]; End <= Start
// means "no end": a kill never restarts, a windowed fault runs to the end
// of the run. Factor is kind-specific (see the Kind constants); zero picks
// the kind's default.
type Event struct {
	Kind   Kind
	Node   int
	Start  float64
	End    float64
	Factor float64
}

// Schedule is an ordered fault list. Injection order follows slice order,
// with ties in virtual time broken by scheduling order — deterministic.
type Schedule []Event

// defaults per kind.
const (
	defaultSlowFactor = 4
	defaultLagMillis  = 50
	defaultStormFlows = 2
	stormChunk        = 4 << 20 // bytes per storm I/O burst
	stormPause        = 2 * sim.Millisecond
)

// String renders the schedule in its canonical compact form, e.g.
// "kill-node@1[0.3:0.6];slow-node@0[0.2:0.8]x4". The form round-trips
// through ParseSchedule and is what the harness uses as a cache-key
// fragment, so it must be stable.
func (s Schedule) String() string {
	parts := make([]string, len(s))
	for i, ev := range s {
		var b strings.Builder
		fmt.Fprintf(&b, "%s@%d[%s", ev.Kind, ev.Node, formatFrac(ev.Start))
		if ev.End > ev.Start {
			b.WriteByte(':')
			b.WriteString(formatFrac(ev.End))
		}
		b.WriteByte(']')
		if ev.Factor != 0 {
			b.WriteByte('x')
			b.WriteString(formatFrac(ev.Factor))
		}
		parts[i] = b.String()
	}
	return strings.Join(parts, ";")
}

func formatFrac(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// ParseSchedule parses the canonical form produced by String:
// one or more ";"-separated events "kind@node[start]", "kind@node[start:end]",
// optionally suffixed "x<factor>".
func ParseSchedule(s string) (Schedule, error) {
	var out Schedule
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		ev, err := parseEvent(part)
		if err != nil {
			return nil, err
		}
		out = append(out, ev)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("fault: empty schedule %q", s)
	}
	return out, nil
}

func parseEvent(s string) (Event, error) {
	bad := func() (Event, error) {
		return Event{}, fmt.Errorf("fault: malformed event %q (want kind@node[start:end]xfactor)", s)
	}
	at := strings.IndexByte(s, '@')
	lb := strings.IndexByte(s, '[')
	rb := strings.IndexByte(s, ']')
	if at < 0 || lb < at || rb < lb {
		return bad()
	}
	ev := Event{Kind: Kind(s[:at])}
	node, err := strconv.Atoi(s[at+1 : lb])
	if err != nil {
		return bad()
	}
	ev.Node = node
	window := s[lb+1 : rb]
	if c := strings.IndexByte(window, ':'); c >= 0 {
		if ev.End, err = strconv.ParseFloat(window[c+1:], 64); err != nil {
			return bad()
		}
		window = window[:c]
	}
	if ev.Start, err = strconv.ParseFloat(window, 64); err != nil {
		return bad()
	}
	if rest := s[rb+1:]; rest != "" {
		if rest[0] != 'x' {
			return bad()
		}
		if ev.Factor, err = strconv.ParseFloat(rest[1:], 64); err != nil {
			return bad()
		}
	}
	return ev, nil
}

// Validate checks kinds, fractions and factors. Node indices are checked
// against the deployment size at injection time (Inject), since one
// scenario expands into cells of different node counts.
func (s Schedule) Validate() error {
	if len(s) == 0 {
		return fmt.Errorf("fault: empty schedule")
	}
	for i, ev := range s {
		switch ev.Kind {
		case KillNode, RestartNode, SlowNode, ReplicaLag, CompactionStorm:
		default:
			return fmt.Errorf("fault: event %d has unknown kind %q", i, ev.Kind)
		}
		if ev.Node < 0 {
			return fmt.Errorf("fault: event %d targets negative node %d", i, ev.Node)
		}
		if ev.Start < 0 || ev.Start > 1 || ev.End < 0 || ev.End > 1 {
			return fmt.Errorf("fault: event %d window [%g:%g] outside [0,1]", i, ev.Start, ev.End)
		}
		if ev.Factor < 0 {
			return fmt.Errorf("fault: event %d has negative factor %g", i, ev.Factor)
		}
	}
	return nil
}

// Target is the degraded-mode contract a store implements to accept kill
// and restart faults. Implementations route requests for a down node to
// store.ErrUnavailable (or fail over to replicas), and pay a modeled
// WAL/commitlog/snapshot recovery replay inside RestartNode before the
// node serves again.
type Target interface {
	// KillNode takes node i down immediately: its buffered log tail is
	// lost, its background processes stop, and requests it must serve
	// fail until restart.
	KillNode(i int)
	// RestartNode brings node i back, paying recovery replay in p's
	// virtual time before the node is marked up.
	RestartNode(p *sim.Proc, i int)
}

// ReplicaLagger is optionally implemented by stores with asynchronous
// replication (cassandra) to accept replica-lag faults.
type ReplicaLagger interface {
	// SetReplicaLag adds extra delay to async replica application
	// targeting node i (zero restores normal behavior).
	SetReplicaLag(i int, extra sim.Time)
}

// Inject validates sched against the deployment and schedules every fault
// transition on e. total is the run length (warmup + measure) that the
// events' fractional windows resolve against; resolution truncates to the
// engine's nanosecond grid, so equal fractions always collide identically.
// The store st must implement Target for kill/restart events and
// ReplicaLagger for replica-lag events; slow-node and compaction-storm act
// on the cluster nodes directly.
func Inject(e *sim.Engine, nodes []*cluster.Node, st any, sched Schedule, total sim.Time) error {
	if err := sched.Validate(); err != nil {
		return err
	}
	for i, ev := range sched {
		if ev.Node >= len(nodes) {
			return fmt.Errorf("fault: event %d targets node %d of a %d-node deployment", i, ev.Node, len(nodes))
		}
		switch ev.Kind {
		case KillNode, RestartNode:
			if _, ok := st.(Target); !ok {
				return fmt.Errorf("fault: store does not support node kill/restart")
			}
		case ReplicaLag:
			if _, ok := st.(ReplicaLagger); !ok {
				return fmt.Errorf("fault: store has no asynchronous replication to lag")
			}
		}
	}
	now := e.Now()
	for i, ev := range sched {
		ev := ev
		// start/end are delays relative to injection time (the run start).
		start := sim.Time(ev.Start * float64(total))
		end := total
		if ev.End > ev.Start {
			end = sim.Time(ev.End * float64(total))
		}
		name := fmt.Sprintf("fault-%d-%s", i, ev.Kind)
		switch ev.Kind {
		case KillNode:
			t := st.(Target)
			e.GoAt(start, name, func(p *sim.Proc) { t.KillNode(ev.Node) })
			if ev.End > ev.Start {
				e.GoAt(end, name+"-restart", func(p *sim.Proc) { t.RestartNode(p, ev.Node) })
			}
		case RestartNode:
			t := st.(Target)
			e.GoAt(start, name, func(p *sim.Proc) { t.RestartNode(p, ev.Node) })
		case SlowNode:
			factor := ev.Factor
			if factor == 0 {
				factor = defaultSlowFactor
			}
			n := nodes[ev.Node]
			e.GoAt(start, name, func(p *sim.Proc) { n.SetSlowFactor(factor) })
			e.GoAt(end, name+"-end", func(p *sim.Proc) { n.SetSlowFactor(1) })
		case ReplicaLag:
			lagMS := ev.Factor
			if lagMS == 0 {
				lagMS = defaultLagMillis
			}
			lag := sim.Time(lagMS * float64(sim.Millisecond))
			rl := st.(ReplicaLagger)
			e.GoAt(start, name, func(p *sim.Proc) { rl.SetReplicaLag(ev.Node, lag) })
			e.GoAt(end, name+"-end", func(p *sim.Proc) { rl.SetReplicaLag(ev.Node, 0) })
		case CompactionStorm:
			flows := int(ev.Factor)
			if flows <= 0 {
				flows = defaultStormFlows
			}
			n := nodes[ev.Node]
			endAt := now + end
			for f := 0; f < flows; f++ {
				e.GoAt(start, fmt.Sprintf("%s-flow%d", name, f), func(p *sim.Proc) {
					// A compaction stream: large sequential reads and
					// rewrites hogging the spindles until the window
					// closes. No durable bytes are added — the storm
					// models rewrite amplification, not data growth.
					for p.Now() < endAt {
						n.DiskRead(p, stormChunk, false)
						n.DiskWrite(p, stormChunk, false)
						p.Sleep(stormPause)
					}
				})
			}
		}
	}
	return nil
}
