// Package lsm implements a log-structured merge tree over the simulated
// cluster: commit log + memtable + SSTables with Bloom filters and
// size-tiered compaction. It is the storage engine of the Cassandra and
// HBase models. Reads consult the memtable then SSTables newest-first,
// paying a random disk I/O per probed table that misses the page cache;
// flushes and compactions run as background processes that contend for the
// node's disks and therefore perturb foreground latency exactly when the
// paper's systems did.
package lsm

import (
	"sort"

	"repro/internal/cluster"
	"repro/internal/memtable"
	"repro/internal/sim"
	"repro/internal/sstable"
	"repro/internal/wal"
)

// BlockIO abstracts where SSTable blocks live. The default reads and writes
// the owning node's local disks; HBase substitutes a DFS-backed
// implementation that adds DataNode overhead.
type BlockIO interface {
	// ReadBlock pays for reading bytes at the given randomness.
	ReadBlock(p *sim.Proc, bytes int64, random bool)
	// WriteRun pays for writing a sequential run of bytes.
	WriteRun(p *sim.Proc, bytes int64)
}

// nodeIO is the default BlockIO: the node's own disks.
type nodeIO struct{ node *cluster.Node }

func (io nodeIO) ReadBlock(p *sim.Proc, bytes int64, random bool) {
	io.node.DiskRead(p, bytes, random)
}
func (io nodeIO) WriteRun(p *sim.Proc, bytes int64) {
	io.node.DiskWrite(p, bytes, false)
}

// Config parameterizes a tree.
type Config struct {
	Node       *cluster.Node
	Seed       int64
	FlushBytes int64            // memtable payload size that triggers a flush
	Overhead   sstable.Overhead // on-disk format cost
	BloomFPP   float64
	CompactMin int      // size-tiered: tables per tier before compacting
	WALWindow  sim.Time // group commit window
	WALSync    bool     // writers wait for group commit if true
	CacheBytes int64    // page cache available to this tree's data
	BlockBytes int64    // I/O granularity for point reads
	IO         BlockIO  // block storage; nil means the node's local disks
}

func (c *Config) defaults() {
	if c.FlushBytes == 0 {
		c.FlushBytes = 32 << 20
	}
	if c.BloomFPP == 0 {
		c.BloomFPP = 0.01
	}
	if c.CompactMin == 0 {
		c.CompactMin = 4
	}
	if c.WALWindow == 0 {
		c.WALWindow = 10 * sim.Millisecond
	}
	if c.BlockBytes == 0 {
		c.BlockBytes = 64 << 10
	}
	if c.IO == nil {
		c.IO = nodeIO{node: c.Node}
	}
}

// Tree is one node's LSM engine.
type Tree struct {
	cfg    Config
	mem    *memtable.Memtable
	tables []*sstable.Table // all generations, any order
	log    *wal.Log
	gen    int

	flushing   bool
	compacting bool

	tableBytes int64 // sum of SSTable DiskBytes
	// read-path statistics
	probes      int64
	bloomSkips  int64
	diskReads   int64
	memHits     int64
	compactions int64
}

// New creates an empty tree.
func New(cfg Config) *Tree {
	cfg.defaults()
	return &Tree{
		cfg: cfg,
		mem: memtable.New(cfg.Seed),
		log: wal.New(cfg.Node, cfg.WALWindow),
	}
}

func payloadBytes(key string, fields [][]byte) int64 {
	b := int64(len(key))
	for _, f := range fields {
		b += int64(len(f))
	}
	return b
}

// Put appends to the commit log and inserts into the memtable, triggering a
// background flush when the memtable is full.
func (t *Tree) Put(p *sim.Proc, key string, fields [][]byte) {
	t.log.Append(p, payloadBytes(key, fields), t.cfg.WALSync)
	t.mem.Put(key, fields)
	t.maybeFlush(p.Engine(), false)
}

// PutDeferred inserts without charging foreground I/O time: the caller has
// already paid for the batched transfer (HBase's client write buffer). WAL
// bytes are accounted and background flush/compaction still run with full
// timing, so heavy deferred writes still generate the disk load that slows
// concurrent reads.
func (t *Tree) PutDeferred(e *sim.Engine, key string, fields [][]byte) {
	t.log.AppendDirect(payloadBytes(key, fields))
	t.mem.Put(key, fields)
	t.maybeFlush(e, false)
}

// missProb returns the probability that an SSTable read misses the page
// cache, from the ratio of cache to on-disk data.
func (t *Tree) missProb() float64 {
	if t.tableBytes <= 0 || t.cfg.CacheBytes >= t.tableBytes {
		return 0
	}
	return 1 - float64(t.cfg.CacheBytes)/float64(t.tableBytes)
}

// chargeTableRead pays for one table probe's I/O if the block is not cached.
func (t *Tree) chargeTableRead(p *sim.Proc) {
	if miss := t.missProb(); miss > 0 && p.Rand().Float64() < miss {
		t.diskReads++
		t.cfg.IO.ReadBlock(p, t.cfg.BlockBytes, true)
	}
}

// Get reads key, probing memtable then tables newest-first. The table list
// is snapshotted up front: disk charges park the process, and a concurrent
// compaction may swap t.tables meanwhile; tables themselves are immutable,
// so reading the snapshot stays correct.
func (t *Tree) Get(p *sim.Proc, key string) ([][]byte, bool) {
	if v, ok := t.mem.Get(key); ok {
		t.memHits++
		return v, true
	}
	snapshot := append([]*sstable.Table(nil), t.tables...)
	var best *sstable.Table
	for _, tab := range snapshot {
		if best != nil && tab.Gen < best.Gen {
			continue
		}
		if !tab.MayContain(key) {
			t.bloomSkips++
			continue
		}
		t.probes++
		t.chargeTableRead(p)
		if _, ok := tab.Get(key); ok {
			if best == nil || tab.Gen > best.Gen {
				best = tab
			}
		}
	}
	if best != nil {
		v, _ := best.Get(key)
		return v, true
	}
	return nil, false
}

// Scan returns up to count entries with keys >= start, merged across the
// memtable and all tables (newest generation wins per key).
func (t *Tree) Scan(p *sim.Proc, start string, count int) []memtable.Entry {
	type cand struct {
		fields [][]byte
		gen    int
	}
	merged := map[string]cand{}
	consider := func(key string, fields [][]byte, gen int) {
		if c, ok := merged[key]; !ok || gen > c.gen {
			merged[key] = cand{fields, gen}
		}
	}
	for _, e := range t.mem.Scan(start, count) {
		consider(e.Key, e.Fields, 1<<30)
	}
	// Snapshot the table list: disk charges park the process and compaction
	// may swap t.tables underneath (tables themselves are immutable).
	snapshot := append([]*sstable.Table(nil), t.tables...)
	for _, tab := range snapshot {
		// One positioning I/O per table touched plus sequential transfer.
		t.chargeTableRead(p)
		for _, e := range tab.Scan(start, count) {
			consider(e.Key, e.Fields, tab.Gen)
		}
	}
	keys := make([]string, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if len(keys) > count {
		keys = keys[:count]
	}
	out := make([]memtable.Entry, len(keys))
	for i, k := range keys {
		out[i] = memtable.Entry{Key: k, Fields: merged[k].fields}
	}
	return out
}

// maybeFlush swaps the memtable and writes it out in the background.
func (t *Tree) maybeFlush(e *sim.Engine, direct bool) {
	if t.mem.Bytes() < t.cfg.FlushBytes {
		return
	}
	if direct {
		t.flushNow(nil)
		return
	}
	if t.flushing {
		return
	}
	t.flushing = true
	full := t.mem
	t.mem = memtable.New(t.cfg.Seed + int64(t.gen) + 1)
	e.Go("lsm-flush", func(p *sim.Proc) {
		t.gen++
		tab := sstable.Build(t.gen, full.All(), t.cfg.Overhead, t.cfg.BloomFPP)
		t.cfg.IO.WriteRun(p, tab.DiskBytes)
		t.installTable(tab, full.Bytes())
		t.flushing = false
		t.maybeCompact(p.Engine(), false)
	})
}

// flushNow converts the current memtable to a table without timing (loader
// path).
func (t *Tree) flushNow(_ *sim.Proc) {
	if t.mem.Len() == 0 {
		return
	}
	t.gen++
	tab := sstable.Build(t.gen, t.mem.All(), t.cfg.Overhead, t.cfg.BloomFPP)
	t.installTable(tab, t.mem.Bytes())
	t.mem = memtable.New(t.cfg.Seed + int64(t.gen) + 1)
	t.maybeCompactDirect()
}

func (t *Tree) installTable(tab *sstable.Table, walPayload int64) {
	t.tables = append(t.tables, tab)
	t.tableBytes += tab.DiskBytes
	t.cfg.Node.AddDiskUsage(tab.DiskBytes)
	t.log.Truncate(walPayload)
}

// tier buckets a table size for size-tiered compaction.
func tier(bytes int64) int {
	t := 0
	for bytes > 4<<20 {
		bytes >>= 2
		t++
	}
	return t
}

// pickCompaction returns the indices of tables in the fullest tier if it has
// at least CompactMin members.
func (t *Tree) pickCompaction() []int {
	byTier := map[int][]int{}
	for i, tab := range t.tables {
		tr := tier(tab.DiskBytes)
		byTier[tr] = append(byTier[tr], i)
	}
	for _, idxs := range byTier {
		if len(idxs) >= t.cfg.CompactMin {
			return idxs
		}
	}
	return nil
}

// maybeCompact runs one size-tiered compaction in the background.
func (t *Tree) maybeCompact(e *sim.Engine, _ bool) {
	if t.compacting {
		return
	}
	idxs := t.pickCompaction()
	if idxs == nil {
		return
	}
	t.compacting = true
	victims := make([]*sstable.Table, len(idxs))
	var inBytes int64
	for i, idx := range idxs {
		victims[i] = t.tables[idx]
		inBytes += t.tables[idx].DiskBytes
	}
	e.Go("lsm-compact", func(p *sim.Proc) {
		t.cfg.IO.ReadBlock(p, inBytes, false)
		merged := sstable.Merge(victims, t.cfg.Overhead, t.cfg.BloomFPP)
		t.cfg.IO.WriteRun(p, merged.DiskBytes)
		t.replaceTables(victims, merged)
		t.compactions++
		t.compacting = false
		t.maybeCompact(p.Engine(), false)
	})
}

// maybeCompactDirect compacts synchronously without timing (loader path).
func (t *Tree) maybeCompactDirect() {
	for {
		idxs := t.pickCompaction()
		if idxs == nil {
			return
		}
		victims := make([]*sstable.Table, len(idxs))
		for i, idx := range idxs {
			victims[i] = t.tables[idx]
		}
		merged := sstable.Merge(victims, t.cfg.Overhead, t.cfg.BloomFPP)
		t.replaceTables(victims, merged)
		t.compactions++
	}
}

// replaceTables swaps victims for merged, updating accounting.
func (t *Tree) replaceTables(victims []*sstable.Table, merged *sstable.Table) {
	dead := map[*sstable.Table]bool{}
	var deadBytes int64
	for _, v := range victims {
		dead[v] = true
		deadBytes += v.DiskBytes
	}
	kept := t.tables[:0]
	for _, tab := range t.tables {
		if !dead[tab] {
			kept = append(kept, tab)
		}
	}
	t.tables = append(kept, merged)
	t.tableBytes += merged.DiskBytes - deadBytes
	t.cfg.Node.AddDiskUsage(merged.DiskBytes - deadBytes)
}

// LoadDirect inserts a record without simulation timing, for bulk loading
// before a measured run. Disk usage accounting still happens.
func (t *Tree) LoadDirect(key string, fields [][]byte) {
	t.log.AppendDirect(payloadBytes(key, fields))
	t.mem.Put(key, fields)
	t.maybeFlush(nil, true)
}

// TableCount returns the number of live SSTables.
func (t *Tree) TableCount() int { return len(t.tables) }

// DiskBytes returns the on-disk footprint of live tables.
func (t *Tree) DiskBytes() int64 { return t.tableBytes }

// MemBytes returns the current memtable payload size.
func (t *Tree) MemBytes() int64 { return t.mem.Bytes() }

// Compactions returns how many compactions have completed.
func (t *Tree) Compactions() int64 { return t.compactions }

// Stats returns read-path counters: table probes, Bloom-filter skips,
// actual disk reads, and memtable hits.
func (t *Tree) Stats() (probes, bloomSkips, diskReads, memHits int64) {
	return t.probes, t.bloomSkips, t.diskReads, t.memHits
}

// Log exposes the commit log (for stores that need its accounting).
func (t *Tree) Log() *wal.Log { return t.log }
