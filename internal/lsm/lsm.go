// Package lsm implements a log-structured merge tree over the simulated
// cluster: commit log + memtable + SSTables with Bloom filters and
// size-tiered compaction. It is the storage engine of the Cassandra and
// HBase models. Reads consult the memtable then SSTables newest-first,
// paying a random disk I/O per probed table that misses the page cache;
// flushes and compactions run as background processes that contend for the
// node's disks and therefore perturb foreground latency exactly when the
// paper's systems did.
package lsm

import (
	"repro/internal/cluster"
	"repro/internal/memtable"
	"repro/internal/sim"
	"repro/internal/slab"
	"repro/internal/sstable"
	"repro/internal/wal"
)

// BlockIO abstracts where SSTable blocks live. The default reads and writes
// the owning node's local disks; HBase substitutes a DFS-backed
// implementation that adds DataNode overhead.
type BlockIO interface {
	// ReadBlock pays for reading bytes at the given randomness.
	ReadBlock(p *sim.Proc, bytes int64, random bool)
	// WriteRun pays for writing a sequential run of bytes.
	WriteRun(p *sim.Proc, bytes int64)
}

// nodeIO is the default BlockIO: the node's own disks.
type nodeIO struct{ node *cluster.Node }

func (io nodeIO) ReadBlock(p *sim.Proc, bytes int64, random bool) {
	io.node.DiskRead(p, bytes, random)
}
func (io nodeIO) WriteRun(p *sim.Proc, bytes int64) {
	io.node.DiskWrite(p, bytes, false)
}

// Config parameterizes a tree.
type Config struct {
	Node       *cluster.Node
	Seed       int64
	FlushBytes int64            // memtable payload size that triggers a flush
	Overhead   sstable.Overhead // on-disk format cost
	BloomFPP   float64
	CompactMin int      // size-tiered: tables per tier before compacting
	WALWindow  sim.Time // group commit window
	WALSync    bool     // writers wait for group commit if true
	CacheBytes int64    // page cache available to this tree's data
	BlockBytes int64    // I/O granularity for point reads
	IO         BlockIO  // block storage; nil means the node's local disks
}

func (c *Config) defaults() {
	if c.FlushBytes == 0 {
		c.FlushBytes = 32 << 20
	}
	if c.BloomFPP == 0 {
		c.BloomFPP = 0.01
	}
	if c.CompactMin == 0 {
		c.CompactMin = 4
	}
	if c.WALWindow == 0 {
		c.WALWindow = 10 * sim.Millisecond
	}
	if c.BlockBytes == 0 {
		c.BlockBytes = 64 << 10
	}
	if c.IO == nil {
		c.IO = nodeIO{node: c.Node}
	}
}

// Tree is one node's LSM engine.
type Tree struct {
	cfg Config
	mem *memtable.Memtable
	// tables is an immutable, copy-on-write snapshot sorted by generation
	// descending (newest first). Flush and compaction publish a fresh slice
	// instead of mutating in place, so readers that park on simulated disk
	// I/O mid-read keep a consistent view by holding the slice header — no
	// per-read defensive copy needed.
	tables []*sstable.Table
	log    *wal.Log
	gen    int

	flushing   bool
	compacting bool

	tableBytes int64 // sum of SSTable DiskBytes
	// read-path statistics
	probes      int64
	bloomSkips  int64
	diskReads   int64
	memHits     int64
	compactions int64
	// scan-path statistics: tables positioned (paid an I/O charge) vs
	// pruned by key range without any I/O.
	scanPositioned int64
	scanPruned     int64
}

// New creates an empty tree.
func New(cfg Config) *Tree {
	cfg.defaults()
	return &Tree{
		cfg: cfg,
		mem: memtable.New(cfg.Seed),
		log: wal.New(cfg.Node, cfg.WALWindow),
	}
}

func payloadBytes(key string, fields [][]byte) int64 {
	b := int64(len(key))
	for _, f := range fields {
		b += int64(len(f))
	}
	return b
}

// Put appends to the commit log and inserts into the memtable, triggering a
// background flush when the memtable is full.
func (t *Tree) Put(p *sim.Proc, key string, fields [][]byte) {
	t.log.Append(p, payloadBytes(key, fields), t.cfg.WALSync)
	t.mem.Put(key, fields)
	t.maybeFlush(p.Engine(), false)
}

// PutDeferred inserts without charging foreground I/O time: the caller has
// already paid for the batched transfer (HBase's client write buffer). WAL
// bytes are accounted and background flush/compaction still run with full
// timing, so heavy deferred writes still generate the disk load that slows
// concurrent reads.
func (t *Tree) PutDeferred(e *sim.Engine, key string, fields [][]byte) {
	t.log.AppendDirect(payloadBytes(key, fields))
	t.mem.Put(key, fields)
	t.maybeFlush(e, false)
}

// missProb returns the probability that an SSTable read misses the page
// cache, from the ratio of cache to on-disk data.
func (t *Tree) missProb() float64 {
	if t.tableBytes <= 0 || t.cfg.CacheBytes >= t.tableBytes {
		return 0
	}
	return 1 - float64(t.cfg.CacheBytes)/float64(t.tableBytes)
}

// chargeTableRead pays for one table probe's I/O if the block is not cached.
func (t *Tree) chargeTableRead(p *sim.Proc) {
	if miss := t.missProb(); miss > 0 && p.Rand().Float64() < miss {
		t.diskReads++
		t.cfg.IO.ReadBlock(p, t.cfg.BlockBytes, true)
	}
}

// Get reads key, probing memtable then tables newest-first. t.tables is an
// immutable copy-on-write snapshot sorted newest-generation-first, so
// holding the slice header across disk parks is safe (a concurrent
// compaction publishes a new slice, never mutates this one), and the first
// confirmed hit cannot be shadowed by any table probed later — older
// generations are skipped entirely instead of probed and discarded.
func (t *Tree) Get(p *sim.Proc, key string) (slab.FieldsView, bool) {
	if v, ok := t.mem.Get(key); ok {
		t.memHits++
		return v, true
	}
	for _, tab := range t.tables {
		if !tab.MayContain(key) {
			t.bloomSkips++
			continue
		}
		t.probes++
		t.chargeTableRead(p)
		if v, ok := tab.Get(key); ok {
			return v, true
		}
	}
	return slab.FieldsView{}, false
}

// memtableGen orders the memtable above every SSTable generation when
// merging scan sources.
const memtableGen = 1 << 30

// scanSource is one cursor feeding the k-way merge in Scan: the memtable's
// skip-list iterator or an SSTable iterator.
type scanSource struct {
	gen   int
	mem   memtable.Iterator // skip-list cursor; only valid when isMem
	tab   sstable.Iterator  // table cursor; only valid when !isMem
	isMem bool
}

func (s *scanSource) key() string {
	if s.isMem {
		return s.mem.Entry().Key
	}
	return s.tab.Entry().Key
}

func (s *scanSource) entry() memtable.Entry {
	if s.isMem {
		return s.mem.Entry()
	}
	return s.tab.Entry()
}

// advance moves to the next entry and reports whether one exists.
func (s *scanSource) advance() bool {
	if s.isMem {
		s.mem.Next()
		return s.mem.Valid()
	}
	s.tab.Next()
	return s.tab.Valid()
}

// mergeHeap is a binary min-heap of scan sources ordered by (current key,
// generation descending): the top is always the next output entry and,
// among duplicate keys, the newest version surfaces first.
type mergeHeap []scanSource

func (h mergeHeap) before(a, b int) bool {
	ka, kb := h[a].key(), h[b].key()
	if ka != kb {
		return ka < kb
	}
	return h[a].gen > h[b].gen
}

func (h mergeHeap) down(i int) {
	for {
		min := i
		if l := 2*i + 1; l < len(h) && h.before(l, min) {
			min = l
		}
		if r := 2*i + 2; r < len(h) && h.before(r, min) {
			min = r
		}
		if min == i {
			return
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}

// Cursor streams a scan's merged entries lazily: the k-way heap merge over
// the memtable and surviving sstables advances one entry per Next. All
// simulated charges (table positioning I/O and its cache-miss RNG draws)
// were paid by ScanCursor before the cursor existed, so consuming it is
// host-side only — Next never parks and never draws randomness.
type Cursor struct {
	h   mergeHeap
	cur memtable.Entry
	ok  bool
}

// Next advances to the next distinct key (newest generation wins) and
// reports whether one exists.
func (c *Cursor) Next() bool {
	for len(c.h) > 0 {
		e := c.h[0].entry()
		if c.h[0].advance() {
			c.h.down(0)
		} else {
			c.h[0] = c.h[len(c.h)-1]
			c.h = c.h[:len(c.h)-1]
			c.h.down(0)
		}
		// First occurrence of a key comes from the newest generation
		// (heap order); shadowed older versions are skipped here.
		if !c.ok || c.cur.Key != e.Key {
			c.cur = e
			c.ok = true
			return true
		}
	}
	return false
}

// Entry returns the current entry; valid after Next reports true, until the
// next call to Next.
func (c *Cursor) Entry() memtable.Entry { return c.cur }

// ScanCursor opens a streaming scan at start, charging all positioning I/O
// up front. The historical materialized Scan is now a drain of this cursor;
// the two charge the identical virtual-time (and RNG) sequence because
// every charge happens here, before either returns.
func (t *Tree) ScanCursor(p *sim.Proc, start string) *Cursor {
	// Snapshot both layers before parking on disk charges: t.tables is COW
	// (the slice header is a consistent view) and t.mem must be captured
	// with it — a flush during a park swaps t.mem and installs the flushed
	// table into a slice this snapshot doesn't include, so reading the
	// post-park memtable would silently drop those entries. Once swapped
	// out the captured memtable is frozen; until then writes landing during
	// the parks remain visible, so like the modeled systems a scan is not
	// snapshot-isolated against concurrent writers — it sees the state as
	// of its last positioning I/O.
	tabs := t.tables
	mem := t.mem
	// Prune tables whose key range cannot intersect the scan: the scan
	// covers [start, +inf) (it is bounded by count, not by an end key), so
	// only tables with maxKey < start are provably disjoint — they skip
	// the positioning charge entirely, the mirror of Get's range check in
	// MayContain. Fewer charges also means fewer cache-miss RNG draws, so
	// landing this shifted scan-heavy (RS/RSW) cell results once.
	live := make([]*sstable.Table, 0, len(tabs))
	for _, tab := range tabs {
		if _, maxKey := tab.KeyRange(); tab.Len() == 0 || maxKey < start {
			t.scanPruned++
			continue
		}
		t.scanPositioned++
		// One positioning I/O per table touched plus sequential transfer.
		t.chargeTableRead(p)
		live = append(live, tab)
	}
	// The merge never parks and simulated processes run one at a time, so
	// the sources cannot change while the cursor is consumed.
	h := make(mergeHeap, 0, len(live)+1)
	if it := mem.SeekIter(start); it.Valid() {
		h = append(h, scanSource{gen: memtableGen, mem: it, isMem: true})
	}
	for _, tab := range live {
		if it := tab.SeekIter(start); it.Valid() {
			h = append(h, scanSource{gen: tab.Gen, tab: it})
		}
	}
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
	return &Cursor{h: h}
}

// Scan returns up to count entries with keys >= start, merged across the
// memtable and all tables (newest generation wins per key): a drained
// ScanCursor, kept for callers that want the materialized form.
func (t *Tree) Scan(p *sim.Proc, start string, count int) []memtable.Entry {
	c := t.ScanCursor(p, start)
	out := make([]memtable.Entry, 0, count)
	for len(out) < count && c.Next() {
		out = append(out, c.Entry())
	}
	return out
}

// maybeFlush swaps the memtable and writes it out in the background.
func (t *Tree) maybeFlush(e *sim.Engine, direct bool) {
	if t.mem.Bytes() < t.cfg.FlushBytes {
		return
	}
	if direct {
		t.flushNow(nil)
		return
	}
	if t.flushing {
		return
	}
	t.flushing = true
	full := t.mem
	t.mem = memtable.New(t.cfg.Seed + int64(t.gen) + 1)
	e.Go("lsm-flush", func(p *sim.Proc) {
		t.gen++
		// memtable.All is already key-ordered and duplicate-free, so the
		// flush skips Build's copy+sort (BuildSorted is dedup-only).
		tab := sstable.BuildSorted(t.gen, full.All(), t.cfg.Overhead, t.cfg.BloomFPP)
		t.cfg.IO.WriteRun(p, tab.DiskBytes)
		t.installTable(tab, full.Bytes())
		t.flushing = false
		t.maybeCompact(p.Engine(), false)
	})
}

// flushNow converts the current memtable to a table without timing (loader
// path).
func (t *Tree) flushNow(_ *sim.Proc) {
	if t.mem.Len() == 0 {
		return
	}
	t.gen++
	mem := t.mem
	t.mem = memtable.New(t.cfg.Seed + int64(t.gen) + 1)
	tab := sstable.FromMemtable(t.gen, mem, t.cfg.Overhead, t.cfg.BloomFPP)
	t.installTable(tab, mem.Bytes())
	t.maybeCompactDirect()
}

// installTable publishes a freshly flushed table. Flushes are serialized and
// bump t.gen, so tab is always the newest generation: prepend it to a new
// slice (copy-on-write — readers may hold the old one across disk parks).
func (t *Tree) installTable(tab *sstable.Table, walPayload int64) {
	tables := make([]*sstable.Table, 0, len(t.tables)+1)
	tables = append(tables, tab)
	tables = append(tables, t.tables...)
	t.tables = tables
	t.tableBytes += tab.DiskBytes
	t.cfg.Node.AddDiskUsage(tab.DiskBytes)
	t.log.Truncate(walPayload)
}

// tier buckets a table size for size-tiered compaction.
func tier(bytes int64) int {
	t := 0
	for bytes > 4<<20 {
		bytes >>= 2
		t++
	}
	return t
}

// pickCompaction returns the indices of tables in the fullest tier with at
// least CompactMin members (lowest tier number on ties). The choice must
// not depend on map iteration order: same-seed runs have to pick the same
// victims or table layouts — and with them every downstream RNG draw —
// diverge between runs.
func (t *Tree) pickCompaction() []int {
	byTier := map[int][]int{}
	for i, tab := range t.tables {
		tr := tier(tab.DiskBytes)
		byTier[tr] = append(byTier[tr], i)
	}
	best := -1
	for tr, idxs := range byTier {
		if len(idxs) < t.cfg.CompactMin {
			continue
		}
		if best < 0 || len(idxs) > len(byTier[best]) ||
			(len(idxs) == len(byTier[best]) && tr < best) {
			best = tr
		}
	}
	if best < 0 {
		return nil
	}
	return byTier[best]
}

// maybeCompact runs one size-tiered compaction in the background.
func (t *Tree) maybeCompact(e *sim.Engine, _ bool) {
	if t.compacting {
		return
	}
	idxs := t.pickCompaction()
	if idxs == nil {
		return
	}
	t.compacting = true
	victims := make([]*sstable.Table, len(idxs))
	var inBytes int64
	for i, idx := range idxs {
		victims[i] = t.tables[idx]
		inBytes += t.tables[idx].DiskBytes
	}
	e.Go("lsm-compact", func(p *sim.Proc) {
		t.cfg.IO.ReadBlock(p, inBytes, false)
		merged := sstable.Merge(victims, t.cfg.Overhead, t.cfg.BloomFPP)
		t.cfg.IO.WriteRun(p, merged.DiskBytes)
		t.replaceTables(victims, merged)
		t.compactions++
		t.compacting = false
		t.maybeCompact(p.Engine(), false)
	})
}

// maybeCompactDirect compacts synchronously without timing (loader path).
func (t *Tree) maybeCompactDirect() {
	for {
		idxs := t.pickCompaction()
		if idxs == nil {
			return
		}
		victims := make([]*sstable.Table, len(idxs))
		for i, idx := range idxs {
			victims[i] = t.tables[idx]
		}
		merged := sstable.Merge(victims, t.cfg.Overhead, t.cfg.BloomFPP)
		t.replaceTables(victims, merged)
		t.compactions++
	}
}

// replaceTables swaps victims for merged, updating accounting. The new list
// is built copy-on-write (readers may hold the old slice across disk parks)
// and keeps the newest-generation-first order, inserting merged at its
// sorted position.
func (t *Tree) replaceTables(victims []*sstable.Table, merged *sstable.Table) {
	dead := map[*sstable.Table]bool{}
	var deadBytes int64
	for _, v := range victims {
		dead[v] = true
		deadBytes += v.DiskBytes
	}
	kept := make([]*sstable.Table, 0, len(t.tables)-len(victims)+1)
	inserted := false
	for _, tab := range t.tables {
		if dead[tab] {
			continue
		}
		if !inserted && merged.Gen > tab.Gen {
			kept = append(kept, merged)
			inserted = true
		}
		kept = append(kept, tab)
	}
	if !inserted {
		kept = append(kept, merged)
	}
	t.tables = kept
	t.tableBytes += merged.DiskBytes - deadBytes
	t.cfg.Node.AddDiskUsage(merged.DiskBytes - deadBytes)
}

// LoadDirect inserts a record without simulation timing, for bulk loading
// before a measured run. Disk usage accounting still happens.
func (t *Tree) LoadDirect(key string, fields [][]byte) {
	t.log.AppendDirect(payloadBytes(key, fields))
	t.mem.Put(key, fields)
	t.maybeFlush(nil, true)
}

// TableCount returns the number of live SSTables.
func (t *Tree) TableCount() int { return len(t.tables) }

// DiskBytes returns the on-disk footprint of live tables.
func (t *Tree) DiskBytes() int64 { return t.tableBytes }

// MemBytes returns the current memtable payload size.
func (t *Tree) MemBytes() int64 { return t.mem.Bytes() }

// SlabBytes returns the retained heap footprint of the tree's record
// state: the memtable's arenas plus every live table's payload slab and
// entry metadata (apmbench -memstats).
func (t *Tree) SlabBytes() int64 {
	b := t.mem.SlabBytes()
	for _, tab := range t.tables {
		b += tab.SlabBytes()
	}
	return b
}

// Compactions returns how many compactions have completed.
func (t *Tree) Compactions() int64 { return t.compactions }

// Stats returns read-path counters: table probes, Bloom-filter skips,
// actual disk reads, and memtable hits.
func (t *Tree) Stats() (probes, bloomSkips, diskReads, memHits int64) {
	return t.probes, t.bloomSkips, t.diskReads, t.memHits
}

// ScanStats returns scan-path counters: tables that paid a positioning
// charge vs tables pruned because their key range cannot intersect the
// scan. Tests pin the pruning contract with them.
func (t *Tree) ScanStats() (positioned, pruned int64) {
	return t.scanPositioned, t.scanPruned
}

// Log exposes the commit log (for stores that need its accounting).
func (t *Tree) Log() *wal.Log { return t.log }
