package lsm

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/sstable"
)

func newTree(e *sim.Engine, flushBytes int64) *Tree {
	n := cluster.New(e, cluster.ClusterM(1)).Nodes[0]
	return New(Config{
		Node:       n,
		Seed:       1,
		FlushBytes: flushBytes,
		Overhead:   sstable.Overhead{PerEntry: 10, PerCell: 20},
		CacheBytes: 1 << 30, // everything cached: memory-bound behaviour
	})
}

func fields(v string) [][]byte { return [][]byte{[]byte(v)} }

func TestPutGetThroughMemtable(t *testing.T) {
	e := sim.NewEngine(1)
	tr := newTree(e, 1<<20)
	e.Go("w", func(p *sim.Proc) {
		tr.Put(p, "k1", fields("v1"))
		v, ok := tr.Get(p, "k1")
		if !ok || string(v.Field(0)) != "v1" {
			t.Errorf("Get(k1) = %v, %v", v, ok)
		}
		if _, ok := tr.Get(p, "nope"); ok {
			t.Error("found absent key")
		}
	})
	e.Run(0)
}

func TestFlushCreatesSSTableAndServesReads(t *testing.T) {
	e := sim.NewEngine(1)
	tr := newTree(e, 500) // tiny: flush after a few records
	e.Go("w", func(p *sim.Proc) {
		for i := 0; i < 50; i++ {
			tr.Put(p, fmt.Sprintf("key%04d", i), fields("0123456789"))
			p.Sleep(sim.Millisecond)
		}
	})
	e.Run(0)
	if tr.TableCount() == 0 {
		t.Fatal("no SSTable created despite tiny flush threshold")
	}
	// All keys must still be readable after flushes.
	e.Go("r", func(p *sim.Proc) {
		for i := 0; i < 50; i++ {
			if _, ok := tr.Get(p, fmt.Sprintf("key%04d", i)); !ok {
				t.Errorf("key%04d lost after flush", i)
			}
		}
	})
	e.Run(0)
}

func TestNewestValueWinsAcrossTables(t *testing.T) {
	e := sim.NewEngine(1)
	tr := newTree(e, 400)
	e.Go("w", func(p *sim.Proc) {
		tr.Put(p, "hot", fields("old"))
		for i := 0; i < 40; i++ { // force a flush between versions
			tr.Put(p, fmt.Sprintf("fill%04d", i), fields("0123456789"))
			p.Sleep(sim.Millisecond)
		}
		tr.Put(p, "hot", fields("new"))
		for i := 40; i < 80; i++ {
			tr.Put(p, fmt.Sprintf("fill%04d", i), fields("0123456789"))
			p.Sleep(sim.Millisecond)
		}
	})
	e.Run(0)
	e.Go("r", func(p *sim.Proc) {
		v, ok := tr.Get(p, "hot")
		if !ok || string(v.Field(0)) != "new" {
			t.Errorf("Get(hot) = %q, want new", v.Field(0))
		}
	})
	e.Run(0)
}

func TestScanMergesMemtableAndTables(t *testing.T) {
	e := sim.NewEngine(1)
	tr := newTree(e, 400)
	e.Go("w", func(p *sim.Proc) {
		for i := 0; i < 60; i++ {
			tr.Put(p, fmt.Sprintf("k%04d", i), fields(fmt.Sprintf("v%d", i)))
			p.Sleep(sim.Millisecond)
		}
	})
	e.Run(0)
	e.Go("r", func(p *sim.Proc) {
		got := tr.Scan(p, "k0010", 5)
		if len(got) != 5 {
			t.Fatalf("scan returned %d entries, want 5", len(got))
		}
		for i, ent := range got {
			want := fmt.Sprintf("k%04d", 10+i)
			if ent.Key != want {
				t.Errorf("scan[%d] = %s, want %s", i, ent.Key, want)
			}
		}
	})
	e.Run(0)
}

func TestCompactionReducesTableCount(t *testing.T) {
	e := sim.NewEngine(1)
	tr := newTree(e, 300)
	e.Go("w", func(p *sim.Proc) {
		for i := 0; i < 400; i++ {
			tr.Put(p, fmt.Sprintf("k%06d", i), fields("0123456789"))
			p.Sleep(2 * sim.Millisecond)
		}
	})
	e.Run(0)
	if tr.Compactions() == 0 {
		t.Fatalf("no compaction ran despite %d tables", tr.TableCount())
	}
	if tr.TableCount() >= 8 {
		t.Fatalf("table count %d, compaction not keeping up", tr.TableCount())
	}
	// Data integrity after compaction.
	e.Go("r", func(p *sim.Proc) {
		for i := 0; i < 400; i += 37 {
			if _, ok := tr.Get(p, fmt.Sprintf("k%06d", i)); !ok {
				t.Errorf("k%06d lost after compaction", i)
			}
		}
	})
	e.Run(0)
}

func TestLoadDirectNoVirtualTime(t *testing.T) {
	e := sim.NewEngine(1)
	tr := newTree(e, 1<<14)
	for i := 0; i < 5000; i++ {
		tr.LoadDirect(fmt.Sprintf("k%07d", i), fields("0123456789"))
	}
	if e.Now() != 0 {
		t.Fatal("LoadDirect advanced virtual time")
	}
	if tr.DiskBytes() == 0 {
		t.Fatal("LoadDirect produced no on-disk data")
	}
	e.Go("r", func(p *sim.Proc) {
		for i := 0; i < 5000; i += 501 {
			if _, ok := tr.Get(p, fmt.Sprintf("k%07d", i)); !ok {
				t.Errorf("k%07d missing after direct load", i)
			}
		}
	})
	e.Run(0)
}

func TestDiskBytesIncludesFormatOverhead(t *testing.T) {
	e := sim.NewEngine(1)
	tr := newTree(e, 10) // below one record's payload: flush immediately
	// 75-byte records: 25-byte key, 5 x 10-byte fields.
	key := fmt.Sprintf("user%021d", 1)
	fs := make([][]byte, 5)
	for i := range fs {
		fs[i] = []byte("0123456789")
	}
	tr.LoadDirect(key, fs)
	// key 25 + perEntry 10 + 5*(10+20) = 185 > raw 75.
	if tr.DiskBytes() != 185 {
		t.Fatalf("DiskBytes = %d, want 185", tr.DiskBytes())
	}
}

func TestCacheMissChargesDisk(t *testing.T) {
	e := sim.NewEngine(1)
	n := cluster.New(e, cluster.ClusterD(1)).Nodes[0]
	tr := New(Config{
		Node:       n,
		Seed:       1,
		FlushBytes: 1 << 12,
		Overhead:   sstable.Overhead{PerEntry: 10, PerCell: 20},
		CacheBytes: 1, // essentially nothing cached: disk-bound
	})
	for i := 0; i < 2000; i++ {
		tr.LoadDirect(fmt.Sprintf("k%07d", i), fields("0123456789"))
	}
	var elapsed sim.Time
	e.Go("r", func(p *sim.Proc) {
		start := p.Now()
		for i := 0; i < 20; i++ {
			tr.Get(p, fmt.Sprintf("k%07d", i*97))
		}
		elapsed = p.Now() - start
	})
	e.Run(0)
	if elapsed < 20*4*sim.Millisecond {
		t.Fatalf("20 uncached reads took %v, want >= 80ms of seeks", elapsed)
	}
	_, _, diskReads, _ := tr.Stats()
	if diskReads == 0 {
		t.Fatal("no disk reads recorded in disk-bound config")
	}
}

func TestCacheHitAvoidsDisk(t *testing.T) {
	e := sim.NewEngine(1)
	tr := newTree(e, 1<<12) // CacheBytes 1GiB >> data
	for i := 0; i < 2000; i++ {
		tr.LoadDirect(fmt.Sprintf("k%07d", i), fields("0123456789"))
	}
	e.Go("r", func(p *sim.Proc) {
		for i := 0; i < 100; i++ {
			tr.Get(p, fmt.Sprintf("k%07d", i*13))
		}
	})
	e.Run(0)
	_, _, diskReads, _ := tr.Stats()
	if diskReads != 0 {
		t.Fatalf("memory-bound config did %d disk reads, want 0", diskReads)
	}
}

func TestWALTruncatedAfterFlush(t *testing.T) {
	e := sim.NewEngine(1)
	tr := newTree(e, 500)
	for i := 0; i < 100; i++ {
		tr.LoadDirect(fmt.Sprintf("k%05d", i), fields("0123456789"))
	}
	// After flushes, node disk usage should be close to table bytes (WAL
	// segments for flushed data are recycled; only unflushed payload stays).
	nodeUsage := tr.cfg.Node.DiskUsed()
	slack := tr.MemBytes() + 1
	if nodeUsage > tr.DiskBytes()+slack {
		t.Fatalf("node usage %d exceeds tables %d + unflushed %d", nodeUsage, tr.DiskBytes(), slack)
	}
}

// Property: after any sequence of puts (with duplicates), every key returns
// its most recent value, through any mixture of memtable/SSTable placement.
func TestPropertyLastWriteWins(t *testing.T) {
	f := func(ops []uint8) bool {
		e := sim.NewEngine(3)
		tr := newTree(e, 256) // tiny, lots of flushes
		want := map[string]string{}
		ok := true
		e.Go("w", func(p *sim.Proc) {
			for i, op := range ops {
				k := fmt.Sprintf("k%02d", op%32)
				v := fmt.Sprintf("v%d", i)
				tr.Put(p, k, fields(v))
				want[k] = v
				p.Sleep(sim.Millisecond)
			}
			for k, v := range want {
				got, found := tr.Get(p, k)
				if !found || string(got.Field(0)) != v {
					ok = false
				}
			}
		})
		e.Run(0)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Get must stop at the first confirmed hit: tables are kept newest-first,
// so a hit in a newer generation can never be shadowed and older tables
// must not be probed (the seed probed every table and paid simulated disk
// I/O for probes that could never win).
func TestGetStopsAtNewestHit(t *testing.T) {
	e := sim.NewEngine(1)
	n := cluster.New(e, cluster.ClusterM(1)).Nodes[0]
	tr := New(Config{
		Node:       n,
		Seed:       1,
		FlushBytes: 1, // every load flushes: one table per write
		CompactMin: 100,
		Overhead:   sstable.Overhead{PerEntry: 10, PerCell: 20},
		CacheBytes: 1 << 30,
	})
	tr.LoadDirect("hot", fields("old"))
	tr.LoadDirect("hot", fields("new"))
	if tr.TableCount() != 2 {
		t.Fatalf("TableCount = %d, want 2 (one per flushed write)", tr.TableCount())
	}
	e.Go("r", func(p *sim.Proc) {
		// Errorf, not Fatalf: Fatalf must not run off the test goroutine
		// and would deadlock the engine.
		v, ok := tr.Get(p, "hot")
		if !ok || string(v.Field(0)) != "new" {
			t.Errorf("Get(hot) = %q, %v, want new", v.Field(0), ok)
		}
	})
	e.Run(0)
	probes, bloomSkips, _, _ := tr.Stats()
	if probes != 1 {
		t.Fatalf("probes = %d, want 1 (early exit on newest-generation hit)", probes)
	}
	if bloomSkips != 0 {
		t.Fatalf("bloomSkips = %d, want 0 (both tables contain the key)", bloomSkips)
	}
}

func BenchmarkPutThroughMemtable(b *testing.B) {
	e := sim.NewEngine(1)
	tr := newTree(e, 1<<30) // never flush: isolate memtable path
	e.Go("w", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			tr.Put(p, fmt.Sprintf("key%09d", i), fields("0123456789"))
		}
	})
	b.ResetTimer()
	e.Run(0)
}

func BenchmarkGetAcrossTables(b *testing.B) {
	e := sim.NewEngine(1)
	tr := newTree(e, 1<<14)
	for i := 0; i < 50000; i++ {
		tr.LoadDirect(fmt.Sprintf("key%09d", i), fields("0123456789"))
	}
	e.Go("r", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			tr.Get(p, fmt.Sprintf("key%09d", i%50000))
		}
	})
	b.ResetTimer()
	e.Run(0)
}

// TestScanPrunesDisjointTables pins the scan-side table pruning contract:
// a scan covers [start, +inf), so tables whose maxKey sorts below start
// must be skipped without paying a positioning charge, while every other
// table is positioned exactly once. Landing this pruning intentionally
// changed scan-heavy cells' RNG draw counts (fewer cache-miss draws), the
// same called-out treatment Get's early-exit got in PR 1.
func TestScanPrunesDisjointTables(t *testing.T) {
	e := sim.NewEngine(1)
	n := cluster.New(e, cluster.ClusterM(1)).Nodes[0]
	tr := New(Config{
		Node:       n,
		Seed:       1,
		FlushBytes: 300, // ~20 sequential entries per table
		CompactMin: 100, // no compaction: table ranges stay disjoint
		CacheBytes: 1 << 30,
	})
	for i := 0; i < 100; i++ {
		tr.LoadDirect(fmt.Sprintf("k%04d", i), fields("0123456789"))
	}
	if tr.TableCount() < 3 {
		t.Fatalf("want >= 3 disjoint tables, got %d", tr.TableCount())
	}
	const start = "k0070"
	var wantPositioned, wantPruned int64
	for _, tab := range tr.tables {
		if _, maxKey := tab.KeyRange(); maxKey < start {
			wantPruned++
		} else {
			wantPositioned++
		}
	}
	if wantPruned == 0 || wantPositioned == 0 {
		t.Fatalf("layout not prunable: positioned=%d pruned=%d", wantPositioned, wantPruned)
	}
	e.Go("r", func(p *sim.Proc) {
		got := tr.Scan(p, start, 5)
		if len(got) != 5 {
			t.Fatalf("scan returned %d entries, want 5", len(got))
		}
		for i, ent := range got {
			if want := fmt.Sprintf("k%04d", 70+i); ent.Key != want {
				t.Errorf("scan[%d] = %s, want %s (pruning dropped entries)", i, ent.Key, want)
			}
		}
	})
	e.Run(0)
	positioned, pruned := tr.ScanStats()
	if positioned != wantPositioned || pruned != wantPruned {
		t.Errorf("scan stats positioned=%d pruned=%d, want %d/%d",
			positioned, pruned, wantPositioned, wantPruned)
	}
	// A scan from the start of the keyspace positions every table.
	e.Go("r2", func(p *sim.Proc) { tr.Scan(p, "", 5) })
	e.Run(0)
	positioned2, pruned2 := tr.ScanStats()
	if positioned2 != positioned+int64(tr.TableCount()) || pruned2 != pruned {
		t.Errorf("full-range scan stats positioned=%d pruned=%d, want %d/%d",
			positioned2, pruned2, positioned+int64(tr.TableCount()), pruned)
	}
}

// TestTowerHeightsNeverShapeTime pins the determinism contract the
// memtable arena refactor relies on: the memtable's private RNG only
// shapes skip-list tower heights, never simulated time or results. Two
// trees that differ ONLY in memtable seed (different tower shapes through
// every memtable generation) must produce identical virtual-time
// trajectories, disk layouts and read results for the same workload on
// same-seeded engines.
func TestTowerHeightsNeverShapeTime(t *testing.T) {
	run := func(memSeed int64) (sim.Time, int64, int, []sim.Time) {
		e := sim.NewEngine(7)
		n := cluster.New(e, cluster.ClusterM(1)).Nodes[0]
		tr := New(Config{
			Node:       n,
			Seed:       memSeed,
			FlushBytes: 2000, // several flushes and a compaction
			Overhead:   sstable.Overhead{PerEntry: 10, PerCell: 20},
			CacheBytes: 1, // almost everything misses: reads draw engine RNG
			WALSync:    true,
		})
		var marks []sim.Time
		e.Go("w", func(p *sim.Proc) {
			for i := 0; i < 300; i++ {
				key := fmt.Sprintf("key%04d", i*37%300)
				tr.Put(p, key, fields("0123456789"))
				// The Get may miss while a flush is mid-write (the model's
				// known visibility gap); what matters here is that its
				// probe count and disk charges are tower-shape-independent.
				tr.Get(p, key)
				marks = append(marks, p.Now())
			}
		})
		e.Run(0)
		return e.Now(), tr.DiskBytes(), tr.TableCount(), marks
	}
	endA, diskA, tabsA, marksA := run(1)
	endB, diskB, tabsB, marksB := run(999)
	if endA != endB || diskA != diskB || tabsA != tabsB {
		t.Fatalf("memtable seed leaked into simulated results: end %v/%v disk %d/%d tables %d/%d",
			endA, endB, diskA, diskB, tabsA, tabsB)
	}
	for i := range marksA {
		if marksA[i] != marksB[i] {
			t.Fatalf("op %d finished at %v vs %v under different memtable seeds", i, marksA[i], marksB[i])
		}
	}
}

func TestScanCursorMatchesScanAndChargesAtOpen(t *testing.T) {
	// Two identical trees: one scanned via the materialized Scan, one via
	// ScanCursor drained by hand. Same entries, same virtual time — and the
	// cursor's charge happens at open, so a partial drain costs the same.
	build := func() (*sim.Engine, *Tree) {
		e := sim.NewEngine(1)
		tr := newTree(e, 400)
		e.Go("w", func(p *sim.Proc) {
			for i := 0; i < 120; i++ {
				tr.Put(p, fmt.Sprintf("k%04d", i), fields(fmt.Sprintf("v%d", i)))
				p.Sleep(sim.Millisecond)
			}
		})
		e.Run(0)
		return e, tr
	}

	var matKeys, curKeys []string
	var matTime, curTime, partialTime sim.Time

	e, tr := build()
	e.Go("r", func(p *sim.Proc) {
		for _, ent := range tr.Scan(p, "k0010", 30) {
			matKeys = append(matKeys, ent.Key)
		}
		matTime = p.Now()
	})
	e.Run(0)

	e2, tr2 := build()
	e2.Go("r", func(p *sim.Proc) {
		c := tr2.ScanCursor(p, "k0010")
		for len(curKeys) < 30 && c.Next() {
			curKeys = append(curKeys, c.Entry().Key)
		}
		curTime = p.Now()
	})
	e2.Run(0)

	e3, tr3 := build()
	e3.Go("r", func(p *sim.Proc) {
		c := tr3.ScanCursor(p, "k0010")
		c.Next() // one row, then abandon
		partialTime = p.Now()
	})
	e3.Run(0)

	if fmt.Sprint(matKeys) != fmt.Sprint(curKeys) {
		t.Fatalf("cursor and Scan diverge:\n scan:   %v\n cursor: %v", matKeys, curKeys)
	}
	if len(matKeys) != 30 {
		t.Fatalf("scan returned %d entries, want 30", len(matKeys))
	}
	if matTime != curTime || matTime != partialTime {
		t.Fatalf("virtual time diverges: scan=%v cursor=%v partial=%v (charges must happen at open)", matTime, curTime, partialTime)
	}
}

func TestScanCursorDedupsNewestWins(t *testing.T) {
	e := sim.NewEngine(1)
	tr := newTree(e, 200) // small flush: overwrites land in different tables
	e.Go("w", func(p *sim.Proc) {
		for round := 0; round < 3; round++ {
			for i := 0; i < 20; i++ {
				tr.Put(p, fmt.Sprintf("k%04d", i), fields(fmt.Sprintf("r%d", round)))
				p.Sleep(sim.Millisecond)
			}
		}
	})
	e.Run(0)
	e.Go("r", func(p *sim.Proc) {
		c := tr.ScanCursor(p, "k0000")
		n := 0
		for c.Next() {
			ent := c.Entry()
			if got := string(ent.Fields.Field(0)); got != "r2" {
				t.Errorf("%s = %q, want newest round r2", ent.Key, got)
			}
			n++
		}
		if n != 20 {
			t.Errorf("cursor yielded %d distinct keys, want 20", n)
		}
	})
	e.Run(0)
}
