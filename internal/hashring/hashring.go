// Package hashring implements the key-distribution schemes used by the
// benchmarked systems:
//
//   - TokenRing: Cassandra's RandomPartitioner ring. Each node owns the hash
//     range up to its token. The paper (§6) notes that random token selection
//     frequently produced a highly unbalanced load, so they assigned optimal
//     (evenly spaced) tokens; both modes are provided.
//   - JedisRing: the Jedis sharding scheme used for the Redis setup — 160
//     weighted virtual points per shard on a MurmurHash ring. Its imbalance
//     at small shard counts is what limited Redis scalability in the paper.
//   - Mod: the simple hash-mod sharding of the YCSB RDBMS client, which the
//     paper observed to shard "much better than the Jedis library".
package hashring

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Hash64 hashes a key to a point on the 64-bit ring (stand-in for the
// RandomPartitioner's MD5 and for MurmurHash in Jedis). An avalanche
// finalizer is applied so that structured sequential keys ("user000…001",
// "user000…002") spread uniformly, as MD5 would.
func Hash64(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return fmix64(h.Sum64())
}

// fmix64 is MurmurHash3's 64-bit finalizer.
func fmix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// murmur64 is MurmurHash64A (the variant Jedis uses for shard placement).
func murmur64(data []byte, seed uint64) uint64 {
	const m = 0xc6a4a7935bd1e995
	const r = 47
	h := seed ^ (uint64(len(data)) * m)
	i := 0
	for ; i+8 <= len(data); i += 8 {
		k := uint64(data[i]) | uint64(data[i+1])<<8 | uint64(data[i+2])<<16 |
			uint64(data[i+3])<<24 | uint64(data[i+4])<<32 | uint64(data[i+5])<<40 |
			uint64(data[i+6])<<48 | uint64(data[i+7])<<56
		k *= m
		k ^= k >> r
		k *= m
		h ^= k
		h *= m
	}
	rest := data[i:]
	for j := len(rest) - 1; j >= 0; j-- {
		h ^= uint64(rest[j]) << (8 * uint(j))
	}
	if len(rest) > 0 {
		h *= m
	}
	h ^= h >> r
	h *= m
	h ^= h >> r
	return h
}

type point struct {
	hash  uint64
	owner int
}

type ring struct {
	points []point
}

func (r *ring) sort() {
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// owner returns the owner of the first point clockwise from h.
func (r *ring) owner(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].owner
}

// TokenRing is a Cassandra-style ring: one token per (node, partition).
type TokenRing struct {
	ring
	nodes int
}

// NewTokenRingOptimal assigns evenly spaced tokens, the manual assignment
// the paper used to get balanced data placement.
func NewTokenRingOptimal(nodes int) *TokenRing {
	r := &TokenRing{nodes: nodes}
	step := ^uint64(0) / uint64(nodes)
	for i := 0; i < nodes; i++ {
		r.points = append(r.points, point{hash: uint64(i)*step + step/2, owner: i})
	}
	r.sort()
	return r
}

// NewTokenRingRandom assigns each node a random token, the Cassandra default
// that the paper found frequently unbalanced.
func NewTokenRingRandom(nodes int, randUint64 func() uint64) *TokenRing {
	r := &TokenRing{nodes: nodes}
	for i := 0; i < nodes; i++ {
		r.points = append(r.points, point{hash: randUint64(), owner: i})
	}
	r.sort()
	return r
}

// Owner returns the node owning key.
func (r *TokenRing) Owner(key string) int { return r.owner(Hash64(key)) }

// OwnerOfHash returns the node owning an already-hashed key.
func (r *TokenRing) OwnerOfHash(h uint64) int { return r.owner(h) }

// Nodes returns the node count.
func (r *TokenRing) Nodes() int { return r.nodes }

// Replicas returns the n distinct nodes responsible for key, walking
// clockwise from the owner (SimpleStrategy replica placement).
func (r *TokenRing) Replicas(key string, n int) []int {
	if n > r.nodes {
		n = r.nodes
	}
	h := Hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	var out []int
	seen := map[int]bool{}
	for len(out) < n {
		if i == len(r.points) {
			i = 0
		}
		o := r.points[i].owner
		if !seen[o] {
			seen[o] = true
			out = append(out, o)
		}
		i++
	}
	return out
}

// JedisRing reproduces Jedis's ShardedJedis placement: weighted virtual
// points per shard hashed with MurmurHash64A. Jedis itself uses 160 points
// per unit of weight; the paper nevertheless observed a distribution
// unbalanced enough that one of 12 Redis nodes consistently ran out of
// memory (§5.1, §6), so the default constructor uses a reduced point count
// calibrated to reproduce that observed imbalance (~1.3x hottest-shard load
// factor at 12 shards). NewJedisRingPoints(nodes, 160) gives the faithful
// constant.
type JedisRing struct {
	ring
	nodes int
}

// JedisCalibratedPoints is the per-shard virtual point count used by
// NewJedisRing to match the imbalance reported in the paper.
const JedisCalibratedPoints = 24

// NewJedisRing builds the ring for the given shard count with the
// calibrated point count (see type comment).
func NewJedisRing(nodes int) *JedisRing {
	return NewJedisRingPoints(nodes, JedisCalibratedPoints)
}

// NewJedisRingPoints builds the ring with an explicit per-shard virtual
// point count (Jedis's own constant is 160).
func NewJedisRingPoints(nodes, pointsPerShard int) *JedisRing {
	r := &JedisRing{nodes: nodes}
	for s := 0; s < nodes; s++ {
		for v := 0; v < pointsPerShard; v++ {
			name := fmt.Sprintf("SHARD-%d-NODE-%d", s, v)
			r.points = append(r.points, point{hash: murmur64([]byte(name), 0x1234ABCD), owner: s})
		}
	}
	r.sort()
	return r
}

// Owner returns the shard for key (Jedis hashes the key with murmur too).
func (r *JedisRing) Owner(key string) int {
	return r.owner(murmur64([]byte(key), 0x1234ABCD))
}

// Nodes returns the shard count.
func (r *JedisRing) Nodes() int { return r.nodes }

// LoadFactors returns, for a sample of n uniform keys, each shard's share of
// keys divided by the fair share. Used to quantify the imbalance the paper
// observed ("the data distribution is unbalanced").
func (r *JedisRing) LoadFactors(sample int) []float64 {
	counts := make([]int, r.nodes)
	for i := 0; i < sample; i++ {
		counts[r.Owner(fmt.Sprintf("user%021d", i))]++
	}
	fair := float64(sample) / float64(r.nodes)
	out := make([]float64, r.nodes)
	for i, c := range counts {
		out[i] = float64(c) / fair
	}
	return out
}

// Mod is hash-mod sharding: the YCSB RDBMS client's scheme, well balanced
// for uniform keys.
type Mod struct{ nodes int }

// NewMod builds a hash-mod sharder over the given node count.
func NewMod(nodes int) *Mod { return &Mod{nodes: nodes} }

// Owner returns the shard for key.
func (m *Mod) Owner(key string) int { return int(Hash64(key) % uint64(m.nodes)) }

// Nodes returns the shard count.
func (m *Mod) Nodes() int { return m.nodes }
