package hashring

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTokenRingOptimalBalance(t *testing.T) {
	r := NewTokenRingOptimal(12)
	counts := make([]int, 12)
	const sample = 120000
	for i := 0; i < sample; i++ {
		counts[r.Owner(fmt.Sprintf("user%021d", i))]++
	}
	fair := sample / 12
	for n, c := range counts {
		ratio := float64(c) / float64(fair)
		if ratio < 0.9 || ratio > 1.1 {
			t.Fatalf("node %d load factor %f outside [0.9,1.1]", n, ratio)
		}
	}
}

func TestTokenRingRandomOftenUnbalanced(t *testing.T) {
	// The paper: "this default behavior frequently resulted in a highly
	// unbalanced workload". Verify random tokens give a worse max load
	// factor than optimal tokens on average.
	rng := rand.New(rand.NewSource(5))
	worstRandom := 0.0
	for trial := 0; trial < 5; trial++ {
		r := NewTokenRingRandom(12, rng.Uint64)
		counts := make([]int, 12)
		const sample = 60000
		for i := 0; i < sample; i++ {
			counts[r.Owner(fmt.Sprintf("user%021d", i))]++
		}
		fair := float64(sample) / 12
		for _, c := range counts {
			if f := float64(c) / fair; f > worstRandom {
				worstRandom = f
			}
		}
	}
	if worstRandom < 1.3 {
		t.Fatalf("random tokens max load factor %f, expected noticeable imbalance (>1.3)", worstRandom)
	}
}

func TestTokenRingSingleNodeOwnsAll(t *testing.T) {
	r := NewTokenRingOptimal(1)
	for i := 0; i < 100; i++ {
		if r.Owner(fmt.Sprintf("k%d", i)) != 0 {
			t.Fatal("single-node ring routed a key elsewhere")
		}
	}
}

func TestReplicasDistinctAndOwnerFirst(t *testing.T) {
	r := NewTokenRingOptimal(5)
	reps := r.Replicas("somekey", 3)
	if len(reps) != 3 {
		t.Fatalf("got %d replicas, want 3", len(reps))
	}
	if reps[0] != r.Owner("somekey") {
		t.Fatalf("first replica %d is not the owner %d", reps[0], r.Owner("somekey"))
	}
	seen := map[int]bool{}
	for _, n := range reps {
		if seen[n] {
			t.Fatalf("duplicate replica %d in %v", n, reps)
		}
		seen[n] = true
	}
}

func TestReplicasCappedAtClusterSize(t *testing.T) {
	r := NewTokenRingOptimal(2)
	if got := len(r.Replicas("k", 3)); got != 2 {
		t.Fatalf("replicas on 2-node ring = %d, want 2", got)
	}
}

func TestJedisRingCoversAllShards(t *testing.T) {
	r := NewJedisRing(12)
	factors := r.LoadFactors(120000)
	for s, f := range factors {
		if f == 0 {
			t.Fatalf("shard %d received no keys", s)
		}
	}
}

func TestJedisRingMoreImbalancedThanMod(t *testing.T) {
	// The paper: "the YCSB client for MySQL did a much better sharding than
	// the Jedis library". Jedis's max load factor should exceed Mod's.
	jr := NewJedisRing(12)
	maxJedis := 0.0
	for _, f := range jr.LoadFactors(120000) {
		if f > maxJedis {
			maxJedis = f
		}
	}
	m := NewMod(12)
	counts := make([]int, 12)
	const sample = 120000
	for i := 0; i < sample; i++ {
		counts[m.Owner(fmt.Sprintf("user%021d", i))]++
	}
	maxMod := 0.0
	for _, c := range counts {
		if f := float64(c) / (sample / 12.0); f > maxMod {
			maxMod = f
		}
	}
	if maxJedis <= maxMod {
		t.Fatalf("jedis max factor %f should exceed mod %f", maxJedis, maxMod)
	}
	if maxJedis < 1.1 {
		t.Fatalf("jedis max factor %f, expected visible imbalance", maxJedis)
	}
}

func TestModBalance(t *testing.T) {
	m := NewMod(8)
	counts := make([]int, 8)
	const sample = 80000
	for i := 0; i < sample; i++ {
		counts[m.Owner(fmt.Sprintf("user%021d", i))]++
	}
	for n, c := range counts {
		ratio := float64(c) / (sample / 8.0)
		if ratio < 0.95 || ratio > 1.05 {
			t.Fatalf("mod shard %d load factor %f outside [0.95,1.05]", n, ratio)
		}
	}
}

func TestMurmurMatchesKnownProperties(t *testing.T) {
	// Not a reference-vector test (seed differs per deployment) but basic
	// sanity: different inputs map to different hashes, same input is stable.
	a := murmur64([]byte("hello"), 1)
	b := murmur64([]byte("hello"), 1)
	c := murmur64([]byte("hellp"), 1)
	if a != b {
		t.Fatal("murmur not deterministic")
	}
	if a == c {
		t.Fatal("murmur collision on trivially different inputs")
	}
	if murmur64([]byte("hello"), 2) == a {
		t.Fatal("seed has no effect")
	}
}

// Property: owners are always within range for every scheme.
func TestPropertyOwnersInRange(t *testing.T) {
	f := func(keys []string, n8 uint8) bool {
		n := int(n8%12) + 1
		tr := NewTokenRingOptimal(n)
		jr := NewJedisRing(n)
		md := NewMod(n)
		for _, k := range keys {
			if o := tr.Owner(k); o < 0 || o >= n {
				return false
			}
			if o := jr.Owner(k); o < 0 || o >= n {
				return false
			}
			if o := md.Owner(k); o < 0 || o >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: the same key always routes to the same owner (stability).
func TestPropertyRoutingStable(t *testing.T) {
	f := func(key string) bool {
		tr := NewTokenRingOptimal(7)
		return tr.Owner(key) == tr.Owner(key) &&
			NewJedisRing(7).Owner(key) == NewJedisRing(7).Owner(key)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTokenRingOwner(b *testing.B) {
	r := NewTokenRingOptimal(12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Owner("user000000000000000012345")
	}
}

func BenchmarkJedisOwner(b *testing.B) {
	r := NewJedisRing(12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Owner("user000000000000000012345")
	}
}
