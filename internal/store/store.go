// Package store defines the common interface implemented by the six
// benchmarked data store models, plus the record shape of the APM use case:
// a 25-byte key and five 10-byte value fields (75 bytes raw, paper §3).
package store

import (
	"errors"

	"repro/internal/sim"
	"repro/internal/slab"
)

// NumFields is the number of value fields per record.
const NumFields = 5

// FieldBytes is the size of each value field.
const FieldBytes = 10

// KeyBytes is the key length.
const KeyBytes = 25

// RawRecordBytes is the raw payload per record (key excluded, as in the
// paper's "700 MB of raw data per node" for 10M records).
const RawRecordBytes = NumFields*FieldBytes + KeyBytes

// Fields is a record's value fields, in the materialized form write
// paths build (Insert/Update/Load take Fields).
type Fields [][]byte

// FieldsView is the read-side counterpart: an allocation-free, read-only
// view of a record's field values, usually backed by a store-owned slab
// region (see package slab). Read and Scan return views so a point read
// over slab-backed engines touches no per-record heap objects; call
// Materialize (or View per field) only when bytes must outlive the
// operation.
type FieldsView = slab.FieldsView

// ViewFields wraps materialized fields as a view without copying.
func ViewFields(f Fields) FieldsView { return slab.View(f) }

// Record is a key with a view of its fields.
type Record struct {
	Key    string
	Fields FieldsView
}

// Cursor streams a scan's records in key order. Next advances to the next
// record and reports whether one exists; Key and Fields are valid until the
// next call to Next or Close. Views alias store-owned memory, like Read's.
//
// Opening a cursor charges the scan's virtual time up front — positioning
// I/O, per-row CPU, cross-node transfer — exactly as the historical
// materialized Scan did; consuming or abandoning the cursor is host-side
// only. That keeps every cached cell result stable across the API change
// while letting the query layer stream instead of building slices.
type Cursor interface {
	Next() bool
	Key() string
	Fields() FieldsView
	Close() error
}

// sliceCursor adapts a materialized record slice to the Cursor interface.
type sliceCursor struct {
	recs []Record
	i    int
}

func (c *sliceCursor) Next() bool {
	if c.i >= len(c.recs) {
		return false
	}
	c.i++
	return true
}

func (c *sliceCursor) Key() string        { return c.recs[c.i-1].Key }
func (c *sliceCursor) Fields() FieldsView { return c.recs[c.i-1].Fields }
func (c *sliceCursor) Close() error       { c.recs = nil; return nil }

// NewSliceCursor wraps already-materialized records as a Cursor. Store
// implementations whose distributed read path must gather and order rows
// before any can be returned (coordinator merges, multi-shard gathers) use
// it as their cursor backing.
func NewSliceCursor(recs []Record) Cursor { return &sliceCursor{recs: recs} }

// ScanAll opens a cursor on s and drains it into a slice: the materialized
// form the historical Scan returned, kept as a shim for tests and callers
// that want the whole result at once.
func ScanAll(p *sim.Proc, s Store, start string, count int) ([]Record, error) {
	cur, err := s.Scan(p, start, count)
	if err != nil {
		return nil, err
	}
	defer cur.Close()
	var out []Record
	for cur.Next() {
		out = append(out, Record{Key: cur.Key(), Fields: cur.Fields()})
	}
	return out, nil
}

// Key formats record number i as the fixed-width 25-byte benchmark key.
// Like YCSB's default (insertorder=hashed), the record number is hashed so
// that key ranges are uniformly loaded even though records are inserted in
// sequence; fixed-width zero-padded decimals make lexicographic order equal
// numeric order, which ordered stores (HBase) rely on. Every simulated
// operation builds at least one key, so the digits are written directly
// into a fixed buffer (a 21-digit zero-padded uint64 after the "user"
// prefix) instead of going through fmt.
func Key(i int64) string {
	var b [KeyBytes]byte
	writeKey(&b, i)
	return string(b[:])
}

// AppendKey appends record i's key to dst and returns the extended slice:
// Key without the string allocation. Hot loops (the YCSB runner's
// per-client operation loop, the load loop) keep one buffer and rebuild it
// per operation; against stores that copy key bytes on ingest (see
// CopiesOnIngest) that removes the last per-operation allocation of the
// insert path.
func AppendKey(dst []byte, i int64) []byte {
	var b [KeyBytes]byte
	writeKey(&b, i)
	return append(dst, b[:]...)
}

func writeKey(b *[KeyBytes]byte, i int64) {
	b[0], b[1], b[2], b[3] = 'u', 's', 'e', 'r'
	v := permute(uint64(i))
	for j := KeyBytes - 1; j >= 4; j-- {
		b[j] = '0' + byte(v%10)
		v /= 10
	}
}

// permute is MurmurHash3's 64-bit finalizer: a bijective mixer, so distinct
// record numbers always produce distinct keys.
func permute(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// MakeFields builds a deterministic 5x10-byte field set for record i.
func MakeFields(i int64) Fields { return MakeFieldsSized(i, FieldBytes) }

// MakeFieldsSized builds a deterministic field set with fieldBytes bytes per
// field (0 or negative means the default FieldBytes), for workloads that
// vary record size. The default size reproduces MakeFields exactly: nine
// zero-padded digits of i then the field index; larger fields repeat that
// 10-byte pattern, so byte accounting scales without new entropy. All
// fields share one backing slab, so a record costs 2 allocations (header
// slice + slab) instead of the historical 6.
func MakeFieldsSized(i int64, fieldBytes int) Fields {
	return FillFields(nil, i, fieldBytes)
}

// FillFields is MakeFieldsSized writing into a caller-owned buffer: when
// dst has NumFields entries each with capacity for fieldBytes bytes, the
// field patterns are written in place and no allocation happens. A nil or
// mis-shaped dst is (re)built as a fresh slab. It returns the filled
// buffer, which callers keep for the next record.
//
// Reusing one buffer across operations is only sound against stores that
// copy field bytes on ingest — gate the reuse on CopiesOnIngest.
func FillFields(dst Fields, i int64, fieldBytes int) Fields {
	if fieldBytes <= 0 {
		fieldBytes = FieldBytes
	}
	fit := len(dst) == NumFields
	if fit {
		for _, f := range dst {
			if cap(f) < fieldBytes {
				fit = false
				break
			}
		}
	}
	if !fit {
		dst = make(Fields, NumFields)
		slab := make([]byte, NumFields*fieldBytes)
		for j := range dst {
			dst[j] = slab[j*fieldBytes : (j+1)*fieldBytes : (j+1)*fieldBytes]
		}
	}
	var pat [FieldBytes]byte
	v := i % 1e9
	if v < 0 {
		v = -v
	}
	for k := FieldBytes - 2; k >= 0; k-- {
		pat[k] = '0' + byte(v%10)
		v /= 10
	}
	for j := range dst {
		pat[FieldBytes-1] = '0' + byte(j)
		b := dst[j][:fieldBytes]
		for k := 0; k < len(b); k += FieldBytes {
			copy(b[k:], pat[:])
		}
		dst[j] = b
	}
	return dst
}

// Clone returns a deep copy of f (headers and bytes). Write paths that
// retain fields beyond the operation's return — e.g. a mutation applied
// asynchronously after the client is acknowledged — must clone first when
// the caller may be reusing a FillFields buffer.
func (f Fields) Clone() Fields {
	if f == nil {
		return nil
	}
	out := make(Fields, len(f))
	total := 0
	for _, v := range f {
		total += len(v)
	}
	slab := make([]byte, 0, total)
	for i, v := range f {
		slab = append(slab, v...)
		out[i] = slab[len(slab)-len(v) : len(slab) : len(slab)]
	}
	return out
}

// ErrNotFound is returned when a read misses.
var ErrNotFound = errors.New("store: key not found")

// ErrScansUnsupported is returned by stores without scan support (the
// Voldemort YCSB client in the paper).
var ErrScansUnsupported = errors.New("store: scans not supported")

// ErrOverloaded is returned when a store rejects work (e.g. a Redis shard
// out of memory).
var ErrOverloaded = errors.New("store: node overloaded")

// ErrUnavailable is returned when the node(s) that must serve an operation
// are down (fault injection) and no replica can fail over. Clients should
// back off before retrying: the failure is instant, so a tight retry loop
// would not advance virtual time.
var ErrUnavailable = errors.New("store: node unavailable")

// IngestCopier is implemented by stores whose Insert/Update/Load paths
// copy key and field bytes before retaining them (slab-backed engines:
// their arenas own both), and whose Read/Scan paths do not retain the
// lookup key at all. A store that retains any caller bytes past an
// operation's return must clone them first (see the Cassandra async
// replica) or must not implement the interface.
type IngestCopier interface {
	CopiesOnIngest() bool
}

// CopiesOnIngest reports whether s copies key and field bytes on ingest,
// meaning a caller may reuse one FillFields buffer — and one AppendKey
// buffer — across operations. Stores that do not declare the capability
// are assumed to retain the caller's slices and strings.
func CopiesOnIngest(s Store) bool {
	c, ok := s.(IngestCopier)
	return ok && c.CopiesOnIngest()
}

// Caps describes a store's read-side capabilities: whether range scans are
// implemented at all, and whether the store can serve the analytic query
// layer (internal/query), which needs key-ordered scan results to run
// per-metric range pipelines. Today every scanning store returns ordered
// results, so the two track together; they are separate bits because the
// paper's stores differ in both dimensions.
type Caps struct {
	// Scans reports whether Scan is implemented (the Voldemort YCSB
	// client in the paper has no scan operation).
	Scans bool
	// Queries reports whether the analytic query layer can plan against
	// this store (requires ordered scans).
	Queries bool
}

// ScanStatsReporter is implemented by stores whose engines keep scan-path
// counters: how many sstables paid a positioning charge and how many were
// pruned by their key range before charging anything. The harness's
// -memstats diagnostics surface them per cell.
type ScanStatsReporter interface {
	ScanStats() (positioned, pruned int64)
}

// ScanStatsOf reports s's scan-path counters, or ok=false if the store
// does not expose them.
func ScanStatsOf(s Store) (positioned, pruned int64, ok bool) {
	r, isR := s.(ScanStatsReporter)
	if !isR {
		return 0, 0, false
	}
	positioned, pruned = r.ScanStats()
	return positioned, pruned, true
}

// SlabReporter is implemented by stores that can report how many bytes of
// slab-backed record state (keys, field payloads, index arenas) they
// retain. The harness's -memstats diagnostics use it to attribute
// host-side memory to the simulated store under test.
type SlabReporter interface {
	SlabBytes() int64
}

// SlabBytesOf reports s's retained slab bytes, or (0, false) if the store
// does not expose them.
func SlabBytesOf(s Store) (int64, bool) {
	r, ok := s.(SlabReporter)
	if !ok {
		return 0, false
	}
	return r.SlabBytes(), true
}

// Store is a simulated data store deployed across a cluster. All timed
// methods run inside a simulation process and advance virtual time by the
// full client-observed operation latency.
type Store interface {
	// Name identifies the system ("cassandra", "hbase", ...).
	Name() string
	// Insert appends a new record (APM data is append-only).
	Insert(p *sim.Proc, key string, f Fields) error
	// Update overwrites an existing record.
	Update(p *sim.Proc, key string, f Fields) error
	// Read fetches all fields of one record. The returned view aliases
	// store-owned memory and is valid until the next operation against
	// the store.
	Read(p *sim.Proc, key string) (FieldsView, error)
	// Scan opens a cursor over up to count records with keys >= start.
	// All virtual time the scan costs is charged before Scan returns;
	// draining the cursor is free (see Cursor). Use ScanAll to
	// materialize the result.
	Scan(p *sim.Proc, start string, count int) (Cursor, error)
	// Caps reports the store's read-side capabilities.
	Caps() Caps
	// Load inserts a record without consuming virtual time; used to
	// populate the store before a measured run. Disk/memory accounting
	// still happens.
	Load(key string, f Fields) error
	// DiskUsage returns durable bytes across all nodes.
	DiskUsage() int64
}
