package store

import (
	"strings"
	"testing"
)

func TestKeyFixedWidthAndDeterministic(t *testing.T) {
	seen := map[string]int64{}
	for i := int64(0); i < 10000; i++ {
		k := Key(i)
		if len(k) != KeyBytes {
			t.Fatalf("Key(%d) = %q: %d bytes, want %d", i, k, len(k), KeyBytes)
		}
		if !strings.HasPrefix(k, "user") {
			t.Fatalf("Key(%d) = %q, want user-prefixed", i, k)
		}
		if prev, dup := seen[k]; dup {
			t.Fatalf("Key(%d) == Key(%d) == %q (permute must be bijective)", i, prev, k)
		}
		seen[k] = i
		if Key(i) != k {
			t.Fatalf("Key(%d) not deterministic", i)
		}
	}
}

func TestKeyHashingSpreadsSequentialInserts(t *testing.T) {
	// Sequential record numbers must not produce lexicographically adjacent
	// keys, or ordered stores would hotspot on a single range during load.
	ascending := 0
	prev := Key(0)
	for i := int64(1); i < 1000; i++ {
		k := Key(i)
		if k > prev {
			ascending++
		}
		prev = k
	}
	// A hashed sequence should rise about half the time, never nearly always.
	if ascending > 700 {
		t.Fatalf("%d/999 sequential keys ascending; insert order leaks into key order", ascending)
	}
}

func TestMakeFieldsShapeAndDeterminism(t *testing.T) {
	for _, i := range []int64{0, 1, 12345, 999_999_999, 1_000_000_007} {
		f := MakeFields(i)
		if len(f) != NumFields {
			t.Fatalf("MakeFields(%d) has %d fields, want %d", i, len(f), NumFields)
		}
		for j, col := range f {
			if len(col) != FieldBytes {
				t.Fatalf("MakeFields(%d)[%d] = %q: %d bytes, want %d", i, j, col, len(col), FieldBytes)
			}
		}
		again := MakeFields(i)
		for j := range f {
			if string(f[j]) != string(again[j]) {
				t.Fatalf("MakeFields(%d) not deterministic at field %d", i, j)
			}
		}
	}
	// Distinct columns of one record must differ (the trailing digit).
	f := MakeFields(7)
	if string(f[0]) == string(f[1]) {
		t.Fatalf("fields 0 and 1 identical: %q", f[0])
	}
}

func TestRawRecordBytesAccounting(t *testing.T) {
	// The paper's 75-byte record: 25-byte key + 5 x 10-byte fields.
	if RawRecordBytes != 75 {
		t.Fatalf("RawRecordBytes = %d, want 75 (paper §3)", RawRecordBytes)
	}
	total := len(Key(42))
	for _, col := range MakeFields(42) {
		total += len(col)
	}
	if total != RawRecordBytes {
		t.Fatalf("key+fields = %d bytes, want RawRecordBytes = %d", total, RawRecordBytes)
	}
}
