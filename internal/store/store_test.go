package store

import (
	"fmt"
	"strings"
	"testing"
)

func TestKeyFixedWidthAndDeterministic(t *testing.T) {
	seen := map[string]int64{}
	for i := int64(0); i < 10000; i++ {
		k := Key(i)
		if len(k) != KeyBytes {
			t.Fatalf("Key(%d) = %q: %d bytes, want %d", i, k, len(k), KeyBytes)
		}
		if !strings.HasPrefix(k, "user") {
			t.Fatalf("Key(%d) = %q, want user-prefixed", i, k)
		}
		if prev, dup := seen[k]; dup {
			t.Fatalf("Key(%d) == Key(%d) == %q (permute must be bijective)", i, prev, k)
		}
		seen[k] = i
		if Key(i) != k {
			t.Fatalf("Key(%d) not deterministic", i)
		}
	}
}

func TestKeyHashingSpreadsSequentialInserts(t *testing.T) {
	// Sequential record numbers must not produce lexicographically adjacent
	// keys, or ordered stores would hotspot on a single range during load.
	ascending := 0
	prev := Key(0)
	for i := int64(1); i < 1000; i++ {
		k := Key(i)
		if k > prev {
			ascending++
		}
		prev = k
	}
	// A hashed sequence should rise about half the time, never nearly always.
	if ascending > 700 {
		t.Fatalf("%d/999 sequential keys ascending; insert order leaks into key order", ascending)
	}
}

func TestMakeFieldsShapeAndDeterminism(t *testing.T) {
	for _, i := range []int64{0, 1, 12345, 999_999_999, 1_000_000_007} {
		f := MakeFields(i)
		if len(f) != NumFields {
			t.Fatalf("MakeFields(%d) has %d fields, want %d", i, len(f), NumFields)
		}
		for j, col := range f {
			if len(col) != FieldBytes {
				t.Fatalf("MakeFields(%d)[%d] = %q: %d bytes, want %d", i, j, col, len(col), FieldBytes)
			}
		}
		again := MakeFields(i)
		for j := range f {
			if string(f[j]) != string(again[j]) {
				t.Fatalf("MakeFields(%d) not deterministic at field %d", i, j)
			}
		}
	}
	// Distinct columns of one record must differ (the trailing digit).
	f := MakeFields(7)
	if string(f[0]) == string(f[1]) {
		t.Fatalf("fields 0 and 1 identical: %q", f[0])
	}
}

func TestRawRecordBytesAccounting(t *testing.T) {
	// The paper's 75-byte record: 25-byte key + 5 x 10-byte fields.
	if RawRecordBytes != 75 {
		t.Fatalf("RawRecordBytes = %d, want 75 (paper §3)", RawRecordBytes)
	}
	total := len(Key(42))
	for _, col := range MakeFields(42) {
		total += len(col)
	}
	if total != RawRecordBytes {
		t.Fatalf("key+fields = %d bytes, want RawRecordBytes = %d", total, RawRecordBytes)
	}
}

func TestKeyMatchesReferenceFormat(t *testing.T) {
	// The hand-rolled digit writer must reproduce the historical
	// fmt.Sprintf("user%021d", permute(uint64(i))) format exactly — keys
	// are baked into every deterministic result.
	for _, i := range []int64{0, 1, 42, 999, 1e9, 1<<40 + 3, -1, -12345} {
		want := fmt.Sprintf("user%021d", permute(uint64(i)))
		if got := Key(i); got != want {
			t.Fatalf("Key(%d) = %q, want %q", i, got, want)
		}
	}
}

func TestMakeFieldsSized(t *testing.T) {
	// Default size reproduces MakeFields (and its historical format) exactly.
	for _, i := range []int64{0, 7, 999_999_999, 1_000_000_007} {
		def := MakeFieldsSized(i, 0)
		ref := MakeFields(i)
		for j := range ref {
			if string(def[j]) != string(ref[j]) {
				t.Fatalf("MakeFieldsSized(%d, 0)[%d] = %q, want %q", i, j, def[j], ref[j])
			}
			if want := fmt.Sprintf("%09d%d", i%1e9, j); string(ref[j]) != want {
				t.Fatalf("MakeFields(%d)[%d] = %q, want historical %q", i, j, ref[j], want)
			}
		}
	}
	// Custom sizes change only the byte count, repeating the pattern.
	for _, size := range []int{1, 10, 25, 200} {
		f := MakeFieldsSized(42, size)
		if len(f) != NumFields {
			t.Fatalf("MakeFieldsSized(42, %d) has %d fields", size, len(f))
		}
		for j, col := range f {
			if len(col) != size {
				t.Fatalf("field %d has %d bytes, want %d", j, len(col), size)
			}
			base := MakeFieldsSized(42, FieldBytes)[j]
			for k, b := range col {
				if b != base[k%FieldBytes] {
					t.Fatalf("size-%d field %d diverges from pattern at byte %d", size, j, k)
				}
			}
		}
	}
}

// TestFillFieldsMatchesMakeFields pins that the buffer-reuse path writes
// exactly the bytes MakeFieldsSized builds, across sizes and reuse.
func TestFillFieldsMatchesMakeFields(t *testing.T) {
	var buf Fields
	for _, size := range []int{0, FieldBytes, 7, 25, 200} {
		for _, i := range []int64{0, 1, 42, 999_999_999, 1_000_000_001, -17} {
			buf = FillFields(buf, i, size)
			want := MakeFieldsSized(i, size)
			if len(buf) != len(want) {
				t.Fatalf("FillFields(%d,%d): %d fields, want %d", i, size, len(buf), len(want))
			}
			for j := range want {
				if string(buf[j]) != string(want[j]) {
					t.Fatalf("FillFields(%d,%d)[%d] = %q, want %q", i, size, j, buf[j], want[j])
				}
			}
		}
	}
}

// TestFillFieldsReusesBuffer pins that a well-shaped buffer is reused,
// not reallocated: the backing arrays must be stable across calls.
func TestFillFieldsReusesBuffer(t *testing.T) {
	buf := FillFields(nil, 1, FieldBytes)
	p0 := &buf[0][0]
	buf2 := FillFields(buf, 2, FieldBytes)
	if &buf2[0][0] != p0 {
		t.Fatal("FillFields reallocated a well-shaped buffer")
	}
	avg := testing.AllocsPerRun(1000, func() {
		buf = FillFields(buf, 7, FieldBytes)
	})
	if avg != 0 {
		t.Fatalf("FillFields reuse allocates %.3f allocs/op, want 0", avg)
	}
}

// TestMakeFieldsAllocBudget pins the slab build: one header slice plus
// one backing slab, never the historical 6 allocations.
func TestMakeFieldsAllocBudget(t *testing.T) {
	var i int64
	avg := testing.AllocsPerRun(1000, func() {
		MakeFieldsSized(i, 0)
		i++
	})
	if avg > 2 {
		t.Fatalf("MakeFieldsSized allocates %.1f allocs/op, want <= 2", avg)
	}
}

// TestCloneDeepCopies pins Fields.Clone: equal bytes, disjoint storage.
func TestCloneDeepCopies(t *testing.T) {
	f := MakeFields(3)
	c := f.Clone()
	for j := range f {
		if string(c[j]) != string(f[j]) {
			t.Fatalf("clone field %d = %q, want %q", j, c[j], f[j])
		}
	}
	copy(f[0], "XXXXXXXXXX")
	if string(c[0]) == string(f[0]) {
		t.Fatal("clone shares storage with the original")
	}
	if Fields(nil).Clone() != nil {
		t.Fatal("nil clone should be nil")
	}
}

// BenchmarkMakeFields measures the per-record field construction every
// load and insert pays (was 6 allocs/op: slice header + 5 field buffers;
// the slab build is 2: header + one backing array).
func BenchmarkMakeFields(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(MakeFields(int64(i))) != NumFields {
			b.Fatal("bad fields")
		}
	}
}

// BenchmarkStoreKey pins the win of the fmt-free key builder (was
// fmt.Sprintf: ~140 ns and 2 allocs/op; now ~43 ns and the single
// unavoidable string conversion).
func BenchmarkStoreKey(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(Key(int64(i))) != KeyBytes {
			b.Fatal("bad key")
		}
	}
}

// TestAppendKeyMatchesKey pins the reusable-buffer key builder against the
// allocating one: identical bytes for any record number, appended after
// whatever the buffer already holds.
func TestAppendKeyMatchesKey(t *testing.T) {
	var buf []byte
	for _, i := range []int64{0, 1, 7, 999_999, -3, 1 << 40} {
		buf = AppendKey(buf[:0], i)
		if string(buf) != Key(i) {
			t.Fatalf("AppendKey(%d) = %q, Key = %q", i, buf, Key(i))
		}
	}
	buf = append(buf[:0], "prefix"...)
	buf = AppendKey(buf, 42)
	if string(buf) != "prefix"+Key(42) {
		t.Fatalf("AppendKey did not append: %q", buf)
	}
}

// BenchmarkStoreAppendKey is BenchmarkStoreKey on the reused-buffer path
// the YCSB runner's operation loop takes against copy-on-ingest stores:
// zero allocations once the buffer exists.
func BenchmarkStoreAppendKey(b *testing.B) {
	buf := make([]byte, 0, KeyBytes)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendKey(buf[:0], int64(i))
		if len(buf) != KeyBytes {
			b.Fatal("bad key")
		}
	}
}
