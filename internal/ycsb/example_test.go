package ycsb_test

import (
	"fmt"

	"repro/internal/ycsb"
)

// The five workload mixes of the paper's Table 1.
func ExampleWorkloadByName() {
	for _, name := range []string{"R", "RW", "W", "RS", "RSW"} {
		w, _ := ycsb.WorkloadByName(name)
		fmt.Printf("%-4s reads=%.0f%% scans=%.0f%% inserts=%.0f%%\n",
			w.Name, w.ReadProp*100, w.ScanProp*100, w.InsertProp*100)
	}
	// Output:
	// R    reads=95% scans=0% inserts=5%
	// RW   reads=50% scans=0% inserts=50%
	// W    reads=1% scans=0% inserts=99%
	// RS   reads=47% scans=47% inserts=6%
	// RSW  reads=25% scans=25% inserts=50%
}
