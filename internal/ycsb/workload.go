// Package ycsb reimplements the core of the Yahoo! Cloud Serving Benchmark
// as used in the paper (§3): a workload generator over CRUD operations on
// 75-byte records (25-byte key, five 10-byte fields), closed-loop client
// threads for maximum-throughput runs, a target-rate throttle for the
// bounded-throughput experiment, and per-operation latency collection.
package ycsb

import (
	"fmt"
	"math"

	"repro/internal/stats"
	"repro/internal/store"
)

// Workload is an operation mix (paper Table 1). Proportions must sum to 1.
// The zero value is invalid; start from a Table 1 preset or fill every
// proportion explicitly.
type Workload struct {
	Name       string
	ReadProp   float64
	ScanProp   float64
	InsertProp float64
	UpdateProp float64
	ScanLength int
	// Chooser selects keys for reads and scans (Uniform in the paper).
	Chooser ChooserKind
	// FieldBytes is the record's per-field payload size; 0 means the
	// paper's 10 bytes (5 fields x 10 bytes + 25-byte key = 75-byte
	// records). Scenarios vary it to benchmark other record shapes.
	FieldBytes int
}

// ChooserKind selects the request distribution.
type ChooserKind int

// Request distributions. The paper used Uniform; Zipfian and Latest are
// provided as extensions (they are YCSB's other standard distributions).
const (
	Uniform ChooserKind = iota
	Zipfian
	Latest
)

// Table 1 of the paper: workload mixes (% read / % scans / % inserts).
var (
	// WorkloadR is read-intensive: 95% reads, 5% inserts.
	WorkloadR = Workload{Name: "R", ReadProp: 0.95, InsertProp: 0.05, ScanLength: 50}
	// WorkloadRW balances reads and writes: 50% reads, 50% inserts.
	WorkloadRW = Workload{Name: "RW", ReadProp: 0.50, InsertProp: 0.50, ScanLength: 50}
	// WorkloadW is the APM insert stream: 1% reads, 99% inserts.
	WorkloadW = Workload{Name: "W", ReadProp: 0.01, InsertProp: 0.99, ScanLength: 50}
	// WorkloadRS splits the read half into reads and scans: 47/47/6.
	WorkloadRS = Workload{Name: "RS", ReadProp: 0.47, ScanProp: 0.47, InsertProp: 0.06, ScanLength: 50}
	// WorkloadRSW is the scan variant of RW: 25/25/50.
	WorkloadRSW = Workload{Name: "RSW", ReadProp: 0.25, ScanProp: 0.25, InsertProp: 0.50, ScanLength: 50}
)

// Workloads lists the Table 1 presets in paper order.
var Workloads = []Workload{WorkloadR, WorkloadRW, WorkloadW, WorkloadRS, WorkloadRSW}

// WorkloadByName resolves a Table 1 preset.
func WorkloadByName(name string) (Workload, error) {
	for _, w := range Workloads {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("ycsb: unknown workload %q", name)
}

// Validate checks that proportions form a distribution.
func (w Workload) Validate() error {
	for _, p := range []float64{w.ReadProp, w.ScanProp, w.InsertProp, w.UpdateProp} {
		if p < 0 || p > 1 {
			return fmt.Errorf("ycsb: workload %s has proportion %g outside [0,1]", w.Name, p)
		}
	}
	sum := w.ReadProp + w.ScanProp + w.InsertProp + w.UpdateProp
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("ycsb: workload %s proportions sum to %f, want 1", w.Name, sum)
	}
	if w.ScanProp > 0 && w.ScanLength <= 0 {
		return fmt.Errorf("ycsb: workload %s has scans but no scan length", w.Name)
	}
	if w.FieldBytes < 0 {
		return fmt.Errorf("ycsb: workload %s has negative field size %d", w.Name, w.FieldBytes)
	}
	return nil
}

// HasScans reports whether the mix includes scan operations.
func (w Workload) HasScans() bool { return w.ScanProp > 0 }

// HasUpdates reports whether the mix includes update operations.
func (w Workload) HasUpdates() bool { return w.UpdateProp > 0 }

// FieldSize returns the effective per-field payload size.
func (w Workload) FieldSize() int {
	if w.FieldBytes <= 0 {
		return store.FieldBytes
	}
	return w.FieldBytes
}

// IsPreset reports whether w is exactly one of the Table 1 presets (same
// name, same parameters). Preset-identical workloads share experiment
// cells — and therefore cached results — with the paper's figures.
func (w Workload) IsPreset() bool {
	for _, p := range Workloads {
		if w == p {
			return true
		}
	}
	return false
}

// pick draws an operation kind from the mix.
func (w Workload) pick(r float64) stats.OpKind {
	switch {
	case r < w.ReadProp:
		return stats.OpRead
	case r < w.ReadProp+w.ScanProp:
		return stats.OpScan
	case r < w.ReadProp+w.ScanProp+w.InsertProp:
		return stats.OpInsert
	default:
		return stats.OpUpdate
	}
}

// keyChooser picks existing record numbers according to the distribution.
type keyChooser struct {
	kind  ChooserKind
	theta float64
}

func newChooser(kind ChooserKind) *keyChooser {
	return &keyChooser{kind: kind, theta: 0.99}
}

// Choose returns a record number in [0, n) given uniform draws u1, u2 in
// [0, 1).
func (c *keyChooser) Choose(n int64, u1, u2 float64) int64 {
	if n <= 0 {
		return 0
	}
	switch c.kind {
	case Zipfian:
		// Bounded-Pareto approximation of the zipf(0.99) popularity curve.
		// Ranks are scrambled deterministically so hot keys are spread
		// through the keyspace (as YCSB's scrambled zipfian does).
		rank := int64(float64(n) * math.Pow(u1, 4))
		if rank >= n {
			rank = n - 1
		}
		return (rank*2654435761 + 40503) % n
	case Latest:
		// Skew toward recently inserted records.
		back := int64(float64(n) * math.Pow(u1, 4))
		idx := n - 1 - back
		if idx < 0 {
			idx = 0
		}
		return idx
	default:
		return int64(u1 * float64(n))
	}
}
