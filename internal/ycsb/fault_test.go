package ycsb

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/store"
)

// downStore rejects every operation with ErrUnavailable, modeling a window
// in which the client's entire key range is on dead nodes.
type downStore struct{}

func (downStore) Name() string     { return "down" }
func (downStore) Caps() store.Caps { return store.Caps{Scans: true} }
func (downStore) Insert(p *sim.Proc, key string, f store.Fields) error {
	return store.ErrUnavailable
}
func (downStore) Update(p *sim.Proc, key string, f store.Fields) error {
	return store.ErrUnavailable
}
func (downStore) Read(p *sim.Proc, key string) (store.FieldsView, error) {
	return store.FieldsView{}, store.ErrUnavailable
}
func (downStore) Scan(p *sim.Proc, start string, count int) (store.Cursor, error) {
	return nil, store.ErrUnavailable
}
func (downStore) Load(key string, f store.Fields) error { return nil }
func (downStore) DiskUsage() int64                      { return 0 }

// A run against a 100%-unavailable store must terminate (the backoff
// advances virtual time), record zero successful ops, and count every
// attempt as an error rather than crashing or dividing by zero.
func TestFullyUnavailableWindowYieldsZeroOkOps(t *testing.T) {
	e := sim.NewEngine(7)
	res, err := Run(e, RunConfig{
		Store:              downStore{},
		Workload:           WorkloadR,
		Clients:            4,
		InitialRecords:     100,
		Warmup:             10 * sim.Millisecond,
		Measure:            100 * sim.Millisecond,
		UnavailableBackoff: sim.Millisecond,
		TrackWindows:       true,
		WindowInterval:     10 * sim.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Ops(); got != 0 {
		t.Fatalf("ops = %d, want 0", got)
	}
	if res.Errors() == 0 {
		t.Fatal("no errors recorded against a fully-down store")
	}
	// 4 clients x 1ms backoff over a 100ms window: roughly 400 attempts.
	if errs := res.Errors(); errs < 300 || errs > 500 {
		t.Fatalf("errors = %d, want ~400 (backoff-paced attempts)", errs)
	}
	sum := res.Summarize()
	if sum.Throughput != 0 {
		t.Fatalf("throughput = %g, want 0", sum.Throughput)
	}
	if res.Windows == nil {
		t.Fatal("TrackWindows set but Windows is nil")
	}
	for i := 0; i < res.Windows.Windows(); i++ {
		if av := res.Windows.Availability(i); av != 0 {
			t.Fatalf("window %d availability = %g, want 0", i, av)
		}
		if q := res.Windows.Quantile(i, 0.99); q != 0 {
			t.Fatalf("window %d p99 = %v, want 0 (no successes)", i, q)
		}
	}
}

// An OpTimeout below the store's latency classifies every completion as a
// timeout: counted, windowed as failure, excluded from success stats.
func TestOpTimeoutClassification(t *testing.T) {
	e := sim.NewEngine(3)
	f := newFake(5*sim.Millisecond, 5*sim.Millisecond, 0)
	if err := Load(f, 100); err != nil {
		t.Fatal(err)
	}
	res, err := Run(e, RunConfig{
		Store:          f,
		Workload:       WorkloadR,
		Clients:        2,
		InitialRecords: 100,
		Measure:        100 * sim.Millisecond,
		OpTimeout:      sim.Millisecond,
		TrackWindows:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops() != 0 {
		t.Fatalf("ops = %d, want 0 (all over deadline)", res.Ops())
	}
	if res.Timeouts() == 0 {
		t.Fatal("no timeouts recorded")
	}
	if res.Summarize().Timeouts != res.Timeouts() {
		t.Fatal("summary does not carry timeout count")
	}
	var failed int64
	for i := 0; i < res.Windows.Windows(); i++ {
		failed += res.Windows.Failed(i)
	}
	if failed == 0 {
		t.Fatal("timeouts not reflected in windowed failures")
	}
}

// Latency samples land in the window of their completion time with the
// configured quantiles intact.
func TestRunPopulatesWindows(t *testing.T) {
	e := sim.NewEngine(5)
	f := newFake(2*sim.Millisecond, 2*sim.Millisecond, 0)
	if err := Load(f, 100); err != nil {
		t.Fatal(err)
	}
	res, err := Run(e, RunConfig{
		Store:          f,
		Workload:       WorkloadR,
		Clients:        2,
		InitialRecords: 100,
		Measure:        100 * sim.Millisecond,
		TrackWindows:   true,
		WindowInterval: 25 * sim.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Windows == nil || res.Windows.Windows() == 0 {
		t.Fatal("no windows recorded")
	}
	var ok int64
	for i := 0; i < res.Windows.Windows(); i++ {
		ok += res.Windows.Ok(i)
		if av := res.Windows.Availability(i); res.Windows.Ok(i) > 0 && av != 1 {
			t.Fatalf("window %d availability = %g, want 1", i, av)
		}
	}
	if ok != res.Ops() {
		t.Fatalf("windowed ok = %d, collector ops = %d", ok, res.Ops())
	}
}
