package ycsb

import (
	"errors"
	"fmt"
	"unsafe"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/store"
)

// keyBuf builds record keys into one reusable buffer, handing them out as
// zero-copy string views. Sound only against stores that copy key bytes on
// ingest and never retain a lookup key (store.CopiesOnIngest): the view
// aliases the buffer, and the next key overwrites it in place. Each
// goroutine owns its buffer; the view must not outlive the operation it
// was built for.
type keyBuf []byte

func (b *keyBuf) key(i int64) string {
	*b = store.AppendKey((*b)[:0], i)
	return unsafe.String(unsafe.SliceData(*b), len(*b))
}

// RunConfig describes one benchmark execution against a deployed store.
type RunConfig struct {
	Store    store.Store
	Workload Workload
	// Clients is the number of concurrent connections (closed loop). The
	// paper used 128 per server node on Cluster M, 2 per core on Cluster D.
	Clients int
	// TargetOpsPerSec throttles the aggregate rate (YCSB's -target flag);
	// zero runs at maximum throughput.
	TargetOpsPerSec float64
	// InitialRecords is how many records were loaded before the run.
	InitialRecords int64
	// Warmup and Measure bound the run: statistics are collected only
	// inside the measurement window.
	Warmup  sim.Time
	Measure sim.Time
	// TrackThroughput records a throughput-over-time series for the
	// measurement window (steady-state diagnostics).
	TrackThroughput bool
	// OpTimeout classifies operations slower than this as timed out: they
	// count as failures (and windowed failures), not latency samples. Zero
	// disables the classification.
	OpTimeout sim.Time
	// UnavailableBackoff is how long a client sleeps after an
	// ErrUnavailable response before retrying. Instant failures do not
	// advance virtual time, so without a backoff a closed-loop client
	// would spin forever at one instant against a fully-down store.
	// Zero means the 1ms default.
	UnavailableBackoff sim.Time
	// TrackWindows records per-window latency quantiles and availability
	// over the measurement window (fault-injection diagnostics).
	TrackWindows bool
	// WindowInterval is the window width for TrackWindows (default
	// Measure/20).
	WindowInterval sim.Time
}

// defaultUnavailableBackoff paces closed-loop retries against a down node.
const defaultUnavailableBackoff = sim.Millisecond

// Result carries the collector plus run metadata.
type Result struct {
	*stats.Collector
	Config RunConfig
	// Series is the throughput-over-time curve (nil unless
	// Config.TrackThroughput was set).
	Series *stats.ThroughputSeries
	// Windows holds per-window quantiles and availability (nil unless
	// Config.TrackWindows was set).
	Windows *stats.WindowedLatency
}

// Load populates the store with n records (record numbers 0..n-1) without
// consuming virtual time, mirroring the paper's separate load phase.
func Load(s store.Store, n int64) error { return LoadSized(s, n, store.FieldBytes) }

// LoadSized is Load with fieldBytes-sized value fields per record, for
// workloads that vary record size (0 means the default 10 bytes). Against
// stores that copy on ingest it reuses one fields buffer for the whole
// load, so a 10M-record load performs 10M field-buffer allocations fewer.
func LoadSized(s store.Store, n int64, fieldBytes int) error {
	reuse := store.CopiesOnIngest(s)
	var buf store.Fields
	var kb keyBuf
	for i := int64(0); i < n; i++ {
		var key string
		if reuse {
			buf = store.FillFields(buf, i, fieldBytes)
			key = kb.key(i)
		} else {
			buf = store.MakeFieldsSized(i, fieldBytes)
			key = store.Key(i)
		}
		if err := s.Load(key, buf); err != nil {
			return fmt.Errorf("ycsb: load record %d: %w", i, err)
		}
	}
	return nil
}

// Run executes the workload and returns collected statistics. It drives the
// engine itself (warmup + measure, then lets in-flight operations drain).
func Run(e *sim.Engine, cfg RunConfig) (*Result, error) {
	if err := cfg.Workload.Validate(); err != nil {
		return nil, err
	}
	if cfg.Clients <= 0 {
		return nil, fmt.Errorf("ycsb: need at least one client")
	}
	if cfg.Measure <= 0 {
		return nil, fmt.Errorf("ycsb: measurement window must be positive")
	}
	col := stats.NewCollector()
	var series *stats.ThroughputSeries
	if cfg.TrackThroughput {
		series = stats.NewThroughputSeries(e.Now()+cfg.Warmup, cfg.Measure/20)
	}
	var windows *stats.WindowedLatency
	if cfg.TrackWindows {
		wi := cfg.WindowInterval
		if wi <= 0 {
			wi = cfg.Measure / 20
		}
		windows = stats.NewWindowedLatency(e.Now()+cfg.Warmup, wi)
	}
	backoff := cfg.UnavailableBackoff
	if backoff <= 0 {
		backoff = defaultUnavailableBackoff
	}
	stopAt := e.Now() + cfg.Warmup + cfg.Measure
	inserted := cfg.InitialRecords
	chooser := newChooser(cfg.Workload.Chooser)
	fieldBytes := cfg.Workload.FieldSize()

	// Per-client pacing interval for throttled runs.
	var interval sim.Time
	if cfg.TargetOpsPerSec > 0 {
		perClient := cfg.TargetOpsPerSec / float64(cfg.Clients)
		interval = sim.Time(float64(sim.Second) / perClient)
	}

	e.Schedule(cfg.Warmup, func() { col.Begin(e.Now()) })
	e.Schedule(cfg.Warmup+cfg.Measure, func() { col.Finish(e.Now()) })

	// Stores that copy key and field bytes on ingest let each client reuse
	// one fields buffer and one key buffer for every operation instead of
	// allocating fresh per operation — with both reused, the steady-state
	// operation loop allocates nothing.
	reuseBufs := store.CopiesOnIngest(cfg.Store)

	for i := 0; i < cfg.Clients; i++ {
		e.Go(fmt.Sprintf("client-%d", i), func(p *sim.Proc) {
			rng := p.Rand()
			var fbuf store.Fields
			var kb keyBuf
			makeFields := func(id int64) store.Fields {
				if reuseBufs {
					fbuf = store.FillFields(fbuf, id, fieldBytes)
					return fbuf
				}
				return store.MakeFieldsSized(id, fieldBytes)
			}
			makeKey := func(id int64) string {
				if reuseBufs {
					return kb.key(id)
				}
				return store.Key(id)
			}
			// Desynchronize client start within one pacing interval.
			if interval > 0 {
				p.Sleep(sim.Time(rng.Int63n(int64(interval) + 1)))
			}
			for p.Now() < stopAt {
				opStart := p.Now()
				kind := cfg.Workload.pick(rng.Float64())
				var err error
				switch kind {
				case stats.OpRead:
					key := makeKey(chooser.Choose(inserted, rng.Float64(), rng.Float64()))
					_, err = cfg.Store.Read(p, key)
				case stats.OpScan:
					key := makeKey(chooser.Choose(inserted, rng.Float64(), rng.Float64()))
					var cur store.Cursor
					cur, err = cfg.Store.Scan(p, key, cfg.Workload.ScanLength)
					if err == nil {
						// Drain like the YCSB client iterating its result
						// set; all virtual time was charged at open, so
						// the drain is host-side only.
						for cur.Next() {
						}
						err = cur.Close()
					}
				case stats.OpInsert:
					id := inserted
					inserted++
					err = cfg.Store.Insert(p, makeKey(id), makeFields(id))
				case stats.OpUpdate:
					id := chooser.Choose(inserted, rng.Float64(), rng.Float64())
					err = cfg.Store.Update(p, makeKey(id), makeFields(id))
				}
				switch lat := p.Now() - opStart; {
				case err != nil:
					col.RecordError()
					if windows != nil && col.Active() {
						windows.RecordFailure(p.Now())
					}
					if errors.Is(err, store.ErrUnavailable) {
						// Pace retries: the failure was instant in
						// virtual time.
						p.Sleep(backoff)
					}
				case cfg.OpTimeout > 0 && lat > cfg.OpTimeout:
					col.RecordTimeout()
					if windows != nil && col.Active() {
						windows.RecordFailure(p.Now())
					}
				default:
					col.Record(kind, lat)
					if col.Active() {
						if series != nil {
							series.Record(p.Now())
						}
						if windows != nil {
							windows.Record(p.Now(), lat)
						}
					}
				}
				if interval > 0 {
					next := opStart + interval
					if next > p.Now() {
						p.Sleep(next - p.Now())
					}
				}
			}
		})
	}
	e.Run(0)
	if col.Window() == 0 {
		col.Finish(e.Now())
	}
	return &Result{Collector: col, Config: cfg, Series: series, Windows: windows}, nil
}
