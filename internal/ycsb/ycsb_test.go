package ycsb

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/store"
)

// fakeStore is a fixed-latency in-memory store for framework tests.
type fakeStore struct {
	readLat, writeLat, scanLat sim.Time
	data                       map[string]store.Fields
	reads, writes, scans       int
}

func newFake(r, w, s sim.Time) *fakeStore {
	return &fakeStore{readLat: r, writeLat: w, scanLat: s, data: map[string]store.Fields{}}
}

func (f *fakeStore) Name() string     { return "fake" }
func (f *fakeStore) Caps() store.Caps { return store.Caps{Scans: true} }
func (f *fakeStore) Insert(p *sim.Proc, key string, fl store.Fields) error {
	p.Sleep(f.writeLat)
	f.data[key] = fl
	f.writes++
	return nil
}
func (f *fakeStore) Update(p *sim.Proc, key string, fl store.Fields) error {
	return f.Insert(p, key, fl)
}
func (f *fakeStore) Read(p *sim.Proc, key string) (store.FieldsView, error) {
	p.Sleep(f.readLat)
	f.reads++
	if v, ok := f.data[key]; ok {
		return store.ViewFields(v), nil
	}
	return store.FieldsView{}, store.ErrNotFound
}
func (f *fakeStore) Scan(p *sim.Proc, start string, count int) (store.Cursor, error) {
	p.Sleep(f.scanLat)
	f.scans++
	return store.NewSliceCursor(nil), nil
}
func (f *fakeStore) Load(key string, fl store.Fields) error {
	f.data[key] = fl
	return nil
}
func (f *fakeStore) DiskUsage() int64 { return 0 }

func TestWorkloadPresetsValid(t *testing.T) {
	for _, w := range Workloads {
		if err := w.Validate(); err != nil {
			t.Errorf("workload %s invalid: %v", w.Name, err)
		}
	}
}

func TestTable1Proportions(t *testing.T) {
	cases := []struct {
		w                  Workload
		read, scan, insert float64
	}{
		{WorkloadR, 0.95, 0, 0.05},
		{WorkloadRW, 0.50, 0, 0.50},
		{WorkloadW, 0.01, 0, 0.99},
		{WorkloadRS, 0.47, 0.47, 0.06},
		{WorkloadRSW, 0.25, 0.25, 0.50},
	}
	for _, c := range cases {
		if c.w.ReadProp != c.read || c.w.ScanProp != c.scan || c.w.InsertProp != c.insert {
			t.Errorf("workload %s: got %f/%f/%f, want %f/%f/%f", c.w.Name,
				c.w.ReadProp, c.w.ScanProp, c.w.InsertProp, c.read, c.scan, c.insert)
		}
	}
}

func TestWorkloadByName(t *testing.T) {
	w, err := WorkloadByName("RSW")
	if err != nil || w.Name != "RSW" {
		t.Fatalf("WorkloadByName(RSW) = %v, %v", w, err)
	}
	if _, err := WorkloadByName("nope"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestValidateRejectsBadMix(t *testing.T) {
	bad := Workload{Name: "bad", ReadProp: 0.5, InsertProp: 0.2}
	if err := bad.Validate(); err == nil {
		t.Fatal("accepted proportions summing to 0.7")
	}
	noLen := Workload{Name: "noscanlen", ReadProp: 0.5, ScanProp: 0.5}
	if err := noLen.Validate(); err == nil {
		t.Fatal("accepted scans without scan length")
	}
	negProp := Workload{Name: "neg", ReadProp: 1.5, InsertProp: -0.5}
	if err := negProp.Validate(); err == nil {
		t.Fatal("accepted proportions outside [0,1]")
	}
	negField := Workload{Name: "negfield", ReadProp: 1, FieldBytes: -1}
	if err := negField.Validate(); err == nil {
		t.Fatal("accepted negative field size")
	}
	updates := Workload{Name: "upd", ReadProp: 0.5, UpdateProp: 0.5}
	if err := updates.Validate(); err != nil {
		t.Fatalf("rejected a valid update mix: %v", err)
	}
	if !updates.HasUpdates() || WorkloadR.HasUpdates() {
		t.Fatal("HasUpdates wrong")
	}
}

func TestWorkloadFieldSizeAndPresetIdentity(t *testing.T) {
	if WorkloadR.FieldSize() != 10 {
		t.Fatalf("default field size = %d, want 10 (75-byte records)", WorkloadR.FieldSize())
	}
	sized := WorkloadR
	sized.FieldBytes = 200
	if sized.FieldSize() != 200 {
		t.Fatalf("custom field size = %d, want 200", sized.FieldSize())
	}
	if !WorkloadR.IsPreset() || sized.IsPreset() {
		t.Fatal("IsPreset must be exact parameter identity, not just the name")
	}
}

func TestClosedLoopThroughputMatchesLittlesLaw(t *testing.T) {
	// 8 clients, 1ms per op -> 8000 ops/s.
	e := sim.NewEngine(1)
	f := newFake(sim.Millisecond, sim.Millisecond, sim.Millisecond)
	if err := Load(f, 1000); err != nil {
		t.Fatal(err)
	}
	res, err := Run(e, RunConfig{
		Store: f, Workload: WorkloadR, Clients: 8,
		InitialRecords: 1000, Warmup: 100 * sim.Millisecond, Measure: sim.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	tput := res.Throughput()
	if tput < 7500 || tput > 8500 {
		t.Fatalf("throughput = %f, want ~8000 (Little's law)", tput)
	}
	if got := res.MeanLatency(0); got != sim.Millisecond {
		t.Fatalf("read latency = %v, want exactly 1ms", got)
	}
}

func TestTargetThrottleBoundsThroughput(t *testing.T) {
	e := sim.NewEngine(1)
	f := newFake(sim.Millisecond, sim.Millisecond, sim.Millisecond)
	Load(f, 1000)
	res, err := Run(e, RunConfig{
		Store: f, Workload: WorkloadR, Clients: 8, TargetOpsPerSec: 2000,
		InitialRecords: 1000, Warmup: 200 * sim.Millisecond, Measure: sim.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	tput := res.Throughput()
	if tput < 1800 || tput > 2200 {
		t.Fatalf("throttled throughput = %f, want ~2000", tput)
	}
}

func TestMixProportionsObserved(t *testing.T) {
	e := sim.NewEngine(2)
	f := newFake(100*sim.Microsecond, 100*sim.Microsecond, 100*sim.Microsecond)
	Load(f, 1000)
	res, err := Run(e, RunConfig{
		Store: f, Workload: WorkloadRSW, Clients: 16,
		InitialRecords: 1000, Warmup: 100 * sim.Millisecond, Measure: 2 * sim.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	total := float64(res.Ops())
	readFrac := float64(res.Hist(0).N()) / total
	scanFrac := float64(res.Hist(3).N()) / total
	if readFrac < 0.22 || readFrac > 0.28 {
		t.Fatalf("read fraction = %f, want ~0.25", readFrac)
	}
	if scanFrac < 0.22 || scanFrac > 0.28 {
		t.Fatalf("scan fraction = %f, want ~0.25", scanFrac)
	}
}

func TestInsertsExtendKeyspace(t *testing.T) {
	e := sim.NewEngine(3)
	f := newFake(10*sim.Microsecond, 10*sim.Microsecond, 10*sim.Microsecond)
	Load(f, 100)
	res, err := Run(e, RunConfig{
		Store: f, Workload: WorkloadW, Clients: 4,
		InitialRecords: 100, Warmup: 0, Measure: 100 * sim.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if f.writes == 0 {
		t.Fatal("no inserts performed")
	}
	if len(f.data) <= 100 {
		t.Fatalf("keyspace did not grow: %d records", len(f.data))
	}
	if res.Errors() > res.Ops()/10 {
		t.Fatalf("too many errors: %d of %d", res.Errors(), res.Ops())
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (float64, int64) {
		e := sim.NewEngine(77)
		f := newFake(sim.Millisecond, 500*sim.Microsecond, 2*sim.Millisecond)
		Load(f, 500)
		res, err := Run(e, RunConfig{
			Store: f, Workload: WorkloadRW, Clients: 8,
			InitialRecords: 500, Warmup: 50 * sim.Millisecond, Measure: 500 * sim.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Throughput(), res.Ops()
	}
	t1, o1 := run()
	t2, o2 := run()
	if t1 != t2 || o1 != o2 {
		t.Fatalf("same-seed runs differ: %f/%d vs %f/%d", t1, o1, t2, o2)
	}
}

func TestRunRejectsBadConfigs(t *testing.T) {
	e := sim.NewEngine(1)
	f := newFake(1, 1, 1)
	if _, err := Run(e, RunConfig{Store: f, Workload: WorkloadR, Clients: 0, Measure: 1}); err == nil {
		t.Fatal("accepted zero clients")
	}
	if _, err := Run(e, RunConfig{Store: f, Workload: WorkloadR, Clients: 1, Measure: 0}); err == nil {
		t.Fatal("accepted zero measurement window")
	}
	bad := Workload{Name: "bad", ReadProp: 0.3}
	if _, err := Run(e, RunConfig{Store: f, Workload: bad, Clients: 1, Measure: 1}); err == nil {
		t.Fatal("accepted invalid workload")
	}
}

// Property: every chooser returns indices within [0, n).
func TestPropertyChooserInRange(t *testing.T) {
	f := func(n64 uint32, u1f, u2f uint16) bool {
		n := int64(n64%100000) + 1
		u1 := float64(u1f) / 65536.0
		u2 := float64(u2f) / 65536.0
		for _, kind := range []ChooserKind{Uniform, Zipfian, Latest} {
			c := newChooser(kind)
			got := c.Choose(n, u1, u2)
			if got < 0 || got >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestZipfianSkew(t *testing.T) {
	// Zipfian draws should concentrate: the most popular 10% of ranks get
	// well over 10% of accesses.
	c := newChooser(Zipfian)
	e := sim.NewEngine(5)
	rng := e.Rand()
	const n = 1000
	counts := map[int64]int{}
	for i := 0; i < 20000; i++ {
		counts[c.Choose(n, rng.Float64(), rng.Float64())]++
	}
	// Aggregate counts of keys; check max key gets > 2x fair share.
	maxC := 0
	for _, v := range counts {
		if v > maxC {
			maxC = v
		}
	}
	if float64(maxC) < 2*20000.0/n {
		t.Fatalf("zipfian max key count %d, want > 2x fair share %f", maxC, 20000.0/n)
	}
}

func TestTrackThroughputSeries(t *testing.T) {
	e := sim.NewEngine(4)
	f := newFake(100*sim.Microsecond, 100*sim.Microsecond, 100*sim.Microsecond)
	Load(f, 500)
	res, err := Run(e, RunConfig{
		Store: f, Workload: WorkloadR, Clients: 4,
		InitialRecords: 500, Warmup: 100 * sim.Millisecond,
		Measure: sim.Second, TrackThroughput: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Series == nil {
		t.Fatal("series not recorded")
	}
	if got := len(res.Series.Buckets()); got < 15 {
		t.Fatalf("series has %d buckets, want ~20", got)
	}
	if st := res.Series.Stability(); st < 0.8 || st > 1.2 {
		t.Fatalf("fixed-latency store stability = %f, want ~1", st)
	}
}

// copyingFake is fakeStore with the copy-on-ingest contract the real
// stores implement: key and field bytes are cloned before retention, so
// the runner takes its buffer-reuse path (one key buffer and one fields
// buffer per client, zero steady-state allocations).
type copyingFake struct {
	*fakeStore
}

func (c *copyingFake) CopiesOnIngest() bool { return true }
func (c *copyingFake) Insert(p *sim.Proc, key string, fl store.Fields) error {
	return c.fakeStore.Insert(p, strings.Clone(key), fl.Clone())
}
func (c *copyingFake) Update(p *sim.Proc, key string, fl store.Fields) error {
	return c.Insert(p, key, fl)
}
func (c *copyingFake) Load(key string, fl store.Fields) error {
	return c.fakeStore.Load(strings.Clone(key), fl.Clone())
}

// TestReusedBuffersMatchAllocatingRun pins the key/fields buffer reuse:
// against a copy-on-ingest store the runner reuses per-client buffers, and
// the run must be indistinguishable from the allocating path — identical
// throughput and op counts, and every retained record must hold exactly
// the bytes its record number implies (a stale or overwritten buffer view
// would leave another record's key or fields behind).
func TestReusedBuffersMatchAllocatingRun(t *testing.T) {
	const initial = 400
	run := func(s store.Store) (*Result, error) {
		e := sim.NewEngine(77)
		if err := Load(s, initial); err != nil {
			return nil, err
		}
		return Run(e, RunConfig{
			Store: s, Workload: WorkloadW, Clients: 8,
			InitialRecords: initial, Warmup: 50 * sim.Millisecond, Measure: 500 * sim.Millisecond,
		})
	}
	plain := newFake(sim.Millisecond, 500*sim.Microsecond, 2*sim.Millisecond)
	copying := &copyingFake{newFake(sim.Millisecond, 500*sim.Microsecond, 2*sim.Millisecond)}
	resPlain, err := run(plain)
	if err != nil {
		t.Fatal(err)
	}
	resReuse, err := run(copying)
	if err != nil {
		t.Fatal(err)
	}
	if resPlain.Throughput() != resReuse.Throughput() || resPlain.Ops() != resReuse.Ops() {
		t.Fatalf("reuse path diverged: %f/%d vs %f/%d",
			resPlain.Throughput(), resPlain.Ops(), resReuse.Throughput(), resReuse.Ops())
	}

	// Integrity sweep: map keys back to record numbers and verify payloads.
	// writes counts every insert/update including warmup and drain, so
	// initial+writes bounds the highest record number any key can carry.
	byKey := map[string]int64{}
	for id := int64(0); id < initial+int64(copying.writes)+16; id++ {
		byKey[store.Key(id)] = id
	}
	if len(copying.data) <= initial {
		t.Fatalf("write workload retained only %d records", len(copying.data))
	}
	for key, fl := range copying.data {
		id, ok := byKey[key]
		if !ok {
			t.Fatalf("retained key %q maps to no record number (aliased buffer?)", key)
		}
		want := store.MakeFields(id)
		for j := range want {
			if string(fl[j]) != string(want[j]) {
				t.Fatalf("record %d field %d = %q, want %q (aliased buffer?)", id, j, fl[j], want[j])
			}
		}
	}
}

// TestRunSteadyStateAllocs pins the zero-allocation operation loop against
// a copy-on-ingest store: after warmup, inserts and updates reuse the
// per-client key and fields buffers.
func TestRunSteadyStateAllocs(t *testing.T) {
	var kb keyBuf
	var fbuf store.Fields
	avg := testing.AllocsPerRun(1000, func() {
		_ = kb.key(12345)
		fbuf = store.FillFields(fbuf, 12345, store.FieldBytes)
	})
	if avg != 0 {
		t.Fatalf("per-op key+fields build allocates %.3f allocs/op, want 0", avg)
	}
}

// TestKeyBufMatchesKey pins the zero-copy key view: same bytes as
// store.Key, and the view is invalidated (overwritten in place) by the
// next build — exactly the contract CopiesOnIngest stores rely on.
func TestKeyBufMatchesKey(t *testing.T) {
	var kb keyBuf
	for _, id := range []int64{0, 5, 999_999_999} {
		if got := kb.key(id); got != store.Key(id) {
			t.Fatalf("keyBuf.key(%d) = %q, want %q", id, got, store.Key(id))
		}
	}
	first := kb.key(1)
	second := kb.key(2)
	if first != second {
		t.Fatal("old key view survived a rebuild; buffer is not being reused")
	}
}
