package apm_test

import (
	"fmt"

	"repro/internal/apm"
	"repro/internal/store"
)

// An APM measurement as in the paper's Figure 2, encoded to a storage
// record and back.
func ExampleMeasurement() {
	m := apm.Measurement{
		Metric:    "HostA/AgentX/ServletB/AverageResponseTime",
		Value:     4,
		Min:       1,
		Max:       6,
		Timestamp: 1332988833,
		Duration:  15,
	}
	fmt.Println(m.Key())
	back, _ := apm.Decode(m.Key(), store.ViewFields(m.Fields()))
	fmt.Println(back.Value, back.Min, back.Max, back.Duration)
	// Output:
	// HostA/AgentX/ServletB/AverageResponseTime|001332988833
	// 4 1 6 15
}

// The paper's §1 sizing arithmetic: 10K nodes x 10K metrics at a 10-second
// interval is 10 million measurements per second.
func ExampleIngestRate() {
	fmt.Printf("%.0f measurements/sec\n", apm.IngestRate(10000, 10000, 10))
	// Output:
	// 10000000 measurements/sec
}
