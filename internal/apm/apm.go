// Package apm implements the application performance management data model
// of the paper (§2–§3): measurements with a metric name, value, min/max
// aggregates, timestamp and duration (Fig 2), agents that report thousands
// of metrics at a fixed interval, and the two online query types the use
// case needs — sliding-window aggregates over one metric and over a group
// of metrics.
package apm

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/sim"
	"repro/internal/store"
)

// Measurement is one reported data point (paper Fig 2).
type Measurement struct {
	Metric    string  // e.g. "HostA/AgentX/ServletB/AverageResponseTime"
	Value     float64 // aggregated value over the reporting interval
	Min       float64
	Max       float64
	Timestamp int64 // unix seconds
	Duration  int64 // aggregation window, seconds
}

// Key encodes the measurement's storage key: metric identity plus
// zero-padded timestamp, so that per-metric scans return time ranges in
// order. APM data is append-only (§3), so the key is unique per interval.
// This is the ingest pipeline's per-measurement hot path, so the key is
// assembled into one sized buffer instead of going through fmt (the format
// is exactly "%s|%012d").
func (m Measurement) Key() string {
	b := make([]byte, 0, len(m.Metric)+1+timestampWidth)
	b = append(b, m.Metric...)
	b = append(b, '|')
	b = appendPaddedInt(b, m.Timestamp)
	return string(b)
}

// timestampWidth is the zero-padded timestamp field width; unix seconds fit
// in 12 digits until the year 33658.
const timestampWidth = 12

// appendPaddedInt appends ts zero-padded to timestampWidth digits,
// matching fmt's %012d (sign counts toward the width; wider values extend
// past it).
func appendPaddedInt(b []byte, ts int64) []byte {
	if ts < 0 {
		b = append(b, '-')
		return appendUintPadded(b, uint64(-ts), timestampWidth-1)
	}
	return appendUintPadded(b, uint64(ts), timestampWidth)
}

func appendUintPadded(b []byte, v uint64, width int) []byte {
	var tmp [20]byte
	i := len(tmp)
	for {
		i--
		tmp[i] = '0' + byte(v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	for pad := width - (len(tmp) - i); pad > 0; pad-- {
		b = append(b, '0')
	}
	return append(b, tmp[i:]...)
}

// Fields encodes the measurement payload as the record's value fields.
func (m Measurement) Fields() store.Fields {
	return store.Fields{
		[]byte(fmt.Sprintf("%g", m.Value)),
		[]byte(fmt.Sprintf("%g", m.Min)),
		[]byte(fmt.Sprintf("%g", m.Max)),
		[]byte(strconv.FormatInt(m.Timestamp, 10)),
		[]byte(strconv.FormatInt(m.Duration, 10)),
	}
}

// Decode reconstructs a measurement from its key and a view of its fields
// (a record read or scanned back from a store; use store.ViewFields to
// decode a hand-built field set).
func Decode(key string, f store.FieldsView) (Measurement, error) {
	sep := strings.LastIndexByte(key, '|')
	if sep < 0 || f.Len() < 5 {
		return Measurement{}, fmt.Errorf("apm: malformed record %q (%d fields)", key, f.Len())
	}
	var m Measurement
	m.Metric = key[:sep]
	var err error
	if m.Value, err = strconv.ParseFloat(string(f.Field(0)), 64); err != nil {
		return Measurement{}, fmt.Errorf("apm: bad value in %q: %w", key, err)
	}
	if m.Min, err = strconv.ParseFloat(string(f.Field(1)), 64); err != nil {
		return Measurement{}, fmt.Errorf("apm: bad min in %q: %w", key, err)
	}
	if m.Max, err = strconv.ParseFloat(string(f.Field(2)), 64); err != nil {
		return Measurement{}, fmt.Errorf("apm: bad max in %q: %w", key, err)
	}
	if m.Timestamp, err = strconv.ParseInt(string(f.Field(3)), 10, 64); err != nil {
		return Measurement{}, fmt.Errorf("apm: bad timestamp in %q: %w", key, err)
	}
	if m.Duration, err = strconv.ParseInt(string(f.Field(4)), 10, 64); err != nil {
		return Measurement{}, fmt.Errorf("apm: bad duration in %q: %w", key, err)
	}
	return m, nil
}

// Agent simulates a monitoring agent reporting a set of metrics every
// Interval seconds (§2: agents aggregate events over fixed intervals).
type Agent struct {
	Host     string
	Metrics  []string // metric names relative to the host
	Interval int64    // seconds

	walk map[string]float64
}

// NewAgent creates an agent with n synthetic metrics.
func NewAgent(host string, n int, interval int64) *Agent {
	a := &Agent{Host: host, Interval: interval, walk: map[string]float64{}}
	kinds := []string{"AverageResponseTime", "ConnectionCount", "CPUUtilization", "ErrorRate", "HeapUsage"}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("%s/Agent/Component%03d/%s", host, i/len(kinds), kinds[i%len(kinds)])
		a.Metrics = append(a.Metrics, name)
		a.walk[name] = 50 // start mid-range so the walk moves freely
	}
	return a
}

// Report produces the agent's measurements for the interval ending at ts.
// Values follow a bounded random walk driven by rnd (a uniform [0,1) draw
// per metric keeps the agent deterministic under the simulation's seed).
func (a *Agent) Report(ts int64, rnd func() float64) []Measurement {
	out := make([]Measurement, 0, len(a.Metrics))
	for _, metric := range a.Metrics {
		v := a.walk[metric] + (rnd()-0.5)*10
		if v < 0 {
			v = 0
		}
		a.walk[metric] = v
		out = append(out, Measurement{
			Metric:    metric,
			Value:     v,
			Min:       v * 0.8,
			Max:       v * 1.25,
			Timestamp: ts,
			Duration:  a.Interval,
		})
	}
	return out
}

// WindowStats aggregates a metric's measurements in [from, to] using a
// store scan: the "maximum number of connections on host X within the last
// 10 minutes" query class of §2.
type WindowStats struct {
	Count int
	Avg   float64
	Min   float64
	Max   float64
}

// Window scans one metric's time range and aggregates it.
//
// Use an order-preserving store (HBase's range-partitioned regions, or a
// single-node B-tree store) for window queries: hash-partitioned stores
// (Cassandra's RandomPartitioner, sharded Redis/MySQL) return node-local
// samples for range scans, so windows over them may under-count — the same
// trade-off the paper's scan discussion surfaces (§4.2, §5.4).
func Window(p *sim.Proc, s store.Store, metric string, from, to int64) (WindowStats, error) {
	start := Measurement{Metric: metric, Timestamp: from}.Key()
	var st WindowStats
	var sum float64
	first := true
	for {
		// One page per scan RPC (the classic paginated range read); each
		// page is drained via its cursor, charging exactly what the
		// materialized per-page scan charged.
		recs, err := store.ScanAll(p, s, start, 60)
		if err != nil {
			return WindowStats{}, err
		}
		if len(recs) == 0 {
			break
		}
		done := false
		for _, r := range recs {
			m, err := Decode(r.Key, r.Fields)
			if err != nil || m.Metric != metric || m.Timestamp > to {
				done = true
				break
			}
			st.Count++
			sum += m.Value
			if first || m.Min < st.Min {
				st.Min = m.Min
			}
			if first || m.Max > st.Max {
				st.Max = m.Max
			}
			first = false
		}
		if done || len(recs) < 60 {
			break
		}
		start = recs[len(recs)-1].Key + "\x00"
	}
	if st.Count > 0 {
		st.Avg = sum / float64(st.Count)
	}
	return st, nil
}

// GroupAvg aggregates the same metric kind across multiple hosts: the
// "average CPU utilization of Web servers of type Y" query class of §2.
func GroupAvg(p *sim.Proc, s store.Store, metrics []string, from, to int64) (float64, int, error) {
	var sum float64
	var n int
	for _, m := range metrics {
		st, err := Window(p, s, m, from, to)
		if err != nil {
			return 0, 0, err
		}
		sum += st.Avg * float64(st.Count)
		n += st.Count
	}
	if n == 0 {
		return 0, 0, nil
	}
	return sum / float64(n), n, nil
}

// IngestRate computes the paper's sizing arithmetic (§1, §8): hosts
// reporting metricsPerHost measurements every intervalSec seconds.
func IngestRate(hosts, metricsPerHost int, intervalSec int64) float64 {
	if intervalSec <= 0 {
		return 0
	}
	return float64(hosts) * float64(metricsPerHost) / float64(intervalSec)
}

// StorageNodesNeeded sizes a storage tier: measurements/sec divided by a
// store's per-node Workload W throughput, respecting the paper's rule that
// at most budgetFraction of the monitored fleet may be storage nodes.
func StorageNodesNeeded(ingestPerSec, perNodeThroughput float64, hosts int, budgetFraction float64) (nodes int, withinBudget bool) {
	if perNodeThroughput <= 0 {
		return 0, false
	}
	nodes = int(ingestPerSec/perNodeThroughput) + 1
	budget := int(float64(hosts) * budgetFraction)
	return nodes, nodes <= budget
}

// MonitoringLevel selects an agent's reporting detail (§3: "current APM
// tools make it possible to define different monitoring levels ... that
// result in different data rates").
type MonitoringLevel int

// Monitoring levels, in increasing data-rate order.
const (
	// Basic reports a coarse subset of metrics.
	Basic MonitoringLevel = iota
	// TransactionTrace adds per-transaction metrics.
	TransactionTrace
	// IncidentTriage reports everything the agent can observe.
	IncidentTriage
)

// MetricFraction returns the share of an agent's metric catalog reported at
// this level.
func (l MonitoringLevel) MetricFraction() float64 {
	switch l {
	case Basic:
		return 0.1
	case TransactionTrace:
		return 0.5
	default:
		return 1.0
	}
}

// ReportAt produces the measurements for the interval ending at ts at the
// given monitoring level: a deterministic prefix of the metric catalog.
func (a *Agent) ReportAt(ts int64, level MonitoringLevel, rnd func() float64) []Measurement {
	all := a.Report(ts, rnd)
	n := int(float64(len(all)) * level.MetricFraction())
	if n < 1 {
		n = 1
	}
	if n > len(all) {
		n = len(all)
	}
	return all[:n]
}
