package apm

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/stores/hbase"
)

func TestKeyOrderedByTimestamp(t *testing.T) {
	a := Measurement{Metric: "HostA/x", Timestamp: 100}.Key()
	b := Measurement{Metric: "HostA/x", Timestamp: 99}.Key()
	c := Measurement{Metric: "HostA/x", Timestamp: 1000}.Key()
	if !(b < a && a < c) {
		t.Fatalf("keys not time ordered: %q %q %q", b, a, c)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := Measurement{
		Metric: "HostA/AgentX/ServletB/AverageResponseTime",
		Value:  4, Min: 1, Max: 6, Timestamp: 1332988833, Duration: 15,
	}
	got, err := Decode(m.Key(), store.ViewFields(m.Fields()))
	if err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Fatalf("round trip: got %+v, want %+v", got, m)
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	if _, err := Decode("nopipe", store.ViewFields(store.Fields{[]byte("1")})); err == nil {
		t.Fatal("accepted key without separator")
	}
	m := Measurement{Metric: "a/b", Timestamp: 5}
	f := m.Fields()
	f[0] = []byte("notanumber")
	if _, err := Decode(m.Key(), store.ViewFields(f)); err == nil {
		t.Fatal("accepted non-numeric value")
	}
}

func TestAgentReportsAllMetricsEachInterval(t *testing.T) {
	a := NewAgent("Host7", 50, 10)
	rng := rand.New(rand.NewSource(1))
	ms := a.Report(1000, rng.Float64)
	if len(ms) != 50 {
		t.Fatalf("reported %d measurements, want 50", len(ms))
	}
	seen := map[string]bool{}
	for _, m := range ms {
		if m.Timestamp != 1000 || m.Duration != 10 {
			t.Fatalf("bad timestamp/duration: %+v", m)
		}
		if m.Min > m.Value || m.Max < m.Value {
			t.Fatalf("min/max do not bracket value: %+v", m)
		}
		if seen[m.Metric] {
			t.Fatalf("duplicate metric %s", m.Metric)
		}
		seen[m.Metric] = true
	}
}

func TestAgentWalkEvolves(t *testing.T) {
	a := NewAgent("H", 1, 10)
	rng := rand.New(rand.NewSource(2))
	v1 := a.Report(10, rng.Float64)[0].Value
	v2 := a.Report(20, rng.Float64)[0].Value
	v3 := a.Report(30, rng.Float64)[0].Value
	if v1 == v2 && v2 == v3 {
		t.Fatal("random walk did not move")
	}
}

func TestWindowAggregatesOverStore(t *testing.T) {
	e := sim.NewEngine(1)
	c := cluster.New(e, cluster.ClusterM(2).Scale(0.01))
	s := hbase.New(c, hbase.Options{MemstoreFlushBytes: 64 << 10})
	metric := "HostA/Agent/Component000/ConnectionCount"
	// 60 samples at 10s resolution (the paper's 10-minute scan window).
	for i := int64(0); i < 60; i++ {
		m := Measurement{Metric: metric, Value: float64(i), Min: float64(i), Max: float64(i),
			Timestamp: 1000 + i*10, Duration: 10}
		if err := s.Load(m.Key(), m.Fields()); err != nil {
			t.Fatal(err)
		}
	}
	// Another metric that must not leak into the window.
	other := Measurement{Metric: "HostB/Agent/Component000/ConnectionCount",
		Value: 1e9, Max: 1e9, Timestamp: 1200, Duration: 10}
	s.Load(other.Key(), other.Fields())

	e.Go("q", func(p *sim.Proc) {
		st, err := Window(p, s, metric, 1000, 1590)
		if err != nil {
			t.Errorf("window: %v", err)
			return
		}
		if st.Count != 60 {
			t.Errorf("count = %d, want 60 (ten minutes at 10s resolution)", st.Count)
		}
		if st.Max != 59 {
			t.Errorf("max = %f, want 59", st.Max)
		}
		if st.Avg < 29 || st.Avg > 30 {
			t.Errorf("avg = %f, want 29.5", st.Avg)
		}
	})
	e.Run(0)
}

func TestWindowRespectsBounds(t *testing.T) {
	e := sim.NewEngine(1)
	c := cluster.New(e, cluster.ClusterM(1).Scale(0.01))
	s := hbase.New(c, hbase.Options{MemstoreFlushBytes: 64 << 10})
	metric := "H/x"
	for i := int64(0); i < 100; i++ {
		m := Measurement{Metric: metric, Value: 1, Timestamp: i * 10, Duration: 10}
		s.Load(m.Key(), m.Fields())
	}
	e.Go("q", func(p *sim.Proc) {
		st, err := Window(p, s, metric, 200, 390)
		if err != nil {
			t.Errorf("window: %v", err)
			return
		}
		if st.Count != 20 {
			t.Errorf("count = %d, want 20 (only in-range samples)", st.Count)
		}
	})
	e.Run(0)
}

func TestGroupAvgAcrossHosts(t *testing.T) {
	e := sim.NewEngine(1)
	c := cluster.New(e, cluster.ClusterM(2).Scale(0.01))
	s := hbase.New(c, hbase.Options{MemstoreFlushBytes: 64 << 10})
	metrics := []string{"Web1/CPU", "Web2/CPU"}
	for i, metric := range metrics {
		for ts := int64(0); ts < 100; ts += 10 {
			m := Measurement{Metric: metric, Value: float64(10 * (i + 1)), Timestamp: ts, Duration: 10}
			s.Load(m.Key(), m.Fields())
		}
	}
	e.Go("q", func(p *sim.Proc) {
		avg, n, err := GroupAvg(p, s, metrics, 0, 95)
		if err != nil {
			t.Errorf("group avg: %v", err)
			return
		}
		if n != 20 {
			t.Errorf("n = %d, want 20", n)
		}
		if avg != 15 {
			t.Errorf("avg = %f, want 15 (mean of 10 and 20)", avg)
		}
	})
	e.Run(0)
}

func TestIngestRateMatchesPaperScenario(t *testing.T) {
	// §1: 10K nodes x 10K metrics / 10s = 10M measurements/sec.
	if got := IngestRate(10000, 10000, 10); got != 10_000_000 {
		t.Fatalf("ingest = %f, want 10M/s", got)
	}
	// §8: 240 monitored nodes -> 240K inserts/sec.
	if got := IngestRate(240, 10000, 10); got != 240_000 {
		t.Fatalf("ingest = %f, want 240K/s", got)
	}
}

func TestStorageNodesNeeded(t *testing.T) {
	// §8: 240K inserts/s against a store that sustains ~20K/node needs 13
	// nodes; the 5% budget for 240 hosts is 12 -> not within budget.
	nodes, ok := StorageNodesNeeded(240_000, 20_000, 240, 0.05)
	if nodes != 13 || ok {
		t.Fatalf("nodes = %d ok = %v, want 13 over budget (paper's conclusion)", nodes, ok)
	}
	if _, ok := StorageNodesNeeded(100, 0, 10, 0.05); ok {
		t.Fatal("zero throughput cannot be within budget")
	}
}

// Property: encode/decode round-trips arbitrary measurements.
func TestPropertyRoundTrip(t *testing.T) {
	f := func(val, min, max float64, ts uint32, dur uint16) bool {
		m := Measurement{Metric: "Host/A/B/Metric", Value: val, Min: min, Max: max,
			Timestamp: int64(ts), Duration: int64(dur)}
		got, err := Decode(m.Key(), store.ViewFields(m.Fields()))
		return err == nil && got == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMonitoringLevelsScaleDataRate(t *testing.T) {
	a := NewAgent("H", 100, 10)
	rng := rand.New(rand.NewSource(3))
	basic := a.ReportAt(10, Basic, rng.Float64)
	trace := a.ReportAt(20, TransactionTrace, rng.Float64)
	triage := a.ReportAt(30, IncidentTriage, rng.Float64)
	if len(basic) != 10 || len(trace) != 50 || len(triage) != 100 {
		t.Fatalf("levels = %d/%d/%d, want 10/50/100", len(basic), len(trace), len(triage))
	}
}

func TestMonitoringLevelMinimumOneMetric(t *testing.T) {
	a := NewAgent("H", 3, 10)
	rng := rand.New(rand.NewSource(4))
	if got := a.ReportAt(10, Basic, rng.Float64); len(got) != 1 {
		t.Fatalf("basic on 3 metrics = %d, want floor of 1", len(got))
	}
}

func TestKeyMatchesReferenceFormat(t *testing.T) {
	// The buffer-built key must reproduce the historical
	// fmt.Sprintf("%s|%012d", metric, ts) format exactly, including
	// negative and extra-wide timestamps.
	metrics := []string{"", "HostA/Agent/Component007/HeapUsage", "m|with|pipes"}
	stamps := []int64{0, 1, 999, 1_700_000_000, 999_999_999_999, 1_000_000_000_000, 12_345_678_901_234, -1, -42}
	for _, m := range metrics {
		for _, ts := range stamps {
			want := fmt.Sprintf("%s|%012d", m, ts)
			got := Measurement{Metric: m, Timestamp: ts}.Key()
			if got != want {
				t.Fatalf("Key(%q, %d) = %q, want %q", m, ts, got, want)
			}
		}
	}
}

// BenchmarkMeasurementKey pins the allocation win of the fmt-free key
// builder on the ingest hot path (was fmt.Sprintf with boxed args: 3
// allocs/op and ~190 ns; now one sized buffer and its string conversion).
func BenchmarkMeasurementKey(b *testing.B) {
	m := Measurement{Metric: "HostA/Agent/Component007/AverageResponseTime", Timestamp: 1_700_000_000}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Timestamp++
		if len(m.Key()) == 0 {
			b.Fatal("empty key")
		}
	}
}
