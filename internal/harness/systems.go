// Package harness defines the paper's experiments: it deploys each store on
// a simulated cluster, drives the YCSB workloads against it, and regenerates
// every figure and table of the evaluation section (Figs 3–20, Table 1).
//
// Scaling: record counts and node RAM/disk are multiplied by Config.Scale
// (default 1/100), preserving the dataset-to-memory ratios that make
// Cluster M memory-bound and Cluster D disk-bound. Disk usage results are
// divided by Scale again so Fig 17 reports paper-scale gigabytes.
package harness

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/stores/cassandra"
	"repro/internal/stores/hbase"
	"repro/internal/stores/mysql"
	"repro/internal/stores/redis"
	"repro/internal/stores/voldemort"
	"repro/internal/stores/voltdb"
	"repro/internal/ycsb"
)

// System names one of the six benchmarked stores.
type System string

// The benchmarked systems.
const (
	Cassandra System = "cassandra"
	HBase     System = "hbase"
	Voldemort System = "voldemort"
	Redis     System = "redis"
	VoltDB    System = "voltdb"
	MySQL     System = "mysql"
)

// AllSystems lists every system in the paper's plotting order.
var AllSystems = []System{Cassandra, HBase, Voldemort, VoltDB, Redis, MySQL}

// ScanSystems is AllSystems minus Voldemort, whose YCSB client had no scan
// support (§5.4).
var ScanSystems = []System{Cassandra, HBase, VoltDB, Redis, MySQL}

// DiskSystems are the systems with on-disk footprints (Fig 17 excludes the
// in-memory Redis and VoltDB).
var DiskSystems = []System{Cassandra, HBase, Voldemort, MySQL}

// ClusterDSystems are the systems evaluated on the disk-bound cluster
// (§5.8: Redis and VoltDB cannot spill to disk; MySQL was omitted for
// cluster availability).
var ClusterDSystems = []System{Cassandra, HBase, Voldemort}

// Deployment is a deployed store plus its cluster.
type Deployment struct {
	Engine *sim.Engine
	Clust  *cluster.Cluster
	Store  store.Store
}

// Deploy builds a cluster from spec (hardware scaled by scale) and deploys
// the system on it with scale-adjusted engine thresholds.
func Deploy(seed int64, sys System, spec cluster.Spec, scale float64) (*Deployment, error) {
	return DeployVariants(seed, sys, spec, scale, "")
}

// Variant vocabulary: a cell's Variants field is an ordered comma-separated
// list of key=value tuning options resolved against the system's deployment
// defaults. Unknown keys or values for the target system are errors, so a
// scenario cannot silently benchmark the default configuration. Supported:
//
//	cassandra: tokens=random|optimal, commitlog=off|<ms>,
//	           replication=<n>, consistency=one|all|<n>,
//	           compression=on|off, compaction-threshold=<n>
//	hbase:     autoflush=on|off, compaction-threshold=<n>, batch-size=<n>
//	redis:     sharding=balanced|ring
//	voltdb:    async=on|off, sites-per-host=<n>
//	mysql:     binlog=on|off, btree-bulk=on|off
//	voldemort: btree-bulk=on|off
//	any:       conns=<per-node client connections> (resolved by the
//	           runner, not the store)
//
// btree-bulk=off forces the B-tree stores' legacy per-record load path in
// place of the deferred bulk build (host-side A/B profiling knob; both
// paths produce bit-identical trees, pool states and charges, so the
// variant changes the cell's cache key but never its numbers).
//
// compaction-threshold=<n> sets the LSM stores' size-tiered compaction
// trigger — sstables per tier before a merge (Cassandra's
// min_compaction_threshold, HBase's hbase.hstore.compactionThreshold; the
// paper's default is 4, and n must be at least 2). Lower values compact
// eagerly (fewer runs to read, more write amplification); higher values
// let tiers grow.
//
// batch-size=<n> sets HBase's client write buffer in records (the paper's
// deferred-autoflush batching; n must be at least 1, default 128): every
// n-th put pays the flush RPC, so smaller buffers trade throughput for
// freshness. It only matters with autoflush off (the default), where the
// client batches; with autoflush=on every put is its own RPC regardless.
//
// sites-per-host=<n> sets VoltDB's single-threaded partition count per
// host (the paper's sites_per_host, default 6; n must be at least 1).
// It moves the partition ring, so keys hash to different sites and
// multi-partition fan-out spreads across a different executor count.
//
// An empty Variants string is the paper's configuration; such cells share
// cache entries (and seeds) with the corresponding figure cells.

// parseVariants splits "k1=v1,k2=v2" into ordered pairs.
func parseVariants(s string) ([][2]string, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([][2]string, 0, len(parts))
	for _, part := range parts {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || k == "" || v == "" {
			return nil, fmt.Errorf("harness: malformed variant %q (want key=value)", part)
		}
		out = append(out, [2]string{k, v})
	}
	return out, nil
}

// variantInt extracts an integer-valued variant by key.
func variantInt(variants, key string) (int, bool, error) {
	kvs, err := parseVariants(variants)
	if err != nil {
		return 0, false, err
	}
	for _, kv := range kvs {
		if kv[0] != key {
			continue
		}
		n, err := strconv.Atoi(kv[1])
		if err != nil || n <= 0 {
			return 0, false, fmt.Errorf("harness: variant %s=%s is not a positive integer", key, kv[1])
		}
		return n, true, nil
	}
	return 0, false, nil
}

// onOff parses an on/off variant value.
func onOff(key, v string) (bool, error) {
	switch v {
	case "on":
		return true, nil
	case "off":
		return false, nil
	}
	return false, fmt.Errorf("harness: variant %s=%s: want on or off", key, v)
}

// DeployVariants is Deploy with declarative key=value tuning options (see
// the variant vocabulary above) resolved into the system's deployment
// options. This is the single construction path for every experiment cell:
// figures (empty variants), ablations, and user scenarios.
func DeployVariants(seed int64, sys System, spec cluster.Spec, scale float64, variants string) (*Deployment, error) {
	kvs, err := parseVariants(variants)
	if err != nil {
		return nil, err
	}
	// conns is harness-scope (client-side connection count): the runner
	// sizes the simulated client pool from it, and only MySQL's model
	// consumes it server-side (per-connection thread overhead).
	clients := 0
	storeKVs := kvs[:0:0]
	for _, kv := range kvs {
		if kv[0] == "conns" {
			perNode, _, err := variantInt(variants, "conns")
			if err != nil {
				return nil, err
			}
			clients = perNode * spec.Nodes
			continue
		}
		storeKVs = append(storeKVs, kv)
	}
	e := sim.NewEngine(seed)
	c := cluster.New(e, spec.Scale(scale))
	var s store.Store
	switch sys {
	case Cassandra:
		s, err = deployCassandra(c, scale, storeKVs)
	case HBase:
		s, err = deployHBase(c, scale, storeKVs)
	case Voldemort:
		s, err = deployVoldemort(c, storeKVs)
	case Redis:
		s, err = deployRedis(c, scale, storeKVs)
	case VoltDB:
		s, err = deployVoltDB(c, storeKVs)
	case MySQL:
		s, err = deployMySQL(c, spec, scale, clients, storeKVs)
	default:
		return nil, fmt.Errorf("harness: unknown system %q", sys)
	}
	if err != nil {
		return nil, err
	}
	return &Deployment{Engine: e, Clust: c, Store: s}, nil
}

func deployCassandra(c *cluster.Cluster, scale float64, kvs [][2]string) (store.Store, error) {
	opts := cassandra.Options{MemtableFlushBytes: scaleBytes(16<<20, scale)}
	consistency := ""
	for _, kv := range kvs {
		k, v := kv[0], kv[1]
		switch k {
		case "tokens":
			switch v {
			case "random":
				opts.RandomTokens = true
			case "optimal":
				opts.RandomTokens = false
			default:
				return nil, fmt.Errorf("harness: cassandra variant tokens=%s: want random or optimal", v)
			}
		case "commitlog":
			if v == "off" {
				// Periodic mode: writers acknowledge before the group
				// commit syncs instead of waiting out the batch window.
				opts.CommitLogPeriodic = true
				continue
			}
			ms, err := strconv.Atoi(v)
			if err != nil || ms <= 0 {
				return nil, fmt.Errorf("harness: cassandra variant commitlog=%s: want off or a batch window in ms", v)
			}
			opts.CommitLogWindow = sim.Time(ms) * sim.Millisecond
		case "replication":
			rf, err := strconv.Atoi(v)
			if err != nil || rf < 1 {
				return nil, fmt.Errorf("harness: cassandra variant replication=%s: want a positive factor", v)
			}
			opts.ReplicationFactor = rf
		case "consistency":
			consistency = v
		case "compression":
			on, err := onOff(k, v)
			if err != nil {
				return nil, err
			}
			opts.Compression = on
		case "compaction-threshold":
			n, err := strconv.Atoi(v)
			if err != nil || n < 2 {
				return nil, fmt.Errorf("harness: cassandra variant compaction-threshold=%s: want an integer >= 2", v)
			}
			opts.CompactMin = n
		default:
			return nil, fmt.Errorf("harness: cassandra does not support variant %q", k)
		}
	}
	if consistency != "" {
		rf := opts.ReplicationFactor
		if rf == 0 {
			rf = 1
		}
		switch consistency {
		case "one":
			opts.WriteConsistency = 1
		case "all":
			opts.WriteConsistency = rf
		default:
			cl, err := strconv.Atoi(consistency)
			if err != nil || cl < 1 || cl > rf {
				return nil, fmt.Errorf("harness: cassandra variant consistency=%s: want one, all, or 1..replication", consistency)
			}
			opts.WriteConsistency = cl
		}
	}
	return cassandra.New(c, opts), nil
}

func deployHBase(c *cluster.Cluster, scale float64, kvs [][2]string) (store.Store, error) {
	opts := hbase.Options{MemstoreFlushBytes: scaleBytes(16<<20, scale)}
	for _, kv := range kvs {
		switch kv[0] {
		case "autoflush":
			on, err := onOff(kv[0], kv[1])
			if err != nil {
				return nil, err
			}
			opts.AutoFlush = on
		case "compaction-threshold":
			n, err := strconv.Atoi(kv[1])
			if err != nil || n < 2 {
				return nil, fmt.Errorf("harness: hbase variant compaction-threshold=%s: want an integer >= 2", kv[1])
			}
			opts.CompactMin = n
		case "batch-size":
			n, err := strconv.Atoi(kv[1])
			if err != nil || n < 1 {
				return nil, fmt.Errorf("harness: hbase variant batch-size=%s: want an integer >= 1", kv[1])
			}
			opts.BatchRecords = n
		default:
			return nil, fmt.Errorf("harness: hbase does not support variant %q", kv[0])
		}
	}
	return hbase.New(c, opts), nil
}

func deployVoldemort(c *cluster.Cluster, kvs [][2]string) (store.Store, error) {
	opts := voldemort.Options{BDBCacheFraction: 0.75}
	for _, kv := range kvs {
		switch kv[0] {
		case "btree-bulk":
			on, err := onOff(kv[0], kv[1])
			if err != nil {
				return nil, err
			}
			opts.LegacyLoad = !on
		default:
			return nil, fmt.Errorf("harness: voldemort does not support variant %q", kv[0])
		}
	}
	return voldemort.New(c, opts), nil
}

func deployRedis(c *cluster.Cluster, scale float64, kvs [][2]string) (store.Store, error) {
	opts := redis.Options{MemScale: scale}
	for _, kv := range kvs {
		switch kv[0] {
		case "sharding":
			switch kv[1] {
			case "balanced":
				opts.Balanced = true
			case "ring":
				opts.Balanced = false
			default:
				return nil, fmt.Errorf("harness: redis variant sharding=%s: want balanced or ring", kv[1])
			}
		default:
			return nil, fmt.Errorf("harness: redis does not support variant %q", kv[0])
		}
	}
	return redis.New(c, opts), nil
}

func deployVoltDB(c *cluster.Cluster, kvs [][2]string) (store.Store, error) {
	opts := voltdb.Options{}
	for _, kv := range kvs {
		switch kv[0] {
		case "async":
			on, err := onOff(kv[0], kv[1])
			if err != nil {
				return nil, err
			}
			opts.Async = on
		case "sites-per-host":
			n, err := strconv.Atoi(kv[1])
			if err != nil || n < 1 {
				return nil, fmt.Errorf("harness: voltdb variant sites-per-host=%s: want an integer >= 1", kv[1])
			}
			opts.SitesPerHost = n
		default:
			return nil, fmt.Errorf("harness: voltdb does not support variant %q", kv[0])
		}
	}
	return voltdb.New(c, opts), nil
}

func deployMySQL(c *cluster.Cluster, spec cluster.Spec, scale float64, clients int, kvs [][2]string) (store.Store, error) {
	if clients == 0 {
		clients = Conns(MySQL, spec.Nodes, false)
	}
	opts := mysql.Options{
		BinLog: true,
		// ClientThreads drives the model's per-connection server
		// overhead; it must track the actual simulated client count,
		// including a conns= variant override.
		ClientThreads: clients,
		ScaleComp:     1 / scale,
	}
	for _, kv := range kvs {
		switch kv[0] {
		case "binlog":
			on, err := onOff(kv[0], kv[1])
			if err != nil {
				return nil, err
			}
			opts.BinLog = on
		case "btree-bulk":
			on, err := onOff(kv[0], kv[1])
			if err != nil {
				return nil, err
			}
			opts.LegacyLoad = !on
		default:
			return nil, fmt.Errorf("harness: mysql does not support variant %q", kv[0])
		}
	}
	return mysql.New(c, opts), nil
}

func scaleBytes(b int64, scale float64) int64 {
	v := int64(float64(b) * scale)
	if v < 4<<10 {
		v = 4 << 10
	}
	return v
}

// Conns returns the connection count for a system on a cluster, encoding
// the paper's client tuning (§3, §6):
//
//   - 128 connections per server node on Cluster M, 8 per node (2 per core)
//     on Cluster D for Cassandra, HBase and VoltDB;
//   - Voldemort's client pool was tuned down hard, bounding in-flight
//     requests per node;
//   - the Redis and MySQL sharded clients needed fewer threads per client
//     as node counts grew ("we were forced to use a smaller number of
//     threads"), which is also why their latencies fall with scale.
func Conns(sys System, nodes int, clusterD bool) int {
	if clusterD {
		return 8 * nodes
	}
	switch sys {
	case Voldemort:
		return 3 * nodes
	case Redis:
		return 128 + 16*(nodes-1)
	case MySQL:
		return 128 + 40*(nodes-1)
	default:
		return 128 * nodes
	}
}

// SupportsScans reports whether the system's client can run scan workloads
// (the paper's Voldemort YCSB client had no scan support, §5.4).
func SupportsScans(sys System) bool { return sys != Voldemort }

// SupportsQueries reports whether the system can serve the analytic query
// layer (internal/query): its operator pipeline reads through the cursor
// scan path, so exactly the scan-capable systems qualify.
func SupportsQueries(sys System) bool { return SupportsScans(sys) }

// SupportsUpdates reports whether the system's model covers in-place
// updates: since the B-tree stores gained modeled read-modify-write paths,
// all six systems do. The LSM stores (Cassandra, HBase) physically upsert,
// the in-memory stores (Redis, VoltDB) overwrite, and the B-tree stores
// (MySQL, Voldemort) charge an index descent plus an in-place leaf rewrite
// with redo/binlog (MySQL, which also grows its MVCC undo backlog) or WAL
// (Voldemort) appends — distinct from their insert paths, which allocate
// and split pages. The predicate is retained as the single point the
// support matrix, scenario gate, and tests read.
func SupportsUpdates(sys System) bool { return true }

// SupportsWorkload reports whether the system can run the workload mix
// (scan mixes exclude Voldemort; update mixes run on all six systems now
// that the B-tree stores model read-modify-write updates).
func SupportsWorkload(sys System, wl ycsb.Workload) bool {
	if wl.HasScans() && !SupportsScans(sys) {
		return false
	}
	if wl.HasUpdates() && !SupportsUpdates(sys) {
		return false
	}
	return true
}
