// Package harness defines the paper's experiments: it deploys each store on
// a simulated cluster, drives the YCSB workloads against it, and regenerates
// every figure and table of the evaluation section (Figs 3–20, Table 1).
//
// Scaling: record counts and node RAM/disk are multiplied by Config.Scale
// (default 1/100), preserving the dataset-to-memory ratios that make
// Cluster M memory-bound and Cluster D disk-bound. Disk usage results are
// divided by Scale again so Fig 17 reports paper-scale gigabytes.
package harness

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/stores/cassandra"
	"repro/internal/stores/hbase"
	"repro/internal/stores/mysql"
	"repro/internal/stores/redis"
	"repro/internal/stores/voldemort"
	"repro/internal/stores/voltdb"
)

// System names one of the six benchmarked stores.
type System string

// The benchmarked systems.
const (
	Cassandra System = "cassandra"
	HBase     System = "hbase"
	Voldemort System = "voldemort"
	Redis     System = "redis"
	VoltDB    System = "voltdb"
	MySQL     System = "mysql"
)

// AllSystems lists every system in the paper's plotting order.
var AllSystems = []System{Cassandra, HBase, Voldemort, VoltDB, Redis, MySQL}

// ScanSystems is AllSystems minus Voldemort, whose YCSB client had no scan
// support (§5.4).
var ScanSystems = []System{Cassandra, HBase, VoltDB, Redis, MySQL}

// DiskSystems are the systems with on-disk footprints (Fig 17 excludes the
// in-memory Redis and VoltDB).
var DiskSystems = []System{Cassandra, HBase, Voldemort, MySQL}

// ClusterDSystems are the systems evaluated on the disk-bound cluster
// (§5.8: Redis and VoltDB cannot spill to disk; MySQL was omitted for
// cluster availability).
var ClusterDSystems = []System{Cassandra, HBase, Voldemort}

// Deployment is a deployed store plus its cluster.
type Deployment struct {
	Engine *sim.Engine
	Clust  *cluster.Cluster
	Store  store.Store
}

// Deploy builds a cluster from spec (hardware scaled by scale) and deploys
// the system on it with scale-adjusted engine thresholds.
func Deploy(seed int64, sys System, spec cluster.Spec, scale float64) (*Deployment, error) {
	e := sim.NewEngine(seed)
	c := cluster.New(e, spec.Scale(scale))
	var s store.Store
	switch sys {
	case Cassandra:
		s = cassandra.New(c, cassandra.Options{
			MemtableFlushBytes: scaleBytes(16<<20, scale),
		})
	case HBase:
		s = hbase.New(c, hbase.Options{
			MemstoreFlushBytes: scaleBytes(16<<20, scale),
		})
	case Voldemort:
		s = voldemort.New(c, voldemort.Options{BDBCacheFraction: 0.75})
	case Redis:
		s = redis.New(c, redis.Options{MemScale: scale})
	case VoltDB:
		s = voltdb.New(c, voltdb.Options{})
	case MySQL:
		s = mysql.New(c, mysql.Options{
			BinLog:        true,
			ClientThreads: Conns(MySQL, spec.Nodes, false),
			ScaleComp:     1 / scale,
		})
	default:
		return nil, fmt.Errorf("harness: unknown system %q", sys)
	}
	return &Deployment{Engine: e, Clust: c, Store: s}, nil
}

func scaleBytes(b int64, scale float64) int64 {
	v := int64(float64(b) * scale)
	if v < 4<<10 {
		v = 4 << 10
	}
	return v
}

// Conns returns the connection count for a system on a cluster, encoding
// the paper's client tuning (§3, §6):
//
//   - 128 connections per server node on Cluster M, 8 per node (2 per core)
//     on Cluster D for Cassandra, HBase and VoltDB;
//   - Voldemort's client pool was tuned down hard, bounding in-flight
//     requests per node;
//   - the Redis and MySQL sharded clients needed fewer threads per client
//     as node counts grew ("we were forced to use a smaller number of
//     threads"), which is also why their latencies fall with scale.
func Conns(sys System, nodes int, clusterD bool) int {
	if clusterD {
		return 8 * nodes
	}
	switch sys {
	case Voldemort:
		return 3 * nodes
	case Redis:
		return 128 + 16*(nodes-1)
	case MySQL:
		return 128 + 40*(nodes-1)
	default:
		return 128 * nodes
	}
}

// SupportsWorkload reports whether the system can run the workload (scan
// workloads exclude Voldemort).
func SupportsWorkload(sys System, hasScans bool) bool {
	return !hasScans || sys != Voldemort
}
