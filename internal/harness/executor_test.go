package harness

import (
	"strings"
	"sync"
	"testing"
)

// mapCache is an in-memory ResultCache for plumbing tests.
type mapCache struct {
	mu   sync.Mutex
	m    map[string]CellResult
	gets int
	puts int
}

func newMapCache() *mapCache { return &mapCache{m: map[string]CellResult{}} }

func (c *mapCache) Get(key string) (CellResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gets++
	res, ok := c.m[key]
	return res, ok
}

func (c *mapCache) Put(key string, res CellResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.puts++
	c.m[key] = res
}

// countingExecutor wraps local measurement, counting dispatches.
type countingExecutor struct {
	r     *Runner
	mu    sync.Mutex
	cells []Cell
}

func (e *countingExecutor) ExecuteCell(c Cell) (CellResult, error) {
	e.mu.Lock()
	e.cells = append(e.cells, c)
	e.mu.Unlock()
	return e.r.measure(c, e.r.key(c))
}

// TestResultCachePlumbing pins the resolveCell contract: a cold run
// executes and fills the persistent cache; a fresh runner over the same
// cache executes nothing (Executed()==0, all hits) yet returns identical
// results; and the cache key carries the config fingerprint, so a runner
// with a different seed misses.
func TestResultCachePlumbing(t *testing.T) {
	cell := Cell{System: Redis, Nodes: 1, Workload: "R"}
	cache := newMapCache()

	cold := NewRunner(Quick())
	cold.Cache = cache
	want, err := cold.Run(cell)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Executed() != 1 || cold.CacheHits() != 0 {
		t.Fatalf("cold run: executed=%d hits=%d, want 1/0", cold.Executed(), cold.CacheHits())
	}
	if cache.puts != 1 {
		t.Fatalf("cold run put %d entries, want 1", cache.puts)
	}
	for key := range cache.m {
		if !strings.Contains(key, "|") || !strings.Contains(key, "seed=") {
			t.Fatalf("cache key %q missing config fingerprint", key)
		}
	}

	warm := NewRunner(Quick())
	warm.Cache = cache
	got, err := warm.Run(cell)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Executed() != 0 || warm.CacheHits() != 1 {
		t.Fatalf("warm run: executed=%d hits=%d, want 0/1", warm.Executed(), warm.CacheHits())
	}
	if got != want {
		t.Fatalf("warm result differs from cold:\n%+v\n%+v", got, want)
	}

	// A different experiment identity must not hit the same entries.
	cfg := Quick()
	cfg.Seed = 99
	other := NewRunner(cfg)
	other.Cache = cache
	if _, err := other.Run(cell); err != nil {
		t.Fatal(err)
	}
	if other.CacheHits() != 0 || other.Executed() != 1 {
		t.Fatalf("different-seed run: executed=%d hits=%d, want 1/0", other.Executed(), other.CacheHits())
	}
}

// TestExecutorDispatch pins that a configured Executor receives exactly the
// cells the runner could not serve from cache, and that its answers enter
// the in-memory cell cache like local measurements (second Run is free).
func TestExecutorDispatch(t *testing.T) {
	r := NewRunner(Quick())
	backend := NewRunner(Quick())
	exec := &countingExecutor{r: backend}
	r.Executor = exec

	cell := Cell{System: Redis, Nodes: 1, Workload: "RW"}
	res, err := r.Run(cell)
	if err != nil {
		t.Fatal(err)
	}
	if len(exec.cells) != 1 || exec.cells[0] != cell {
		t.Fatalf("executor saw cells %+v, want exactly the requested cell", exec.cells)
	}

	// Same cell again: served from the in-memory cache, not re-dispatched.
	again, err := r.Run(cell)
	if err != nil {
		t.Fatal(err)
	}
	if len(exec.cells) != 1 {
		t.Fatalf("second Run re-dispatched: executor saw %d cells", len(exec.cells))
	}
	if again != res {
		t.Fatal("cached result differs from executor result")
	}

	// The answer matches a purely local runner bit-for-bit (the farm's
	// merge-equivalence property in miniature).
	local, err := NewRunner(Quick()).Run(cell)
	if err != nil {
		t.Fatal(err)
	}
	if local != res {
		t.Fatalf("executor result differs from local:\n%+v\n%+v", res, local)
	}

	// Persistent cache beats the executor: with both set, a warm cache
	// means zero dispatches.
	cache := newMapCache()
	cache.Put(Quick().Fingerprint()+"|"+r.key(cell), res)
	r2 := NewRunner(Quick())
	r2.Executor = exec
	r2.Cache = cache
	if _, err := r2.Run(cell); err != nil {
		t.Fatal(err)
	}
	if len(exec.cells) != 1 {
		t.Fatal("warm cache still dispatched to executor")
	}
	if r2.Executed() != 0 || r2.CacheHits() != 1 {
		t.Fatalf("warm run with executor: executed=%d hits=%d, want 0/1", r2.Executed(), r2.CacheHits())
	}
}

// TestRunnerIsCellExecutor pins the local-fallback seam: a plain Runner
// satisfies CellExecutor, and ExecuteCell returns the same (cached,
// singleflighted) result as Run — so a farm coordinator can degrade to
// local execution through the exact interface workers implement.
func TestRunnerIsCellExecutor(t *testing.T) {
	var exec CellExecutor = NewRunner(Quick())
	cell := Cell{System: Redis, Nodes: 2, Workload: "W"}
	got, err := exec.ExecuteCell(cell)
	if err != nil {
		t.Fatal(err)
	}
	want, err := NewRunner(Quick()).Run(cell)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("ExecuteCell differs from Run:\n%+v\n%+v", got, want)
	}
	// ExecuteCell shares the in-memory cell cache with Run.
	r := exec.(*Runner)
	if again, _ := r.Run(cell); again != got {
		t.Fatal("Run after ExecuteCell re-measured or diverged")
	}
	if r.Executed() != 1 {
		t.Fatalf("executed %d cells across ExecuteCell+Run, want 1", r.Executed())
	}
}
