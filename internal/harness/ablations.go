package harness

import (
	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/stores/cassandra"
	"repro/internal/stores/hbase"
	"repro/internal/stores/mysql"
	"repro/internal/stores/redis"
	"repro/internal/stores/voltdb"
	"repro/internal/ycsb"
)

// Ablations return figures comparing a paper-documented design choice
// against its alternative (DESIGN.md §5). Each figure has one series per
// variant. Like the figures, every ablation declares its measurement grid
// up front and executes it on the runner's worker pool; each measurement
// deploys a private engine with the runner's base seed, so results are
// schedule-independent.
func (r *Runner) Ablations() map[string]func() (Figure, error) {
	return map[string]func() (Figure, error){
		"ablation-cassandra-tokens":      r.AblationCassandraTokens,
		"ablation-redis-sharding":        r.AblationRedisSharding,
		"ablation-mysql-binlog":          r.AblationMySQLBinlog,
		"ablation-hbase-autoflush":       r.AblationHBaseAutoflush,
		"ablation-voltdb-async":          r.AblationVoltDBAsync,
		"ablation-cassandra-commitlog":   r.AblationCassandraCommitlog,
		"ablation-cassandra-replication": r.AblationCassandraReplication,
		"ablation-cassandra-compression": r.AblationCassandraCompression,
		"ablation-connections":           r.AblationConnections,
	}
}

// measureVariant loads and runs one custom deployment, returning its cell
// result. It builds a private engine/cluster/store, so concurrent variant
// measurements share no state.
func (r *Runner) measureVariant(sys System, nodes int, workload string, build func(*cluster.Cluster) store.Store) (CellResult, error) {
	wl, err := ycsb.WorkloadByName(workload)
	if err != nil {
		return CellResult{}, err
	}
	e := sim.NewEngine(r.Cfg.Seed)
	c := cluster.New(e, cluster.ClusterM(nodes).Scale(r.Cfg.Scale))
	s := build(c)
	records := int64(float64(r.Cfg.RecordsPerNode*int64(nodes)) * r.Cfg.Scale)
	if err := ycsb.Load(s, records); err != nil {
		return CellResult{}, err
	}
	res, err := ycsb.Run(e, ycsb.RunConfig{
		Store:          s,
		Workload:       wl,
		Clients:        Conns(sys, nodes, false),
		InitialRecords: records,
		Warmup:         r.Cfg.Warmup,
		Measure:        r.Cfg.Measure,
	})
	if err != nil {
		return CellResult{}, err
	}
	return CellResult{
		Throughput:          res.Throughput(),
		ReadLat:             res.MeanLatency(0),
		WriteLat:            res.MeanLatency(1),
		ScanLat:             res.MeanLatency(3),
		Ops:                 res.Ops(),
		Errors:              res.Errors(),
		DiskBytesPaperScale: float64(s.DiskUsage()) / r.Cfg.Scale,
	}, nil
}

// variantJob is one planned measurement in an ablation grid: a (series,
// x) coordinate plus the deployment to measure there.
type variantJob struct {
	series int // index into the figure's series
	x      float64
	sys    System
	nodes  int
	wl     string
	build  func(*cluster.Cluster) store.Store
}

// runVariantGrid executes jobs on the worker pool and appends each result
// to its series through yval, preserving declaration order.
func (r *Runner) runVariantGrid(fig *Figure, jobs []variantJob, yval func(CellResult) float64) error {
	results, err := parallelMap(len(jobs), r.workers(), func(i int) (CellResult, error) {
		j := jobs[i]
		return r.measureVariant(j.sys, j.nodes, j.wl, j.build)
	})
	if err != nil {
		return err
	}
	for i, j := range jobs {
		s := &fig.Series[j.series]
		s.X = append(s.X, j.x)
		s.Y = append(s.Y, yval(results[i]))
	}
	return nil
}

// AblationCassandraTokens compares optimal vs random token assignment
// (§6: random tokens "frequently resulted in a highly unbalanced workload").
func (r *Runner) AblationCassandraTokens() (Figure, error) {
	fig := Figure{ID: "ablation-cassandra-tokens",
		Title: "Cassandra: optimal vs random token assignment (Workload R)", XLabel: "nodes", YLabel: "ops/sec"}
	var jobs []variantJob
	for si, variant := range []struct {
		label  string
		random bool
	}{{"optimal-tokens", false}, {"random-tokens", true}} {
		fig.Series = append(fig.Series, Series{Label: variant.label})
		for _, n := range r.Cfg.NodeCounts {
			if n == 1 {
				continue // token placement is moot on one node
			}
			random := variant.random
			jobs = append(jobs, variantJob{
				series: si, x: float64(n), sys: Cassandra, nodes: n, wl: "R",
				build: func(c *cluster.Cluster) store.Store {
					return cassandra.New(c, cassandra.Options{
						RandomTokens:       random,
						MemtableFlushBytes: scaleBytes(16<<20, r.Cfg.Scale),
					})
				},
			})
		}
	}
	if err := r.runVariantGrid(&fig, jobs, throughputMetric); err != nil {
		return Figure{}, err
	}
	return fig, nil
}

// AblationRedisSharding compares the Jedis ring against balanced hash-mod
// sharding (§5.1: "the data distribution is unbalanced").
func (r *Runner) AblationRedisSharding() (Figure, error) {
	fig := Figure{ID: "ablation-redis-sharding",
		Title: "Redis: Jedis ring vs balanced sharding (Workload R)", XLabel: "nodes", YLabel: "ops/sec"}
	var jobs []variantJob
	for si, variant := range []struct {
		label    string
		balanced bool
	}{{"jedis-ring", false}, {"balanced", true}} {
		fig.Series = append(fig.Series, Series{Label: variant.label})
		for _, n := range r.Cfg.NodeCounts {
			balanced := variant.balanced
			jobs = append(jobs, variantJob{
				series: si, x: float64(n), sys: Redis, nodes: n, wl: "R",
				build: func(c *cluster.Cluster) store.Store {
					return redis.New(c, redis.Options{Balanced: balanced})
				},
			})
		}
	}
	if err := r.runVariantGrid(&fig, jobs, throughputMetric); err != nil {
		return Figure{}, err
	}
	return fig, nil
}

// AblationMySQLBinlog compares disk usage with and without the binary log
// (§5.7: "without this feature the disk usage is essentially reduced by
// half").
func (r *Runner) AblationMySQLBinlog() (Figure, error) {
	fig := Figure{ID: "ablation-mysql-binlog",
		Title: "MySQL: disk usage with and without binary log", XLabel: "nodes", YLabel: "GB (paper scale)"}
	variants := []struct {
		label  string
		binlog bool
	}{{"binlog-on", true}, {"binlog-off", false}}
	type job struct {
		series int
		n      int
		binlog bool
	}
	var jobs []job
	for si, variant := range variants {
		fig.Series = append(fig.Series, Series{Label: variant.label})
		for _, n := range r.Cfg.NodeCounts {
			jobs = append(jobs, job{series: si, n: n, binlog: variant.binlog})
		}
	}
	disks, err := parallelMap(len(jobs), r.workers(), func(i int) (float64, error) {
		j := jobs[i]
		e := sim.NewEngine(r.Cfg.Seed)
		c := cluster.New(e, cluster.ClusterM(j.n).Scale(r.Cfg.Scale))
		st := mysql.New(c, mysql.Options{BinLog: j.binlog})
		records := int64(float64(r.Cfg.RecordsPerNode*int64(j.n)) * r.Cfg.Scale)
		if err := ycsb.Load(st, records); err != nil {
			return 0, err
		}
		return float64(st.DiskUsage()) / r.Cfg.Scale / 1e9, nil
	})
	if err != nil {
		return Figure{}, err
	}
	for i, j := range jobs {
		s := &fig.Series[j.series]
		s.X = append(s.X, float64(j.n))
		s.Y = append(s.Y, disks[i])
	}
	return fig, nil
}

// AblationHBaseAutoflush compares the client write buffer (deferred flush)
// against per-put RPCs on the write-heavy workload.
func (r *Runner) AblationHBaseAutoflush() (Figure, error) {
	fig := Figure{ID: "ablation-hbase-autoflush",
		Title: "HBase: client write buffer vs autoflush (Workload W)", XLabel: "nodes", YLabel: "ops/sec"}
	var jobs []variantJob
	for si, variant := range []struct {
		label     string
		autoflush bool
	}{{"write-buffer", false}, {"autoflush", true}} {
		fig.Series = append(fig.Series, Series{Label: variant.label})
		for _, n := range r.Cfg.NodeCounts {
			autoflush := variant.autoflush
			jobs = append(jobs, variantJob{
				series: si, x: float64(n), sys: HBase, nodes: n, wl: "W",
				build: func(c *cluster.Cluster) store.Store {
					return hbase.New(c, hbase.Options{
						AutoFlush:          autoflush,
						MemstoreFlushBytes: scaleBytes(16<<20, r.Cfg.Scale),
					})
				},
			})
		}
	}
	if err := r.runVariantGrid(&fig, jobs, throughputMetric); err != nil {
		return Figure{}, err
	}
	return fig, nil
}

// AblationVoltDBAsync compares the synchronous client the paper used with
// VoltDB's asynchronous API (§6: Hugg's asynchronous benchmark "achieved a
// speed-up with a fixed sized database", unlike the paper).
func (r *Runner) AblationVoltDBAsync() (Figure, error) {
	fig := Figure{ID: "ablation-voltdb-async",
		Title: "VoltDB: synchronous vs asynchronous client (Workload R)", XLabel: "nodes", YLabel: "ops/sec"}
	var jobs []variantJob
	for si, variant := range []struct {
		label string
		async bool
	}{{"sync-client", false}, {"async-client", true}} {
		fig.Series = append(fig.Series, Series{Label: variant.label})
		for _, n := range r.Cfg.NodeCounts {
			async := variant.async
			jobs = append(jobs, variantJob{
				series: si, x: float64(n), sys: VoltDB, nodes: n, wl: "R",
				build: func(c *cluster.Cluster) store.Store {
					return voltdb.New(c, voltdb.Options{Async: async})
				},
			})
		}
	}
	if err := r.runVariantGrid(&fig, jobs, throughputMetric); err != nil {
		return Figure{}, err
	}
	return fig, nil
}

// AblationCassandraCommitlog compares batch (writers wait for the group
// commit) against periodic commit-log mode, isolating the source of
// Cassandra's high write latency in the reproduction.
func (r *Runner) AblationCassandraCommitlog() (Figure, error) {
	fig := Figure{ID: "ablation-cassandra-commitlog",
		Title:  "Cassandra: commit log batch window vs write latency (Workload RW, 4 nodes)",
		XLabel: "window ms", YLabel: "write latency ms"}
	fig.Series = append(fig.Series, Series{Label: "write-latency"})
	var jobs []variantJob
	for _, windowMs := range []int{2, 5, 10, 18, 30} {
		window := sim.Time(windowMs) * sim.Millisecond
		jobs = append(jobs, variantJob{
			series: 0, x: float64(windowMs), sys: Cassandra, nodes: 4, wl: "RW",
			build: func(c *cluster.Cluster) store.Store {
				return cassandra.New(c, cassandra.Options{
					CommitLogWindow:    window,
					MemtableFlushBytes: scaleBytes(16<<20, r.Cfg.Scale),
				})
			},
		})
	}
	if err := r.runVariantGrid(&fig, jobs, writeLatMetric); err != nil {
		return Figure{}, err
	}
	return fig, nil
}

// AblationCassandraReplication measures the throughput cost of replication
// (the paper's §8 future work) on Workload W: RF=1 vs RF=3 at consistency
// ONE and ALL.
func (r *Runner) AblationCassandraReplication() (Figure, error) {
	fig := Figure{ID: "ablation-cassandra-replication",
		Title: "Cassandra: replication factor vs throughput (Workload W)", XLabel: "nodes", YLabel: "ops/sec"}
	variants := []struct {
		label  string
		rf, cl int
	}{
		{"rf1", 1, 1},
		{"rf3-one", 3, 1},
		{"rf3-all", 3, 3},
	}
	var jobs []variantJob
	for si, v := range variants {
		fig.Series = append(fig.Series, Series{Label: v.label})
		for _, n := range r.Cfg.NodeCounts {
			if n < 3 {
				continue // RF=3 needs at least 3 nodes for distinct replicas
			}
			rf, cl := v.rf, v.cl
			jobs = append(jobs, variantJob{
				series: si, x: float64(n), sys: Cassandra, nodes: n, wl: "W",
				build: func(c *cluster.Cluster) store.Store {
					return cassandra.New(c, cassandra.Options{
						ReplicationFactor:  rf,
						WriteConsistency:   cl,
						MemtableFlushBytes: scaleBytes(16<<20, r.Cfg.Scale),
					})
				},
			})
		}
	}
	if err := r.runVariantGrid(&fig, jobs, throughputMetric); err != nil {
		return Figure{}, err
	}
	return fig, nil
}

// AblationCassandraCompression measures compression's disk savings against
// its throughput cost (§5.7: "the disk usage can be reduced by using
// compression which, however, will decrease the throughput").
func (r *Runner) AblationCassandraCompression() (Figure, error) {
	fig := Figure{ID: "ablation-cassandra-compression",
		Title: "Cassandra: compression off vs on (Workload R, disk + throughput)", XLabel: "nodes",
		YLabel: "ops/sec (tput series) / GB (disk series)"}
	variants := []struct {
		label    string
		compress bool
	}{{"off", false}, {"on", true}}
	type job struct {
		tputSeries int // disk series is tputSeries+1
		n          int
		compress   bool
	}
	var jobs []job
	for _, variant := range variants {
		si := len(fig.Series)
		fig.Series = append(fig.Series,
			Series{Label: "tput-" + variant.label},
			Series{Label: "disk-" + variant.label})
		for _, n := range r.Cfg.NodeCounts {
			jobs = append(jobs, job{tputSeries: si, n: n, compress: variant.compress})
		}
	}
	results, err := parallelMap(len(jobs), r.workers(), func(i int) (CellResult, error) {
		j := jobs[i]
		return r.measureVariant(Cassandra, j.n, "R", func(c *cluster.Cluster) store.Store {
			return cassandra.New(c, cassandra.Options{
				Compression:        j.compress,
				MemtableFlushBytes: scaleBytes(16<<20, r.Cfg.Scale),
			})
		})
	})
	if err != nil {
		return Figure{}, err
	}
	for i, j := range jobs {
		tput, disk := &fig.Series[j.tputSeries], &fig.Series[j.tputSeries+1]
		tput.X = append(tput.X, float64(j.n))
		tput.Y = append(tput.Y, results[i].Throughput)
		disk.X = append(disk.X, float64(j.n))
		disk.Y = append(disk.Y, results[i].DiskBytesPaperScale/1e9)
	}
	return fig, nil
}

// AblationConnections sweeps the client connection count per node on a
// 4-node Cassandra cluster (Workload R), reproducing the paper's tuning
// observation (§8): too few connections leave the servers underutilized,
// too many congest them and inflate latency without throughput gains.
func (r *Runner) AblationConnections() (Figure, error) {
	fig := Figure{ID: "ablation-connections",
		Title:  "Connections per node vs throughput and read latency (Cassandra, 4 nodes, Workload R)",
		XLabel: "conns/node", YLabel: "ops/sec (tput) / ms (latency)"}
	perNodes := []int{8, 32, 64, 128, 256, 512}
	type point struct{ tput, latMs float64 }
	results, err := parallelMap(len(perNodes), r.workers(), func(i int) (point, error) {
		perNode := perNodes[i]
		wl, err := ycsb.WorkloadByName("R")
		if err != nil {
			return point{}, err
		}
		e := sim.NewEngine(r.Cfg.Seed)
		c := cluster.New(e, cluster.ClusterM(4).Scale(r.Cfg.Scale))
		s := cassandra.New(c, cassandra.Options{MemtableFlushBytes: scaleBytes(16<<20, r.Cfg.Scale)})
		records := int64(float64(r.Cfg.RecordsPerNode*4) * r.Cfg.Scale)
		if err := ycsb.Load(s, records); err != nil {
			return point{}, err
		}
		res, err := ycsb.Run(e, ycsb.RunConfig{
			Store: s, Workload: wl, Clients: perNode * 4,
			InitialRecords: records, Warmup: r.Cfg.Warmup, Measure: r.Cfg.Measure,
		})
		if err != nil {
			return point{}, err
		}
		return point{
			tput:  res.Throughput(),
			latMs: float64(res.MeanLatency(0)) / float64(sim.Millisecond),
		}, nil
	})
	if err != nil {
		return Figure{}, err
	}
	tput := Series{Label: "throughput"}
	lat := Series{Label: "read-latency-ms"}
	for i, perNode := range perNodes {
		tput.X = append(tput.X, float64(perNode))
		tput.Y = append(tput.Y, results[i].tput)
		lat.X = append(lat.X, float64(perNode))
		lat.Y = append(lat.Y, results[i].latMs)
	}
	fig.Series = append(fig.Series, tput, lat)
	return fig, nil
}
