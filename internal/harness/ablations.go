package harness

import (
	"fmt"

	"repro/internal/sim"
)

// Ablations compare a paper-documented design choice against its
// alternative (DESIGN.md §5). Since the scenario refactor every ablation is
// declarative: it states its measurement grid as []Cell (each cell carrying
// the design choice as a Variants string resolved by DeployVariants) and
// executes it through Runner.RunAll, exactly like the figures. That buys
// the ablations the figures' execution contract for free: the singleflight
// cell cache (cells shared with figures or between ablations — e.g. the
// paper-default series — measure once per runner), stable hashed seeds
// (results are schedule-independent, so -parallel N output is
// byte-identical), plan-ordered progress lines, and Prewarm batching across
// `-figure ablation-all`.
//
// Behavior note: moving the ablations onto the hashed per-cell seed scheme
// (seed = hash(Cfg.Seed, cell key, rep), replacing the fixed Cfg.Seed the
// old closure-built variant runner used) shifted every ablation's numbers
// once, the same one-time shift the figures took in PR 2.

// ablationSpec declares one ablation: its full cell grid (for planning)
// and the figure assembly (pure cache reads after RunAll).
type ablationSpec struct {
	id    string
	cells func(r *Runner) []Cell
	build func(r *Runner) (Figure, error)
}

// ablationSpecs lists every ablation in display order.
var ablationSpecs = []ablationSpec{
	{"ablation-cassandra-tokens", (*Runner).cellsCassandraTokens, (*Runner).buildCassandraTokens},
	{"ablation-cassandra-commitlog", (*Runner).cellsCassandraCommitlog, (*Runner).buildCassandraCommitlog},
	{"ablation-cassandra-replication", (*Runner).cellsCassandraReplication, (*Runner).buildCassandraReplication},
	{"ablation-cassandra-compression", (*Runner).cellsCassandraCompression, (*Runner).buildCassandraCompression},
	{"ablation-connections", (*Runner).cellsConnections, (*Runner).buildConnections},
	{"ablation-hbase-autoflush", (*Runner).cellsHBaseAutoflush, (*Runner).buildHBaseAutoflush},
	{"ablation-mysql-binlog", (*Runner).cellsMySQLBinlog, (*Runner).buildMySQLBinlog},
	{"ablation-redis-sharding", (*Runner).cellsRedisSharding, (*Runner).buildRedisSharding},
	{"ablation-voltdb-async", (*Runner).cellsVoltDBAsync, (*Runner).buildVoltDBAsync},
}

// AblationOrder lists ablation IDs in display order.
var AblationOrder = func() []string {
	ids := make([]string, len(ablationSpecs))
	for i, s := range ablationSpecs {
		ids[i] = s.id
	}
	return ids
}()

func ablationSpecFor(id string) (ablationSpec, bool) {
	for _, s := range ablationSpecs {
		if s.id == id {
			return s, true
		}
	}
	return ablationSpec{}, false
}

// AblationCellsFor returns every cell the named ablation measures, nil for
// unknown names. Like CellsFor, the grid is complete: generating the
// ablation after RunAll(AblationCellsFor(id)) executes zero extra cells.
func (r *Runner) AblationCellsFor(id string) []Cell {
	spec, ok := ablationSpecFor(id)
	if !ok {
		return nil
	}
	return spec.cells(r)
}

// Ablations maps ablation IDs to their generators. Each generator plans
// its grid, executes it on the worker pool, and assembles the figure from
// the warm cache.
func (r *Runner) Ablations() map[string]func() (Figure, error) {
	out := make(map[string]func() (Figure, error), len(ablationSpecs))
	for _, spec := range ablationSpecs {
		spec := spec
		out[spec.id] = func() (Figure, error) {
			if err := r.RunAll(spec.cells(r)); err != nil {
				return Figure{}, fmt.Errorf("%s: %w", spec.id, err)
			}
			return spec.build(r)
		}
	}
	return out
}

// variantSeries assembles one figure series from cached cells: X from xs,
// Y through m.
func (r *Runner) variantSeries(label string, cells []Cell, xs []float64, m metric) (Series, error) {
	s := Series{Label: label}
	for i, c := range cells {
		res, err := r.Run(c)
		if err != nil {
			return Series{}, fmt.Errorf("cell %s: %w", r.key(c), err)
		}
		s.X = append(s.X, xs[i])
		s.Y = append(s.Y, m(res))
	}
	return s, nil
}

// nodeGrid builds one (cells, xs) sweep over the configured node counts
// (filtered by keep) for a fixed workload and variant combo.
func (r *Runner) nodeGrid(sys System, wl string, variants string, keep func(int) bool) ([]Cell, []float64) {
	var cells []Cell
	var xs []float64
	for _, n := range r.Cfg.NodeCounts {
		if keep != nil && !keep(n) {
			continue
		}
		cells = append(cells, Cell{System: sys, Nodes: n, Workload: wl, Variants: variants})
		xs = append(xs, float64(n))
	}
	return cells, xs
}

// --- Cassandra: optimal vs random token assignment (§6) ---

// tokenVariants: random tokens "frequently resulted in a highly unbalanced
// workload"; placement is moot on one node.
var tokenVariants = []struct{ label, variants string }{
	{"optimal-tokens", ""},
	{"random-tokens", "tokens=random"},
}

func (r *Runner) cellsCassandraTokens() []Cell {
	var cells []Cell
	for _, v := range tokenVariants {
		grid, _ := r.nodeGrid(Cassandra, "R", v.variants, func(n int) bool { return n > 1 })
		cells = append(cells, grid...)
	}
	return cells
}

func (r *Runner) buildCassandraTokens() (Figure, error) {
	fig := Figure{ID: "ablation-cassandra-tokens",
		Title: "Cassandra: optimal vs random token assignment (Workload R)", XLabel: "nodes", YLabel: "ops/sec"}
	for _, v := range tokenVariants {
		cells, xs := r.nodeGrid(Cassandra, "R", v.variants, func(n int) bool { return n > 1 })
		s, err := r.variantSeries(v.label, cells, xs, throughputMetric)
		if err != nil {
			return Figure{}, err
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// --- Cassandra: commit log batch window vs write latency ---

// commitlogWindowsMs sweeps the batch group-commit window writers wait for,
// isolating the source of Cassandra's high write latency in the
// reproduction.
var commitlogWindowsMs = []int{2, 5, 10, 18, 30}

func (r *Runner) commitlogGrid() ([]Cell, []float64) {
	var cells []Cell
	var xs []float64
	for _, ms := range commitlogWindowsMs {
		cells = append(cells, Cell{System: Cassandra, Nodes: 4, Workload: "RW",
			Variants: fmt.Sprintf("commitlog=%d", ms)})
		xs = append(xs, float64(ms))
	}
	return cells, xs
}

func (r *Runner) cellsCassandraCommitlog() []Cell {
	cells, _ := r.commitlogGrid()
	return cells
}

func (r *Runner) buildCassandraCommitlog() (Figure, error) {
	fig := Figure{ID: "ablation-cassandra-commitlog",
		Title:  "Cassandra: commit log batch window vs write latency (Workload RW, 4 nodes)",
		XLabel: "window ms", YLabel: "write latency ms"}
	cells, xs := r.commitlogGrid()
	s, err := r.variantSeries("write-latency", cells, xs, writeLatMetric)
	if err != nil {
		return Figure{}, err
	}
	fig.Series = append(fig.Series, s)
	return fig, nil
}

// --- Cassandra: replication factor vs throughput (§8 future work) ---

// replicationVariants: RF=1 (the paper's unreplicated run, so the default
// deployment) vs RF=3 at consistency ONE and ALL; RF=3 needs at least 3
// nodes for distinct replicas.
var replicationVariants = []struct{ label, variants string }{
	{"rf1", ""},
	{"rf3-one", "replication=3,consistency=one"},
	{"rf3-all", "replication=3,consistency=all"},
}

func (r *Runner) cellsCassandraReplication() []Cell {
	var cells []Cell
	for _, v := range replicationVariants {
		grid, _ := r.nodeGrid(Cassandra, "W", v.variants, func(n int) bool { return n >= 3 })
		cells = append(cells, grid...)
	}
	return cells
}

func (r *Runner) buildCassandraReplication() (Figure, error) {
	fig := Figure{ID: "ablation-cassandra-replication",
		Title: "Cassandra: replication factor vs throughput (Workload W)", XLabel: "nodes", YLabel: "ops/sec"}
	for _, v := range replicationVariants {
		cells, xs := r.nodeGrid(Cassandra, "W", v.variants, func(n int) bool { return n >= 3 })
		s, err := r.variantSeries(v.label, cells, xs, throughputMetric)
		if err != nil {
			return Figure{}, err
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// --- Cassandra: compression off vs on (§5.7) ---

// compressionVariants: "the disk usage can be reduced by using compression
// which, however, will decrease the throughput". Each variant plots a
// throughput and a disk series from the same cells.
var compressionVariants = []struct{ label, variants string }{
	{"off", ""},
	{"on", "compression=on"},
}

func (r *Runner) cellsCassandraCompression() []Cell {
	var cells []Cell
	for _, v := range compressionVariants {
		grid, _ := r.nodeGrid(Cassandra, "R", v.variants, nil)
		cells = append(cells, grid...)
	}
	return cells
}

func (r *Runner) buildCassandraCompression() (Figure, error) {
	fig := Figure{ID: "ablation-cassandra-compression",
		Title: "Cassandra: compression off vs on (Workload R, disk + throughput)", XLabel: "nodes",
		YLabel: "ops/sec (tput series) / GB (disk series)"}
	for _, v := range compressionVariants {
		cells, xs := r.nodeGrid(Cassandra, "R", v.variants, nil)
		tput, err := r.variantSeries("tput-"+v.label, cells, xs, throughputMetric)
		if err != nil {
			return Figure{}, err
		}
		disk, err := r.variantSeries("disk-"+v.label, cells, xs,
			func(res CellResult) float64 { return res.DiskBytesPaperScale / 1e9 })
		if err != nil {
			return Figure{}, err
		}
		fig.Series = append(fig.Series, tput, disk)
	}
	return fig, nil
}

// --- Client connections per node (§8 tuning observation) ---

// connsPerNode sweeps the client connection count on a 4-node Cassandra
// cluster: too few connections leave the servers underutilized, too many
// congest them and inflate latency without throughput gains.
var connsPerNode = []int{8, 32, 64, 128, 256, 512}

func (r *Runner) connectionsGrid() ([]Cell, []float64) {
	var cells []Cell
	var xs []float64
	for _, perNode := range connsPerNode {
		cells = append(cells, Cell{System: Cassandra, Nodes: 4, Workload: "R",
			Variants: fmt.Sprintf("conns=%d", perNode)})
		xs = append(xs, float64(perNode))
	}
	return cells, xs
}

func (r *Runner) cellsConnections() []Cell {
	cells, _ := r.connectionsGrid()
	return cells
}

func (r *Runner) buildConnections() (Figure, error) {
	fig := Figure{ID: "ablation-connections",
		Title:  "Connections per node vs throughput and read latency (Cassandra, 4 nodes, Workload R)",
		XLabel: "conns/node", YLabel: "ops/sec (tput) / ms (latency)"}
	cells, xs := r.connectionsGrid()
	tput, err := r.variantSeries("throughput", cells, xs, throughputMetric)
	if err != nil {
		return Figure{}, err
	}
	lat, err := r.variantSeries("read-latency-ms", cells, xs,
		func(res CellResult) float64 { return float64(res.ReadLat) / float64(sim.Millisecond) })
	if err != nil {
		return Figure{}, err
	}
	fig.Series = append(fig.Series, tput, lat)
	return fig, nil
}

// --- HBase: client write buffer vs autoflush ---

// autoflushVariants compare the client write buffer (deferred flush)
// against per-put RPCs on the write-heavy workload.
var autoflushVariants = []struct{ label, variants string }{
	{"write-buffer", ""},
	{"autoflush", "autoflush=on"},
}

func (r *Runner) cellsHBaseAutoflush() []Cell {
	var cells []Cell
	for _, v := range autoflushVariants {
		grid, _ := r.nodeGrid(HBase, "W", v.variants, nil)
		cells = append(cells, grid...)
	}
	return cells
}

func (r *Runner) buildHBaseAutoflush() (Figure, error) {
	fig := Figure{ID: "ablation-hbase-autoflush",
		Title: "HBase: client write buffer vs autoflush (Workload W)", XLabel: "nodes", YLabel: "ops/sec"}
	for _, v := range autoflushVariants {
		cells, xs := r.nodeGrid(HBase, "W", v.variants, nil)
		s, err := r.variantSeries(v.label, cells, xs, throughputMetric)
		if err != nil {
			return Figure{}, err
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// --- MySQL: disk usage with and without the binary log (§5.7) ---

// binlogVariants: "without this feature the disk usage is essentially
// reduced by half". Disk usage needs no workload run, so the grid is
// load-only cells.
var binlogVariants = []struct{ label, variants string }{
	{"binlog-on", ""},
	{"binlog-off", "binlog=off"},
}

func (r *Runner) binlogGrid(variants string) ([]Cell, []float64) {
	var cells []Cell
	var xs []float64
	for _, n := range r.Cfg.NodeCounts {
		cells = append(cells, Cell{System: MySQL, Nodes: n, LoadOnly: true, Variants: variants})
		xs = append(xs, float64(n))
	}
	return cells, xs
}

func (r *Runner) cellsMySQLBinlog() []Cell {
	var cells []Cell
	for _, v := range binlogVariants {
		grid, _ := r.binlogGrid(v.variants)
		cells = append(cells, grid...)
	}
	return cells
}

func (r *Runner) buildMySQLBinlog() (Figure, error) {
	fig := Figure{ID: "ablation-mysql-binlog",
		Title: "MySQL: disk usage with and without binary log", XLabel: "nodes", YLabel: "GB (paper scale)"}
	for _, v := range binlogVariants {
		cells, xs := r.binlogGrid(v.variants)
		s, err := r.variantSeries(v.label, cells, xs,
			func(res CellResult) float64 { return res.DiskBytesPaperScale / 1e9 })
		if err != nil {
			return Figure{}, err
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// --- Redis: Jedis ring vs balanced sharding (§5.1) ---

// shardingVariants: with the Jedis ring "the data distribution is
// unbalanced".
var shardingVariants = []struct{ label, variants string }{
	{"jedis-ring", ""},
	{"balanced", "sharding=balanced"},
}

func (r *Runner) cellsRedisSharding() []Cell {
	var cells []Cell
	for _, v := range shardingVariants {
		grid, _ := r.nodeGrid(Redis, "R", v.variants, nil)
		cells = append(cells, grid...)
	}
	return cells
}

func (r *Runner) buildRedisSharding() (Figure, error) {
	fig := Figure{ID: "ablation-redis-sharding",
		Title: "Redis: Jedis ring vs balanced sharding (Workload R)", XLabel: "nodes", YLabel: "ops/sec"}
	for _, v := range shardingVariants {
		cells, xs := r.nodeGrid(Redis, "R", v.variants, nil)
		s, err := r.variantSeries(v.label, cells, xs, throughputMetric)
		if err != nil {
			return Figure{}, err
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// --- VoltDB: synchronous vs asynchronous client (§6) ---

// asyncVariants: Hugg's asynchronous benchmark "achieved a speed-up with a
// fixed sized database", unlike the paper's synchronous client.
var asyncVariants = []struct{ label, variants string }{
	{"sync-client", ""},
	{"async-client", "async=on"},
}

func (r *Runner) cellsVoltDBAsync() []Cell {
	var cells []Cell
	for _, v := range asyncVariants {
		grid, _ := r.nodeGrid(VoltDB, "R", v.variants, nil)
		cells = append(cells, grid...)
	}
	return cells
}

func (r *Runner) buildVoltDBAsync() (Figure, error) {
	fig := Figure{ID: "ablation-voltdb-async",
		Title: "VoltDB: synchronous vs asynchronous client (Workload R)", XLabel: "nodes", YLabel: "ops/sec"}
	for _, v := range asyncVariants {
		cells, xs := r.nodeGrid(VoltDB, "R", v.variants, nil)
		s, err := r.variantSeries(v.label, cells, xs, throughputMetric)
		if err != nil {
			return Figure{}, err
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}
