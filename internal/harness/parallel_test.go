package harness

import (
	"sync"
	"testing"
	"time"

	"repro/internal/sim"
)

// orderCells is a cheap cell set covering the schedule-sensitive cases:
// multiple systems, node counts, workloads, and a throttled cell whose
// base must be resolved whatever the order.
func orderCells() []Cell {
	return []Cell{
		{System: Redis, Nodes: 1, Workload: "R"},
		{System: Voldemort, Nodes: 1, Workload: "R"},
		{System: Redis, Nodes: 2, Workload: "W"},
		{System: Voldemort, Nodes: 1, Workload: "R", TargetFraction: 0.5},
		{System: Redis, Nodes: 1, Workload: "RW"},
		{System: Redis, Nodes: 1, LoadOnly: true},
	}
}

// runSerially measures cells one at a time in the given order on a fresh
// runner and returns result-by-key.
func runSerially(t *testing.T, cells []Cell) map[string]CellResult {
	t.Helper()
	r := NewRunner(testCfg())
	out := map[string]CellResult{}
	for _, c := range cells {
		res, err := r.Run(c)
		if err != nil {
			t.Fatalf("cell %+v: %v", c, err)
		}
		out[r.key(c)] = res
	}
	return out
}

// TestCellOrderIndependence pins the seeding behavior change of the
// plan/execute refactor: a cell's seed derives from (Cfg.Seed, cell
// identity, repetition), so results are bit-identical whether cells run
// first, last, shuffled, or in parallel. The shuffled order deliberately
// puts the TargetFraction cell before its unthrottled base, forcing the
// dependency to resolve recursively mid-schedule.
func TestCellOrderIndependence(t *testing.T) {
	cells := orderCells()
	baseline := runSerially(t, cells)

	shuffled := make([]Cell, len(cells))
	for i, c := range cells {
		shuffled[len(cells)-1-i] = c
	}
	reversed := runSerially(t, shuffled)
	for k, want := range baseline {
		if got := reversed[k]; got != want {
			t.Errorf("cell %s differs under reversed order:\n  in order: %+v\n  reversed: %+v", k, want, got)
		}
	}

	for _, workers := range []int{1, 4} {
		r := NewRunner(testCfg())
		r.Workers = workers
		if err := r.RunAll(shuffled); err != nil {
			t.Fatalf("RunAll(workers=%d): %v", workers, err)
		}
		for _, c := range cells {
			res, err := r.Run(c) // warm cache
			if err != nil {
				t.Fatal(err)
			}
			if want := baseline[r.key(c)]; res != want {
				t.Errorf("cell %s differs under RunAll(workers=%d):\n  serial:   %+v\n  parallel: %+v", r.key(c), workers, want, res)
			}
		}
	}
}

// TestRunAllProgressInPlanOrder verifies progress lines come out in plan
// order even when workers finish out of order.
func TestRunAllProgressInPlanOrder(t *testing.T) {
	cells := orderCells()
	want := runSerially(t, cells) // also gives the expected line count

	r := NewRunner(testCfg())
	r.Workers = 4
	var mu sync.Mutex
	var lines []string
	r.Progress = func(line string) {
		mu.Lock()
		lines = append(lines, line)
		mu.Unlock()
	}
	if err := r.RunAll(cells); err != nil {
		t.Fatal(err)
	}
	if len(lines) != len(want) {
		t.Fatalf("got %d progress lines, want %d:\n%v", len(lines), len(want), lines)
	}
	var expect []string
	for _, c := range cells {
		res, err := r.Run(c)
		if err != nil {
			t.Fatal(err)
		}
		expect = append(expect, progressLine(c, res))
	}
	for i := range expect {
		if lines[i] != expect[i] {
			t.Errorf("progress line %d out of plan order:\n  got  %q\n  want %q", i, lines[i], expect[i])
		}
	}
}

// TestRunAllSingleflightCache hammers the cache from RunAll plus direct
// concurrent Run calls; under -race this doubles as the cache's race test,
// and the executed counter proves every duplicate was deduplicated into
// one measurement.
func TestRunAllSingleflightCache(t *testing.T) {
	r := NewRunner(testCfg())
	r.Workers = 8
	unique := []Cell{
		{System: Redis, Nodes: 1, Workload: "R"},
		{System: Voldemort, Nodes: 1, Workload: "R"},
		{System: Redis, Nodes: 1, LoadOnly: true},
	}
	var cells []Cell
	for i := 0; i < 8; i++ {
		cells = append(cells, unique...)
	}

	var wg sync.WaitGroup
	errs := make([]error, len(unique))
	for i, c := range unique {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs[i] = r.Run(c)
		}()
	}
	err := r.RunAll(cells)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range errs {
		if e != nil {
			t.Fatal(e)
		}
	}
	if got := r.Executed(); got != int64(len(unique)) {
		t.Errorf("executed %d measurements for %d unique cells (singleflight failed to dedupe)", got, len(unique))
	}
}

// TestRunAllErrorDoesNotPoison verifies an invalid cell reports its error
// while the rest of the plan still executes, and that dependents of a
// failed base cell are failed directly instead of re-measuring the doomed
// base (errors are not cached, so a dispatched dependent would otherwise
// deploy and run the base again just to fail).
func TestRunAllErrorDoesNotPoison(t *testing.T) {
	r := NewRunner(testCfg())
	r.Workers = 2
	good := Cell{System: Redis, Nodes: 1, Workload: "R"}
	bad := Cell{System: Voldemort, Nodes: 1, Workload: "RS"} // no scan support
	badThrottled := bad
	badThrottled.TargetFraction = 0.5
	if err := r.RunAll([]Cell{bad, badThrottled, good}); err == nil {
		t.Fatal("RunAll swallowed the invalid cell's error")
	}
	// Exactly two measurements: the failing base and the good cell; the
	// throttled dependent must have been skipped, not re-attempted.
	if got := r.Executed(); got != 2 {
		t.Errorf("executed %d cells, want 2 (dependent of failed base must not re-run it)", got)
	}
	before := r.Executed()
	if _, err := r.Run(good); err != nil {
		t.Fatal(err)
	}
	if r.Executed() != before {
		t.Error("good cell was not cached by the failing RunAll")
	}
}

// TestTinyTargetFractionKeysDistinctly guards the singleflight against a
// key collision: a fraction that a rounded format would print as 0 must
// still key differently from its unthrottled base, or resolving the base
// inside the cell's own measurement deadlocks on its own inflight slot.
func TestTinyTargetFractionKeysDistinctly(t *testing.T) {
	r := NewRunner(testCfg())
	c := Cell{System: Redis, Nodes: 1, Workload: "R", TargetFraction: 0.004}
	base, _ := c.base()
	if r.key(c) == r.key(base) {
		t.Fatalf("tiny fraction keys like its base (%s): Run would self-deadlock", r.key(c))
	}
	done := make(chan error, 1)
	go func() {
		_, err := r.Run(c)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("Run(tiny TargetFraction) hung (singleflight self-wait)")
	}
}

// planCfg is deliberately tiny: plan-coverage tests only care which cells
// execute, not whether the numbers are statistically meaningful.
func planCfg() Config {
	return Config{
		Scale:          0.0005,
		Warmup:         50 * sim.Millisecond,
		Measure:        150 * sim.Millisecond,
		NodeCounts:     []int{1, 2},
		RecordsPerNode: 10_000_000,
	}.Defaults()
}

// TestCellsForCoversEveryFigure asserts the planning layer knows every
// figure and orders TargetFraction cells after their base cells.
func TestCellsForCoversEveryFigure(t *testing.T) {
	r := NewRunner(planCfg())
	for _, id := range FigureOrder {
		cells := r.CellsFor(id)
		if len(cells) == 0 {
			t.Errorf("figure %s has no plan", id)
			continue
		}
		seen := map[string]bool{}
		for _, c := range cells {
			if base, ok := c.base(); ok && !seen[r.key(base)] {
				t.Errorf("figure %s: cell %s planned before its base %s", id, r.key(c), r.key(base))
			}
			seen[r.key(c)] = true
		}
	}
	if r.CellsFor("nope") != nil {
		t.Error("unknown figure returned a plan")
	}
}

// TestFiguresReadFromWarmCache pins the plan/execute contract: after
// RunAll(CellsFor(id)), generating the figure must execute zero additional
// cells — the plan is complete, and generation is pure cache reads.
func TestFiguresReadFromWarmCache(t *testing.T) {
	ids := []string{"3", "17"} // one sweep, the load-only figure
	if !testing.Short() {
		ids = append(ids, "15", "18") // bounded (dependencies), Cluster D
	}
	for _, id := range ids {
		r := NewRunner(planCfg())
		if err := r.RunAll(r.CellsFor(id)); err != nil {
			t.Fatalf("figure %s plan: %v", id, err)
		}
		warm := r.Executed()
		fig, err := r.Figures()[id]()
		if err != nil {
			t.Fatalf("figure %s: %v", id, err)
		}
		if len(fig.Series) == 0 {
			t.Fatalf("figure %s is empty", id)
		}
		if got := r.Executed(); got != warm {
			t.Errorf("figure %s executed %d cells beyond its plan (plan incomplete)", id, got-warm)
		}
	}
}
