package harness

import (
	"fmt"
	"strings"

	"repro/internal/cluster"
	"repro/internal/stats"
	"repro/internal/ycsb"
)

// Explanation reports where a cell's time went: per-node utilization of
// CPU, disks and NIC over the run, plus the headline metrics. It answers
// the "why is this system slow here" questions the paper's §6 discusses.
type Explanation struct {
	Cell       Cell
	Throughput float64
	Errors     int64
	Nodes      []NodeUtilization
	Read       stats.LatencySummary
	Insert     stats.LatencySummary
	Scan       stats.LatencySummary
}

// NodeUtilization is one node's resource busy fractions.
type NodeUtilization struct {
	Node     int
	CPU      float64
	Disk     float64
	NIC      float64
	DiskUsed int64
	RAMUsed  int64
}

// Explain runs one cell (uncached — it needs the live deployment) and
// returns the utilization breakdown.
func (r *Runner) Explain(c Cell) (*Explanation, error) {
	rv, err := r.resolve(c)
	if err != nil {
		return nil, err
	}
	// Same seed derivation as Run's first repetition, so the explanation
	// describes the exact run that produced the cached cell result.
	dep, err := DeployVariants(r.cellSeed(r.key(c), 0), c.System, rv.spec, r.Cfg.Scale, c.Variants)
	if err != nil {
		return nil, err
	}
	if err := ycsb.LoadSized(dep.Store, rv.records, rv.wl.FieldSize()); err != nil {
		return nil, err
	}
	res, err := ycsb.Run(dep.Engine, ycsb.RunConfig{
		Store:          dep.Store,
		Workload:       rv.wl,
		Clients:        rv.clients,
		InitialRecords: rv.records,
		Warmup:         r.Cfg.Warmup,
		Measure:        r.Cfg.Measure,
	})
	if err != nil {
		return nil, err
	}
	sum := res.Summarize()
	ex := &Explanation{
		Cell:       c,
		Throughput: sum.Throughput,
		Errors:     sum.Errors,
		Read:       sum.Read,
		Insert:     sum.Insert,
		Scan:       sum.Scan,
	}
	for _, n := range dep.Clust.Nodes {
		ex.Nodes = append(ex.Nodes, NodeUtilization{
			Node:     n.ID,
			CPU:      n.CPU.Utilization(),
			Disk:     n.DiskBusy(),
			NIC:      n.NIC.Utilization(),
			DiskUsed: n.DiskUsed(),
			RAMUsed:  n.RAMUsed(),
		})
	}
	return ex, nil
}

// Render formats the explanation as a text report.
func (e *Explanation) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s x%d, workload %s", e.Cell.System, e.Cell.Nodes, e.Cell.workloadName())
	if e.Cell.Variants != "" {
		fmt.Fprintf(&b, " [%s]", e.Cell.Variants)
	}
	if e.Cell.ClusterD {
		b.WriteString(" (Cluster D)")
	}
	fmt.Fprintf(&b, ": %.0f ops/sec, %d errors\n", e.Throughput, e.Errors)
	fmt.Fprintf(&b, "  read:   n=%-8d mean=%-10v p99=%v\n", e.Read.N, e.Read.Mean, e.Read.P99)
	fmt.Fprintf(&b, "  insert: n=%-8d mean=%-10v p99=%v\n", e.Insert.N, e.Insert.Mean, e.Insert.P99)
	if e.Scan.N > 0 {
		fmt.Fprintf(&b, "  scan:   n=%-8d mean=%-10v p99=%v\n", e.Scan.N, e.Scan.Mean, e.Scan.P99)
	}
	fmt.Fprintf(&b, "  %-6s%8s%8s%8s%14s\n", "node", "cpu", "disk", "nic", "disk used")
	for _, n := range e.Nodes {
		fmt.Fprintf(&b, "  %-6d%7.0f%%%7.0f%%%7.0f%%%13.1fM\n",
			n.Node, n.CPU*100, n.Disk*100, n.NIC*100, float64(n.DiskUsed)/1e6)
	}
	// Name the bottleneck: the resource class with the highest mean busy.
	var cpu, disk, nic float64
	for _, n := range e.Nodes {
		cpu += n.CPU
		disk += n.Disk
		nic += n.NIC
	}
	k := float64(len(e.Nodes))
	cpu, disk, nic = cpu/k, disk/k, nic/k
	bottleneck, busiest := "cpu", cpu
	if disk > busiest {
		bottleneck, busiest = "disk", disk
	}
	if nic > busiest {
		bottleneck, busiest = "network", nic
	}
	if busiest < 0.5 {
		bottleneck = "client concurrency (no server resource saturated)"
	}
	fmt.Fprintf(&b, "  bottleneck: %s\n", bottleneck)
	return b.String()
}

// clusterSpecFor centralizes the cell-to-hardware mapping shared with the
// runner: an explicit Spec override wins, then the ClusterD flag, then the
// paper's memory-bound Cluster M.
func clusterSpecFor(c Cell, cfg Config) cluster.Spec {
	if c.Spec.Name != "" {
		s := c.Spec
		s.Nodes = c.Nodes
		return s
	}
	if c.ClusterD {
		return cluster.ClusterD(c.Nodes)
	}
	return cluster.ClusterM(c.Nodes)
}

func recordsFor(c Cell, cfg Config) int64 {
	if c.RecordsPerNode > 0 {
		// Scenario-level dataset override: per-node count applies on any
		// cluster (Cluster D's paper-fixed total is a config default, not
		// a law of the hardware).
		return int64(float64(c.RecordsPerNode*int64(c.Nodes)) * cfg.Scale)
	}
	if c.ClusterD {
		return int64(float64(cfg.ClusterDRecords) * cfg.Scale)
	}
	return int64(float64(cfg.RecordsPerNode*int64(c.Nodes)) * cfg.Scale)
}
