package harness

import (
	"flag"
	"os"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/ycsb"
)

// quickRunner is shared across tests: cells are cached, so shape assertions
// over the same cells cost one run. It is built in TestMain so that -short
// can shrink the simulated warmup/measure windows (testing.Short is only
// valid after flags are parsed).
var quickRunner *Runner

// testCfg returns Quick fidelity, or with -short the measurement windows
// halved: still long enough for every shape assertion (quartering starves
// the slowest scan cells of samples), but `go test -short` stays fast.
func testCfg() Config {
	cfg := Quick()
	if testing.Short() {
		cfg.Warmup = 100 * sim.Millisecond
		cfg.Measure = 300 * sim.Millisecond
	}
	return cfg
}

func TestMain(m *testing.M) {
	flag.Parse()
	quickRunner = NewRunner(testCfg())
	os.Exit(m.Run())
}

func cellOrFatal(t *testing.T, c Cell) CellResult {
	t.Helper()
	res, err := quickRunner.Run(c)
	if err != nil {
		t.Fatalf("cell %+v: %v", c, err)
	}
	return res
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.Defaults()
	if cfg.Scale != 0.01 || cfg.RecordsPerNode != 10_000_000 {
		t.Fatalf("defaults wrong: %+v", cfg)
	}
	if len(cfg.NodeCounts) == 0 || cfg.Measure == 0 {
		t.Fatalf("defaults missing sweep/measure: %+v", cfg)
	}
}

func TestDeployAllSystems(t *testing.T) {
	for _, sys := range AllSystems {
		dep, err := Deploy(1, sys, cluster.ClusterM(2), 0.001)
		if err != nil {
			t.Fatalf("deploy %s: %v", sys, err)
		}
		if dep.Store.Name() != string(sys) {
			t.Fatalf("deployed %q, got store %q", sys, dep.Store.Name())
		}
	}
	if _, err := Deploy(1, System("nope"), cluster.ClusterM(1), 0.01); err == nil {
		t.Fatal("unknown system accepted")
	}
}

func TestConnsPolicy(t *testing.T) {
	if got := Conns(Cassandra, 12, false); got != 1536 {
		t.Fatalf("cassandra 12-node conns = %d, want 1536 (paper §3)", got)
	}
	if got := Conns(Cassandra, 8, true); got != 64 {
		t.Fatalf("cluster D conns = %d, want 64 (2 per core)", got)
	}
	if got := Conns(Voldemort, 4, false); got >= 128 {
		t.Fatalf("voldemort conns = %d, want small pool (§6)", got)
	}
	if Conns(Redis, 12, false) >= Conns(Cassandra, 12, false) {
		t.Fatal("redis client threads must be reduced vs default (§6)")
	}
}

func TestSupportsWorkload(t *testing.T) {
	if SupportsWorkload(Voldemort, ycsb.WorkloadRS) {
		t.Fatal("voldemort must not support scan workloads")
	}
	if !SupportsWorkload(Voldemort, ycsb.WorkloadR) || !SupportsWorkload(Cassandra, ycsb.WorkloadRS) {
		t.Fatal("workload support matrix wrong")
	}
	updates := ycsb.Workload{Name: "U", ReadProp: 0.5, UpdateProp: 0.5}
	for _, sys := range AllSystems {
		if !SupportsWorkload(sys, updates) {
			t.Fatalf("%s must accept update mixes: the B-tree stores model read-modify-write now", sys)
		}
	}
	if SupportsWorkload(Voldemort, ycsb.Workload{Name: "US", ScanProp: 0.5, UpdateProp: 0.5, ScanLength: 10}) {
		t.Fatal("scan half of a mix must still exclude voldemort")
	}
}

// TestBTreeBulkVariantHostSideOnly pins the btree-bulk knob's contract:
// with the same seed, a deployment loading through the deferred bulk build
// and one forced onto the legacy per-record path produce bit-identical
// virtual-time results — the variant is an A/B profiling knob, never a
// model change. Unknown elsewhere: the knob is B-tree-store vocabulary.
func TestBTreeBulkVariantHostSideOnly(t *testing.T) {
	for _, sys := range []System{MySQL, Voldemort} {
		var tput [2]float64
		var readLat [2]sim.Time
		for i, v := range []string{"", "btree-bulk=off"} {
			dep, err := DeployVariants(7, sys, cluster.ClusterM(2), 0.001, v)
			if err != nil {
				t.Fatalf("%s deploy %q: %v", sys, v, err)
			}
			if err := ycsb.Load(dep.Store, 20000); err != nil {
				t.Fatal(err)
			}
			res, err := ycsb.Run(dep.Engine, ycsb.RunConfig{
				Store:          dep.Store,
				Workload:       ycsb.WorkloadRW,
				Clients:        8,
				InitialRecords: 20000,
				Warmup:         50 * sim.Millisecond,
				Measure:        200 * sim.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			tput[i], readLat[i] = res.Throughput(), res.MeanLatency(stats.OpRead)
		}
		if tput[0] != tput[1] || readLat[0] != readLat[1] {
			t.Fatalf("%s: btree-bulk=off shifted results: tput %v vs %v, read %v vs %v",
				sys, tput[0], tput[1], readLat[0], readLat[1])
		}
	}
	if _, err := DeployVariants(1, Cassandra, cluster.ClusterM(1), 0.001, "btree-bulk=off"); err == nil {
		t.Fatal("cassandra accepted the btree-bulk variant; it is B-tree-store vocabulary")
	}
}

func TestCellCaching(t *testing.T) {
	r := NewRunner(testCfg())
	c := Cell{System: Redis, Nodes: 1, Workload: "R"}
	a, err := r.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if a.Throughput != b.Throughput {
		t.Fatal("cached cell returned different result")
	}
}

func TestRunnerRejectsVoldemortScans(t *testing.T) {
	r := NewRunner(testCfg())
	if _, err := r.Run(Cell{System: Voldemort, Nodes: 1, Workload: "RS"}); err == nil {
		t.Fatal("voldemort RS cell should error")
	}
}

// --- Headline shape assertions (paper §5.9) at quick fidelity ---

func TestShapeWebStoresScaleLinearly(t *testing.T) {
	for _, sys := range []System{Cassandra, HBase, Voldemort} {
		one := cellOrFatal(t, Cell{System: sys, Nodes: 1, Workload: "R"})
		four := cellOrFatal(t, Cell{System: sys, Nodes: 4, Workload: "R"})
		speedup := four.Throughput / one.Throughput
		if speedup < 2.0 {
			t.Errorf("%s 1->4 node speedup = %.2f, want >= 2 (near-linear scaling)", sys, speedup)
		}
	}
}

func TestShapeVoltDBDoesNotScale(t *testing.T) {
	one := cellOrFatal(t, Cell{System: VoltDB, Nodes: 1, Workload: "R"})
	four := cellOrFatal(t, Cell{System: VoltDB, Nodes: 4, Workload: "R"})
	if four.Throughput >= one.Throughput {
		t.Errorf("VoltDB 4-node tput %.0f >= 1-node %.0f; paper shows negative scaling", four.Throughput, one.Throughput)
	}
}

func TestShapeSingleNodeOrdering(t *testing.T) {
	redis := cellOrFatal(t, Cell{System: Redis, Nodes: 1, Workload: "R"})
	voldemort := cellOrFatal(t, Cell{System: Voldemort, Nodes: 1, Workload: "R"})
	hbase := cellOrFatal(t, Cell{System: HBase, Nodes: 1, Workload: "R"})
	cassandra := cellOrFatal(t, Cell{System: Cassandra, Nodes: 1, Workload: "R"})
	if !(redis.Throughput > cassandra.Throughput) {
		t.Errorf("redis (%.0f) should lead cassandra (%.0f) on one node", redis.Throughput, cassandra.Throughput)
	}
	if !(cassandra.Throughput > voldemort.Throughput) {
		t.Errorf("cassandra (%.0f) should beat voldemort (%.0f) on one node", cassandra.Throughput, voldemort.Throughput)
	}
	if !(voldemort.Throughput > hbase.Throughput) {
		t.Errorf("voldemort (%.0f) should beat hbase (%.0f) on one node", voldemort.Throughput, hbase.Throughput)
	}
}

func TestShapeHBaseLatencyAsymmetry(t *testing.T) {
	res := cellOrFatal(t, Cell{System: HBase, Nodes: 2, Workload: "R"})
	if res.WriteLat*10 > res.ReadLat {
		t.Errorf("hbase write %v should be far below read %v (Fig 4 vs 5)", res.WriteLat, res.ReadLat)
	}
}

func TestShapeVoldemortLowestStableLatency(t *testing.T) {
	v := cellOrFatal(t, Cell{System: Voldemort, Nodes: 2, Workload: "R"})
	c := cellOrFatal(t, Cell{System: Cassandra, Nodes: 2, Workload: "R"})
	if v.ReadLat >= c.ReadLat {
		t.Errorf("voldemort read %v should undercut cassandra %v", v.ReadLat, c.ReadLat)
	}
	if v.ReadLat > sim.Millisecond {
		t.Errorf("voldemort read %v should be sub-millisecond", v.ReadLat)
	}
}

func TestShapeHBaseGainsFromWrites(t *testing.T) {
	r := cellOrFatal(t, Cell{System: HBase, Nodes: 2, Workload: "R"})
	w := cellOrFatal(t, Cell{System: HBase, Nodes: 2, Workload: "W"})
	if w.Throughput < 1.5*r.Throughput {
		t.Errorf("hbase W tput %.0f should be well above R %.0f (Fig 3 vs 9)", w.Throughput, r.Throughput)
	}
}

func TestShapeCassandraWritesSlowerThanReads(t *testing.T) {
	res := cellOrFatal(t, Cell{System: Cassandra, Nodes: 2, Workload: "R"})
	if res.WriteLat <= res.ReadLat {
		t.Errorf("cassandra write %v should exceed read %v (Fig 5: highest stable write latency)", res.WriteLat, res.ReadLat)
	}
}

func TestShapeMySQLScansCollapseWhenSharded(t *testing.T) {
	rs1 := cellOrFatal(t, Cell{System: MySQL, Nodes: 1, Workload: "RS"})
	rs4 := cellOrFatal(t, Cell{System: MySQL, Nodes: 4, Workload: "RS"})
	if rs4.Throughput > rs1.Throughput {
		t.Errorf("mysql RS tput grew with shards (%.0f -> %.0f); paper shows no scaling", rs1.Throughput, rs4.Throughput)
	}
	if rs4.ScanLat < rs1.ScanLat {
		t.Errorf("mysql scan latency should grow with shards: %v -> %v", rs1.ScanLat, rs4.ScanLat)
	}
}

func TestShapeClusterDThroughputRisesWithWriteRatio(t *testing.T) {
	if testing.Short() {
		// Cluster D loads 15x the records of Cluster M and the W-vs-R gap
		// is too narrow to assert on a halved measure window.
		t.Skip("cluster D cells need the full measure window")
	}
	for _, sys := range ClusterDSystems {
		r := cellOrFatal(t, Cell{System: sys, Nodes: 4, Workload: "R", ClusterD: true})
		w := cellOrFatal(t, Cell{System: sys, Nodes: 4, Workload: "W", ClusterD: true})
		// Voldemort's BDB pays b-tree disk I/O for writes just like reads,
		// so its W-vs-R ratio converges to ~1.0 (within sampling noise) in
		// this model rather than the LSM systems' multiples; assert it
		// holds disk-bound parity instead of a strict win.
		if sys == Voldemort {
			if ratio := w.Throughput / r.Throughput; ratio < 0.85 || ratio > 1.15 {
				t.Errorf("%s on Cluster D: W/R tput ratio %.2f left the parity band [0.85,1.15] (Fig 18)", sys, ratio)
			}
			continue
		}
		if w.Throughput <= r.Throughput {
			t.Errorf("%s on Cluster D: W tput %.0f should exceed R %.0f (Fig 18)", sys, w.Throughput, r.Throughput)
		}
	}
}

func TestBoundedRunThrottles(t *testing.T) {
	maxRes := cellOrFatal(t, Cell{System: Voldemort, Nodes: 2, Workload: "R"})
	half := cellOrFatal(t, Cell{System: Voldemort, Nodes: 2, Workload: "R", TargetFraction: 0.5})
	ratio := half.Throughput / maxRes.Throughput
	if ratio < 0.4 || ratio > 0.6 {
		t.Errorf("bounded run achieved %.2f of max, want ~0.5", ratio)
	}
	if half.ReadLat > maxRes.ReadLat {
		t.Errorf("bounded latency %v should not exceed max-load latency %v", half.ReadLat, maxRes.ReadLat)
	}
}

func TestFig17SeriesOrdering(t *testing.T) {
	fig, err := quickRunner.Fig17()
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]float64{}
	for _, s := range fig.Series {
		byLabel[s.Label] = s.Y[len(s.Y)-1] // largest node count
	}
	if !(byLabel["hbase"] > byLabel["voldemort"] && byLabel["voldemort"] >= byLabel["mysql"]*0.9 &&
		byLabel["mysql"] > byLabel["cassandra"] && byLabel["cassandra"] > byLabel["raw data"]) {
		t.Errorf("Fig 17 ordering wrong: %v (want hbase > voldemort ~ mysql > cassandra > raw)", byLabel)
	}
}

func TestTable1Rendering(t *testing.T) {
	tbl := Table1()
	for _, want := range []string{"R ", "RW", "RSW", "95", "47", "99"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, tbl)
		}
	}
}

func TestFigureRender(t *testing.T) {
	fig := Figure{ID: "x", Title: "T", XLabel: "nodes", YLabel: "ops",
		Series: []Series{{Label: "a", X: []float64{1, 2}, Y: []float64{10, 20}},
			{Label: "b", X: []float64{2}, Y: []float64{5}}}}
	out := fig.Render()
	if !strings.Contains(out, "Figure x: T") || !strings.Contains(out, "a") || !strings.Contains(out, "-") {
		t.Errorf("render output malformed:\n%s", out)
	}
}

func TestFiguresRegistryComplete(t *testing.T) {
	figs := quickRunner.Figures()
	if len(figs) != 18 {
		t.Fatalf("registry has %d figures, want 18 (Figs 3-20)", len(figs))
	}
	for _, id := range FigureOrder {
		if _, ok := figs[id]; !ok {
			t.Errorf("figure %s missing from registry", id)
		}
	}
}

func TestAblationsRegistry(t *testing.T) {
	abl := quickRunner.Ablations()
	if len(abl) != 9 {
		t.Fatalf("ablation registry has %d entries, want 9", len(abl))
	}
}

func TestRenderCSV(t *testing.T) {
	fig := Figure{ID: "9", Title: "T", XLabel: "nodes",
		Series: []Series{{Label: "a,b", X: []float64{1, 2}, Y: []float64{10, 20}},
			{Label: "c", X: []float64{1}, Y: []float64{5}}}}
	out := fig.RenderCSV()
	if !strings.Contains(out, `"a,b"`) {
		t.Errorf("label with comma not quoted:\n%s", out)
	}
	if !strings.Contains(out, "1,10,5") || !strings.Contains(out, "2,20,") {
		t.Errorf("csv rows wrong:\n%s", out)
	}
}

func TestRepetitionsAverage(t *testing.T) {
	cfg := Quick()
	cfg.Repetitions = 2
	r := NewRunner(cfg)
	res, err := r.Run(Cell{System: Redis, Nodes: 1, Workload: "R"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput <= 0 {
		t.Fatal("averaged cell has no throughput")
	}
	// Ops accumulate across repetitions.
	single := NewRunner(testCfg())
	one, err := single.Run(Cell{System: Redis, Nodes: 1, Workload: "R"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops <= one.Ops {
		t.Fatalf("2-rep ops %d should exceed 1-rep ops %d", res.Ops, one.Ops)
	}
}

func TestExplainReportsUtilization(t *testing.T) {
	r := NewRunner(testCfg())
	ex, err := r.Explain(Cell{System: Cassandra, Nodes: 2, Workload: "R"})
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Nodes) != 2 {
		t.Fatalf("explanation covers %d nodes, want 2", len(ex.Nodes))
	}
	// Max-throughput Cassandra is CPU bound; utilization must show it.
	if ex.Nodes[0].CPU < 0.5 {
		t.Fatalf("cpu utilization %.2f, want saturated under max load", ex.Nodes[0].CPU)
	}
	out := ex.Render()
	if !strings.Contains(out, "bottleneck: cpu") {
		t.Errorf("render did not name the cpu bottleneck:\n%s", out)
	}
}

func TestExplainRejectsBadCell(t *testing.T) {
	r := NewRunner(testCfg())
	if _, err := r.Explain(Cell{System: Voldemort, Nodes: 1, Workload: "RS"}); err == nil {
		t.Fatal("explain accepted voldemort scans")
	}
}

// TestCompactionThresholdVariant pins the compaction-threshold deploy
// variant: it is real model vocabulary (unlike btree-bulk it changes the
// compaction schedule, so modeled numbers move), it reaches the LSM config
// on both LSM stores, and malformed or misdirected forms are rejected.
func TestCompactionThresholdVariant(t *testing.T) {
	run := func(sys System, v string) (float64, int64) {
		dep, err := DeployVariants(7, sys, cluster.ClusterM(2), 0.001, v)
		if err != nil {
			t.Fatalf("%s deploy %q: %v", sys, v, err)
		}
		if err := ycsb.Load(dep.Store, 20000); err != nil {
			t.Fatal(err)
		}
		res, err := ycsb.Run(dep.Engine, ycsb.RunConfig{
			Store:          dep.Store,
			Workload:       ycsb.WorkloadW,
			Clients:        8,
			InitialRecords: 20000,
			Warmup:         50 * sim.Millisecond,
			Measure:        200 * sim.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Throughput(), dep.Store.DiskUsage()
	}

	// An eager threshold compacts tiers that the default of 4 leaves
	// alone, so Cassandra's write-heavy cell must shift.
	defTput, defDisk := run(Cassandra, "")
	eagerTput, eagerDisk := run(Cassandra, "compaction-threshold=2")
	if defTput == eagerTput && defDisk == eagerDisk {
		t.Fatalf("cassandra compaction-threshold=2 changed nothing (tput %v, disk %d); variant not reaching the LSM",
			defTput, defDisk)
	}
	// HBase accepts the same vocabulary (its write cell is too small here
	// to accumulate a tier, so only deployability is asserted).
	run(HBase, "compaction-threshold=2")

	for _, bad := range []struct {
		sys System
		v   string
	}{
		{Redis, "compaction-threshold=2"},     // not an LSM store
		{MySQL, "compaction-threshold=2"},     // not an LSM store
		{Cassandra, "compaction-threshold=1"}, // below the minimum of 2
		{Cassandra, "compaction-threshold=x"}, // not an integer
		{HBase, "compaction-threshold="},      // empty value
	} {
		if _, err := DeployVariants(1, bad.sys, cluster.ClusterM(1), 0.001, bad.v); err == nil {
			t.Fatalf("%s accepted %q", bad.sys, bad.v)
		}
	}
}

// TestBatchSizeVariant pins the hbase batch-size deploy variant: a
// one-record write buffer flushes an RPC per put where the default of 128
// amortizes it, so HBase's write-heavy cell must shift; other systems and
// malformed forms are rejected.
func TestBatchSizeVariant(t *testing.T) {
	run := func(v string) float64 {
		dep, err := DeployVariants(7, HBase, cluster.ClusterM(2), 0.001, v)
		if err != nil {
			t.Fatalf("hbase deploy %q: %v", v, err)
		}
		if err := ycsb.Load(dep.Store, 20000); err != nil {
			t.Fatal(err)
		}
		res, err := ycsb.Run(dep.Engine, ycsb.RunConfig{
			Store:          dep.Store,
			Workload:       ycsb.WorkloadW,
			Clients:        8,
			InitialRecords: 20000,
			Warmup:         50 * sim.Millisecond,
			Measure:        200 * sim.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Throughput()
	}

	defTput := run("")
	unbatched := run("batch-size=1")
	if defTput == unbatched {
		t.Fatalf("hbase batch-size=1 changed nothing (tput %v); variant not reaching the client buffer", defTput)
	}
	// The default spelled out explicitly must reproduce the paper cell.
	if explicit := run("batch-size=128"); explicit != defTput {
		t.Fatalf("batch-size=128 (%v) differs from default (%v)", explicit, defTput)
	}

	for _, bad := range []struct {
		sys System
		v   string
	}{
		{Cassandra, "batch-size=64"}, // hbase-only vocabulary
		{Redis, "batch-size=64"},
		{HBase, "batch-size=0"}, // below the minimum of 1
		{HBase, "batch-size=x"}, // not an integer
		{HBase, "batch-size="},  // empty value
	} {
		if _, err := DeployVariants(1, bad.sys, cluster.ClusterM(1), 0.001, bad.v); err == nil {
			t.Fatalf("%s accepted %q", bad.sys, bad.v)
		}
	}
}

// TestSitesPerHostVariant pins the voltdb sites-per-host deploy variant:
// it resizes the partition ring, so keys hash to different single-threaded
// sites and the cell's numbers move; other systems and malformed forms are
// rejected.
func TestSitesPerHostVariant(t *testing.T) {
	run := func(v string) float64 {
		dep, err := DeployVariants(7, VoltDB, cluster.ClusterM(2), 0.001, v)
		if err != nil {
			t.Fatalf("voltdb deploy %q: %v", v, err)
		}
		if err := ycsb.Load(dep.Store, 20000); err != nil {
			t.Fatal(err)
		}
		res, err := ycsb.Run(dep.Engine, ycsb.RunConfig{
			Store:          dep.Store,
			Workload:       ycsb.WorkloadW,
			Clients:        8,
			InitialRecords: 20000,
			Warmup:         50 * sim.Millisecond,
			Measure:        200 * sim.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Throughput()
	}

	defTput := run("")
	single := run("sites-per-host=1")
	if defTput == single {
		t.Fatalf("voltdb sites-per-host=1 changed nothing (tput %v); variant not reaching the ring", defTput)
	}
	// The paper's default spelled out explicitly must reproduce the cell.
	if explicit := run("sites-per-host=6"); explicit != defTput {
		t.Fatalf("sites-per-host=6 (%v) differs from default (%v)", explicit, defTput)
	}

	for _, bad := range []struct {
		sys System
		v   string
	}{
		{MySQL, "sites-per-host=4"}, // voltdb-only vocabulary
		{HBase, "sites-per-host=4"},
		{VoltDB, "sites-per-host=0"}, // below the minimum of 1
		{VoltDB, "sites-per-host=x"}, // not an integer
		{VoltDB, "sites-per-host="},  // empty value
	} {
		if _, err := DeployVariants(1, bad.sys, cluster.ClusterM(1), 0.001, bad.v); err == nil {
			t.Fatalf("%s accepted %q", bad.sys, bad.v)
		}
	}
}
