package harness

import (
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/sim"
)

// A node-kill cell must show the availability dip during the fault window
// and recovery after the restart — the tentpole acceptance check at test
// fidelity.
func TestNodeKillCellShowsDipAndRecovery(t *testing.T) {
	r := NewRunner(Quick())
	c := Cell{
		System:   Cassandra,
		Nodes:    4,
		Workload: "R",
		Faults:   "kill-node@1[0.4:0.7]",
	}
	res, err := r.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	w := res.Windows
	if w == nil || w.Windows() == 0 {
		t.Fatal("faulted cell collected no windows")
	}
	// The schedule is fractions of warmup+measure; windows span only the
	// measurement period. Classify each window by the fault's position.
	cfg := r.Cfg
	total := cfg.Warmup + cfg.Measure
	killAt := sim.Time(0.4 * float64(total))
	upAt := sim.Time(0.7 * float64(total))
	var before, during, after float64
	var nBefore, nDuring, nAfter int
	for i := 0; i < w.Windows(); i++ {
		mid := w.WindowStart(i) + w.Interval()/2
		av := w.Availability(i)
		switch {
		case mid < killAt:
			before += av
			nBefore++
		case mid < upAt:
			during += av
			nDuring++
		default:
			after += av
			nAfter++
		}
	}
	if nBefore == 0 || nDuring == 0 || nAfter == 0 {
		t.Fatalf("fault window not covered: before=%d during=%d after=%d", nBefore, nDuring, nAfter)
	}
	before /= float64(nBefore)
	during /= float64(nDuring)
	after /= float64(nAfter)
	if before < 0.99 {
		t.Errorf("pre-fault availability = %g, want ~1", before)
	}
	if during > before-0.05 {
		t.Errorf("availability did not dip during the kill: before=%g during=%g", before, during)
	}
	if after < during+0.05 {
		t.Errorf("availability did not recover after restart: during=%g after=%g", during, after)
	}
	if res.Errors == 0 {
		t.Error("node-kill run recorded no errors")
	}
}

// Fault schedules extend the cache key only when present, so every
// pre-existing cell keeps its key, seed, and cached result.
func TestFaultKeyExtension(t *testing.T) {
	r := NewRunner(Quick())
	plain := Cell{System: Cassandra, Nodes: 4, Workload: "R"}
	faulted := plain
	faulted.Faults = "kill-node@1[0.4:0.7]"
	pk, fk := r.key(plain), r.key(faulted)
	if strings.Contains(pk, "flt=") {
		t.Fatalf("plain cell key %q mentions faults", pk)
	}
	if !strings.HasPrefix(fk, pk) || !strings.HasSuffix(fk, "/flt=kill-node@1[0.4:0.7]") {
		t.Fatalf("faulted key %q does not extend plain key %q", fk, pk)
	}
}

// The scenario fault vocabulary round-trips into cells: every cell carries
// the canonical schedule string, and validation rejects schedules that
// target nodes outside the grid.
func TestScenarioFaultWiring(t *testing.T) {
	data := []byte(`{
		"name": "kill-test",
		"systems": ["cassandra"],
		"workloads": [{"name": "R"}],
		"nodes": [4],
		"faults": [{"kind": "kill-node", "node": 1, "start": 0.4, "end": 0.7}]
	}`)
	s, err := ParseScenario(data)
	if err != nil {
		t.Fatal(err)
	}
	cells, err := s.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 {
		t.Fatalf("got %d cells, want 1", len(cells))
	}
	want := fault.Schedule{{Kind: fault.KillNode, Node: 1, Start: 0.4, End: 0.7}}.String()
	if cells[0].Faults != want {
		t.Fatalf("cell faults = %q, want %q", cells[0].Faults, want)
	}

	bad := []byte(`{
		"name": "oob",
		"systems": ["cassandra"],
		"workloads": [{"name": "R"}],
		"nodes": [2],
		"faults": [{"kind": "kill-node", "node": 3, "start": 0.4}]
	}`)
	if _, err := ParseScenario(bad); err == nil || !strings.Contains(err.Error(), "targets node 3") {
		t.Fatalf("out-of-grid fault accepted: %v", err)
	}
}
