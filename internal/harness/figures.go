package harness

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
)

// Series is one line in a figure: a label with X/Y points.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Figure is a regenerated paper figure: the same series the paper plots.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// Appendix is extra pre-formatted detail appended verbatim after the
	// table by Render and RenderCSV (e.g. a fault scenario's per-window
	// recovery curves). Empty for every paper figure, so their rendered
	// output is unchanged.
	Appendix string
}

// Render formats the figure as an aligned text table (systems as columns).
// Column width tracks the longest series label, so scenario series (whose
// labels carry workload and variant names) stay aligned.
func (f Figure) Render() string {
	colWidth := 16
	for _, s := range f.Series {
		if w := len(s.Label) + 2; w > colWidth {
			colWidth = w
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure %s: %s\n", f.ID, f.Title)
	fmt.Fprintf(&b, "%-12s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "%*s", colWidth, s.Label)
	}
	fmt.Fprintf(&b, "    (%s)\n", f.YLabel)
	// Collect the union of X values.
	xs := map[float64]bool{}
	for _, s := range f.Series {
		for _, x := range s.X {
			xs[x] = true
		}
	}
	var order []float64
	for x := range xs {
		order = append(order, x)
	}
	sort.Float64s(order)
	for _, x := range order {
		fmt.Fprintf(&b, "%-12.4g", x)
		for _, s := range f.Series {
			found := false
			for i := range s.X {
				if s.X[i] == x {
					fmt.Fprintf(&b, "%*.4g", colWidth, s.Y[i])
					found = true
					break
				}
			}
			if !found {
				fmt.Fprintf(&b, "%*s", colWidth, "-")
			}
		}
		b.WriteByte('\n')
	}
	b.WriteString(f.Appendix)
	return b.String()
}

// RenderCSV formats the figure as CSV: one row per X value, one column per
// series, empty cells for missing points.
func (f Figure) RenderCSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# figure %s: %s\n", f.ID, f.Title)
	b.WriteString(csvEscape(f.XLabel))
	for _, s := range f.Series {
		b.WriteByte(',')
		b.WriteString(csvEscape(s.Label))
	}
	b.WriteByte('\n')
	xs := map[float64]bool{}
	for _, s := range f.Series {
		for _, x := range s.X {
			xs[x] = true
		}
	}
	var order []float64
	for x := range xs {
		order = append(order, x)
	}
	sort.Float64s(order)
	for _, x := range order {
		fmt.Fprintf(&b, "%g", x)
		for _, s := range f.Series {
			b.WriteByte(',')
			for i := range s.X {
				if s.X[i] == x {
					fmt.Fprintf(&b, "%g", s.Y[i])
					break
				}
			}
		}
		b.WriteByte('\n')
	}
	b.WriteString(f.Appendix)
	return b.String()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return "\"" + strings.ReplaceAll(s, "\"", "\"\"") + "\""
	}
	return s
}

// metric extracts one Y value from a cell result.
type metric func(CellResult) float64

func throughputMetric(r CellResult) float64 { return r.Throughput }
func latencyMs(t sim.Time) float64          { return float64(t) / float64(sim.Millisecond) }
func readLatMetric(r CellResult) float64    { return latencyMs(r.ReadLat) }
func writeLatMetric(r CellResult) float64   { return latencyMs(r.WriteLat) }
func scanLatMetric(r CellResult) float64    { return latencyMs(r.ScanLat) }

// figure plans a figure's cells, executes them through the worker pool,
// and assembles the series from the warm cache.
func (r *Runner) figure(id string) (Figure, error) {
	spec, ok := specFor(id)
	if !ok {
		return Figure{}, fmt.Errorf("harness: unknown figure %q", id)
	}
	if err := r.RunAll(r.CellsFor(id)); err != nil {
		return Figure{}, fmt.Errorf("fig %s: %w", id, err)
	}
	switch spec.kind {
	case kindBounded:
		return r.buildBounded(spec)
	case kindDisk:
		return r.buildDisk(spec)
	case kindClusterD:
		return r.buildClusterD(spec)
	default:
		return r.buildSweep(spec)
	}
}

// buildSweep assembles (system, nodes) cells over the node sweep for one
// workload.
func (r *Runner) buildSweep(spec figSpec) (Figure, error) {
	fig := Figure{ID: spec.id, Title: spec.title, XLabel: "nodes", YLabel: spec.yLabel}
	for _, sys := range spec.systems {
		s := Series{Label: string(sys)}
		for _, n := range r.Cfg.NodeCounts {
			res, err := r.Run(Cell{System: sys, Nodes: n, Workload: spec.workload})
			if err != nil {
				return Figure{}, fmt.Errorf("fig %s %s n=%d: %w", spec.id, sys, n, err)
			}
			s.X = append(s.X, float64(n))
			s.Y = append(s.Y, spec.m(res))
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig3 regenerates "Throughput for Workload R".
func (r *Runner) Fig3() (Figure, error) { return r.figure("3") }

// Fig4 regenerates "Read latency for Workload R".
func (r *Runner) Fig4() (Figure, error) { return r.figure("4") }

// Fig5 regenerates "Write latency for Workload R".
func (r *Runner) Fig5() (Figure, error) { return r.figure("5") }

// Fig6 regenerates "Throughput for Workload RW".
func (r *Runner) Fig6() (Figure, error) { return r.figure("6") }

// Fig7 regenerates "Read latency for Workload RW".
func (r *Runner) Fig7() (Figure, error) { return r.figure("7") }

// Fig8 regenerates "Write latency for Workload RW".
func (r *Runner) Fig8() (Figure, error) { return r.figure("8") }

// Fig9 regenerates "Throughput for Workload W".
func (r *Runner) Fig9() (Figure, error) { return r.figure("9") }

// Fig10 regenerates "Read latency for Workload W".
func (r *Runner) Fig10() (Figure, error) { return r.figure("10") }

// Fig11 regenerates "Write latency for Workload W".
func (r *Runner) Fig11() (Figure, error) { return r.figure("11") }

// Fig12 regenerates "Throughput for Workload RS".
func (r *Runner) Fig12() (Figure, error) { return r.figure("12") }

// Fig13 regenerates "Scan latency for Workload RS".
func (r *Runner) Fig13() (Figure, error) { return r.figure("13") }

// Fig14 regenerates "Throughput for Workload RSW".
func (r *Runner) Fig14() (Figure, error) { return r.figure("14") }

// boundedSystems are the systems in the bounded-throughput experiment
// (§5.6 dropped VoltDB for its prohibitive multi-node latency).
var boundedSystems = []System{Cassandra, HBase, Voldemort, MySQL, Redis}

// boundedFractions are the load levels of Figs 15/16.
var boundedFractions = []float64{0.50, 0.60, 0.70, 0.80, 0.90, 0.95}

// buildBounded assembles latency at fractions of maximum throughput on 8
// nodes, normalized to the latency at 100% load (x100).
func (r *Runner) buildBounded(spec figSpec) (Figure, error) {
	fig := Figure{ID: spec.id, Title: spec.title, XLabel: "% of max tput", YLabel: "latency normalized to max-load (=100)"}
	for _, sys := range spec.systems {
		maxRes, err := r.Run(Cell{System: sys, Nodes: boundedNodes, Workload: spec.workload})
		if err != nil {
			return Figure{}, err
		}
		base := spec.m(maxRes)
		s := Series{Label: string(sys)}
		for _, f := range boundedFractions {
			res, err := r.Run(Cell{System: sys, Nodes: boundedNodes, Workload: spec.workload, TargetFraction: f})
			if err != nil {
				return Figure{}, err
			}
			norm := 0.0
			if base > 0 {
				norm = 100 * spec.m(res) / base
			}
			s.X = append(s.X, f*100)
			s.Y = append(s.Y, norm)
		}
		s.X = append(s.X, 100)
		s.Y = append(s.Y, 100)
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig15 regenerates "Read latency for bounded throughput on Workload R".
func (r *Runner) Fig15() (Figure, error) { return r.figure("15") }

// Fig16 regenerates "Write latency for bounded throughput on Workload R".
func (r *Runner) Fig16() (Figure, error) { return r.figure("16") }

// buildDisk assembles "Disk usage for 10 million records", in paper-scale
// GB, including the raw-data reference line.
func (r *Runner) buildDisk(spec figSpec) (Figure, error) {
	fig := Figure{ID: spec.id, Title: spec.title, XLabel: "nodes", YLabel: spec.yLabel}
	for _, sys := range spec.systems {
		s := Series{Label: string(sys)}
		for _, n := range r.Cfg.NodeCounts {
			res, err := r.LoadOnly(sys, n)
			if err != nil {
				return Figure{}, err
			}
			s.X = append(s.X, float64(n))
			s.Y = append(s.Y, res.DiskBytesPaperScale/1e9)
		}
		fig.Series = append(fig.Series, s)
	}
	raw := Series{Label: "raw data"}
	for _, n := range r.Cfg.NodeCounts {
		raw.X = append(raw.X, float64(n))
		raw.Y = append(raw.Y, float64(r.Cfg.RecordsPerNode*int64(n))*70/1e9)
	}
	fig.Series = append(fig.Series, raw)
	return fig, nil
}

// Fig17 regenerates "Disk usage for 10 million records".
func (r *Runner) Fig17() (Figure, error) { return r.figure("17") }

// buildClusterD assembles the Cluster D bar charts (Figs 18-20): 8 nodes,
// workloads R/RW/W, systems Cassandra/HBase/Voldemort.
func (r *Runner) buildClusterD(spec figSpec) (Figure, error) {
	fig := Figure{ID: spec.id, Title: spec.title, XLabel: "workload#", YLabel: spec.yLabel + " [x=1:R 2:RW 3:W]"}
	for _, sys := range spec.systems {
		s := Series{Label: string(sys)}
		for i, wl := range clusterDWorkloads {
			res, err := r.Run(Cell{System: sys, Nodes: clusterDNodes, Workload: wl, ClusterD: true})
			if err != nil {
				return Figure{}, err
			}
			s.X = append(s.X, float64(i+1))
			s.Y = append(s.Y, spec.m(res))
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig18 regenerates "Throughput for 8 nodes in Cluster D".
func (r *Runner) Fig18() (Figure, error) { return r.figure("18") }

// Fig19 regenerates "Read latency for 8 nodes in Cluster D".
func (r *Runner) Fig19() (Figure, error) { return r.figure("19") }

// Fig20 regenerates "Write latency for 8 nodes in Cluster D".
func (r *Runner) Fig20() (Figure, error) { return r.figure("20") }

// Table1 renders the workload specification table.
func Table1() string {
	var b strings.Builder
	b.WriteString("Table 1: Workload specifications\n")
	fmt.Fprintf(&b, "%-10s%10s%10s%10s\n", "Workload", "% Read", "% Scans", "% Inserts")
	rows := []struct {
		name                string
		read, scans, insert int
	}{
		{"R", 95, 0, 5}, {"RW", 50, 0, 50}, {"W", 1, 0, 99},
		{"RS", 47, 47, 6}, {"RSW", 25, 25, 50},
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s%10d%10d%10d\n", r.name, r.read, r.scans, r.insert)
	}
	return b.String()
}

// Figures maps figure IDs to their generators.
func (r *Runner) Figures() map[string]func() (Figure, error) {
	figs := make(map[string]func() (Figure, error), len(figSpecs))
	for _, spec := range figSpecs {
		id := spec.id
		figs[id] = func() (Figure, error) { return r.figure(id) }
	}
	return figs
}

// FigureOrder lists figure IDs in paper order.
var FigureOrder = func() []string {
	ids := make([]string, len(figSpecs))
	for i, s := range figSpecs {
		ids[i] = s.id
	}
	return ids
}()
