package harness

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
)

// Series is one line in a figure: a label with X/Y points.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Figure is a regenerated paper figure: the same series the paper plots.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Render formats the figure as an aligned text table (systems as columns).
func (f Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure %s: %s\n", f.ID, f.Title)
	fmt.Fprintf(&b, "%-12s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "%16s", s.Label)
	}
	fmt.Fprintf(&b, "    (%s)\n", f.YLabel)
	// Collect the union of X values.
	xs := map[float64]bool{}
	for _, s := range f.Series {
		for _, x := range s.X {
			xs[x] = true
		}
	}
	var order []float64
	for x := range xs {
		order = append(order, x)
	}
	sort.Float64s(order)
	for _, x := range order {
		fmt.Fprintf(&b, "%-12.4g", x)
		for _, s := range f.Series {
			found := false
			for i := range s.X {
				if s.X[i] == x {
					fmt.Fprintf(&b, "%16.4g", s.Y[i])
					found = true
					break
				}
			}
			if !found {
				fmt.Fprintf(&b, "%16s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderCSV formats the figure as CSV: one row per X value, one column per
// series, empty cells for missing points.
func (f Figure) RenderCSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# figure %s: %s\n", f.ID, f.Title)
	b.WriteString(csvEscape(f.XLabel))
	for _, s := range f.Series {
		b.WriteByte(',')
		b.WriteString(csvEscape(s.Label))
	}
	b.WriteByte('\n')
	xs := map[float64]bool{}
	for _, s := range f.Series {
		for _, x := range s.X {
			xs[x] = true
		}
	}
	var order []float64
	for x := range xs {
		order = append(order, x)
	}
	sort.Float64s(order)
	for _, x := range order {
		fmt.Fprintf(&b, "%g", x)
		for _, s := range f.Series {
			b.WriteByte(',')
			for i := range s.X {
				if s.X[i] == x {
					fmt.Fprintf(&b, "%g", s.Y[i])
					break
				}
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return "\"" + strings.ReplaceAll(s, "\"", "\"\"") + "\""
	}
	return s
}

// metric extracts one Y value from a cell result.
type metric func(CellResult) float64

func throughputMetric(r CellResult) float64 { return r.Throughput }
func latencyMs(t sim.Time) float64          { return float64(t) / float64(sim.Millisecond) }
func readLatMetric(r CellResult) float64    { return latencyMs(r.ReadLat) }
func writeLatMetric(r CellResult) float64   { return latencyMs(r.WriteLat) }
func scanLatMetric(r CellResult) float64    { return latencyMs(r.ScanLat) }

// sweep runs (system, nodes) cells over the node sweep for one workload.
func (r *Runner) sweep(id, title, ylabel, workload string, systems []System, m metric) (Figure, error) {
	fig := Figure{ID: id, Title: title, XLabel: "nodes", YLabel: ylabel}
	for _, sys := range systems {
		s := Series{Label: string(sys)}
		for _, n := range r.Cfg.NodeCounts {
			res, err := r.Run(Cell{System: sys, Nodes: n, Workload: workload})
			if err != nil {
				return Figure{}, fmt.Errorf("fig %s %s n=%d: %w", id, sys, n, err)
			}
			s.X = append(s.X, float64(n))
			s.Y = append(s.Y, m(res))
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig3 regenerates "Throughput for Workload R".
func (r *Runner) Fig3() (Figure, error) {
	return r.sweep("3", "Throughput for Workload R", "ops/sec", "R", AllSystems, throughputMetric)
}

// Fig4 regenerates "Read latency for Workload R".
func (r *Runner) Fig4() (Figure, error) {
	return r.sweep("4", "Read latency for Workload R", "ms", "R", AllSystems, readLatMetric)
}

// Fig5 regenerates "Write latency for Workload R".
func (r *Runner) Fig5() (Figure, error) {
	return r.sweep("5", "Write latency for Workload R", "ms", "R", AllSystems, writeLatMetric)
}

// Fig6 regenerates "Throughput for Workload RW".
func (r *Runner) Fig6() (Figure, error) {
	return r.sweep("6", "Throughput for Workload RW", "ops/sec", "RW", AllSystems, throughputMetric)
}

// Fig7 regenerates "Read latency for Workload RW".
func (r *Runner) Fig7() (Figure, error) {
	return r.sweep("7", "Read latency for Workload RW", "ms", "RW", AllSystems, readLatMetric)
}

// Fig8 regenerates "Write latency for Workload RW".
func (r *Runner) Fig8() (Figure, error) {
	return r.sweep("8", "Write latency for Workload RW", "ms", "RW", AllSystems, writeLatMetric)
}

// Fig9 regenerates "Throughput for Workload W".
func (r *Runner) Fig9() (Figure, error) {
	return r.sweep("9", "Throughput for Workload W", "ops/sec", "W", AllSystems, throughputMetric)
}

// Fig10 regenerates "Read latency for Workload W".
func (r *Runner) Fig10() (Figure, error) {
	return r.sweep("10", "Read latency for Workload W", "ms", "W", AllSystems, readLatMetric)
}

// Fig11 regenerates "Write latency for Workload W".
func (r *Runner) Fig11() (Figure, error) {
	return r.sweep("11", "Write latency for Workload W", "ms", "W", AllSystems, writeLatMetric)
}

// Fig12 regenerates "Throughput for Workload RS".
func (r *Runner) Fig12() (Figure, error) {
	return r.sweep("12", "Throughput for Workload RS", "ops/sec", "RS", ScanSystems, throughputMetric)
}

// Fig13 regenerates "Scan latency for Workload RS".
func (r *Runner) Fig13() (Figure, error) {
	return r.sweep("13", "Scan latency for Workload RS", "ms", "RS", ScanSystems, scanLatMetric)
}

// Fig14 regenerates "Throughput for Workload RSW".
func (r *Runner) Fig14() (Figure, error) {
	return r.sweep("14", "Throughput for Workload RSW", "ops/sec", "RSW", ScanSystems, throughputMetric)
}

// boundedSystems are the systems in the bounded-throughput experiment
// (§5.6 dropped VoltDB for its prohibitive multi-node latency).
var boundedSystems = []System{Cassandra, HBase, Voldemort, MySQL, Redis}

// boundedFractions are the load levels of Figs 15/16.
var boundedFractions = []float64{0.50, 0.60, 0.70, 0.80, 0.90, 0.95}

// bounded measures latency at fractions of maximum throughput on 8 nodes,
// normalized to the latency at 100% load (x100).
func (r *Runner) bounded(id, title string, m metric) (Figure, error) {
	const nodes = 8
	fig := Figure{ID: id, Title: title, XLabel: "% of max tput", YLabel: "latency normalized to max-load (=100)"}
	for _, sys := range boundedSystems {
		maxRes, err := r.Run(Cell{System: sys, Nodes: nodes, Workload: "R"})
		if err != nil {
			return Figure{}, err
		}
		base := m(maxRes)
		s := Series{Label: string(sys)}
		for _, f := range boundedFractions {
			res, err := r.Run(Cell{System: sys, Nodes: nodes, Workload: "R", TargetFraction: f})
			if err != nil {
				return Figure{}, err
			}
			norm := 0.0
			if base > 0 {
				norm = 100 * m(res) / base
			}
			s.X = append(s.X, f*100)
			s.Y = append(s.Y, norm)
		}
		s.X = append(s.X, 100)
		s.Y = append(s.Y, 100)
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig15 regenerates "Read latency for bounded throughput on Workload R".
func (r *Runner) Fig15() (Figure, error) {
	return r.bounded("15", "Read latency for bounded throughput on Workload R", readLatMetric)
}

// Fig16 regenerates "Write latency for bounded throughput on Workload R".
func (r *Runner) Fig16() (Figure, error) {
	return r.bounded("16", "Write latency for bounded throughput on Workload R", writeLatMetric)
}

// Fig17 regenerates "Disk usage for 10 million records", in paper-scale GB,
// including the raw-data reference line.
func (r *Runner) Fig17() (Figure, error) {
	fig := Figure{ID: "17", Title: "Disk usage for 10 million records per node", XLabel: "nodes", YLabel: "GB"}
	for _, sys := range DiskSystems {
		s := Series{Label: string(sys)}
		for _, n := range r.Cfg.NodeCounts {
			res, err := r.LoadOnly(sys, n)
			if err != nil {
				return Figure{}, err
			}
			s.X = append(s.X, float64(n))
			s.Y = append(s.Y, res.DiskBytesPaperScale/1e9)
		}
		fig.Series = append(fig.Series, s)
	}
	raw := Series{Label: "raw data"}
	for _, n := range r.Cfg.NodeCounts {
		raw.X = append(raw.X, float64(n))
		raw.Y = append(raw.Y, float64(r.Cfg.RecordsPerNode*int64(n))*70/1e9)
	}
	fig.Series = append(fig.Series, raw)
	return fig, nil
}

// clusterD builds the Cluster D bar charts (Figs 18-20): 8 nodes, workloads
// R/RW/W, systems Cassandra/HBase/Voldemort.
func (r *Runner) clusterD(id, title, ylabel string, m metric) (Figure, error) {
	const nodes = 8
	fig := Figure{ID: id, Title: title, XLabel: "workload#", YLabel: ylabel + " [x=1:R 2:RW 3:W]"}
	for _, sys := range ClusterDSystems {
		s := Series{Label: string(sys)}
		for i, wl := range []string{"R", "RW", "W"} {
			res, err := r.Run(Cell{System: sys, Nodes: nodes, Workload: wl, ClusterD: true})
			if err != nil {
				return Figure{}, err
			}
			s.X = append(s.X, float64(i+1))
			s.Y = append(s.Y, m(res))
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig18 regenerates "Throughput for 8 nodes in Cluster D".
func (r *Runner) Fig18() (Figure, error) {
	return r.clusterD("18", "Throughput for 8 nodes in Cluster D", "ops/sec", throughputMetric)
}

// Fig19 regenerates "Read latency for 8 nodes in Cluster D".
func (r *Runner) Fig19() (Figure, error) {
	return r.clusterD("19", "Read latency for 8 nodes in Cluster D", "ms", readLatMetric)
}

// Fig20 regenerates "Write latency for 8 nodes in Cluster D".
func (r *Runner) Fig20() (Figure, error) {
	return r.clusterD("20", "Write latency for 8 nodes in Cluster D", "ms", writeLatMetric)
}

// Table1 renders the workload specification table.
func Table1() string {
	var b strings.Builder
	b.WriteString("Table 1: Workload specifications\n")
	fmt.Fprintf(&b, "%-10s%10s%10s%10s\n", "Workload", "% Read", "% Scans", "% Inserts")
	rows := []struct {
		name                string
		read, scans, insert int
	}{
		{"R", 95, 0, 5}, {"RW", 50, 0, 50}, {"W", 1, 0, 99},
		{"RS", 47, 47, 6}, {"RSW", 25, 25, 50},
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s%10d%10d%10d\n", r.name, r.read, r.scans, r.insert)
	}
	return b.String()
}

// Figures maps figure IDs to their generators.
func (r *Runner) Figures() map[string]func() (Figure, error) {
	return map[string]func() (Figure, error){
		"3": r.Fig3, "4": r.Fig4, "5": r.Fig5,
		"6": r.Fig6, "7": r.Fig7, "8": r.Fig8,
		"9": r.Fig9, "10": r.Fig10, "11": r.Fig11,
		"12": r.Fig12, "13": r.Fig13, "14": r.Fig14,
		"15": r.Fig15, "16": r.Fig16, "17": r.Fig17,
		"18": r.Fig18, "19": r.Fig19, "20": r.Fig20,
	}
}

// FigureOrder lists figure IDs in paper order.
var FigureOrder = []string{"3", "4", "5", "6", "7", "8", "9", "10", "11", "12", "13", "14", "15", "16", "17", "18", "19", "20"}
