package harness

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/query"
)

const queryScenarioJSON = `{
  "name": "dash",
  "description": "analytic grid",
  "systems": ["cassandra", "voldemort", "mysql"],
  "queries": [
    {"name": "overview", "weight": 4, "windowSec": 600, "aggs": ["avg", "max"]},
    {"name": "hot", "windowSec": 1800, "filter": "value>80", "aggs": ["count"], "orderBy": "count", "desc": true, "limit": 5}
  ],
  "nodes": [1, 2],
  "hardware": {"name": "ssd", "diskSeekMs": 0.1, "diskMBps": 400},
  "metric": "scan-latency"
}`

// TestScenarioQueriesExpand pins the query grid expansion: every cell
// carries the mix's canonical encoding (round-trippable by ParseMix), the
// hardware override, and a cache key extended by both — while Voldemort is
// skipped like a scan workload.
func TestScenarioQueriesExpand(t *testing.T) {
	s, err := ParseScenario([]byte(queryScenarioJSON))
	if err != nil {
		t.Fatal(err)
	}
	specs, skipped, err := s.series()
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 1 || skipped[0] != "voldemort/queries" {
		t.Fatalf("skipped = %v, want [voldemort/queries]", skipped)
	}
	if len(specs) != 2 { // cassandra + mysql
		t.Fatalf("got %d series, want 2", len(specs))
	}
	r := NewRunner(Quick())
	for _, spec := range specs {
		if len(spec.cells) != 2 {
			t.Fatalf("series %s has %d cells, want 2", spec.label, len(spec.cells))
		}
		for _, c := range spec.cells {
			mix, err := query.ParseMix(c.Queries)
			if err != nil {
				t.Fatalf("cell %s carries unparseable mix: %v", r.key(c), err)
			}
			if got := mix.String(); got != c.Queries {
				t.Fatalf("mix does not round-trip:\n cell: %s\n back: %s", c.Queries, got)
			}
			if len(mix) != 2 || mix[0].Name != "overview" || mix[1].Name != "hot" {
				t.Fatalf("mix = %+v", mix)
			}
			if c.Spec.Name != "ssd" {
				t.Fatalf("hardware override missing: Spec = %+v", c.Spec)
			}
			key := r.key(c)
			if !strings.Contains(key, "/q="+c.Queries) {
				t.Fatalf("key %q lacks the /q= extension", key)
			}
			if !strings.Contains(key, "/hw=ssd(") {
				t.Fatalf("key %q lacks the /hw= extension", key)
			}
		}
	}
}

// TestScenarioHardwareResolves pins the hardware block's mapping onto
// cluster.Spec: overridden knobs take the JSON values, everything else
// inherits the base template, and the cell's node count wins.
func TestScenarioHardwareResolves(t *testing.T) {
	s, err := ParseScenario([]byte(queryScenarioJSON))
	if err != nil {
		t.Fatal(err)
	}
	cells, err := s.Cells()
	if err != nil {
		t.Fatal(err)
	}
	spec := clusterSpecFor(cells[0], Quick())
	if spec.Name != "ssd" || spec.Nodes != cells[0].Nodes {
		t.Fatalf("spec = %+v", spec)
	}
	if spec.Node.DiskMBps != 400 {
		t.Fatalf("DiskMBps = %v, want 400", spec.Node.DiskMBps)
	}
	if ms := spec.Node.DiskSeek.Seconds() * 1e3; ms < 0.099 || ms > 0.101 {
		t.Fatalf("DiskSeek = %v, want 0.1ms", spec.Node.DiskSeek)
	}
	base := clusterSpecFor(Cell{System: Cassandra, Nodes: cells[0].Nodes}, Quick())
	if spec.Node.Cores != base.Node.Cores || spec.Node.RAMBytes != base.Node.RAMBytes {
		t.Fatalf("unset knobs must inherit Cluster M: %+v vs %+v", spec.Node, base.Node)
	}
}

func TestScenarioQueryValidation(t *testing.T) {
	bad := []string{
		// queries + workloads
		`{"name": "x", "systems": ["redis"], "nodes": [1],
		  "queries": [{"name": "q"}], "workloads": [{"name": "R"}]}`,
		// queries + loadOnly
		`{"name": "x", "systems": ["redis"], "nodes": [1],
		  "queries": [{"name": "q"}], "loadOnly": true}`,
		// queries + faults
		`{"name": "x", "systems": ["redis"], "nodes": [1],
		  "queries": [{"name": "q"}], "faults": [{"kind": "kill-node", "node": 0, "start": 0.5}]}`,
		// queries with a write-side metric
		`{"name": "x", "systems": ["redis"], "nodes": [1],
		  "queries": [{"name": "q"}], "metric": "write-latency"}`,
		// malformed spec inside the mix
		`{"name": "x", "systems": ["redis"], "nodes": [1],
		  "queries": [{"name": "q", "filter": "value=50"}]}`,
		// hardware without a name
		`{"name": "x", "systems": ["redis"], "nodes": [1],
		  "workloads": [{"name": "R"}], "hardware": {"cores": 4}}`,
		// hardware with an unknown base
		`{"name": "x", "systems": ["redis"], "nodes": [1],
		  "workloads": [{"name": "R"}], "hardware": {"name": "h", "base": "Z"}}`,
	}
	for i, doc := range bad {
		if _, err := ParseScenario([]byte(doc)); err == nil {
			t.Errorf("scenario %d unexpectedly valid", i)
		}
	}
}

// TestQueryCellPrunesSSTables is the figure's physics pin: a query cell on
// an LSM store over the time-ordered measurement grid must position scan
// cursors on sstables AND skip some by key-range metadata — the behaviour
// hash-permuted YCSB keys never expose — and the scanstats diagnostic line
// must surface both counters.
func TestQueryCellPrunesSSTables(t *testing.T) {
	mix := query.Mix{{Name: "overview", WindowSec: 600, Aggs: []string{"avg"}}}
	if err := mix.Normalize(); err != nil {
		t.Fatal(err)
	}
	for _, sys := range []System{Cassandra, HBase} {
		t.Run(string(sys), func(t *testing.T) {
			r := NewRunner(Quick())
			var lines []string
			r.MemStats = func(l string) { lines = append(lines, l) }
			res, err := r.Run(Cell{System: sys, Nodes: 1, Queries: mix.String()})
			if err != nil {
				t.Fatal(err)
			}
			if res.Ops == 0 || res.ScanLat <= 0 {
				t.Fatalf("no queries measured: %+v", res)
			}
			var stats string
			for _, l := range lines {
				if strings.HasPrefix(l, "scanstats ") {
					stats = l
				}
			}
			if stats == "" {
				t.Fatalf("no scanstats line; memstats lines: %v", lines)
			}
			pruned := counterIn(t, stats, "tables-pruned=")
			positioned := counterIn(t, stats, "tables-positioned=")
			if positioned == 0 || pruned == 0 {
				t.Fatalf("positioned=%d pruned=%d: ordered per-metric scans must both hit and prune sstables (%s)", positioned, pruned, stats)
			}
		})
	}
}

func counterIn(t *testing.T, line, field string) int64 {
	t.Helper()
	i := strings.Index(line, field)
	if i < 0 {
		t.Fatalf("line %q lacks %s", line, field)
	}
	rest := line[i+len(field):]
	if j := strings.IndexByte(rest, ' '); j >= 0 {
		rest = rest[:j]
	}
	n, err := strconv.ParseInt(rest, 10, 64)
	if err != nil {
		t.Fatalf("bad counter in %q: %v", line, err)
	}
	return n
}

// TestQueryCellDeterministic pins the seeding contract for the new cell
// kind: two independent runners measure a query cell bit-identically.
func TestQueryCellDeterministic(t *testing.T) {
	mix := query.Mix{{Name: "overview", WindowSec: 600}}
	if err := mix.Normalize(); err != nil {
		t.Fatal(err)
	}
	c := Cell{System: Cassandra, Nodes: 2, Queries: mix.String()}
	a, err := NewRunner(Quick()).Run(c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRunner(Quick()).Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("query cell not deterministic:\n a: %+v\n b: %+v", a, b)
	}
}

// TestQueryCellRejectsVoldemort: the query layer reads through the scan
// path Voldemort's client lacks, so a direct cell fails cleanly.
func TestQueryCellRejectsVoldemort(t *testing.T) {
	mix := query.Mix{{Name: "q"}}
	if err := mix.Normalize(); err != nil {
		t.Fatal(err)
	}
	if _, err := NewRunner(Quick()).Run(Cell{System: Voldemort, Nodes: 1, Queries: mix.String()}); err == nil {
		t.Fatal("voldemort query cell unexpectedly succeeded")
	}
}

// TestAPMDashboardBuiltin: the -figure apm-dashboard grid validates and
// plans query cells on every scan-capable system.
func TestAPMDashboardBuiltin(t *testing.T) {
	s := APMDashboard([]int{1, 2})
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	cells, err := s.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 5*2 {
		t.Fatalf("planned %d cells, want 10", len(cells))
	}
	for _, c := range cells {
		if c.Queries == "" {
			t.Fatalf("cell %+v lacks queries", c)
		}
		if c.System == Voldemort {
			t.Fatalf("voldemort must not appear in the dashboard grid")
		}
	}
}
