package harness

import (
	"os"
	"strings"
	"testing"

	"repro/internal/sim"
)

// TestFig3GoldenOutput pins cross-PR determinism at the figure level: the
// rendered Fig 3 at this exact fidelity must match the byte-for-byte
// output captured before the PR-4 zero-alloc write path landed (memtable
// arenas, field slabs, WAL flusher persistence, client buffer reuse).
// Host-side allocation strategy must never leak into simulated results.
//
// If a future PR intentionally changes model numbers (a new calibration,
// an RNG-draw change), regenerate with:
//
//	go build -o /tmp/apmbench ./cmd/apmbench
//	/tmp/apmbench -quiet -figure 3 -scale 0.001 -measure 0.3 -warmup 0.1 \
//	  -nodes 1,2 -parallel 1 > internal/harness/testdata/fig3_quick.golden
//
// and call the shift out in CHANGES.md — that is the same "numbers
// shifted once" protocol PR-2 and PR-3 followed.
func TestFig3GoldenOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("golden figure run skipped in -short")
	}
	want, err := os.ReadFile("testdata/fig3_quick.golden")
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(Config{
		Scale:      0.001,
		Measure:    300 * sim.Millisecond,
		Warmup:     100 * sim.Millisecond,
		NodeCounts: []int{1, 2},
	})
	r.Workers = 1
	fig, err := r.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	// apmbench prints a blank separator line after each figure; compare
	// modulo trailing newlines.
	if got := strings.TrimRight(fig.Render(), "\n"); got != strings.TrimRight(string(want), "\n") {
		t.Fatalf("Fig 3 output diverged from the pre-PR-4 golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
