package harness

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/ycsb"
)

// exampleScenarioJSON mirrors examples/scenarios/record-sizes.json in
// miniature: a custom (non-Table-1) mix, a preset reference, and a variant
// axis.
const exampleScenarioJSON = `{
  "name": "mini",
  "description": "mixed grid",
  "systems": ["redis", "cassandra"],
  "workloads": [
    {"name": "R"},
    {"name": "mix80", "read": 0.8, "scan": 0.1, "insert": 0.1, "scanLength": 20, "fieldBytes": 50}
  ],
  "nodes": [1, 2],
  "variants": ["", "conns=16"]
}`

// TestScenarioRoundTrip pins JSON -> cells -> JSON: a parsed scenario
// re-marshals to a document that parses back to the identical cell plan
// (same cells, same cache keys, and therefore the same seeds).
func TestScenarioRoundTrip(t *testing.T) {
	s1, err := ParseScenario([]byte(exampleScenarioJSON))
	if err != nil {
		t.Fatal(err)
	}
	cells1, err := s1.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells1) == 0 {
		t.Fatal("scenario expanded to zero cells")
	}
	data, err := json.Marshal(s1)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := ParseScenario(data)
	if err != nil {
		t.Fatalf("re-marshaled scenario does not parse: %v\n%s", err, data)
	}
	cells2, err := s2.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cells1, cells2) {
		t.Fatalf("cells changed across the round trip:\n  first:  %+v\n  second: %+v", cells1, cells2)
	}
	r := NewRunner(planCfg())
	for i := range cells1 {
		if r.key(cells1[i]) != r.key(cells2[i]) {
			t.Fatalf("cell %d key changed across the round trip: %s vs %s",
				i, r.key(cells1[i]), r.key(cells2[i]))
		}
	}
}

// TestScenarioGridExpansion checks the grid cross product and that preset
// references ride the figures' cache keys while custom mixes key by their
// full parameters.
func TestScenarioGridExpansion(t *testing.T) {
	s, err := ParseScenario([]byte(exampleScenarioJSON))
	if err != nil {
		t.Fatal(err)
	}
	cells, err := s.Cells()
	if err != nil {
		t.Fatal(err)
	}
	// 2 systems x 2 workloads x 2 nodes x 2 variants.
	if len(cells) != 16 {
		t.Fatalf("grid expanded to %d cells, want 16", len(cells))
	}
	r := NewRunner(planCfg())
	var presetKey, mixKey string
	for _, c := range cells {
		k := r.key(c)
		switch {
		case c.Workload == "R" && c.Variants == "" && c.Nodes == 1 && c.System == Redis:
			presetKey = k
		case c.Mix.Name == "mix80" && c.Variants == "" && c.Nodes == 1 && c.System == Redis:
			mixKey = k
		}
	}
	// The preset reference must share the figure cell's historical key.
	if want := r.key(Cell{System: Redis, Nodes: 1, Workload: "R"}); presetKey != want {
		t.Errorf("preset cell key %q does not match figure cell key %q", presetKey, want)
	}
	// The custom mix keys by full-precision parameters.
	for _, frag := range []string{"mix80", "r=0.8", "s=0.1", "i=0.1", "len=20", "fb=50"} {
		if !strings.Contains(mixKey, frag) {
			t.Errorf("custom mix key %q missing %q", mixKey, frag)
		}
	}
}

// TestScenarioSkipsUnsupportedPairs: a grid naming Voldemort with a scan
// mix skips that pair (as the paper's scan figures do) instead of failing
// the whole scenario.
func TestScenarioSkipsUnsupportedPairs(t *testing.T) {
	s := &Scenario{
		Name:      "skip",
		Systems:   []System{Voldemort, Redis},
		Workloads: []ScenarioWorkload{{Name: "RS"}},
		Nodes:     []int{1},
	}
	cells, err := s.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 || cells[0].System != Redis {
		t.Fatalf("want only the redis cell, got %+v", cells)
	}
}

// TestScenarioValidation covers the rejection paths: bad proportions,
// preset shadowing, unknown fields/systems/metrics, and loadOnly rules.
func TestScenarioValidation(t *testing.T) {
	base := func() *Scenario {
		return &Scenario{
			Name:      "v",
			Systems:   []System{Redis},
			Workloads: []ScenarioWorkload{{Name: "R"}},
			Nodes:     []int{1},
		}
	}
	cases := []struct {
		name   string
		mutate func(*Scenario)
		want   string
	}{
		{"no name", func(s *Scenario) { s.Name = "" }, "needs a name"},
		{"no systems", func(s *Scenario) { s.Systems = nil }, "no systems"},
		{"unknown system", func(s *Scenario) { s.Systems = []System{"mongodb"} }, "unknown system"},
		{"no nodes", func(s *Scenario) { s.Nodes = nil }, "no node counts"},
		{"bad node", func(s *Scenario) { s.Nodes = []int{0} }, "< 1"},
		{"no workloads", func(s *Scenario) { s.Workloads = nil }, "no workloads"},
		{"bad mix sum", func(s *Scenario) {
			s.Workloads = []ScenarioWorkload{{Name: "half", Read: 0.5}}
		}, "sum to"},
		{"preset shadow", func(s *Scenario) {
			s.Workloads = []ScenarioWorkload{{Name: "R", Read: 0.5, Insert: 0.5}}
		}, "shadows a Table 1 preset"},
		{"bad distribution", func(s *Scenario) {
			s.Workloads = []ScenarioWorkload{{Name: "d", Read: 1, Distribution: "pareto"}}
		}, "unknown distribution"},
		{"negative field size", func(s *Scenario) {
			s.Workloads = []ScenarioWorkload{{Name: "neg", Read: 1, FieldBytes: -3}}
		}, "negative field size"},
		{"bad cluster", func(s *Scenario) { s.Cluster = "X" }, "unknown cluster"},
		{"bad variant", func(s *Scenario) { s.Variants = []string{"replication"} }, "malformed variant"},
		{"bad metric", func(s *Scenario) { s.Metric = "p99" }, "unknown metric"},
		{"loadOnly metric", func(s *Scenario) { s.LoadOnly = true; s.Metric = "throughput" }, "loadOnly grids"},
	}
	for _, tc := range cases {
		s := base()
		tc.mutate(s)
		err := s.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error = %v, want containing %q", tc.name, err, tc.want)
		}
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("base scenario invalid: %v", err)
	}
	// Unknown JSON fields are rejected (a typo must not drop a grid axis).
	if _, err := ParseScenario([]byte(`{"name":"x","systems":["redis"],"nodes":[1],"workload":[{"name":"R"}]}`)); err == nil {
		t.Error("unknown JSON field accepted")
	}
}

// TestUpdateMixRunsOnAllSystems pins the update-support matrix at the
// execution layer: with the B-tree stores' read-modify-write paths, a
// 50/50 read/update mix measures real throughput and update latency on
// every system — the YCSB-A shape the paper's four upsert models used to
// monopolize.
func TestUpdateMixRunsOnAllSystems(t *testing.T) {
	r := NewRunner(planCfg())
	mix := ycsb.Workload{Name: "upd", ReadProp: 0.5, UpdateProp: 0.5, ScanLength: 50}
	for _, sys := range AllSystems {
		res, err := r.Run(Cell{System: sys, Nodes: 1, Mix: mix})
		if err != nil {
			t.Fatalf("%s update mix: %v", sys, err)
		}
		if res.Throughput <= 0 || res.UpdateLat <= 0 || res.ReadLat <= 0 {
			t.Fatalf("%s update mix measured nothing: %+v", sys, res)
		}
		if res.Errors > 0 {
			t.Fatalf("%s update mix recorded %d errors (updates of loaded keys must hit)", sys, res.Errors)
		}
	}
}

// TestScenarioRunRendersFigure executes a small custom-mix grid end to end
// and checks the figure shape, including that a non-default record size
// actually changes the store's footprint.
func TestScenarioRunRendersFigure(t *testing.T) {
	s := &Scenario{
		Name:        "small",
		Description: "custom mix",
		Systems:     []System{Redis},
		Workloads: []ScenarioWorkload{
			{Name: "mix80", Read: 0.8, Scan: 0.1, Insert: 0.1, ScanLength: 10},
		},
		Nodes:  []int{1, 2},
		Metric: "throughput",
	}
	r := NewRunner(planCfg())
	fig, err := r.RunScenario(s)
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "scenario-small" || len(fig.Series) != 1 {
		t.Fatalf("figure shape wrong: %+v", fig)
	}
	if got := fig.Series[0].Label; got != "redis/mix80" {
		t.Fatalf("series label = %q", got)
	}
	if len(fig.Series[0].Y) != 2 || fig.Series[0].Y[0] <= 0 {
		t.Fatalf("series has no measurements: %+v", fig.Series[0])
	}
	// Generating the figure again is pure cache reads.
	warm := r.Executed()
	if _, err := r.RunScenario(s); err != nil {
		t.Fatal(err)
	}
	if got := r.Executed(); got != warm {
		t.Errorf("second RunScenario executed %d extra cells", got-warm)
	}
}

// TestRecordSizeChangesFootprint pins that a workload's fieldBytes reaches
// the store: loading bigger records must grow the modeled footprint (on a
// byte-accounted store — Cassandra's SSTables charge actual field bytes;
// the MySQL/Voldemort page models count rows, not bytes).
func TestRecordSizeChangesFootprint(t *testing.T) {
	r := NewRunner(planCfg())
	small, err := r.Run(Cell{System: Cassandra, Nodes: 1, LoadOnly: true,
		Mix: ycsb.Workload{Name: "rec10", InsertProp: 1, FieldBytes: 10}})
	if err != nil {
		t.Fatal(err)
	}
	big, err := r.Run(Cell{System: Cassandra, Nodes: 1, LoadOnly: true,
		Mix: ycsb.Workload{Name: "rec200", InsertProp: 1, FieldBytes: 200}})
	if err != nil {
		t.Fatal(err)
	}
	if big.DiskBytesPaperScale <= small.DiskBytesPaperScale {
		t.Fatalf("200-byte fields (%.0f) should out-size 10-byte fields (%.0f)",
			big.DiskBytesPaperScale, small.DiskBytesPaperScale)
	}
}

// TestAblationCellsCached mirrors TestFiguresReadFromWarmCache for the
// ablation registry: after RunAll over an ablation's declared grid,
// generating the ablation executes zero additional cells — the grids are
// complete and generation is pure cache reads.
func TestAblationCellsCached(t *testing.T) {
	ids := []string{"ablation-redis-sharding", "ablation-mysql-binlog"}
	if !testing.Short() {
		ids = append(ids, "ablation-voltdb-async")
	}
	for _, id := range ids {
		r := NewRunner(planCfg())
		cells := r.AblationCellsFor(id)
		if len(cells) == 0 {
			t.Fatalf("%s declares no cells", id)
		}
		if err := r.RunAll(cells); err != nil {
			t.Fatalf("%s plan: %v", id, err)
		}
		warm := r.Executed()
		fig, err := r.Ablations()[id]()
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(fig.Series) == 0 {
			t.Fatalf("%s produced an empty figure", id)
		}
		if got := r.Executed(); got != warm {
			t.Errorf("%s executed %d cells beyond its declared grid", id, got-warm)
		}
	}
}

// TestAblationRegistryDeclaresEveryGrid asserts every ablation is planned
// declaratively: a non-empty cell grid at default node counts, every cell
// carrying a resolvable configuration.
func TestAblationRegistryDeclaresEveryGrid(t *testing.T) {
	r := NewRunner(Quick())
	if len(AblationOrder) != 9 {
		t.Fatalf("AblationOrder has %d entries, want 9", len(AblationOrder))
	}
	for _, id := range AblationOrder {
		cells := r.AblationCellsFor(id)
		if len(cells) == 0 {
			t.Errorf("%s declares no cells", id)
		}
		for _, c := range cells {
			if _, err := r.resolve(c); err != nil && !c.LoadOnly {
				t.Errorf("%s cell %s does not resolve: %v", id, r.key(c), err)
			}
		}
	}
	if r.AblationCellsFor("ablation-nope") != nil {
		t.Error("unknown ablation returned a grid")
	}
}

// TestLoadOnlyPresetSharesFigureCell pins that a load-only cell naming a
// default-sized workload keys identically to the bare Fig 17 cell (a load
// is determined by record shape, not operation mix), while a non-default
// record size keys separately.
func TestLoadOnlyPresetSharesFigureCell(t *testing.T) {
	r := NewRunner(planCfg())
	bare := Cell{System: Cassandra, Nodes: 2, LoadOnly: true}
	preset := Cell{System: Cassandra, Nodes: 2, LoadOnly: true, Workload: "R"}
	if r.key(bare) != r.key(preset) {
		t.Fatalf("preset load-only key %q != figure load-only key %q", r.key(preset), r.key(bare))
	}
	sized := Cell{System: Cassandra, Nodes: 2, LoadOnly: true,
		Mix: ycsb.Workload{Name: "big", InsertProp: 1, FieldBytes: 200}}
	if r.key(sized) == r.key(bare) {
		t.Fatal("200-byte-field load-only cell must key separately from the default load")
	}
}

// TestLoadOnlyScenarioKeepsUnrunnableMixes: load-only grids execute no
// operations, so the scan/update support matrix must not drop their rows.
func TestLoadOnlyScenarioKeepsUnrunnableMixes(t *testing.T) {
	s := &Scenario{
		Name:     "disk",
		Systems:  []System{Voldemort, MySQL},
		LoadOnly: true,
		Workloads: []ScenarioWorkload{
			{Name: "upd200", Read: 0.5, Update: 0.5, FieldBytes: 200},
		},
		Nodes: []int{1},
	}
	cells, err := s.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("load-only grid dropped cells: %+v", cells)
	}
	for _, c := range cells {
		if !c.LoadOnly || c.Mix.FieldBytes != 200 {
			t.Fatalf("cell lost load-only shape: %+v", c)
		}
	}
}

// TestCommitlogOffVariantTakesEffect pins that commitlog=off reaches the
// store (periodic mode: writers do not wait out the batch window), rather
// than silently re-defaulting to batch mode.
func TestCommitlogOffVariantTakesEffect(t *testing.T) {
	r := NewRunner(planCfg())
	batch, err := r.Run(Cell{System: Cassandra, Nodes: 1, Workload: "RW"})
	if err != nil {
		t.Fatal(err)
	}
	periodic, err := r.Run(Cell{System: Cassandra, Nodes: 1, Workload: "RW", Variants: "commitlog=off"})
	if err != nil {
		t.Fatal(err)
	}
	if periodic.WriteLat*2 > batch.WriteLat {
		t.Errorf("periodic commit log write latency %v should be far below batch mode's %v",
			periodic.WriteLat, batch.WriteLat)
	}
}

// TestConnsVariantReachesMySQLModel pins that conns= feeds MySQL's
// per-connection server overhead (ClientThreads), not just the simulated
// client pool: fewer connections must reduce per-op overhead and with it
// read latency.
func TestConnsVariantReachesMySQLModel(t *testing.T) {
	r := NewRunner(planCfg())
	few, err := r.Run(Cell{System: MySQL, Nodes: 1, Workload: "R", Variants: "conns=4"})
	if err != nil {
		t.Fatal(err)
	}
	deflt, err := r.Run(Cell{System: MySQL, Nodes: 1, Workload: "R"}) // 128 conns
	if err != nil {
		t.Fatal(err)
	}
	if few.ReadLat >= deflt.ReadLat {
		t.Errorf("4-connection read latency %v should undercut 128-connection latency %v (per-thread overhead)",
			few.ReadLat, deflt.ReadLat)
	}
}

// TestScenarioDatasetOverrides pins the per-scenario recordsPerNode /
// repetitions overrides: validation, cell stamping, extended cache keys
// (historical keys unchanged when unset), record-count math, and the JSON
// round trip.
func TestScenarioDatasetOverrides(t *testing.T) {
	doc := `{
	  "name": "sweep",
	  "systems": ["redis"],
	  "workloads": [{"name": "R"}],
	  "nodes": [1, 2],
	  "recordsPerNode": 2000000,
	  "repetitions": 2
	}`
	s, err := ParseScenario([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	cells, err := s.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("expanded to %d cells, want 2", len(cells))
	}
	r := NewRunner(planCfg())
	for _, c := range cells {
		if c.RecordsPerNode != 2_000_000 || c.Repetitions != 2 {
			t.Fatalf("cell missing overrides: %+v", c)
		}
		k := r.key(c)
		if !strings.Contains(k, "/rpn=2000000") || !strings.Contains(k, "/reps=2") {
			t.Fatalf("override cell key %q lacks rpn/reps fragments", k)
		}
		if got := recordsFor(c, r.Cfg); got != int64(2_000_000*float64(c.Nodes)*r.Cfg.Scale) {
			t.Fatalf("recordsFor = %d for %d nodes", got, c.Nodes)
		}
		if r.repetitions(c) != 2 {
			t.Fatalf("repetitions(c) = %d, want 2", r.repetitions(c))
		}
	}
	// The same grid without overrides keeps its historical key.
	base := Cell{System: Redis, Nodes: 1, Workload: "R"}
	if k := r.key(base); strings.Contains(k, "rpn=") || strings.Contains(k, "reps=") {
		t.Fatalf("default cell key %q gained override fragments", k)
	}
	// Overrides apply on Cluster D too (per-node count replaces the fixed
	// paper total).
	d := Cell{System: Redis, Nodes: 2, Workload: "R", ClusterD: true, RecordsPerNode: 1000}
	if got, want := recordsFor(d, r.Cfg), int64(2*1000*r.Cfg.Scale); got != want {
		t.Fatalf("ClusterD override recordsFor = %d, want %d", got, want)
	}
	// Round trip preserves the overrides.
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := ParseScenario(data)
	if err != nil {
		t.Fatalf("re-marshaled scenario does not parse: %v\n%s", err, data)
	}
	cells2, err := s2.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cells, cells2) {
		t.Fatalf("override cells changed across round trip:\n%+v\n%+v", cells, cells2)
	}
	// A load-only cell's result doesn't depend on repetitions: the key
	// must include the dataset override but not the repetition count.
	lo := Cell{System: Redis, Nodes: 1, LoadOnly: true, RecordsPerNode: 500, Repetitions: 3}
	if k := r.key(lo); !strings.Contains(k, "/rpn=500") || strings.Contains(k, "reps=") {
		t.Fatalf("load-only override key = %q", k)
	}
	// Negative overrides are validation errors.
	for _, bad := range []string{
		`{"name":"x","systems":["redis"],"workloads":[{"name":"R"}],"nodes":[1],"recordsPerNode":-1}`,
		`{"name":"x","systems":["redis"],"workloads":[{"name":"R"}],"nodes":[1],"repetitions":-2}`,
	} {
		if _, err := ParseScenario([]byte(bad)); err == nil {
			t.Fatalf("negative override accepted: %s", bad)
		}
	}
}
