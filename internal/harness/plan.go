package harness

import "fmt"

// The planning layer: every figure declares its full cell set up front so
// the execution layer (Runner.RunAll) can schedule dozens of independent
// simulations across workers, and figure generation afterwards reads a
// warm cache. Order-independent seeding (Runner.cellSeed) is what makes
// this split sound — a planned parallel schedule and the old one-at-a-time
// schedule produce bit-identical results.

// figKind classifies how a figure's cells are laid out and assembled.
type figKind int

const (
	kindSweep    figKind = iota // systems × node counts, one workload
	kindBounded                 // TargetFraction sweep at 8 nodes (Figs 15/16)
	kindDisk                    // load-only disk usage (Fig 17)
	kindClusterD                // workload bars on Cluster D (Figs 18-20)
)

// figSpec declares one figure: metadata plus enough structure for the
// planner (CellsFor) and the builders (figures.go) to agree on exactly
// which cells the figure measures.
type figSpec struct {
	id       string
	title    string
	yLabel   string
	kind     figKind
	workload string   // kindSweep only
	systems  []System // series order
	m        metric   // headline metric (nil for kindDisk)
}

// boundedNodes and clusterDNodes are the fixed cluster sizes of the
// bounded-throughput (Figs 15/16) and Cluster D (Figs 18-20) experiments.
const (
	boundedNodes  = 8
	clusterDNodes = 8
)

// clusterDWorkloads are the Cluster D bar-chart workloads, in X order.
var clusterDWorkloads = []string{"R", "RW", "W"}

// figSpecs lists every regenerated figure in paper order.
var figSpecs = []figSpec{
	{id: "3", title: "Throughput for Workload R", yLabel: "ops/sec", kind: kindSweep, workload: "R", systems: AllSystems, m: throughputMetric},
	{id: "4", title: "Read latency for Workload R", yLabel: "ms", kind: kindSweep, workload: "R", systems: AllSystems, m: readLatMetric},
	{id: "5", title: "Write latency for Workload R", yLabel: "ms", kind: kindSweep, workload: "R", systems: AllSystems, m: writeLatMetric},
	{id: "6", title: "Throughput for Workload RW", yLabel: "ops/sec", kind: kindSweep, workload: "RW", systems: AllSystems, m: throughputMetric},
	{id: "7", title: "Read latency for Workload RW", yLabel: "ms", kind: kindSweep, workload: "RW", systems: AllSystems, m: readLatMetric},
	{id: "8", title: "Write latency for Workload RW", yLabel: "ms", kind: kindSweep, workload: "RW", systems: AllSystems, m: writeLatMetric},
	{id: "9", title: "Throughput for Workload W", yLabel: "ops/sec", kind: kindSweep, workload: "W", systems: AllSystems, m: throughputMetric},
	{id: "10", title: "Read latency for Workload W", yLabel: "ms", kind: kindSweep, workload: "W", systems: AllSystems, m: readLatMetric},
	{id: "11", title: "Write latency for Workload W", yLabel: "ms", kind: kindSweep, workload: "W", systems: AllSystems, m: writeLatMetric},
	{id: "12", title: "Throughput for Workload RS", yLabel: "ops/sec", kind: kindSweep, workload: "RS", systems: ScanSystems, m: throughputMetric},
	{id: "13", title: "Scan latency for Workload RS", yLabel: "ms", kind: kindSweep, workload: "RS", systems: ScanSystems, m: scanLatMetric},
	{id: "14", title: "Throughput for Workload RSW", yLabel: "ops/sec", kind: kindSweep, workload: "RSW", systems: ScanSystems, m: throughputMetric},
	{id: "15", title: "Read latency for bounded throughput on Workload R", yLabel: "ms", kind: kindBounded, workload: "R", systems: boundedSystems, m: readLatMetric},
	{id: "16", title: "Write latency for bounded throughput on Workload R", yLabel: "ms", kind: kindBounded, workload: "R", systems: boundedSystems, m: writeLatMetric},
	{id: "17", title: "Disk usage for 10 million records per node", yLabel: "GB", kind: kindDisk, systems: DiskSystems},
	{id: "18", title: "Throughput for 8 nodes in Cluster D", yLabel: "ops/sec", kind: kindClusterD, systems: ClusterDSystems, m: throughputMetric},
	{id: "19", title: "Read latency for 8 nodes in Cluster D", yLabel: "ms", kind: kindClusterD, systems: ClusterDSystems, m: readLatMetric},
	{id: "20", title: "Write latency for 8 nodes in Cluster D", yLabel: "ms", kind: kindClusterD, systems: ClusterDSystems, m: writeLatMetric},
}

func specFor(id string) (figSpec, bool) {
	for _, s := range figSpecs {
		if s.id == id {
			return s, true
		}
	}
	return figSpec{}, false
}

// CellsFor returns every cell figure id measures, dependency-ordered: a
// TargetFraction cell appears after the unthrottled base cell it is
// normalized against, so RunAll resolves the throttle target from the warm
// cache. Unknown ids return nil.
func (r *Runner) CellsFor(id string) []Cell {
	spec, ok := specFor(id)
	if !ok {
		return nil
	}
	var cells []Cell
	switch spec.kind {
	case kindSweep:
		for _, sys := range spec.systems {
			for _, n := range r.Cfg.NodeCounts {
				cells = append(cells, Cell{System: sys, Nodes: n, Workload: spec.workload})
			}
		}
	case kindBounded:
		for _, sys := range spec.systems {
			cells = append(cells, Cell{System: sys, Nodes: boundedNodes, Workload: spec.workload})
			for _, f := range boundedFractions {
				cells = append(cells, Cell{System: sys, Nodes: boundedNodes, Workload: spec.workload, TargetFraction: f})
			}
		}
	case kindDisk:
		for _, sys := range spec.systems {
			for _, n := range r.Cfg.NodeCounts {
				cells = append(cells, Cell{System: sys, Nodes: n, LoadOnly: true})
			}
		}
	case kindClusterD:
		for _, sys := range spec.systems {
			for _, wl := range clusterDWorkloads {
				cells = append(cells, Cell{System: sys, Nodes: clusterDNodes, Workload: wl, ClusterD: true})
			}
		}
	}
	return cells
}

// Prewarm plans and executes the given figures' and ablations' cells
// through the worker pool in one batch, deduplicating cells shared between
// them (e.g. Figs 3/4/5 plot the same runs, and an ablation's
// paper-default series reuses figure cells); subsequent figure or ablation
// generation then reads entirely from the warm cache.
func (r *Runner) Prewarm(ids ...string) error {
	var cells []Cell
	for _, id := range ids {
		if _, ok := specFor(id); ok {
			cells = append(cells, r.CellsFor(id)...)
			continue
		}
		if _, ok := ablationSpecFor(id); ok {
			cells = append(cells, r.AblationCellsFor(id)...)
			continue
		}
		return fmt.Errorf("harness: unknown figure %q", id)
	}
	return r.RunAll(cells)
}
