package harness

import "repro/internal/query"

// APMDashboard is the built-in analytic-read figure (`-figure
// apm-dashboard`): the APM dashboard read path the paper motivates but
// never benchmarks (§2 reads "the last 10 minutes/hours of a metric";
// YCSB's scans start at uniformly random keys). The grid loads the
// time-ordered measurement grid — so node-local sstables come out
// key-striped — and serves a weighted mix of dashboard panels, each a set
// of per-metric range scans piped through the query operator layer. On the
// LSM stores every per-metric seek gives `lsm.Scan` key-range table
// pruning a chance to fire, visible per cell via -memstats ("scanstats"
// lines).
//
// Voldemort is excluded like the paper's scan figures exclude it: the
// query layer reads through the scan path its client lacks.
func APMDashboard(nodes []int) *Scenario {
	return &Scenario{
		Name:        "apm-dashboard",
		Description: "dashboard query mix over the time-ordered APM measurement grid",
		Systems:     []System{Cassandra, HBase, VoltDB, Redis, MySQL},
		Nodes:       nodes,
		Metric:      "scan-latency",
		Queries: []query.Spec{
			// The host overview panel: mean and peak of every metric on one
			// host over the last 10 minutes (the paper's headline window).
			{Name: "overview", Weight: 4, WindowSec: 600, Aggs: []string{"avg", "max"}},
			// The hot-components panel: a longer window, filtered to
			// saturated samples, top five series by occurrence count.
			{Name: "hotspots", Weight: 2, WindowSec: 1800, Filter: "value>80",
				Aggs: []string{"count", "avg"}, OrderBy: "count", Desc: true, Limit: 5},
			// The tail-latency panel: per metric kind, median and p99 over
			// the last hour.
			{Name: "tails", Weight: 1, WindowSec: 3600, GroupBy: "kind",
				Aggs: []string{"p50", "p99"}},
		},
	}
}
