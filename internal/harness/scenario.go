package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/query"
	"repro/internal/sim"
	"repro/internal/ycsb"
)

// The scenario layer makes the paper's parameter space — systems ×
// operation mixes × cluster sizes × tuning knobs — user-composable: a
// Scenario is a declarative JSON grid that expands into the same Cell
// values the figures and ablations plan, and executes through the same
// seeded, cached, parallel Runner.RunAll path. Anything expressible as a
// grid of cells (a paper figure, an ablation, or an experiment the paper
// never ran) is one scenario file away; see examples/scenarios/.

// ScenarioWorkload names a Table 1 preset (just "name": "R") or defines a
// custom mix. A workload with any proportion set is a custom mix: its
// proportions must sum to 1 and its name must not shadow a preset.
type ScenarioWorkload struct {
	Name string `json:"name"`
	// Operation proportions; must sum to 1 for custom mixes.
	Read   float64 `json:"read,omitempty"`
	Scan   float64 `json:"scan,omitempty"`
	Insert float64 `json:"insert,omitempty"`
	Update float64 `json:"update,omitempty"`
	// ScanLength is records per scan (default 50, the paper's).
	ScanLength int `json:"scanLength,omitempty"`
	// FieldBytes is the record's per-field payload size (default 10:
	// 75-byte records as in the paper).
	FieldBytes int `json:"fieldBytes,omitempty"`
	// Distribution selects the request distribution: "uniform" (default,
	// the paper's), "zipfian", or "latest".
	Distribution string `json:"distribution,omitempty"`
}

// custom reports whether the workload defines a mix rather than naming a
// preset.
func (w ScenarioWorkload) custom() bool {
	return w.Read != 0 || w.Scan != 0 || w.Insert != 0 || w.Update != 0 ||
		w.ScanLength != 0 || w.FieldBytes != 0 || w.Distribution != ""
}

// toWorkload resolves the entry into a validated mix.
func (w ScenarioWorkload) toWorkload() (ycsb.Workload, error) {
	if w.Name == "" {
		return ycsb.Workload{}, fmt.Errorf("harness: scenario workload needs a name")
	}
	if !w.custom() {
		return ycsb.WorkloadByName(w.Name)
	}
	if _, err := ycsb.WorkloadByName(w.Name); err == nil {
		return ycsb.Workload{}, fmt.Errorf("harness: custom workload %q shadows a Table 1 preset; pick another name", w.Name)
	}
	chooser := ycsb.Uniform
	switch w.Distribution {
	case "", "uniform":
	case "zipfian":
		chooser = ycsb.Zipfian
	case "latest":
		chooser = ycsb.Latest
	default:
		return ycsb.Workload{}, fmt.Errorf("harness: workload %s: unknown distribution %q", w.Name, w.Distribution)
	}
	scanLen := w.ScanLength
	if scanLen == 0 {
		scanLen = 50
	}
	wl := ycsb.Workload{
		Name:       w.Name,
		ReadProp:   w.Read,
		ScanProp:   w.Scan,
		InsertProp: w.Insert,
		UpdateProp: w.Update,
		ScanLength: scanLen,
		Chooser:    chooser,
		FieldBytes: w.FieldBytes,
	}
	if err := wl.Validate(); err != nil {
		return ycsb.Workload{}, err
	}
	return wl, nil
}

// Scenario is a user-defined experiment grid: the cross product of systems
// × workloads × node counts × variant combos, rendered as one figure.
type Scenario struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// Systems to benchmark (series dimension).
	Systems []System `json:"systems"`
	// Workloads to run; ignored (and optional) when LoadOnly is set.
	Workloads []ScenarioWorkload `json:"workloads,omitempty"`
	// Nodes is the cluster-size sweep (the figure's X axis).
	Nodes []int `json:"nodes"`
	// Cluster picks the hardware: "M" (default, memory-bound) or "D"
	// (disk-bound).
	Cluster string `json:"cluster,omitempty"`
	// Variants are deployment-option combos, one series per combo; each
	// entry is an ordered "key=value,key=value" string (see the variant
	// vocabulary in systems.go). An empty entry is the paper's defaults,
	// and an empty list means just the defaults.
	Variants []string `json:"variants,omitempty"`
	// LoadOnly deploys and loads without running workloads (disk-usage
	// experiments).
	LoadOnly bool `json:"loadOnly,omitempty"`
	// Metric selects the figure's Y value: "throughput" (default),
	// "read-latency", "write-latency", "scan-latency", "update-latency",
	// or "disk" (implied by LoadOnly).
	Metric string `json:"metric,omitempty"`
	// RecordsPerNode overrides the runner's pre-scale per-node dataset
	// size for every cell in the grid (0 keeps the config's, the paper's
	// 10M). Overridden cells cache and seed under extended keys, so they
	// never collide with figure cells.
	RecordsPerNode int64 `json:"recordsPerNode,omitempty"`
	// Repetitions overrides how many independent seeds average into each
	// measured cell (0 keeps the config's; the paper reports the average
	// of at least 3 executions).
	Repetitions int `json:"repetitions,omitempty"`
	// Faults injects a fault schedule into every cell of the grid. Window
	// bounds are fractions of the run (warmup+measure), so one schedule
	// works at paper and quick fidelity alike. Faulted cells cache and
	// seed under extended keys and report per-window recovery curves in
	// the figure appendix.
	Faults []ScenarioFault `json:"faults,omitempty"`
	// Queries declares an analytic dashboard mix (internal/query): the grid
	// then measures query cells — per-metric range scans piped through
	// filter/group-by/aggregate operators over the time-ordered APM
	// measurement grid — instead of YCSB operation cells. Mutually
	// exclusive with workloads, loadOnly and faults; systems without scan
	// support (Voldemort) are skipped like scan workloads.
	Queries []query.Spec `json:"queries,omitempty"`
	// Hardware, when set, overrides every cell's cluster hardware with a
	// custom spec (unset fields inherit the base template). Overridden
	// cells cache and seed under extended keys, so they never collide with
	// figure cells.
	Hardware *ScenarioHardware `json:"hardware,omitempty"`
}

// ScenarioHardware is a custom cluster spec in scenario JSON: a named
// hardware profile starting from a base template ("M" default, or "D")
// with any subset of knobs overridden. It maps onto cluster.Spec — the
// same struct the paper presets use — so a custom profile flows through
// deployment, scaling and cache keys exactly like Cluster M/D.
type ScenarioHardware struct {
	Name string `json:"name"`
	// Base picks the template supplying unset fields: "M" (default) or "D".
	Base string `json:"base,omitempty"`
	// Node knobs (zero = inherit the base template's value).
	Cores      int     `json:"cores,omitempty"`
	RAMGB      float64 `json:"ramGB,omitempty"`
	Disks      int     `json:"disks,omitempty"`
	DiskSeekMs float64 `json:"diskSeekMs,omitempty"`
	DiskMBps   float64 `json:"diskMBps,omitempty"`
	DiskGB     float64 `json:"diskGB,omitempty"`
	// Network knobs.
	NetLatencyUs float64 `json:"netLatencyUs,omitempty"`
	NetMBps      float64 `json:"netMBps,omitempty"`
}

// toSpec resolves the profile into a full cluster.Spec (Nodes left zero:
// the cell's node count wins, as with any Spec override).
func (h *ScenarioHardware) toSpec() (cluster.Spec, error) {
	if h.Name == "" {
		return cluster.Spec{}, fmt.Errorf("harness: scenario hardware needs a name")
	}
	var s cluster.Spec
	switch h.Base {
	case "", "M":
		s = cluster.ClusterM(0)
	case "D":
		s = cluster.ClusterD(0)
	default:
		return cluster.Spec{}, fmt.Errorf("harness: scenario hardware %s: unknown base %q (want M or D)", h.Name, h.Base)
	}
	s.Name = h.Name
	for _, k := range []struct {
		name string
		v    float64
	}{
		{"cores", float64(h.Cores)}, {"ramGB", h.RAMGB}, {"disks", float64(h.Disks)},
		{"diskSeekMs", h.DiskSeekMs}, {"diskMBps", h.DiskMBps}, {"diskGB", h.DiskGB},
		{"netLatencyUs", h.NetLatencyUs}, {"netMBps", h.NetMBps},
	} {
		if k.v < 0 {
			return cluster.Spec{}, fmt.Errorf("harness: scenario hardware %s: negative %s", h.Name, k.name)
		}
	}
	if h.Cores > 0 {
		s.Node.Cores = h.Cores
	}
	if h.RAMGB > 0 {
		s.Node.RAMBytes = int64(h.RAMGB * float64(1<<30))
	}
	if h.Disks > 0 {
		s.Node.Disks = h.Disks
	}
	if h.DiskSeekMs > 0 {
		s.Node.DiskSeek = sim.Time(h.DiskSeekMs * float64(sim.Millisecond))
	}
	if h.DiskMBps > 0 {
		s.Node.DiskMBps = h.DiskMBps
	}
	if h.DiskGB > 0 {
		s.Node.DiskBytes = int64(h.DiskGB * float64(1<<30))
	}
	if h.NetLatencyUs > 0 {
		s.Net.BaseLatency = sim.Time(h.NetLatencyUs * float64(sim.Microsecond))
	}
	if h.NetMBps > 0 {
		s.Net.MBps = h.NetMBps
	}
	return s, nil
}

// ScenarioFault is one fault event: "kill-node", "restart-node",
// "slow-node", "replica-lag", or "compaction-storm" against one node, over
// a virtual-time window given as fractions of the whole run.
type ScenarioFault struct {
	Kind string `json:"kind"`
	Node int    `json:"node"`
	// Start and End bound the fault window as fractions of warmup+measure
	// in [0,1]. End <= Start means the fault does not end (a kill-node
	// never restarts; a windowed fault runs to the end of the run).
	Start float64 `json:"start"`
	End   float64 `json:"end,omitempty"`
	// Factor parameterizes the fault kind: slowdown multiplier for
	// slow-node (default 4), extra lag in milliseconds for replica-lag
	// (default 50), concurrent flows for compaction-storm (default 2).
	Factor float64 `json:"factor,omitempty"`
}

// schedule converts the scenario's fault list into a validated schedule.
func (s *Scenario) schedule() (fault.Schedule, error) {
	if len(s.Faults) == 0 {
		return nil, nil
	}
	sched := make(fault.Schedule, len(s.Faults))
	for i, f := range s.Faults {
		sched[i] = fault.Event{
			Kind:   fault.Kind(f.Kind),
			Node:   f.Node,
			Start:  f.Start,
			End:    f.End,
			Factor: f.Factor,
		}
	}
	if err := sched.Validate(); err != nil {
		return nil, fmt.Errorf("harness: scenario %s: %w", s.Name, err)
	}
	return sched, nil
}

// scenarioMetrics maps metric names to extractors and Y-axis labels.
var scenarioMetrics = map[string]struct {
	m      metric
	yLabel string
}{
	"throughput":     {throughputMetric, "ops/sec"},
	"read-latency":   {readLatMetric, "ms"},
	"write-latency":  {writeLatMetric, "ms"},
	"scan-latency":   {scanLatMetric, "ms"},
	"update-latency": {func(r CellResult) float64 { return latencyMs(r.UpdateLat) }, "ms"},
	"disk":           {func(r CellResult) float64 { return r.DiskBytesPaperScale / 1e9 }, "GB (paper scale)"},
}

// ParseScenario decodes and validates a scenario file. Unknown JSON fields
// are errors, so a typo cannot silently drop a grid axis.
func ParseScenario(data []byte) (*Scenario, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("harness: scenario: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate checks the grid's shape; per-cell semantics (variant vocabulary
// per system) surface when the cells run.
func (s *Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("harness: scenario needs a name")
	}
	if len(s.Systems) == 0 {
		return fmt.Errorf("harness: scenario %s lists no systems", s.Name)
	}
	for _, sys := range s.Systems {
		known := false
		for _, k := range AllSystems {
			if sys == k {
				known = true
				break
			}
		}
		if !known {
			return fmt.Errorf("harness: scenario %s: unknown system %q", s.Name, sys)
		}
	}
	if len(s.Nodes) == 0 {
		return fmt.Errorf("harness: scenario %s lists no node counts", s.Name)
	}
	for _, n := range s.Nodes {
		if n < 1 {
			return fmt.Errorf("harness: scenario %s: node count %d < 1", s.Name, n)
		}
	}
	if !s.LoadOnly && len(s.Workloads) == 0 && len(s.Queries) == 0 {
		return fmt.Errorf("harness: scenario %s lists no workloads (set loadOnly for load-only grids, or queries for analytic grids)", s.Name)
	}
	if len(s.Queries) > 0 {
		if len(s.Workloads) > 0 {
			return fmt.Errorf("harness: scenario %s: queries and workloads are mutually exclusive", s.Name)
		}
		if s.LoadOnly {
			return fmt.Errorf("harness: scenario %s: queries need a measured run, not loadOnly", s.Name)
		}
		if len(s.Faults) > 0 {
			return fmt.Errorf("harness: scenario %s: faults apply to workload grids, not query grids", s.Name)
		}
		switch s.Metric {
		case "", "throughput", "scan-latency":
		default:
			return fmt.Errorf("harness: scenario %s: query grids measure throughput or scan-latency, not %q", s.Name, s.Metric)
		}
		if _, err := s.queryMix(); err != nil {
			return err
		}
	}
	if s.Hardware != nil {
		if _, err := s.Hardware.toSpec(); err != nil {
			return err
		}
	}
	for _, w := range s.Workloads {
		if _, err := w.toWorkload(); err != nil {
			return err
		}
	}
	switch s.Cluster {
	case "", "M", "D":
	default:
		return fmt.Errorf("harness: scenario %s: unknown cluster %q (want M or D)", s.Name, s.Cluster)
	}
	for _, v := range s.Variants {
		if _, err := parseVariants(v); err != nil {
			return err
		}
	}
	if s.Metric != "" {
		if _, ok := scenarioMetrics[s.Metric]; !ok {
			return fmt.Errorf("harness: scenario %s: unknown metric %q", s.Name, s.Metric)
		}
	}
	if s.LoadOnly && s.Metric != "" && s.Metric != "disk" {
		return fmt.Errorf("harness: scenario %s: loadOnly grids only measure the disk metric", s.Name)
	}
	if s.RecordsPerNode < 0 {
		return fmt.Errorf("harness: scenario %s: negative recordsPerNode %d", s.Name, s.RecordsPerNode)
	}
	if s.Repetitions < 0 {
		return fmt.Errorf("harness: scenario %s: negative repetitions %d", s.Name, s.Repetitions)
	}
	if _, err := s.schedule(); err != nil {
		return err
	}
	if len(s.Faults) > 0 {
		if s.LoadOnly {
			return fmt.Errorf("harness: scenario %s: faults need a measured run, not loadOnly", s.Name)
		}
		// The target selector is per-cell node index; every grid size must
		// contain the targeted nodes.
		for _, f := range s.Faults {
			for _, n := range s.Nodes {
				if f.Node >= n {
					return fmt.Errorf("harness: scenario %s: fault %s targets node %d but the grid includes %d-node clusters", s.Name, f.Kind, f.Node, n)
				}
			}
		}
	}
	return nil
}

// metric returns the scenario's Y extractor and axis label.
func (s *Scenario) metric() (metric, string) {
	name := s.Metric
	if name == "" {
		name = "throughput"
		if s.LoadOnly {
			name = "disk"
		}
	}
	sm := scenarioMetrics[name]
	return sm.m, sm.yLabel
}

// seriesSpec is one figure series of the grid: a (system, workload,
// variants) combination swept over the node counts.
type seriesSpec struct {
	label string
	cells []Cell
	xs    []float64
}

// queryMix normalizes a copy of the scenario's query specs into a mix.
func (s *Scenario) queryMix() (query.Mix, error) {
	m := make(query.Mix, len(s.Queries))
	copy(m, s.Queries)
	if err := m.Normalize(); err != nil {
		return nil, fmt.Errorf("harness: scenario %s: %w", s.Name, err)
	}
	return m, nil
}

// series expands the grid, skipping (system, workload) pairs the system
// cannot run (e.g. scan mixes on Voldemort), mirroring how the paper's
// scan figures exclude it. Skipped pairs are reported so a scenario author
// sees the holes.
func (s *Scenario) series() ([]seriesSpec, []string, error) {
	workloads := s.Workloads
	if s.LoadOnly && len(workloads) == 0 {
		workloads = []ScenarioWorkload{{}}
	}
	sched, err := s.schedule()
	if err != nil {
		return nil, nil, err
	}
	var faults string
	if sched != nil {
		faults = sched.String()
	}
	var hw cluster.Spec
	if s.Hardware != nil {
		hw, err = s.Hardware.toSpec()
		if err != nil {
			return nil, nil, err
		}
	}
	variants := s.Variants
	if len(variants) == 0 {
		variants = []string{""}
	}
	if len(s.Queries) > 0 {
		return s.querySeries(hw, variants)
	}
	var specs []seriesSpec
	var skipped []string
	for _, sys := range s.Systems {
		for _, sw := range workloads {
			var wl ycsb.Workload
			preset := false
			if sw.Name != "" || !s.LoadOnly {
				var err error
				wl, err = sw.toWorkload()
				if err != nil {
					return nil, nil, err
				}
				preset = !sw.custom()
				// A load-only cell executes no operations — its workload
				// only picks the record size — so the scan/update support
				// matrix applies to measured grids only.
				if !s.LoadOnly && !SupportsWorkload(sys, wl) {
					skipped = append(skipped, fmt.Sprintf("%s/%s", sys, wl.Name))
					continue
				}
			}
			for _, v := range variants {
				spec := seriesSpec{label: seriesLabel(sys, sw.Name, v)}
				for _, n := range s.Nodes {
					c := Cell{
						System:         sys,
						Nodes:          n,
						ClusterD:       s.Cluster == "D",
						Spec:           hw,
						Variants:       v,
						LoadOnly:       s.LoadOnly,
						RecordsPerNode: s.RecordsPerNode,
						Repetitions:    s.Repetitions,
						Faults:         faults,
					}
					if preset {
						c.Workload = wl.Name
					} else if sw.Name != "" {
						c.Mix = wl
					}
					spec.cells = append(spec.cells, c)
					spec.xs = append(spec.xs, float64(n))
				}
				specs = append(specs, spec)
			}
		}
	}
	return specs, skipped, nil
}

// querySeries expands an analytic grid: one series per system × variant
// combo, every cell carrying the whole mix's canonical encoding (the mix
// is weighted within a cell, like an operation mix — not one series per
// query). Systems without scan support are skipped like scan workloads.
func (s *Scenario) querySeries(hw cluster.Spec, variants []string) ([]seriesSpec, []string, error) {
	mix, err := s.queryMix()
	if err != nil {
		return nil, nil, err
	}
	enc := mix.String()
	var specs []seriesSpec
	var skipped []string
	for _, sys := range s.Systems {
		if !SupportsQueries(sys) {
			skipped = append(skipped, fmt.Sprintf("%s/queries", sys))
			continue
		}
		for _, v := range variants {
			spec := seriesSpec{label: seriesLabel(sys, "queries", v)}
			for _, n := range s.Nodes {
				spec.cells = append(spec.cells, Cell{
					System:         sys,
					Nodes:          n,
					ClusterD:       s.Cluster == "D",
					Spec:           hw,
					Variants:       v,
					RecordsPerNode: s.RecordsPerNode,
					Repetitions:    s.Repetitions,
					Queries:        enc,
				})
				spec.xs = append(spec.xs, float64(n))
			}
			specs = append(specs, spec)
		}
	}
	return specs, skipped, nil
}

func seriesLabel(sys System, workload, variants string) string {
	label := string(sys)
	if workload != "" {
		label += "/" + workload
	}
	if variants != "" {
		label += "/" + variants
	}
	return label
}

// Cells returns every cell the scenario measures, in grid order, with
// unsupported (system, workload) pairs skipped.
func (s *Scenario) Cells() ([]Cell, error) {
	specs, _, err := s.series()
	if err != nil {
		return nil, err
	}
	var cells []Cell
	for _, spec := range specs {
		cells = append(cells, spec.cells...)
	}
	return cells, nil
}

// RunScenario executes the scenario's grid on the worker pool (cached,
// seeded, deduplicated like any figure plan) and assembles the figure: one
// series per system × workload × variant combo, node counts on the X axis.
func (r *Runner) RunScenario(s *Scenario) (Figure, error) {
	if err := s.Validate(); err != nil {
		return Figure{}, err
	}
	specs, skipped, err := s.series()
	if err != nil {
		return Figure{}, err
	}
	if len(specs) == 0 {
		return Figure{}, fmt.Errorf("harness: scenario %s has no runnable cells (skipped: %v)", s.Name, skipped)
	}
	for _, sk := range skipped {
		r.emit(fmt.Sprintf("%-10s skipped: workload not supported", sk))
	}
	var cells []Cell
	for _, spec := range specs {
		cells = append(cells, spec.cells...)
	}
	if err := r.RunAll(cells); err != nil {
		return Figure{}, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	m, yLabel := s.metric()
	title := s.Name
	if s.Description != "" {
		title += ": " + s.Description
	}
	fig := Figure{ID: "scenario-" + s.Name, Title: title, XLabel: "nodes", YLabel: yLabel}
	for _, spec := range specs {
		series, err := r.variantSeries(spec.label, spec.cells, spec.xs, m)
		if err != nil {
			return Figure{}, fmt.Errorf("scenario %s: %w", s.Name, err)
		}
		fig.Series = append(fig.Series, series)
	}
	if len(s.Faults) > 0 {
		appendix, err := r.faultAppendix(specs)
		if err != nil {
			return Figure{}, fmt.Errorf("scenario %s: %w", s.Name, err)
		}
		fig.Appendix = appendix
	}
	return fig, nil
}

// faultAppendix renders each faulted cell's recovery curve: one row per
// measurement window with throughput, tail latency and availability, so a
// node-kill scenario shows the dip and the post-restart recovery (including
// the modeled replay cost) without leaving the text figure.
func (r *Runner) faultAppendix(specs []seriesSpec) (string, error) {
	var b strings.Builder
	for _, spec := range specs {
		for _, c := range spec.cells {
			res, err := r.Run(c) // cache hit: RunAll already measured it
			if err != nil {
				return "", err
			}
			w := res.Windows
			if w == nil || w.Windows() == 0 {
				continue
			}
			fmt.Fprintf(&b, "\nrecovery curve: %s n=%d {%s}\n", spec.label, c.Nodes, c.Faults)
			fmt.Fprintf(&b, "%8s %12s %10s %10s %8s\n", "t(s)", "ops/s", "p99(ms)", "p999(ms)", "avail")
			for i := 0; i < w.Windows(); i++ {
				fmt.Fprintf(&b, "%8.2f %12.0f %10.3f %10.3f %8.3f\n",
					(w.WindowStart(i) - w.Start()).Seconds(),
					w.Throughput(i),
					w.Quantile(i, 0.99).Seconds()*1e3,
					w.Quantile(i, 0.999).Seconds()*1e3,
					w.Availability(i))
			}
		}
	}
	return b.String(), nil
}
