package harness

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/query"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/store"
	"repro/internal/ycsb"
)

// Config controls experiment fidelity.
type Config struct {
	// Scale multiplies record counts and node RAM/disk (default 0.01).
	Scale float64
	// RecordsPerNode before scaling (paper: 10M on Cluster M).
	RecordsPerNode int64
	// ClusterDRecords before scaling (paper: 150M total).
	ClusterDRecords int64
	// Warmup and Measure bound each run in virtual time.
	Warmup  sim.Time
	Measure sim.Time
	// Seed makes every experiment deterministic.
	Seed int64
	// Repetitions averages each cell over this many independent seeds
	// (the paper reports the average of at least 3 executions).
	Repetitions int
	// NodeCounts is the cluster-size sweep (paper: 1..12).
	NodeCounts []int
}

// Defaults fills unset fields.
func (c Config) Defaults() Config {
	if c.Scale == 0 {
		c.Scale = 0.01
	}
	if c.RecordsPerNode == 0 {
		c.RecordsPerNode = 10_000_000
	}
	if c.ClusterDRecords == 0 {
		c.ClusterDRecords = 150_000_000
	}
	if c.Warmup == 0 {
		c.Warmup = 500 * sim.Millisecond
	}
	if c.Measure == 0 {
		c.Measure = 2 * sim.Second
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if len(c.NodeCounts) == 0 {
		c.NodeCounts = []int{1, 2, 4, 8, 12}
	}
	if c.Repetitions == 0 {
		c.Repetitions = 1
	}
	return c
}

// Fingerprint is the config's identity for result caching and the farm
// handshake: every field that shapes a cell's numbers, at full precision.
// NodeCounts is deliberately excluded — it selects which cells a sweep
// plans, not what any one cell measures — so narrowing a sweep still hits
// the cache entries the wide sweep wrote.
func (c Config) Fingerprint() string {
	c = c.Defaults()
	return fmt.Sprintf("scale=%g,rpn=%d,drec=%d,warm=%d,meas=%d,seed=%d,reps=%d",
		c.Scale, c.RecordsPerNode, c.ClusterDRecords, int64(c.Warmup), int64(c.Measure), c.Seed, c.Repetitions)
}

// Quick returns a low-fidelity config for tests.
func Quick() Config {
	return Config{
		Scale:          0.001,
		Warmup:         200 * sim.Millisecond,
		Measure:        600 * sim.Millisecond,
		NodeCounts:     []int{1, 2, 4},
		RecordsPerNode: 10_000_000,
	}.Defaults()
}

// Cell identifies one experiment data point: a full declarative scenario
// spec. Paper figures use the named-preset subset (System, Nodes, Workload,
// ClusterD); ablations add Variants; user scenarios may also inline a
// custom workload mix (Mix) or override the hardware (Spec). Cell is a
// comparable value type — every field is scalar — so results can be
// compared across runners and cells keyed without allocation tricks.
type Cell struct {
	System System
	Nodes  int
	// Workload names a Table 1 preset. Ignored when Mix is set.
	Workload string
	// Mix, when its Name is non-empty, is an inline workload spec
	// (arbitrary read/scan/insert/update mix, scan length, key
	// distribution, record size) used instead of the Workload preset
	// lookup. Preset-identical mixes should use Workload so the cell
	// shares its cache entry and seed with the figures.
	Mix      ycsb.Workload
	ClusterD bool
	// Spec, when its Name is non-empty, overrides the cell's hardware
	// (cluster.ClusterM/ClusterD otherwise); Spec.Nodes is ignored in
	// favor of Cell.Nodes. Custom-spec cells load RecordsPerNode records
	// per node, like Cluster M.
	Spec cluster.Spec
	// Variants is an ordered comma-separated list of key=value deployment
	// options (see the variant vocabulary in systems.go), e.g.
	// "replication=3,consistency=all". Empty means the paper's defaults.
	Variants string
	// TargetFraction throttles to a share of the cell's max throughput
	// (0 = unthrottled); used by the bounded-throughput experiment.
	TargetFraction float64
	// LoadOnly deploys and loads the cell without running a workload
	// (the disk-usage experiment, Fig 17). Workload/Mix then only select
	// the record size (default 75-byte records when unset).
	LoadOnly bool
	// RecordsPerNode overrides Config.RecordsPerNode for this cell
	// (pre-scale records per node, also applied on Cluster D in place of
	// the paper's fixed total); 0 keeps the config's dataset size. Set by
	// scenario-level overrides.
	RecordsPerNode int64
	// Repetitions overrides Config.Repetitions for this cell (independent
	// seeds averaged per result); 0 keeps the config's. Ignored for
	// LoadOnly cells, whose load is deterministic per seed.
	Repetitions int
	// Faults is a canonical fault schedule (fault.Schedule.String(), e.g.
	// "kill-node@1[0.3:0.6]") injected into the run, with windows as
	// fractions of warmup+measure. Empty means no faults; faulted cells
	// also collect windowed quantiles/availability.
	Faults string
	// Queries, when set, makes this an analytic query cell: the canonical
	// encoding of a query mix (query.Mix.String(), round-tripped by
	// query.ParseMix) run by dashboard clients against the time-ordered APM
	// measurement grid instead of a YCSB workload. Workload/Mix are then
	// ignored. Carrying the canonical string — not the spec structs — keeps
	// Cell a comparable value type and makes the string itself the cache
	// and wire identity.
	Queries string
}

// workload resolves the cell's operation mix: the inline Mix when set,
// otherwise the named Table 1 preset.
func (c Cell) workload() (ycsb.Workload, error) {
	if c.Mix.Name != "" {
		if err := c.Mix.Validate(); err != nil {
			return ycsb.Workload{}, err
		}
		return c.Mix, nil
	}
	return ycsb.WorkloadByName(c.Workload)
}

// workloadName is the mix's display name.
func (c Cell) workloadName() string {
	if c.Mix.Name != "" {
		return c.Mix.Name
	}
	return c.Workload
}

// workloadKey is the workload's cache-key fragment. Presets key by name
// (so pre-scenario cell keys — and with them every figure seed — are
// unchanged); inline mixes key by every parameter at full precision (%g),
// because a rounded key would alias two different experiments into one
// cache slot and one seed (the PR-2 TargetFraction lesson).
func (c Cell) workloadKey() string {
	if c.Mix.Name == "" {
		return c.Workload
	}
	m := c.Mix
	return fmt.Sprintf("%s(r=%g,s=%g,i=%g,u=%g,len=%d,dist=%d,fb=%d)",
		m.Name, m.ReadProp, m.ScanProp, m.InsertProp, m.UpdateProp, m.ScanLength, int(m.Chooser), m.FieldBytes)
}

// loadFieldSize is the record field size a LoadOnly cell loads: the
// workload's when one is set (only the record shape matters for a load),
// else the paper default. Unresolvable workloads fall back to the default;
// the error surfaces when the cell runs.
func (c Cell) loadFieldSize() int {
	if c.Workload == "" && c.Mix.Name == "" {
		return store.FieldBytes
	}
	wl, err := c.workload()
	if err != nil {
		return store.FieldBytes
	}
	return wl.FieldSize()
}

// specKey is the hardware override's cache-key fragment.
func specKey(s cluster.Spec) string {
	return fmt.Sprintf("%s(cores=%d,ram=%d,disks=%d,seek=%d,dmbps=%g,dbytes=%d,netlat=%d,netmbps=%g)",
		s.Name, s.Node.Cores, s.Node.RAMBytes, s.Node.Disks, int64(s.Node.DiskSeek),
		s.Node.DiskMBps, s.Node.DiskBytes, int64(s.Net.BaseLatency), s.Net.MBps)
}

// base returns the unthrottled cell a TargetFraction cell is normalized
// against, and whether c has one.
func (c Cell) base() (Cell, bool) {
	if c.TargetFraction <= 0 {
		return Cell{}, false
	}
	b := c
	b.TargetFraction = 0
	return b, true
}

// CellResult is one measured data point.
type CellResult struct {
	Cell       Cell
	Throughput float64
	ReadLat    sim.Time
	WriteLat   sim.Time // insert latency (APM writes are inserts)
	ScanLat    sim.Time
	UpdateLat  sim.Time
	Ops        int64
	Errors     int64
	Timeouts   int64
	// DiskBytesPaperScale is store disk usage rescaled to paper size.
	DiskBytesPaperScale float64
	// Windows holds the per-window recovery curve (nil unless the cell has
	// faults); repetitions merge into one set of windows.
	Windows *stats.WindowedLatency
}

// CellExecutor measures one cell the runner could not serve from any
// cache. The default (nil) executor measures in process; the farm
// coordinator substitutes one that leases the cell to a remote worker.
// Either way the result must be the deterministic function of
// (Config, cell) the seeding contract promises — the runner dispatches
// cached, remote and local execution through the same singleflight path
// and treats the answers as interchangeable.
type CellExecutor interface {
	ExecuteCell(c Cell) (CellResult, error)
}

// ResultCache is a persistent store of cell results, keyed by the full
// experiment identity (Config fingerprint + cell key; implementations add
// the binary's model version). A Get hit is returned to figures without
// re-measuring anything; implementations must verify integrity and version
// and report misses for anything they cannot prove fresh — a stale or
// corrupt entry must be recomputed, never trusted. Both methods must be
// safe for concurrent use.
type ResultCache interface {
	Get(key string) (CellResult, bool)
	Put(key string, res CellResult)
}

// Runner executes and caches experiment cells so figures sharing the same
// runs (e.g. Fig 3/4/5) measure each cell once.
//
// Determinism contract: a cell's engine seed is a stable hash of
// (Cfg.Seed, cell identity, repetition), never of execution history, so a
// cell's result is bit-identical whether it runs first, last, shuffled or
// on a concurrent worker. Run and RunAll are safe for concurrent use;
// concurrent requests for the same cell share one execution.
type Runner struct {
	Cfg Config
	// Workers bounds concurrent cell executions in RunAll and the
	// ablation grids; 0 means GOMAXPROCS. Note each in-flight cell holds
	// a full simulated cluster (engine, stores, loaded records), so at
	// paper scale workers multiply peak memory as well as CPU.
	Workers int
	// Progress, when set, receives one line per executed cell. Calls are
	// serialized; RunAll delivers lines in plan order regardless of which
	// worker finishes first.
	Progress func(string)
	// Executor, when set, measures the cells this runner could not serve
	// from any cache (the farm coordinator sets one that leases cells to
	// remote workers); nil measures in process. Cache, when set, is a
	// persistent result cache consulted before executing and filled after,
	// so a re-run of the same experiment with the same model version
	// executes zero cells. Both sit inside the singleflight path: cached,
	// remote and local results flow through the same slot and the in-memory
	// cell cache above them.
	Executor CellExecutor
	Cache    ResultCache
	// MemStats, when set, receives one diagnostic line per executed cell
	// after its load phase: the store's retained slab bytes (keys, field
	// payloads, index arenas) and the process heap in use. Lines are
	// host-side diagnostics only — they never touch the simulation — but
	// heap numbers vary with GC timing and -parallel width, so the
	// determinism gate runs without them.
	MemStats func(string)

	mu        sync.Mutex
	cache     map[string]CellResult
	inflight  map[string]*inflightCell
	executed  int64 // cells measured rather than served from any cache
	cacheHits int64 // cells served from the persistent Cache

	progressMu sync.Mutex
}

// inflightCell is the singleflight slot for a cell being measured: late
// arrivals block on done and share the result.
type inflightCell struct {
	done chan struct{}
	res  CellResult
	err  error
}

// NewRunner creates a runner with the given config.
func NewRunner(cfg Config) *Runner {
	return &Runner{
		Cfg:      cfg.Defaults(),
		cache:    map[string]CellResult{},
		inflight: map[string]*inflightCell{},
	}
}

func (r *Runner) key(c Cell) string {
	var k string
	if c.LoadOnly {
		// A load is fully determined by system, nodes, cluster, record
		// size, and deployment variants — not by the operation mix — so
		// the key deliberately omits the workload identity beyond its
		// field size. A load-only scenario cell naming preset "R" (or any
		// default-sized mix) therefore shares its cache entry and seed
		// with the corresponding Fig 17 cell.
		k = fmt.Sprintf("loadonly/%s/%d", c.System, c.Nodes)
		if fb := c.loadFieldSize(); fb != store.FieldBytes {
			k += fmt.Sprintf("/fb=%d", fb)
		}
		if c.ClusterD {
			k += "/d=true"
		}
	} else {
		// TargetFraction must print at full precision: rounding (e.g. %.2f)
		// would collide a small fraction's key with its unthrottled base's,
		// and resolving the base from inside the cell's own measurement would
		// then wait forever on the cell's own singleflight slot.
		k = fmt.Sprintf("%s/%d/%s/d=%v/f=%g", c.System, c.Nodes, c.workloadKey(), c.ClusterD, c.TargetFraction)
	}
	// The scenario extensions append only when set, so every pre-scenario
	// cell keeps its exact historical key — and therefore its seed and its
	// figure numbers.
	if c.Variants != "" {
		k += "/v=" + c.Variants
	}
	if c.Spec.Name != "" {
		k += "/hw=" + specKey(c.Spec)
	}
	if c.RecordsPerNode > 0 {
		k += fmt.Sprintf("/rpn=%d", c.RecordsPerNode)
	}
	// Repetition count changes a workload cell's averaged result, so it is
	// part of the identity; a load's outcome doesn't depend on it.
	if c.Repetitions > 0 && !c.LoadOnly {
		k += fmt.Sprintf("/reps=%d", c.Repetitions)
	}
	if c.Faults != "" {
		k += "/flt=" + c.Faults
	}
	if c.Queries != "" {
		k += "/q=" + c.Queries
	}
	return k
}

// repetitions resolves how many independent executions average into c's
// result: the cell's override when set, else the config's.
func (r *Runner) repetitions(c Cell) int {
	if c.Repetitions > 0 {
		return c.Repetitions
	}
	return r.Cfg.Repetitions
}

// cellSeed derives the engine seed for repetition rep of the cell
// identified by key: a stable FNV-1a hash of (Cfg.Seed, key, rep). Results
// depend only on config and cell identity, not on how many cells ran
// before — the property that lets shuffled and parallel schedules produce
// bit-identical figures.
func (r *Runner) cellSeed(key string, rep int64) int64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(r.Cfg.Seed))
	h.Write(b[:])
	h.Write([]byte(key))
	binary.LittleEndian.PutUint64(b[:], uint64(rep))
	h.Write(b[:])
	return int64(h.Sum64())
}

func (r *Runner) workers() int {
	if r.Workers > 0 {
		return r.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (r *Runner) emit(line string) {
	if r.Progress == nil {
		return
	}
	r.progressMu.Lock()
	r.Progress(line)
	r.progressMu.Unlock()
}

// reportMemStats emits one -memstats line for a freshly loaded cell: the
// store's retained slab bytes (per record, when it reports them) and the
// process-wide heap in use. Purely host-side observation — no simulation
// state is read or advanced.
func (r *Runner) reportMemStats(key string, s store.Store, records int64) {
	if r.MemStats == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	line := fmt.Sprintf("memstats %s: records=%d heap-inuse=%.1fMB", key, records,
		float64(ms.HeapInuse)/(1<<20))
	if slab, ok := store.SlabBytesOf(s); ok && records > 0 {
		line += fmt.Sprintf(" slab=%.1fMB (%.1f B/record)",
			float64(slab)/(1<<20), float64(slab)/float64(records))
	}
	r.progressMu.Lock()
	r.MemStats(line)
	r.progressMu.Unlock()
}

// reportScanStats emits one diagnostic line per measured cell whose scans
// touched an LSM store: how many sstables the scans positioned read
// cursors on and how many were skipped outright by key-range metadata
// (lsm.ScanStats). It shares the -memstats hook — host-side observation on
// stderr — and stays silent when the store keeps no such counters or no
// scan ran, so load-only grids keep their exact historical stderr.
func (r *Runner) reportScanStats(key string, s store.Store) {
	if r.MemStats == nil {
		return
	}
	positioned, pruned, ok := store.ScanStatsOf(s)
	if !ok || positioned+pruned == 0 {
		return
	}
	r.progressMu.Lock()
	r.MemStats(fmt.Sprintf("scanstats %s: tables-positioned=%d tables-pruned=%d", key, positioned, pruned))
	r.progressMu.Unlock()
}

// Run measures one cell (cached), averaging over Cfg.Repetitions
// independent executions with distinct seeds. Safe for concurrent use.
func (r *Runner) Run(c Cell) (CellResult, error) {
	res, line, err := r.do(c)
	if err == nil && line != "" {
		r.emit(line)
	}
	return res, err
}

// LoadOnly deploys and loads a cell without running a workload; used by the
// disk-usage experiment (Fig 17).
func (r *Runner) LoadOnly(sys System, nodes int) (CellResult, error) {
	return r.Run(Cell{System: sys, Nodes: nodes, LoadOnly: true})
}

// ExecuteCell implements CellExecutor: a local, cached, singleflighted
// measurement with no progress emission. It lets a plain Runner stand in
// wherever a remote executor is expected — in particular as a farm
// coordinator's local fallback when no workers are alive. Never set a
// runner's own Executor to the same runner: resolveCell would recurse.
func (r *Runner) ExecuteCell(c Cell) (CellResult, error) {
	res, _, err := r.do(c)
	return res, err
}

// do resolves one cell through the cache with singleflight semantics:
// concurrent calls for the same cell share one measurement. It returns the
// cell's progress line when this call did the work ("" on a cache hit or
// when another call measured it), leaving emission order to the caller.
func (r *Runner) do(c Cell) (CellResult, string, error) {
	key := r.key(c)
	r.mu.Lock()
	if res, ok := r.cache[key]; ok {
		r.mu.Unlock()
		return res, "", nil
	}
	if fl, ok := r.inflight[key]; ok {
		r.mu.Unlock()
		<-fl.done
		return fl.res, "", fl.err
	}
	fl := &inflightCell{done: make(chan struct{})}
	r.inflight[key] = fl
	r.mu.Unlock()

	var hit bool
	fl.res, hit, fl.err = r.resolveCell(c, key)

	r.mu.Lock()
	if fl.err == nil {
		r.cache[key] = fl.res
	}
	if hit {
		r.cacheHits++
	} else {
		r.executed++
	}
	delete(r.inflight, key)
	r.mu.Unlock()
	close(fl.done)
	if fl.err != nil {
		return CellResult{}, "", fl.err
	}
	return fl.res, progressLine(c, fl.res), nil
}

// resolveCell produces a cell's result from inside its singleflight slot:
// the persistent cache first (hit=true, nothing executed), else the remote
// executor when one is set, else a local measurement. Fresh results are
// written back to the persistent cache so the next process starts warm.
func (r *Runner) resolveCell(c Cell, key string) (CellResult, bool, error) {
	cacheKey := r.Cfg.Fingerprint() + "|" + key
	if r.Cache != nil {
		if res, ok := r.Cache.Get(cacheKey); ok {
			return res, true, nil
		}
	}
	var res CellResult
	var err error
	if r.Executor != nil {
		res, err = r.Executor.ExecuteCell(c)
	} else {
		res, err = r.measure(c, key)
	}
	if err == nil && r.Cache != nil {
		r.Cache.Put(cacheKey, res)
	}
	return res, false, err
}

// measure executes a cell outside the cache: repetition averaging for
// workload cells, a bare deploy+load for LoadOnly cells.
func (r *Runner) measure(c Cell, key string) (CellResult, error) {
	if c.LoadOnly {
		return r.loadOnly(c, key)
	}
	var acc CellResult
	for rep := 0; rep < r.repetitions(c); rep++ {
		res, err := r.run(c, key, int64(rep))
		if err != nil {
			return CellResult{}, err
		}
		if rep == 0 {
			acc = res
			continue
		}
		k := float64(rep + 1)
		acc.Throughput += (res.Throughput - acc.Throughput) / k
		acc.ReadLat += (res.ReadLat - acc.ReadLat) / sim.Time(rep+1)
		acc.WriteLat += (res.WriteLat - acc.WriteLat) / sim.Time(rep+1)
		acc.ScanLat += (res.ScanLat - acc.ScanLat) / sim.Time(rep+1)
		acc.UpdateLat += (res.UpdateLat - acc.UpdateLat) / sim.Time(rep+1)
		acc.Ops += res.Ops
		acc.Errors += res.Errors
		acc.Timeouts += res.Timeouts
		if acc.Windows != nil && res.Windows != nil {
			if err := acc.Windows.Merge(res.Windows); err != nil {
				return CellResult{}, err
			}
		}
	}
	return acc, nil
}

// resolved is a cell translated into concrete run inputs: the operation
// mix, the hardware, the dataset size and the client count (after variant
// overrides). Shared by run, loadOnly and Explain so every execution path
// interprets a cell identically.
type resolved struct {
	wl      ycsb.Workload
	spec    cluster.Spec
	records int64
	clients int
}

func (r *Runner) resolve(c Cell) (resolved, error) {
	wl, err := c.workload()
	if err != nil {
		return resolved{}, err
	}
	if !SupportsWorkload(c.System, wl) {
		return resolved{}, fmt.Errorf("harness: %s does not support workload %s", c.System, c.workloadName())
	}
	clients := Conns(c.System, c.Nodes, c.ClusterD)
	if perNode, ok, err := variantInt(c.Variants, "conns"); err != nil {
		return resolved{}, err
	} else if ok {
		clients = perNode * c.Nodes
	}
	return resolved{
		wl:      wl,
		spec:    clusterSpecFor(c, r.Cfg),
		records: recordsFor(c, r.Cfg),
		clients: clients,
	}, nil
}

func (r *Runner) run(c Cell, key string, rep int64) (CellResult, error) {
	if c.Queries != "" {
		return r.runQueries(c, key, rep)
	}
	rv, err := r.resolve(c)
	if err != nil {
		return CellResult{}, err
	}

	var target float64
	if base, ok := c.base(); ok {
		maxRes, err := r.Run(base)
		if err != nil {
			return CellResult{}, err
		}
		target = maxRes.Throughput * c.TargetFraction
	}

	dep, err := DeployVariants(r.cellSeed(key, rep), c.System, rv.spec, r.Cfg.Scale, c.Variants)
	if err != nil {
		return CellResult{}, err
	}
	if err := ycsb.LoadSized(dep.Store, rv.records, rv.wl.FieldSize()); err != nil {
		return CellResult{}, err
	}
	r.reportMemStats(key, dep.Store, rv.records)
	// Fault injection rides the cell's own event stream: the schedule's
	// fractional windows resolve against warmup+measure, so the same
	// schedule exercises paper and quick fidelity alike.
	if c.Faults != "" {
		sched, err := fault.ParseSchedule(c.Faults)
		if err != nil {
			return CellResult{}, err
		}
		if err := fault.Inject(dep.Engine, dep.Clust.Nodes, dep.Store, sched, r.Cfg.Warmup+r.Cfg.Measure); err != nil {
			return CellResult{}, err
		}
	}
	res, err := ycsb.Run(dep.Engine, ycsb.RunConfig{
		Store:           dep.Store,
		Workload:        rv.wl,
		Clients:         rv.clients,
		TargetOpsPerSec: target,
		InitialRecords:  rv.records,
		Warmup:          r.Cfg.Warmup,
		Measure:         r.Cfg.Measure,
		TrackWindows:    c.Faults != "",
	})
	if err != nil {
		return CellResult{}, err
	}
	r.reportScanStats(key, dep.Store)
	return CellResult{
		Cell:                c,
		Throughput:          res.Throughput(),
		ReadLat:             res.MeanLatency(stats.OpRead),
		WriteLat:            res.MeanLatency(stats.OpInsert),
		UpdateLat:           res.MeanLatency(stats.OpUpdate),
		ScanLat:             res.MeanLatency(stats.OpScan),
		Ops:                 res.Ops(),
		Errors:              res.Errors(),
		Timeouts:            res.Timeouts(),
		DiskBytesPaperScale: float64(dep.Store.DiskUsage()) / r.Cfg.Scale,
		Windows:             res.Windows,
	}, nil
}

// runQueries measures one repetition of an analytic query cell: deploy the
// system, bulk-load the time-ordered APM measurement grid (sized like the
// cell's YCSB dataset would be), and run the dashboard query mix against
// it. Query latencies land on the scan metric — a query is a scan
// pipeline — so scenario figures read them through scan-latency.
func (r *Runner) runQueries(c Cell, key string, rep int64) (CellResult, error) {
	mix, err := query.ParseMix(c.Queries)
	if err != nil {
		return CellResult{}, err
	}
	// Dashboard sessions, not YCSB load generators: a handful of
	// concurrent readers per node (each query already fans out into tens
	// of range scans), overridable via the conns variant like any cell.
	clients := 4 * c.Nodes
	if perNode, ok, err := variantInt(c.Variants, "conns"); err != nil {
		return CellResult{}, err
	} else if ok {
		clients = perNode * c.Nodes
	}
	dep, err := DeployVariants(r.cellSeed(key, rep), c.System, clusterSpecFor(c, r.Cfg), r.Cfg.Scale, c.Variants)
	if err != nil {
		return CellResult{}, err
	}
	ds := query.SizeDataset(recordsFor(c, r.Cfg))
	if err := ds.Load(dep.Store); err != nil {
		return CellResult{}, err
	}
	r.reportMemStats(key, dep.Store, ds.Records())
	res, err := query.Run(dep.Engine, query.RunConfig{
		Store:   dep.Store,
		Dataset: ds,
		Mix:     mix,
		Clients: clients,
		Warmup:  r.Cfg.Warmup,
		Measure: r.Cfg.Measure,
	})
	if err != nil {
		return CellResult{}, err
	}
	r.reportScanStats(key, dep.Store)
	return CellResult{
		Cell:                c,
		Throughput:          res.Throughput(),
		ScanLat:             res.MeanLatency(stats.OpScan),
		Ops:                 res.Ops(),
		Errors:              res.Errors(),
		Timeouts:            res.Timeouts(),
		DiskBytesPaperScale: float64(dep.Store.DiskUsage()) / r.Cfg.Scale,
	}, nil
}

// loadOnly deploys and loads without a workload run. The workload, when
// set, only selects the record size.
func (r *Runner) loadOnly(c Cell, key string) (CellResult, error) {
	fieldBytes := 0 // default record shape
	if c.Workload != "" || c.Mix.Name != "" {
		wl, err := c.workload()
		if err != nil {
			return CellResult{}, err
		}
		fieldBytes = wl.FieldSize()
	}
	dep, err := DeployVariants(r.cellSeed(key, 0), c.System, clusterSpecFor(c, r.Cfg), r.Cfg.Scale, c.Variants)
	if err != nil {
		return CellResult{}, err
	}
	records := recordsFor(c, r.Cfg)
	if err := ycsb.LoadSized(dep.Store, records, fieldBytes); err != nil {
		return CellResult{}, err
	}
	r.reportMemStats(key, dep.Store, records)
	return CellResult{
		Cell:                c,
		DiskBytesPaperScale: float64(dep.Store.DiskUsage()) / r.Cfg.Scale,
	}, nil
}

func progressLine(c Cell, res CellResult) string {
	var line string
	if c.LoadOnly {
		line = fmt.Sprintf("%-10s n=%-2d load disk=%8.2fGB (paper scale)",
			c.System, c.Nodes, res.DiskBytesPaperScale/1e9)
	} else if c.Queries != "" {
		line = fmt.Sprintf("%-10s n=%-2d %-4s tput=%9.0f qry/s query=%9v err=%d",
			c.System, c.Nodes, "qry", res.Throughput, res.ScanLat, res.Errors)
	} else {
		line = fmt.Sprintf("%-10s n=%-2d %-4s tput=%9.0f ops/s read=%9v write=%9v scan=%9v err=%d",
			c.System, c.Nodes, c.workloadName(), res.Throughput, res.ReadLat, res.WriteLat, res.ScanLat, res.Errors)
	}
	if c.Variants != "" {
		line += " [" + c.Variants + "]"
	}
	if c.Faults != "" {
		line += " {" + c.Faults + "}"
	}
	return line
}

// RunAll executes cells on a pool of Workers goroutines. Duplicates are
// measured once; a TargetFraction cell is scheduled only after its
// unthrottled base cell when the base is part of the plan (otherwise Run
// resolves the dependency recursively on the same worker). Progress lines
// come out in plan order regardless of completion order. All runnable
// cells execute even if one errors; the first error (in completion order)
// is returned at the end.
func (r *Runner) RunAll(cells []Cell) error {
	// Dedupe, preserving first-occurrence order: plan order is also
	// progress-emission order.
	var plan []Cell
	index := map[string]int{}
	for _, c := range cells {
		k := r.key(c)
		if _, ok := index[k]; ok {
			continue
		}
		index[k] = len(plan)
		plan = append(plan, c)
	}
	n := len(plan)
	if n == 0 {
		return nil
	}

	// Dependency DAG: throttled cell <- its base cell. Depth is one by
	// construction, but the scheduler below handles any DAG.
	dependents := make([][]int, n)
	blocked := make([]int, n)
	for i, c := range plan {
		if base, ok := c.base(); ok {
			if j, ok := index[r.key(base)]; ok && j != i {
				dependents[j] = append(dependents[j], i)
				blocked[i]++
			}
		}
	}

	ready := make(chan int, n) // buffered: sends below never block
	for i, b := range blocked {
		if b == 0 {
			ready <- i
		}
	}

	var (
		mu        sync.Mutex
		firstErr  error
		completed = make([]bool, n)
		lines     = make([]string, n)
		skip      = make([]error, n) // dependency failure to report instead of running
		next      int
		done      int
	)
	complete := func(i int, line string, err error) {
		mu.Lock()
		defer mu.Unlock()
		completed[i] = true
		lines[i] = line
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("cell %s: %w", r.key(plan[i]), err)
		}
		for next < n && completed[next] {
			if lines[next] != "" {
				r.emit(lines[next])
			}
			next++
		}
		for _, d := range dependents[i] {
			// Errors are not cached (a cell stays retryable), so a
			// dependent dispatched after its base failed would re-measure
			// the doomed base from scratch; fail it directly instead.
			if err != nil && skip[d] == nil {
				skip[d] = fmt.Errorf("base cell %s: %w", r.key(plan[i]), err)
			}
			blocked[d]--
			if blocked[d] == 0 {
				ready <- d
			}
		}
		if done++; done == n {
			close(ready)
		}
	}

	workers := r.workers()
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ready {
				mu.Lock()
				skipped := skip[i]
				mu.Unlock()
				if skipped != nil {
					complete(i, "", skipped)
					continue
				}
				_, line, err := r.do(plan[i])
				complete(i, line, err)
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// Executed reports how many cells this runner has measured (cache hits and
// singleflight followers excluded). Tests use it to pin the planning
// contract: generating a figure after RunAll(CellsFor(id)) must execute
// nothing new.
func (r *Runner) Executed() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.executed
}

// CacheHits reports how many cells were served by the persistent Cache
// instead of being executed. A warm re-run of an identical experiment
// should show Executed()==0 with every planned cell counted here — the
// property the CI warm-cache gate asserts.
func (r *Runner) CacheHits() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cacheHits
}

// parallelMap runs f(0..n-1) on up to workers goroutines and returns the
// results in index order. Every call runs to completion; the first error
// by index wins, keeping failures deterministic under any schedule.
func parallelMap[T any](n, workers int, f func(int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var nextIdx int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&nextIdx, 1)) - 1
				if i >= n {
					return
				}
				out[i], errs[i] = f(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
