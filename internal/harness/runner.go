package harness

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/ycsb"
)

// Config controls experiment fidelity.
type Config struct {
	// Scale multiplies record counts and node RAM/disk (default 0.01).
	Scale float64
	// RecordsPerNode before scaling (paper: 10M on Cluster M).
	RecordsPerNode int64
	// ClusterDRecords before scaling (paper: 150M total).
	ClusterDRecords int64
	// Warmup and Measure bound each run in virtual time.
	Warmup  sim.Time
	Measure sim.Time
	// Seed makes every experiment deterministic.
	Seed int64
	// Repetitions averages each cell over this many independent seeds
	// (the paper reports the average of at least 3 executions).
	Repetitions int
	// NodeCounts is the cluster-size sweep (paper: 1..12).
	NodeCounts []int
}

// Defaults fills unset fields.
func (c Config) Defaults() Config {
	if c.Scale == 0 {
		c.Scale = 0.01
	}
	if c.RecordsPerNode == 0 {
		c.RecordsPerNode = 10_000_000
	}
	if c.ClusterDRecords == 0 {
		c.ClusterDRecords = 150_000_000
	}
	if c.Warmup == 0 {
		c.Warmup = 500 * sim.Millisecond
	}
	if c.Measure == 0 {
		c.Measure = 2 * sim.Second
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if len(c.NodeCounts) == 0 {
		c.NodeCounts = []int{1, 2, 4, 8, 12}
	}
	if c.Repetitions == 0 {
		c.Repetitions = 1
	}
	return c
}

// Quick returns a low-fidelity config for tests.
func Quick() Config {
	return Config{
		Scale:          0.001,
		Warmup:         200 * sim.Millisecond,
		Measure:        600 * sim.Millisecond,
		NodeCounts:     []int{1, 2, 4},
		RecordsPerNode: 10_000_000,
	}.Defaults()
}

// Cell identifies one experiment data point.
type Cell struct {
	System   System
	Nodes    int
	Workload string
	ClusterD bool
	// TargetFraction throttles to a share of the cell's max throughput
	// (0 = unthrottled); used by the bounded-throughput experiment.
	TargetFraction float64
}

// CellResult is one measured data point.
type CellResult struct {
	Cell       Cell
	Throughput float64
	ReadLat    sim.Time
	WriteLat   sim.Time // insert latency (APM writes are inserts)
	ScanLat    sim.Time
	UpdateLat  sim.Time
	Ops        int64
	Errors     int64
	// DiskBytesPaperScale is store disk usage rescaled to paper size.
	DiskBytesPaperScale float64
}

// Runner executes and caches experiment cells so figures sharing the same
// runs (e.g. Fig 3/4/5) measure each cell once.
type Runner struct {
	Cfg   Config
	cache map[string]CellResult
	// Progress, when set, receives one line per executed cell.
	Progress func(string)
}

// NewRunner creates a runner with the given config.
func NewRunner(cfg Config) *Runner {
	return &Runner{Cfg: cfg.Defaults(), cache: map[string]CellResult{}}
}

func (r *Runner) key(c Cell) string {
	return fmt.Sprintf("%s/%d/%s/d=%v/f=%.2f", c.System, c.Nodes, c.Workload, c.ClusterD, c.TargetFraction)
}

// Run measures one cell (cached), averaging over Cfg.Repetitions
// independent executions with distinct seeds.
func (r *Runner) Run(c Cell) (CellResult, error) {
	if res, ok := r.cache[r.key(c)]; ok {
		return res, nil
	}
	var acc CellResult
	for rep := 0; rep < r.Cfg.Repetitions; rep++ {
		res, err := r.run(c, int64(rep)*7919)
		if err != nil {
			return CellResult{}, err
		}
		if rep == 0 {
			acc = res
			continue
		}
		k := float64(rep + 1)
		acc.Throughput += (res.Throughput - acc.Throughput) / k
		acc.ReadLat += (res.ReadLat - acc.ReadLat) / sim.Time(rep+1)
		acc.WriteLat += (res.WriteLat - acc.WriteLat) / sim.Time(rep+1)
		acc.ScanLat += (res.ScanLat - acc.ScanLat) / sim.Time(rep+1)
		acc.UpdateLat += (res.UpdateLat - acc.UpdateLat) / sim.Time(rep+1)
		acc.Ops += res.Ops
		acc.Errors += res.Errors
	}
	r.cache[r.key(c)] = acc
	return acc, nil
}

func (r *Runner) run(c Cell, seedOffset int64) (CellResult, error) {
	wl, err := ycsb.WorkloadByName(c.Workload)
	if err != nil {
		return CellResult{}, err
	}
	if !SupportsWorkload(c.System, wl.HasScans()) {
		return CellResult{}, fmt.Errorf("harness: %s does not support workload %s", c.System, c.Workload)
	}

	var target float64
	if c.TargetFraction > 0 {
		maxCell := c
		maxCell.TargetFraction = 0
		maxRes, err := r.Run(maxCell)
		if err != nil {
			return CellResult{}, err
		}
		target = maxRes.Throughput * c.TargetFraction
	}

	spec := clusterSpecFor(c, r.Cfg)
	records := recordsFor(c, r.Cfg)
	seed := r.Cfg.Seed + int64(len(r.cache)) + seedOffset
	dep, err := Deploy(seed, c.System, spec, r.Cfg.Scale)
	if err != nil {
		return CellResult{}, err
	}
	if err := ycsb.Load(dep.Store, records); err != nil {
		return CellResult{}, err
	}
	res, err := ycsb.Run(dep.Engine, ycsb.RunConfig{
		Store:           dep.Store,
		Workload:        wl,
		Clients:         Conns(c.System, c.Nodes, c.ClusterD),
		TargetOpsPerSec: target,
		InitialRecords:  records,
		Warmup:          r.Cfg.Warmup,
		Measure:         r.Cfg.Measure,
	})
	if err != nil {
		return CellResult{}, err
	}
	out := CellResult{
		Cell:                c,
		Throughput:          res.Throughput(),
		ReadLat:             res.MeanLatency(stats.OpRead),
		WriteLat:            res.MeanLatency(stats.OpInsert),
		UpdateLat:           res.MeanLatency(stats.OpUpdate),
		ScanLat:             res.MeanLatency(stats.OpScan),
		Ops:                 res.Ops(),
		Errors:              res.Errors(),
		DiskBytesPaperScale: float64(dep.Store.DiskUsage()) / r.Cfg.Scale,
	}
	if r.Progress != nil {
		r.Progress(fmt.Sprintf("%-10s n=%-2d %-4s tput=%9.0f ops/s read=%9v write=%9v scan=%9v err=%d",
			c.System, c.Nodes, c.Workload, out.Throughput, out.ReadLat, out.WriteLat, out.ScanLat, out.Errors))
	}
	return out, nil
}

// LoadOnly deploys and loads a cell without running a workload; used by the
// disk-usage experiment (Fig 17).
func (r *Runner) LoadOnly(sys System, nodes int) (CellResult, error) {
	key := fmt.Sprintf("loadonly/%s/%d", sys, nodes)
	if res, ok := r.cache[key]; ok {
		return res, nil
	}
	spec := cluster.ClusterM(nodes)
	records := int64(float64(r.Cfg.RecordsPerNode*int64(nodes)) * r.Cfg.Scale)
	dep, err := Deploy(r.Cfg.Seed, sys, spec, r.Cfg.Scale)
	if err != nil {
		return CellResult{}, err
	}
	if err := ycsb.Load(dep.Store, records); err != nil {
		return CellResult{}, err
	}
	res := CellResult{
		Cell:                Cell{System: sys, Nodes: nodes},
		DiskBytesPaperScale: float64(dep.Store.DiskUsage()) / r.Cfg.Scale,
	}
	r.cache[key] = res
	return res, nil
}
