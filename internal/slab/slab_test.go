package slab

import (
	"bytes"
	"fmt"
	"testing"
)

func TestAllocViewRoundTrip(t *testing.T) {
	var s Slab
	type region struct {
		ref Ref
		val []byte
	}
	var regions []region
	for i := 0; i < 1000; i++ {
		val := []byte(fmt.Sprintf("value-%04d", i))
		ref, dst := s.Alloc(len(val))
		copy(dst, val)
		regions = append(regions, region{ref, val})
	}
	for _, r := range regions {
		if got := s.View(r.ref, len(r.val)); !bytes.Equal(got, r.val) {
			t.Fatalf("View(%#x) = %q, want %q", r.ref, got, r.val)
		}
		if got := s.String(r.ref, len(r.val)); got != string(r.val) {
			t.Fatalf("String(%#x) = %q, want %q", r.ref, got, r.val)
		}
	}
}

func TestAllocSpansChunks(t *testing.T) {
	var s Slab
	big := make([]byte, chunkBytes-10)
	for i := range big {
		big[i] = byte(i)
	}
	r1 := s.Append(big)
	r2 := s.Append([]byte("after-boundary")) // does not fit in chunk 0
	if !bytes.Equal(s.View(r1, len(big)), big) {
		t.Fatal("first region corrupted after chunk rollover")
	}
	if got := s.String(r2, 14); got != "after-boundary" {
		t.Fatalf("second region = %q", got)
	}
	if len(s.chunks) != 2 {
		t.Fatalf("chunks = %d, want 2", len(s.chunks))
	}
}

func TestAllocOversize(t *testing.T) {
	var s Slab
	huge := make([]byte, chunkBytes*2+17)
	huge[0], huge[len(huge)-1] = 0xAA, 0xBB
	ref := s.Append(huge)
	got := s.View(ref, len(huge))
	if got[0] != 0xAA || got[len(got)-1] != 0xBB {
		t.Fatal("oversize region corrupted")
	}
	if s.Allocated() < int64(len(huge)) {
		t.Fatalf("Allocated = %d, want >= %d", s.Allocated(), len(huge))
	}
}

func TestAllocZeroLength(t *testing.T) {
	var s Slab
	ref, dst := s.Alloc(0)
	if len(dst) != 0 {
		t.Fatalf("Alloc(0) returned %d bytes", len(dst))
	}
	if got := s.String(ref, 0); got != "" {
		t.Fatalf("empty String = %q", got)
	}
}

func TestShapeInternReuses(t *testing.T) {
	var st ShapeTable
	f := [][]byte{[]byte("0123456789"), []byte("abcde")}
	idx1, n1 := st.Intern(f)
	idx2, n2 := st.Intern([][]byte{[]byte("XXXXXXXXXX"), []byte("YYYYY")})
	if idx1 != idx2 || n1 != 15 || n2 != 15 {
		t.Fatalf("same-layout intern: idx %d/%d len %d/%d", idx1, idx2, n1, n2)
	}
	if st.Len() != 1 {
		t.Fatalf("shapes = %d, want 1", st.Len())
	}
	idx3, _ := st.Intern([][]byte{[]byte("short")})
	if idx3 == idx1 || st.Len() != 2 {
		t.Fatalf("different layout shared a shape: idx %d, shapes %d", idx3, st.Len())
	}
	// Re-interning an older shape after the table moved on must find it.
	idx4, _ := st.Intern(f)
	if idx4 != idx1 || st.Len() != 2 {
		t.Fatalf("re-intern = %d (shapes %d), want %d (2)", idx4, st.Len(), idx1)
	}
}

func TestInternEndsMatchesIntern(t *testing.T) {
	var st ShapeTable
	idx, _ := st.Intern([][]byte{[]byte("ab"), []byte("cdef")})
	got := st.InternEnds([]uint32{2, 6})
	if got != idx {
		t.Fatalf("InternEnds = %d, want %d", got, idx)
	}
	other := st.InternEnds([]uint32{3, 6})
	if other == idx || st.Len() != 2 {
		t.Fatalf("distinct ends interned as %d (shapes %d)", other, st.Len())
	}
}

func TestFieldsViewSlabForm(t *testing.T) {
	var s Slab
	var st ShapeTable
	fields := [][]byte{[]byte("aaa"), []byte(""), []byte("cccccc")}
	shape, n := st.Intern(fields)
	ref, dst := s.Alloc(n)
	p := 0
	for _, f := range fields {
		p += copy(dst[p:], f)
	}
	v := SlabView(s.View(ref, n), st.Ends(shape))
	if v.Len() != 3 || v.Bytes() != 9 {
		t.Fatalf("Len=%d Bytes=%d, want 3/9", v.Len(), v.Bytes())
	}
	for i, f := range fields {
		if !bytes.Equal(v.Field(i), f) {
			t.Fatalf("Field(%d) = %q, want %q", i, v.Field(i), f)
		}
	}
	mat := v.Materialize()
	for i, f := range fields {
		if !bytes.Equal(mat[i], f) {
			t.Fatalf("Materialize[%d] = %q, want %q", i, mat[i], f)
		}
	}
}

func TestFieldsViewMaterializedForm(t *testing.T) {
	fields := [][]byte{[]byte("xy"), []byte("z")}
	v := View(fields)
	if v.Len() != 2 || v.Bytes() != 3 {
		t.Fatalf("Len=%d Bytes=%d, want 2/3", v.Len(), v.Bytes())
	}
	if string(v.Field(0)) != "xy" || string(v.Field(1)) != "z" {
		t.Fatalf("fields = %q/%q", v.Field(0), v.Field(1))
	}
	if _, _, ok := v.Slab(); ok {
		t.Fatal("materialized view claims slab backing")
	}
}

func TestFieldsViewZero(t *testing.T) {
	var v FieldsView
	if v.Len() != 0 || v.Bytes() != 0 {
		t.Fatalf("zero view: Len=%d Bytes=%d", v.Len(), v.Bytes())
	}
	if m := v.Materialize(); m != nil {
		t.Fatalf("zero view materialized to %v", m)
	}
}

// BenchmarkSlabAppend pins the carve path: steady-state Append is one
// bounds check and a copy, with chunk allocations amortized to ~0.
func BenchmarkSlabAppend(b *testing.B) {
	payload := make([]byte, 75) // the paper's 5×15-byte record payload scale
	var s Slab
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Append(payload)
		if s.Allocated() > 64<<20 {
			b.StopTimer()
			s.Reset()
			b.StartTimer()
		}
	}
}

// BenchmarkShapeIntern pins the hot-path interner: a repeated layout is
// a last-match check, no allocation.
func BenchmarkShapeIntern(b *testing.B) {
	fields := [][]byte{
		[]byte("0123456780"), []byte("0123456781"), []byte("0123456782"),
		[]byte("0123456783"), []byte("0123456784"),
	}
	var st ShapeTable
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Intern(fields)
	}
}
