// Package slab provides flat, offset-indexed byte storage for retained
// record state. The memtable, sstables and B-tree keep keys and field
// payloads in large append-only []byte chunks addressed by packed
// (chunk, offset) refs instead of per-record string/slice objects, so a
// 10M-record table is a handful of large pointer-free buffers to the
// garbage collector rather than tens of millions of scannable objects.
//
// The package has three pieces:
//
//   - Slab: a chunked append-only byte arena. Alloc carves a region and
//     returns a Ref; View/String recover the bytes later. Chunks are
//     never moved, so refs and views stay valid for the slab's lifetime.
//   - ShapeTable: an interner for field layouts. A record's per-field
//     lengths are stored once as a cumulative-end-offset slice shared by
//     every record with that shape, so uniform-schema workloads (the
//     benchmark's 5×90-byte rows) pay zero per-record layout storage.
//   - FieldsView: a read-only view of one record's field values, backed
//     either by a slab region plus a shape, or by a materialized
//     [][]byte (for callers that still build records by hand).
package slab

import "unsafe"

// KeyPrefix packs bytes [off, off+8) of k as a big-endian integer, zero
// padded. Zero-padded big-endian prefix order is a coarsening of
// lexicographic order — prefix(a) < prefix(b) implies a < b, and equal
// prefixes decide nothing either way — so ordered structures compare two
// of these in registers and fall back to byte-wise compares only on a
// double tie.
func KeyPrefix(k string, off int) uint64 {
	var p uint64
	for i := 0; i < 8 && off+i < len(k); i++ {
		p |= uint64(k[off+i]) << (56 - 8*i)
	}
	return p
}

// Ref addresses a region inside a Slab: chunk index in the high 32 bits,
// byte offset within the chunk in the low 32. The zero Ref addresses the
// first byte of the first chunk, so a Ref is only meaningful alongside
// the length the caller carved.
type Ref uint64

// chunkBytes is the default chunk capacity. Large enough that chunk
// allocations amortize to ~zero per record, small enough that a nearly
// empty table wastes little.
const chunkBytes = 512 << 10

// Slab is a chunked append-only byte arena. The zero value is ready to
// use. Not safe for concurrent use.
type Slab struct {
	chunks [][]byte
	// allocated is the total capacity of all chunks, for footprint
	// reporting (apmbench -memstats).
	allocated int64
}

// Alloc carves n bytes and returns the region's ref plus the writable
// bytes. The region is never reclaimed or moved; abandoned regions
// (shape-changing replaces) are reclaimed only when the whole slab is
// dropped, the same arena semantics the PR-4 memtable had.
func (s *Slab) Alloc(n int) (Ref, []byte) {
	ci := len(s.chunks) - 1
	var c []byte
	if ci >= 0 {
		c = s.chunks[ci]
	}
	if ci < 0 || cap(c)-len(c) < n {
		size := chunkBytes
		if n > size {
			size = n
		}
		c = make([]byte, 0, size)
		s.chunks = append(s.chunks, c)
		s.allocated += int64(size)
		ci++
	}
	off := len(c)
	c = c[: off+n : cap(c)]
	s.chunks[ci] = c
	return Ref(uint64(ci)<<32 | uint64(off)), c[off : off+n : off+n]
}

// Append copies b into the slab and returns its ref.
func (s *Slab) Append(b []byte) Ref {
	ref, dst := s.Alloc(len(b))
	copy(dst, b)
	return ref
}

// AppendString copies str into the slab without an intermediate []byte.
func (s *Slab) AppendString(str string) Ref {
	ref, dst := s.Alloc(len(str))
	copy(dst, str)
	return ref
}

// View returns the n bytes at ref. The slice aliases slab memory; treat
// it as read-only unless you own the region.
func (s *Slab) View(ref Ref, n int) []byte {
	c := s.chunks[ref>>32]
	off := uint32(ref)
	return c[off : int(off)+n : int(off)+n]
}

// String returns the n bytes at ref as a string without copying. Sound
// only for regions that are never overwritten (keys: the memtable and
// B-tree overwrite field bytes in place, never key bytes).
func (s *Slab) String(ref Ref, n int) string {
	if n == 0 {
		return ""
	}
	b := s.View(ref, n)
	return unsafe.String(unsafe.SliceData(b), n)
}

// Allocated returns the total chunk capacity in bytes, including regions
// carved and later abandoned. This is the slab's true heap footprint.
func (s *Slab) Allocated() int64 { return s.allocated }

// Reset drops all chunks, releasing them to the GC.
func (s *Slab) Reset() { *s = Slab{} }

// ShapeTable interns field layouts. A shape is the cumulative end offset
// of each field within a record's concatenated payload; records store a
// small shape index instead of per-field length headers. Steady-state
// workloads reuse one shape for millions of records, so Intern is a
// last-match check that almost always hits.
type ShapeTable struct {
	shapes [][]uint32
	last   uint32
}

// Intern returns the shape index for fields plus the total payload
// length. It allocates only when a never-before-seen layout appears.
func (t *ShapeTable) Intern(fields [][]byte) (uint32, int) {
	if int(t.last) < len(t.shapes) && endsMatch(t.shapes[t.last], fields) {
		return t.last, total(t.shapes[t.last])
	}
	for i, e := range t.shapes {
		if endsMatch(e, fields) {
			t.last = uint32(i)
			return t.last, total(e)
		}
	}
	e := make([]uint32, len(fields))
	n := uint32(0)
	for i, f := range fields {
		n += uint32(len(f))
		e[i] = n
	}
	t.shapes = append(t.shapes, e)
	t.last = uint32(len(t.shapes) - 1)
	return t.last, int(n)
}

// InternEnds is Intern for a layout already expressed as cumulative end
// offsets (re-interning a view from another slab during merges).
func (t *ShapeTable) InternEnds(ends []uint32) uint32 {
	if int(t.last) < len(t.shapes) && endsEqual(t.shapes[t.last], ends) {
		return t.last
	}
	for i, e := range t.shapes {
		if endsEqual(e, ends) {
			t.last = uint32(i)
			return t.last
		}
	}
	e := make([]uint32, len(ends))
	copy(e, ends)
	t.shapes = append(t.shapes, e)
	t.last = uint32(len(t.shapes) - 1)
	return t.last
}

// Ends returns the cumulative end offsets for a shape index.
func (t *ShapeTable) Ends(idx uint32) []uint32 { return t.shapes[idx] }

// Len returns the number of interned shapes.
func (t *ShapeTable) Len() int { return len(t.shapes) }

func endsMatch(ends []uint32, fields [][]byte) bool {
	if len(ends) != len(fields) {
		return false
	}
	n := uint32(0)
	for i, f := range fields {
		n += uint32(len(f))
		if ends[i] != n {
			return false
		}
	}
	return true
}

func endsEqual(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func total(ends []uint32) int {
	if len(ends) == 0 {
		return 0
	}
	return int(ends[len(ends)-1])
}

// FieldsView is a read-only view of one record's field values. The slab
// form references a contiguous payload region plus a shared shape; the
// materialized form wraps a caller-built [][]byte. The zero value views
// zero fields.
type FieldsView struct {
	data   []byte   // concatenated field payload (slab form)
	ends   []uint32 // cumulative end offsets, len = field count (slab form)
	fields [][]byte // materialized form; nil in slab form
}

// SlabView builds the slab-backed form: data is the record's
// concatenated field payload, ends the shared cumulative offsets.
func SlabView(data []byte, ends []uint32) FieldsView {
	return FieldsView{data: data, ends: ends}
}

// View wraps a materialized field set without copying.
func View(fields [][]byte) FieldsView { return FieldsView{fields: fields} }

// Len returns the number of fields.
func (v FieldsView) Len() int {
	if v.fields != nil {
		return len(v.fields)
	}
	return len(v.ends)
}

// Field returns the i'th field's bytes. The slice aliases the record's
// backing store and must be treated as read-only; a later same-shape
// replace overwrites it in place (the memtable's documented "state as of
// the last positioning I/O" semantics).
func (v FieldsView) Field(i int) []byte {
	if v.fields != nil {
		return v.fields[i]
	}
	start := uint32(0)
	if i > 0 {
		start = v.ends[i-1]
	}
	return v.data[start:v.ends[i]:v.ends[i]]
}

// Bytes returns the total payload length across all fields.
func (v FieldsView) Bytes() int64 {
	if v.fields != nil {
		var n int64
		for _, f := range v.fields {
			n += int64(len(f))
		}
		return n
	}
	if len(v.ends) == 0 {
		return 0
	}
	return int64(v.ends[len(v.ends)-1])
}

// Slab reports whether the view is slab-backed, and if so returns its
// payload region and shape (for zero-copy handoff between slab owners).
func (v FieldsView) Slab() (data []byte, ends []uint32, ok bool) {
	if v.fields != nil {
		return nil, nil, false
	}
	return v.data, v.ends, true
}

// Materialize copies the fields out into a fresh [][]byte.
func (v FieldsView) Materialize() [][]byte {
	n := v.Len()
	if n == 0 {
		return nil
	}
	out := make([][]byte, n)
	for i := 0; i < n; i++ {
		f := v.Field(i)
		out[i] = append([]byte(nil), f...)
	}
	return out
}
