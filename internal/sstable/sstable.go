// Package sstable implements immutable sorted string tables: the on-disk
// runs produced by LSM memtable flushes and compactions (Cassandra SSTables,
// HBase HFiles). Tables carry a Bloom filter and per-cell format overhead
// accounting, which is what makes the disk-usage experiment (paper Fig 17)
// reproducible: the stores blow up 75-byte records by storing schema and
// version information with every cell.
//
// A table's retained state is pointer-free: entries are fixed-size scalar
// records ([]entryMeta — key prefix pair, slab ref, packed lengths) over
// key+field payload bytes held in a slab.Slab, so a multi-million-entry
// table is a few large buffers the garbage collector never has to walk.
// The flush path (FromMemtable) adopts the frozen memtable's payload slab
// without copying a byte; compactions copy surviving payloads into the
// merged table's own slab, which is what reclaims dead versions.
package sstable

import (
	"sort"

	"repro/internal/bloom"
	"repro/internal/memtable"
	"repro/internal/slab"
)

// entryMeta is one entry's location: the key's 16-byte prefix pair for
// register compares, the payload ref (key bytes then field bytes,
// contiguous), and keyLen(16) | fieldsLen(32) | shape(16) packed.
type entryMeta struct {
	keyPfx  uint64
	keyPfx2 uint64
	ref     slab.Ref
	meta    uint64
}

func packMeta(keyLen, fieldsLen int, shape uint32) uint64 {
	if shape > 0xffff {
		panic("sstable: shape table overflow")
	}
	return uint64(keyLen) | uint64(fieldsLen)<<16 | uint64(shape)<<48
}

// Table is an immutable sorted run.
type Table struct {
	Gen    int // generation: higher = newer data wins during merges
	meta   []entryMeta
	data   slab.Slab
	shapes slab.ShapeTable
	filter *bloom.Filter
	minKey string
	maxKey string
	// DiskBytes is the modeled on-disk size: payload plus per-cell and
	// per-entry format overhead.
	DiskBytes int64
}

// Overhead describes the on-disk format cost of a table beyond raw payload.
type Overhead struct {
	PerEntry int64 // per row: row header, key length fields, index entry share
	PerCell  int64 // per column: column name, timestamp, length, version info
}

// keyAt returns entry i's key as a zero-copy view into the slab.
func (t *Table) keyAt(i int) string {
	m := t.meta[i]
	return t.data.String(m.ref, int(m.meta&0xffff))
}

// fieldsAt returns entry i's field view.
func (t *Table) fieldsAt(i int) slab.FieldsView {
	m := t.meta[i]
	keyLen := m.meta & 0xffff
	fieldsLen := int(m.meta >> 16 & 0xffffffff)
	return slab.SlabView(
		t.data.View(m.ref+slab.Ref(keyLen), fieldsLen),
		t.shapes.Ends(uint32(m.meta>>48)),
	)
}

func (t *Table) entryAt(i int) memtable.Entry {
	return memtable.Entry{Key: t.keyAt(i), Fields: t.fieldsAt(i)}
}

// search returns the index of the first entry with key >= key, resolving
// almost every probe with the prefix pair in registers.
func (t *Table) search(key string) int {
	pfx, pfx2 := slab.KeyPrefix(key, 0), slab.KeyPrefix(key, 8)
	lo, hi := 0, len(t.meta)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		m := &t.meta[mid]
		var ge bool
		if m.keyPfx != pfx {
			ge = m.keyPfx > pfx
		} else if m.keyPfx2 != pfx2 {
			ge = m.keyPfx2 > pfx2
		} else {
			ge = t.keyAt(mid) >= key
		}
		if ge {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// builder assembles a table by copying entries into its own slabs.
type builder struct {
	t       *Table
	scratch []uint32
}

func newBuilder(gen, n int) *builder {
	return &builder{t: &Table{Gen: gen, meta: make([]entryMeta, 0, n)}}
}

// add appends one entry (keys must arrive in ascending order, no
// duplicates), copying key and field bytes into the table's slab.
func (b *builder) add(key string, fields slab.FieldsView) {
	t := b.t
	var shape uint32
	fieldsLen := int(fields.Bytes())
	if data, ends, ok := fields.Slab(); ok {
		shape = t.shapes.InternEnds(ends)
		ref, buf := t.data.Alloc(len(key) + fieldsLen)
		p := copy(buf, key)
		copy(buf[p:], data)
		t.meta = append(t.meta, entryMeta{
			keyPfx:  slab.KeyPrefix(key, 0),
			keyPfx2: slab.KeyPrefix(key, 8),
			ref:     ref,
			meta:    packMeta(len(key), fieldsLen, shape),
		})
		return
	}
	n := fields.Len()
	b.scratch = b.scratch[:0]
	acc := uint32(0)
	for i := 0; i < n; i++ {
		acc += uint32(len(fields.Field(i)))
		b.scratch = append(b.scratch, acc)
	}
	shape = t.shapes.InternEnds(b.scratch)
	ref, buf := t.data.Alloc(len(key) + fieldsLen)
	p := copy(buf, key)
	for i := 0; i < n; i++ {
		p += copy(buf[p:], fields.Field(i))
	}
	t.meta = append(t.meta, entryMeta{
		keyPfx:  slab.KeyPrefix(key, 0),
		keyPfx2: slab.KeyPrefix(key, 8),
		ref:     ref,
		meta:    packMeta(len(key), fieldsLen, shape),
	})
}

// finalize computes the Bloom filter, disk accounting and key range. The
// filter is built from the sorted entry sequence, so any construction
// path (flush handoff, test build, merge) yields an identical filter for
// identical contents.
func (t *Table) finalize(ov Overhead, fpp float64) {
	t.filter = bloom.New(len(t.meta), fpp)
	for i := range t.meta {
		t.filter.Add(t.keyAt(i))
		md := t.meta[i].meta
		keyLen := int64(md & 0xffff)
		fieldsLen := int64(md >> 16 & 0xffffffff)
		cells := int64(len(t.shapes.Ends(uint32(md >> 48))))
		t.DiskBytes += keyLen + ov.PerEntry + fieldsLen + cells*ov.PerCell
	}
	if len(t.meta) > 0 {
		t.minKey = t.keyAt(0)
		t.maxKey = t.keyAt(len(t.meta) - 1)
	}
}

// FromMemtable flushes a frozen memtable into a table without copying
// payload bytes: the skip list streams its entries in key order and
// hands its payload slab and shape table over; only the fixed-size
// entryMeta records are built fresh. The memtable must not be written
// again (Freeze enforces this); outstanding readers of the frozen
// memtable remain valid because the slabs are shared, not moved.
func FromMemtable(gen int, m *memtable.Memtable, ov Overhead, fpp float64) *Table {
	t := &Table{Gen: gen, meta: make([]entryMeta, 0, m.Len())}
	t.data, t.shapes = m.Freeze(func(e memtable.FlushEntry) {
		t.meta = append(t.meta, entryMeta{
			keyPfx:  e.KeyPfx,
			keyPfx2: e.KeyPfx2,
			ref:     e.Ref,
			meta:    packMeta(e.KeyLen, e.FieldsLen, e.Shape),
		})
	})
	t.finalize(ov, fpp)
	return t
}

// Build creates a table from entries (they will be sorted; later duplicates
// win). fpp is the Bloom filter false-positive target.
func Build(gen int, entries []memtable.Entry, ov Overhead, fpp float64) *Table {
	sorted := make([]memtable.Entry, len(entries))
	copy(sorted, entries)
	// The stable sort keeps duplicates in input order, so BuildSorted's
	// last-occurrence-wins dedup preserves newest-write-wins.
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	return BuildSorted(gen, sorted, ov, fpp)
}

// BuildSorted creates a table from entries already in ascending key order
// (duplicate keys adjacent, later occurrence wins). Key and field bytes
// are copied into the table's own slab.
func BuildSorted(gen int, entries []memtable.Entry, ov Overhead, fpp float64) *Table {
	b := newBuilder(gen, len(entries))
	for i := 0; i < len(entries); i++ {
		if i+1 < len(entries) && entries[i+1].Key == entries[i].Key {
			continue
		}
		b.add(entries[i].Key, entries[i].Fields)
	}
	b.t.finalize(ov, fpp)
	return b.t
}

// Len returns the number of entries.
func (t *Table) Len() int { return len(t.meta) }

// KeyRange returns the smallest and largest keys.
func (t *Table) KeyRange() (string, string) { return t.minKey, t.maxKey }

// SlabBytes returns the heap footprint of the table's payload slab
// (apmbench -memstats). Shared flush-handoff chunks are attributed to
// the table, which outlives the memtable they came from.
func (t *Table) SlabBytes() int64 {
	return t.data.Allocated() + int64(len(t.meta))*32
}

// MayContain consults the Bloom filter and key range.
func (t *Table) MayContain(key string) bool {
	if len(t.meta) == 0 || key < t.minKey || key > t.maxKey {
		return false
	}
	return t.filter.MayContain(key)
}

// Get returns a view of the fields for key.
func (t *Table) Get(key string) (slab.FieldsView, bool) {
	i := t.search(key)
	if i < len(t.meta) && t.keyAt(i) == key {
		return t.fieldsAt(i), true
	}
	return slab.FieldsView{}, false
}

// Scan returns up to count entries with keys >= start.
func (t *Table) Scan(start string, count int) []memtable.Entry {
	i := t.search(start)
	end := i + count
	if end > len(t.meta) {
		end = len(t.meta)
	}
	out := make([]memtable.Entry, end-i)
	for j := range out {
		out[j] = t.entryAt(i + j)
	}
	return out
}

// FilterBytes returns the Bloom filter's memory footprint.
func (t *Table) FilterBytes() int64 { return t.filter.SizeBytes() }

// Iterator is a forward cursor over a table's entries. Tables are immutable,
// so iterators stay valid for the table's lifetime.
type Iterator struct {
	t *Table
	i int
}

// SeekIter returns an iterator positioned at the first entry with key >=
// start.
func (t *Table) SeekIter(start string) Iterator {
	return Iterator{t: t, i: t.search(start)}
}

// Valid reports whether the iterator points at an entry.
func (it Iterator) Valid() bool { return it.i < len(it.t.meta) }

// Entry returns the current entry. It must not be called on an invalid
// iterator.
func (it Iterator) Entry() memtable.Entry { return it.t.entryAt(it.i) }

// Next advances to the following entry.
func (it *Iterator) Next() { it.i++ }

// Merge combines tables into one run; for duplicate keys the entry from the
// table with the highest generation wins. The result's generation is the
// maximum input generation. Inputs are already sorted, so this is a
// streaming k-way merge: O(n·k) comparisons with one pass and no
// intermediate map or re-sort. Surviving payloads are copied into the
// merged table's slab, so dead versions' bytes are reclaimed when the
// inputs are dropped.
func Merge(tables []*Table, ov Overhead, fpp float64) *Table {
	total := 0
	maxGen := 0
	iters := make([]Iterator, len(tables))
	for i, t := range tables {
		total += t.Len()
		if t.Gen > maxGen {
			maxGen = t.Gen
		}
		iters[i] = t.SeekIter("")
	}
	b := newBuilder(maxGen, total)
	for {
		// Pick the smallest current key; among duplicates the entry from
		// the highest-generation table wins and the others are skipped.
		// Linear scan over k sources: compaction fan-in is small (a tier),
		// so this beats maintaining a heap.
		best := -1
		for i := range iters {
			if !iters[i].Valid() {
				continue
			}
			if best < 0 {
				best = i
				continue
			}
			bk, ik := iters[best].Entry().Key, iters[i].Entry().Key
			if ik < bk || (ik == bk && tables[i].Gen > tables[best].Gen) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		e := iters[best].Entry()
		b.add(e.Key, e.Fields)
		// Consume this key from every source.
		for i := range iters {
			for iters[i].Valid() && iters[i].Entry().Key == e.Key {
				iters[i].Next()
			}
		}
	}
	b.t.finalize(ov, fpp)
	return b.t
}
