// Package sstable implements immutable sorted string tables: the on-disk
// runs produced by LSM memtable flushes and compactions (Cassandra SSTables,
// HBase HFiles). Tables carry a Bloom filter and per-cell format overhead
// accounting, which is what makes the disk-usage experiment (paper Fig 17)
// reproducible: the stores blow up 75-byte records by storing schema and
// version information with every cell.
package sstable

import (
	"sort"

	"repro/internal/bloom"
	"repro/internal/memtable"
)

// Table is an immutable sorted run.
type Table struct {
	Gen     int // generation: higher = newer data wins during merges
	entries []memtable.Entry
	filter  *bloom.Filter
	minKey  string
	maxKey  string
	// DiskBytes is the modeled on-disk size: payload plus per-cell and
	// per-entry format overhead.
	DiskBytes int64
}

// Overhead describes the on-disk format cost of a table beyond raw payload.
type Overhead struct {
	PerEntry int64 // per row: row header, key length fields, index entry share
	PerCell  int64 // per column: column name, timestamp, length, version info
}

// Build creates a table from entries (they will be sorted; later duplicates
// win). fpp is the Bloom filter false-positive target.
func Build(gen int, entries []memtable.Entry, ov Overhead, fpp float64) *Table {
	sorted := make([]memtable.Entry, len(entries))
	copy(sorted, entries)
	// The stable sort keeps duplicates in input order, so BuildSorted's
	// last-occurrence-wins dedup preserves newest-write-wins.
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	return BuildSorted(gen, sorted, ov, fpp)
}

// BuildSorted creates a table from entries already in ascending key order
// (duplicate keys adjacent, later occurrence wins), as produced by
// memtable.All: the flush pipeline skips Build's copy+sort and pays only a
// dedup scan. BuildSorted takes ownership of entries; the caller must not
// reuse the slice.
func BuildSorted(gen int, entries []memtable.Entry, ov Overhead, fpp float64) *Table {
	// In-place dedup keeping the last of each key run. The common flush
	// input (a memtable snapshot) has no duplicates, so this is a single
	// pass of self-assignments.
	w := 0
	for i := 0; i < len(entries); i++ {
		if i+1 < len(entries) && entries[i+1].Key == entries[i].Key {
			continue
		}
		entries[w] = entries[i]
		w++
	}
	return buildFromSorted(gen, entries[:w], ov, fpp)
}

// buildFromSorted creates a table from entries already sorted by key with no
// duplicates, skipping the sort+dedup pass that Build pays.
func buildFromSorted(gen int, entries []memtable.Entry, ov Overhead, fpp float64) *Table {
	t := &Table{Gen: gen, entries: entries, filter: bloom.New(len(entries), fpp)}
	for _, e := range entries {
		t.filter.Add(e.Key)
		t.DiskBytes += int64(len(e.Key)) + ov.PerEntry
		for _, f := range e.Fields {
			t.DiskBytes += int64(len(f)) + ov.PerCell
		}
	}
	if len(entries) > 0 {
		t.minKey = entries[0].Key
		t.maxKey = entries[len(entries)-1].Key
	}
	return t
}

// Len returns the number of entries.
func (t *Table) Len() int { return len(t.entries) }

// KeyRange returns the smallest and largest keys.
func (t *Table) KeyRange() (string, string) { return t.minKey, t.maxKey }

// MayContain consults the Bloom filter and key range.
func (t *Table) MayContain(key string) bool {
	if len(t.entries) == 0 || key < t.minKey || key > t.maxKey {
		return false
	}
	return t.filter.MayContain(key)
}

// Get returns the fields for key.
func (t *Table) Get(key string) ([][]byte, bool) {
	i := sort.Search(len(t.entries), func(i int) bool { return t.entries[i].Key >= key })
	if i < len(t.entries) && t.entries[i].Key == key {
		return t.entries[i].Fields, true
	}
	return nil, false
}

// Scan returns up to count entries with keys >= start.
func (t *Table) Scan(start string, count int) []memtable.Entry {
	i := sort.Search(len(t.entries), func(i int) bool { return t.entries[i].Key >= start })
	end := i + count
	if end > len(t.entries) {
		end = len(t.entries)
	}
	out := make([]memtable.Entry, end-i)
	copy(out, t.entries[i:end])
	return out
}

// FilterBytes returns the Bloom filter's memory footprint.
func (t *Table) FilterBytes() int64 { return t.filter.SizeBytes() }

// Iterator is a forward cursor over a table's entries. Tables are immutable,
// so iterators stay valid for the table's lifetime.
type Iterator struct {
	entries []memtable.Entry
	i       int
}

// SeekIter returns an iterator positioned at the first entry with key >=
// start.
func (t *Table) SeekIter(start string) Iterator {
	i := sort.Search(len(t.entries), func(i int) bool { return t.entries[i].Key >= start })
	return Iterator{entries: t.entries, i: i}
}

// Valid reports whether the iterator points at an entry.
func (it Iterator) Valid() bool { return it.i < len(it.entries) }

// Entry returns the current entry. It must not be called on an invalid
// iterator.
func (it Iterator) Entry() memtable.Entry { return it.entries[it.i] }

// Next advances to the following entry.
func (it *Iterator) Next() { it.i++ }

// Merge combines tables into one run; for duplicate keys the entry from the
// table with the highest generation wins. The result's generation is the
// maximum input generation. Inputs are already sorted, so this is a
// streaming k-way merge: O(n·k) comparisons with one pass and no
// intermediate map or re-sort.
func Merge(tables []*Table, ov Overhead, fpp float64) *Table {
	total := 0
	maxGen := 0
	iters := make([]Iterator, len(tables))
	for i, t := range tables {
		total += t.Len()
		if t.Gen > maxGen {
			maxGen = t.Gen
		}
		iters[i] = t.SeekIter("")
	}
	entries := make([]memtable.Entry, 0, total)
	for {
		// Pick the smallest current key; among duplicates the entry from
		// the highest-generation table wins and the others are skipped.
		// Linear scan over k sources: compaction fan-in is small (a tier),
		// so this beats maintaining a heap.
		best := -1
		for i := range iters {
			if !iters[i].Valid() {
				continue
			}
			if best < 0 {
				best = i
				continue
			}
			bk, ik := iters[best].Entry().Key, iters[i].Entry().Key
			if ik < bk || (ik == bk && tables[i].Gen > tables[best].Gen) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		e := iters[best].Entry()
		entries = append(entries, e)
		// Consume this key from every source.
		for i := range iters {
			for iters[i].Valid() && iters[i].Entry().Key == e.Key {
				iters[i].Next()
			}
		}
	}
	return buildFromSorted(maxGen, entries, ov, fpp)
}
