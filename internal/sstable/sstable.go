// Package sstable implements immutable sorted string tables: the on-disk
// runs produced by LSM memtable flushes and compactions (Cassandra SSTables,
// HBase HFiles). Tables carry a Bloom filter and per-cell format overhead
// accounting, which is what makes the disk-usage experiment (paper Fig 17)
// reproducible: the stores blow up 75-byte records by storing schema and
// version information with every cell.
package sstable

import (
	"sort"

	"repro/internal/bloom"
	"repro/internal/memtable"
)

// Table is an immutable sorted run.
type Table struct {
	Gen     int // generation: higher = newer data wins during merges
	entries []memtable.Entry
	filter  *bloom.Filter
	minKey  string
	maxKey  string
	// DiskBytes is the modeled on-disk size: payload plus per-cell and
	// per-entry format overhead.
	DiskBytes int64
}

// Overhead describes the on-disk format cost of a table beyond raw payload.
type Overhead struct {
	PerEntry int64 // per row: row header, key length fields, index entry share
	PerCell  int64 // per column: column name, timestamp, length, version info
}

// Build creates a table from entries (they will be sorted; later duplicates
// win). fpp is the Bloom filter false-positive target.
func Build(gen int, entries []memtable.Entry, ov Overhead, fpp float64) *Table {
	sorted := make([]memtable.Entry, len(entries))
	copy(sorted, entries)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	// Deduplicate, keeping the last occurrence (newest write).
	dedup := sorted[:0]
	for i := 0; i < len(sorted); i++ {
		if i+1 < len(sorted) && sorted[i+1].Key == sorted[i].Key {
			continue
		}
		dedup = append(dedup, sorted[i])
	}
	t := &Table{Gen: gen, entries: dedup, filter: bloom.New(len(dedup), fpp)}
	for _, e := range dedup {
		t.filter.Add(e.Key)
		t.DiskBytes += int64(len(e.Key)) + ov.PerEntry
		for _, f := range e.Fields {
			t.DiskBytes += int64(len(f)) + ov.PerCell
		}
	}
	if len(dedup) > 0 {
		t.minKey = dedup[0].Key
		t.maxKey = dedup[len(dedup)-1].Key
	}
	return t
}

// Len returns the number of entries.
func (t *Table) Len() int { return len(t.entries) }

// KeyRange returns the smallest and largest keys.
func (t *Table) KeyRange() (string, string) { return t.minKey, t.maxKey }

// MayContain consults the Bloom filter and key range.
func (t *Table) MayContain(key string) bool {
	if len(t.entries) == 0 || key < t.minKey || key > t.maxKey {
		return false
	}
	return t.filter.MayContain(key)
}

// Get returns the fields for key.
func (t *Table) Get(key string) ([][]byte, bool) {
	i := sort.Search(len(t.entries), func(i int) bool { return t.entries[i].Key >= key })
	if i < len(t.entries) && t.entries[i].Key == key {
		return t.entries[i].Fields, true
	}
	return nil, false
}

// Scan returns up to count entries with keys >= start.
func (t *Table) Scan(start string, count int) []memtable.Entry {
	i := sort.Search(len(t.entries), func(i int) bool { return t.entries[i].Key >= start })
	end := i + count
	if end > len(t.entries) {
		end = len(t.entries)
	}
	out := make([]memtable.Entry, end-i)
	copy(out, t.entries[i:end])
	return out
}

// FilterBytes returns the Bloom filter's memory footprint.
func (t *Table) FilterBytes() int64 { return t.filter.SizeBytes() }

// Merge combines tables into one run; for duplicate keys the entry from the
// table with the highest generation wins. The result's generation is the
// maximum input generation.
func Merge(tables []*Table, ov Overhead, fpp float64) *Table {
	byGen := make([]*Table, len(tables))
	copy(byGen, tables)
	sort.Slice(byGen, func(i, j int) bool { return byGen[i].Gen < byGen[j].Gen })
	total := 0
	maxGen := 0
	for _, t := range byGen {
		total += t.Len()
		if t.Gen > maxGen {
			maxGen = t.Gen
		}
	}
	// Apply oldest-to-newest into a map, then rebuild sorted. O(n log n),
	// fine at simulation scale and obviously correct.
	merged := make(map[string][][]byte, total)
	for _, t := range byGen {
		for _, e := range t.entries {
			merged[e.Key] = e.Fields
		}
	}
	entries := make([]memtable.Entry, 0, len(merged))
	for k, f := range merged {
		entries = append(entries, memtable.Entry{Key: k, Fields: f})
	}
	return Build(maxGen, entries, ov, fpp)
}
