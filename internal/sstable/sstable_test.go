package sstable

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/memtable"
	"repro/internal/slab"
)

var ov = Overhead{PerEntry: 10, PerCell: 20}

func entry(k, v string) memtable.Entry {
	return memtable.Entry{Key: k, Fields: slab.View([][]byte{[]byte(v)})}
}

func TestBuildSortsAndGets(t *testing.T) {
	tb := Build(1, []memtable.Entry{entry("c", "3"), entry("a", "1"), entry("b", "2")}, ov, 0.01)
	if tb.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tb.Len())
	}
	for _, k := range []string{"a", "b", "c"} {
		if _, ok := tb.Get(k); !ok {
			t.Fatalf("Get(%q) missing", k)
		}
	}
	if _, ok := tb.Get("z"); ok {
		t.Fatal("found absent key")
	}
	min, max := tb.KeyRange()
	if min != "a" || max != "c" {
		t.Fatalf("range = [%s,%s], want [a,c]", min, max)
	}
}

func TestBuildDeduplicatesKeepingLast(t *testing.T) {
	tb := Build(1, []memtable.Entry{entry("k", "old"), entry("k", "new")}, ov, 0.01)
	if tb.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tb.Len())
	}
	v, _ := tb.Get("k")
	if string(v.Field(0)) != "new" {
		t.Fatalf("value = %s, want new (last write wins)", v.Field(0))
	}
}

func TestMayContainRespectsRange(t *testing.T) {
	tb := Build(1, []memtable.Entry{entry("m", "1"), entry("p", "2")}, ov, 0.01)
	if tb.MayContain("a") {
		t.Fatal("key below range should be excluded without a filter probe")
	}
	if tb.MayContain("z") {
		t.Fatal("key above range should be excluded")
	}
	if !tb.MayContain("m") || !tb.MayContain("p") {
		t.Fatal("present keys must pass the filter")
	}
}

func TestDiskBytesIncludesOverhead(t *testing.T) {
	// one entry: key "kk" (2) + perEntry 10 + 2 cells of 5 bytes + 2*20.
	e := memtable.Entry{Key: "kk", Fields: slab.View([][]byte{[]byte("12345"), []byte("67890")})}
	tb := Build(1, []memtable.Entry{e}, ov, 0.01)
	want := int64(2 + 10 + 5 + 20 + 5 + 20)
	if tb.DiskBytes != want {
		t.Fatalf("DiskBytes = %d, want %d", tb.DiskBytes, want)
	}
}

func TestScan(t *testing.T) {
	var es []memtable.Entry
	for i := 0; i < 20; i++ {
		es = append(es, entry(fmt.Sprintf("k%02d", i), "v"))
	}
	tb := Build(1, es, ov, 0.01)
	got := tb.Scan("k05", 3)
	if len(got) != 3 || got[0].Key != "k05" || got[2].Key != "k07" {
		t.Fatalf("scan = %v", got)
	}
	if got := tb.Scan("k19", 10); len(got) != 1 {
		t.Fatalf("tail scan length = %d, want 1", len(got))
	}
}

func TestMergeNewestGenerationWins(t *testing.T) {
	older := Build(1, []memtable.Entry{entry("k", "old"), entry("a", "1")}, ov, 0.01)
	newer := Build(2, []memtable.Entry{entry("k", "new"), entry("b", "2")}, ov, 0.01)
	// Pass in arbitrary order; generation decides.
	m := Merge([]*Table{newer, older}, ov, 0.01)
	if m.Len() != 3 {
		t.Fatalf("merged Len = %d, want 3", m.Len())
	}
	v, _ := m.Get("k")
	if string(v.Field(0)) != "new" {
		t.Fatalf("merged value = %s, want new", v.Field(0))
	}
	if m.Gen != 2 {
		t.Fatalf("merged gen = %d, want 2", m.Gen)
	}
}

func TestMergeReducesDiskBytesOnOverlap(t *testing.T) {
	a := Build(1, []memtable.Entry{entry("k", "1")}, ov, 0.01)
	b := Build(2, []memtable.Entry{entry("k", "2")}, ov, 0.01)
	m := Merge([]*Table{a, b}, ov, 0.01)
	if m.DiskBytes >= a.DiskBytes+b.DiskBytes {
		t.Fatalf("merge of duplicates did not reclaim space: %d >= %d", m.DiskBytes, a.DiskBytes+b.DiskBytes)
	}
}

func TestEmptyTable(t *testing.T) {
	tb := Build(1, nil, ov, 0.01)
	if tb.Len() != 0 || tb.MayContain("x") {
		t.Fatal("empty table misbehaves")
	}
	if got := tb.Scan("", 10); len(got) != 0 {
		t.Fatal("scan of empty table returned entries")
	}
}

// Property: merging two tables yields exactly the union of keys, with values
// from the newer generation on conflicts.
func TestPropertyMergeUnion(t *testing.T) {
	f := func(aKeys, bKeys []uint8) bool {
		var aes, bes []memtable.Entry
		for _, k := range aKeys {
			aes = append(aes, entry(fmt.Sprintf("k%03d", k), "a"))
		}
		for _, k := range bKeys {
			bes = append(bes, entry(fmt.Sprintf("k%03d", k), "b"))
		}
		ta := Build(1, aes, ov, 0.01)
		tb := Build(2, bes, ov, 0.01)
		m := Merge([]*Table{ta, tb}, ov, 0.01)
		want := map[string]string{}
		for _, k := range aKeys {
			want[fmt.Sprintf("k%03d", k)] = "a"
		}
		for _, k := range bKeys {
			want[fmt.Sprintf("k%03d", k)] = "b"
		}
		if m.Len() != len(want) {
			return false
		}
		for k, v := range want {
			got, ok := m.Get(k)
			if !ok || string(got.Field(0)) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGet(b *testing.B) {
	var es []memtable.Entry
	for i := 0; i < 100000; i++ {
		es = append(es, entry(fmt.Sprintf("key%09d", i), "0123456789"))
	}
	tb := Build(1, es, ov, 0.01)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Get(fmt.Sprintf("key%09d", i%100000))
	}
}

func TestSeekIterWalksFromStart(t *testing.T) {
	var es []memtable.Entry
	for i := 0; i < 20; i++ {
		es = append(es, entry(fmt.Sprintf("k%02d", i), "v"))
	}
	tb := Build(1, es, ov, 0.01)
	var keys []string
	for it := tb.SeekIter("k05"); it.Valid(); it.Next() {
		keys = append(keys, it.Entry().Key)
	}
	if len(keys) != 15 || keys[0] != "k05" || keys[14] != "k19" {
		t.Fatalf("SeekIter walked %v", keys)
	}
	if it := tb.SeekIter("k95"); it.Valid() {
		t.Fatal("iterator past maxKey is valid")
	}
}

func TestBuildSortedMatchesBuild(t *testing.T) {
	// Same logical input: BuildSorted gets it pre-sorted with adjacent
	// duplicates (later wins), Build gets it shuffled.
	sorted := []memtable.Entry{
		entry("a", "1"), entry("b", "old"), entry("b", "new"),
		entry("c", "3"), entry("d", "4"),
	}
	shuffled := []memtable.Entry{
		entry("d", "4"), entry("b", "old"), entry("a", "1"),
		entry("b", "new"), entry("c", "3"),
	}
	fast := BuildSorted(2, sorted, ov, 0.01)
	slow := Build(2, shuffled, ov, 0.01)
	if fast.Len() != slow.Len() {
		t.Fatalf("Len = %d, want %d", fast.Len(), slow.Len())
	}
	if fast.DiskBytes != slow.DiskBytes {
		t.Fatalf("DiskBytes = %d, want %d", fast.DiskBytes, slow.DiskBytes)
	}
	fmin, fmax := fast.KeyRange()
	smin, smax := slow.KeyRange()
	if fmin != smin || fmax != smax {
		t.Fatalf("range = [%s,%s], want [%s,%s]", fmin, fmax, smin, smax)
	}
	for _, k := range []string{"a", "b", "c", "d"} {
		fv, fok := fast.Get(k)
		sv, sok := slow.Get(k)
		if !fok || !sok || string(fv.Field(0)) != string(sv.Field(0)) {
			t.Fatalf("Get(%q): fast=%q,%v slow=%q,%v", k, fv.Field(0), fok, sv.Field(0), sok)
		}
	}
	if v, _ := fast.Get("b"); string(v.Field(0)) != "new" {
		t.Fatalf("duplicate key kept %q, want last write", v.Field(0))
	}
}

func TestBuildSortedNoDuplicatesIsIdentity(t *testing.T) {
	entries := []memtable.Entry{entry("a", "1"), entry("b", "2"), entry("c", "3")}
	tb := BuildSorted(1, entries, ov, 0.01)
	if tb.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tb.Len())
	}
	got := tb.Scan("", 3)
	for i, k := range []string{"a", "b", "c"} {
		if got[i].Key != k {
			t.Fatalf("entry %d = %q, want %q", i, got[i].Key, k)
		}
	}
}

// TestFromMemtableMatchesBuildSorted pins the zero-copy flush handoff:
// adopting a frozen memtable's slab must yield a table identical in
// every modeled dimension (count, DiskBytes, key range, filter size,
// contents) to copying the same entries through BuildSorted.
func TestFromMemtableMatchesBuildSorted(t *testing.T) {
	mkMem := func() *memtable.Memtable {
		m := memtable.New(9)
		for i := 0; i < 500; i++ {
			k := fmt.Sprintf("user%09d", i*37%500)
			m.Put(k, [][]byte{[]byte(fmt.Sprintf("f0-%05d", i)), []byte("f1")})
		}
		// Same-shape and reshaping replaces leave dead slab regions the
		// handoff must not account for.
		m.Put("user000000037", [][]byte{[]byte("f0-XXXXX"), []byte("f1")})
		m.Put("user000000074", [][]byte{[]byte("reshaped")})
		return m
	}
	ref := BuildSorted(3, mkMem().All(), ov, 0.01)
	got := FromMemtable(3, mkMem(), ov, 0.01)
	if got.Len() != ref.Len() || got.DiskBytes != ref.DiskBytes {
		t.Fatalf("Len/DiskBytes = %d/%d, want %d/%d", got.Len(), got.DiskBytes, ref.Len(), ref.DiskBytes)
	}
	gmin, gmax := got.KeyRange()
	rmin, rmax := ref.KeyRange()
	if gmin != rmin || gmax != rmax {
		t.Fatalf("range = [%s,%s], want [%s,%s]", gmin, gmax, rmin, rmax)
	}
	if got.FilterBytes() != ref.FilterBytes() {
		t.Fatalf("filter bytes = %d, want %d", got.FilterBytes(), ref.FilterBytes())
	}
	ri := ref.SeekIter("")
	for gi := got.SeekIter(""); gi.Valid(); gi.Next() {
		ge, re := gi.Entry(), ri.Entry()
		if ge.Key != re.Key || ge.Fields.Len() != re.Fields.Len() {
			t.Fatalf("entry %q vs %q", ge.Key, re.Key)
		}
		for i := 0; i < ge.Fields.Len(); i++ {
			if string(ge.Fields.Field(i)) != string(re.Fields.Field(i)) {
				t.Fatalf("key %q field %d = %q, want %q", ge.Key, i, ge.Fields.Field(i), re.Fields.Field(i))
			}
		}
		ri.Next()
	}
	if ri.Valid() {
		t.Fatal("reference has more entries than the handoff table")
	}
}
