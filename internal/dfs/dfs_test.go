package dfs

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
)

func setup(nodes int) (*sim.Engine, *cluster.Cluster, *FS) {
	e := sim.NewEngine(1)
	c := cluster.New(e, cluster.ClusterM(nodes))
	return e, c, New(c, Config{BlockBytes: 1 << 20})
}

func TestCreateAppendRead(t *testing.T) {
	e, _, fs := setup(2)
	e.Go("w", func(p *sim.Proc) {
		f, err := fs.Create(p, "/hbase/hfile1", 0)
		if err != nil {
			t.Errorf("Create: %v", err)
			return
		}
		fs.Append(p, f, 500<<10, 0)
		if f.Size != 500<<10 {
			t.Errorf("size = %d, want 500KiB", f.Size)
		}
		if err := fs.ReadAt(p, f, 1000, 64<<10, 0, true); err != nil {
			t.Errorf("ReadAt: %v", err)
		}
	})
	e.Run(0)
	if fs.Files() != 1 {
		t.Fatalf("files = %d, want 1", fs.Files())
	}
}

func TestDuplicateCreateFails(t *testing.T) {
	e, _, fs := setup(1)
	e.Go("w", func(p *sim.Proc) {
		if _, err := fs.Create(p, "/f", 0); err != nil {
			t.Errorf("first create: %v", err)
		}
		if _, err := fs.Create(p, "/f", 0); err == nil {
			t.Error("duplicate create succeeded")
		}
	})
	e.Run(0)
}

func TestAppendSplitsIntoBlocks(t *testing.T) {
	e, _, fs := setup(1)
	e.Go("w", func(p *sim.Proc) {
		f, _ := fs.Create(p, "/big", 0)
		fs.Append(p, f, 3<<20+512, 0) // 3.0005 MiB with 1 MiB blocks -> 4 blocks
		if f.Blocks() != 4 {
			t.Errorf("blocks = %d, want 4", f.Blocks())
		}
	})
	e.Run(0)
}

func TestLocalReadCheaperThanRemote(t *testing.T) {
	e, c, fs := setup(2)
	var local, remote sim.Time
	e.Go("w", func(p *sim.Proc) {
		f, _ := fs.Create(p, "/f", 0) // blocks on node 0
		fs.Append(p, f, 1<<20, 0)
		start := p.Now()
		fs.ReadAt(p, f, 0, 512<<10, 0, false) // local
		local = p.Now() - start
		start = p.Now()
		fs.ReadAt(p, f, 0, 512<<10, 1, false) // remote from node 1
		remote = p.Now() - start
	})
	e.Run(0)
	if remote <= local {
		t.Fatalf("remote read %v should exceed local %v", remote, local)
	}
	_ = c
}

func TestReadPastEOF(t *testing.T) {
	e, _, fs := setup(1)
	e.Go("w", func(p *sim.Proc) {
		f, _ := fs.Create(p, "/f", 0)
		fs.Append(p, f, 100, 0)
		if err := fs.ReadAt(p, f, 200, 10, 0, true); err == nil {
			t.Error("read past EOF succeeded")
		}
	})
	e.Run(0)
}

func TestDeleteReclaimsSpace(t *testing.T) {
	e, c, fs := setup(1)
	e.Go("w", func(p *sim.Proc) {
		f, _ := fs.Create(p, "/f", 0)
		fs.Append(p, f, 1<<20, 0)
		if c.Nodes[0].DiskUsed() != 1<<20 {
			t.Errorf("disk used = %d, want 1MiB", c.Nodes[0].DiskUsed())
		}
		if err := fs.Delete(p, "/f", 0); err != nil {
			t.Errorf("Delete: %v", err)
		}
		if c.Nodes[0].DiskUsed() != 0 {
			t.Errorf("disk used after delete = %d, want 0", c.Nodes[0].DiskUsed())
		}
	})
	e.Run(0)
	if fs.Files() != 0 {
		t.Fatal("file still present after delete")
	}
	if _, ok := fs.Open("/f"); ok {
		t.Fatal("Open found deleted file")
	}
}

func TestAppendDirectNoTiming(t *testing.T) {
	e, c, fs := setup(1)
	var f *File
	e.Go("w", func(p *sim.Proc) { f, _ = fs.Create(p, "/f", 0) })
	e.Run(0)
	before := e.Now()
	fs.AppendDirect(f, 1<<20, 0)
	if e.Now() != before {
		t.Fatal("AppendDirect advanced time")
	}
	if c.Nodes[0].DiskUsed() != 1<<20 {
		t.Fatal("AppendDirect did not account disk usage")
	}
}
