// Package dfs models a distributed filesystem in the HDFS mold: a NameNode
// holding file-to-block metadata and DataNodes storing blocks on their local
// disks. HBase's region servers are colocated with DataNodes (as in the
// paper's deployment, where every slave node ran DataNode, TaskTracker and
// RegionServer), so flushes and most reads enjoy locality but still pay the
// DataNode protocol overhead; non-local reads cross the network.
package dfs

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/sim"
)

// Config parameterizes the filesystem.
type Config struct {
	BlockBytes int64 // HDFS block size (default 64 MiB)
	// DataNodeOverhead is CPU time spent in the DataNode/DFSClient path per
	// block operation (checksumming, protocol, JVM copies).
	DataNodeOverhead sim.Time
	NameNode         int // node index hosting the NameNode
}

func (c *Config) defaults() {
	if c.BlockBytes == 0 {
		c.BlockBytes = 64 << 20
	}
	if c.DataNodeOverhead == 0 {
		c.DataNodeOverhead = 150 * sim.Microsecond
	}
}

// FS is a simulated HDFS instance over a cluster.
type FS struct {
	cfg   Config
	clust *cluster.Cluster
	files map[string]*File
}

// File is a DFS file: an ordered list of blocks, each on one DataNode
// (replication 1, matching the paper's unreplicated setups).
type File struct {
	Name   string
	Size   int64
	blocks []blockLoc
}

type blockLoc struct {
	node  int
	bytes int64
}

// New creates an empty filesystem.
func New(c *cluster.Cluster, cfg Config) *FS {
	cfg.defaults()
	return &FS{cfg: cfg, clust: c, files: make(map[string]*File)}
}

// nameNodeRPC pays for a metadata round trip from the caller's node to the
// NameNode (free if colocated).
func (fs *FS) nameNodeRPC(p *sim.Proc, from int) {
	nn := fs.clust.Nodes[fs.cfg.NameNode]
	src := fs.clust.Nodes[from]
	if src == nn {
		src.Compute(p, 20*sim.Microsecond)
		return
	}
	src.RPC(p, nn, 256, 512, func() {
		nn.Compute(p, 20*sim.Microsecond)
	})
}

// Create registers a new file; the caller's node becomes the writer.
func (fs *FS) Create(p *sim.Proc, name string, writerNode int) (*File, error) {
	if _, ok := fs.files[name]; ok {
		return nil, fmt.Errorf("dfs: file %q exists", name)
	}
	fs.nameNodeRPC(p, writerNode)
	f := &File{Name: name}
	fs.files[name] = f
	return f, nil
}

// Append writes bytes to the file from writerNode. With replication 1 and a
// colocated DataNode the write lands on the local disk sequentially.
func (fs *FS) Append(p *sim.Proc, f *File, bytes int64, writerNode int) {
	node := fs.clust.Nodes[writerNode]
	node.Compute(p, fs.cfg.DataNodeOverhead)
	node.DiskWrite(p, bytes, false)
	node.AddDiskUsage(bytes)
	// Extend the last block or start new ones.
	remaining := bytes
	for remaining > 0 {
		if n := len(f.blocks); n > 0 && f.blocks[n-1].node == writerNode && f.blocks[n-1].bytes < fs.cfg.BlockBytes {
			room := fs.cfg.BlockBytes - f.blocks[n-1].bytes
			if room > remaining {
				room = remaining
			}
			f.blocks[n-1].bytes += room
			remaining -= room
			continue
		}
		chunk := remaining
		if chunk > fs.cfg.BlockBytes {
			chunk = fs.cfg.BlockBytes
		}
		f.blocks = append(f.blocks, blockLoc{node: writerNode, bytes: chunk})
		remaining -= chunk
	}
	f.Size += bytes
}

// AppendDirect accounts an append without simulation timing (bulk load).
func (fs *FS) AppendDirect(f *File, bytes int64, writerNode int) {
	fs.clust.Nodes[writerNode].AddDiskUsage(bytes)
	f.blocks = append(f.blocks, blockLoc{node: writerNode, bytes: bytes})
	f.Size += bytes
}

// blockAt returns the block covering offset.
func (f *File) blockAt(offset int64) (blockLoc, error) {
	var pos int64
	for _, b := range f.blocks {
		if offset < pos+b.bytes {
			return b, nil
		}
		pos += b.bytes
	}
	return blockLoc{}, fmt.Errorf("dfs: offset %d beyond file %q size %d", offset, f.Name, f.Size)
}

// ReadAt reads length bytes at offset from readerNode, paying local or
// remote I/O depending on block placement. random selects seek accounting.
func (fs *FS) ReadAt(p *sim.Proc, f *File, offset, length int64, readerNode int, random bool) error {
	b, err := f.blockAt(offset)
	if err != nil {
		return err
	}
	reader := fs.clust.Nodes[readerNode]
	holder := fs.clust.Nodes[b.node]
	holder.Compute(p, fs.cfg.DataNodeOverhead)
	holder.DiskRead(p, length, random)
	if holder != reader {
		holder.Send(p, reader, length)
	}
	return nil
}

// Delete removes a file, reclaiming its space.
func (fs *FS) Delete(p *sim.Proc, name string, callerNode int) error {
	f, ok := fs.files[name]
	if !ok {
		return fmt.Errorf("dfs: no such file %q", name)
	}
	fs.nameNodeRPC(p, callerNode)
	for _, b := range f.blocks {
		fs.clust.Nodes[b.node].AddDiskUsage(-b.bytes)
	}
	delete(fs.files, name)
	return nil
}

// Open returns an existing file.
func (fs *FS) Open(name string) (*File, bool) {
	f, ok := fs.files[name]
	return f, ok
}

// Files returns the number of live files.
func (fs *FS) Files() int { return len(fs.files) }

// Blocks returns the number of blocks in f.
func (f *File) Blocks() int { return len(f.blocks) }
