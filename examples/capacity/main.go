// Capacity planning: the paper's closing arithmetic (§8). Given a monitored
// fleet, agent metric counts and a reporting interval, how many storage
// nodes does each store need to sustain the insert stream (Workload W), and
// does that fit the "at most 5% of the fleet" budget?
//
//	go run ./examples/capacity
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/apm"
	"repro/internal/harness"
	"repro/internal/sim"
)

func main() {
	const (
		monitoredHosts = 240 // the paper's §8 scenario
		metricsPerHost = 10_000
		intervalSec    = 10
		budget         = 0.05
	)
	ingest := apm.IngestRate(monitoredHosts, metricsPerHost, intervalSec)
	fmt.Printf("scenario (§8): %d hosts x %dK metrics / %ds = %.0fK inserts/sec\n",
		monitoredHosts, metricsPerHost/1000, intervalSec, ingest/1000)
	fmt.Printf("storage budget: %.0f%% of the fleet = %d nodes\n\n", budget*100, int(monitoredHosts*budget))

	// Measure each store's per-node Workload W throughput on 4 nodes.
	r := harness.NewRunner(harness.Config{
		Scale:   0.005,
		Warmup:  300 * sim.Millisecond,
		Measure: sim.Second,
	})
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "system\tper-node W tput\tnodes needed\twithin 5% budget")
	for _, sys := range []harness.System{harness.Cassandra, harness.HBase, harness.Voldemort, harness.MySQL} {
		res, err := r.Run(harness.Cell{System: sys, Nodes: 4, Workload: "W"})
		if err != nil {
			log.Fatalf("%s: %v", sys, err)
		}
		perNode := res.Throughput / 4
		nodes, ok := apm.StorageNodesNeeded(ingest, perNode, monitoredHosts, budget)
		verdict := "NO"
		if ok {
			verdict = "yes"
		}
		fmt.Fprintf(w, "%s\t%.0f ops/s\t%d\t%s\n", sys, perNode, nodes, verdict)
	}
	w.Flush()
	fmt.Println("\n(the paper concludes 240K inserts/sec is slightly above what its")
	fmt.Println(" 12-node Cassandra sustained for Workload W on Cluster M)")
}
