// Comparison: a miniature of the paper's Figure 3 — maximum throughput of
// all six stores on 1 and 4 nodes under the read-intensive Workload R —
// using the harness's cached cell runner.
//
//	go run ./examples/comparison
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/harness"
	"repro/internal/sim"
)

func main() {
	r := harness.NewRunner(harness.Config{
		Scale:   0.005,
		Warmup:  300 * sim.Millisecond,
		Measure: sim.Second,
	})

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "system\tnodes\tthroughput\tread lat\twrite lat")
	for _, sys := range harness.AllSystems {
		for _, nodes := range []int{1, 4} {
			res, err := r.Run(harness.Cell{System: sys, Nodes: nodes, Workload: "R"})
			if err != nil {
				log.Fatalf("%s n=%d: %v", sys, nodes, err)
			}
			fmt.Fprintf(w, "%s\t%d\t%.0f ops/s\t%v\t%v\n",
				sys, nodes, res.Throughput, res.ReadLat, res.WriteLat)
		}
	}
	w.Flush()
	fmt.Println("\n(compare the shape against Figure 3 of the paper: Redis/VoltDB")
	fmt.Println(" lead on one node; Cassandra/Voldemort/HBase scale linearly;")
	fmt.Println(" VoltDB loses throughput with more nodes under a synchronous client)")
}
