// Quickstart: deploy one store on a simulated cluster, load data, run a
// Table 1 workload, and print throughput and latencies.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/stores/cassandra"
	"repro/internal/ycsb"
)

func main() {
	// A 4-node memory-bound cluster at 1/100 of the paper's hardware.
	const scale = 0.01
	engine := sim.NewEngine(1)
	clust := cluster.New(engine, cluster.ClusterM(4).Scale(scale))

	// Deploy Cassandra with a flush threshold matching the scale.
	db := cassandra.New(clust, cassandra.Options{MemtableFlushBytes: 160 << 10})

	// Load 1/100 of the paper's 10M records per node.
	records := int64(4 * 10_000_000 * scale)
	if err := ycsb.Load(db, records); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d records across 4 nodes (%.1f MB on disk)\n",
		records, float64(db.DiskUsage())/1e6)

	// Run the APM insert stream (Workload W: 99% inserts) at full speed
	// with the paper's 128 connections per node.
	res, err := ycsb.Run(engine, ycsb.RunConfig{
		Store:          db,
		Workload:       ycsb.WorkloadW,
		Clients:        512,
		InitialRecords: records,
		Warmup:         500 * sim.Millisecond,
		Measure:        2 * sim.Second,
	})
	if err != nil {
		log.Fatal(err)
	}

	s := res.Summarize()
	fmt.Printf("workload W on cassandra/4 nodes:\n")
	fmt.Printf("  throughput: %.0f ops/sec\n", s.Throughput)
	fmt.Printf("  insert latency: mean=%v p95=%v p99=%v\n", s.Insert.Mean, s.Insert.P95, s.Insert.P99)
	fmt.Printf("  read latency:   mean=%v p95=%v p99=%v\n", s.Read.Mean, s.Read.P95, s.Read.P99)
	fmt.Printf("  errors: %d\n", s.Errors)
}
