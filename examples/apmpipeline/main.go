// APM pipeline: the paper's motivating scenario end to end. Monitoring
// agents on a fleet of hosts report measurements every 10 seconds into a
// HBase-backed metric store while an operator dashboard runs the §2
// online queries ("maximum number of connections on host X within the last
// 10 minutes", "average CPU utilization of Web servers of type Y").
//
//	go run ./examples/apmpipeline
package main

import (
	"fmt"
	"log"

	"repro/internal/apm"
	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/stores/hbase"
)

func main() {
	const (
		hosts          = 20  // monitored fleet
		metricsPerHost = 100 // metrics each agent reports
		intervalSec    = 10  // reporting interval (paper: ~10s)
		runSec         = 120 // simulated wall time
	)

	engine := sim.NewEngine(7)
	clust := cluster.New(engine, cluster.ClusterM(4).Scale(0.01))
	// HBase: its ordered regions make the §2 window queries exact (hash-
	// partitioned stores sample ranges node-locally; see apm.Window).
	db := hbase.New(clust, hbase.Options{MemstoreFlushBytes: 160 << 10})

	fmt.Printf("ingest rate: %.0f measurements/sec (%d hosts x %d metrics / %ds)\n",
		apm.IngestRate(hosts, metricsPerHost, intervalSec), hosts, metricsPerHost, intervalSec)

	// One process per agent: report all metrics every interval.
	agents := make([]*apm.Agent, hosts)
	for h := 0; h < hosts; h++ {
		agents[h] = apm.NewAgent(fmt.Sprintf("Host%02d", h), metricsPerHost, intervalSec)
		agent := agents[h]
		engine.Go(agent.Host, func(p *sim.Proc) {
			for ts := int64(intervalSec); ts <= runSec; ts += intervalSec {
				// Align to the virtual clock: one interval of real time
				// passes between reports.
				for p.Now() < sim.Time(ts)*sim.Second {
					p.Sleep(sim.Time(ts)*sim.Second - p.Now())
				}
				for _, m := range agent.Report(ts, p.Rand().Float64) {
					if err := db.Insert(p, m.Key(), store.Fields(m.Fields())); err != nil {
						log.Printf("insert %s: %v", m.Metric, err)
					}
				}
			}
		})
	}

	// The dashboard process polls the two §2 query classes once a minute.
	var connStats apm.WindowStats
	var cpuAvg float64
	var cpuN int
	engine.Go("dashboard", func(p *sim.Proc) {
		p.Sleep(sim.Time(runSec) * sim.Second) // query after ingest settles
		metric := agents[3].Metrics[1]         // Host03 .../ConnectionCount
		var err error
		connStats, err = apm.Window(p, db, metric, runSec-600, runSec)
		if err != nil {
			log.Printf("window query: %v", err)
		}
		// Average CPU across all "web servers" (hosts 0-9).
		var cpuMetrics []string
		for h := 0; h < 10; h++ {
			cpuMetrics = append(cpuMetrics, agents[h].Metrics[2]) // CPUUtilization
		}
		cpuAvg, cpuN, err = apm.GroupAvg(p, db, cpuMetrics, runSec-900, runSec)
		if err != nil {
			log.Printf("group query: %v", err)
		}
	})

	engine.Run(0)

	fmt.Printf("ingested %d measurement records (%.1f MB on disk)\n",
		int64(hosts*metricsPerHost*(runSec/intervalSec)), float64(db.DiskUsage())/1e6)
	fmt.Printf("Q1 max connections on Host03 over last 10 min: max=%.1f avg=%.1f (%d samples)\n",
		connStats.Max, connStats.Avg, connStats.Count)
	fmt.Printf("Q2 avg CPU utilization of web servers over last 15 min: %.1f%% (%d samples)\n",
		cpuAvg, cpuN)
	fmt.Printf("virtual time simulated: %v\n", engine.Now())
}
