#!/usr/bin/env bash
# Emit a JSON perf baseline (ns/op, B/op, allocs/op) for the tracked
# hot-path benchmarks, so future PRs have a trajectory to diff against:
#
#   scripts/bench_baseline.sh             # writes BENCH_PR10.json
#   scripts/bench_baseline.sh out.json    # custom path
#   BENCHTIME=1000000x scripts/bench_baseline.sh   # higher fidelity
#
# allocs/op is exact at any BENCHTIME; ns/op is only meaningful on an
# otherwise idle machine.
set -euo pipefail
cd "$(dirname "$0")/.."
out="${1:-BENCH_PR10.json}"
bt="${BENCHTIME:-100000x}"

{
  go test -run '^$' -bench 'BenchmarkEngineSchedule$|BenchmarkLSMGet$|BenchmarkLSMScan$|BenchmarkLSMInsert$|BenchmarkLSMInsertNoReuse$|BenchmarkBTreeInsert$|BenchmarkBTreeBulkLoad$|BenchmarkBTreeUpdate$' -benchtime "$bt" -benchmem .
  go test -run '^$' -bench 'BenchmarkStoreKey$|BenchmarkStoreAppendKey$|BenchmarkMakeFields$' -benchtime "$bt" -benchmem ./internal/store
  go test -run '^$' -bench 'BenchmarkMemtablePut$|BenchmarkMemtableGet$|BenchmarkMemtableScan$' -benchtime "$bt" -benchmem ./internal/memtable
  go test -run '^$' -bench 'BenchmarkSlabAppend$|BenchmarkShapeIntern$' -benchtime "$bt" -benchmem ./internal/slab
  go test -run '^$' -bench 'BenchmarkAppendPeriodic$' -benchtime "$bt" -benchmem ./internal/wal
  go test -run '^$' -bench 'BenchmarkQueryFilterAgg$' -benchtime "$bt" -benchmem ./internal/query
} | awk -v benchtime="$bt" '
  /^Benchmark/ {
    name = $1
    sub(/^Benchmark/, "", name)
    sub(/-[0-9]+$/, "", name)
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
      if ($i == "ns/op")     ns = $(i-1)
      if ($i == "B/op")      bytes = $(i-1)
      if ($i == "allocs/op") allocs = $(i-1)
    }
    lines[n++] = sprintf("    \"%s\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", name, ns, bytes, allocs)
  }
  END {
    printf "{\n  \"benchtime\": \"%s\",\n  \"benchmarks\": {\n", benchtime
    for (i = 0; i < n; i++) printf "%s%s\n", lines[i], (i < n-1 ? "," : "")
    printf "  }\n}\n"
  }
' > "$out"
echo "wrote $out" >&2
cat "$out" >&2
