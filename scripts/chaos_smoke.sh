#!/usr/bin/env bash
# Chaos smoke: the farm's failure handling must be invisible in the
# output. Run the node-kill fault scenario through a coordinator with two
# workers, SIGKILL one worker mid-cell, let a replacement join late, and
# require stdout AND stderr byte-identical to a serial single-process
# run — requeued and re-executed cells re-derive the same seeds, so
# recovery costs time, never numbers.
#
#   scripts/chaos_smoke.sh            # builds apmbench, runs the drill
#   CHAOS_PORT=7123 scripts/chaos_smoke.sh
#
# -measure 3.0 stretches each cell to a few wall-clock seconds at quick
# fidelity so the kill reliably lands mid-execution.
set -euo pipefail
cd "$(dirname "$0")/.."

port="${CHAOS_PORT:-7079}"
flags=(-quick -measure 3.0 -scenario examples/scenarios/node-kill.json)

go build -o apmbench ./cmd/apmbench

./apmbench "${flags[@]}" -parallel 1 > chaos_serial.out 2> chaos_serial.progress

./apmbench "${flags[@]}" -serve "127.0.0.1:$port" > chaos_farm.out 2> chaos_farm.progress &
coord=$!

listening=""
for _ in $(seq 100); do
  if (exec 3<>"/dev/tcp/127.0.0.1/$port") 2>/dev/null; then
    listening=yes
    break
  fi
  sleep 0.1
done
[ -n "$listening" ] || { echo "coordinator never listened on :$port"; exit 1; }

./apmbench -join "127.0.0.1:$port" -parallel 1 2> chaos_worker_healthy.log &
healthy=$!
./apmbench -join "127.0.0.1:$port" -parallel 1 2> chaos_worker_doomed.log &
doomed=$!

# Let the doomed worker lease a cell and get ~halfway into it, then pull
# the plug — no drain, no goodbye, a dead process mid-measurement.
sleep 1.2
if kill -9 "$doomed" 2>/dev/null; then
  echo "SIGKILLed worker (pid $doomed) mid-run"
else
  echo "WARN: doomed worker exited before the kill landed (host too slow?)"
fi
wait "$doomed" 2>/dev/null || true

# A replacement joins late and inherits the requeued work.
./apmbench -join "127.0.0.1:$port" -parallel 1 2> chaos_worker_replacement.log &
replacement=$!

wait "$coord"
wait "$healthy"
# The replacement usually drains cleanly; on a fast host the farm may
# finish before its handshake, which is fine — the equivalence check
# below is the verdict.
wait "$replacement" || echo "WARN: replacement missed the run (farm finished first)"

diff chaos_serial.out chaos_farm.out
diff chaos_serial.progress chaos_farm.progress
echo "chaos farm run byte-identical to serial (stdout + stderr)"
