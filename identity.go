// Package repro is the root of the paper reproduction. Besides hosting the
// figure benchmarks, it computes the binary's model identity: a content
// hash over every model source file under internal/, embedded at build
// time. Two binaries with the same ModelVersion produce bit-identical
// results for the same cell, which is what lets the cell farm trust a
// worker's answer and the persistent result cache trust a previous run's —
// and what makes a model-touching PR invalidate both automatically.
package repro

import (
	"crypto/sha256"
	"embed"
	"encoding/hex"
	"fmt"
	"io/fs"
	"sort"
	"strings"
	"sync"
)

// modelFS embeds the full model source tree. The hash deliberately covers
// everything under internal/ — simulator, stores, harness, farm — because
// any of it can shape a cell's numbers (the harness alone decides seeds,
// keys and client counts). Test files are skipped at hash time: they cannot
// change results, and invalidating a fleet's cache over a test edit would
// be pure waste.
//
//go:embed internal
var modelFS embed.FS

var (
	versionOnce sync.Once
	versionHex  string
)

// ModelVersion returns the binary's model identity: the hex SHA-256 over
// every non-test .go file under internal/, each prefixed by its
// slash-separated path, in sorted path order. It is surfaced as
// `apmbench -version`, keys the persistent result cache, and gates the
// farm's hello handshake (a worker whose version differs is rejected, not
// silently wrong).
func ModelVersion() string {
	versionOnce.Do(func() {
		var paths []string
		err := fs.WalkDir(modelFS, "internal", func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			paths = append(paths, path)
			return nil
		})
		if err != nil {
			panic(fmt.Sprintf("repro: walking embedded model sources: %v", err))
		}
		sort.Strings(paths)
		h := sha256.New()
		for _, p := range paths {
			data, err := modelFS.ReadFile(p)
			if err != nil {
				panic(fmt.Sprintf("repro: reading embedded %s: %v", p, err))
			}
			fmt.Fprintf(h, "%s\x00%d\x00", p, len(data))
			h.Write(data)
		}
		versionHex = hex.EncodeToString(h.Sum(nil))
	})
	return versionHex
}
